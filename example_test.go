package ocular_test

import (
	"fmt"
	"log"

	ocular "repro"
)

// ExampleTrain fits OCuLaR on the paper's toy and reads off the worked
// example of Section IV-C.
func ExampleTrain() {
	toy := ocular.PaperToy()
	res, err := ocular.Train(toy.R, ocular.Config{K: 3, Lambda: 0.1, MaxIter: 300, Tol: 1e-7, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P[r(6,4)=1] = %.2f\n", res.Model.Predict(6, 4))
	fmt.Printf("top recommendation for user 6: item %d\n",
		ocular.Recommend(res.Model, toy.R, 6, 1)[0])
	// Output:
	// P[r(6,4)=1] = 0.85
	// top recommendation for user 6: item 4
}

// ExampleExplainPair renders the automatic rationale of a recommendation.
func ExampleExplainPair() {
	toy := ocular.PaperToy()
	res, err := ocular.Train(toy.R, ocular.Config{K: 3, Lambda: 0.1, MaxIter: 300, Tol: 1e-7, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	ex := ocular.ExplainPair(res.Model, toy.R, 6, 4)
	fmt.Printf("reasons: %d co-clusters\n", len(ex.Reasons))
	for _, r := range ex.Reasons {
		fmt.Printf("  co-cluster contributes %.1f, %d similar users\n",
			r.Contribution, len(r.SimilarUsers))
	}
	// Output:
	// reasons: 2 co-clusters
	//   co-cluster contributes 1.0, 3 similar users
	//   co-cluster contributes 0.9, 2 similar users
}

// ExampleEvaluate runs the paper's 75/25 evaluation protocol.
func ExampleEvaluate() {
	d := ocular.SyntheticSmall(9)
	sp := ocular.SplitDataset(d.Dataset, 0.75, 9)
	res, err := ocular.Train(sp.Train, ocular.Config{K: 8, Lambda: 2, MaxIter: 60, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	m := ocular.Evaluate(res.Model, sp.Train, sp.Test, 20)
	fmt.Printf("recall@20 above 0.4: %v\n", m.RecallAtM > 0.4)
	// Output:
	// recall@20 above 0.4: true
}

// ExampleCoClusters extracts the interpretable co-clusters of a model.
func ExampleCoClusters() {
	toy := ocular.PaperToy()
	res, err := ocular.Train(toy.R, ocular.Config{K: 3, Lambda: 0.1, MaxIter: 300, Tol: 1e-7, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	clusters := ocular.CoClusters(res.Model, 0.3)
	for _, c := range clusters {
		fmt.Printf("co-cluster %d: %d users x %d items\n", c.ID, len(c.Users), len(c.Items))
	}
	// Output:
	// co-cluster 0: 4 users x 6 items
	// co-cluster 1: 3 users x 4 items
	// co-cluster 2: 3 users x 4 items
}

// ExampleGridSearch tunes (K, lambda) on a held-out split.
func ExampleGridSearch() {
	d := ocular.SyntheticSmall(11)
	sp := ocular.SplitDataset(d.Dataset, 0.75, 11)
	res, err := ocular.GridSearch(sp.Train, sp.Test,
		ocular.GridSearchGrid{Ks: []int{4, 8}, Lambdas: []float64{1, 5}},
		ocular.GridSearchOptions{M: 10, Base: ocular.Config{MaxIter: 10, Seed: 1}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("searched %d cells; best K=%d\n", len(res.Cells), res.Best.K)
	// Output:
	// searched 4 cells; best K=8
}
