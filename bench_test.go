// Benchmarks regenerating each table and figure of the paper at benchmark
// scale. Each Benchmark* corresponds to one experiment of DESIGN.md §3; the
// full-scale regenerators live in cmd/figures. Run with:
//
//	go test -bench=. -benchmem
package ocular_test

import (
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	ocular "repro"

	"repro/internal/serve"
)

// BenchmarkFig1Toy measures the end-to-end toy pipeline: train K=3 on the
// 12x12 example and read out the three recommendations.
func BenchmarkFig1Toy(b *testing.B) {
	toy := ocular.PaperToy()
	for i := 0; i < b.N; i++ {
		res, err := ocular.Train(toy.R, ocular.Config{K: 3, Lambda: 0.1, MaxIter: 300, Tol: 1e-7, Seed: 4})
		if err != nil {
			b.Fatal(err)
		}
		for _, h := range toy.Held {
			ocular.Recommend(res.Model, toy.R, h[0], 1)
		}
	}
}

// BenchmarkFig2Community measures the community-detection comparison on the
// toy's bipartite graph: modularity and BIGCLAM plus recommendation
// extraction.
func BenchmarkFig2Community(b *testing.B) {
	toy := ocular.PaperToy()
	g := ocular.BipartiteGraph(toy.R)
	for i := 0; i < b.N; i++ {
		part := ocular.DetectModularity(g)
		ocular.CommunityRecommendations(part.Communities(), toy.R)
		bc, err := ocular.FitBigClam(g, ocular.BigClamConfig{K: 3, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		ocular.CommunityRecommendations(bc.Communities(ocular.BigClamDelta(g)), toy.R)
	}
}

// BenchmarkFig3Explain measures probability-matrix rendering and rationale
// construction for the worked example.
func BenchmarkFig3Explain(b *testing.B) {
	toy := ocular.PaperToy()
	res, err := ocular.Train(toy.R, ocular.Config{K: 3, Lambda: 0.1, MaxIter: 300, Tol: 1e-7, Seed: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ocular.RenderProbabilityMatrix(res.Model, toy.R)
		ex := ocular.ExplainPair(res.Model, toy.R, 6, 4)
		ex.Render(toy.Dataset)
	}
}

// table1Bench runs one train+evaluate instance of a Table I algorithm on
// the small planted dataset.
func table1Bench(b *testing.B, train func(r *ocular.Matrix) (ocular.Recommender, error)) {
	b.Helper()
	d := ocular.SyntheticSmall(1)
	sp := ocular.SplitDataset(d.Dataset, 0.75, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := train(sp.Train)
		if err != nil {
			b.Fatal(err)
		}
		ocular.Evaluate(rec, sp.Train, sp.Test, 50)
	}
}

// BenchmarkTable1OCuLaR measures one Table I instance for OCuLaR.
func BenchmarkTable1OCuLaR(b *testing.B) {
	table1Bench(b, func(r *ocular.Matrix) (ocular.Recommender, error) {
		res, err := ocular.Train(r, ocular.Config{K: 10, Lambda: 2, MaxIter: 40, Seed: 1})
		if err != nil {
			return nil, err
		}
		return res.Model, nil
	})
}

// BenchmarkTable1ROCuLaR measures one Table I instance for R-OCuLaR.
func BenchmarkTable1ROCuLaR(b *testing.B) {
	table1Bench(b, func(r *ocular.Matrix) (ocular.Recommender, error) {
		res, err := ocular.Train(r, ocular.Config{K: 10, Lambda: 30, Relative: true, MaxIter: 40, Seed: 1})
		if err != nil {
			return nil, err
		}
		return res.Model, nil
	})
}

// BenchmarkTable1WALS measures one Table I instance for wALS.
func BenchmarkTable1WALS(b *testing.B) {
	table1Bench(b, func(r *ocular.Matrix) (ocular.Recommender, error) {
		return ocular.TrainWALS(r, ocular.WALSConfig{K: 10, B: 0.01, Lambda: 0.01, Iters: 10, Seed: 1})
	})
}

// BenchmarkTable1BPR measures one Table I instance for BPR.
func BenchmarkTable1BPR(b *testing.B) {
	table1Bench(b, func(r *ocular.Matrix) (ocular.Recommender, error) {
		return ocular.TrainBPR(r, ocular.BPRConfig{K: 10, Epochs: 20, Seed: 1})
	})
}

// BenchmarkTable1UserBased measures one Table I instance for user-based CF.
func BenchmarkTable1UserBased(b *testing.B) {
	table1Bench(b, func(r *ocular.Matrix) (ocular.Recommender, error) {
		return ocular.TrainUserKNN(r, ocular.KNNConfig{Neighbors: 20})
	})
}

// BenchmarkTable1ItemBased measures one Table I instance for item-based CF.
func BenchmarkTable1ItemBased(b *testing.B) {
	table1Bench(b, func(r *ocular.Matrix) (ocular.Recommender, error) {
		return ocular.TrainItemKNN(r, ocular.KNNConfig{Neighbors: 20})
	})
}

// BenchmarkFig5Curves measures the multi-cutoff evaluation pass behind the
// recall/MAP-versus-M curves.
func BenchmarkFig5Curves(b *testing.B) {
	d := ocular.SyntheticSmall(2)
	sp := ocular.SplitDataset(d.Dataset, 0.75, 2)
	res, err := ocular.Train(sp.Train, ocular.Config{K: 10, Lambda: 2, MaxIter: 40, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	ms := []int{5, 10, 20, 30, 50}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ocular.EvaluateCurve(res.Model, sp.Train, sp.Test, ms)
	}
}

// BenchmarkFig6Sweep measures one (K, lambda) cell of the Fig 6 sweep:
// train, evaluate, extract co-clusters, compute shape stats.
func BenchmarkFig6Sweep(b *testing.B) {
	d := ocular.SyntheticSmall(3)
	sp := ocular.SplitDataset(d.Dataset, 0.75, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ocular.Train(sp.Train, ocular.Config{K: 8, Lambda: 5, MaxIter: 40, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		ocular.Evaluate(res.Model, sp.Train, sp.Test, 50)
		ocular.CoClusterStatsOf(ocular.CoClusters(res.Model, 0.3), sp.Train)
	}
}

// BenchmarkFig7Scalability measures training cost per iteration across
// dataset fractions and K, the linearity claim of Fig 7. Sub-benchmarks
// encode the sweep; compare ns/op across them.
func BenchmarkFig7Scalability(b *testing.B) {
	base := ocular.SyntheticNetflix(1, 0.08)
	for _, frac := range []float64{0.5, 1.0} {
		sub := ocular.Subsample(base.R, frac, 1)
		for _, k := range []int{10, 50} {
			b.Run(fmt.Sprintf("frac=%.1f/K=%d", frac, k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := ocular.Train(sub, ocular.Config{K: k, Lambda: 5, MaxIter: 1, Tol: 1e-12, Seed: 1}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig8Engines compares the serial and parallel training engines at
// equal work, the CPU analogue of the paper's CPU-vs-GPU comparison.
func BenchmarkFig8Engines(b *testing.B) {
	d := ocular.SyntheticNetflix(2, 0.08)
	for _, workers := range []int{1, 0} { // 0 = all cores
		name := "serial"
		if workers != 1 {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ocular.Train(d.R, ocular.Config{K: 20, Lambda: 5, MaxIter: 2, Tol: 1e-12, Seed: 1, Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig9GridSearch measures a small (K, lambda) grid search.
func BenchmarkFig9GridSearch(b *testing.B) {
	d := ocular.SyntheticSmall(4)
	sp := ocular.SplitDataset(d.Dataset, 0.75, 4)
	grid := ocular.GridSearchGrid{Ks: []int{4, 8}, Lambdas: []float64{1, 5}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ocular.GridSearch(sp.Train, sp.Test, grid, ocular.GridSearchOptions{
			M: 10, Base: ocular.Config{MaxIter: 10, Seed: 1},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10Rationale measures deployment-style explanation generation
// on the B2B substitute (model trained once; per-op cost is the rationale).
func BenchmarkFig10Rationale(b *testing.B) {
	d := ocular.SyntheticB2B(1)
	res, err := ocular.Train(d.R, ocular.Config{K: 25, Lambda: 5, MaxIter: 30, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := i % d.Users()
		recs := ocular.Recommend(res.Model, d.R, u, 1)
		if len(recs) > 0 {
			ex := ocular.ExplainPair(res.Model, d.R, u, recs[0])
			ex.Render(d.Dataset)
		}
	}
}

// BenchmarkServeRecommend measures end-to-end HTTP serving throughput of
// the online subsystem (internal/serve) on SyntheticSmall — the baseline
// for later scaling PRs. The "hit" variant replays a small set of users so
// nearly every request is answered from the sharded top-M cache; the
// "miss" variant disables the cache so every request pays the full
// ScoreUser + TopM ranking.
func BenchmarkServeRecommend(b *testing.B) {
	d := ocular.SyntheticSmall(1)
	res, err := ocular.Train(d.R, ocular.Config{K: 8, Lambda: 2, MaxIter: 60, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name      string
		cacheSize int
		users     int // distinct users cycled through
	}{
		{"hit", 4096, 4},
		{"miss", -1, d.Users()},
	} {
		b.Run(bc.name, func(b *testing.B) {
			srv, err := serve.New(res.Model, serve.Config{Train: d.R, CacheSize: bc.cacheSize})
			if err != nil {
				b.Fatal(err)
			}
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			client := ts.Client()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				body := fmt.Sprintf(`{"user": %d, "m": 10}`, i%bc.users)
				resp, err := client.Post(ts.URL+"/v1/recommend", "application/json", strings.NewReader(body))
				if err != nil {
					b.Fatal(err)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					b.Fatalf("status %d", resp.StatusCode)
				}
			}
			b.StopTimer()
			if bc.name == "hit" && b.N > bc.users && srv.Metrics().CacheHitRate() == 0 {
				b.Fatal("repeated-user benchmark saw zero cache hit rate")
			}
		})
	}
}
