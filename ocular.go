// Package ocular is the public API of this reproduction of "Scalable and
// interpretable product recommendations via overlapping co-clustering"
// (Heckel, Vlachos, Parnell, Duenner; ICDE 2017).
//
// The package re-exports the internal building blocks behind a single
// import: the OCuLaR and R-OCuLaR recommenders, the baselines the paper
// compares against (wALS, BPR, user- and item-based CF, modularity and
// BIGCLAM community detection), the evaluation protocol (recall@M, MAP@M),
// dataset loading and synthesis, and the interpretability layer
// (co-cluster extraction, textual rationales).
//
// Quick start:
//
//	d := ocular.SyntheticMovieLens(1)
//	split := ocular.SplitDataset(d.Dataset, 0.75, 42)
//	res, err := ocular.Train(split.Train, ocular.Config{K: 50, Lambda: 30})
//	if err != nil { ... }
//	recs := ocular.Recommend(res.Model, split.Train, user, 10)
//	fmt.Println(ocular.ExplainPair(res.Model, split.Train, user, recs[0]).Render(d.Dataset))
package ocular

import (
	"io"

	"repro/internal/baselines/bpr"
	"repro/internal/baselines/knn"
	"repro/internal/baselines/popularity"
	"repro/internal/baselines/wals"
	"repro/internal/community"
	"repro/internal/core"
	"repro/internal/cv"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/explain"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/sparse"
)

// --- Sparse one-class matrices -----------------------------------------

// Matrix is an immutable sparse binary user-item matrix; Matrix.Has(u, i)
// means r_ui = 1 (a positive example).
type Matrix = sparse.Matrix

// MatrixBuilder accumulates positive examples for a Matrix.
type MatrixBuilder = sparse.Builder

// NewMatrixBuilder returns a builder for a rows x cols matrix.
func NewMatrixBuilder(rows, cols int) *MatrixBuilder { return sparse.NewBuilder(rows, cols) }

// MatrixFromDense builds a Matrix from a dense boolean grid (tests, demos).
func MatrixFromDense(d [][]bool) *Matrix { return sparse.FromDense(d) }

// WriteMatrixMarket serializes a matrix in MatrixMarket coordinate pattern
// format, the standard sparse-data interchange format.
func WriteMatrixMarket(w io.Writer, m *Matrix) error { return sparse.WriteMatrixMarket(w, m) }

// ReadMatrixMarket parses a MatrixMarket coordinate stream (pattern,
// integer or real; non-zero values binarize to positives).
func ReadMatrixMarket(r io.Reader) (*Matrix, error) { return sparse.ReadMatrixMarket(r) }

// --- Datasets ------------------------------------------------------------

// Dataset bundles a rating matrix with optional user/item display names.
type Dataset = dataset.Dataset

// Toy is the paper's 12x12 introductory example (Figures 1-3) with its
// planted co-clusters and the three withheld in-cluster recommendations.
type Toy = dataset.Toy

// Planted is a synthetic dataset together with its ground-truth co-clusters.
type Planted = dataset.Planted

// PlantedConfig parameterizes the planted overlapping co-cluster generator.
type PlantedConfig = dataset.PlantedConfig

// LoadOptions controls rating-file parsing.
type LoadOptions = dataset.LoadOptions

// Split is a train/test division of a matrix's positives.
type Split = dataset.Split

// PaperToy reconstructs the paper's introductory example.
func PaperToy() *Toy { return dataset.PaperToy() }

// SyntheticMovieLens generates the MovieLens 1M substitute (DESIGN.md §4).
func SyntheticMovieLens(seed uint64) *Planted { return dataset.SyntheticMovieLens(seed) }

// SyntheticCiteULike generates the CiteULike substitute.
func SyntheticCiteULike(seed uint64) *Planted { return dataset.SyntheticCiteULike(seed) }

// SyntheticB2B generates the proprietary-B2B-DB substitute, with client and
// product names for explanation demos.
func SyntheticB2B(seed uint64) *Planted { return dataset.SyntheticB2B(seed) }

// SyntheticNetflix generates the Netflix substitute at a linear scale in
// (0, 1] (Fig 7 scalability sweeps).
func SyntheticNetflix(seed uint64, scale float64) *Planted {
	return dataset.SyntheticNetflix(seed, scale)
}

// SyntheticGeneExpression generates the gene-expression biclustering
// substrate of the paper's concluding application (genes x conditions with
// overlapping transcription modules).
func SyntheticGeneExpression(seed uint64) *Planted { return dataset.SyntheticGeneExpression(seed) }

// SyntheticSmall generates a small planted dataset that trains in
// milliseconds, for tests and demos.
func SyntheticSmall(seed uint64) *Planted { return dataset.SyntheticSmall(seed) }

// GeneratePlanted draws a dataset from an explicit planted co-cluster
// configuration.
func GeneratePlanted(cfg PlantedConfig, seed uint64) (*Planted, error) {
	return dataset.GeneratePlanted(cfg, rng.New(seed))
}

// LoadRatings parses a ratings stream (MovieLens ::, CSV, TSV formats).
func LoadRatings(src io.Reader, name string, opts LoadOptions) (*Dataset, error) {
	return dataset.LoadRatings(src, name, opts)
}

// MovieLensOptions are LoadOptions for MovieLens ratings.dat with the
// paper's rating >= 3 binarization.
func MovieLensOptions() LoadOptions { return dataset.MovieLensOptions() }

// SplitDataset splits the positives of m into train (trainFrac) and test
// matrices, the paper's 75/25 protocol. Reseed to draw independent problem
// instances.
func SplitDataset(d *Dataset, trainFrac float64, seed uint64) Split {
	return dataset.SplitEntries(d.R, trainFrac, rng.New(seed))
}

// SplitMatrix is SplitDataset for a bare matrix.
func SplitMatrix(m *Matrix, trainFrac float64, seed uint64) Split {
	return dataset.SplitEntries(m, trainFrac, rng.New(seed))
}

// Subsample keeps a uniformly random frac of m's positives, preserving the
// shape — the mechanism of the Fig 7 scalability sweep.
func Subsample(m *Matrix, frac float64, seed uint64) *Matrix {
	return dataset.SubsampleEntries(m, frac, rng.New(seed))
}

// --- OCuLaR / R-OCuLaR ----------------------------------------------------

// Config holds OCuLaR hyper-parameters (K, Lambda, Relative) and solver
// settings.
type Config = core.Config

// Model holds fitted OCuLaR affiliation factors.
type Model = core.Model

// Result bundles a trained model with its convergence trace.
type Result = core.Result

// Train fits an OCuLaR model (R-OCuLaR when cfg.Relative is set) to the
// positives in r.
func Train(r *Matrix, cfg Config) (*Result, error) { return core.Train(r, cfg) }

// ReadModel deserializes a model written with Model.WriteTo. Together they
// let a deployment train once and serve recommendations from saved factors.
func ReadModel(r io.Reader) (*Model, error) { return core.ReadModel(r) }

// LoadModelFile reads a model saved with Model.SaveModelFile (or WriteTo) —
// the loading half of the train-once/serve-many lifecycle that
// cmd/ocular-serve is built on. It copies and validates every byte; use
// OpenMappedModel to serve a v2 file in place.
func LoadModelFile(path string) (*Model, error) { return core.LoadModelFile(path) }

// SaveOptions configures the v2 model writer (Model.SaveModelFileOpts):
// set Float32 to append a quantized factor copy that serving scores at
// half the memory traffic.
type SaveOptions = core.SaveOptions

// MappedModel is a model served directly out of an mmapped v2 file —
// O(1) open and reload, zero-copy factors, optional float32 scoring.
type MappedModel = core.MappedModel

// Scorer is the scoring surface shared by *Model and *MappedModel.
type Scorer = core.Scorer

// OpenMappedModel maps the v2 model file at path in O(1). A legacy v1
// file yields an error wrapping core.ErrLegacyFormat; load those with
// LoadModelFile.
func OpenMappedModel(path string) (*MappedModel, error) { return core.OpenMappedModel(path) }

// MappedModelRange is an item-partitioned slice of an mmapped v2 model:
// all users, items [lo, hi) — what one shard of the sharded serving tier
// maps (cmd/ocular-serve -shard-lo/-shard-hi behind cmd/ocular-router).
type MappedModelRange = core.MappedModelRange

// OpenMappedModelRange maps only the item range [itemLo, itemHi) of the
// v2 model file at path (itemHi -1 means through the end of the
// catalogue). Scores over the slice are bit-identical to the same items
// scored through the full model.
func OpenMappedModelRange(path string, itemLo, itemHi int) (*MappedModelRange, error) {
	return core.OpenMappedModelRange(path, itemLo, itemHi)
}

// --- Evaluation -----------------------------------------------------------

// Recommender is the scoring interface all algorithms implement.
type Recommender = eval.Recommender

// Metrics aggregates recall@M, MAP@M and precision@M over evaluated users.
type Metrics = eval.Metrics

// Evaluate scores a recommender's top-M lists against test positives.
func Evaluate(rec Recommender, train, test *Matrix, m int) Metrics {
	return eval.Evaluate(rec, train, test, m)
}

// EvaluateCurve evaluates several cutoffs in one pass (Fig 5 curves);
// ms must be strictly ascending.
func EvaluateCurve(rec Recommender, train, test *Matrix, ms []int) []Metrics {
	return eval.EvaluateCurve(rec, train, test, ms)
}

// Recommend returns the top-M item indices for user u among items without
// training positives, best first.
func Recommend(rec Recommender, train *Matrix, u, m int) []int {
	return eval.TopM(rec, train, u, m, nil)
}

// AUC computes the mean per-user area under the ROC curve on held-out
// positives — the criterion BPR optimizes in expectation.
func AUC(rec Recommender, train, test *Matrix) float64 {
	return eval.AUC(rec, train, test)
}

// --- Interpretability -------------------------------------------------------

// CoCluster is an extracted user-item co-cluster.
type CoCluster = explain.CoCluster

// CoClusterStats aggregates co-cluster shape metrics (Fig 6).
type CoClusterStats = explain.Stats

// Explanation is a recommendation rationale (Section IV-C, Fig 10).
type Explanation = explain.Explanation

// ExplainOptions tunes explanation construction.
type ExplainOptions = explain.Options

// CoClusters extracts the model's co-clusters at the given membership
// threshold.
func CoClusters(m *Model, threshold float64) []CoCluster {
	return explain.ExtractCoClusters(m, threshold)
}

// CoClusterStatsOf computes shape metrics of clusters against r.
func CoClusterStatsOf(clusters []CoCluster, r *Matrix) CoClusterStats {
	return explain.ComputeStats(clusters, r)
}

// ExplainPair builds the rationale for recommending item i to user u with
// default options.
func ExplainPair(m *Model, train *Matrix, u, i int) Explanation {
	return explain.Explain(m, train, u, i, explain.Options{})
}

// ExplainPairOpts is ExplainPair with explicit options.
func ExplainPairOpts(m *Model, train *Matrix, u, i int, opts ExplainOptions) Explanation {
	return explain.Explain(m, train, u, i, opts)
}

// RenderProbabilityMatrix draws the fitted probability grid of Fig 3 for
// small matrices.
func RenderProbabilityMatrix(m *Model, r *Matrix) string {
	return explain.RenderProbabilityMatrix(m, r)
}

// --- Baselines ---------------------------------------------------------------

// WALSConfig holds wALS hyper-parameters (Pan et al. 2008).
type WALSConfig = wals.Config

// WALSModel is a fitted wALS factorization.
type WALSModel = wals.Model

// TrainWALS fits the weighted-ALS one-class baseline.
func TrainWALS(r *Matrix, cfg WALSConfig) (*WALSModel, error) { return wals.Train(r, cfg) }

// BPRConfig holds BPR hyper-parameters (Rendle et al. 2009).
type BPRConfig = bpr.Config

// BPRModel is a fitted BPR factorization.
type BPRModel = bpr.Model

// TrainBPR fits the Bayesian personalized ranking baseline.
func TrainBPR(r *Matrix, cfg BPRConfig) (*BPRModel, error) { return bpr.Train(r, cfg) }

// KNNConfig holds the neighborhood size for the k-NN baselines.
type KNNConfig = knn.Config

// UserKNNModel is a user-based cosine CF model.
type UserKNNModel = knn.UserModel

// ItemKNNModel is an item-based cosine CF model.
type ItemKNNModel = knn.ItemModel

// TrainUserKNN fits user-based collaborative filtering.
func TrainUserKNN(r *Matrix, cfg KNNConfig) (*UserKNNModel, error) { return knn.TrainUser(r, cfg) }

// TrainItemKNN fits item-based collaborative filtering.
func TrainItemKNN(r *Matrix, cfg KNNConfig) (*ItemKNNModel, error) { return knn.TrainItem(r, cfg) }

// PopularityModel is the non-personalized most-popular baseline.
type PopularityModel = popularity.Model

// TrainPopularity counts item popularity — the floor any personalized
// recommender must clear.
func TrainPopularity(r *Matrix) *PopularityModel { return popularity.Train(r) }

// --- Community detection (Fig 2 comparison) -----------------------------------

// Graph is an undirected graph.
type Graph = graph.Graph

// Partition is a non-overlapping community assignment.
type Partition = community.Partition

// BigClam is a fitted overlapping cluster-affiliation model.
type BigClam = community.BigClam

// BigClamConfig parameterizes a BIGCLAM fit.
type BigClamConfig = community.BigClamConfig

// BipartiteGraph lifts a rating matrix into its user-item graph (users
// first, then items offset by the user count).
func BipartiteGraph(r *Matrix) *Graph { return graph.NewBipartite(r) }

// DetectModularity runs greedy non-overlapping modularity maximization.
func DetectModularity(g *Graph) *Partition { return community.GreedyModularity(g) }

// FitBigClam fits the BIGCLAM overlapping community model.
func FitBigClam(g *Graph, cfg BigClamConfig) (*BigClam, error) {
	return community.FitBigClam(g, cfg)
}

// BigClamDelta returns the default BIGCLAM membership threshold for g.
func BigClamDelta(g *Graph) float64 { return community.DefaultDelta(g) }

// CommunityRecommendations converts communities over a bipartite graph's
// node ids into candidate (user, item) recommendations: same-community
// pairs without an observed positive.
func CommunityRecommendations(nodeSets [][]int, r *Matrix) [][2]int {
	return community.BipartiteRecommendations(nodeSets, r.Rows(), r.Has)
}

// --- Hyper-parameter search ------------------------------------------------

// GridSearchGrid is the (K, lambda) search space.
type GridSearchGrid = cv.Grid

// GridSearchOptions tunes the search.
type GridSearchOptions = cv.Options

// GridSearchResult is a completed search with its best cell.
type GridSearchResult = cv.Result

// GridSearch trains one OCuLaR model per (K, lambda) cell and scores it on
// test (Section IV-B protocol; Figs 6 and 9).
func GridSearch(train, test *Matrix, grid GridSearchGrid, opts GridSearchOptions) (*GridSearchResult, error) {
	return cv.Search(train, test, grid, opts)
}

// GridSearchKFold runs the grid search with k-fold cross-validation,
// averaging every cell's metrics over the folds — the paper's "determined
// from the data via cross-validation" protocol in full.
func GridSearchKFold(r *Matrix, grid GridSearchGrid, folds int, seed uint64, opts GridSearchOptions) (*GridSearchResult, error) {
	return cv.SearchKFold(r, grid, folds, seed, opts)
}

// RenderCoClusterMatrix draws the positives of r with rows and columns
// grouped by dominant co-cluster, visualizing the Fig 1 block structure
// ('#' positive, '+' strong recommendation). For small matrices.
func RenderCoClusterMatrix(m *Model, r *Matrix, threshold float64) string {
	return explain.RenderCoClusterMatrix(m, r, threshold)
}

// BiclusterModule, Jaccard and the recovery scores support the
// gene-expression application of the paper's conclusion (Prelic-style
// bicluster match scoring; see examples/genes).
type BiclusterModule = explain.Module

// ModuleJaccard returns the Jaccard similarity of two modules as cell sets.
func ModuleJaccard(a, b BiclusterModule) float64 { return explain.Jaccard(a, b) }

// RecoveryScore averages, over planted modules, the best Jaccard against
// any found module.
func RecoveryScore(planted, found []BiclusterModule) float64 {
	return explain.RecoveryScore(planted, found)
}

// RelevanceScore is the reverse match: how much of what was found is real.
func RelevanceScore(planted, found []BiclusterModule) float64 {
	return explain.RelevanceScore(planted, found)
}
