package feed

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func collect(t testing.TB, dir string) []Event {
	t.Helper()
	evs, err := Events(dir)
	if err != nil {
		t.Fatal(err)
	}
	return evs
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{{1, 2}, {3, 4}, {0, 0}, {1 << 20, 7}}
	if err := l.Append(want[:2]...); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(want[2:]...); err != nil {
		t.Fatal(err)
	}
	if got := l.Count(); got != int64(len(want)) {
		t.Fatalf("Count() = %d, want %d", got, len(want))
	}
	// Package-level replay sees flushed appends without a Close.
	got := collect(t, dir)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("replay = %v, want %v", got, want)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen recovers the count.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.Count(); got != int64(len(want)) {
		t.Fatalf("reopened Count() = %d, want %d", got, len(want))
	}
}

func TestAppendRejectsHugeIDs(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(Event{MaxID, 0}); err == nil {
		t.Error("user at MaxID accepted")
	}
	if err := l.Append(Event{0, MaxID}); err == nil {
		t.Error("item at MaxID accepted")
	}
	if got := l.Count(); got != 0 {
		t.Errorf("rejected events counted: %d", got)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	// Room for 3 records per segment.
	l, err := Open(dir, Options{SegmentBytes: magicSize + 3*recordSize})
	if err != nil {
		t.Fatal(err)
	}
	var want []Event
	for i := 0; i < 10; i++ {
		e := Event{uint32(i), uint32(i * 2)}
		want = append(want, e)
		if err := l.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if segs := l.Segments(); segs < 4 {
		t.Fatalf("Segments() = %d, want >= 4 after 10 records at 3/segment", segs)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got := collect(t, dir)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("replay across segments = %v, want %v", got, want)
	}
	n, err := Count(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(want)) {
		t.Fatalf("Count(dir) = %d, want %d", n, len(want))
	}
	// Reopen continues in a fresh segment (the last rotated at capacity)
	// and appends land after the existing records.
	l2, err := Open(dir, Options{SegmentBytes: magicSize + 3*recordSize})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if err := l2.Append(Event{99, 99}); err != nil {
		t.Fatal(err)
	}
	got = collect(t, dir)
	if len(got) != len(want)+1 || got[len(got)-1] != (Event{99, 99}) {
		t.Fatalf("append after reopen: replay = %v", got)
	}
}

// lastSegment returns the path of the highest-numbered segment file.
func lastSegment(t testing.TB, dir string) string {
	t.Helper()
	segs, err := segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 {
		t.Fatal("no segments")
	}
	return filepath.Join(dir, segs[len(segs)-1].name)
}

// TestTornTailRecovery is the crash-recovery contract: a torn tail on the
// active segment (short record, corrupted checksum, or even a torn magic)
// is truncated on Open, replay sees exactly the intact prefix, and the
// log keeps accepting appends afterwards — so a crashed writer replays
// idempotently into the same training matrix.
func TestTornTailRecovery(t *testing.T) {
	cases := []struct {
		name string
		tear func(t *testing.T, path string)
	}{
		{"short record", func(t *testing.T, path string) {
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write([]byte{1, 2, 3, 4, 5}); err != nil {
				t.Fatal(err)
			}
			f.Close()
		}},
		{"corrupt checksum", func(t *testing.T, path string) {
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			// A full-size record whose checksum cannot match.
			if _, err := f.Write(make([]byte, recordSize)); err != nil {
				t.Fatal(err)
			}
			f.Close()
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			want := []Event{{1, 1}, {2, 2}, {3, 3}}
			if err := l.Append(want...); err != nil {
				t.Fatal(err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			tc.tear(t, lastSegment(t, dir))

			// A reader sees only the intact prefix even before recovery.
			if got := collect(t, dir); fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("replay before recovery = %v, want %v", got, want)
			}

			l2, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if got := l2.Count(); got != int64(len(want)) {
				t.Fatalf("recovered Count() = %d, want %d", got, len(want))
			}
			if err := l2.Append(Event{4, 4}); err != nil {
				t.Fatal(err)
			}
			if err := l2.Close(); err != nil {
				t.Fatal(err)
			}
			got := collect(t, dir)
			want = append(want, Event{4, 4})
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("replay after recovery+append = %v, want %v", got, want)
			}
		})
	}
}

func TestTornMagicRecovery(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash between segment creation and a durable magic: the
	// file exists with a partial magic.
	path := lastSegment(t, dir)
	if err := os.WriteFile(path, []byte("OCF"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, dir); len(got) != 0 {
		t.Fatalf("replay of torn-magic segment = %v, want empty", got)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if err := l2.Append(Event{7, 7}); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, dir); len(got) != 1 || got[0] != (Event{7, 7}) {
		t.Fatalf("replay after torn-magic recovery = %v", got)
	}
}

func TestSealedSegmentCorruptionIsAnError(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: magicSize + 2*recordSize})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ { // several sealed segments
		if err := l.Append(Event{uint32(i), 0}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("want >= 3 segments, got %d", len(segs))
	}
	// Corrupt a record in the FIRST (sealed, fsynced) segment: rotation
	// promised durability, so this is damage, not a crash artifact.
	first := filepath.Join(dir, segs[0].name)
	f, err := os.OpenFile(first, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, magicSize+2); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := Events(dir); err == nil {
		t.Fatal("replay of corrupt sealed segment succeeded")
	}
	// A sealed segment that lost bytes (torn size) is caught by Open's
	// framing check as well.
	if err := os.Truncate(first, segs[0].size-3); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open with torn sealed segment succeeded")
	}
}

func TestCountMissingDirIsZero(t *testing.T) {
	n, err := Count(filepath.Join(t.TempDir(), "nope"))
	if err != nil || n != 0 {
		t.Fatalf("Count(missing) = %d, %v; want 0, nil", n, err)
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := Open(t.TempDir(), Options{SegmentBytes: 5}); err == nil {
		t.Fatal("tiny SegmentBytes accepted")
	}
}

// BenchmarkFeedAppend measures the batched append path (64 events per
// call, flush-per-batch, no fsync), the cost /v1/ingest pays per request.
func BenchmarkFeedAppend(b *testing.B) {
	l, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	batch := make([]Event, 64)
	for i := range batch {
		batch[i] = Event{uint32(i), uint32(i)}
	}
	b.SetBytes(int64(len(batch)) * recordSize)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if err := l.Append(batch...); err != nil {
			b.Fatal(err)
		}
	}
}

// TestWriterRepairsAfterFailedAppend: a transient write failure (bufio's
// sticky error) must not brick the log for the life of the process — the
// next operation rescans the active segment, truncates whatever partial
// bytes the failed write left, and appends cleanly.
func TestWriterRepairsAfterFailedAppend(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Event{User: 1, Item: 1}, Event{User: 2, Item: 2}); err != nil {
		t.Fatal(err)
	}
	// Simulate the aftermath of a failed flush: some garbage reached the
	// file and the writer is marked broken.
	l.mu.Lock()
	if _, err := l.f.Write([]byte{9, 9, 9, 9, 9}); err != nil {
		l.mu.Unlock()
		t.Fatal(err)
	}
	l.size += 5
	l.broken = true
	l.mu.Unlock()

	// The next append repairs (truncating the partial bytes) and lands.
	if err := l.Append(Event{User: 3, Item: 3}); err != nil {
		t.Fatalf("append after repair: %v", err)
	}
	if got := l.Count(); got != 3 {
		t.Errorf("Count() = %d after repair, want 3", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got := collect(t, dir)
	want := []Event{{1, 1}, {2, 2}, {3, 3}}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("replay after repair = %v, want %v", got, want)
	}
}
