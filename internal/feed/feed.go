// Package feed is the interaction log of the continuous-training
// pipeline: an append-only, checksummed record of new positive examples
// (user, item pairs) arriving after the served model was trained. The
// serving layer appends through /v1/ingest; the trainer replays the log,
// folds it into the training matrix, and retrains.
//
// The log is a directory of numbered segment files. Each segment starts
// with an 8-byte magic and holds fixed-size 12-byte records: user and
// item as little-endian uint32 followed by a CRC-32 (IEEE) of the two.
// Appends are batched through a buffered writer and flushed to the OS on
// every Append call (so same-machine readers see them immediately);
// durability points are segment rotation, Sync and Close, which fsync.
// A crash can therefore tear only the tail of the active segment, and
// only past the last Sync: Open scans the last segment and truncates the
// tail at the first short or checksum-failing record. Sealed segments
// (everything but the last) were fsynced by rotation, so a malformed
// record in one is reported as corruption, not repaired.
//
// Replay is idempotent by construction downstream: records are (user,
// item) positives, and the training matrix builder deduplicates, so
// replaying a prefix twice or appending the same pair again cannot
// change the trained model.
//
// A log has a single writer process; Open does not lock the directory.
// Concurrent readers (Replay, Count) are safe from any process.
package feed

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/fsutil"
)

const (
	segMagic   = "OCFEED:1"
	magicSize  = 8
	recordSize = 12
	segSuffix  = ".seg"
)

// MaxID bounds user and item ids, mirroring the model reader's dimension
// guard: an id at or above MaxID can never index a servable model, so it
// is rejected at the door rather than poisoning the training matrix.
const MaxID = 1 << 28

// DefaultSegmentBytes is the rotation threshold when Options.SegmentBytes
// is zero: ~5.6M records per segment.
const DefaultSegmentBytes = 64 << 20

// Event is one logged positive example.
type Event struct {
	User, Item uint32
}

// Options tunes a Log. The zero value uses DefaultSegmentBytes.
type Options struct {
	// SegmentBytes is the size at which the active segment is sealed
	// (fsynced, closed) and a new one started. 0 means
	// DefaultSegmentBytes; values below one record's worth are rejected.
	SegmentBytes int64
}

// Log is the single-writer handle of a feed directory. All methods are
// safe for concurrent use.
type Log struct {
	dir  string
	opts Options

	mu     sync.Mutex
	f      *os.File      // active segment
	w      *bufio.Writer // buffers record batches into f
	size   int64         // bytes in the active segment (including buffered)
	seq    int           // active segment sequence number
	count  int64         // records across all segments (including buffered)
	sealed int           // sealed (rotated) segments
	closed bool
	// countSealed is the record count across sealed segments only; the
	// repair path recomputes count as countSealed plus a rescan of the
	// active segment.
	countSealed int64
	// broken marks a failed write or flush on the active segment: the
	// bufio error is sticky and an unknown prefix of the batch may have
	// reached the file, so the next operation re-opens and re-scans the
	// active segment (truncating any torn tail) instead of wedging every
	// later append behind one transient ENOSPC.
	broken bool
}

// Open opens (creating if needed) the feed log in dir and recovers from a
// crash: the tail of the last segment is truncated at the first torn or
// checksum-failing record, so the next Append lands after the last intact
// one and a replay never observes partial writes.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentBytes == 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.SegmentBytes < magicSize+recordSize {
		return nil, fmt.Errorf("feed: SegmentBytes %d below one record's worth (%d)", opts.SegmentBytes, magicSize+recordSize)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("feed: %w", err)
	}
	segs, err := segments(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts}
	if len(segs) == 0 {
		if err := l.startSegment(1); err != nil {
			return nil, err
		}
		return l, nil
	}
	// Sealed segments were fsynced by rotation; only count them.
	for _, s := range segs[:len(segs)-1] {
		n, err := sealedCount(filepath.Join(dir, s.name), s.size)
		if err != nil {
			return nil, err
		}
		l.count += n
		l.sealed++
	}
	l.countSealed = l.count
	// The last segment may have a torn tail; scan and truncate.
	last := segs[len(segs)-1]
	path := filepath.Join(dir, last.name)
	good, n, err := scanSegment(path)
	if err != nil {
		return nil, err
	}
	if good < magicSize {
		// The crash tore the segment's own magic (created but never
		// synced); recreate it from scratch.
		if err := os.Remove(path); err != nil {
			return nil, fmt.Errorf("feed: recreating torn segment %s: %w", last.name, err)
		}
		if err := l.startSegment(last.seq); err != nil {
			return nil, err
		}
		return l, nil
	}
	if good < last.size {
		if err := os.Truncate(path, good); err != nil {
			return nil, fmt.Errorf("feed: truncating torn tail of %s: %w", last.name, err)
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		return nil, fmt.Errorf("feed: %w", err)
	}
	l.f = f
	l.w = bufio.NewWriterSize(f, 1<<16)
	l.size = good
	l.seq = last.seq
	l.count += n
	return l, nil
}

// startSegment creates segment seq and installs it as the active one.
// Caller holds l.mu (or the log is not yet shared).
func (l *Log) startSegment(seq int) error {
	f, w, err := l.createSegment(seq)
	if err != nil {
		return err
	}
	l.f, l.w, l.size, l.seq = f, w, magicSize, seq
	return nil
}

// createSegment creates segment seq, writes its magic and makes the file
// durable in the directory, without touching the log's state — so a
// failed creation (ENOSPC, a full directory fsync) leaves the current
// active segment untouched and usable.
func (l *Log) createSegment(seq int) (*os.File, *bufio.Writer, error) {
	path := filepath.Join(l.dir, segName(seq))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("feed: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<16)
	if _, err := w.WriteString(segMagic); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("feed: %w", err)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("feed: %w", err)
	}
	if err := fsutil.SyncDir(l.dir); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("feed: %w", err)
	}
	return f, w, nil
}

// Append logs a batch of events. The batch is buffered and flushed to the
// operating system before Append returns (readers on the same machine see
// it); it becomes crash-durable at the next rotation, Sync or Close. The
// active segment rotates automatically once it reaches SegmentBytes.
func (l *Log) Append(events ...Event) error {
	if len(events) == 0 {
		return nil
	}
	for _, e := range events {
		if e.User >= MaxID || e.Item >= MaxID {
			return fmt.Errorf("feed: event (%d,%d) exceeds id bound %d", e.User, e.Item, MaxID)
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("feed: log is closed")
	}
	if err := l.repairLocked(); err != nil {
		return err
	}
	var buf [recordSize]byte
	for _, e := range events {
		binary.LittleEndian.PutUint32(buf[0:], e.User)
		binary.LittleEndian.PutUint32(buf[4:], e.Item)
		binary.LittleEndian.PutUint32(buf[8:], crc32.ChecksumIEEE(buf[:8]))
		if _, err := l.w.Write(buf[:]); err != nil {
			l.broken = true
			return fmt.Errorf("feed: %w", err)
		}
	}
	if err := l.w.Flush(); err != nil {
		l.broken = true
		return fmt.Errorf("feed: %w", err)
	}
	// Counters advance only after a successful flush: on failure an
	// unknown prefix of the batch reached the file, and the repair rescan
	// (not an optimistic increment) decides what actually counts.
	l.size += int64(len(events)) * recordSize
	l.count += int64(len(events))
	if l.size >= l.opts.SegmentBytes {
		return l.rotateLocked()
	}
	return nil
}

// repairLocked recovers a writer marked broken: it abandons the current
// handle, rescans the active segment exactly like Open does (truncating
// any torn tail the failed writes left), reopens it for append and
// recomputes the counters. Caller holds l.mu.
func (l *Log) repairLocked() error {
	if !l.broken {
		return nil
	}
	l.f.Close() // best effort; the handle is being abandoned either way
	path := filepath.Join(l.dir, segName(l.seq))
	good, n, err := scanSegment(path)
	if err != nil {
		return fmt.Errorf("feed: repairing after write failure: %w", err)
	}
	if good < magicSize {
		// Even the magic is gone; recreate the segment wholesale.
		if err := os.Remove(path); err != nil {
			return fmt.Errorf("feed: repairing after write failure: %w", err)
		}
		if err := l.startSegment(l.seq); err != nil {
			return err
		}
		l.count = l.countSealed
		l.broken = false
		return nil
	}
	if err := os.Truncate(path, good); err != nil {
		return fmt.Errorf("feed: repairing after write failure: %w", err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		return fmt.Errorf("feed: repairing after write failure: %w", err)
	}
	l.f = f
	l.w = bufio.NewWriterSize(f, 1<<16)
	l.size = good
	l.count = l.countSealed + n
	l.broken = false
	return nil
}

// Sync makes every appended record durable (fsync of the active segment).
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("feed: log is closed")
	}
	if err := l.repairLocked(); err != nil {
		return err
	}
	if err := l.w.Flush(); err != nil {
		l.broken = true
		return fmt.Errorf("feed: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("feed: %w", err)
	}
	return nil
}

// Rotate seals the active segment (flush, fsync, close) and starts the
// next one. Appends after a crash can then only tear the new segment.
func (l *Log) Rotate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("feed: log is closed")
	}
	if err := l.repairLocked(); err != nil {
		return err
	}
	return l.rotateLocked()
}

func (l *Log) rotateLocked() error {
	if err := l.w.Flush(); err != nil {
		l.broken = true
		return fmt.Errorf("feed: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("feed: %w", err)
	}
	// Create the next segment before retiring this one: if creation fails
	// (disk full), the log keeps appending to the current segment and the
	// next Append retries the rotation — a transient condition must not
	// leave the log pointing at a closed file.
	f, w, err := l.createSegment(l.seq + 1)
	if err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		// The new segment is installed regardless: the old one is synced,
		// and abandoning the fresh segment over a close error would lose
		// more than it saves.
		l.f, l.w, l.size, l.seq = f, w, magicSize, l.seq+1
		l.sealed++
		l.countSealed = l.count
		return fmt.Errorf("feed: closing sealed segment: %w", err)
	}
	l.f, l.w, l.size, l.seq = f, w, magicSize, l.seq+1
	l.sealed++
	l.countSealed = l.count
	return nil
}

// Close flushes, fsyncs and closes the active segment. The log must not
// be used afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.repairLocked(); err != nil {
		l.f.Close()
		return err
	}
	if err := l.w.Flush(); err != nil {
		l.f.Close()
		return fmt.Errorf("feed: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return fmt.Errorf("feed: %w", err)
	}
	return l.f.Close()
}

// Count returns the number of records appended across all segments,
// including records not yet crash-durable.
func (l *Log) Count() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.count
}

// Segments returns the number of segment files (sealed plus active).
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sealed + 1
}

// Dir returns the feed directory.
func (l *Log) Dir() string { return l.dir }

// Replay flushes the writer's buffer and replays every record in the log
// in append order. It is the in-process variant of the package-level
// Replay.
func (l *Log) Replay(fn func(Event) error) (int64, error) {
	l.mu.Lock()
	if !l.closed {
		if err := l.repairLocked(); err != nil {
			l.mu.Unlock()
			return 0, err
		}
		if err := l.w.Flush(); err != nil {
			l.broken = true
			l.mu.Unlock()
			return 0, fmt.Errorf("feed: %w", err)
		}
	}
	l.mu.Unlock()
	return Replay(l.dir, fn)
}

// --- Package-level readers (cross-process: the trainer) -----------------

type segInfo struct {
	name string
	seq  int
	size int64
}

// segments lists the segment files of dir ascending by sequence number.
func segments(dir string) ([]segInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("feed: %w", err)
	}
	var segs []segInfo
	for _, e := range entries {
		name := e.Name()
		var seq int
		if _, err := fmt.Sscanf(name, "%08d.seg", &seq); err != nil || segName(seq) != name {
			continue // not a segment file
		}
		info, err := e.Info()
		if err != nil {
			return nil, fmt.Errorf("feed: %w", err)
		}
		segs = append(segs, segInfo{name: name, seq: seq, size: info.Size()})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	for i, s := range segs {
		if s.seq != i+1 {
			return nil, fmt.Errorf("feed: segment sequence gap: found %s at position %d", s.name, i)
		}
	}
	return segs, nil
}

func segName(seq int) string { return fmt.Sprintf("%08d%s", seq, segSuffix) }

// sealedCount validates the framing of a sealed segment and returns its
// record count. Sealed segments were fsynced before the next was started,
// so a short or misaligned one is corruption, not a crash artifact.
func sealedCount(path string, size int64) (int64, error) {
	if size < magicSize || (size-magicSize)%recordSize != 0 {
		return 0, fmt.Errorf("feed: sealed segment %s has torn size %d", filepath.Base(path), size)
	}
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("feed: %w", err)
	}
	defer f.Close()
	if err := checkMagic(f, path); err != nil {
		return 0, err
	}
	return (size - magicSize) / recordSize, nil
}

func checkMagic(f *os.File, path string) error {
	var magic [magicSize]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		return fmt.Errorf("feed: reading magic of %s: %w", filepath.Base(path), err)
	}
	if string(magic[:]) != segMagic {
		return fmt.Errorf("feed: %s is not a feed segment (magic %q)", filepath.Base(path), magic)
	}
	return nil
}

// scanSegment walks the active segment verifying record checksums and
// returns the byte offset just past the last intact record plus the
// intact record count. Records after a tear (short write or checksum
// mismatch) are ignored; a missing or mangled magic counts as a tear at
// offset zero, since the magic write itself is only fsynced with the
// first Sync or rotation.
func scanSegment(path string) (good int64, records int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, fmt.Errorf("feed: %w", err)
	}
	defer f.Close()
	var magic [magicSize]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil || string(magic[:]) != segMagic {
		return 0, 0, nil
	}
	br := bufio.NewReaderSize(f, 1<<16)
	good = magicSize
	var rec [recordSize]byte
	for {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return good, records, nil // short tail (or clean EOF): tear here
		}
		if crc32.ChecksumIEEE(rec[:8]) != binary.LittleEndian.Uint32(rec[8:]) {
			return good, records, nil // checksum tear
		}
		good += recordSize
		records++
	}
}

// Replay reads every record of the feed at dir in append order, calling
// fn for each; a non-nil error from fn aborts the replay. The torn tail
// of the last segment (a writer crash, or a writer racing the read) is
// skipped; a torn record in a sealed segment is an error. Returns the
// number of records delivered.
func Replay(dir string, fn func(Event) error) (int64, error) {
	segs, err := segments(dir)
	if err != nil {
		return 0, err
	}
	var total int64
	for si, s := range segs {
		last := si == len(segs)-1
		n, err := replaySegment(filepath.Join(dir, s.name), s.size, last, fn)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

func replaySegment(path string, size int64, last bool, fn func(Event) error) (int64, error) {
	if !last && (size < magicSize || (size-magicSize)%recordSize != 0) {
		return 0, fmt.Errorf("feed: sealed segment %s has torn size %d", filepath.Base(path), size)
	}
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("feed: %w", err)
	}
	defer f.Close()
	var magic [magicSize]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil || string(magic[:]) != segMagic {
		if last {
			return 0, nil // the active segment's magic write itself tore
		}
		return 0, fmt.Errorf("feed: %s is not a feed segment", filepath.Base(path))
	}
	br := bufio.NewReaderSize(f, 1<<16)
	var n int64
	var rec [recordSize]byte
	for {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			if err == io.EOF || last {
				return n, nil
			}
			return n, fmt.Errorf("feed: torn record in sealed segment %s", filepath.Base(path))
		}
		if crc32.ChecksumIEEE(rec[:8]) != binary.LittleEndian.Uint32(rec[8:]) {
			if last {
				return n, nil
			}
			return n, fmt.Errorf("feed: checksum mismatch in sealed segment %s", filepath.Base(path))
		}
		if err := fn(Event{
			User: binary.LittleEndian.Uint32(rec[0:]),
			Item: binary.LittleEndian.Uint32(rec[4:]),
		}); err != nil {
			return n, err
		}
		n++
	}
}

// Events replays the feed at dir into a slice.
func Events(dir string) ([]Event, error) {
	var out []Event
	_, err := Replay(dir, func(e Event) error {
		out = append(out, e)
		return nil
	})
	return out, err
}

// Count estimates the record count of the feed at dir from segment sizes
// alone — the cheap poll the trainer's retrain trigger runs. It never
// reads record bytes, so a checksum-failing record in a torn tail is
// still counted; the replay that follows a triggered retrain is the
// precise reader. A missing directory counts as empty.
func Count(dir string) (int64, error) {
	segs, err := segments(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, nil
		}
		return 0, err
	}
	var total int64
	for _, s := range segs {
		if s.size > magicSize {
			total += (s.size - magicSize) / recordSize
		}
	}
	return total, nil
}
