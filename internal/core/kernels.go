package core

import (
	"math"

	"repro/internal/linalg"
	"repro/internal/parallel"
)

// This file holds the fused training kernels — the CPU counterpart of the
// paper's Section VI GPU kernels, which compute the objective and gradient
// of a subproblem in a single pass over its positive examples.
//
// The reference implementation (train.go: partialObjective + gradient) walks
// the positives list twice per projected-gradient step, recomputing
// d = ⟨f, g⟩ and e^{−z} in each walk, and then re-walks the list in full
// O(|pos|·K) for every Armijo backtracking candidate. The fused path
// removes both redundancies:
//
//  1. fusedObjGrad emits Q(f), ∇Q(f) and the per-positive inner products
//     dF[j] = ⟨f, g_j⟩ in ONE pass, computing each dot product and
//     exponential once. The Armijo reference value qOld falls out for free.
//
//  2. The line search is incremental. A backtracking candidate is
//     f⁺ = (f − α·∇Q)₊, so with dG[j] = ⟨∇Q, g_j⟩ precomputed,
//
//     ⟨f⁺, g_j⟩ = dF[j] − α·dG[j] + Σ_{c ∈ clamped} (α·∇Q_c − f_c)·g_jc,
//
//     which costs O(|clamped|) per positive instead of O(K). When most
//     coordinates clamp (factors are sparse near convergence), the dual
//     form Σ_{c ∈ live} f⁺_c·g_jc over the surviving coordinates is used
//     instead; the evaluation is never worse than O(min(|clamped|, |live|))
//     per positive. dG is computed lazily — candidates that resolve through
//     the live-coordinate path never pay for it.
//
//  3. The convergence-check objective is assembled from the line-search
//     partials instead of a separate O(nnz·K) pass. Summing eq. (5) over
//     all users gives Σ_u q_u = ⟨Σf_u, Σf_i⟩ − Σ_+ z − Σ_+ w·log(1−e^{−z})
//     + λ‖f_u‖², i.e. the full eq. (4) objective short of λ‖f_i‖² — and
//     the user sweep (the second half-sweep, which sees the iteration's
//     final state) already computes every q_u for the Armijo test. See
//     trainer.traceObjective.
//
// The fused path changes floating-point summation order relative to the
// reference kernels, so trained models agree to rounding (objective traces
// within 1e-9 relative — asserted by kernels_test.go) rather than bitwise.
// Serial and parallel schedules of the SAME path remain bit-identical: the
// kernels are deterministic per subproblem and all cross-row reductions go
// through the fixed-block parallel.SumVectors/ReduceSum.

// updateFactorFused performs the projected-gradient-with-backtracking update
// of Section IV-D on factor f (length K) using the fused one-pass kernels
// and the incremental line search. scratch provides the per-worker arenas.
//
// The returned value is the partial objective (eq. 5) at the factor left in
// f — the accepted candidate's line-search value, or the fused-pass qOld
// when no step was accepted. The user sweep sums these per-row partials
// into the full objective (see trainer.traceObjective), which makes the
// per-iteration convergence check free.
func (t *trainer) updateFactorFused(f []float64, side sideCtx, scratch *parallel.Scratch) float64 {
	k := t.cfg.K
	p := len(side.pos)
	// Raw borrows: every region is fully written before it is read (grad and
	// dF by fusedObjGrad, cand per candidate, dG under dGReady, the index
	// arenas up to their counters), so the zeroing pass is skipped.
	buf := scratch.Float64sRaw(2*k + 2*p)
	grad, cand := buf[0:k], buf[k:2*k]
	dF, dG := buf[2*k:2*k+p], buf[2*k+p:2*k+2*p]
	ib := scratch.IntsRaw(2 * k)
	clampArena, liveArena := ib[0:k], ib[k:2*k]

	var qFinal float64
	for step := 0; step < t.cfg.GradSteps; step++ {
		qOld := t.fusedObjGrad(f, side, grad, dF)
		qFinal = qOld
		dGReady := false

		alpha := 1.0
		accepted := false
		for bt := 0; bt < t.cfg.MaxBacktrack; bt++ {
			nc, nl := 0, 0
			dir := 0.0
			for c := 0; c < k; c++ {
				v := f[c] - alpha*grad[c]
				if v < 0 {
					v = 0
					clampArena[nc] = c
					nc++
				} else if v != 0 {
					liveArena[nl] = c
					nl++
				}
				cand[c] = v
				// Armijo along the projection arc:
				// Q(f⁺) − Q(f) ≤ σ⟨∇Q(f), f⁺ − f⟩.
				dir += grad[c] * (v - f[c])
			}
			clamp, live := clampArena[:nc], liveArena[:nl]
			incremental := nc <= nl
			if incremental && !dGReady && p > 0 {
				for j, idx := range side.pos {
					g := side.others[int(idx)*k : (int(idx)+1)*k]
					dG[j] = linalg.Dot(grad, g)
				}
				dGReady = true
			}
			qNew := t.candObjective(cand, side, alpha, f, grad, dF, dG, clamp, live, incremental)
			if qNew-qOld <= t.cfg.Sigma*dir {
				copy(f, cand)
				qFinal = qNew
				accepted = true
				break
			}
			alpha *= t.cfg.Beta
		}
		if !accepted {
			// No step satisfied the Armijo condition within the budget;
			// keep the current factor (a zero step preserves descent) and
			// stop iterating this subproblem.
			break
		}
	}
	return qFinal
}

// logProd accumulates a product Π x_j of values in (0, 1] with periodic
// renormalization, so that Σ log x_j can be evaluated as a single logarithm
// at the end: log x_1 + … + log x_p = log(mant) + exp·log 2. math.Log is
// the single most expensive operation of the training inner loops
// (profiles put it near 40% of a serial sweep), and when a subproblem's
// positives share one weight the batched form replaces |pos| logarithms
// with one. Renormalization triggers well above the subnormal range, so no
// precision is lost; the absolute error of the batched sum is O(p·ε),
// within the 1e-9 kernel-equivalence budget for any realistic row.
type logProd struct {
	mant float64
	exp  int
}

func (lp *logProd) init() { lp.mant, lp.exp = 1, 0 }

func (lp *logProd) mul(x float64) {
	lp.mant *= x
	if lp.mant < 0x1p-512 {
		m, e := math.Frexp(lp.mant)
		lp.mant = m
		lp.exp += e
	}
}

func (lp *logProd) log() float64 { return math.Log(lp.mant) + float64(lp.exp)*math.Ln2 }

// fusedObjGrad computes, in a single pass over side.pos, the partial
// objective Q(f) of eq. (5), its gradient ∇Q(f) of eq. (6), and the
// per-positive inner products dF[j] = ⟨f, g_j⟩. Each dot product and
// e^{−z} is evaluated once and feeds both outputs. When the positives
// share one weight (user sweeps always; item sweeps unless R-OCuLaR
// supplies per-user weights) the log terms are batched through logProd.
func (t *trainer) fusedObjGrad(f []float64, side sideCtx, grad, dF []float64) float64 {
	k := t.cfg.K
	lam := t.cfg.Lambda
	for c := 0; c < k; c++ {
		grad[c] = t.sum[c] + 2*lam*f[c]
	}
	q := linalg.Dot(f, t.sum) + lam*linalg.Norm2Sq(f)
	batch := side.wTable == nil
	var lp logProd
	lp.init()
	for j, idx := range side.pos {
		g := side.others[int(idx)*k : (int(idx)+1)*k]
		d := linalg.Dot(f, g)
		dF[j] = d
		z := clampDot(d + side.bias(idx))
		e := math.Exp(-z)
		w := side.weight(idx)
		q -= d // move this positive pair out of the ⟨f, Σ_all⟩ term
		if batch {
			lp.mul(1 - e)
		} else {
			q -= w * math.Log(1-e)
		}
		// Remove g from the Σ_0 part and add the log-term gradient:
		// combined coefficient −(1 + w·e^{−z}/(1−e^{−z})).
		linalg.Axpy(-(1 + w*e/(1-e)), g, grad)
	}
	if batch && len(side.pos) > 0 {
		q -= side.wScalar * lp.log()
	}
	return q
}

// candObjective evaluates the partial objective at the line-search candidate
// cand = (f − α·grad)₊ using the incremental inner products. clamp holds the
// coordinates projected to zero, live the coordinates with cand[c] > 0
// (coordinates that land exactly on zero without clamping contribute nothing
// to either form). incremental selects the dF/dG correction form; otherwise
// the dot products are rebuilt from the live coordinates only.
func (t *trainer) candObjective(cand []float64, side sideCtx, alpha float64,
	f, grad, dF, dG []float64, clamp, live []int, incremental bool) float64 {
	k := t.cfg.K
	q := linalg.Dot(cand, t.sum) + t.cfg.Lambda*linalg.Norm2Sq(cand)
	batch := side.wTable == nil
	var lp logProd
	lp.init()
	for j, idx := range side.pos {
		g := side.others[int(idx)*k : (int(idx)+1)*k]
		var d float64
		if incremental {
			d = dF[j] - alpha*dG[j]
			for _, c := range clamp {
				d += (alpha*grad[c] - f[c]) * g[c]
			}
		} else {
			for _, c := range live {
				d += cand[c] * g[c]
			}
		}
		z := d + side.bias(idx)
		q -= d
		if batch {
			lp.mul(1 - math.Exp(-clampDot(z)))
		} else {
			q -= side.weight(idx) * math.Log(1-math.Exp(-clampDot(z)))
		}
	}
	if batch && len(side.pos) > 0 {
		q -= side.wScalar * lp.log()
	}
	return q
}
