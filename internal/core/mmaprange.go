package core

import (
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"unsafe"

	"repro/internal/linalg"
)

// MappedModelRange is the shard-serving view of a v2 model file: the user
// factor (and bias) sections are mapped in full, but of the item sections
// only the rows of the half-open range [ItemLo, ItemHi) are mapped — a
// process serving one item-partition of a catalogue too large for a
// single box touches (and can page in) only its slice of the factor
// bytes. The 128-byte header is always validated in full (including the
// offset-table cross-check against the recomputed canonical layout), so
// the offset math below starts from proven-in-bounds sections; the slices
// themselves are windows rounded down to page boundaries, as mmap
// requires, with the sub-page remainder skipped in the returned views.
//
// Scoring semantics match MappedModel exactly, item for item: a file with
// a float32 section is scored through linalg.ScoreF32 over the sliced
// float32 rows, otherwise through the exact float64 factors — in both
// cases each item's score is computed independently from the same bytes a
// full map would use, so a shard's score for item i is bit-identical to a
// single-process server's score for item i. That per-item identity is
// what makes the scatter-gathered merge of the cluster tier provably
// equal to single-process serving.
//
// A MappedModelRange is immutable and safe for concurrent use. The
// mappings are released when the value becomes unreachable, or eagerly
// via Close (after which every view is invalid).
type MappedModelRange struct {
	k, users, items int
	lo, hi          int
	path            string

	// windows are the raw page-aligned mappings backing the views below.
	windows [][]byte

	fu, bu []float64 // full user sections
	fi, bi []float64 // item rows [lo, hi) only; index local (row 0 = item lo)

	fu32, bu32 []float32 // float32 sections, nil when absent
	fi32, bi32 []float32

	cleanup runtime.Cleanup
}

// OpenMappedModelRange maps the v2 model file at path, restricted to the
// item range [itemLo, itemHi). The header is validated in full; the item
// factor (and bias, and float32) sections are mapped only across the
// requested rows, each window starting on a page boundary. A v1 file
// yields an error wrapping ErrLegacyFormat; an empty or out-of-bounds
// range is rejected. itemHi == -1 means "through the end of the
// catalogue", resolved against the file's header — the tail shard of an
// item partition uses it to follow catalogue growth across retrained
// models without reconfiguration.
func OpenMappedModelRange(path string, itemLo, itemHi int) (*MappedModelRange, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: mapping model range: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("core: mapping model range: %w", err)
	}
	size := st.Size()
	if size < v2HeaderSize {
		magic := make([]byte, 8)
		if _, err := io.ReadFull(f, magic); err == nil && string(magic) == magicV1 {
			return nil, fmt.Errorf("core: mapping model range %s: %w", path, ErrLegacyFormat)
		}
		return nil, fmt.Errorf("core: mapping model range %s: file of %d bytes is too small for a v2 header", path, size)
	}
	hdr := make([]byte, v2HeaderSize)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		return nil, fmt.Errorf("core: mapping model range %s: reading header: %w", path, err)
	}
	switch string(hdr[:8]) {
	case magicV1:
		return nil, fmt.Errorf("core: mapping model range %s: %w", path, ErrLegacyFormat)
	case magicV2:
	default:
		return nil, fmt.Errorf("core: mapping model range %s: bad magic %q", path, hdr[:8])
	}
	h, err := parseV2Header(hdr[8:])
	if err != nil {
		return nil, fmt.Errorf("core: mapping model range %s: %w", path, err)
	}
	if uint64(size) != h.layout.size {
		return nil, fmt.Errorf("core: mapping model range %s: file is %d bytes, header says %d", path, size, h.layout.size)
	}
	if itemHi == -1 {
		itemHi = int(h.items)
	}
	if itemLo < 0 || itemHi > int(h.items) || itemLo >= itemHi {
		return nil, fmt.Errorf("core: mapping model range %s: item range [%d,%d) out of bounds for %d items",
			path, itemLo, itemHi, h.items)
	}

	rr := &MappedModelRange{
		k: int(h.k), users: int(h.users), items: int(h.items),
		lo: itemLo, hi: itemHi, path: path,
	}
	ok := false
	defer func() {
		if !ok {
			for _, w := range rr.windows {
				_ = munmapFile(w)
			}
		}
	}()

	page := uint64(os.Getpagesize())
	// mapAt maps length bytes starting at the (section-interior) byte
	// offset start, rounding the mapping itself down to a page boundary
	// and returning the view beginning at start. The v2 layout aligns
	// sections to v2Align and every slice start is a multiple of the
	// section's element size, so the returned view keeps the element
	// alignment (elem: 8 for float64 sections, 4 for float32) the typed
	// reinterpretations below require.
	mapAt := func(start, length, elem uint64) ([]byte, error) {
		if length == 0 {
			return nil, nil
		}
		aligned := start &^ (page - 1)
		w, err := mmapFileAt(f, int64(aligned), int(start-aligned+length))
		if err != nil {
			return nil, fmt.Errorf("core: mapping model range %s: %w", path, err)
		}
		rr.windows = append(rr.windows, w)
		view := w[start-aligned:]
		if uintptr(unsafe.Pointer(&view[0]))%uintptr(elem) != 0 {
			// Cannot happen (page-aligned mapping base + element-aligned
			// interior offset); checked so the unsafe casts are provably
			// sound.
			return nil, fmt.Errorf("core: mapping model range %s: view base not %d-byte aligned", path, elem)
		}
		return view, nil
	}
	k64 := uint64(h.k)
	lo64, n64 := uint64(itemLo), uint64(itemHi-itemLo)

	// Full user sections.
	if b, err := mapAt(h.layout.off[0], h.users*k64*8, 8); err != nil {
		return nil, err
	} else {
		rr.fu = f64view(b, 0, h.users*k64)
	}
	// Item factor rows [lo, hi): slice the section by row-offset math.
	if b, err := mapAt(h.layout.off[1]+lo64*k64*8, n64*k64*8, 8); err != nil {
		return nil, err
	} else {
		rr.fi = f64view(b, 0, n64*k64)
	}
	if h.bias {
		if b, err := mapAt(h.layout.off[2], h.users*8, 8); err != nil {
			return nil, err
		} else {
			rr.bu = f64view(b, 0, h.users)
		}
		if b, err := mapAt(h.layout.off[3]+lo64*8, n64*8, 8); err != nil {
			return nil, err
		} else {
			rr.bi = f64view(b, 0, n64)
		}
	}
	if h.f32 {
		if b, err := mapAt(h.layout.off[4], h.users*k64*4, 4); err != nil {
			return nil, err
		} else {
			rr.fu32 = f32view(b, 0, h.users*k64)
		}
		if b, err := mapAt(h.layout.off[5]+lo64*k64*4, n64*k64*4, 4); err != nil {
			return nil, err
		} else {
			rr.fi32 = f32view(b, 0, n64*k64)
		}
		if h.bias {
			if b, err := mapAt(h.layout.off[6], h.users*4, 4); err != nil {
				return nil, err
			} else {
				rr.bu32 = f32view(b, 0, h.users)
			}
			if b, err := mapAt(h.layout.off[7]+lo64*4, n64*4, 4); err != nil {
				return nil, err
			} else {
				rr.bi32 = f32view(b, 0, n64)
			}
		}
	}
	ok = true
	windows := rr.windows
	rr.cleanup = runtime.AddCleanup(rr, func(ws [][]byte) {
		for _, w := range ws {
			_ = munmapFile(w)
		}
	}, windows)
	return rr, nil
}

// K returns the number of co-clusters.
func (rr *MappedModelRange) K() int { return rr.k }

// NumUsers returns the full user count of the underlying model.
func (rr *MappedModelRange) NumUsers() int { return rr.users }

// NumItems returns the full catalogue size of the underlying model — not
// the mapped range; see Len for that.
func (rr *MappedModelRange) NumItems() int { return rr.items }

// ItemLo returns the first mapped item (inclusive).
func (rr *MappedModelRange) ItemLo() int { return rr.lo }

// ItemHi returns the end of the mapped item range (exclusive).
func (rr *MappedModelRange) ItemHi() int { return rr.hi }

// Len returns the number of mapped items, ItemHi − ItemLo.
func (rr *MappedModelRange) Len() int { return rr.hi - rr.lo }

// HasBias reports whether the model carries the Section IV-A bias terms.
func (rr *MappedModelRange) HasBias() bool { return rr.bu != nil }

// HasFloat32 reports whether the file carries the float32 factor copy,
// i.e. whether ScoreItems runs the half-bandwidth path.
func (rr *MappedModelRange) HasFloat32() bool { return rr.fu32 != nil }

// String describes the mapped range.
func (rr *MappedModelRange) String() string {
	suffix := ""
	if rr.fu32 != nil {
		suffix = "+f32"
	}
	return fmt.Sprintf("core.MappedModelRange(K=%d, %d users, items [%d,%d) of %d, mmap%s)",
		rr.k, rr.users, rr.lo, rr.hi, rr.items, suffix)
}

// UserFactorF64 returns user u's float64 factor row (a view into the
// mapping; do not modify, invalid after Close). Tests use it to compare
// sliced sections against a full map.
func (rr *MappedModelRange) UserFactorF64(u int) []float64 {
	return rr.fu[u*rr.k : (u+1)*rr.k]
}

// ItemFactorF64 returns the float64 factor row of global item i, which
// must lie in [ItemLo, ItemHi).
func (rr *MappedModelRange) ItemFactorF64(i int) []float64 {
	n := i - rr.lo
	return rr.fi[n*rr.k : (n+1)*rr.k]
}

// ItemFactorF32 returns the float32 factor row of global item i (nil when
// the file has no float32 section).
func (rr *MappedModelRange) ItemFactorF32(i int) []float32 {
	if rr.fi32 == nil {
		return nil
	}
	n := i - rr.lo
	return rr.fi32[n*rr.k : (n+1)*rr.k]
}

// ItemBiasF64 returns the float64 bias of global item i, 0 without bias.
func (rr *MappedModelRange) ItemBiasF64(i int) float64 {
	if rr.bi == nil {
		return 0
	}
	return rr.bi[i-rr.lo]
}

// ScoreItems writes P[r_ui = 1] for every mapped item into dst (length
// Len(); dst[n] scores global item ItemLo+n). With a float32 section it
// streams that section exactly like MappedModel.ScoreUser; otherwise it
// scores the float64 factors exactly like Model.ScoreUser. Either way
// each entry is bit-identical to the corresponding entry a full-map
// server computes for the same file.
func (rr *MappedModelRange) ScoreItems(u int, dst []float64) {
	if rr.fu32 != nil {
		k := rr.k
		var bias float64
		if rr.bu32 != nil {
			bias = float64(rr.bu32[u])
		}
		linalg.ScoreF32(dst, rr.fu32[u*k:(u+1)*k], rr.fi32, rr.bi32, bias)
		runtime.KeepAlive(rr)
		return
	}
	var bias float64
	if rr.bu != nil {
		bias = rr.bu[u]
	}
	rr.ScoreItemsWithFactor(rr.fu[u*rr.k:(u+1)*rr.k], bias, dst)
}

// ScoreItemsWithFactor scores every mapped item against an explicit
// float64 user factor and bias, through the exact float64 item factors —
// the same per-item arithmetic as Model.ScoreWithFactor.
func (rr *MappedModelRange) ScoreItemsWithFactor(fu []float64, bias float64, dst []float64) {
	k := rr.k
	for n := 0; n < rr.hi-rr.lo; n++ {
		z := linalg.Dot(fu, rr.fi[n*k:(n+1)*k]) + bias
		if rr.bi != nil {
			z += rr.bi[n]
		}
		dst[n] = 1 - math.Exp(-z)
	}
	runtime.KeepAlive(rr)
}

// Close releases the mappings eagerly. Every view into the range is
// invalid afterwards; like MappedModel.Close it must not race in-flight
// scoring — serving code should drop the reference and let GC release it.
func (rr *MappedModelRange) Close() error {
	if rr.windows == nil {
		return nil
	}
	rr.cleanup.Stop()
	windows := rr.windows
	rr.windows = nil
	rr.fu, rr.fi, rr.bu, rr.bi = nil, nil, nil, nil
	rr.fu32, rr.fi32, rr.bu32, rr.bi32 = nil, nil, nil, nil
	var first error
	for _, w := range windows {
		if err := munmapFile(w); err != nil && first == nil {
			first = err
		}
	}
	return first
}
