// Package core implements the paper's primary contribution: the OCuLaR
// (Overlapping co-CLuster Recommendation) algorithm of Section IV and its
// relative-preference variant R-OCuLaR of Section V.
//
// The generative model assigns every user u and item i non-negative
// K-dimensional co-cluster affiliation vectors f_u, f_i and posits
//
//	P[r_ui = 1] = 1 − exp(−⟨f_u, f_i⟩).
//
// Training maximizes the ℓ2-regularized likelihood by cyclic block
// coordinate descent: all item factors are updated by one projected
// gradient step with Armijo backtracking, then all user factors, until the
// objective stops decreasing. The "sum trick" of Section IV-D makes one
// sweep O(nnz·K).
//
// The optional bias extension of Section IV-A
// (P = 1 − exp(−⟨f_u,f_i⟩ − b_u − b_i)) is available through Config.Bias.
package core

import (
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/parallel"
	"repro/internal/sparse"
)

// Model holds fitted OCuLaR factors. A Model implements eval.Recommender.
// Models are immutable after training and safe for concurrent use.
type Model struct {
	k      int
	users  int
	items  int
	fu, fi []float64 // flat, stride k, non-negative
	// bu, bi are the optional non-negative biases of Section IV-A; both
	// nil unless the model was trained with Config.Bias.
	bu, bi []float64
}

// K returns the number of co-clusters.
func (m *Model) K() int { return m.k }

// NumUsers returns the number of users the model was trained on.
func (m *Model) NumUsers() int { return m.users }

// NumItems returns the number of items the model was trained on.
func (m *Model) NumItems() int { return m.items }

// HasBias reports whether the model carries the Section IV-A bias terms.
func (m *Model) HasBias() bool { return m.bu != nil }

// UserBias returns b_u, or 0 for a model without biases.
func (m *Model) UserBias(u int) float64 {
	if m.bu == nil {
		return 0
	}
	return m.bu[u]
}

// ItemBias returns b_i, or 0 for a model without biases.
func (m *Model) ItemBias(i int) float64 {
	if m.bi == nil {
		return 0
	}
	return m.bi[i]
}

// UserFactor returns user u's affiliation vector. The slice aliases model
// storage and must not be modified.
func (m *Model) UserFactor(u int) []float64 { return m.fu[u*m.k : (u+1)*m.k] }

// ItemFactor returns item i's affiliation vector. The slice aliases model
// storage and must not be modified.
func (m *Model) ItemFactor(i int) []float64 { return m.fi[i*m.k : (i+1)*m.k] }

// Predict returns the model probability
// P[r_ui = 1] = 1 − exp(−⟨f_u, f_i⟩ − b_u − b_i).
func (m *Model) Predict(u, i int) float64 {
	return 1 - math.Exp(-m.Affinity(u, i))
}

// Affinity returns ⟨f_u, f_i⟩ plus any bias terms — the quantity whose
// exponential complement is the probability.
func (m *Model) Affinity(u, i int) float64 {
	z := linalg.Dot(m.UserFactor(u), m.ItemFactor(i))
	if m.bu != nil {
		z += m.bu[u] + m.bi[i]
	}
	return z
}

// PairContributions returns the per-co-cluster products [f_u]_c · [f_i]_c
// whose sum is the co-cluster part of Affinity(u, i). Explanations rank
// co-clusters by these contributions (Section IV-C).
func (m *Model) PairContributions(u, i int) []float64 {
	fu, fi := m.UserFactor(u), m.ItemFactor(i)
	out := make([]float64, m.k)
	for c := range out {
		out[c] = fu[c] * fi[c]
	}
	return out
}

// ScoreUser writes P[r_ui = 1] for every item into dst, implementing
// eval.Recommender.
func (m *Model) ScoreUser(u int, dst []float64) {
	m.ScoreWithFactor(m.UserFactor(u), m.UserBias(u), dst)
}

// ScoreWithFactor scores every item against an explicit user factor (and
// bias), which FoldInUser produces for users unseen at training time.
func (m *Model) ScoreWithFactor(fu []float64, bias float64, dst []float64) {
	for i := 0; i < m.items; i++ {
		z := linalg.Dot(fu, m.ItemFactor(i)) + bias
		if m.bi != nil {
			z += m.bi[i]
		}
		dst[i] = 1 - math.Exp(-z)
	}
}

// String describes the model shape.
func (m *Model) String() string {
	return fmt.Sprintf("core.Model(K=%d, %d users, %d items)", m.k, m.users, m.items)
}

// Grow returns a model extended to users × items, the warm-start bridge
// of the continuous-training pipeline: when the interaction feed brings
// positives for users or items unseen by the last model, the trained
// factors are kept verbatim and the new rows start at exactly zero — the
// deterministic choice, which Train's warm-start jitter then revives with
// the same seeded perturbation it applies to pruned co-clusters, so a
// grown warm start remains reproducible for a fixed Config.Seed. Biases,
// when present, grow the same way. Growing by zero rows returns m itself
// (models are immutable). Shrinking is refused: dropping trained factor
// rows would silently forget users and items, so a feed that shrank (or a
// mismatched base matrix) must be surfaced to the operator instead.
func (m *Model) Grow(users, items int) (*Model, error) {
	if users < m.users || items < m.items {
		return nil, fmt.Errorf("core: cannot grow model %dx%d down to %dx%d: shrinking would drop trained factors",
			m.users, m.items, users, items)
	}
	if users == m.users && items == m.items {
		return m, nil
	}
	g := &Model{
		k:     m.k,
		users: users,
		items: items,
		fu:    make([]float64, users*m.k),
		fi:    make([]float64, items*m.k),
	}
	copy(g.fu, m.fu)
	copy(g.fi, m.fi)
	if m.bu != nil {
		g.bu = make([]float64, users)
		g.bi = make([]float64, items)
		copy(g.bu, m.bu)
		copy(g.bi, m.bi)
	}
	return g, nil
}

// Objective evaluates the full regularized negative log-likelihood Q
// (eq. 4 of the paper) of this model on matrix r, with R-OCuLaR user
// weights when relative is true. Bias terms, when present, are included in
// the affinities and regularized with the same lambda. It is exported for
// tests and for the Fig 8 distance-to-optimal-likelihood experiment.
//
// Objective derives the weight table on every call and uses all cores; hot
// paths that evaluate Q repeatedly (the trainer's per-iteration convergence
// check) call ObjectiveWeighted with a cached table instead.
func (m *Model) Objective(r *sparse.Matrix, lambda float64, relative bool) float64 {
	return m.ObjectiveWeighted(r, lambda, userWeights(r, relative), 0)
}

// ObjectiveWeighted is Objective with the R-OCuLaR weight table supplied by
// the caller (nil for the unweighted OCuLaR objective; otherwise one weight
// per user) and an explicit worker count (0 = all cores). The O(nnz·K)
// positive-pair scan and the factor block sums run in parallel through
// fixed-block deterministic reductions, so the result is bit-identical for
// every worker count.
func (m *Model) ObjectiveWeighted(r *sparse.Matrix, lambda float64, weights []float64, workers int) float64 {
	if r.Rows() != m.users || r.Cols() != m.items {
		panic("core: Objective matrix shape mismatch")
	}
	if weights != nil && len(weights) != m.users {
		panic("core: Objective weight table length mismatch")
	}
	// Σ over unknowns of z = Σ over all pairs − Σ over positives, with
	// Σ over all pairs of ⟨fu,fi⟩ = ⟨Σu fu, Σi fi⟩ and the bias part
	// n_i·Σ b_u + n_u·Σ b_i.
	sumFU := make([]float64, m.k)
	sumFI := make([]float64, m.k)
	parallel.SumVectors(sumFU, m.fu, m.k, workers)
	parallel.SumVectors(sumFI, m.fi, m.k, workers)
	q := linalg.Dot(sumFU, sumFI)
	if m.bu != nil {
		var sbu, sbi float64
		for _, b := range m.bu {
			sbu += b
		}
		for _, b := range m.bi {
			sbi += b
		}
		q += float64(m.items)*sbu + float64(m.users)*sbi
	}
	q += parallel.ReduceSum(m.users, workers, func(lo, hi int) float64 {
		var part float64
		for u := lo; u < hi; u++ {
			row := r.Row(u)
			if len(row) == 0 {
				continue
			}
			fu := m.UserFactor(u)
			w := 1.0
			if weights != nil {
				w = weights[u]
			}
			// The weight is constant within a row, so the row's log terms
			// batch into a single logarithm of a renormalized product —
			// one math.Log per user instead of one per positive.
			var lp logProd
			lp.init()
			for _, ic := range row {
				i := int(ic)
				z := linalg.Dot(fu, m.ItemFactor(i))
				if m.bu != nil {
					z += m.bu[u] + m.bi[i]
				}
				part -= z // remove the positive pair from the unknown-sum term
				lp.mul(1 - math.Exp(-clampDot(z)))
			}
			part -= w * lp.log()
		}
		return part
	})
	q += lambda * (linalg.Norm2Sq(m.fu) + linalg.Norm2Sq(m.fi))
	if m.bu != nil {
		q += lambda * (linalg.Norm2Sq(m.bu) + linalg.Norm2Sq(m.bi))
	}
	return q
}

// minDot floors affinities of positive pairs so log(1−e^{−z}) stays finite
// when a factor pair is (numerically) orthogonal. The same floor is applied
// in objective and gradient so the Armijo comparisons are consistent.
// BIGCLAM uses the same safeguard.
const minDot = 1e-10

func clampDot(d float64) float64 {
	if d < minDot {
		return minDot
	}
	return d
}

// userWeights returns the R-OCuLaR weights w_u = |{i: r_ui=0}| / |{i:
// r_ui=1}| (Section V), or nil when relative is false. Users with no
// positives get weight 0; they contribute no positive terms anyway.
func userWeights(r *sparse.Matrix, relative bool) []float64 {
	if !relative {
		return nil
	}
	w := make([]float64, r.Rows())
	ni := r.Cols()
	for u := range w {
		pos := r.RowNNZ(u)
		if pos > 0 {
			w[u] = float64(ni-pos) / float64(pos)
		}
	}
	return w
}
