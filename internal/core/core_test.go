package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/linalg"
	"repro/internal/parallel"
	"repro/internal/rng"
	"repro/internal/sparse"
)

func smallMatrix(seed uint64, users, items, n int) *sparse.Matrix {
	r := rng.New(seed)
	b := sparse.NewBuilder(users, items)
	for k := 0; k < n; k++ {
		b.Add(r.Intn(users), r.Intn(items))
	}
	return b.Build()
}

func TestConfigValidation(t *testing.T) {
	m := smallMatrix(1, 5, 5, 10)
	bad := []Config{
		{K: 0},
		{K: 3, Lambda: -1},
		{K: 3, Sigma: 1.5},
		{K: 3, Beta: -0.1},
		{K: 3, InitScale: -2},
	}
	for i, cfg := range bad {
		if _, err := Train(m, cfg); err == nil {
			t.Errorf("config %d accepted, want error", i)
		}
	}
}

func TestObjectiveMatchesNaive(t *testing.T) {
	// Full objective (with sum trick inside) must equal the O(nu·ni·K)
	// textbook evaluation of eq. (4).
	for _, relative := range []bool{false, true} {
		m := smallMatrix(2, 8, 6, 15)
		res, err := Train(m, Config{K: 3, Lambda: 0.5, MaxIter: 3, Seed: 1, Relative: relative})
		if err != nil {
			t.Fatal(err)
		}
		mod := res.Model
		lambda := 0.5
		naive := 0.0
		w := userWeights(m, relative)
		for u := 0; u < m.Rows(); u++ {
			wu := 1.0
			if w != nil {
				wu = w[u]
			}
			for i := 0; i < m.Cols(); i++ {
				d := linalg.Dot(mod.UserFactor(u), mod.ItemFactor(i))
				if m.Has(u, i) {
					naive -= wu * math.Log(1-math.Exp(-clampDot(d)))
				} else {
					naive += d
				}
			}
		}
		for u := 0; u < m.Rows(); u++ {
			naive += lambda * linalg.Norm2Sq(mod.UserFactor(u))
		}
		for i := 0; i < m.Cols(); i++ {
			naive += lambda * linalg.Norm2Sq(mod.ItemFactor(i))
		}
		got := mod.Objective(m, lambda, relative)
		if math.Abs(got-naive) > 1e-8*(1+math.Abs(naive)) {
			t.Fatalf("relative=%v: Objective=%v naive=%v", relative, got, naive)
		}
	}
}

func TestGradientMatchesFiniteDifference(t *testing.T) {
	m := smallMatrix(3, 10, 8, 25)
	cfg := Config{K: 4, Lambda: 0.3, Seed: 7}.withDefaults()
	tr := newTrainer(m, cfg)
	parallel.SumVectors(tr.sum, tr.m.fu, cfg.K, 1)

	for _, item := range []int{0, 3, 7} {
		f := append([]float64(nil), tr.m.fi[item*cfg.K:(item+1)*cfg.K]...)
		// Keep factors away from the clamp kink so the finite difference is
		// valid.
		for c := range f {
			f[c] += 0.3
		}
		pos := tr.rt.Row(item)
		grad := make([]float64, cfg.K)
		tr.gradient(grad, f, sideCtx{pos: pos, others: tr.m.fu, wScalar: 1})
		const h = 1e-6
		for c := 0; c < cfg.K; c++ {
			fp := append([]float64(nil), f...)
			fm := append([]float64(nil), f...)
			fp[c] += h
			fm[c] -= h
			num := (tr.partialObjective(fp, sideCtx{pos: pos, others: tr.m.fu, wScalar: 1}) -
				tr.partialObjective(fm, sideCtx{pos: pos, others: tr.m.fu, wScalar: 1})) / (2 * h)
			if math.Abs(num-grad[c]) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("item %d coord %d: analytic %v, numeric %v", item, c, grad[c], num)
			}
		}
	}
}

func TestGradientWithWeightsMatchesFiniteDifference(t *testing.T) {
	m := smallMatrix(5, 10, 8, 25)
	cfg := Config{K: 3, Lambda: 0.2, Seed: 9, Relative: true}.withDefaults()
	tr := newTrainer(m, cfg)
	parallel.SumVectors(tr.sum, tr.m.fu, cfg.K, 1)

	item := 2
	f := append([]float64(nil), tr.m.fi[item*cfg.K:(item+1)*cfg.K]...)
	for c := range f {
		f[c] += 0.25
	}
	pos := tr.rt.Row(item)
	grad := make([]float64, cfg.K)
	tr.gradient(grad, f, sideCtx{pos: pos, others: tr.m.fu, wTable: tr.weights, wScalar: 1})
	const h = 1e-6
	for c := 0; c < cfg.K; c++ {
		fp := append([]float64(nil), f...)
		fm := append([]float64(nil), f...)
		fp[c] += h
		fm[c] -= h
		num := (tr.partialObjective(fp, sideCtx{pos: pos, others: tr.m.fu, wTable: tr.weights, wScalar: 1}) -
			tr.partialObjective(fm, sideCtx{pos: pos, others: tr.m.fu, wTable: tr.weights, wScalar: 1})) / (2 * h)
		if math.Abs(num-grad[c]) > 1e-4*(1+math.Abs(num)) {
			t.Fatalf("coord %d: analytic %v, numeric %v", c, grad[c], num)
		}
	}
}

func TestObjectiveMonotoneDecreasing(t *testing.T) {
	for _, relative := range []bool{false, true} {
		m := smallMatrix(4, 40, 30, 200)
		res, err := Train(m, Config{K: 5, Lambda: 1, MaxIter: 30, Seed: 3, Relative: relative})
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(res.Objective); i++ {
			if res.Objective[i] > res.Objective[i-1]+1e-9*math.Abs(res.Objective[i-1]) {
				t.Fatalf("relative=%v: objective increased at iter %d: %v -> %v",
					relative, i, res.Objective[i-1], res.Objective[i])
			}
		}
	}
}

func TestFactorsNonNegative(t *testing.T) {
	m := smallMatrix(5, 30, 20, 150)
	res, err := Train(m, Config{K: 4, Lambda: 2, MaxIter: 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Model.fu {
		if v < 0 || math.IsNaN(v) {
			t.Fatalf("negative or NaN user factor %v", v)
		}
	}
	for _, v := range res.Model.fi {
		if v < 0 || math.IsNaN(v) {
			t.Fatalf("negative or NaN item factor %v", v)
		}
	}
}

func TestDeterministicTraining(t *testing.T) {
	m := smallMatrix(6, 25, 20, 120)
	cfg := Config{K: 4, Lambda: 1, MaxIter: 10, Seed: 11}
	a, err := Train(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Train(m, cfg)
	for i := range a.Model.fu {
		if a.Model.fu[i] != b.Model.fu[i] {
			t.Fatal("same seed produced different user factors")
		}
	}
	cfg.Seed = 12
	c, _ := Train(m, cfg)
	diff := false
	for i := range a.Model.fu {
		if a.Model.fu[i] != c.Model.fu[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical factors")
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	m := smallMatrix(7, 60, 40, 400)
	serial, err := Train(m, Config{K: 6, Lambda: 1, MaxIter: 8, Seed: 13, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Train(m, Config{K: 6, Lambda: 1, MaxIter: 8, Seed: 13, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.Model.fu {
		if serial.Model.fu[i] != par.Model.fu[i] {
			t.Fatalf("user factor %d differs between serial and parallel", i)
		}
	}
	for i := range serial.Model.fi {
		if serial.Model.fi[i] != par.Model.fi[i] {
			t.Fatalf("item factor %d differs between serial and parallel", i)
		}
	}
}

func TestPaperToyRecovery(t *testing.T) {
	// The headline qualitative claim (Figures 1 and 3): trained on the toy
	// with K=3, OCuLaR's top recommendation for each affected user is the
	// withheld in-cluster pair, with substantial probability.
	toy := dataset.PaperToy()
	res, err := Train(toy.R, Config{K: 3, Lambda: 0.1, MaxIter: 300, Tol: 1e-7, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	mod := res.Model
	for _, h := range toy.Held {
		u, want := h[0], h[1]
		best, bestP := -1, -1.0
		for i := 0; i < toy.Items(); i++ {
			if toy.R.Has(u, i) {
				continue
			}
			if p := mod.Predict(u, i); p > bestP {
				best, bestP = i, p
			}
		}
		if best != want {
			t.Errorf("user %d: top recommendation = item %d (p=%.3f), want item %d (p=%.3f)",
				u, best, bestP, want, mod.Predict(u, want))
		}
		if bestP < 0.5 {
			t.Errorf("user %d item %d: probability %.3f too low", u, want, bestP)
		}
	}
	// The worked example of Section IV-C: P[r_{6,4}=1] is large (paper: 0.83).
	if p := mod.Predict(6, 4); p < 0.6 || p > 0.99 {
		t.Errorf("P(6,4) = %.3f, want high (paper reports 0.83)", p)
	}
	// Outside all clusters the model must stay near zero: user 3 bought
	// nothing, items 10-11 were never bought.
	for i := 0; i < toy.Items(); i++ {
		if p := mod.Predict(3, i); p > 0.2 {
			t.Errorf("empty user 3: P(3,%d) = %.3f unexpectedly high", i, p)
		}
	}
	if p := mod.Predict(0, 10); p > 0.2 {
		t.Errorf("P(0,10) = %.3f for never-bought item", p)
	}
}

func TestPaperToyOverlapStructure(t *testing.T) {
	// User 6 must belong to two co-clusters and item 4 must have affiliation
	// with all three (Section IV-C: fi = [1.39,0.73,0.82], fu = [0,1.05,1.25]).
	toy := dataset.PaperToy()
	res, err := Train(toy.R, Config{K: 3, Lambda: 0.1, MaxIter: 300, Tol: 1e-7, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	const member = 0.3 // affiliation threshold
	fu6 := res.Model.UserFactor(6)
	count6 := 0
	for _, v := range fu6 {
		if v > member {
			count6++
		}
	}
	if count6 != 2 {
		t.Errorf("user 6 belongs to %d co-clusters (factors %v), want 2", count6, fu6)
	}
	fi4 := res.Model.ItemFactor(4)
	count4 := 0
	for _, v := range fi4 {
		if v > member {
			count4++
		}
	}
	if count4 != 3 {
		t.Errorf("item 4 belongs to %d co-clusters (factors %v), want 3", count4, fi4)
	}
}

func TestPredictionsAreProbabilities(t *testing.T) {
	m := smallMatrix(8, 20, 15, 80)
	res, err := Train(m, Config{K: 3, Lambda: 0.5, MaxIter: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	f := func(uRaw, iRaw uint8) bool {
		u := int(uRaw) % 20
		i := int(iRaw) % 15
		p := res.Model.Predict(u, i)
		return p >= 0 && p < 1 && !math.IsNaN(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestScoreUserMatchesPredict(t *testing.T) {
	m := smallMatrix(9, 15, 12, 60)
	res, _ := Train(m, Config{K: 3, Lambda: 0.5, MaxIter: 5, Seed: 2})
	dst := make([]float64, 12)
	for u := 0; u < 15; u++ {
		res.Model.ScoreUser(u, dst)
		for i := 0; i < 12; i++ {
			if dst[i] != res.Model.Predict(u, i) {
				t.Fatalf("ScoreUser(%d)[%d] = %v, Predict = %v", u, i, dst[i], res.Model.Predict(u, i))
			}
		}
	}
}

func TestPairContributionsSumToAffinity(t *testing.T) {
	m := smallMatrix(10, 15, 12, 60)
	res, _ := Train(m, Config{K: 4, Lambda: 0.5, MaxIter: 5, Seed: 2})
	for u := 0; u < 15; u++ {
		for i := 0; i < 12; i++ {
			contrib := res.Model.PairContributions(u, i)
			sum := 0.0
			for _, v := range contrib {
				sum += v
			}
			if math.Abs(sum-res.Model.Affinity(u, i)) > 1e-12 {
				t.Fatalf("(%d,%d): contributions sum %v != affinity %v", u, i, sum, res.Model.Affinity(u, i))
			}
		}
	}
}

func TestUserWeights(t *testing.T) {
	m := sparse.FromDense([][]bool{
		{true, true, false, false}, // 2 pos, 2 unknown -> w = 1
		{true, false, false, false},
		{false, false, false, false}, // no positives -> w = 0
	})
	w := userWeights(m, true)
	if w[0] != 1 {
		t.Errorf("w[0] = %v, want 1", w[0])
	}
	if w[1] != 3 {
		t.Errorf("w[1] = %v, want 3", w[1])
	}
	if w[2] != 0 {
		t.Errorf("w[2] = %v, want 0", w[2])
	}
	if userWeights(m, false) != nil {
		t.Error("weights should be nil for plain OCuLaR")
	}
}

func TestRelativeDiffersFromPlain(t *testing.T) {
	m := smallMatrix(11, 40, 30, 150)
	plain, _ := Train(m, Config{K: 4, Lambda: 1, MaxIter: 10, Seed: 1})
	rel, _ := Train(m, Config{K: 4, Lambda: 1, MaxIter: 10, Seed: 1, Relative: true})
	same := true
	for i := range plain.Model.fu {
		if plain.Model.fu[i] != rel.Model.fu[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("R-OCuLaR produced identical factors to OCuLaR")
	}
}

func TestEmptyRowsAndColsStayFinite(t *testing.T) {
	b := sparse.NewBuilder(6, 6)
	b.Add(0, 0)
	b.Add(1, 1)
	m := b.Build() // users 2..5 and items 2..5 have no positives
	res, err := Train(m, Config{K: 2, Lambda: 0.5, MaxIter: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range append(append([]float64{}, res.Model.fu...), res.Model.fi...) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite factor with empty rows/cols")
		}
	}
	// An empty user should drift toward zero affiliation (regularization +
	// the Σ_0 pressure both push down).
	if linalg.Norm2(res.Model.UserFactor(4)) > 0.5 {
		t.Errorf("empty user factor norm %v, want small", linalg.Norm2(res.Model.UserFactor(4)))
	}
}

func TestConvergenceFlag(t *testing.T) {
	m := smallMatrix(12, 20, 15, 80)
	res, err := Train(m, Config{K: 3, Lambda: 1, MaxIter: 500, Tol: 1e-4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("expected convergence within 500 iterations on a tiny problem")
	}
	if res.Iterations() >= 500 {
		t.Errorf("iterations = %d", res.Iterations())
	}
	res2, _ := Train(m, Config{K: 3, Lambda: 1, MaxIter: 1, Seed: 1})
	if res2.Converged && res2.Iterations() != 1 {
		t.Error("single-iteration run bookkeeping wrong")
	}
	if len(res2.Objective) != 2 {
		t.Errorf("objective trace length %d, want 2 (init + 1 iter)", len(res2.Objective))
	}
}

func TestResultIterTimes(t *testing.T) {
	m := smallMatrix(13, 20, 15, 80)
	res, _ := Train(m, Config{K: 3, Lambda: 1, MaxIter: 5, Tol: 1e-12, Seed: 1})
	if len(res.IterTime) != res.Iterations() {
		t.Fatalf("IterTime length %d != iterations %d", len(res.IterTime), res.Iterations())
	}
	for _, d := range res.IterTime {
		if d < 0 {
			t.Fatal("negative iteration time")
		}
	}
}

func TestModelString(t *testing.T) {
	m := smallMatrix(14, 5, 4, 10)
	res, _ := Train(m, Config{K: 2, MaxIter: 1, Seed: 1})
	if res.Model.String() != "core.Model(K=2, 5 users, 4 items)" {
		t.Fatalf("String() = %q", res.Model.String())
	}
}

func BenchmarkTrainIteration(b *testing.B) {
	d := dataset.SyntheticSmall(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(d.R, Config{K: 10, Lambda: 5, MaxIter: 1, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestModelGrow(t *testing.T) {
	m := smallMatrix(44, 12, 9, 60)
	res, err := Train(m, Config{K: 4, Lambda: 1, MaxIter: 10, Seed: 5, Bias: true})
	if err != nil {
		t.Fatal(err)
	}
	old := res.Model

	g, err := old.Grow(15, 11)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumUsers() != 15 || g.NumItems() != 11 || g.K() != old.K() {
		t.Fatalf("grown shape K=%d %dx%d", g.K(), g.NumUsers(), g.NumItems())
	}
	// Trained rows survive bit for bit; new rows are exactly zero.
	for u := 0; u < old.NumUsers(); u++ {
		for c, v := range old.UserFactor(u) {
			if g.UserFactor(u)[c] != v {
				t.Fatalf("user %d factor changed by Grow", u)
			}
		}
		if g.UserBias(u) != old.UserBias(u) {
			t.Fatalf("user %d bias changed by Grow", u)
		}
	}
	for u := old.NumUsers(); u < 15; u++ {
		for _, v := range g.UserFactor(u) {
			if v != 0 {
				t.Fatalf("new user %d factor not zero", u)
			}
		}
	}
	for i := old.NumItems(); i < 11; i++ {
		for _, v := range g.ItemFactor(i) {
			if v != 0 {
				t.Fatalf("new item %d factor not zero", i)
			}
		}
	}
	// Determinism: growing twice yields identical factors.
	g2, err := old.Grow(15, 11)
	if err != nil {
		t.Fatal(err)
	}
	sameFactorBits(t, g, g2)
	// Same shape returns the receiver; shrinking is a documented error.
	if same, _ := old.Grow(old.NumUsers(), old.NumItems()); same != old {
		t.Fatal("Grow(same shape) did not return the receiver")
	}
	if _, err := old.Grow(old.NumUsers()-1, old.NumItems()); err == nil {
		t.Fatal("user shrink accepted")
	}
	if _, err := old.Grow(old.NumUsers(), old.NumItems()-1); err == nil {
		t.Fatal("item shrink accepted")
	}
}
