package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// modelMagic identifies the serialized model format; the trailing digit is
// the format version.
const modelMagic = "OCuLaR:1"

// maxModelDim bounds the accepted dimensions when reading, as a guard
// against corrupt or hostile headers allocating absurd amounts of memory.
const maxModelDim = 1 << 28

// WriteTo serializes the model in a compact little-endian binary format:
// an 8-byte magic, the dimensions, a bias flag, then the factor (and bias)
// arrays. It implements io.WriterTo.
func (m *Model) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	n := int64(0)
	count := func(k int, err error) error {
		n += int64(k)
		return err
	}
	if err := count(bw.WriteString(modelMagic)); err != nil {
		return n, err
	}
	hasBias := uint64(0)
	if m.bu != nil {
		hasBias = 1
	}
	for _, v := range []uint64{uint64(m.k), uint64(m.users), uint64(m.items), hasBias} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return n, err
		}
		n += 8
	}
	for _, arr := range [][]float64{m.fu, m.fi, m.bu, m.bi} {
		if arr == nil {
			continue
		}
		if err := binary.Write(bw, binary.LittleEndian, arr); err != nil {
			return n, err
		}
		n += int64(8 * len(arr))
	}
	return n, bw.Flush()
}

// SaveModelFile writes the model to path atomically: the bytes land in a
// sibling temporary file which is renamed over path only after a
// successful write and sync, so a serving process re-reading the file on
// reload never observes a truncated model. The temp file is created with
// mode 0644 (subject to the umask, like a plain create), so a serving
// process under another user can read the model. Concurrent saves to the
// same path are not supported — the trainer is the single writer.
func (m *Model) SaveModelFile(path string) error {
	tmpPath := path + ".tmp"
	tmp, err := os.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("core: saving model: %w", err)
	}
	defer os.Remove(tmpPath)
	if _, err := m.WriteTo(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("core: saving model: %w", err)
	}
	// Flush to stable storage before the rename so a crash cannot leave a
	// durably-renamed but truncated model at path.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("core: saving model: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("core: saving model: %w", err)
	}
	if err := os.Rename(tmpPath, path); err != nil {
		return fmt.Errorf("core: saving model: %w", err)
	}
	return nil
}

// LoadModelFile reads a model saved with SaveModelFile (or WriteTo).
func LoadModelFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: loading model: %w", err)
	}
	defer f.Close()
	return ReadModel(f)
}

// ReadModel deserializes a model written by WriteTo, validating the header
// and rejecting non-finite or negative factors (which no trained model can
// contain, so they indicate corruption).
func ReadModel(r io.Reader) (*Model, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(modelMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("core: reading model magic: %w", err)
	}
	if string(magic) != modelMagic {
		return nil, fmt.Errorf("core: bad model magic %q (want %q)", magic, modelMagic)
	}
	var dims [4]uint64
	for i := range dims {
		if err := binary.Read(br, binary.LittleEndian, &dims[i]); err != nil {
			return nil, fmt.Errorf("core: reading model header: %w", err)
		}
	}
	k, users, items, hasBias := dims[0], dims[1], dims[2], dims[3]
	switch {
	case k == 0 || k > maxModelDim:
		return nil, fmt.Errorf("core: implausible K=%d in model header", k)
	case users > maxModelDim || items > maxModelDim:
		return nil, fmt.Errorf("core: implausible shape %dx%d in model header", users, items)
	case hasBias > 1:
		return nil, fmt.Errorf("core: bad bias flag %d in model header", hasBias)
	case users*k > maxModelDim || items*k > maxModelDim:
		return nil, fmt.Errorf("core: model %dx%d with K=%d exceeds size guard", users, items, k)
	}
	m := &Model{
		k:     int(k),
		users: int(users),
		items: int(items),
		fu:    make([]float64, users*k),
		fi:    make([]float64, items*k),
	}
	arrays := [][]float64{m.fu, m.fi}
	if hasBias == 1 {
		m.bu = make([]float64, users)
		m.bi = make([]float64, items)
		arrays = append(arrays, m.bu, m.bi)
	}
	for _, arr := range arrays {
		if err := binary.Read(br, binary.LittleEndian, arr); err != nil {
			return nil, fmt.Errorf("core: reading model factors: %w", err)
		}
		for _, v := range arr {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("core: corrupt model: factor %v out of domain", v)
			}
		}
	}
	// A well-formed stream ends exactly here.
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("core: trailing bytes after model payload")
	}
	return m, nil
}
