package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"repro/internal/fsutil"
)

// The serialized model format is versioned through the trailing magic
// digit.
//
// v1 ("OCuLaR:1") is a plain stream: magic, four uint64 dimensions, then
// the factor (and bias) arrays back to back. It can only be consumed by
// copying every byte through ReadModel.
//
// v2 ("OCuLaR:2") is the mappable format: a fixed 128-byte header followed
// by page-aligned little-endian sections, optionally including a
// float32-quantized copy of every factor section for half-bandwidth
// scoring (see MappedModel). Layout:
//
//	offset   0  magic "OCuLaR:2"
//	offset   8  K, users, items, flags     (4 × uint64 LE)
//	offset  40  section offset table       (8 × uint64 LE)
//	offset 104  total file size            (uint64 LE)
//	offset 112  reserved, must be zero     (16 bytes)
//	offset 128… zero padding, then sections, each aligned to 4096 bytes
//
// The section order is fixed: fu64, fi64, bu64, bi64, fu32, fi32, bu32,
// bi32; absent sections (per the flags) have offset 0. Because the layout
// is fully determined by (K, users, items, flags), readers recompute it
// and reject any offset table that disagrees — the table exists so that
// external tools can seek without reimplementing the layout rules.
const (
	magicV1 = "OCuLaR:1"
	magicV2 = "OCuLaR:2"

	// modelMagic is the legacy name of the v1 magic, retained for tests.
	modelMagic = magicV1

	v2HeaderSize = 128
	v2Align      = 4096 // section alignment; matches common page sizes

	v2FlagBias = 1 << 0 // bias sections present
	v2FlagF32  = 1 << 1 // float32 factor sections present
)

// maxModelDim bounds the accepted dimensions when reading, as a guard
// against corrupt or hostile headers allocating absurd amounts of memory.
const maxModelDim = 1 << 28

// SaveOptions configures the v2 writer.
type SaveOptions struct {
	// Float32 appends a float32-quantized copy of every factor section.
	// Serving scores straight out of that copy at half the memory traffic
	// of the float64 factors; training and fold-in always use the exact
	// float64 sections. The worst-case absolute error on a served
	// probability is (⌈K/4⌉+3)·2⁻²⁴/e — 3.5e−7 at K=50; see
	// linalg.ScoreErrorBoundF32 for the derivation. Costs 50% extra file
	// size.
	Float32 bool
}

// v2Layout is the computed byte layout of a v2 file: one offset per
// section in fixed order (absent sections keep offset 0) and the total
// file size.
type v2Layout struct {
	off  [8]uint64
	size uint64
}

// sectionLens returns the element count of each of the eight sections
// (zero when absent).
func sectionLens(k, users, items uint64, bias, f32 bool) [8]uint64 {
	var n [8]uint64
	n[0], n[1] = users*k, items*k
	if bias {
		n[2], n[3] = users, items
	}
	if f32 {
		n[4], n[5] = users*k, items*k
		if bias {
			n[6], n[7] = users, items
		}
	}
	return n
}

// layoutV2 computes the unique layout for the given shape: sections in
// fixed order, each starting on a v2Align boundary.
func layoutV2(k, users, items uint64, bias, f32 bool) v2Layout {
	lens := sectionLens(k, users, items, bias, f32)
	var l v2Layout
	pos := uint64(v2HeaderSize)
	for s, n := range lens {
		if n == 0 && s >= 2 { // fu64/fi64 are always present, even if empty
			continue
		}
		pos = (pos + v2Align - 1) &^ uint64(v2Align-1)
		l.off[s] = pos
		elem := uint64(8)
		if s >= 4 {
			elem = 4
		}
		pos += n * elem
	}
	l.size = pos
	return l
}

// v2Header is the parsed and validated header of a v2 model file.
type v2Header struct {
	k, users, items uint64
	bias, f32       bool
	layout          v2Layout
}

// parseV2Header parses and validates the 120 header bytes following the
// magic. It checks the dimensions against the size guard, rejects unknown
// flags and non-zero reserved bytes, and requires the stored offset table
// and file size to equal the recomputed canonical layout — so a reader
// that trusts the header (the mmap path) never needs to scan the factor
// sections to know they are in bounds.
func parseV2Header(hdr []byte) (v2Header, error) {
	if len(hdr) != v2HeaderSize-8 {
		return v2Header{}, fmt.Errorf("core: v2 header is %d bytes, want %d", len(hdr)+8, v2HeaderSize)
	}
	le := binary.LittleEndian
	h := v2Header{
		k:     le.Uint64(hdr[0:]),
		users: le.Uint64(hdr[8:]),
		items: le.Uint64(hdr[16:]),
	}
	flags := le.Uint64(hdr[24:])
	switch {
	case h.k == 0 || h.k > maxModelDim:
		return v2Header{}, fmt.Errorf("core: implausible K=%d in model header", h.k)
	case h.users > maxModelDim || h.items > maxModelDim:
		return v2Header{}, fmt.Errorf("core: implausible shape %dx%d in model header", h.users, h.items)
	case h.users*h.k > maxModelDim || h.items*h.k > maxModelDim:
		return v2Header{}, fmt.Errorf("core: model %dx%d with K=%d exceeds size guard", h.users, h.items, h.k)
	case flags&^uint64(v2FlagBias|v2FlagF32) != 0:
		return v2Header{}, fmt.Errorf("core: unknown flags %#x in model header", flags)
	}
	h.bias = flags&v2FlagBias != 0
	h.f32 = flags&v2FlagF32 != 0
	for _, b := range hdr[104:] {
		if b != 0 {
			return v2Header{}, fmt.Errorf("core: non-zero reserved bytes in model header")
		}
	}
	h.layout = layoutV2(h.k, h.users, h.items, h.bias, h.f32)
	for s := range h.layout.off {
		if got := le.Uint64(hdr[32+8*s:]); got != h.layout.off[s] {
			return v2Header{}, fmt.Errorf("core: section %d offset %d disagrees with canonical layout (%d)", s, got, h.layout.off[s])
		}
	}
	if got := le.Uint64(hdr[96:]); got != h.layout.size {
		return v2Header{}, fmt.Errorf("core: file size %d in header disagrees with canonical layout (%d)", got, h.layout.size)
	}
	return h, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// WriteTo serializes the model in format v2 without the float32 section.
// It implements io.WriterTo; use WriteToV2 to choose SaveOptions.
func (m *Model) WriteTo(w io.Writer) (int64, error) {
	return m.WriteToV2(w, SaveOptions{})
}

// WriteToV2 serializes the model in format v2 (see the package layout
// comment above). The float64 sections hold the exact training bits; with
// opts.Float32 a quantized copy of each factor section is appended.
func (m *Model) WriteToV2(w io.Writer, opts SaveOptions) (int64, error) {
	bias := m.bu != nil
	l := layoutV2(uint64(m.k), uint64(m.users), uint64(m.items), bias, opts.Float32)

	cw := &countingWriter{w: w}
	bw := bufio.NewWriterSize(cw, 1<<16)
	le := binary.LittleEndian

	hdr := make([]byte, v2HeaderSize)
	copy(hdr, magicV2)
	le.PutUint64(hdr[8:], uint64(m.k))
	le.PutUint64(hdr[16:], uint64(m.users))
	le.PutUint64(hdr[24:], uint64(m.items))
	flags := uint64(0)
	if bias {
		flags |= v2FlagBias
	}
	if opts.Float32 {
		flags |= v2FlagF32
	}
	le.PutUint64(hdr[32:], flags)
	for s := range l.off {
		le.PutUint64(hdr[40+8*s:], l.off[s])
	}
	le.PutUint64(hdr[104:], l.size)
	if _, err := bw.Write(hdr); err != nil {
		return cw.n, err
	}

	pos := uint64(v2HeaderSize)
	zeros := make([]byte, v2Align)
	padTo := func(off uint64) error {
		for pos < off {
			n := off - pos
			if n > uint64(len(zeros)) {
				n = uint64(len(zeros))
			}
			if _, err := bw.Write(zeros[:n]); err != nil {
				return err
			}
			pos += n
		}
		return nil
	}
	// Factor sections go through bounded chunks: binary.Write on a whole
	// slice transiently allocates a byte copy of it, which would double
	// peak memory for a large model.
	const chunk = 8192
	f64s := [4][]float64{m.fu, m.fi, m.bu, m.bi}
	for s, arr := range f64s {
		if s >= 2 && len(arr) == 0 {
			continue
		}
		if err := padTo(l.off[s]); err != nil {
			return cw.n, err
		}
		for start := 0; start < len(arr); start += chunk {
			if err := binary.Write(bw, le, arr[start:min(start+chunk, len(arr))]); err != nil {
				return cw.n, err
			}
		}
		pos += 8 * uint64(len(arr))
	}
	if opts.Float32 {
		buf := make([]float32, 4096)
		for s, arr := range f64s {
			if s >= 2 && len(arr) == 0 {
				continue
			}
			if err := padTo(l.off[4+s]); err != nil {
				return cw.n, err
			}
			for start := 0; start < len(arr); start += len(buf) {
				end := min(start+len(buf), len(arr))
				chunk := buf[:end-start]
				for j := range chunk {
					chunk[j] = float32(arr[start+j])
				}
				if err := binary.Write(bw, le, chunk); err != nil {
					return cw.n, err
				}
			}
			pos += 4 * uint64(len(arr))
		}
	}
	err := bw.Flush()
	return cw.n, err
}

// WriteToV1 serializes the model in the legacy v1 stream format. New code
// saves v2; this writer exists so compatibility tests (and tooling that
// must feed v1-only consumers) can still produce v1 bytes.
func (m *Model) WriteToV1(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	n := int64(0)
	count := func(k int, err error) error {
		n += int64(k)
		return err
	}
	if err := count(bw.WriteString(magicV1)); err != nil {
		return n, err
	}
	hasBias := uint64(0)
	if m.bu != nil {
		hasBias = 1
	}
	for _, v := range []uint64{uint64(m.k), uint64(m.users), uint64(m.items), hasBias} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return n, err
		}
		n += 8
	}
	for _, arr := range [][]float64{m.fu, m.fi, m.bu, m.bi} {
		if arr == nil {
			continue
		}
		if err := binary.Write(bw, binary.LittleEndian, arr); err != nil {
			return n, err
		}
		n += int64(8 * len(arr))
	}
	return n, bw.Flush()
}

// SaveModelFile writes the model to path atomically in format v2, without
// the float32 section; SaveModelFileOpts chooses. The bytes land in a
// sibling temporary file which is renamed over path only after a
// successful write and sync, and the parent directory is fsynced after
// the rename, so a crash at any point leaves either the old or the new
// model durably at path — never a truncated one, and never a rename that
// evaporates with the directory's dirty metadata. The temp file is
// created with mode 0644 (subject to the umask, like a plain create), so
// a serving process under another user can read the model. The temp name
// carries a per-process, per-call unique suffix, so concurrent saves to
// the same path (a trainer daemon racing a manual cmd/ocular -save)
// cannot clobber each other's in-flight bytes; they still race at the
// rename, where last-writer-wins over complete files is the best either
// could ask for.
func (m *Model) SaveModelFile(path string) error {
	return m.SaveModelFileOpts(path, SaveOptions{})
}

// saveSeq disambiguates temp files of concurrent saves within one
// process; the pid disambiguates across processes sharing a directory,
// and the random component covers processes whose pids collide anyway —
// two containers both running as pid 1 against a shared volume would
// otherwise deterministically race on the same temp name.
var saveSeq atomic.Uint64

// saveTempPath returns a temp-file sibling of path unique to this call.
func saveTempPath(path string) string {
	return fmt.Sprintf("%s.tmp.%d.%d.%08x", path, os.Getpid(), saveSeq.Add(1), rand.Uint32())
}

// staleTempAge is how old a sibling temp file must be before a save
// sweeps it: long past any live save's write window, so only crash
// litter qualifies.
const staleTempAge = time.Hour

// sweepStaleTemps deletes crash litter (model temp files abandoned by a
// killed writer) next to path. With per-call unique temp names the
// litter would otherwise accumulate forever — unlike the old fixed
// ".tmp" name, no later save truncates it implicitly. Only files older
// than staleTempAge are removed so a concurrent save's in-flight temp
// (the thing unique names exist to protect) is never swept. Best-effort:
// errors are ignored, the save itself does not depend on it.
func sweepStaleTemps(path string) {
	matches, err := filepath.Glob(path + ".tmp.*")
	if err != nil {
		return
	}
	for _, m := range matches {
		if st, err := os.Stat(m); err == nil && time.Since(st.ModTime()) > staleTempAge {
			os.Remove(m)
		}
	}
}

// SaveModelFileOpts is SaveModelFile with explicit SaveOptions.
func (m *Model) SaveModelFileOpts(path string, opts SaveOptions) error {
	sweepStaleTemps(path)
	tmpPath := saveTempPath(path)
	// O_EXCL: a name collision (astronomically unlikely given the random
	// suffix) must fail loudly rather than risk two writers sharing one
	// in-flight file. Crash litter is handled by sweepStaleTemps, never
	// by reclaiming a name that could belong to a live writer.
	tmp, err := os.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("core: saving model: %w", err)
	}
	defer os.Remove(tmpPath)
	if _, err := m.WriteToV2(tmp, opts); err != nil {
		tmp.Close()
		return fmt.Errorf("core: saving model: %w", err)
	}
	// Flush to stable storage before the rename so a crash cannot leave a
	// durably-renamed but truncated model at path.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("core: saving model: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("core: saving model: %w", err)
	}
	if err := os.Rename(tmpPath, path); err != nil {
		return fmt.Errorf("core: saving model: %w", err)
	}
	// The rename only becomes durable once the directory entry reaches
	// stable storage; without this a crash after SaveModelFile returns
	// could still roll back to the old model (or to nothing, for a first
	// save).
	return fsyncDir(filepath.Dir(path))
}

// fsyncDir points at syncDir; tests swap it to observe that every
// successful save makes its rename durable.
var fsyncDir = syncDir

// syncDir makes previously-renamed entries durable via the shared
// directory-fsync helper, with this package's error prefix.
func syncDir(dir string) error {
	if err := fsutil.SyncDir(dir); err != nil {
		return fmt.Errorf("core: saving model: %w", err)
	}
	return nil
}

// LoadModelFile reads a model saved with SaveModelFile (or WriteTo),
// either format version, copying and validating every byte. Serving paths
// that reload frequently should prefer OpenMappedModel, which maps a v2
// file in O(1).
func LoadModelFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: loading model: %w", err)
	}
	defer f.Close()
	return ReadModel(f)
}

// ReadModel deserializes a model written by WriteTo/WriteToV2 (format v2)
// or WriteToV1 (the legacy format), validating the header and rejecting
// non-finite or negative factors (which no trained model can contain, so
// they indicate corruption). A v2 float32 section is checked against the
// float64 factors and then discarded — the in-memory Model always holds
// the exact float64 factors.
func ReadModel(r io.Reader) (*Model, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 8)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("core: reading model magic: %w", err)
	}
	switch string(magic) {
	case magicV1:
		return readModelV1(br)
	case magicV2:
		return readModelV2(br)
	}
	return nil, fmt.Errorf("core: bad model magic %q (want %q or %q)", magic, magicV1, magicV2)
}

// checkFactors rejects values outside the model domain: factors and
// biases are non-negative and finite by construction.
func checkFactors(arr []float64) error {
	for _, v := range arr {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("core: corrupt model: factor %v out of domain", v)
		}
	}
	return nil
}

func readModelV1(br *bufio.Reader) (*Model, error) {
	var dims [4]uint64
	for i := range dims {
		if err := binary.Read(br, binary.LittleEndian, &dims[i]); err != nil {
			return nil, fmt.Errorf("core: reading model header: %w", err)
		}
	}
	k, users, items, hasBias := dims[0], dims[1], dims[2], dims[3]
	switch {
	case k == 0 || k > maxModelDim:
		return nil, fmt.Errorf("core: implausible K=%d in model header", k)
	case users > maxModelDim || items > maxModelDim:
		return nil, fmt.Errorf("core: implausible shape %dx%d in model header", users, items)
	case hasBias > 1:
		return nil, fmt.Errorf("core: bad bias flag %d in model header", hasBias)
	case users*k > maxModelDim || items*k > maxModelDim:
		return nil, fmt.Errorf("core: model %dx%d with K=%d exceeds size guard", users, items, k)
	}
	m := &Model{
		k:     int(k),
		users: int(users),
		items: int(items),
		fu:    make([]float64, users*k),
		fi:    make([]float64, items*k),
	}
	arrays := [][]float64{m.fu, m.fi}
	if hasBias == 1 {
		m.bu = make([]float64, users)
		m.bi = make([]float64, items)
		arrays = append(arrays, m.bu, m.bi)
	}
	for _, arr := range arrays {
		if err := binary.Read(br, binary.LittleEndian, arr); err != nil {
			return nil, fmt.Errorf("core: reading model factors: %w", err)
		}
		if err := checkFactors(arr); err != nil {
			return nil, err
		}
	}
	// A well-formed stream ends exactly here.
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("core: trailing bytes after model payload")
	}
	return m, nil
}

func readModelV2(br *bufio.Reader) (*Model, error) {
	hdr := make([]byte, v2HeaderSize-8)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("core: reading model header: %w", err)
	}
	h, err := parseV2Header(hdr)
	if err != nil {
		return nil, err
	}
	m := &Model{
		k:     int(h.k),
		users: int(h.users),
		items: int(h.items),
		fu:    make([]float64, h.users*h.k),
		fi:    make([]float64, h.items*h.k),
	}
	if h.bias {
		m.bu = make([]float64, h.users)
		m.bi = make([]float64, h.items)
	}

	pos := uint64(v2HeaderSize)
	skipTo := func(off uint64) error {
		if off < pos {
			return fmt.Errorf("core: section offset %d overlaps previous section", off)
		}
		n, err := io.CopyN(io.Discard, br, int64(off-pos))
		pos += uint64(n)
		if err != nil {
			return fmt.Errorf("core: reading model padding: %w", err)
		}
		return nil
	}
	f64s := [4][]float64{m.fu, m.fi, m.bu, m.bi}
	for s, arr := range f64s {
		if s >= 2 && len(arr) == 0 {
			continue
		}
		if err := skipTo(h.layout.off[s]); err != nil {
			return nil, err
		}
		// Chunked for the same reason as the writer: binary.Read on the
		// whole slice would transiently allocate a byte copy of it.
		const chunk = 8192
		for start := 0; start < len(arr); start += chunk {
			if err := binary.Read(br, binary.LittleEndian, arr[start:min(start+chunk, len(arr))]); err != nil {
				return nil, fmt.Errorf("core: reading model factors: %w", err)
			}
		}
		pos += 8 * uint64(len(arr))
		if err := checkFactors(arr); err != nil {
			return nil, err
		}
	}
	if h.f32 {
		buf := make([]float32, 4096)
		for s, arr := range f64s {
			if s >= 2 && len(arr) == 0 {
				continue
			}
			if err := skipTo(h.layout.off[4+s]); err != nil {
				return nil, err
			}
			for start := 0; start < len(arr); start += len(buf) {
				end := min(start+len(buf), len(arr))
				chunk := buf[:end-start]
				if err := binary.Read(br, binary.LittleEndian, chunk); err != nil {
					return nil, fmt.Errorf("core: reading model float32 section: %w", err)
				}
				for j, v := range chunk {
					if v != float32(arr[start+j]) {
						return nil, fmt.Errorf("core: corrupt model: float32 section disagrees with float64 factors")
					}
				}
			}
			pos += 4 * uint64(len(arr))
		}
	}
	// A well-formed stream ends exactly at the header's file size.
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("core: trailing bytes after model payload")
	}
	return m, nil
}
