package core

import (
	"fmt"
	"math"

	"repro/internal/parallel"
	"repro/internal/rng"
)

// FoldInUser computes an affiliation vector (and bias, for bias-enabled
// models) for a user unseen at training time, given the items the user has
// interacted with. It solves the single-user subproblem of Section IV-D to
// convergence against the fixed item factors — the warm-path answer to the
// B2B deployment need of onboarding a new client without retraining.
//
// cfg supplies the solver settings and the regularization weight; K is
// taken from the model (a mismatching cfg.K is rejected). items may be in
// any order; duplicates are ignored. The returned factor can be passed to
// Model.ScoreWithFactor.
func (m *Model) FoldInUser(items []int, cfg Config) (factor []float64, bias float64, err error) {
	if cfg.K == 0 {
		cfg.K = m.k
	}
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, 0, err
	}
	if cfg.K != m.k {
		return nil, 0, fmt.Errorf("core: fold-in K=%d does not match model K=%d", cfg.K, m.k)
	}
	seen := make(map[int]bool, len(items))
	pos := make([]int32, 0, len(items))
	for _, i := range items {
		if i < 0 || i >= m.items {
			return nil, 0, fmt.Errorf("core: fold-in item %d out of range (%d items)", i, m.items)
		}
		if !seen[i] {
			seen[i] = true
			pos = append(pos, int32(i))
		}
	}

	t := &trainer{cfg: cfg, m: m, sum: make([]float64, m.k)}
	parallel.SumVectors(t.sum, m.fi, m.k, cfg.Workers)

	f := make([]float64, m.k)
	rnd := rng.New(cfg.Seed)
	for c := range f {
		f[c] = rnd.Float64() * cfg.InitScale
	}
	w := 1.0
	if cfg.Relative && len(pos) > 0 {
		w = float64(m.items-len(pos)) / float64(len(pos))
	}
	side := sideCtx{pos: pos, others: m.fi, wScalar: w}
	if m.bu != nil {
		side.otherBias = m.bi
	}
	nZeros := float64(m.items - len(pos))
	scratch := &parallel.Scratch{}

	total := func() float64 {
		q := t.partialObjective(f, side)
		if m.bu != nil {
			q += bias*nZeros + cfg.Lambda*bias*bias
		}
		return q
	}
	prev := total()
	for it := 0; it < cfg.MaxIter; it++ {
		side.selfBias = bias
		// updateFactor returns the subproblem objective at the factor it
		// leaves behind — the convergence value for bias-free models. With
		// biases the subsequent 1-D step moves b after that partial was
		// computed, so the objective is re-evaluated at the final (f, b).
		q := t.updateFactor(f, side, scratch)
		if m.bu != nil {
			bias = t.updateBias(bias, f, side, nZeros, scratch)
			q = total()
		}
		if prev-q <= cfg.Tol*math.Abs(prev) {
			break
		}
		prev = q
	}
	return f, bias, nil
}
