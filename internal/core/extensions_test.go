package core

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/linalg"
	"repro/internal/rng"
)

// --- Bias extension (Section IV-A) -----------------------------------------

func TestBiasModelTrains(t *testing.T) {
	m := smallMatrix(21, 30, 25, 150)
	res, err := Train(m, Config{K: 4, Lambda: 1, MaxIter: 25, Seed: 1, Bias: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Model.HasBias() {
		t.Fatal("bias flag lost")
	}
	for u := 0; u < 30; u++ {
		if b := res.Model.UserBias(u); b < 0 || math.IsNaN(b) {
			t.Fatalf("user bias %v invalid", b)
		}
	}
	for i := 0; i < 25; i++ {
		if b := res.Model.ItemBias(i); b < 0 || math.IsNaN(b) {
			t.Fatalf("item bias %v invalid", b)
		}
	}
	// Objective must still be monotone with biases in the loop.
	for n := 1; n < len(res.Objective); n++ {
		if res.Objective[n] > res.Objective[n-1]+1e-9*math.Abs(res.Objective[n-1]) {
			t.Fatalf("objective increased at iter %d with biases", n)
		}
	}
}

func TestBiasObjectiveMatchesNaive(t *testing.T) {
	m := smallMatrix(22, 8, 6, 15)
	res, err := Train(m, Config{K: 3, Lambda: 0.5, MaxIter: 4, Seed: 1, Bias: true})
	if err != nil {
		t.Fatal(err)
	}
	mod := res.Model
	lambda := 0.5
	naive := 0.0
	for u := 0; u < m.Rows(); u++ {
		for i := 0; i < m.Cols(); i++ {
			z := linalg.Dot(mod.UserFactor(u), mod.ItemFactor(i)) + mod.UserBias(u) + mod.ItemBias(i)
			if m.Has(u, i) {
				naive -= math.Log(1 - math.Exp(-clampDot(z)))
			} else {
				naive += z
			}
		}
		naive += lambda * (linalg.Norm2Sq(mod.UserFactor(u)) + mod.UserBias(u)*mod.UserBias(u))
	}
	for i := 0; i < m.Cols(); i++ {
		naive += lambda * (linalg.Norm2Sq(mod.ItemFactor(i)) + mod.ItemBias(i)*mod.ItemBias(i))
	}
	got := mod.Objective(m, lambda, false)
	if math.Abs(got-naive) > 1e-8*(1+math.Abs(naive)) {
		t.Fatalf("Objective=%v naive=%v", got, naive)
	}
}

func TestBiasPredictIncludesBiases(t *testing.T) {
	m := smallMatrix(23, 20, 15, 100)
	res, _ := Train(m, Config{K: 3, Lambda: 0.5, MaxIter: 10, Seed: 1, Bias: true})
	mod := res.Model
	u, i := 3, 5
	want := 1 - math.Exp(-(linalg.Dot(mod.UserFactor(u), mod.ItemFactor(i)) + mod.UserBias(u) + mod.ItemBias(i)))
	if got := mod.Predict(u, i); math.Abs(got-want) > 1e-15 {
		t.Fatalf("Predict=%v want %v", got, want)
	}
	dst := make([]float64, 15)
	mod.ScoreUser(u, dst)
	if math.Abs(dst[i]-want) > 1e-15 {
		t.Fatalf("ScoreUser=%v want %v", dst[i], want)
	}
}

func TestBiasAblationComparable(t *testing.T) {
	// The paper reports biases do not improve recommendation performance;
	// at minimum the bias model must stay in the same accuracy ballpark
	// (no catastrophic regression) on planted data.
	d := dataset.SyntheticSmall(24)
	sp := dataset.SplitEntries(d.R, 0.75, rng.New(24))
	plain, _ := Train(sp.Train, Config{K: 8, Lambda: 2, MaxIter: 60, Seed: 1})
	biased, _ := Train(sp.Train, Config{K: 8, Lambda: 2, MaxIter: 60, Seed: 1, Bias: true})
	mp := eval.Evaluate(plain.Model, sp.Train, sp.Test, 20)
	mb := eval.Evaluate(biased.Model, sp.Train, sp.Test, 20)
	if mb.RecallAtM < 0.7*mp.RecallAtM {
		t.Fatalf("bias model recall %v collapsed vs plain %v", mb.RecallAtM, mp.RecallAtM)
	}
	t.Logf("plain recall@20=%.4f, bias recall@20=%.4f (paper: biases don't help)", mp.RecallAtM, mb.RecallAtM)
}

// --- GradSteps ablation ------------------------------------------------------

func TestGradStepsValidation(t *testing.T) {
	m := smallMatrix(25, 5, 5, 10)
	if _, err := Train(m, Config{K: 2, GradSteps: -1}); err == nil {
		t.Fatal("negative GradSteps accepted")
	}
}

func TestGradStepsReachLowerObjectivePerIteration(t *testing.T) {
	// Solving subproblems more exactly must reach an equal or lower
	// objective in the same number of outer iterations (the paper's point
	// is that it is not *time*-efficient, not that it is worse per sweep).
	m := smallMatrix(26, 40, 30, 250)
	one, _ := Train(m, Config{K: 5, Lambda: 1, MaxIter: 5, Tol: 1e-12, Seed: 2, GradSteps: 1})
	five, _ := Train(m, Config{K: 5, Lambda: 1, MaxIter: 5, Tol: 1e-12, Seed: 2, GradSteps: 5})
	qOne := one.Objective[len(one.Objective)-1]
	qFive := five.Objective[len(five.Objective)-1]
	if qFive > qOne+1e-6*math.Abs(qOne) {
		t.Fatalf("GradSteps=5 objective %v worse than single-step %v after equal sweeps", qFive, qOne)
	}
}

func TestGradStepsDefaultIsOne(t *testing.T) {
	cfg := Config{K: 3}.withDefaults()
	if cfg.GradSteps != 1 {
		t.Fatalf("default GradSteps = %d, want 1 (the paper's choice)", cfg.GradSteps)
	}
}

// --- Fold-in ------------------------------------------------------------------

func TestFoldInMatchesTrainedUser(t *testing.T) {
	// Folding in the purchase history of an existing user must score
	// similarly to that user's trained factor: the top recommendations
	// should substantially overlap.
	d := dataset.SyntheticSmall(27)
	res, err := Train(d.R, Config{K: 8, Lambda: 2, MaxIter: 60, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	mod := res.Model
	matches := 0
	users := 0
	for u := 0; u < d.Users(); u += 7 {
		row := d.R.Row(u)
		if len(row) < 3 {
			continue
		}
		users++
		items := make([]int, len(row))
		for n, i := range row {
			items[n] = int(i)
		}
		f, bias, err := mod.FoldInUser(items, Config{Lambda: 2, MaxIter: 100, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		orig := make([]float64, d.Items())
		folded := make([]float64, d.Items())
		mod.ScoreUser(u, orig)
		mod.ScoreWithFactor(f, bias, folded)
		if topIndex(orig, d.R, u) == topIndex(folded, d.R, u) {
			matches++
		}
	}
	if users == 0 {
		t.Fatal("no users sampled")
	}
	if matches*2 < users {
		t.Fatalf("fold-in top recommendation matched trained user only %d/%d times", matches, users)
	}
}

func topIndex(scores []float64, r interface{ Has(u, i int) bool }, u int) int {
	best, bestV := -1, math.Inf(-1)
	for i, v := range scores {
		if r.Has(u, i) {
			continue
		}
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

func TestFoldInValidation(t *testing.T) {
	d := dataset.SyntheticSmall(28)
	res, _ := Train(d.R, Config{K: 4, Lambda: 2, MaxIter: 10, Seed: 1})
	if _, _, err := res.Model.FoldInUser([]int{-1}, Config{}); err == nil {
		t.Error("negative item accepted")
	}
	if _, _, err := res.Model.FoldInUser([]int{d.Items()}, Config{}); err == nil {
		t.Error("out-of-range item accepted")
	}
	if _, _, err := res.Model.FoldInUser([]int{0}, Config{K: res.Model.K() + 1}); err == nil {
		t.Error("mismatched K accepted")
	}
}

func TestFoldInEmptyHistory(t *testing.T) {
	d := dataset.SyntheticSmall(29)
	res, _ := Train(d.R, Config{K: 4, Lambda: 2, MaxIter: 10, Seed: 1})
	f, bias, err := res.Model.FoldInUser(nil, Config{Lambda: 2})
	if err != nil {
		t.Fatal(err)
	}
	// With no positives the subproblem is pure shrinkage: factor -> 0.
	if linalg.Norm2(f) > 1e-3 || bias != 0 {
		t.Fatalf("empty-history factor norm %v bias %v, want ~0", linalg.Norm2(f), bias)
	}
}

func TestFoldInWithBiasModel(t *testing.T) {
	d := dataset.SyntheticSmall(30)
	res, _ := Train(d.R, Config{K: 4, Lambda: 2, MaxIter: 20, Seed: 1, Bias: true})
	row := d.R.Row(1)
	items := make([]int, len(row))
	for n, i := range row {
		items[n] = int(i)
	}
	f, bias, err := res.Model.FoldInUser(items, Config{Lambda: 2, MaxIter: 60, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if bias < 0 || math.IsNaN(bias) {
		t.Fatalf("fold-in bias %v invalid", bias)
	}
	dst := make([]float64, d.Items())
	res.Model.ScoreWithFactor(f, bias, dst)
	for _, v := range dst {
		if v < 0 || v >= 1 || math.IsNaN(v) {
			t.Fatalf("fold-in score %v out of range", v)
		}
	}
}

// --- Serialization ---------------------------------------------------------------

func TestModelRoundTrip(t *testing.T) {
	for _, bias := range []bool{false, true} {
		m := smallMatrix(31, 20, 15, 90)
		res, err := Train(m, Config{K: 5, Lambda: 1, MaxIter: 10, Seed: 7, Bias: bias})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		n, err := res.Model.WriteTo(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if n != int64(buf.Len()) {
			t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
		}
		got, err := ReadModel(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.K() != 5 || got.NumUsers() != 20 || got.NumItems() != 15 || got.HasBias() != bias {
			t.Fatalf("round-trip shape wrong: %v bias=%v", got, got.HasBias())
		}
		for u := 0; u < 20; u++ {
			for i := 0; i < 15; i++ {
				if got.Predict(u, i) != res.Model.Predict(u, i) {
					t.Fatalf("bias=%v: prediction (%d,%d) differs after round trip", bias, u, i)
				}
			}
		}
	}
}

func TestReadModelRejectsCorruption(t *testing.T) {
	m := smallMatrix(32, 10, 8, 40)
	res, _ := Train(m, Config{K: 3, Lambda: 1, MaxIter: 5, Seed: 1})
	var buf bytes.Buffer
	if _, err := res.Model.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"empty":            {},
		"bad magic":        append([]byte("NOTRIGHT"), good[8:]...),
		"truncated header": good[:20],
		"truncated body":   good[:len(good)-9],
		"trailing bytes":   append(append([]byte{}, good...), 0),
	}
	// Negative factor injected into the payload.
	negative := append([]byte{}, good...)
	negative[len(negative)-1] = 0xC0 // flips the last float's sign/exponent
	cases["negative factor"] = negative

	// Implausible K.
	badK := append([]byte{}, good...)
	for i := 8; i < 16; i++ {
		badK[i] = 0xFF
	}
	cases["implausible K"] = badK

	for name, data := range cases {
		if _, err := ReadModel(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: corruption accepted", name)
		}
	}
}

func TestReadModelRejectsOversizedHeader(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(modelMagic)
	// K, users, items huge but individually under the dim cap is still
	// caught by the product guard.
	for _, v := range []uint64{1 << 20, 1 << 27, 4, 0} {
		b := make([]byte, 8)
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		buf.Write(b)
	}
	if _, err := ReadModel(&buf); err == nil {
		t.Fatal("oversized product accepted")
	}
}

func BenchmarkModelRoundTrip(b *testing.B) {
	d := dataset.SyntheticSmall(1)
	res, _ := Train(d.R, Config{K: 10, Lambda: 2, MaxIter: 5, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if _, err := res.Model.WriteTo(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := ReadModel(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationGradSteps quantifies the paper's claim that a single
// projected-gradient step per subproblem is faster to equal quality than
// more exact solves: compare ns/op at equal outer-iteration budgets.
func BenchmarkAblationGradSteps(b *testing.B) {
	d := dataset.SyntheticSmall(2)
	for _, steps := range []int{1, 3, 10} {
		b.Run(map[int]string{1: "steps=1", 3: "steps=3", 10: "steps=10"}[steps], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Train(d.R, Config{K: 8, Lambda: 2, MaxIter: 10, Tol: 1e-12, Seed: 1, GradSteps: steps}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationBias measures the training overhead of the Section IV-A
// bias extension the paper chose to disable.
func BenchmarkAblationBias(b *testing.B) {
	d := dataset.SyntheticSmall(3)
	for _, bias := range []bool{false, true} {
		name := "plain"
		if bias {
			name = "bias"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Train(d.R, Config{K: 8, Lambda: 2, MaxIter: 10, Tol: 1e-12, Seed: 1, Bias: bias}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Warm start --------------------------------------------------------------

func TestWarmStartConvergesFaster(t *testing.T) {
	d := dataset.SyntheticSmall(33)
	cold, err := Train(d.R, Config{K: 6, Lambda: 2, MaxIter: 200, Tol: 1e-5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Train(d.R, Config{K: 6, Lambda: 2, MaxIter: 200, Tol: 1e-5, Seed: 99, WarmStart: cold.Model})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Iterations() > cold.Iterations()/2+1 {
		t.Fatalf("warm start took %d iterations vs cold %d", warm.Iterations(), cold.Iterations())
	}
	// Warm restart on the SAME data must not worsen the objective.
	qCold := cold.Objective[len(cold.Objective)-1]
	qWarm := warm.Objective[len(warm.Objective)-1]
	if qWarm > qCold+1e-6*math.Abs(qCold) {
		t.Fatalf("warm objective %v worse than cold %v", qWarm, qCold)
	}
}

func TestWarmStartWithNewData(t *testing.T) {
	// The deployment flow: train on the old matrix, new purchases arrive,
	// retrain warm on the union.
	d := dataset.SyntheticSmall(34)
	sp := dataset.SplitEntries(d.R, 0.8, rng.New(34))
	oldRes, err := Train(sp.Train, Config{K: 6, Lambda: 2, MaxIter: 100, Tol: 1e-5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Train(d.R, Config{K: 6, Lambda: 2, MaxIter: 100, Tol: 1e-5, Seed: 1, WarmStart: oldRes.Model})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Train(d.R, Config{K: 6, Lambda: 2, MaxIter: 100, Tol: 1e-5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Iterations() >= cold.Iterations() {
		t.Logf("warm %d vs cold %d iterations (warm not faster on this draw)", warm.Iterations(), cold.Iterations())
	}
	qWarm := warm.Objective[len(warm.Objective)-1]
	qCold := cold.Objective[len(cold.Objective)-1]
	if qWarm > qCold*1.02+1 {
		t.Fatalf("warm-start final objective %v much worse than cold %v", qWarm, qCold)
	}
}

func TestWarmStartValidation(t *testing.T) {
	d := dataset.SyntheticSmall(35)
	res, _ := Train(d.R, Config{K: 4, Lambda: 2, MaxIter: 5, Seed: 1})
	if _, err := Train(d.R, Config{K: 5, WarmStart: res.Model}); err == nil {
		t.Error("K mismatch accepted")
	}
	other := smallMatrix(35, 7, 7, 20)
	if _, err := Train(other, Config{K: 4, WarmStart: res.Model}); err == nil {
		t.Error("shape mismatch accepted")
	}
	if _, err := Train(d.R, Config{K: 4, Bias: true, WarmStart: res.Model}); err == nil {
		t.Error("bias-less warm start accepted for bias config")
	}
}
