package core

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// writeV2File saves m's v2 bytes under dir and returns the path.
func writeV2File(t testing.TB, dir, name string, m *Model, f32 bool) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, v2Bytes(t, m, f32), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestOpenMappedModelRangeRejectsCorruption is the corruption table for
// the partial-map open: out-of-bounds and empty item ranges, offset
// tables whose entries are not the canonical page-aligned layout, files
// truncated so the requested slice would cross the section end, and the
// header corruptions the full-map open rejects too.
func TestOpenMappedModelRangeRejectsCorruption(t *testing.T) {
	model := trainedModel(t, true)
	good := v2Bytes(t, model, true)
	items := model.NumItems()
	dir := t.TempDir()

	write := func(name string, data []byte) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	goodPath := write("good", good)
	mutate := func(off int, b byte) []byte {
		out := append([]byte(nil), good...)
		out[off] = b
		return out
	}

	cases := []struct {
		name   string
		path   string
		lo, hi int
	}{
		// Range out of bounds against a pristine file.
		{"negative-lo", goodPath, -1, items},
		{"hi-past-catalogue", goodPath, 0, items + 1},
		{"empty-range", goodPath, 3, 3},
		{"inverted-range", goodPath, 5, 2},
		{"both-past-catalogue", goodPath, items + 4, items + 8},
		// Header corruption: the full header is validated even though only
		// a slice is mapped.
		{"bad-magic", write("bad-magic", mutate(7, 'X')), 0, items},
		// Offset not page-aligned: entry 1 (the item section the range
		// slices) nudged off the canonical v2Align boundary.
		{"unaligned-item-offset", write("unaligned-offset", mutate(48, 1)), 0, items},
		{"bad-flags", write("bad-flags", mutate(32, 0x80)), 0, items},
		{"reserved", write("reserved", mutate(120, 1)), 0, items},
		// Slice crossing the section end: the header promises items the
		// truncated file no longer holds, so mapping the last rows would
		// run past EOF. The size cross-check rejects it up front.
		{"truncated-tail", write("truncated", good[:len(good)-16]), items - 1, items},
		{"too-small", write("tiny", good[:64]), 0, 1},
	}
	for _, tc := range cases {
		if rr, err := OpenMappedModelRange(tc.path, tc.lo, tc.hi); err == nil {
			rr.Close()
			t.Errorf("%s: corruption accepted for range [%d,%d)", tc.name, tc.lo, tc.hi)
		}
	}

	// A legacy v1 file classifies as ErrLegacyFormat, like the full open.
	var v1 []byte
	{
		path := filepath.Join(dir, "v1")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := model.WriteToV1(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
		v1raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		v1 = v1raw
	}
	_ = v1
	if _, err := OpenMappedModelRange(filepath.Join(dir, "v1"), 0, items); err == nil {
		t.Fatal("v1 file accepted by range open")
	}

	// The pristine file opens for every valid range shape.
	for _, r := range [][2]int{{0, items}, {0, 1}, {items - 1, items}, {items / 3, 2 * items / 3}} {
		rr, err := OpenMappedModelRange(goodPath, r[0], r[1])
		if err != nil {
			t.Fatalf("pristine file rejected for range %v: %v", r, err)
		}
		if rr.ItemLo() != r[0] || rr.ItemHi() != r[1] || rr.Len() != r[1]-r[0] {
			t.Fatalf("range accessors disagree: got [%d,%d) len %d, want %v", rr.ItemLo(), rr.ItemHi(), rr.Len(), r)
		}
		rr.Close()
	}
}

// TestMappedModelRangeRowsByteIdentical is the property test of the
// sliced sections: for every item of every sub-range, the range-mapped
// float64 and float32 factor rows (and biases) are byte-identical to the
// full map's rows, and scoring through the range is bit-identical to the
// corresponding entries of full-map scoring.
func TestMappedModelRangeRowsByteIdentical(t *testing.T) {
	for _, variant := range []struct {
		bias, f32 bool
	}{{false, false}, {true, false}, {false, true}, {true, true}} {
		t.Run(fmt.Sprintf("bias=%v_f32=%v", variant.bias, variant.f32), func(t *testing.T) {
			model := trainedModel(t, variant.bias)
			dir := t.TempDir()
			path := writeV2File(t, dir, "model.bin", model, variant.f32)

			full, err := OpenMappedModel(path)
			if err != nil {
				t.Fatal(err)
			}
			defer full.Close()
			items, users, k := full.NumItems(), full.NumUsers(), full.K()

			ranges := [][2]int{{0, items}, {0, 1}, {items - 1, items}, {1, items / 2}, {items / 2, items}, {3, 11}}
			for _, r := range ranges {
				lo, hi := r[0], r[1]
				rr, err := OpenMappedModelRange(path, lo, hi)
				if err != nil {
					t.Fatalf("range [%d,%d): %v", lo, hi, err)
				}
				if rr.HasBias() != variant.bias || rr.HasFloat32() != variant.f32 {
					t.Fatalf("range [%d,%d): bias/f32 flags %v/%v, want %v/%v",
						lo, hi, rr.HasBias(), rr.HasFloat32(), variant.bias, variant.f32)
				}

				// Every item row of the slice, byte for byte.
				for i := lo; i < hi; i++ {
					wantRow := full.Model().ItemFactor(i)
					gotRow := rr.ItemFactorF64(i)
					for c := 0; c < k; c++ {
						if math.Float64bits(gotRow[c]) != math.Float64bits(wantRow[c]) {
							t.Fatalf("range [%d,%d) item %d coord %d: f64 %x != %x",
								lo, hi, i, c, math.Float64bits(gotRow[c]), math.Float64bits(wantRow[c]))
						}
					}
					if variant.f32 {
						got32 := rr.ItemFactorF32(i)
						for c := 0; c < k; c++ {
							if math.Float32bits(got32[c]) != math.Float32bits(float32(wantRow[c])) {
								t.Fatalf("range [%d,%d) item %d coord %d: f32 row differs", lo, hi, i, c)
							}
						}
					}
					if variant.bias {
						if math.Float64bits(rr.ItemBiasF64(i)) != math.Float64bits(full.Model().ItemBias(i)) {
							t.Fatalf("range [%d,%d) item %d: bias differs", lo, hi, i)
						}
					}
				}
				// User rows are mapped in full and must match too.
				for u := 0; u < users; u++ {
					wantRow := full.Model().UserFactor(u)
					gotRow := rr.UserFactorF64(u)
					for c := 0; c < k; c++ {
						if math.Float64bits(gotRow[c]) != math.Float64bits(wantRow[c]) {
							t.Fatalf("range [%d,%d) user %d coord %d: f64 differs", lo, hi, u, c)
						}
					}
				}

				// Scoring through the slice equals the full map's entries
				// bit for bit, on both the f32 and f64 paths.
				fullScores := make([]float64, items)
				rangeScores := make([]float64, hi-lo)
				for u := 0; u < users; u++ {
					full.ScoreUser(u, fullScores)
					rr.ScoreItems(u, rangeScores)
					for n := range rangeScores {
						if math.Float64bits(rangeScores[n]) != math.Float64bits(fullScores[lo+n]) {
							t.Fatalf("range [%d,%d) user %d item %d: score %v != %v",
								lo, hi, u, lo+n, rangeScores[n], fullScores[lo+n])
						}
					}
				}
				rr.Close()
			}
		})
	}
}

// TestMappedModelRangePartitionCoversCatalogue checks that a disjoint
// partition of ranges scores, in union, exactly what a full map scores —
// the property the scatter-gather serving tier is built on.
func TestMappedModelRangePartitionCoversCatalogue(t *testing.T) {
	model := trainedModel(t, true)
	dir := t.TempDir()
	path := writeV2File(t, dir, "model.bin", model, true)
	full, err := OpenMappedModel(path)
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	items := full.NumItems()

	bounds := []int{0, items / 4, items / 2, items}
	got := make([]float64, items)
	fullScores := make([]float64, items)
	for p := 0; p+1 < len(bounds); p++ {
		lo, hi := bounds[p], bounds[p+1]
		rr, err := OpenMappedModelRange(path, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		rr.ScoreItems(2, got[lo:hi])
		rr.Close()
	}
	full.ScoreUser(2, fullScores)
	for i := range fullScores {
		if math.Float64bits(got[i]) != math.Float64bits(fullScores[i]) {
			t.Fatalf("item %d: partition score %v != full score %v", i, got[i], fullScores[i])
		}
	}
}
