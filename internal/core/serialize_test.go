package core

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/linalg"
)

// trainedModel fits a small model, optionally with biases, for the
// serialization tests.
func trainedModel(t testing.TB, bias bool) *Model {
	t.Helper()
	m := smallMatrix(31, 20, 15, 90)
	res, err := Train(m, Config{K: 5, Lambda: 1, MaxIter: 10, Seed: 7, Bias: bias})
	if err != nil {
		t.Fatal(err)
	}
	return res.Model
}

// sameFactorBits asserts two models agree bit for bit on every float64
// factor and bias.
func sameFactorBits(t *testing.T, a, b *Model) {
	t.Helper()
	arrays := [][2][]float64{{a.fu, b.fu}, {a.fi, b.fi}, {a.bu, b.bu}, {a.bi, b.bi}}
	for n, pair := range arrays {
		if len(pair[0]) != len(pair[1]) {
			t.Fatalf("array %d: length %d vs %d", n, len(pair[0]), len(pair[1]))
		}
		for j := range pair[0] {
			if pair[0][j] != pair[1][j] {
				t.Fatalf("array %d element %d: %v vs %v (not bit-exact)", n, j, pair[0][j], pair[1][j])
			}
		}
	}
}

// TestV1FallbackReader checks that legacy v1 streams and files still load
// through ReadModel/LoadModelFile, and that a v1 → v2 re-save round-trip
// is bit-exact on the float64 sections.
func TestV1FallbackReader(t *testing.T) {
	for _, bias := range []bool{false, true} {
		orig := trainedModel(t, bias)

		var v1 bytes.Buffer
		n, err := orig.WriteToV1(&v1)
		if err != nil {
			t.Fatal(err)
		}
		if n != int64(v1.Len()) {
			t.Fatalf("WriteToV1 reported %d bytes, wrote %d", n, v1.Len())
		}
		fromV1, err := ReadModel(bytes.NewReader(v1.Bytes()))
		if err != nil {
			t.Fatalf("bias=%v: v1 stream rejected: %v", bias, err)
		}
		sameFactorBits(t, orig, fromV1)

		// A v1 file on disk loads through LoadModelFile.
		path := filepath.Join(t.TempDir(), "v1.bin")
		if err := os.WriteFile(path, v1.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		fromFile, err := LoadModelFile(path)
		if err != nil {
			t.Fatalf("bias=%v: v1 file rejected: %v", bias, err)
		}
		sameFactorBits(t, orig, fromFile)

		// v1 → v2 re-save keeps the float64 bits, with and without the
		// float32 section.
		for _, f32 := range []bool{false, true} {
			var v2 bytes.Buffer
			n, err := fromV1.WriteToV2(&v2, SaveOptions{Float32: f32})
			if err != nil {
				t.Fatal(err)
			}
			if n != int64(v2.Len()) {
				t.Fatalf("WriteToV2 reported %d bytes, wrote %d", n, v2.Len())
			}
			fromV2, err := ReadModel(bytes.NewReader(v2.Bytes()))
			if err != nil {
				t.Fatalf("bias=%v f32=%v: v2 stream rejected: %v", bias, f32, err)
			}
			sameFactorBits(t, orig, fromV2)
		}
	}
}

// v2Bytes serializes m in v2 format for byte-surgery tests.
func v2Bytes(t testing.TB, m *Model, f32 bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := m.WriteToV2(&buf, SaveOptions{Float32: f32}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReadModelCorruptionBothVersions is the corruption table across both
// format versions: bad magic, dimension overflow, truncated headers and
// factor sections, trailing bytes, out-of-domain factors, and (v2 only)
// tampered offset tables, flags, reserved bytes and float32 sections.
func TestReadModelCorruptionBothVersions(t *testing.T) {
	model := trainedModel(t, true)

	var v1buf bytes.Buffer
	if _, err := model.WriteToV1(&v1buf); err != nil {
		t.Fatal(err)
	}
	v1 := v1buf.Bytes()
	v2 := v2Bytes(t, model, true)
	v2plain := v2Bytes(t, model, false)

	mutate := func(data []byte, off int, b byte) []byte {
		out := append([]byte(nil), data...)
		out[off] = b
		return out
	}
	le64 := func(data []byte, off int, v uint64) []byte {
		out := append([]byte(nil), data...)
		for i := 0; i < 8; i++ {
			out[off+i] = byte(v >> (8 * i))
		}
		return out
	}

	// The first float64 of the fu section sits at the first aligned
	// offset; 0xC0 in its top byte makes it negative.
	fuOff := int(layoutV2(5, 20, 15, true, true).off[0])
	// The first float32 of the fu32 section.
	fu32Off := int(layoutV2(5, 20, 15, true, true).off[4])

	cases := map[string][]byte{
		"v1 empty":            {},
		"v1 bad magic":        mutate(v1, 0, 'X'),
		"v1 truncated header": v1[:20],
		"v1 truncated body":   v1[:len(v1)-9],
		"v1 trailing bytes":   append(append([]byte{}, v1...), 0),
		"v1 negative factor":  mutate(v1, len(v1)-1, 0xC0),
		"v1 implausible K":    le64(v1, 8, 1<<40),
		"v1 dim product":      le64(le64(v1, 8, 1<<20), 16, 1<<27),

		"v2 bad magic":          mutate(v2, 7, 'X'),
		"v2 truncated header":   v2[:64],
		"v2 truncated factors":  v2[:len(v2)-5],
		"v2 trailing bytes":     append(append([]byte{}, v2...), 0),
		"v2 implausible K":      le64(v2, 8, 0),
		"v2 huge users":         le64(v2, 16, 1<<40),
		"v2 dim product":        le64(le64(v2, 8, 1<<20), 16, 1<<27),
		"v2 unknown flags":      le64(v2, 32, 1<<7),
		"v2 tampered offset":    le64(v2, 40, 12345),
		"v2 tampered file size": le64(v2, 104, uint64(len(v2))+v2Align),
		"v2 reserved non-zero":  mutate(v2, 120, 1),
		"v2 negative factor":    mutate(v2, fuOff+7, 0xC0),
		"v2 NaN factor":         le64(v2, fuOff, math.Float64bits(math.NaN())),
		"v2 Inf factor":         le64(v2, fuOff, math.Float64bits(math.Inf(1))),
		"v2 f32 disagrees":      mutate(v2, fu32Off, v2[fu32Off]^0x01),

		"v2 plain truncated": v2plain[:len(v2plain)-1],
		"v2 plain trailing":  append(append([]byte{}, v2plain...), 0),
	}
	for name, data := range cases {
		if _, err := ReadModel(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: corruption accepted", name)
		}
	}

	// Sanity: the uncorrupted baselines load.
	for name, data := range map[string][]byte{"v1": v1, "v2": v2, "v2 plain": v2plain} {
		if _, err := ReadModel(bytes.NewReader(data)); err != nil {
			t.Errorf("%s baseline rejected: %v", name, err)
		}
	}
}

// TestOpenMappedModel checks the O(1) open path: header-validated views,
// scores bit-identical to the copying loader on the float64 path, the
// documented error bound on the float32 path, the fold-in view, and the
// v1 fallback sentinel.
func TestOpenMappedModel(t *testing.T) {
	for _, bias := range []bool{false, true} {
		for _, f32 := range []bool{false, true} {
			model := trainedModel(t, bias)
			dir := t.TempDir()
			path := filepath.Join(dir, "model.bin")
			if err := model.SaveModelFileOpts(path, SaveOptions{Float32: f32}); err != nil {
				t.Fatal(err)
			}
			mm, err := OpenMappedModel(path)
			if err != nil {
				t.Fatalf("bias=%v f32=%v: %v", bias, f32, err)
			}
			if mm.HasFloat32() != f32 || mm.HasBias() != bias {
				t.Fatalf("bias=%v f32=%v: mapped reports bias=%v f32=%v", bias, f32, mm.HasBias(), mm.HasFloat32())
			}
			if mm.K() != model.K() || mm.NumUsers() != model.NumUsers() || mm.NumItems() != model.NumItems() {
				t.Fatalf("shape mismatch: %v vs %v", mm, model)
			}
			sameFactorBits(t, model, mm.Model())

			bound := linalg.ScoreErrorBoundF32(model.K())
			want := make([]float64, model.NumItems())
			got := make([]float64, model.NumItems())
			for u := 0; u < model.NumUsers(); u++ {
				model.ScoreUser(u, want)
				mm.ScoreUser(u, got)
				for i := range want {
					if f32 {
						if d := math.Abs(got[i] - want[i]); d > bound {
							t.Fatalf("u=%d i=%d: f32 score off by %g (bound %g)", u, i, d, bound)
						}
					} else if got[i] != want[i] {
						t.Fatalf("u=%d i=%d: mapped f64 score %v != %v", u, i, got[i], want[i])
					}
				}
			}

			// ScoreWithFactor (the fold-in path) is always exact.
			model.ScoreWithFactor(model.UserFactor(3), model.UserBias(3), want)
			mm.ScoreWithFactor(model.UserFactor(3), model.UserBias(3), got)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("ScoreWithFactor i=%d: %v != %v", i, got[i], want[i])
				}
			}

			if err := mm.Close(); err != nil {
				t.Fatal(err)
			}
			if err := mm.Close(); err != nil { // idempotent
				t.Fatal(err)
			}
		}
	}

	// A v1 file must yield the legacy sentinel so callers can fall back.
	model := trainedModel(t, false)
	var v1 bytes.Buffer
	if _, err := model.WriteToV1(&v1); err != nil {
		t.Fatal(err)
	}
	v1path := filepath.Join(t.TempDir(), "v1.bin")
	if err := os.WriteFile(v1path, v1.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMappedModel(v1path); err == nil {
		t.Fatal("OpenMappedModel accepted a v1 file")
	} else if !errors.Is(err, ErrLegacyFormat) {
		t.Fatalf("v1 file error does not wrap ErrLegacyFormat: %v", err)
	}
}

// TestOpenMappedModelRejectsCorruption tampers with the on-disk header:
// the O(1) open must reject everything the streaming reader rejects at
// the header level, plus size mismatches, without scanning factors.
func TestOpenMappedModelRejectsCorruption(t *testing.T) {
	model := trainedModel(t, true)
	good := v2Bytes(t, model, true)
	dir := t.TempDir()

	check := func(name string, data []byte) {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenMappedModel(path); err == nil {
			t.Errorf("%s: corruption accepted", name)
		}
	}
	mutate := func(off int, b byte) []byte {
		out := append([]byte(nil), good...)
		out[off] = b
		return out
	}
	check("too-small", good[:100])
	check("bad-magic", mutate(7, 'X'))
	check("bad-flags", mutate(32, 0x80))
	check("bad-offset", mutate(40, 1))
	check("truncated", good[:len(good)-1])
	check("trailing", append(append([]byte(nil), good...), 0))
	check("reserved", mutate(120, 1))

	// The pristine file opens.
	path := filepath.Join(dir, "good")
	if err := os.WriteFile(path, good, 0o644); err != nil {
		t.Fatal(err)
	}
	mm, err := OpenMappedModel(path)
	if err != nil {
		t.Fatalf("pristine file rejected: %v", err)
	}
	mm.Close()
}

// TestFloat32ScoreBound checks the documented quantization bound
// linalg.ScoreErrorBoundF32 on a Fig 7-scale fixture: every float32-path
// score is within the bound of the float64 score.
func TestFloat32ScoreBound(t *testing.T) {
	d := dataset.SyntheticNetflix(1, 0.05)
	res, err := Train(d.R, Config{K: 10, Lambda: 5, MaxIter: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	model := res.Model
	path := filepath.Join(t.TempDir(), "model.bin")
	if err := model.SaveModelFileOpts(path, SaveOptions{Float32: true}); err != nil {
		t.Fatal(err)
	}
	mm, err := OpenMappedModel(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mm.Close()
	if !mm.HasFloat32() {
		t.Fatal("float32 section missing")
	}
	want := make([]float64, model.NumItems())
	got := make([]float64, model.NumItems())
	maxErr := 0.0
	for u := 0; u < model.NumUsers(); u += 7 {
		model.ScoreUser(u, want)
		mm.ScoreUser(u, got)
		for i := range want {
			if d := math.Abs(got[i] - want[i]); d > maxErr {
				maxErr = d
			}
		}
	}
	bound := linalg.ScoreErrorBoundF32(model.K())
	if maxErr > bound {
		t.Fatalf("float32 score error %g exceeds the documented bound %g", maxErr, bound)
	}
	t.Logf("max float32 score error: %g (documented bound %g)", maxErr, bound)
}

// TestSaveModelFileAtomicity exercises the temp-file discipline: a failed
// rename leaves no .tmp litter and no clobbered target, and overwriting
// an existing model file works.
func TestSaveModelFileAtomicity(t *testing.T) {
	model := trainedModel(t, false)
	dir := t.TempDir()

	// Overwrite: second save over the same path succeeds and loads.
	path := filepath.Join(dir, "model.bin")
	if err := model.SaveModelFile(path); err != nil {
		t.Fatal(err)
	}
	if err := model.SaveModelFileOpts(path, SaveOptions{Float32: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModelFile(path); err != nil {
		t.Fatal(err)
	}

	// Failed rename: the target is a non-empty directory, so the rename
	// must fail — and the temporary file must be cleaned up.
	blocked := filepath.Join(dir, "blocked")
	if err := os.MkdirAll(filepath.Join(blocked, "x"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := model.SaveModelFile(blocked); err == nil {
		t.Fatal("SaveModelFile over a non-empty directory succeeded")
	}
	if litter, _ := filepath.Glob(blocked + ".tmp*"); len(litter) != 0 {
		t.Errorf("temp files left behind after failed save: %v", litter)
	}

	// Unwritable destination directory errors cleanly.
	if err := model.SaveModelFile(filepath.Join(dir, "no", "such", "dir", "m.bin")); err == nil {
		t.Fatal("SaveModelFile into a missing directory succeeded")
	}
}

// TestSaveTempPathUnique pins the anti-clobber property behind
// concurrent saves: every call gets its own temp file name, so a trainer
// daemon and a manual cmd/ocular -save writing the same path can never
// interleave bytes in one in-flight temp file.
func TestSaveTempPathUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		p := saveTempPath("/x/model.bin")
		if seen[p] {
			t.Fatalf("duplicate temp path %q", p)
		}
		seen[p] = true
	}
}

// TestSaveSweepsOldTempLitter: crash litter from other processes (whose
// pid+seq a later save never collides with) is swept once it is older
// than any live save could be; a recent temp file — possibly another
// process's in-flight save — is left alone.
func TestSaveSweepsOldTempLitter(t *testing.T) {
	model := trainedModel(t, false)
	path := filepath.Join(t.TempDir(), "model.bin")
	old := path + ".tmp.99999.7"
	fresh := path + ".tmp.99998.3"
	for _, p := range []string{old, fresh} {
		if err := os.WriteFile(p, []byte("litter"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	past := time.Now().Add(-2 * staleTempAge)
	if err := os.Chtimes(old, past, past); err != nil {
		t.Fatal(err)
	}
	if err := model.SaveModelFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(old); !os.IsNotExist(err) {
		t.Error("stale temp litter survived the save's sweep")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Error("recent temp file (a possible in-flight save) was swept")
	}
}

// TestSaveModelFileConcurrent races many saves of two distinct models to
// one path; with per-call temp files, the surviving file must always be
// one of the two complete models, never a hybrid or a truncation.
func TestSaveModelFileConcurrent(t *testing.T) {
	a := trainedModel(t, false)
	b := trainedModel(t, true) // different flags → different bytes
	path := filepath.Join(t.TempDir(), "model.bin")

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		m := a
		if i%2 == 1 {
			m = b
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- m.SaveModelFileOpts(path, SaveOptions{})
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	got, err := LoadModelFile(path)
	if err != nil {
		t.Fatalf("model at path is not loadable after concurrent saves: %v", err)
	}
	if g, wa, wb := got.String(), a.String(), b.String(); g != wa && g != wb {
		t.Fatalf("loaded model %s is neither contender (%s / %s)", g, wa, wb)
	}
	if litter, _ := filepath.Glob(path + ".tmp*"); len(litter) != 0 {
		t.Errorf("temp files left behind: %v", litter)
	}
}

// TestSaveModelFileSyncsDir asserts the durability contract: a
// successful save fsyncs the parent directory exactly once (after the
// rename — a crash later must not roll the rename back), and a failing
// directory sync is reported instead of swallowed.
func TestSaveModelFileSyncsDir(t *testing.T) {
	model := trainedModel(t, false)
	dir := t.TempDir()
	orig := fsyncDir
	defer func() { fsyncDir = orig }()

	var synced []string
	fsyncDir = func(d string) error {
		synced = append(synced, d)
		return orig(d)
	}
	path := filepath.Join(dir, "model.bin")
	if err := model.SaveModelFile(path); err != nil {
		t.Fatal(err)
	}
	if len(synced) != 1 || synced[0] != dir {
		t.Fatalf("directory syncs after save: %v, want exactly [%s]", synced, dir)
	}

	// A failed save (rename never happens) must not sync the directory.
	synced = nil
	blocked := filepath.Join(dir, "blocked")
	if err := os.MkdirAll(filepath.Join(blocked, "x"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := model.SaveModelFile(blocked); err == nil {
		t.Fatal("save over a non-empty directory succeeded")
	}
	if len(synced) != 0 {
		t.Errorf("failed save synced the directory: %v", synced)
	}

	// A failing directory sync surfaces as a save error.
	fsyncDir = func(string) error { return errors.New("fsync: injected failure") }
	if err := model.SaveModelFile(filepath.Join(dir, "other.bin")); err == nil {
		t.Error("SaveModelFile swallowed a directory sync failure")
	}
}

// BenchmarkScoreUserF32 compares the serving score loop across the three
// storage paths: heap float64 model, mapped float64 section, and mapped
// float32 section (the half-bandwidth path).
func BenchmarkScoreUserF32(b *testing.B) {
	d := dataset.SyntheticNetflix(1, 0.05)
	res, err := Train(d.R, Config{K: 50, Lambda: 5, MaxIter: 1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	model := res.Model
	dir := b.TempDir()
	open := func(f32 bool) *MappedModel {
		path := filepath.Join(dir, "model.bin")
		if err := model.SaveModelFileOpts(path, SaveOptions{Float32: f32}); err != nil {
			b.Fatal(err)
		}
		mm, err := OpenMappedModel(path)
		if err != nil {
			b.Fatal(err)
		}
		return mm
	}
	dst := make([]float64, model.NumItems())
	b.Run("heap64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			model.ScoreUser(i%model.NumUsers(), dst)
		}
	})
	b.Run("mmap64", func(b *testing.B) {
		mm := open(false)
		defer mm.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mm.ScoreUser(i%model.NumUsers(), dst)
		}
	})
	b.Run("mmap32", func(b *testing.B) {
		mm := open(true)
		defer mm.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mm.ScoreUser(i%model.NumUsers(), dst)
		}
	})
}

// TestOpenMappedModelTinyV1Fallback: a legacy v1 file smaller than the v2
// header must still yield ErrLegacyFormat (not a size error), so serve's
// fallback to the copying loader keeps working for tiny models.
func TestOpenMappedModelTinyV1Fallback(t *testing.T) {
	tiny := &Model{k: 1, users: 2, items: 2, fu: []float64{0.1, 0.2}, fi: []float64{0.3, 0.4}}
	var buf bytes.Buffer
	if _, err := tiny.WriteToV1(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() >= v2HeaderSize {
		t.Fatalf("fixture not tiny: %d bytes", buf.Len())
	}
	path := filepath.Join(t.TempDir(), "tiny-v1.bin")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMappedModel(path); !errors.Is(err, ErrLegacyFormat) {
		t.Fatalf("tiny v1 file: got %v, want ErrLegacyFormat", err)
	}
	if _, err := LoadModelFile(path); err != nil {
		t.Fatalf("tiny v1 file must load through the copying reader: %v", err)
	}
}

// TestMappedModelVerify: Verify runs the factor-domain and float32
// agreement scan the O(1) open skips, catching section corruption the
// header cannot see.
func TestMappedModelVerify(t *testing.T) {
	model := trainedModel(t, true)
	good := v2Bytes(t, model, true)
	dir := t.TempDir()
	l := layoutV2(5, 20, 15, true, true)

	open := func(name string, data []byte) *MappedModel {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		mm, err := OpenMappedModel(path)
		if err != nil {
			t.Fatalf("%s: header-only open rejected: %v", name, err)
		}
		t.Cleanup(func() { mm.Close() })
		return mm
	}
	if err := open("good", good).Verify(); err != nil {
		t.Errorf("pristine model failed Verify: %v", err)
	}

	negative := append([]byte(nil), good...)
	negative[int(l.off[0])+7] = 0xC0 // flip the first fu factor negative
	if err := open("negative", negative).Verify(); err == nil {
		t.Error("Verify accepted a negative factor")
	}

	disagree := append([]byte(nil), good...)
	disagree[int(l.off[4])] ^= 0x01 // perturb the first fu32 value
	if err := open("disagree", disagree).Verify(); err == nil {
		t.Error("Verify accepted a float32 section disagreeing with float64")
	}
}
