//go:build unix

package core

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only. The mapping outlives f's file
// descriptor, and — because the mapping pins the inode — also survives
// the file being renamed over or unlinked, which is exactly the atomic
// model-swap discipline of SaveModelFile.
func mmapFile(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmapFile(data []byte) error {
	return syscall.Munmap(data)
}
