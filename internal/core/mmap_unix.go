//go:build unix

package core

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only. The mapping outlives f's file
// descriptor, and — because the mapping pins the inode — also survives
// the file being renamed over or unlinked, which is exactly the atomic
// model-swap discipline of SaveModelFile.
func mmapFile(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmapFile(data []byte) error {
	return syscall.Munmap(data)
}

// mmapFileAt maps length bytes of f starting at the page-aligned byte
// offset off — the partial-map primitive of the sharded serving tier,
// which maps only a shard's item-range slice of each factor section.
func mmapFileAt(f *os.File, off int64, length int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), off, length, syscall.PROT_READ, syscall.MAP_SHARED)
}
