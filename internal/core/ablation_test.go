package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/linalg"
	"repro/internal/parallel"
	"repro/internal/rng"
)

// naiveGradient computes eq. (6) without the sum trick, enumerating the
// unknowns explicitly at O(n_u·K) per item. It exists only as the ablation
// reference for the paper's complexity claim.
func naiveGradient(t *trainer, grad, f []float64, item int) {
	k := t.cfg.K
	for c := 0; c < k; c++ {
		grad[c] = 2 * t.cfg.Lambda * f[c]
	}
	posSet := make(map[int32]bool)
	for _, u := range t.rt.Row(item) {
		posSet[u] = true
	}
	for u := 0; u < t.m.users; u++ {
		g := t.m.fu[u*k : (u+1)*k]
		if posSet[int32(u)] {
			d := clampDot(linalg.Dot(f, g))
			e := math.Exp(-d)
			coef := e / (1 - e)
			for c := 0; c < k; c++ {
				grad[c] -= coef * g[c]
			}
		} else {
			for c := 0; c < k; c++ {
				grad[c] += g[c]
			}
		}
	}
}

// TestSumTrickMatchesNaiveGradient verifies that the O(deg·K) sum-trick
// gradient equals the O(n_u·K) naive enumeration, the correctness half of
// the paper's Section IV-D complexity argument.
func TestSumTrickMatchesNaiveGradient(t *testing.T) {
	f := func(seed uint16) bool {
		r := rng.New(uint64(seed) + 71)
		m := smallMatrix(uint64(seed)+71, 8+r.Intn(20), 6+r.Intn(15), 60)
		cfg := Config{K: 1 + r.Intn(5), Lambda: r.Float64() * 2, Seed: uint64(seed)}.withDefaults()
		tr := newTrainer(m, cfg)
		parallel.SumVectors(tr.sum, tr.m.fu, cfg.K, 1)

		item := r.Intn(m.Cols())
		fi := append([]float64(nil), tr.m.fi[item*cfg.K:(item+1)*cfg.K]...)
		for c := range fi {
			fi[c] += 0.1 // keep away from the clamp kink
		}
		fast := make([]float64, cfg.K)
		slow := make([]float64, cfg.K)
		tr.gradient(fast, fi, sideCtx{pos: tr.rt.Row(item), others: tr.m.fu, wScalar: 1})
		naiveGradient(tr, slow, fi, item)
		for c := range fast {
			if math.Abs(fast[c]-slow[c]) > 1e-9*(1+math.Abs(slow[c])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestSingleUpdateNeverIncreasesPartialObjective: the Armijo-guarded step
// is a descent step on every subproblem, for all weight/bias variants.
func TestSingleUpdateNeverIncreasesPartialObjective(t *testing.T) {
	f := func(seed uint16) bool {
		r := rng.New(uint64(seed) + 91)
		m := smallMatrix(uint64(seed)+91, 10+r.Intn(20), 8+r.Intn(15), 80)
		cfg := Config{
			K: 1 + r.Intn(6), Lambda: r.Float64() * 3,
			Relative: r.Bernoulli(0.5), Seed: uint64(seed),
		}.withDefaults()
		tr := newTrainer(m, cfg)
		parallel.SumVectors(tr.sum, tr.m.fu, cfg.K, 1)

		item := r.Intn(m.Cols())
		fi := tr.m.fi[item*cfg.K : (item+1)*cfg.K]
		side := sideCtx{pos: tr.rt.Row(item), others: tr.m.fu, wTable: tr.weights, wScalar: 1}
		before := tr.partialObjective(fi, side)
		tr.updateFactor(fi, side, &parallel.Scratch{})
		after := tr.partialObjective(fi, side)
		return after <= before+1e-9*math.Abs(before)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkAblationSumTrick quantifies the speedup of the precomputed-sum
// gradient over naive enumeration — the mechanism behind Fig 7's linear
// scaling. Compare ns/op of the two sub-benchmarks.
func BenchmarkAblationSumTrick(b *testing.B) {
	d := dataset.SyntheticSmall(5)
	cfg := Config{K: 10, Lambda: 2, Seed: 1}.withDefaults()
	tr := newTrainer(d.R, cfg)
	parallel.SumVectors(tr.sum, tr.m.fu, cfg.K, 1)
	grad := make([]float64, cfg.K)

	b.Run("sum-trick", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			item := i % d.Items()
			fi := tr.m.fi[item*cfg.K : (item+1)*cfg.K]
			tr.gradient(grad, fi, sideCtx{pos: tr.rt.Row(item), others: tr.m.fu, wScalar: 1})
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			item := i % d.Items()
			fi := tr.m.fi[item*cfg.K : (item+1)*cfg.K]
			naiveGradient(tr, grad, fi, item)
		}
	})
}
