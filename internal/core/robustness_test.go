package core

import (
	"math"
	"testing"

	"repro/internal/sparse"
)

// Degenerate matrix shapes the trainer must survive without NaNs, panics,
// or objective increases.

func checkModelFinite(t *testing.T, res *Result) {
	t.Helper()
	for _, v := range res.Model.fu {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			t.Fatalf("invalid user factor %v", v)
		}
	}
	for _, v := range res.Model.fi {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			t.Fatalf("invalid item factor %v", v)
		}
	}
	for n := 1; n < len(res.Objective); n++ {
		if math.IsNaN(res.Objective[n]) {
			t.Fatalf("NaN objective at iteration %d", n)
		}
		if res.Objective[n] > res.Objective[n-1]+1e-9*math.Abs(res.Objective[n-1]) {
			t.Fatalf("objective increased at iteration %d", n)
		}
	}
}

func TestTrainEmptyMatrix(t *testing.T) {
	m := sparse.NewBuilder(10, 10).Build()
	res, err := Train(m, Config{K: 3, Lambda: 1, MaxIter: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkModelFinite(t, res)
	// With no positives the likelihood pressure is all downward: factors
	// must collapse toward zero, predictions toward zero probability.
	if p := res.Model.Predict(0, 0); p > 0.05 {
		t.Fatalf("empty matrix prediction %v, want ~0", p)
	}
}

func TestTrainFullMatrix(t *testing.T) {
	// Every pair positive: the model should push probabilities high and
	// stay numerically sane despite no negative pressure except λ.
	d := make([][]bool, 8)
	for i := range d {
		d[i] = make([]bool, 6)
		for j := range d[i] {
			d[i][j] = true
		}
	}
	m := sparse.FromDense(d)
	res, err := Train(m, Config{K: 2, Lambda: 0.1, MaxIter: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkModelFinite(t, res)
	var mean float64
	for u := 0; u < 8; u++ {
		for i := 0; i < 6; i++ {
			mean += res.Model.Predict(u, i)
		}
	}
	mean /= 48
	if mean < 0.7 {
		t.Fatalf("full matrix mean probability %v, want high", mean)
	}
}

func TestTrainSingleRowAndColumn(t *testing.T) {
	// 1 user x N items.
	b := sparse.NewBuilder(1, 10)
	for i := 0; i < 5; i++ {
		b.Add(0, i*2)
	}
	res, err := Train(b.Build(), Config{K: 2, Lambda: 0.5, MaxIter: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkModelFinite(t, res)

	// N users x 1 item.
	b2 := sparse.NewBuilder(10, 1)
	for u := 0; u < 5; u++ {
		b2.Add(u*2, 0)
	}
	res2, err := Train(b2.Build(), Config{K: 2, Lambda: 0.5, MaxIter: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkModelFinite(t, res2)
}

func TestTrainDiagonalMatrix(t *testing.T) {
	// Each user owns exactly one private item: no co-cluster structure at
	// all. The model must not hallucinate strong cross recommendations.
	n := 12
	b := sparse.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		b.Add(i, i)
	}
	res, err := Train(b.Build(), Config{K: 4, Lambda: 1, MaxIter: 60, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkModelFinite(t, res)
	for u := 0; u < n; u++ {
		for i := 0; i < n; i++ {
			if u != i && res.Model.Predict(u, i) > 0.5 {
				t.Fatalf("diagonal data: strong spurious P(%d,%d)=%v", u, i, res.Model.Predict(u, i))
			}
		}
	}
}

func TestTrainKLargerThanData(t *testing.T) {
	// K far above the information content must still behave (regularization
	// kills unused dimensions).
	m := sparse.FromDense([][]bool{
		{true, true, false},
		{true, true, false},
		{false, false, true},
	})
	res, err := Train(m, Config{K: 20, Lambda: 0.5, MaxIter: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkModelFinite(t, res)
	if p := res.Model.Predict(1, 0); p < 0.3 {
		t.Fatalf("overparameterized model underfits obvious positive: %v", p)
	}
}

func TestTrainExtremeLambda(t *testing.T) {
	m := smallMatrix(70, 20, 15, 80)
	// Enormous λ: factors shrink to ~0, probabilities to ~0 — but no NaNs.
	res, err := Train(m, Config{K: 3, Lambda: 1e6, MaxIter: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkModelFinite(t, res)
	if p := res.Model.Predict(0, 0); p > 0.2 {
		t.Fatalf("huge lambda still predicts %v", p)
	}
}

func TestTrainOneByOne(t *testing.T) {
	b := sparse.NewBuilder(1, 1)
	b.Add(0, 0)
	res, err := Train(b.Build(), Config{K: 1, Lambda: 0.01, MaxIter: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkModelFinite(t, res)
	if p := res.Model.Predict(0, 0); p < 0.5 {
		t.Fatalf("1x1 positive fit probability %v", p)
	}
}
