package core

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/parallel"
)

// TestFusedMatchesReferenceTraces is the kernel-equivalence contract of the
// fused training path: across K, Relative, Bias and Workers, the fused
// one-pass/incremental-line-search kernels must produce an objective trace
// matching the unfused reference kernels within 1e-9 relative at every
// outer iteration. (The paths reorder floating-point sums, so bitwise
// equality is not expected — trajectory agreement is.)
func TestFusedMatchesReferenceTraces(t *testing.T) {
	for _, k := range []int{1, 4, 16} {
		for _, relative := range []bool{false, true} {
			for _, bias := range []bool{false, true} {
				for _, workers := range []int{1, 4} {
					name := fmt.Sprintf("K=%d/relative=%v/bias=%v/workers=%d", k, relative, bias, workers)
					t.Run(name, func(t *testing.T) {
						m := smallMatrix(uint64(100+k), 50, 40, 320)
						cfg := Config{
							K: k, Lambda: 1.5, MaxIter: 12, Tol: 1e-12, Seed: 7,
							Relative: relative, Bias: bias, Workers: workers,
						}
						fused, err := Train(m, cfg)
						if err != nil {
							t.Fatal(err)
						}
						cfg.Reference = true
						ref, err := Train(m, cfg)
						if err != nil {
							t.Fatal(err)
						}
						if len(fused.Objective) != len(ref.Objective) {
							t.Fatalf("trace lengths differ: fused %d, reference %d",
								len(fused.Objective), len(ref.Objective))
						}
						for i := range fused.Objective {
							f, r := fused.Objective[i], ref.Objective[i]
							if math.Abs(f-r) > 1e-9*(1+math.Abs(r)) {
								t.Fatalf("iter %d: fused objective %v, reference %v (rel diff %g)",
									i, f, r, math.Abs(f-r)/(1+math.Abs(r)))
							}
						}
					})
				}
			}
		}
	}
}

// TestFusedMatchesReferenceGradSteps extends the equivalence contract to
// multi-step subproblem solves, where the fused kernels re-enter the fused
// pass with the factor updated by the previous step.
func TestFusedMatchesReferenceGradSteps(t *testing.T) {
	m := smallMatrix(42, 40, 30, 250)
	cfg := Config{K: 5, Lambda: 1, MaxIter: 8, Tol: 1e-12, Seed: 3, GradSteps: 3}
	fused, err := Train(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Reference = true
	ref, err := Train(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fused.Objective {
		f, r := fused.Objective[i], ref.Objective[i]
		if math.Abs(f-r) > 1e-9*(1+math.Abs(r)) {
			t.Fatalf("iter %d: fused %v, reference %v", i, f, r)
		}
	}
}

// TestFusedSerialParallelBitIdentical: on the fused path (and its bias and
// relative variants) serial and parallel schedules must remain bit-identical
// — factor updates are row-local and every cross-row reduction, including
// the parallelized convergence objective, uses a fixed-block deterministic
// tree.
func TestFusedSerialParallelBitIdentical(t *testing.T) {
	for _, relative := range []bool{false, true} {
		for _, bias := range []bool{false, true} {
			t.Run(fmt.Sprintf("relative=%v/bias=%v", relative, bias), func(t *testing.T) {
				m := smallMatrix(17, 300, 200, 2500)
				cfg := Config{
					K: 6, Lambda: 1, MaxIter: 6, Tol: 1e-12, Seed: 13,
					Relative: relative, Bias: bias, Workers: 1,
				}
				serial, err := Train(m, cfg)
				if err != nil {
					t.Fatal(err)
				}
				cfg.Workers = 4
				par, err := Train(m, cfg)
				if err != nil {
					t.Fatal(err)
				}
				for i := range serial.Model.fu {
					if serial.Model.fu[i] != par.Model.fu[i] {
						t.Fatalf("user factor %d differs between serial and parallel", i)
					}
				}
				for i := range serial.Model.fi {
					if serial.Model.fi[i] != par.Model.fi[i] {
						t.Fatalf("item factor %d differs between serial and parallel", i)
					}
				}
				if bias {
					for i := range serial.Model.bu {
						if serial.Model.bu[i] != par.Model.bu[i] {
							t.Fatalf("user bias %d differs between serial and parallel", i)
						}
					}
					for i := range serial.Model.bi {
						if serial.Model.bi[i] != par.Model.bi[i] {
							t.Fatalf("item bias %d differs between serial and parallel", i)
						}
					}
				}
				for i := range serial.Objective {
					if serial.Objective[i] != par.Objective[i] {
						t.Fatalf("objective trace %d differs between serial and parallel", i)
					}
				}
			})
		}
	}
}

// TestObjectiveWeightedMatchesObjective: the cached-weight entry point must
// agree exactly with the allocating exported wrapper, for any worker count.
func TestObjectiveWeightedMatchesObjective(t *testing.T) {
	m := smallMatrix(23, 120, 90, 900)
	for _, relative := range []bool{false, true} {
		res, err := Train(m, Config{K: 4, Lambda: 1, MaxIter: 4, Seed: 5, Relative: relative})
		if err != nil {
			t.Fatal(err)
		}
		want := res.Model.Objective(m, 1, relative)
		weights := userWeights(m, relative)
		for _, workers := range []int{1, 3, 8} {
			if got := res.Model.ObjectiveWeighted(m, 1, weights, workers); got != want {
				t.Fatalf("relative=%v workers=%d: ObjectiveWeighted %v != Objective %v",
					relative, workers, got, want)
			}
		}
	}
}

// BenchmarkTrainSweep isolates the factor-sweep cost of one outer iteration
// (no convergence check), the quantity behind the Fig 7 linearity claim.
// The reference sub-runs measure the pre-fusion kernels for attribution.
func BenchmarkTrainSweep(b *testing.B) {
	d := dataset.SyntheticSmall(1)
	for _, bc := range []struct {
		name      string
		workers   int
		reference bool
	}{
		{"fused/serial", 1, false},
		{"fused/parallel", parallel.DefaultWorkers(), false},
		{"reference/serial", 1, true},
		{"reference/parallel", parallel.DefaultWorkers(), true},
	} {
		b.Run(bc.name, func(b *testing.B) {
			cfg := Config{K: 10, Lambda: 5, Seed: 1, Workers: bc.workers, Reference: bc.reference}.withDefaults()
			tr := newTrainer(d.R, cfg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.sweepItems()
				tr.sweepUsers()
			}
		})
	}
}

// BenchmarkTrainObjective isolates the per-iteration convergence check —
// the ObjectiveWeighted pass with the trainer's cached weight table — so
// BENCH trajectories can attribute wins to sweep versus check.
func BenchmarkTrainObjective(b *testing.B) {
	d := dataset.SyntheticSmall(1)
	for _, workers := range []int{1, parallel.DefaultWorkers()} {
		name := "serial"
		if workers != 1 {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			cfg := Config{K: 10, Lambda: 5, Seed: 1, Workers: workers, Relative: true}.withDefaults()
			tr := newTrainer(d.R, cfg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.objective()
			}
		})
	}
}
