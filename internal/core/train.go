package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/linalg"
	"repro/internal/parallel"
	"repro/internal/rng"
	"repro/internal/sparse"
)

// Config holds OCuLaR hyper-parameters and solver settings. The two model
// hyper-parameters of the paper are K and Lambda; everything else is solver
// machinery with defaults matching Section IV-D.
type Config struct {
	// K is the number of co-clusters. Required, K >= 1.
	K int
	// Lambda is the ℓ2 regularization weight λ >= 0 of eq. (4).
	Lambda float64
	// Relative selects the R-OCuLaR objective of Section V, which weights
	// each user's positive log-likelihood terms by
	// w_u = |{i: r_ui=0}| / |{i: r_ui=1}|.
	Relative bool
	// Bias enables the extended model of Section IV-A:
	// P[r_ui = 1] = 1 − exp(−⟨f_u,f_i⟩ − b_u − b_i), with non-negative
	// learned user and item biases (a learned overall bias b is redundant —
	// the per-user biases absorb it). The paper found biases do not improve
	// accuracy on its datasets and disabled them; the option exists to
	// reproduce that ablation.
	Bias bool
	// GradSteps is the number of projected-gradient steps per factor per
	// sweep. The paper argues a single step ("performing only one gradient
	// descent step significantly speeds up the algorithm"); larger values
	// approximate exact subproblem solves for the ablation benchmarks.
	// Default 1.
	GradSteps int

	// MaxIter bounds the number of outer iterations (one item sweep plus
	// one user sweep each). Default 150.
	MaxIter int
	// Tol declares convergence when the objective decreases by less than
	// Tol·|Q| between outer iterations ("convergence is declared if Q stops
	// decreasing"). Default 1e-4.
	Tol float64
	// Sigma and Beta are the Armijo backtracking constants σ, β ∈ (0,1).
	// Defaults 0.1 and 0.5.
	Sigma, Beta float64
	// MaxBacktrack bounds the halvings per line search. Default 30.
	MaxBacktrack int
	// InitScale is the upper bound of the uniform factor initialization.
	// Default sqrt(1/K), which makes initial affinities O(1).
	InitScale float64
	// Seed seeds factor initialization.
	Seed uint64
	// Workers sets the number of parallel workers for the factor-update
	// kernels; 0 or 1 runs the serial reference path. Factor updates within
	// a block are independent and every cross-row reduction uses a
	// fixed-block deterministic tree, so parallel and serial paths produce
	// bit-identical models.
	Workers int
	// Reference selects the unfused reference kernels: separate objective
	// and gradient passes and a full O(|pos|·K) re-evaluation per
	// backtracking candidate. The default fused kernels (kernels.go) compute
	// the same quantities in one pass with an incremental line search; they
	// reorder floating-point sums, so the two paths agree to rounding
	// (objective traces within 1e-9 relative) rather than bitwise. The
	// reference path is retained for equivalence testing and benchmarking
	// the fusion win.
	Reference bool
	// OnIteration, when non-nil, is called after every outer iteration with
	// the iteration index (from 0) and the objective value — progress
	// reporting for long trainings and the hook behind cmd/ocular -v.
	OnIteration func(iter int, objective float64)
	// WarmStart, when non-nil, initializes the factors (and biases) from an
	// existing model instead of random values — the deployment path for
	// periodic retraining as new purchases arrive. The model's K and shape
	// must match the configuration and matrix; Train errors otherwise.
	// InitScale and Seed are ignored for the copied parameters.
	WarmStart *Model
}

func (c Config) withDefaults() Config {
	if c.MaxIter == 0 {
		c.MaxIter = 150
	}
	if c.Tol == 0 {
		c.Tol = 1e-4
	}
	if c.Sigma == 0 {
		c.Sigma = 0.1
	}
	if c.Beta == 0 {
		c.Beta = 0.5
	}
	if c.MaxBacktrack == 0 {
		c.MaxBacktrack = 30
	}
	if c.GradSteps == 0 {
		c.GradSteps = 1
	}
	if c.InitScale == 0 && c.K > 0 {
		c.InitScale = math.Sqrt(1 / float64(c.K))
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	return c
}

func (c Config) validate() error {
	switch {
	case c.K < 1:
		return fmt.Errorf("core: K must be >= 1, got %d", c.K)
	case c.Lambda < 0:
		return fmt.Errorf("core: Lambda must be >= 0, got %v", c.Lambda)
	case c.Sigma <= 0 || c.Sigma >= 1:
		return fmt.Errorf("core: Sigma must be in (0,1), got %v", c.Sigma)
	case c.Beta <= 0 || c.Beta >= 1:
		return fmt.Errorf("core: Beta must be in (0,1), got %v", c.Beta)
	case c.MaxIter < 1:
		return fmt.Errorf("core: MaxIter must be >= 1, got %d", c.MaxIter)
	case c.InitScale <= 0:
		return fmt.Errorf("core: InitScale must be > 0, got %v", c.InitScale)
	case c.GradSteps < 1:
		return fmt.Errorf("core: GradSteps must be >= 1, got %d", c.GradSteps)
	}
	return nil
}

// Result bundles a trained model with its convergence trace, which the
// scalability (Fig 7) and engine-comparison (Fig 8) experiments consume.
type Result struct {
	Model *Model
	// Objective holds Q after every outer iteration, starting with the
	// value at initialization; it is non-increasing by the line-search
	// descent guarantee.
	Objective []float64
	// IterTime holds the wall-clock duration of each outer iteration,
	// excluding any separate objective evaluation used for the convergence
	// check. (On the default fused path there is none — the objective is
	// assembled from the sweep's own line-search partials at O(users) cost,
	// which is included.)
	IterTime []time.Duration
	// Converged reports whether the tolerance was reached before MaxIter.
	Converged bool
}

// Iterations returns the number of outer iterations performed.
func (r *Result) Iterations() int { return len(r.IterTime) }

// Train fits an OCuLaR (or R-OCuLaR) model to the positive examples in r.
func Train(r *sparse.Matrix, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if w := cfg.WarmStart; w != nil {
		switch {
		case w.k != cfg.K:
			return nil, fmt.Errorf("core: warm start K=%d does not match config K=%d", w.k, cfg.K)
		case w.users != r.Rows() || w.items != r.Cols():
			return nil, fmt.Errorf("core: warm start shape %dx%d does not match matrix %dx%d",
				w.users, w.items, r.Rows(), r.Cols())
		case cfg.Bias && !w.HasBias():
			return nil, fmt.Errorf("core: warm start lacks bias terms required by config")
		}
	}
	return newTrainer(r, cfg).run(), nil
}

// trainer carries the state of one Train call.
type trainer struct {
	cfg     Config
	r       *sparse.Matrix // users x items
	rt      *sparse.Matrix // items x users (transpose view)
	m       *Model
	weights []float64 // R-OCuLaR w_u indexed by user, nil for plain OCuLaR
	sum     []float64 // Σ of the fixed block's factors (sum trick)
	// qRow collects the per-user partial objectives emitted by the user
	// sweep's line search; non-nil only when the fused path assembles the
	// convergence objective from them (see traceObjective).
	qRow []float64
}

func newTrainer(r *sparse.Matrix, cfg Config) *trainer {
	m := &Model{
		k:     cfg.K,
		users: r.Rows(),
		items: r.Cols(),
		fu:    make([]float64, r.Rows()*cfg.K),
		fi:    make([]float64, r.Cols()*cfg.K),
	}
	if w := cfg.WarmStart; w != nil {
		copy(m.fu, w.fu)
		copy(m.fi, w.fi)
		// Revive exactly-zero coordinates with a small jitter: under the
		// non-negativity projection a coordinate at 0 on both sides of a
		// pair has zero gradient pull and would stay dead forever, so a
		// warm start could never grow a co-cluster the old model had
		// pruned. The jitter is two orders below the cold-start scale, so
		// convergence speed is preserved.
		rnd := rng.New(cfg.Seed ^ 0xd1f7)
		jitter := 0.01 * cfg.InitScale
		for _, arr := range [][]float64{m.fu, m.fi} {
			for i, v := range arr {
				if v == 0 {
					arr[i] = rnd.Float64() * jitter
				}
			}
		}
	} else {
		rnd := rng.New(cfg.Seed)
		for i := range m.fu {
			m.fu[i] = rnd.Float64() * cfg.InitScale
		}
		for i := range m.fi {
			m.fi[i] = rnd.Float64() * cfg.InitScale
		}
	}
	if cfg.Bias {
		m.bu = make([]float64, r.Rows())
		m.bi = make([]float64, r.Cols())
		if w := cfg.WarmStart; w != nil && w.HasBias() {
			copy(m.bu, w.bu)
			copy(m.bi, w.bi)
		}
		// Without a warm start, biases begin at zero: the pure co-cluster
		// model, with biases only growing where factors cannot explain the
		// data.
	}
	return &trainer{
		cfg:     cfg,
		r:       r,
		rt:      r.Transpose(),
		m:       m,
		weights: userWeights(r, cfg.Relative),
		sum:     make([]float64, cfg.K),
	}
}

func (t *trainer) run() *Result {
	res := &Result{Model: t.m}
	q := t.objective()
	res.Objective = append(res.Objective, q)
	// The fused kernels hand back each user subproblem's line-search
	// objective, from which the full Q is assembled for free. The bias
	// extension moves the biases after those partials are computed, so
	// bias runs (like the reference path) pay the explicit objective pass.
	fusedTrace := !t.cfg.Reference && !t.cfg.Bias
	if fusedTrace {
		t.qRow = make([]float64, t.m.users)
	}
	for iter := 0; iter < t.cfg.MaxIter; iter++ {
		start := time.Now()
		t.sweepItems()
		t.sweepUsers()
		var qNew float64
		if fusedTrace {
			qNew = t.traceObjective()
			res.IterTime = append(res.IterTime, time.Since(start))
		} else {
			res.IterTime = append(res.IterTime, time.Since(start))
			qNew = t.objective()
		}
		res.Objective = append(res.Objective, qNew)
		if t.cfg.OnIteration != nil {
			t.cfg.OnIteration(iter, qNew)
		}
		converged := q-qNew <= t.cfg.Tol*math.Abs(q)
		q = qNew
		if converged {
			res.Converged = true
			break
		}
	}
	return res
}

// traceObjective assembles the eq. (4) objective of the just-finished outer
// iteration from the user sweep's per-row line-search partials:
// Q = Σ_u q_u + λ‖f_i‖² (the identity documented in kernels.go). Cost is
// O(users + items·K) — no pass over the positives and no exponentials —
// versus the O(nnz·K) ObjectiveWeighted evaluation it replaces. The block
// reduction is the same fixed-width deterministic tree, so the trace stays
// bit-identical across worker counts.
func (t *trainer) traceObjective() float64 {
	q := parallel.ReduceSum(t.m.users, t.cfg.Workers, func(lo, hi int) float64 {
		var s float64
		for u := lo; u < hi; u++ {
			s += t.qRow[u]
		}
		return s
	})
	return q + t.cfg.Lambda*linalg.Norm2Sq(t.m.fi)
}

// objective evaluates the convergence-check objective, threading the
// trainer's cached R-OCuLaR weight table and worker pool through so the
// per-iteration pass neither re-derives the weights nor runs serially.
func (t *trainer) objective() float64 {
	return t.m.ObjectiveWeighted(t.r, t.cfg.Lambda, t.weights, t.cfg.Workers)
}

// sweepItems updates every item factor by one projected gradient step,
// holding user factors fixed. Items are independent given Σ_u f_u, so the
// sweep parallelizes across items; this mirrors the structure of the
// paper's GPU kernels (Section VI, Fig 4), where the precomputed constant
// C = Σ_u f_u plays the same role.
//
// For item updates, the R-OCuLaR weight of a positive pair depends on which
// user it involves, so the per-user weight table is passed through.
func (t *trainer) sweepItems() {
	parallel.SumVectors(t.sum, t.m.fu, t.cfg.K, t.cfg.Workers)
	k := t.cfg.K
	parallel.For(t.m.items, t.cfg.Workers, func(i int, scratch *parallel.Scratch) {
		side := sideCtx{
			pos: t.rt.Row(i), others: t.m.fu,
			wTable: t.weights, wScalar: 1,
		}
		if t.cfg.Bias {
			side.selfBias, side.otherBias = t.m.bi[i], t.m.bu
		}
		t.updateFactor(t.m.fi[i*k:(i+1)*k], side, scratch)
		if t.cfg.Bias {
			// Then the 1-D bias step against the just-updated factor. The
			// count of unknowns in this column is n_u − deg(i).
			t.m.bi[i] = t.updateBias(t.m.bi[i], t.m.fi[i*k:(i+1)*k], side,
				float64(t.m.users-len(side.pos)), scratch)
		}
	})
}

// sweepUsers is the symmetric sweep over user factors. For a fixed user u,
// every positive pair shares the same weight w_u, passed as the scalar.
func (t *trainer) sweepUsers() {
	parallel.SumVectors(t.sum, t.m.fi, t.cfg.K, t.cfg.Workers)
	k := t.cfg.K
	parallel.For(t.m.users, t.cfg.Workers, func(u int, scratch *parallel.Scratch) {
		w := 1.0
		if t.weights != nil {
			w = t.weights[u]
		}
		side := sideCtx{pos: t.r.Row(u), others: t.m.fi, wScalar: w}
		if t.cfg.Bias {
			side.selfBias, side.otherBias = t.m.bu[u], t.m.bi
		}
		qu := t.updateFactor(t.m.fu[u*k:(u+1)*k], side, scratch)
		if t.qRow != nil {
			t.qRow[u] = qu
		}
		if t.cfg.Bias {
			t.m.bu[u] = t.updateBias(t.m.bu[u], t.m.fu[u*k:(u+1)*k], side,
				float64(t.m.items-len(side.pos)), scratch)
		}
	})
}

// sideCtx carries the fixed-side context of one factor update: the indices
// of the positive counterparts, the fixed block's factor array, the
// R-OCuLaR weights (a per-counterpart table for item sweeps, a scalar for
// user sweeps), and the bias terms when the Section IV-A extension is on.
type sideCtx struct {
	pos       []int32
	others    []float64
	wTable    []float64 // indexed by counterpart id; nil -> use wScalar
	wScalar   float64
	selfBias  float64   // this row's own bias (constant during factor step)
	otherBias []float64 // counterpart biases, nil when biases are off
}

func (s *sideCtx) weight(idx int32) float64 {
	if s.wTable != nil {
		return s.wTable[idx]
	}
	return s.wScalar
}

func (s *sideCtx) bias(idx int32) float64 {
	if s.otherBias == nil {
		return 0
	}
	return s.selfBias + s.otherBias[idx]
}

// updateFactor performs the projected-gradient-with-backtracking update of
// Section IV-D on factor f (length K); GradSteps > 1 repeats the step to
// approximate an exact subproblem solve. It dispatches to the fused
// one-pass kernels (kernels.go) unless Config.Reference asks for the
// unfused reference implementation below. Both return the partial
// objective (eq. 5) at the factor left in f.
func (t *trainer) updateFactor(f []float64, side sideCtx, scratch *parallel.Scratch) float64 {
	if t.cfg.Reference {
		return t.updateFactorRef(f, side, scratch)
	}
	return t.updateFactorFused(f, side, scratch)
}

// updateFactorRef is the reference implementation: partialObjective and
// gradient each walk the positives list, and every backtracking candidate
// is re-evaluated in full O(|pos|·K).
func (t *trainer) updateFactorRef(f []float64, side sideCtx, scratch *parallel.Scratch) float64 {
	k := t.cfg.K
	buf := scratch.Float64sRaw(2 * k) // gradient() and the candidate loop fully overwrite it
	grad := buf[0:k]
	cand := buf[k : 2*k]

	var qFinal float64
	for step := 0; step < t.cfg.GradSteps; step++ {
		qOld := t.partialObjective(f, side)
		t.gradient(grad, f, side)
		qFinal = qOld

		alpha := 1.0
		accepted := false
		for bt := 0; bt < t.cfg.MaxBacktrack; bt++ {
			for c := 0; c < k; c++ {
				v := f[c] - alpha*grad[c]
				if v < 0 {
					v = 0
				}
				cand[c] = v
			}
			qNew := t.partialObjective(cand, side)
			// Armijo along the projection arc: Q(f⁺)−Q(f) ≤ σ⟨∇Q(f), f⁺−f⟩.
			dir := 0.0
			for c := 0; c < k; c++ {
				dir += grad[c] * (cand[c] - f[c])
			}
			if qNew-qOld <= t.cfg.Sigma*dir {
				copy(f, cand)
				qFinal = qNew
				accepted = true
				break
			}
			alpha *= t.cfg.Beta
		}
		if !accepted {
			// No step satisfied the Armijo condition within the budget;
			// keep the current factor (a zero step preserves descent) and
			// stop iterating this subproblem.
			break
		}
	}
	return qFinal
}

// partialObjective evaluates the terms of Q that depend on factor f
// (eq. 5): −Σ_+ w·log(1−e^{−z}) + ⟨f, Σ_0 g⟩ + λ‖f‖², with z the affinity
// including any bias terms, and Σ_0 g = sum − Σ_+ g obtained from the
// precomputed block sum (sum trick). Bias contributions to the Σ_0 part
// are constant during a factor step and omitted. Reference kernel; the hot
// path uses fusedObjGrad, which computes this and the gradient in one pass.
func (t *trainer) partialObjective(f []float64, side sideCtx) float64 {
	k := t.cfg.K
	q := linalg.Dot(f, t.sum) + t.cfg.Lambda*linalg.Norm2Sq(f)
	for _, idx := range side.pos {
		g := side.others[int(idx)*k : (int(idx)+1)*k]
		d := linalg.Dot(f, g)
		q -= d // move this positive pair out of the ⟨f, Σ_all⟩ term
		z := d + side.bias(idx)
		q -= side.weight(idx) * math.Log(1-math.Exp(-clampDot(z)))
	}
	return q
}

// gradient computes ∇Q(f) per eq. (6):
// −Σ_+ w·g·e^{−z}/(1−e^{−z}) + Σ_0 g + 2λf, using the sum trick.
// Reference kernel; see fusedObjGrad for the fused hot path.
func (t *trainer) gradient(grad, f []float64, side sideCtx) {
	k := t.cfg.K
	for c := 0; c < k; c++ {
		grad[c] = t.sum[c] + 2*t.cfg.Lambda*f[c]
	}
	for _, idx := range side.pos {
		g := side.others[int(idx)*k : (int(idx)+1)*k]
		z := clampDot(linalg.Dot(f, g) + side.bias(idx))
		e := math.Exp(-z)
		// Remove g from the Σ_0 part and add the log-term gradient:
		// combined coefficient −(1 + w·e^{−z}/(1−e^{−z})).
		coef := 1 + side.weight(idx)*e/(1-e)
		for c := 0; c < k; c++ {
			grad[c] -= coef * g[c]
		}
	}
}

// updateBias performs the 1-D projected-gradient step on a row's bias b
// with the row's factor f fixed. nZeros is the number of unknown pairs in
// the row, whose Σ_0 term contributes b·nZeros to the objective. Returns
// the updated bias.
//
// The inner products d_j = ⟨f, g_j⟩ do not depend on b, so they are hoisted
// into a scratch table once; every objective and gradient evaluation of the
// 1-D line search is then O(|pos|) exp/log work instead of O(|pos|·K).
func (t *trainer) updateBias(b float64, f []float64, side sideCtx, nZeros float64, scratch *parallel.Scratch) float64 {
	k := t.cfg.K
	dots := scratch.Float64sRaw(len(side.pos)) // fully written below
	for j, idx := range side.pos {
		dots[j] = linalg.Dot(f, side.others[int(idx)*k:(int(idx)+1)*k])
	}
	// Q(b) = −Σ_+ w log(1−e^{−(d_j + b + b_other)}) + b·nZeros + λb².
	obj := func(b float64) float64 {
		q := b*nZeros + t.cfg.Lambda*b*b
		for j, idx := range side.pos {
			z := dots[j] + b + side.otherBias[idx]
			q -= side.weight(idx) * math.Log(1-math.Exp(-clampDot(z)))
		}
		return q
	}
	grad := nZeros + 2*t.cfg.Lambda*b
	for j, idx := range side.pos {
		z := clampDot(dots[j] + b + side.otherBias[idx])
		e := math.Exp(-z)
		grad -= side.weight(idx) * e / (1 - e)
	}
	qOld := obj(b)
	alpha := 1.0
	for bt := 0; bt < t.cfg.MaxBacktrack; bt++ {
		cand := b - alpha*grad
		if cand < 0 {
			cand = 0
		}
		if obj(cand)-qOld <= t.cfg.Sigma*grad*(cand-b) {
			return cand
		}
		alpha *= t.cfg.Beta
	}
	return b
}
