//go:build !unix

package core

import (
	"io"
	"os"
)

// mmapFile on platforms without a usable mmap reads the whole file into
// memory. OpenMappedModel then behaves like a copying loader with
// header-only validation — correct everywhere, O(1) reload only on unix.
func mmapFile(f *os.File, size int) ([]byte, error) {
	data := make([]byte, size)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, err
	}
	return data, nil
}

func munmapFile(data []byte) error {
	return nil
}

// mmapFileAt on platforms without a usable mmap reads the window into
// memory, mirroring mmapFile's fallback semantics.
func mmapFileAt(f *os.File, off int64, length int) ([]byte, error) {
	data := make([]byte, length)
	if _, err := f.ReadAt(data, off); err != nil {
		return nil, err
	}
	return data, nil
}
