package core

import (
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"unsafe"

	"repro/internal/linalg"
)

// Scorer is the read-only scoring surface shared by *Model and
// *MappedModel: everything the serving hot path needs. Higher-level
// operations (fold-in, explanations, training warm starts) take a *Model;
// MappedModel.Model returns a zero-copy view for those.
type Scorer interface {
	// ScoreUser writes P[r_ui = 1] for every item of user u into dst
	// (length NumItems).
	ScoreUser(u int, dst []float64)
	// ScoreWithFactor scores every item against an explicit user factor
	// and bias, the fold-in path.
	ScoreWithFactor(fu []float64, bias float64, dst []float64)
	NumUsers() int
	NumItems() int
}

var (
	_ Scorer = (*Model)(nil)
	_ Scorer = (*MappedModel)(nil)
)

// ErrLegacyFormat reports that a model file holds the v1 stream format,
// which has no section layout to map. Callers that can afford a full copy
// fall back to LoadModelFile.
var ErrLegacyFormat = errors.New("legacy v1 model format (use ReadModel)")

// MappedModel is a model served directly out of an mmapped v2 file. Open
// cost is O(1) in the model size: the 128-byte header is parsed and
// validated, the factor sections become typed views into the mapping, and
// no factor byte is touched until it is scored (the kernel pages it in on
// demand and is free to drop clean pages under memory pressure).
//
// When the file carries a float32 section, ScoreUser streams it instead
// of the float64 factors — half the memory traffic per scored user, with
// the reported probability off by at most linalg.ScoreErrorBoundF32(K) =
// (⌈K/4⌉+3)·2⁻²⁴/e, e.g. 3.5e−7 at K=50. ScoreWithFactor and Model()
// always use the exact float64 sections, so fold-in and explanations are
// bit-identical to a heap-loaded model.
//
// The mapping is released when the MappedModel (and the view returned by
// Model, which shares its storage) becomes unreachable, or eagerly via
// Close. All views — Model, UserFactor of the view, score outputs'
// inputs — are invalid after Close.
//
// A MappedModel is immutable and safe for concurrent use. The single-
// writer discipline of SaveModelFile guarantees the mapped inode is never
// rewritten in place: retraining renames a fresh file over the path, and
// the mapping keeps the old inode alive until released.
type MappedModel struct {
	data []byte
	view *Model // float64 factor views into data; shares lifetime with mm

	// float32 sections; nil when the file has none.
	fu32, fi32, bu32, bi32 []float32

	cleanup runtime.Cleanup
	path    string
}

// OpenMappedModel maps the v2 model file at path. It validates only the
// header (O(1), no factor scan — the offset-table cross-check in
// parseV2Header proves every section is in bounds). A v1 file yields an
// error wrapping ErrLegacyFormat.
func OpenMappedModel(path string) (*MappedModel, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: mapping model: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("core: mapping model: %w", err)
	}
	size := st.Size()
	if size < v2HeaderSize {
		// Could still be a tiny legacy v1 file; classify by magic so
		// callers get the fallback sentinel rather than a size error.
		magic := make([]byte, 8)
		if _, err := io.ReadFull(f, magic); err == nil && string(magic) == magicV1 {
			return nil, fmt.Errorf("core: mapping model %s: %w", path, ErrLegacyFormat)
		}
		return nil, fmt.Errorf("core: mapping model %s: file of %d bytes is too small for a v2 header", path, size)
	}
	data, err := mmapFile(f, int(size))
	if err != nil {
		return nil, fmt.Errorf("core: mapping model %s: %w", path, err)
	}
	mm, err := newMappedModel(data, path)
	if err != nil {
		munmapFile(data)
		return nil, err
	}
	return mm, nil
}

func newMappedModel(data []byte, path string) (*MappedModel, error) {
	switch string(data[:8]) {
	case magicV1:
		return nil, fmt.Errorf("core: mapping model %s: %w", path, ErrLegacyFormat)
	case magicV2:
	default:
		return nil, fmt.Errorf("core: mapping model %s: bad magic %q", path, data[:8])
	}
	h, err := parseV2Header(data[8:v2HeaderSize])
	if err != nil {
		return nil, fmt.Errorf("core: mapping model %s: %w", path, err)
	}
	if uint64(len(data)) != h.layout.size {
		return nil, fmt.Errorf("core: mapping model %s: file is %d bytes, header says %d", path, len(data), h.layout.size)
	}
	if uintptr(unsafe.Pointer(&data[0]))%8 != 0 {
		// Cannot happen for a real mmap (page-aligned base) and the heap
		// fallback (8-aligned allocations); checked so the unsafe casts
		// below are provably sound.
		return nil, fmt.Errorf("core: mapping model %s: mapping base not 8-byte aligned", path)
	}
	view := &Model{
		k:     int(h.k),
		users: int(h.users),
		items: int(h.items),
		fu:    f64view(data, h.layout.off[0], h.users*h.k),
		fi:    f64view(data, h.layout.off[1], h.items*h.k),
	}
	mm := &MappedModel{data: data, view: view, path: path}
	if h.bias {
		view.bu = f64view(data, h.layout.off[2], h.users)
		view.bi = f64view(data, h.layout.off[3], h.items)
	}
	if h.f32 {
		mm.fu32 = f32view(data, h.layout.off[4], h.users*h.k)
		mm.fi32 = f32view(data, h.layout.off[5], h.items*h.k)
		if h.bias {
			mm.bu32 = f32view(data, h.layout.off[6], h.users)
			mm.bi32 = f32view(data, h.layout.off[7], h.items)
		}
	}
	// Attach the cleanup to the view: anything keeping either the
	// MappedModel or the Model view reachable keeps the mapping alive
	// (mm.view makes mm → view reachability hold), so the munmap can only
	// run once both are gone.
	mm.cleanup = runtime.AddCleanup(view, func(d []byte) { _ = munmapFile(d) }, data)
	return mm, nil
}

// f64view reinterprets n float64s of the mapping starting at off. The
// v2 layout aligns sections to v2Align, so &data[off] is 8-aligned
// whenever the base is.
func f64view(data []byte, off, n uint64) []float64 {
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&data[off])), n)
}

func f32view(data []byte, off, n uint64) []float32 {
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*float32)(unsafe.Pointer(&data[off])), n)
}

// Model returns the full-precision model view sharing the mapping's
// storage — zero copy. It supports everything a trained model does
// (fold-in, explanations, Objective, re-serialization). The view is
// invalidated by Close; keep the MappedModel reachable while the view is
// in use (holding either one suffices, see the type comment).
func (mm *MappedModel) Model() *Model { return mm.view }

// K returns the number of co-clusters.
func (mm *MappedModel) K() int { return mm.view.k }

// NumUsers returns the number of users the model was trained on.
func (mm *MappedModel) NumUsers() int { return mm.view.users }

// NumItems returns the number of items the model was trained on.
func (mm *MappedModel) NumItems() int { return mm.view.items }

// HasBias reports whether the model carries the Section IV-A bias terms.
func (mm *MappedModel) HasBias() bool { return mm.view.bu != nil }

// HasFloat32 reports whether the file carries the float32 factor copy,
// i.e. whether ScoreUser runs the half-bandwidth path.
func (mm *MappedModel) HasFloat32() bool { return mm.fu32 != nil }

// String describes the mapped model.
func (mm *MappedModel) String() string {
	suffix := ""
	if mm.fu32 != nil {
		suffix = "+f32"
	}
	return fmt.Sprintf("core.MappedModel(K=%d, %d users, %d items, mmap%s)",
		mm.view.k, mm.view.users, mm.view.items, suffix)
}

// ScoreUser writes P[r_ui = 1] for every item into dst, implementing
// eval.Recommender. With a float32 section present it streams that
// section — half the memory bandwidth of the float64 path — within the
// linalg.ScoreErrorBoundF32 error bound; otherwise it scores the exact
// float64 factors, bit-identically to a heap-loaded model.
func (mm *MappedModel) ScoreUser(u int, dst []float64) {
	if mm.fu32 == nil {
		mm.view.ScoreUser(u, dst)
		runtime.KeepAlive(mm)
		return
	}
	k := mm.view.k
	var bias float64
	if mm.bu32 != nil {
		bias = float64(mm.bu32[u])
	}
	linalg.ScoreF32(dst, mm.fu32[u*k:(u+1)*k], mm.fi32, mm.bi32, bias)
	runtime.KeepAlive(mm)
}

// ScoreWithFactor scores every item against an explicit (float64) user
// factor, always through the exact float64 item factors so fold-in
// results match a heap-loaded model bit for bit.
func (mm *MappedModel) ScoreWithFactor(fu []float64, bias float64, dst []float64) {
	mm.view.ScoreWithFactor(fu, bias, dst)
	runtime.KeepAlive(mm)
}

// Verify runs the full factor-domain scan the O(1) open intentionally
// skips: every float64 factor must be non-negative and finite, and every
// float32 section value must equal the quantization of its float64
// counterpart — exactly what ReadModel enforces on the copying path. It
// costs O(model) and pages the whole mapping in; tools and load-time
// paranoia can call it, the serving hot path does not.
func (mm *MappedModel) Verify() error {
	v := mm.view
	for _, arr := range [][]float64{v.fu, v.fi, v.bu, v.bi} {
		if err := checkFactors(arr); err != nil {
			return err
		}
	}
	f32s := [4][]float32{mm.fu32, mm.fi32, mm.bu32, mm.bi32}
	for s, arr := range [][]float64{v.fu, v.fi, v.bu, v.bi} {
		q := f32s[s]
		if q == nil {
			continue
		}
		for j, want := range arr {
			if q[j] != float32(want) {
				return fmt.Errorf("core: corrupt model: float32 section disagrees with float64 factors")
			}
		}
	}
	runtime.KeepAlive(mm)
	return nil
}

// Close releases the mapping eagerly. Every view into the model —
// including the Model() view and any factor slices obtained from it — is
// invalid afterwards. Close is not safe to call while other goroutines
// still use the model; a serving process that hot-swaps models should
// simply drop the reference and let the cleanup release the old mapping
// once in-flight requests finish (see serve's snapshot discipline).
func (mm *MappedModel) Close() error {
	if mm.data == nil {
		return nil
	}
	mm.cleanup.Stop()
	data := mm.data
	mm.data = nil
	mm.view = nil
	mm.fu32, mm.fi32, mm.bu32, mm.bi32 = nil, nil, nil, nil
	return munmapFile(data)
}
