package chaos

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Mode selects how the Proxy treats a connection. The mode is read once
// per accepted connection; changing it affects new connections (an
// already-trickling connection keeps trickling until it dies).
type Mode int32

const (
	// ModePass forwards bytes both ways untouched.
	ModePass Mode = iota
	// ModeRefuse accepts and immediately closes — the crashed process
	// whose port is still bound.
	ModeRefuse
	// ModeHang accepts and reads the request but never answers — the
	// hung shard. The client's deadline is the only way out.
	ModeHang
	// ModeTrickle forwards the request, then leaks the response back one
	// byte per trickle interval — the slow-loris shard that holds a
	// router slot as long as the router lets it.
	ModeTrickle
)

// Proxy is a byte-level TCP proxy in front of one target, driving faults
// the RoundTripper cannot express: the connection is accepted and the
// failure happens inside it. Safe for concurrent use.
type Proxy struct {
	target  string
	ln      net.Listener
	mode    atomic.Int32
	trickle atomic.Int64 // nanoseconds between trickled bytes

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// NewProxy listens on a fresh localhost port and proxies to target (a
// base URL like "http://127.0.0.1:1234" or a bare host:port). It starts
// in ModePass.
func NewProxy(target string) (*Proxy, error) {
	target = strings.TrimPrefix(strings.TrimPrefix(target, "http://"), "https://")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("chaos: proxy listen: %w", err)
	}
	p := &Proxy{target: target, ln: ln, conns: make(map[net.Conn]struct{})}
	p.trickle.Store(int64(20 * time.Millisecond))
	go p.acceptLoop()
	return p, nil
}

// URL returns the proxy's base URL — what the router should be pointed
// at instead of the shard.
func (p *Proxy) URL() string { return "http://" + p.ln.Addr().String() }

// SetMode switches the fault mode for new connections.
func (p *Proxy) SetMode(m Mode) { p.mode.Store(int32(m)) }

// SetTrickle sets the per-byte delay of ModeTrickle.
func (p *Proxy) SetTrickle(every time.Duration) { p.trickle.Store(int64(every)) }

// Close stops the listener and severs every open connection.
func (p *Proxy) Close() error {
	p.mu.Lock()
	p.closed = true
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	err := p.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	return err
}

// track registers c for teardown; it reports false when the proxy is
// already closed (the caller must close c itself).
func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *Proxy) acceptLoop() {
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !p.track(c) {
			_ = c.Close()
			return
		}
		go p.handle(c)
	}
}

func (p *Proxy) handle(client net.Conn) {
	defer p.untrack(client)
	defer client.Close()
	switch Mode(p.mode.Load()) {
	case ModeRefuse:
		return
	case ModeHang:
		// Drain whatever the client writes so it never blocks on its
		// request; answer nothing. The connection dies when the client
		// gives up or the proxy closes.
		buf := make([]byte, 4096)
		for {
			if _, err := client.Read(buf); err != nil {
				return
			}
		}
	}
	target, err := net.Dial("tcp", p.target)
	if err != nil {
		return
	}
	if !p.track(target) {
		_ = target.Close()
		return
	}
	defer p.untrack(target)
	defer target.Close()

	done := make(chan struct{}, 2)
	go func() { // client → target: the request, always at full speed
		defer func() { done <- struct{}{} }()
		buf := make([]byte, 4096)
		for {
			n, err := client.Read(buf)
			if n > 0 {
				if _, werr := target.Write(buf[:n]); werr != nil {
					return
				}
			}
			if err != nil {
				_ = tcpCloseWrite(target)
				return
			}
		}
	}()
	go func() { // target → client: the response, possibly trickled
		defer func() { done <- struct{}{} }()
		trickling := Mode(p.mode.Load()) == ModeTrickle
		buf := make([]byte, 4096)
		if trickling {
			buf = buf[:1] // one byte per read keeps the leak honest
		}
		for {
			n, err := target.Read(buf)
			if n > 0 {
				if trickling {
					time.Sleep(time.Duration(p.trickle.Load()))
				}
				if _, werr := client.Write(buf[:n]); werr != nil {
					return
				}
			}
			if err != nil {
				_ = tcpCloseWrite(client)
				return
			}
		}
	}()
	<-done
	<-done
}

// tcpCloseWrite half-closes the write side so the peer sees EOF without
// losing its own in-flight bytes.
func tcpCloseWrite(c net.Conn) error {
	if tc, ok := c.(*net.TCPConn); ok {
		return tc.CloseWrite()
	}
	return nil
}
