package chaos

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"
)

func okServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	t.Cleanup(ts.Close)
	return ts
}

func get(t *testing.T, c *http.Client, url string) (int, string, error) {
	t.Helper()
	resp, err := c.Get(url)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, "", err
	}
	return resp.StatusCode, string(body), nil
}

// TestTransportSequenceWindows pins the deterministic fault windows:
// After skips, Count bounds, EveryN flaps — byte-for-byte repeatable.
func TestTransportSequenceWindows(t *testing.T) {
	ts := okServer(t)
	tr := NewTransport(nil, 1)
	c := &http.Client{Transport: tr}

	// Requests 0,1 pass (After: 2); 2,3 fault (Count: 2); 4+ pass again.
	tr.Set(&Fault{After: 2, Count: 2, Status: http.StatusInternalServerError})
	want := []int{200, 200, 500, 500, 200, 200}
	for i, w := range want {
		st, _, err := get(t, c, ts.URL)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if st != w {
			t.Errorf("request %d: status %d, want %d", i, st, w)
		}
	}
	if n := tr.Injected(); n != 2 {
		t.Errorf("Injected() = %d, want 2", n)
	}

	// EveryN: 3 → fault requests 0, 3, 6, ... — a deterministic flap.
	tr.Set(&Fault{EveryN: 3, Status: http.StatusServiceUnavailable})
	want = []int{503, 200, 200, 503, 200, 200, 503}
	for i, w := range want {
		st, _, _ := get(t, c, ts.URL)
		if st != w {
			t.Errorf("flap request %d: status %d, want %d", i, st, w)
		}
	}
}

// TestTransportScoping: Host and Path scope faults to one shard or one
// route; out-of-scope requests pass untouched.
func TestTransportScoping(t *testing.T) {
	a, b := okServer(t), okServer(t)
	hostOf := func(s *httptest.Server) string {
		u, _ := url.Parse(s.URL)
		return u.Host
	}
	tr := NewTransport(nil, 1)
	c := &http.Client{Transport: tr}
	tr.Set(&Fault{Host: hostOf(a), Err: ErrPartitioned})

	if _, _, err := get(t, c, a.URL); !errors.Is(err, ErrPartitioned) {
		t.Errorf("partitioned host: err = %v, want ErrPartitioned", err)
	}
	if st, _, err := get(t, c, b.URL); err != nil || st != 200 {
		t.Errorf("unfaulted host: status %d, err %v", st, err)
	}

	tr.Set(&Fault{Path: "/v1/shard", Status: 502})
	if st, _, _ := get(t, c, a.URL+"/v1/shard/topm"); st != 502 {
		t.Errorf("matched path: status %d, want 502", st)
	}
	if st, _, _ := get(t, c, a.URL+"/healthz"); st != 200 {
		t.Errorf("unmatched path: status %d, want 200", st)
	}

	// Set() with no faults heals everything.
	tr.Set()
	if st, _, err := get(t, c, a.URL+"/v1/shard/topm"); err != nil || st != 200 {
		t.Errorf("after heal: status %d, err %v", st, err)
	}
}

// TestTransportHangRespectsContext: a hung request returns exactly when
// its deadline fires, with context.DeadlineExceeded.
func TestTransportHangRespectsContext(t *testing.T) {
	ts := okServer(t)
	tr := NewTransport(nil, 1)
	tr.Set(&Fault{Hang: true})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL, nil)
	start := time.Now()
	_, err := (&http.Client{Transport: tr}).Do(req)
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hung request: err = %v, want DeadlineExceeded", err)
	}
	if el := time.Since(start); el < 40*time.Millisecond || el > 5*time.Second {
		t.Errorf("hung request returned after %v, want ≈50ms", el)
	}
}

// TestTransportSeededProbabilityDeterministic: the same seed over the
// same request sequence faults the same requests.
func TestTransportSeededProbabilityDeterministic(t *testing.T) {
	ts := okServer(t)
	run := func(seed uint64) []int {
		tr := NewTransport(nil, seed)
		tr.Set(&Fault{Prob: 0.5, Status: 500})
		c := &http.Client{Transport: tr}
		out := make([]int, 40)
		for i := range out {
			out[i], _, _ = get(t, c, ts.URL)
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d: seed-7 runs diverge (%d vs %d)", i, a[i], b[i])
		}
	}
	diff := false
	for i, st := range run(8) {
		if st != a[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("seeds 7 and 8 faulted identically across 40 requests (suspicious)")
	}
}

// TestProxyModes drives one connection through each proxy mode.
func TestProxyModes(t *testing.T) {
	ts := okServer(t)
	p, err := NewProxy(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// Fresh client per phase: a poisoned keep-alive connection must not
	// leak the previous mode into the next phase.
	client := func(timeout time.Duration) *http.Client {
		return &http.Client{Timeout: timeout, Transport: &http.Transport{DisableKeepAlives: true}}
	}

	if st, body, err := get(t, client(2*time.Second), p.URL()); err != nil || st != 200 || body != "ok" {
		t.Fatalf("pass mode: status %d body %q err %v", st, body, err)
	}

	p.SetMode(ModeRefuse)
	if _, _, err := get(t, client(2*time.Second), p.URL()); err == nil {
		t.Error("refuse mode served a response")
	}

	p.SetMode(ModeHang)
	start := time.Now()
	if _, _, err := get(t, client(100*time.Millisecond), p.URL()); err == nil {
		t.Error("hang mode served a response")
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Errorf("hang mode ignored the client timeout (%v)", el)
	}

	// Trickle: the response arrives eventually (generous client timeout)
	// but far slower than the direct path.
	p.SetMode(ModeTrickle)
	p.SetTrickle(5 * time.Millisecond)
	start = time.Now()
	st, body, err := get(t, client(30*time.Second), p.URL())
	if err != nil || st != 200 || body != "ok" {
		t.Fatalf("trickle mode: status %d body %q err %v", st, body, err)
	}
	// The response is ~100+ header bytes at 5ms/byte: ≥ 250ms is safely
	// distinguishable from the sub-ms direct path.
	if el := time.Since(start); el < 250*time.Millisecond {
		t.Errorf("trickle served in %v — not actually trickling", el)
	}

	// A short-deadline client gives up mid-trickle without wedging the
	// proxy for later connections.
	if _, _, err := get(t, client(50*time.Millisecond), p.URL()); err == nil {
		t.Error("mid-trickle deadline: expected a client timeout")
	}
	p.SetMode(ModePass)
	if st, _, err := get(t, client(2*time.Second), p.URL()); err != nil || st != 200 {
		t.Errorf("back to pass mode: status %d err %v", st, err)
	}
}
