// Package chaos is the fault-injection harness behind the serving tier's
// resilience tests: a deterministic fault-injecting http.RoundTripper
// (inject latency, errors, hangs, synthesized HTTP statuses — scoped by
// host, path, request sequence, period or seeded probability) and a
// byte-level listener proxy (hang, refuse, trickle — the slow-loris
// shard) that sit between the router and its shards.
//
// Everything is deterministic given the request sequence: faults match by
// per-fault counters, probabilistic faults draw from a PCG seeded at
// construction. Two runs feeding the transport the same requests in the
// same order inject the same faults, which is what lets the chaos tests
// assert exact breaker and recovery behavior instead of retrying until
// the stars align.
//
// The package depends only on the standard library, so it can wrap any
// HTTP client in any test without import cycles.
package chaos

import (
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strings"
	"sync"
	"time"
)

// ErrPartitioned is the conventional connection-level error for a
// partitioned host — what a dial into a black-holed network segment
// surfaces as. Tests match it with errors.Is.
var ErrPartitioned = errors.New("chaos: network partition")

// Fault is one injection rule. Zero matching fields match everything;
// zero behavior fields mean "pass through" (a Fault with only Latency
// set delays but still delivers). The first matching fault in a
// transport's list applies; later ones are not consulted for that
// request.
type Fault struct {
	// Host, when non-empty, matches the request URL's host (exact,
	// including port). Scoping a fault to one shard is Host matching.
	Host string
	// Path, when non-empty, is a prefix match on the request URL path —
	// "/v1/shard" faults the data path while probes stay healthy.
	Path string

	// After skips the first After matching requests (they pass through
	// unfaulted). Count, when positive, bounds how many requests after
	// that window opens are faulted; 0 means every one. Together they
	// express one-shot faults and bounded outages.
	After int
	Count int
	// EveryN, when > 1, faults only every Nth request inside the
	// After/Count window — a deterministic flap (fail one, pass N-1).
	EveryN int
	// Prob, when in (0, 1), faults each in-window request with this
	// probability, drawn from the transport's seeded generator —
	// reproducible randomness.
	Prob float64

	// Latency delays the request (respecting its context) before any
	// other behavior — and before pass-through when it is the only
	// behavior set.
	Latency time.Duration
	// Hang blocks until the request context is done and returns its
	// error: the hung-but-accepting shard. Requests without a deadline
	// hang forever, which is the point.
	Hang bool
	// Err fails the request with this connection-level error
	// (ErrPartitioned, or any error the test wants to see surfaced).
	Err error
	// Status synthesizes an HTTP response with this status and a JSON
	// error body, without touching the network.
	Status int

	matched int // requests that matched Host/Path, guarded by Transport.mu
	applied int // requests actually faulted, guarded by Transport.mu
}

// matches reports whether req falls under this fault's scope.
func (f *Fault) matches(req *http.Request) bool {
	if f.Host != "" && req.URL.Host != f.Host {
		return false
	}
	if f.Path != "" && !strings.HasPrefix(req.URL.Path, f.Path) {
		return false
	}
	return true
}

// Transport is a fault-injecting http.RoundTripper. Faults are swapped
// atomically with Set — Set() with no arguments heals everything — so a
// test scripts an outage and its recovery without rebuilding clients.
// Safe for concurrent use.
type Transport struct {
	inner http.RoundTripper

	mu       sync.Mutex
	rng      *rand.Rand
	faults   []*Fault
	injected int64
}

// NewTransport wraps inner (nil means http.DefaultTransport) with a
// fault layer. seed feeds the generator behind Fault.Prob; two
// transports with the same seed and request sequence inject identically.
func NewTransport(inner http.RoundTripper, seed uint64) *Transport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &Transport{
		inner: inner,
		rng:   rand.New(rand.NewPCG(seed, 0x63_68_61_6f_73)), // "chaos"
	}
}

// Set atomically replaces the fault list and resets the new faults'
// sequence counters. Set() clears every fault — the heal step of a chaos
// scenario.
func (t *Transport) Set(faults ...*Fault) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, f := range faults {
		f.matched, f.applied = 0, 0
	}
	t.faults = faults
}

// Injected returns how many requests have been faulted since
// construction (across Set generations).
func (t *Transport) Injected() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.injected
}

// pick finds the fault to apply to req, advancing sequence counters.
func (t *Transport) pick(req *http.Request) *Fault {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, f := range t.faults {
		if !f.matches(req) {
			continue
		}
		idx := f.matched // 0-based index among matching requests
		f.matched++
		if idx < f.After {
			return nil
		}
		in := idx - f.After
		if f.Count > 0 && in >= f.Count {
			return nil
		}
		if f.EveryN > 1 && in%f.EveryN != 0 {
			return nil
		}
		if f.Prob > 0 && f.Prob < 1 && t.rng.Float64() >= f.Prob {
			return nil
		}
		f.applied++
		t.injected++
		return f
	}
	return nil
}

// RoundTrip applies the first matching fault, or forwards to the inner
// transport.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	f := t.pick(req)
	if f == nil {
		return t.inner.RoundTrip(req)
	}
	ctx := req.Context()
	if f.Latency > 0 {
		timer := time.NewTimer(f.Latency)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return nil, ctx.Err()
		}
	}
	switch {
	case f.Hang:
		<-ctx.Done()
		return nil, ctx.Err()
	case f.Err != nil:
		return nil, f.Err
	case f.Status != 0:
		body := fmt.Sprintf(`{"error":"chaos: injected HTTP %d"}`+"\n", f.Status)
		return &http.Response{
			Status:        fmt.Sprintf("%d %s", f.Status, http.StatusText(f.Status)),
			StatusCode:    f.Status,
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        http.Header{"Content-Type": []string{"application/json"}},
			Body:          io.NopCloser(strings.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	}
	return t.inner.RoundTrip(req) // latency-only fault
}
