package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/serve"
)

// The chaos suite proves the self-healing behaviors end to end against
// deterministic fault injection: breakers collapse a hung shard's cost
// to fail-fast, the prober repairs routes without operator action,
// admission control bounds in-flight work under overload, and a quorum
// rollout under fire still never mixes model versions.

func hostOf(t testing.TB, rawURL string) string {
	t.Helper()
	u, err := url.Parse(rawURL)
	if err != nil {
		t.Fatal(err)
	}
	return u.Host
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t testing.TB, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out after %v waiting for %s", d, what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBreakerFailFastUnderHungShard is the tentpole chaos e2e: one shard
// hangs; the breaker trips within the configured threshold; from then on
// requests fail fast (degraded) instead of burning a timeout each; after
// the fault clears, the half-open trial closes the breaker and responses
// return to bit-identical full merges — zero operator action.
func TestBreakerFailFastUnderHungShard(t *testing.T) {
	ct := chaos.NewTransport(nil, 1)
	tr := newTier(t, 2, Config{
		Timeout:          400 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  800 * time.Millisecond,
		AllowDegraded:    true,
		CacheSize:        -1, // every request must actually scatter
		HTTPClient:       &http.Client{Transport: ct},
	})
	hung := tr.shardTS[0].URL
	ct.Set(&chaos.Fault{Host: hostOf(t, hung), Hang: true})

	req := serve.RecommendRequest{User: 5, M: 10}
	// Phase 1: the threshold. Each of these burns the per-attempt
	// timeout on the hung shard and comes back degraded.
	for i := 0; i < 3; i++ {
		var resp RecommendResponse
		if st := postJSON(t, tr.routerTS.URL+"/v1/recommend", req, &resp); st != 200 {
			t.Fatalf("request %d during hang: status %d", i, st)
		}
		if !resp.Degraded {
			t.Fatalf("request %d during hang: not marked degraded", i)
		}
	}
	if got := tr.router.breakers[hung].stateName(); got != "open" {
		t.Fatalf("after %d failures breaker is %q, want open", 3, got)
	}

	// Phase 2: fail fast. With the breaker open the hung shard costs
	// nothing; five requests must come nowhere near five timeouts (2s).
	// The window stays inside the cooldown so no trial re-hangs us.
	start := time.Now()
	for i := 0; i < 5; i++ {
		var resp RecommendResponse
		if st := postJSON(t, tr.routerTS.URL+"/v1/recommend", req, &resp); st != 200 || !resp.Degraded {
			t.Fatalf("fail-fast request %d: status %d degraded=%v", i, st, resp.Degraded)
		}
	}
	if el := time.Since(start); el > 600*time.Millisecond {
		t.Fatalf("5 fail-fast requests took %v — breaker is not short-circuiting the hung shard", el)
	}

	// Phase 3: recovery. Clear the fault; after the cooldown the next
	// request runs a half-open trial, closes the breaker, and merges go
	// back to bit-identical — compare() also asserts not-degraded.
	ct.Set()
	waitFor(t, 10*time.Second, "breaker to close after the fault cleared", func() bool {
		var resp RecommendResponse
		postJSON(t, tr.routerTS.URL+"/v1/recommend", req, &resp)
		return !resp.Degraded
	})
	if got := tr.router.breakers[hung].stateName(); got != "closed" {
		t.Fatalf("breaker after recovery is %q, want closed", got)
	}
	for _, c := range compareCases {
		tr.compare(t, "healed/"+c.name, c.req)
	}
}

// TestProbeDrivenRouteRepair: a partitioned shard is marked down by the
// background prober (degraded merges, no timeout burn), and returned to
// rotation automatically once the partition heals — full bit-identical
// merges resume with zero operator intervention.
func TestProbeDrivenRouteRepair(t *testing.T) {
	ct := chaos.NewTransport(nil, 1)
	tr := newTier(t, 2, Config{
		Timeout:          300 * time.Millisecond,
		BreakerThreshold: -1, // isolate the prober: no breaker assists
		ProbeInterval:    25 * time.Millisecond,
		AllowDegraded:    true,
		CacheSize:        -1,
		HTTPClient:       &http.Client{Transport: ct},
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tr.router.StartProber(ctx)

	lost := tr.shardTS[0].URL
	hs := tr.router.healthFor(lost)
	ct.Set(&chaos.Fault{Host: hostOf(t, lost), Err: chaos.ErrPartitioned})
	waitFor(t, 5*time.Second, "prober to mark the partitioned shard down", hs.down.Load)

	// Down in the overlay: requests skip the shard outright — degraded,
	// and fast even though nothing is cached.
	start := time.Now()
	var resp RecommendResponse
	if st := postJSON(t, tr.routerTS.URL+"/v1/recommend", serve.RecommendRequest{User: 9, M: 10}, &resp); st != 200 {
		t.Fatalf("status %d with shard down", st)
	}
	if !resp.Degraded {
		t.Fatal("merge over a downed shard not marked degraded")
	}
	if el := time.Since(start); el > 250*time.Millisecond {
		t.Fatalf("downed-shard request took %v — overlay is not short-circuiting", el)
	}

	ct.Set()
	waitFor(t, 5*time.Second, "prober to repair the healed shard", func() bool { return !hs.down.Load() })
	for _, c := range compareCases {
		tr.compare(t, "repaired/"+c.name, c.req)
	}
	if tr.router.m.repairs.Value() < 1 || tr.router.m.marksDown.Value() < 1 {
		t.Errorf("prober counters: marks_down=%d repairs=%d, want >= 1 each",
			tr.router.m.marksDown.Value(), tr.router.m.repairs.Value())
	}
}

// TestProbeMarksVersionSkewDown: a shard that is alive and ready but can
// no longer serve the route table's pinned version (its two-deep history
// moved past it) is taken out of rotation — every data call would 409 —
// and returns after a flip re-pins.
func TestProbeMarksVersionSkewDown(t *testing.T) {
	tr := newTier(t, 2, Config{
		BreakerThreshold: -1,
		ProbeInterval:    25 * time.Millisecond,
		AllowDegraded:    true,
		CacheSize:        -1,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tr.router.StartProber(ctx)

	// Two reloads push shard 0's history to {3, 2}; the table pins 1.
	for i := 0; i < 2; i++ {
		if st := postJSON(t, tr.shardTS[0].URL+"/v1/reload", nil, nil); st != 200 {
			t.Fatalf("reload %d: status %d", i, st)
		}
	}
	hs := tr.router.healthFor(tr.shardTS[0].URL)
	waitFor(t, 5*time.Second, "prober to mark the version-skewed shard down", hs.down.Load)

	// A flip re-pins each shard to its current version; the prober puts
	// the shard back without anyone touching the overlay by hand.
	if st := postJSON(t, tr.routerTS.URL+"/v1/admin/flip", nil, nil); st != 200 {
		t.Fatalf("flip: status %d", st)
	}
	waitFor(t, 5*time.Second, "prober to repair after the flip re-pinned", func() bool { return !hs.down.Load() })
}

// TestRouterShedsUnderOverload pins the admission-control acceptance
// criterion: at 10× the admission limit, in-flight work never exceeds
// the limit, excess requests are shed 429 within the queue-wait bound,
// and no admitted request is shed mid-flight (every non-429 is a full
// 200).
func TestRouterShedsUnderOverload(t *testing.T) {
	const maxInFlight = 4
	ct := chaos.NewTransport(nil, 1)
	tr := newTier(t, 2, Config{
		MaxInFlight:      maxInFlight,
		MaxQueue:         2,
		QueueWait:        50 * time.Millisecond,
		BreakerThreshold: -1,
		CacheSize:        -1,
		HTTPClient:       &http.Client{Transport: ct},
	})
	// Every shard call takes ~100ms: admitted requests hold their slot
	// long enough that a 10× burst must overflow the queue.
	ct.Set(&chaos.Fault{Path: "/v1/shard/topm", Latency: 100 * time.Millisecond})

	const n = 10 * maxInFlight
	type outcome struct {
		status  int
		items   int
		took    time.Duration
		retryAt string
	}
	outcomes := make([]outcome, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"user":%d,"m":10}`, i)
			start := time.Now()
			resp, err := http.Post(tr.routerTS.URL+"/v1/recommend", "application/json",
				strings.NewReader(body))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			var rr RecommendResponse
			_ = json.NewDecoder(resp.Body).Decode(&rr)
			outcomes[i] = outcome{
				status:  resp.StatusCode,
				items:   len(rr.Items),
				took:    time.Since(start),
				retryAt: resp.Header.Get("Retry-After"),
			}
		}(i)
	}
	wg.Wait()

	var ok200, shed429 int
	for i, o := range outcomes {
		switch o.status {
		case http.StatusOK:
			ok200++
			if o.items != 10 {
				t.Errorf("request %d: admitted but served %d items — admitted work was cut short", i, o.items)
			}
		case http.StatusTooManyRequests:
			shed429++
			if o.retryAt == "" {
				t.Errorf("request %d: 429 without Retry-After", i)
			}
			if o.took > 2*time.Second {
				t.Errorf("request %d: shed after %v — shedding must be bounded by the queue wait", i, o.took)
			}
		default:
			t.Errorf("request %d: status %d — overload must shed with 429, nothing else", i, o.status)
		}
	}
	if peak := tr.router.gate.Peak(); peak > maxInFlight {
		t.Errorf("peak in-flight %d exceeds the admission limit %d", peak, maxInFlight)
	}
	if ok200 == 0 {
		t.Error("overload starved every request; the gate should still admit up to the limit")
	}
	if shed429 < n/4 {
		t.Errorf("only %d/%d shed under 10× overload — the gate is not bounding admission", shed429, n)
	}
	t.Logf("overload: %d ok, %d shed, peak in-flight %d", ok200, shed429, tr.router.gate.Peak())
}

// TestMidChaosQuorumRolloutNeverMixesVersions: with a flapping fault
// injecting shard 500s, concurrent clients and a quorum rollout to a
// genuinely different model, every 200 the router serves must equal the
// old model's list or the new model's list bit-for-bit — never a merge
// of both.
func TestMidChaosQuorumRolloutNeverMixesVersions(t *testing.T) {
	ct := chaos.NewTransport(nil, 7)
	tr := newTier(t, 3, Config{
		Timeout:          2 * time.Second,
		HedgeDelay:       5 * time.Millisecond,
		RetryBudget:      -1, // unlimited hedges: keep throughput up under the flap
		BreakerThreshold: -1, // flapping 500s must not trip anything here
		CacheSize:        -1,
		HTTPClient:       &http.Client{Transport: ct},
	})
	users := []int{0, 7, 42, 119}
	listFromRef := func(u int) []serve.ScoredItem {
		var resp serve.RecommendResponse
		if st := postJSON(t, tr.refTS.URL+"/v1/recommend", serve.RecommendRequest{User: u, M: 10}, &resp); st != 200 {
			t.Fatalf("reference user %d: status %d", u, st)
		}
		return resp.Items
	}
	v1 := make(map[int][]serve.ScoredItem, len(users))
	for _, u := range users {
		v1[u] = listFromRef(u)
	}
	// Retrain with a different seed into the same file: the rollout
	// target is a genuinely different model, so a mixed-version merge
	// cannot masquerade as either list.
	trainAndSave(t, tr.train, 99, tr.modelPath)
	if err := tr.ref.ReloadFromFile(); err != nil {
		t.Fatal(err)
	}
	v2 := make(map[int][]serve.ScoredItem, len(users))
	for _, u := range users {
		v2[u] = listFromRef(u)
	}

	// Every third shard call dies with a 500 for the whole test.
	ct.Set(&chaos.Fault{Path: "/v1/shard/topm", Status: 500, EveryN: 3})

	matches := func(got, want []serve.ScoredItem) bool {
		if len(got) != len(want) {
			return false
		}
		for n := range want {
			if got[n] != want[n] {
				return false
			}
		}
		return true
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var served, failed int64
	var mu sync.Mutex
	for _, u := range users {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(tr.routerTS.URL+"/v1/recommend", "application/json",
					strings.NewReader(fmt.Sprintf(`{"user":%d,"m":10}`, u)))
				if err != nil {
					continue
				}
				var rr RecommendResponse
				decErr := json.NewDecoder(resp.Body).Decode(&rr)
				resp.Body.Close()
				mu.Lock()
				if resp.StatusCode == 200 && decErr == nil {
					served++
					if !matches(rr.Items, v1[u]) && !matches(rr.Items, v2[u]) {
						t.Errorf("user %d: a 200 list matches neither model version (epoch %d, degraded %v) — versions were mixed",
							u, rr.RouteEpoch, rr.Degraded)
					}
				} else {
					failed++ // fail-closed 502/504 under chaos is the contract
				}
				mu.Unlock()
			}
		}(u)
	}

	// The rollout, under the same fire: quorum-reload every shard, then
	// flip (retrying — refresh itself races the flap on /healthz... it
	// doesn't: /healthz is outside the faulted path, but client load can
	// still slow it).
	for _, ts := range tr.shardTS {
		if st := postJSON(t, ts.URL+"/v1/reload", nil, nil); st != 200 {
			t.Fatalf("shard reload: status %d", st)
		}
	}
	waitFor(t, 10*time.Second, "the flip to land mid-chaos", func() bool {
		return postJSON(t, tr.routerTS.URL+"/v1/admin/flip", nil, nil) == 200
	})
	time.Sleep(300 * time.Millisecond) // serve across the new epoch too
	close(stop)
	wg.Wait()
	if served == 0 {
		t.Fatal("no successful responses at all during the chaos rollout")
	}
	t.Logf("mid-chaos rollout: %d served, %d failed closed", served, failed)

	// After the storm: heal and verify the tier converged on v2.
	ct.Set()
	var rr RecommendResponse
	if st := postJSON(t, tr.routerTS.URL+"/v1/recommend", serve.RecommendRequest{User: 42, M: 10}, &rr); st != 200 {
		t.Fatalf("post-chaos: status %d", st)
	}
	if !matches(rr.Items, v2[42]) {
		t.Fatal("post-rollout list is not the new model's")
	}
}

// TestSlowLorisShardDoesNotHoldSlotPastDeadline: a shard that accepts
// the connection and trickles its response must cost the router at most
// the per-attempt timeout, never the trickle duration.
func TestSlowLorisShardDoesNotHoldSlotPastDeadline(t *testing.T) {
	tr := newTier(t, 2, Config{AllowDegraded: true})
	proxy, err := chaos.NewProxy(tr.shardTS[0].URL)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	// A second router routes shard 0 through the proxy (Pass mode while
	// Refresh discovers the partition).
	tport := &http.Transport{}
	rt, err := New(Config{
		Shards:           []string{proxy.URL(), tr.shardTS[1].URL},
		Timeout:          200 * time.Millisecond,
		BreakerThreshold: -1, // the deadline alone must free the slot
		AllowDegraded:    true,
		CacheSize:        -1,
		HTTPClient:       &http.Client{Transport: tport},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The proxy latches its mode per connection; drop the keep-alive
	// conns Refresh opened so the trickle applies to fresh ones.
	tport.CloseIdleConnections()
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()

	// ~20ms per response byte: a response held to the trickle would take
	// many seconds. The router must cut it off at its 200ms deadline.
	proxy.SetMode(chaos.ModeTrickle)
	proxy.SetTrickle(20 * time.Millisecond)
	for i := 0; i < 4; i++ {
		start := time.Now()
		var resp RecommendResponse
		if st := postJSON(t, rts.URL+"/v1/recommend", serve.RecommendRequest{User: i, M: 10}, &resp); st != 200 {
			t.Fatalf("request %d: status %d", i, st)
		}
		if !resp.Degraded {
			t.Fatalf("request %d: trickled shard served in time?", i)
		}
		if el := time.Since(start); el > 2*time.Second {
			t.Fatalf("request %d held for %v — the slow-loris shard is holding router slots past the deadline", i, el)
		}
	}
	proxy.SetMode(chaos.ModePass)
	waitFor(t, 5*time.Second, "full merges once the loris relents", func() bool {
		var resp RecommendResponse
		return postJSON(t, rts.URL+"/v1/recommend", serve.RecommendRequest{User: 3, M: 10}, &resp) == 200 &&
			!resp.Degraded
	})
}

// TestDeterministic4xxDoesNotTripBreaker pins the satellite bugfix: a
// shard's deterministic 400 (unknown tag) repeated past the breaker
// threshold must leave the breaker closed — 4xx is the client's fault,
// not the shard's.
func TestDeterministic4xxDoesNotTripBreaker(t *testing.T) {
	tr := newTier(t, 2, Config{
		BreakerThreshold: 2,
		CacheSize:        -1,
	})
	bad := serve.RecommendRequest{User: 1, M: 5,
		Filter: &serve.FilterSpec{AllowTags: []string{"no-such-tag"}}}
	for i := 0; i < 5; i++ {
		if st := postJSON(t, tr.routerTS.URL+"/v1/recommend", bad, nil); st != 400 {
			t.Fatalf("bad-tag request %d: status %d, want 400", i, st)
		}
	}
	for _, ts := range tr.shardTS {
		b := tr.router.breakers[ts.URL]
		if got := b.stateName(); got != "closed" {
			t.Fatalf("breaker for %s is %q after repeated 4xx, want closed", ts.URL, got)
		}
		if opens := b.snapshot()["opens"].(int64); opens != 0 {
			t.Fatalf("breaker for %s opened %d times on 4xx", ts.URL, opens)
		}
	}
	tr.compare(t, "after-4xx-storm", serve.RecommendRequest{User: 1, M: 5})
}

// TestRouterMapsShardTimeoutTo504 pins the satellite bugfix: deadline
// exhaustion is 504 with a structured body, not the generic 502.
func TestRouterMapsShardTimeoutTo504(t *testing.T) {
	ct := chaos.NewTransport(nil, 1)
	tr := newTier(t, 2, Config{
		Timeout:          80 * time.Millisecond,
		BreakerThreshold: -1,
		CacheSize:        -1,
		HTTPClient:       &http.Client{Transport: ct},
		// Fail-closed: the hung shard must fail the request.
	})
	ct.Set(&chaos.Fault{Host: hostOf(t, tr.shardTS[0].URL), Hang: true})

	resp, err := http.Post(tr.routerTS.URL+"/v1/recommend", "application/json",
		strings.NewReader(`{"user":3,"m":5}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	var body struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Code != "deadline_exceeded" || body.Error == "" {
		t.Fatalf("504 body = %+v, want code deadline_exceeded with an error message", body)
	}
	if tr.router.m.deadline504s.Value() < 1 {
		t.Error("deadline_504s metric not incremented")
	}
}

// TestShardDeadlineHeader: a shard aborts scoring whose propagated
// deadline budget already expired, with a 504 the router folds into its
// own deadline accounting.
func TestShardDeadlineHeader(t *testing.T) {
	tr := newTier(t, 2, Config{})
	body := `{"user":1,"m":5,"expect_version":1}`
	req, err := http.NewRequest(http.MethodPost, tr.shardTS[0].URL+"/v1/shard/topm", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(serve.DeadlineHeader, "0") // already spent
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired-budget shard call: status %d, want 504", resp.StatusCode)
	}
	// A generous budget serves normally.
	req2, _ := http.NewRequest(http.MethodPost, tr.shardTS[0].URL+"/v1/shard/topm", strings.NewReader(body))
	req2.Header.Set("Content-Type", "application/json")
	req2.Header.Set(serve.DeadlineHeader, "5000")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != 200 {
		t.Fatalf("healthy-budget shard call: status %d", resp2.StatusCode)
	}
}

// BenchmarkRouterShardDown pins the fail-fast latency win: one shard
// hung, breaker open — requests are served degraded from the survivors
// at in-memory speed instead of burning the 500ms timeout each.
func BenchmarkRouterShardDown(b *testing.B) {
	ct := chaos.NewTransport(nil, 1)
	tr := newTier(b, 2, Config{
		Timeout:          500 * time.Millisecond,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Hour, // no half-open trial mid-benchmark
		AllowDegraded:    true,
		CacheSize:        -1,
		HTTPClient:       &http.Client{Transport: ct},
	})
	ct.Set(&chaos.Fault{Host: hostOf(b, tr.shardTS[0].URL), Hang: true})
	// One sacrificial request burns the timeout and trips the breaker.
	var warm RecommendResponse
	if st := postJSON(b, tr.routerTS.URL+"/v1/recommend", serve.RecommendRequest{User: 0, M: 10}, &warm); st != 200 || !warm.Degraded {
		b.Fatalf("warm-up: status %d degraded=%v", st, warm.Degraded)
	}
	req := serve.RecommendRequest{User: 17, M: 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var resp RecommendResponse
		if st := postJSON(b, tr.routerTS.URL+"/v1/recommend", req, &resp); st != 200 || !resp.Degraded {
			b.Fatalf("status %d degraded=%v", st, resp.Degraded)
		}
	}
}
