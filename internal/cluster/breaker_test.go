package cluster

import (
	"testing"
	"time"
)

func TestBreakerStateMachine(t *testing.T) {
	b := newBreaker(3, 50*time.Millisecond)

	// Closed passes traffic; failures below the threshold keep it closed.
	for i := 0; i < 2; i++ {
		proceed, trial := b.tryAcquire()
		if !proceed || trial {
			t.Fatalf("closed breaker: tryAcquire = (%v,%v)", proceed, trial)
		}
		b.onResult(false, trial)
	}
	if got := b.stateName(); got != "closed" {
		t.Fatalf("after 2/3 failures: state %q", got)
	}

	// A success resets the consecutive count.
	if proceed, trial := b.tryAcquire(); proceed {
		b.onResult(true, trial)
	}
	for i := 0; i < 2; i++ {
		_, trial := b.tryAcquire()
		b.onResult(false, trial)
	}
	if got := b.stateName(); got != "closed" {
		t.Fatalf("success did not reset the count: state %q", got)
	}

	// The third consecutive failure trips it open; open fails fast.
	_, trial := b.tryAcquire()
	b.onResult(false, trial)
	if got := b.stateName(); got != "open" {
		t.Fatalf("after threshold failures: state %q", got)
	}
	if proceed, _ := b.tryAcquire(); proceed {
		t.Fatal("open breaker admitted a call before cooldown")
	}

	// After the cooldown exactly one trial goes through; concurrent
	// calls keep failing fast while it is out.
	time.Sleep(60 * time.Millisecond)
	proceed, trial := b.tryAcquire()
	if !proceed || !trial {
		t.Fatalf("post-cooldown: tryAcquire = (%v,%v), want trial", proceed, trial)
	}
	if proceed, _ := b.tryAcquire(); proceed {
		t.Fatal("second call admitted while the trial is in flight")
	}

	// A failed trial re-opens; a later successful trial closes.
	b.onResult(false, true)
	if got := b.stateName(); got != "open" {
		t.Fatalf("failed trial: state %q", got)
	}
	time.Sleep(60 * time.Millisecond)
	if proceed, trial := b.tryAcquire(); !proceed || !trial {
		t.Fatalf("second trial not admitted: (%v,%v)", proceed, trial)
	}
	b.onResult(true, true)
	if got := b.stateName(); got != "closed" {
		t.Fatalf("successful trial: state %q", got)
	}
	snap := b.snapshot()
	if snap["opens"].(int64) != 2 || snap["closes"].(int64) != 1 {
		t.Errorf("transition counters: %v", snap)
	}
}

func TestBreakerStaleResultsCannotCorrupt(t *testing.T) {
	b := newBreaker(1, time.Hour)
	_, trial := b.tryAcquire()
	b.onResult(false, trial) // trips open

	// A straggler success from before the trip must not close it.
	b.onResult(true, false)
	if got := b.stateName(); got != "open" {
		t.Fatalf("non-trial success closed an open breaker: state %q", got)
	}
	// A straggler failure must not reset openedAt / double-count opens.
	b.onResult(false, false)
	if got := b.snapshot()["opens"].(int64); got != 1 {
		t.Fatalf("straggler failure re-tripped: opens = %d", got)
	}
}

func TestBreakerAbandonReleasesTrial(t *testing.T) {
	b := newBreaker(1, 0) // zero cooldown: open goes half-open immediately
	_, trial := b.tryAcquire()
	b.onResult(false, trial)

	proceed, trial := b.tryAcquire()
	if !proceed || !trial {
		t.Fatalf("expected a trial, got (%v,%v)", proceed, trial)
	}
	// The trial ends without a verdict (caller cancelled): the slot must
	// free up for a fresh trial, with the breaker still not closed.
	b.abandon(true)
	if got := b.stateName(); got != "half-open" {
		t.Fatalf("abandon changed state to %q", got)
	}
	if proceed, trial := b.tryAcquire(); !proceed || !trial {
		t.Fatalf("fresh trial not admitted after abandon: (%v,%v)", proceed, trial)
	}
}

func TestRetryBudget(t *testing.T) {
	rb := newRetryBudget(0.5, 2, time.Hour) // window never rolls mid-test

	// The floor allows retries before any attempts at all.
	if !rb.allowRetry() || !rb.allowRetry() {
		t.Fatal("floor retries denied")
	}
	if rb.allowRetry() {
		t.Fatal("third retry allowed with 0 attempts (floor is 2)")
	}
	if got := rb.deniedTotal(); got != 1 {
		t.Fatalf("deniedTotal = %d, want 1", got)
	}

	// Attempts grow the allowance: 10 attempts × 0.5 + floor 2 = 7.
	for i := 0; i < 10; i++ {
		rb.noteAttempt()
	}
	granted := 0
	for rb.allowRetry() {
		granted++
		if granted > 20 {
			t.Fatal("budget never exhausted")
		}
	}
	if granted != 5 { // 7 allowed total, 2 already spent
		t.Fatalf("granted %d more retries, want 5", granted)
	}
}

func TestRetryBudgetWindowRolls(t *testing.T) {
	rb := newRetryBudget(0.5, 1, 10*time.Millisecond)
	if !rb.allowRetry() {
		t.Fatal("first retry denied")
	}
	if rb.allowRetry() {
		t.Fatal("budget not exhausted")
	}
	time.Sleep(15 * time.Millisecond)
	if !rb.allowRetry() {
		t.Fatal("budget did not refill after the window rolled")
	}
}
