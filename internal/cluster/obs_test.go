package cluster

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/serve"
)

type traceDump struct {
	Traces []struct {
		ID       string `json:"trace_id"`
		Endpoint string `json:"endpoint"`
		Status   int    `json:"status"`
		Spans    []struct {
			Name      string `json:"name"`
			DurMicros int64  `json:"dur_micros"`
			Note      string `json:"note"`
		} `json:"spans"`
	} `json:"traces"`
}

func dumpTraces(t testing.TB, base string) traceDump {
	t.Helper()
	resp, err := http.Get(base + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out traceDump
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestTraceAcrossTier is the cross-tier tracing e2e: one traced request
// at the router must leave a /debug/traces record there (scatter +
// merge spans) and a record carrying the SAME trace ID on every shard
// it scattered to, with the shard-side per-stage timings.
func TestTraceAcrossTier(t *testing.T) {
	tr := newTier(t, 3, Config{})

	const traceID = "e2e-cross-tier-1"
	body := strings.NewReader(`{"user": 2, "m": 8}`)
	req, _ := http.NewRequest("POST", tr.routerTS.URL+"/v1/recommend", body)
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceHeader, traceID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("recommend status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(obs.TraceHeader); got != traceID {
		t.Fatalf("router did not echo the trace ID: %q", got)
	}

	// Router side: the record for our ID has one shard_call span per
	// shard (the note names the shard URL) and a merge span.
	dump := dumpTraces(t, tr.routerTS.URL)
	var calls map[string]bool
	var sawMerge bool
	for _, rec := range dump.Traces {
		if rec.ID != traceID {
			continue
		}
		if rec.Endpoint != "recommend" || rec.Status != 200 {
			t.Fatalf("router trace = %+v", rec)
		}
		calls = map[string]bool{}
		for _, sp := range rec.Spans {
			switch sp.Name {
			case "shard_call":
				if strings.Contains(sp.Note, "error") {
					t.Fatalf("shard_call errored: %q", sp.Note)
				}
				calls[sp.Note] = true
			case "merge":
				sawMerge = true
				if sp.Note == "degraded" {
					t.Fatal("healthy tier produced a degraded merge")
				}
			}
		}
	}
	if calls == nil {
		t.Fatalf("router has no trace %q", traceID)
	}
	if len(calls) != len(tr.shardTS) {
		t.Fatalf("router recorded calls to %d shards, scattered to %d", len(calls), len(tr.shardTS))
	}
	if !sawMerge {
		t.Fatal("router trace has no merge span")
	}

	// Shard side: every shard the router called holds a record with the
	// same ID, carrying the rank pipeline's per-stage spans.
	for i, sts := range tr.shardTS {
		if !calls[sts.URL] {
			t.Fatalf("shard %d (%s) missing from router shard_call spans", i, sts.URL)
		}
		var found bool
		for _, rec := range dumpTraces(t, sts.URL).Traces {
			if rec.ID != traceID {
				continue
			}
			found = true
			stages := map[string]bool{}
			for _, sp := range rec.Spans {
				stages[sp.Name] = true
			}
			if !stages["score"] || !stages["filter_select"] {
				t.Fatalf("shard %d trace spans = %v, want score and filter_select", i, stages)
			}
		}
		if !found {
			t.Fatalf("shard %d has no trace %q — trace ID not propagated", i, traceID)
		}
	}
}

// TestTraceCacheHitSpan: the router's second identical request answers
// from its merge cache without scattering, and the trace says so.
func TestTraceCacheHitSpan(t *testing.T) {
	tr := newTier(t, 2, Config{CacheSize: 64})
	req := serve.RecommendRequest{User: 1, M: 5}
	if st := postJSON(t, tr.routerTS.URL+"/v1/recommend", req, nil); st != 200 {
		t.Fatalf("first status %d", st)
	}
	if st := postJSON(t, tr.routerTS.URL+"/v1/recommend", req, nil); st != 200 {
		t.Fatalf("second status %d", st)
	}
	dump := dumpTraces(t, tr.routerTS.URL)
	var hits int
	for _, rec := range dump.Traces {
		for _, sp := range rec.Spans {
			if sp.Name == "cache" && sp.Note == "hit" {
				hits++
			}
		}
	}
	if hits != 1 {
		t.Fatalf("saw %d cache-hit spans across %d traces, want 1", hits, len(dump.Traces))
	}
}

func TestRouterPrometheusExposition(t *testing.T) {
	tr := newTier(t, 2, Config{})
	if st := postJSON(t, tr.routerTS.URL+"/v1/recommend", serve.RecommendRequest{User: 4, M: 5}, nil); st != 200 {
		t.Fatalf("recommend status %d", st)
	}
	resp, err := http.Get(tr.routerTS.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.CheckExposition(strings.NewReader(string(body))); err != nil {
		t.Fatalf("router exposition fails the checker: %v", err)
	}
	text := string(body)
	for _, want := range []string{
		`ocular_endpoints_requests{endpoint="recommend"} 1`,
		"# TYPE ocular_shard_latency_latency_histogram histogram",
		"ocular_response_write_errors 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("router exposition missing %q", want)
		}
	}
	// One shard_latency histogram row per shard URL.
	for _, sts := range tr.shardTS {
		if !strings.Contains(text, `shard="`+sts.URL+`"`) {
			t.Errorf("router exposition missing shard label for %s", sts.URL)
		}
	}
}

// TestRouterMetricsJSONPercentiles pins the JSON shape the runbook
// documents: per-endpoint interpolated percentiles next to the raw
// histogram.
func TestRouterMetricsJSONPercentiles(t *testing.T) {
	tr := newTier(t, 2, Config{})
	if st := postJSON(t, tr.routerTS.URL+"/v1/recommend", serve.RecommendRequest{User: 0, M: 5}, nil); st != 200 {
		t.Fatalf("recommend status %d", st)
	}
	var out struct {
		Endpoints map[string]struct {
			Requests uint64  `json:"requests"`
			P99      float64 `json:"p99_micros"`
		} `json:"endpoints"`
		ShardLatency map[string]struct {
			Requests uint64 `json:"requests"`
		} `json:"shard_latency"`
	}
	resp, err := http.Get(tr.routerTS.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	rec := out.Endpoints["recommend"]
	if rec.Requests != 1 || rec.P99 <= 0 {
		t.Fatalf("recommend endpoint = %+v", rec)
	}
	for _, sts := range tr.shardTS {
		if out.ShardLatency[sts.URL].Requests == 0 {
			t.Errorf("shard %s has no latency observations", sts.URL)
		}
	}
}
