package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/rank"
	"repro/internal/serve"
	"repro/internal/wire"
)

// The router's side of the binary columnar transport (internal/wire):
// POST /v2/batch accepts request frames from clients, and with
// Config.ShardWire "binary" the scatter posts frames to the shards'
// /v2/shard/topm — validated exactly like the JSON partials
// (validatePartial), merged without re-marshalling. Error responses stay
// JSON on both hops; only 200s carry frames.

// binScratch pools the per-request workspace of the binary endpoints.
type binScratch struct {
	body    []byte
	req     wire.BatchRequest
	resp    wire.BatchResponse
	spec    serve.FilterSpec
	exclude []int
	status  []uint8
	cols    rank.BatchCols
	res     []routedRes
	out     []byte
}

// routedRes carries one user's merged list from a scatter goroutine to
// the ordered column append.
type routedRes struct {
	items    []int
	scores   []float64
	cached   bool
	degraded bool
	failed   bool
}

var binScratchPool = sync.Pool{New: func() any { return new(binScratch) }}

func writeErrorCode(w http.ResponseWriter, status int, code, msg string) int {
	return writeJSON(w, status, map[string]string{"code": code, "error": msg})
}

// postShardTopMBinary is the binary-wire shard attempt: the request
// frame carries the user, the over-fetched m, the shared filters and the
// version pin; the response frame must be a single-user shard partial,
// and passes the same validation as the JSON path before it may merge.
func (rt *Router) postShardTopMBinary(ctx context.Context, sh shardRoute, req serve.ShardTopMRequest) (rank.Partial, error) {
	rt.m.shardCalls.Add(1)
	wreq := wire.BatchRequest{
		M:             uint32(req.M),
		ExpectVersion: req.ExpectVersion,
		Users:         []uint32{uint32(req.User)},
	}
	for _, e := range req.ExcludeItems {
		wreq.Exclude = append(wreq.Exclude, uint32(e))
	}
	if req.Filter != nil {
		wreq.AllowTags = req.Filter.AllowTags
		wreq.DenyTags = req.Filter.DenyTags
	}
	body, err := wire.AppendBatchRequest(nil, &wreq)
	if err != nil {
		return rank.Partial{}, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, sh.url+"/v2/shard/topm", bytes.NewReader(body))
	if err != nil {
		return rank.Partial{}, err
	}
	hreq.Header.Set("Content-Type", serve.FrameContentType)
	if dl, ok := ctx.Deadline(); ok {
		if ms := time.Until(dl).Milliseconds(); ms > 0 {
			hreq.Header.Set(serve.DeadlineHeader, strconv.FormatInt(ms, 10))
		}
	}
	if id := obs.ActiveFrom(ctx).ID(); id != "" {
		hreq.Header.Set(obs.TraceHeader, id)
	}
	resp, err := rt.cfg.HTTPClient.Do(hreq)
	if err != nil {
		return rank.Partial{}, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return rank.Partial{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return rank.Partial{}, shardHTTPError("/v2/shard/topm", resp.StatusCode, data)
	}
	var out wire.BatchResponse
	if err := wire.DecodeBatchResponse(data, &out); err != nil {
		return rank.Partial{}, fmt.Errorf("bad shard frame: %w", err)
	}
	if out.Flags&wire.FlagShardPartial == 0 {
		return rank.Partial{}, errors.New("shard frame is not marked as a partition partial")
	}
	if len(out.Counts) != 1 {
		return rank.Partial{}, fmt.Errorf("shard frame carries %d users, want 1", len(out.Counts))
	}
	if out.Status[0]&wire.StatusError != 0 {
		return rank.Partial{}, errors.New("shard frame marks the user failed")
	}
	p := rank.Partial{Items: make([]int, len(out.Items)), Scores: make([]float64, len(out.Items))}
	for n, it := range out.Items {
		p.Items[n] = int(it)
		p.Scores[n] = out.Scores[n]
	}
	if err := validatePartial(sh, p, out.ModelVersion, int(out.ShardLo), int(out.ShardHi), req.ExpectVersion); err != nil {
		return rank.Partial{}, err
	}
	return p, nil
}

// handleBatchBinary answers POST /v2/batch with the frame format,
// semantics mirroring the JSON handleBatch: shared exclusions and tag
// filters validated once, per-user scatter-gather merges through the
// same fingerprint cache and singleflight. The response header carries
// FlagRouterMerge with the route epoch in the modelVersion field; a
// degraded merge sets the user's StatusDegraded bit (never cached, as
// on the JSON path).
func (rt *Router) handleBatchBinary(w http.ResponseWriter, r *http.Request) int {
	sc := binScratchPool.Get().(*binScratch)
	defer binScratchPool.Put(sc)
	body, err := wire.AppendAll(sc.body[:0], http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes))
	sc.body = body
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return writeError(w, http.StatusBadRequest,
				fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit))
		}
		return writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
	}
	req := &sc.req
	if err := wire.DecodeBatchRequest(body, req); err != nil {
		rt.m.batchBinary.decodeRejects.Add(1)
		return writeErrorCode(w, http.StatusBadRequest, "bad_frame", err.Error())
	}
	if req.Tenant != "" || req.ExpectVersion != 0 {
		rt.m.batchBinary.decodeRejects.Add(1)
		return writeErrorCode(w, http.StatusBadRequest, "bad_frame",
			"the router serves the default path only: tenant and expect_version must be empty")
	}
	if len(req.Users) == 0 {
		return writeError(w, http.StatusBadRequest, "users must be non-empty")
	}
	if len(req.Users) > rt.cfg.MaxBatch {
		return writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d users exceeds the router cap of %d", len(req.Users), rt.cfg.MaxBatch))
	}
	m, err := rt.clampM(int(req.M))
	if err != nil {
		return writeError(w, http.StatusBadRequest, err.Error())
	}
	tbl, err := rt.loadTable()
	if err != nil {
		return rt.writeFailure(w, err)
	}
	sc.exclude = sc.exclude[:0]
	for _, e := range req.Exclude {
		i := int(e)
		if i >= tbl.items {
			return writeError(w, http.StatusBadRequest,
				fmt.Sprintf("exclude item %d out of range (%d items)", i, tbl.items))
		}
		sc.exclude = append(sc.exclude, i)
	}
	var spec *serve.FilterSpec
	if len(req.AllowTags) > 0 || len(req.DenyTags) > 0 {
		sc.spec = serve.FilterSpec{AllowTags: req.AllowTags, DenyTags: req.DenyTags}
		spec = &sc.spec
	}
	ctx, cancel := rt.requestContext(r)
	defer cancel()
	if cap(sc.res) < len(req.Users) {
		sc.res = make([]routedRes, len(req.Users))
	}
	res := sc.res[:len(req.Users)]
	serveUser := func(n int) {
		u := int(req.Users[n])
		if u < 0 || u >= tbl.users {
			res[n] = routedRes{failed: true}
			return
		}
		items, scores, cached, degraded, err := rt.recommendOne(ctx, tbl, u, m, sc.exclude, spec)
		if err != nil {
			res[n] = routedRes{failed: true}
			return
		}
		res[n] = routedRes{items: items, scores: scores, cached: cached, degraded: degraded}
	}
	if len(req.Users) == 1 {
		serveUser(0)
	} else {
		parallel.For(len(req.Users), rt.cfg.Workers, func(n int, _ *parallel.Scratch) {
			serveUser(n)
		})
	}
	status := sc.status[:0]
	cols := &sc.cols
	cols.Reset()
	for n := range res {
		b := uint8(0)
		if res[n].failed {
			b |= wire.StatusError
			cols.AppendEmpty()
		} else {
			if res[n].cached {
				b |= wire.StatusCached
			}
			if res[n].degraded {
				b |= wire.StatusDegraded
			}
			cols.Append(res[n].items, res[n].scores, res[n].cached)
		}
		status = append(status, b)
		res[n] = routedRes{}
	}
	sc.status = status
	sc.out = wire.AppendBatchResponse(sc.out[:0], &wire.BatchResponse{
		Flags:        wire.FlagRouterMerge,
		M:            uint32(m),
		ModelVersion: tbl.epoch,
		Status:       status,
		Counts:       cols.Counts,
		Items:        cols.Items,
		Scores:       cols.Scores,
	})
	rt.m.batchBinary.requests.Add(1)
	rt.m.batchBinary.users.Add(int64(len(req.Users)))
	rt.m.batchBinary.bytesOut.Add(int64(len(sc.out)))
	w.Header().Set("Content-Type", serve.FrameContentType)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(sc.out)
	return http.StatusOK
}
