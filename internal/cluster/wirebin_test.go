package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/serve"
	"repro/internal/wire"
)

func postFrame(t testing.TB, url string, req *wire.BatchRequest) (int, []byte) {
	t.Helper()
	return postRaw(t, url, mustFrame(t, req))
}

// mustFrame encodes a request the test knows to be representable.
func mustFrame(t testing.TB, req *wire.BatchRequest) []byte {
	t.Helper()
	frame, err := wire.AppendBatchRequest(nil, req)
	if err != nil {
		t.Fatalf("append request: %v", err)
	}
	return frame
}

func postRaw(t testing.TB, url string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, serve.FrameContentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// TestRouterBinaryShardWire: with Config.ShardWire "binary" the scatter
// speaks frames to the shards, and every merged list the router serves is
// still bit-identical to the single-process reference — the transport
// swap must be invisible to clients on either router surface.
func TestRouterBinaryShardWire(t *testing.T) {
	for _, nParts := range []int{2, 3} {
		t.Run(fmt.Sprintf("shards=%d", nParts), func(t *testing.T) {
			tr := newTier(t, nParts, Config{ShardWire: "binary"})
			for _, c := range compareCases {
				tr.compare(t, c.name, c.req)
			}
		})
	}
}

// TestRouterBinaryShardWireStaged: the binary scatter composes with the
// router's staged re-rank pipeline exactly like the JSON scatter.
func TestRouterBinaryShardWireStaged(t *testing.T) {
	specs := []serve.StageSpec{
		{Type: "floor", Min: 0.02},
		{Type: "boost", Delta: 0.3, Tags: []string{"rare"}},
	}
	tr := newStagedTier(t, 2, Config{ShardWire: "binary"}, specs)
	for _, c := range compareCases {
		tr.compare(t, c.name, c.req)
	}
}

// TestRouterBatchBinary: the router's own POST /v2/batch merges
// bit-identically to the reference server's JSON batch, carries the
// route epoch under FlagRouterMerge, and rejects malformed or
// out-of-contract frames with the stable bad_frame code.
func TestRouterBatchBinary(t *testing.T) {
	tr := newTier(t, 2, Config{ShardWire: "binary"})
	users := []int{0, 7, 42, 119, 3, 7} // duplicate coalesces, like JSON
	exclude := []int{2, 40}

	var ref serve.BatchResponse
	if st := postJSON(t, tr.refTS.URL+"/v1/batch", serve.BatchRequest{
		Users: users, M: 10, ExcludeItems: exclude,
	}, &ref); st != 200 {
		t.Fatalf("reference status %d", st)
	}
	wreq := wire.BatchRequest{M: 10, Exclude: []uint32{2, 40}}
	for _, u := range users {
		wreq.Users = append(wreq.Users, uint32(u))
	}
	st, data := postFrame(t, tr.routerTS.URL+"/v2/batch", &wreq)
	if st != 200 {
		t.Fatalf("router binary status %d: %s", st, data)
	}
	var bin wire.BatchResponse
	if err := wire.DecodeBatchResponse(data, &bin); err != nil {
		t.Fatal(err)
	}
	if bin.Flags&wire.FlagRouterMerge == 0 {
		t.Error("router frame misses FlagRouterMerge")
	}
	if bin.ModelVersion == 0 {
		t.Error("router frame carries no route epoch")
	}
	if len(bin.Counts) != len(ref.Results) {
		t.Fatalf("router served %d users, reference %d", len(bin.Counts), len(ref.Results))
	}
	off := 0
	for i, res := range ref.Results {
		if bin.Status[i]&(wire.StatusError|wire.StatusDegraded) != 0 {
			t.Fatalf("user slot %d: unexpected status %#x on a healthy tier", i, bin.Status[i])
		}
		n := int(bin.Counts[i])
		if n != len(res.Items) {
			t.Fatalf("user slot %d: router %d items, reference %d", i, n, len(res.Items))
		}
		for r := 0; r < n; r++ {
			if int(bin.Items[off+r]) != res.Items[r].Item {
				t.Errorf("user slot %d rank %d: router item %d, reference %d",
					i, r, bin.Items[off+r], res.Items[r].Item)
			}
			if math.Float64bits(bin.Scores[off+r]) != math.Float64bits(res.Items[r].Score) {
				t.Errorf("user slot %d rank %d: router score %v, reference %v (must be bit-identical)",
					i, r, bin.Scores[off+r], res.Items[r].Score)
			}
		}
		off += n
	}

	// Out-of-range users fail their slot, not the batch.
	st, data = postFrame(t, tr.routerTS.URL+"/v2/batch",
		&wire.BatchRequest{M: 5, Users: []uint32{0, 5000}})
	if st != 200 {
		t.Fatalf("mixed batch status %d: %s", st, data)
	}
	if err := wire.DecodeBatchResponse(data, &bin); err != nil {
		t.Fatal(err)
	}
	if bin.Status[0]&wire.StatusError != 0 || bin.Status[1]&wire.StatusError == 0 {
		t.Errorf("mixed batch status bits %v, want slot 1 failed only", bin.Status)
	}
	if bin.Counts[1] != 0 {
		t.Errorf("failed slot carries %d items", bin.Counts[1])
	}

	// Error contract: garbage and out-of-contract frames are JSON 400s
	// with the stable code, counted as decode rejects.
	badCases := [][]byte{
		[]byte("{\"users\":[1]}"),
		mustFrame(t, &wire.BatchRequest{M: 5, Users: []uint32{1}, Tenant: "acme"}),
		mustFrame(t, &wire.BatchRequest{M: 5, Users: []uint32{1}, ExpectVersion: 3}),
	}
	for i, body := range badCases {
		st, data := postRaw(t, tr.routerTS.URL+"/v2/batch", body)
		if st != http.StatusBadRequest {
			t.Fatalf("bad case %d: status %d (%s)", i, st, data)
		}
		var e struct {
			Code string `json:"code"`
		}
		if err := json.Unmarshal(data, &e); err != nil || e.Code != "bad_frame" {
			t.Errorf("bad case %d: body %s, want code bad_frame", i, data)
		}
	}
	resp, err := http.Get(tr.routerTS.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var metrics map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	bb := metrics["batch_binary"].(map[string]any)
	if got := bb["decode_rejects"].(float64); got != float64(len(badCases)) {
		t.Errorf("decode_rejects = %v, want %d", got, len(badCases))
	}
	if got := bb["requests"].(float64); got != 2 {
		t.Errorf("batch_binary.requests = %v, want 2", got)
	}
}

// TestRouterShardWireValidated: New refuses an unknown wire name.
func TestRouterShardWireValidated(t *testing.T) {
	_, err := New(Config{Shards: []string{"http://localhost:1"}, ShardWire: "protobuf"})
	if err == nil {
		t.Fatal("New accepted ShardWire \"protobuf\"")
	}
}

// BenchmarkRouterScatterGatherBinary is BenchmarkRouterScatterGather
// with the scatter speaking frames instead of JSON — the shard-hop
// transport saving under identical merge work.
func BenchmarkRouterScatterGatherBinary(b *testing.B) {
	for _, nParts := range []int{2, 4} {
		b.Run(fmt.Sprintf("shards=%d", nParts), func(b *testing.B) {
			tr := newTier(b, nParts, Config{CacheSize: -1, ShardWire: "binary"})
			body, _ := json.Marshal(serve.RecommendRequest{User: 42, M: 10})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				req := httptest.NewRequest(http.MethodPost, "/v1/recommend", bytes.NewReader(body))
				w := httptest.NewRecorder()
				tr.router.Handler().ServeHTTP(w, req)
				if w.Code != http.StatusOK {
					b.Fatalf("status %d: %s", w.Code, w.Body.Bytes())
				}
			}
		})
	}
}
