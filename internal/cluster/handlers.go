package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/rank"
	"repro/internal/serve"
)

// routerEndpointNames registers the router's instrumented endpoints.
var routerEndpointNames = []string{
	"recommend", "batch", "batch_binary", "flip", "healthz", "readyz", "metrics", "debug_traces",
}

// metrics counts the router's activity. Cache counters live in the
// shared rank.Stats (the ListCache feeds them).
type metrics struct {
	start       time.Time
	requests    expvar.Int
	errors      expvar.Int
	degraded    expvar.Int
	scatters    expvar.Int
	shardCalls  expvar.Int
	shardErrors expvar.Int
	hedges      expvar.Int
	flips       expvar.Int
	// endpoints holds one log-scale latency histogram per instrumented
	// endpoint (obs.Histogram: coherent snapshots, interpolated
	// percentiles), same shape as the serve tier's.
	endpoints map[string]*obs.Histogram
	// writeErrors counts failed response writes (client gone mid-write).
	writeErrors expvar.Int
	// Resilience counters (PR 7): hedges refused by the retry budget,
	// requests answered 504 on deadline exhaustion, and the prober's
	// activity — probes run, probes failed, shards marked down, shards
	// repaired back into rotation.
	hedgesDenied  expvar.Int
	deadline504s  expvar.Int
	probes        expvar.Int
	probeFailures expvar.Int
	marksDown     expvar.Int
	repairs       expvar.Int
	// batchBinary tracks the binary columnar transport (/v2/batch):
	// requests, summed user fan-out, frame bytes written, and frames
	// refused by the wire decoder.
	batchBinary struct {
		requests      expvar.Int
		users         expvar.Int
		bytesOut      expvar.Int
		decodeRejects expvar.Int
	}
}

func newMetrics() *metrics {
	m := &metrics{
		start:     time.Now(),
		endpoints: make(map[string]*obs.Histogram, len(routerEndpointNames)),
	}
	for _, name := range routerEndpointNames {
		m.endpoints[name] = &obs.Histogram{}
	}
	return m
}

// Handler returns the HTTP handler serving the router API: the
// single-process /v1/recommend and /v1/batch surface, plus
// /v1/admin/flip for the trainer's post-rollout table flip.
func (rt *Router) Handler() http.Handler { return rt.mux }

// BeginDrain marks the router draining: /readyz answers 503 so load
// balancers stop sending traffic, while the data path keeps serving
// until the HTTP server is shut down.
func (rt *Router) BeginDrain() { rt.draining.Store(true) }

// Gate exposes the admission controller (nil when disabled), for tests
// asserting the in-flight bound.
func (rt *Router) Gate() *serve.Gate { return rt.gate }

func (rt *Router) buildMux() *http.ServeMux {
	// The data path sits behind the admission gate (nil gate = no-op);
	// flip, health, readiness and metrics are never shed.
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/recommend", rt.instrument("recommend", rt.gate.Wrap(rt.handleRecommend)))
	mux.HandleFunc("POST /v1/batch", rt.instrument("batch", rt.gate.Wrap(rt.handleBatch)))
	mux.HandleFunc("POST /v2/batch", rt.instrument("batch_binary", rt.gate.Wrap(rt.handleBatchBinary)))
	mux.HandleFunc("POST /v1/admin/flip", rt.instrument("flip", rt.handleFlip))
	mux.HandleFunc("GET /healthz", rt.instrument("healthz", rt.handleHealthz))
	mux.HandleFunc("GET /readyz", rt.instrument("readyz", rt.handleReadyz))
	mux.HandleFunc("GET /metrics", rt.instrument("metrics", rt.handleMetrics))
	mux.HandleFunc("GET /debug/traces", rt.instrument("debug_traces", rt.handleDebugTraces))
	return mux
}

// routerUntraced mirrors the serve tier's policy: probes and scrapes
// never occupy the trace ring.
var routerUntraced = map[string]bool{
	"healthz": true, "readyz": true, "metrics": true, "debug_traces": true,
}

// countingWriter counts failed response writes, once per request.
type countingWriter struct {
	http.ResponseWriter
	errs   *expvar.Int
	failed bool
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.ResponseWriter.Write(p)
	if err != nil && !cw.failed {
		cw.failed = true
		cw.errs.Add(1)
	}
	return n, err
}

// instrument wraps a router handler with the request/error counters,
// the endpoint's latency histogram, failed-write counting, and — on
// the data endpoints — request tracing: the edge mints (or adopts) the
// trace ID, echoes it, and propagates it to every shard call.
func (rt *Router) instrument(name string, h func(w http.ResponseWriter, r *http.Request) int) http.HandlerFunc {
	em := rt.m.endpoints[name]
	traced := !routerUntraced[name]
	return func(w http.ResponseWriter, r *http.Request) {
		rt.m.requests.Add(1)
		var act *obs.Active
		if traced {
			if act = rt.tracer.Start(name, r.Header.Get(obs.TraceHeader)); act != nil {
				r = r.WithContext(obs.WithActive(r.Context(), act))
				w.Header().Set(obs.TraceHeader, act.ID())
			}
		}
		cw := &countingWriter{ResponseWriter: w, errs: &rt.m.writeErrors}
		start := time.Now()
		status := http.StatusInternalServerError
		defer func() {
			em.Observe(time.Since(start), status >= 400)
			rt.tracer.Finish(act, status)
			if status >= 400 {
				rt.m.errors.Add(1)
			}
		}()
		status = h(cw, r)
	}
}

// handleDebugTraces serves the recent-traces ring, oldest first (empty
// when tracing is disabled).
func (rt *Router) handleDebugTraces(w http.ResponseWriter, r *http.Request) int {
	return writeJSON(w, http.StatusOK, map[string]any{"traces": rt.tracer.Traces()})
}

// decode mirrors serve.Server's body handling: size cap, unknown fields
// rejected, exactly one JSON value.
func (rt *Router) decode(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit)
		}
		return fmt.Errorf("bad request body: %v", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit)
		}
		return errors.New("request body must be a single JSON value (trailing data rejected)")
	}
	return nil
}

func (rt *Router) clampM(m int) (int, error) {
	switch {
	case m == 0:
		if rt.cfg.MaxM < 10 {
			return rt.cfg.MaxM, nil
		}
		return 10, nil
	case m < 0:
		return 0, fmt.Errorf("m must be positive, got %d", m)
	case m > rt.cfg.MaxM:
		return 0, fmt.Errorf("m=%d exceeds the router cap of %d", m, rt.cfg.MaxM)
	}
	return m, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
	return status
}

func writeError(w http.ResponseWriter, status int, msg string) int {
	return writeJSON(w, status, map[string]string{"error": msg})
}

// loadTable returns the current route table, or a 503 requestError
// before the first successful Refresh.
func (rt *Router) loadTable() (*routeTable, error) {
	tbl := rt.table.Load()
	if tbl == nil {
		return nil, &requestError{status: http.StatusServiceUnavailable,
			msg: "no route table yet (waiting for the first successful shard refresh)"}
	}
	return tbl, nil
}

// validate checks user and exclusion ids against the route table's
// catalogue, mirroring the single-process server's rejections.
func (tbl *routeTable) validate(user int, exclude []int) error {
	if user < 0 || user >= tbl.users {
		return fmt.Errorf("user %d out of range (%d users)", user, tbl.users)
	}
	for _, i := range exclude {
		if i < 0 || i >= tbl.items {
			return fmt.Errorf("exclude item %d out of range (%d items)", i, tbl.items)
		}
	}
	return nil
}

// RecommendResponse is the router's answer to /v1/recommend: the same
// ranked list a single process serving the full model would return,
// tagged with the route epoch it was merged under. Degraded marks a
// merge assembled from surviving shards only (Config.AllowDegraded);
// degraded lists are never cached.
type RecommendResponse struct {
	User       int                `json:"user"`
	Items      []serve.ScoredItem `json:"items"`
	Cached     bool               `json:"cached"`
	RouteEpoch uint64             `json:"route_epoch"`
	Degraded   bool               `json:"degraded,omitempty"`
}

func (rt *Router) handleRecommend(w http.ResponseWriter, r *http.Request) int {
	var req serve.RecommendRequest
	if err := rt.decode(w, r, &req); err != nil {
		return writeError(w, http.StatusBadRequest, err.Error())
	}
	m, err := rt.clampM(req.M)
	if err != nil {
		return writeError(w, http.StatusBadRequest, err.Error())
	}
	tbl, err := rt.loadTable()
	if err != nil {
		return rt.writeFailure(w, err)
	}
	if err := tbl.validate(req.User, req.ExcludeItems); err != nil {
		return writeError(w, http.StatusBadRequest, err.Error())
	}
	ctx, cancel := rt.requestContext(r)
	defer cancel()
	items, scores, cached, degraded, err := rt.recommendOne(ctx, tbl, req.User, m, req.ExcludeItems, req.Filter)
	if err != nil {
		return rt.writeFailure(w, err)
	}
	scored := make([]serve.ScoredItem, len(items))
	for n := range items {
		scored[n] = serve.ScoredItem{Item: items[n], Score: scores[n]}
	}
	return writeJSON(w, http.StatusOK, RecommendResponse{
		User:       req.User,
		Items:      scored,
		Cached:     cached,
		RouteEpoch: tbl.epoch,
		Degraded:   degraded,
	})
}

// requestContext derives the scatter context for one router request:
// the client's context, bounded by Config.RequestTimeout when set — the
// end-to-end deadline every shard attempt (and its propagated budget
// header) inherits.
func (rt *Router) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	if rt.cfg.RequestTimeout > 0 {
		return context.WithTimeout(r.Context(), rt.cfg.RequestTimeout)
	}
	return r.Context(), func() {}
}

// writeFailure maps a scatter-path error to its HTTP shape: validation
// rejections keep their status, deadline exhaustion is a 504 with a
// structured body (the tier was too slow, distinct from the tier being
// broken), everything else — shard outages, version conflicts — is a 502
// (the tier behind the router failed).
func (rt *Router) writeFailure(w http.ResponseWriter, err error) int {
	var reqErr *requestError
	if errors.As(err, &reqErr) {
		return writeError(w, reqErr.status, reqErr.msg)
	}
	if errors.Is(err, context.DeadlineExceeded) {
		rt.m.deadline504s.Add(1)
		return writeJSON(w, http.StatusGatewayTimeout, map[string]string{
			"error": err.Error(),
			"code":  "deadline_exceeded",
		})
	}
	return writeError(w, http.StatusBadGateway, err.Error())
}

// recommendOne serves one user's merged list through the fingerprint
// cache. Validation must have happened; m must be clamped; ctx carries
// the request's end-to-end deadline (requestContext).
//
// With Config.Stages set, each shard is asked for the over-fetched
// length rank.StagesOverFetch(m, stages) and the pipeline runs exactly
// once, on the merged list — the same candidate pool and the same
// arithmetic as a single staged process, so the staged tier stays
// bit-identical to single-process staged serving.
func (rt *Router) recommendOne(ctx context.Context, tbl *routeTable, user, m int, exclude []int, spec *serve.FilterSpec) (items []int, scores []float64, cached, degraded bool, err error) {
	stages := rt.cfg.Stages
	act := obs.ActiveFrom(ctx)
	shardReq := serve.ShardTopMRequest{User: user, M: rank.StagesOverFetch(m, stages), ExcludeItems: exclude, Filter: spec}
	compute := func() ([]int, []float64, bool, error) {
		parts, err := rt.scatter(ctx, tbl, shardReq)
		if err != nil {
			var reqErr *requestError
			if errors.As(err, &reqErr) || !rt.cfg.AllowDegraded {
				return nil, nil, false, err
			}
			survivors := parts[:0:0]
			for _, p := range parts {
				if p != nil {
					survivors = append(survivors, p)
				}
			}
			if len(survivors) == 0 {
				return nil, nil, false, err
			}
			// Degraded merge: serve what survived, mark it, and keep it
			// out of the cache and away from coalesced waiters — a
			// truncated list must never outlive the outage that caused it.
			degraded = true
			rt.m.degraded.Add(1)
			flat := make([]rank.Partial, len(survivors))
			for n, p := range survivors {
				flat[n] = *p
			}
			mstart := time.Now()
			items, scores := rank.MergeTopMStaged(m, stages, flat...)
			act.Record("merge", mstart, time.Since(mstart), "degraded")
			return items, scores, false, nil
		}
		flat := make([]rank.Partial, len(parts))
		for n, p := range parts {
			flat[n] = *p
		}
		mstart := time.Now()
		items, scores := rank.MergeTopMStaged(m, stages, flat...)
		act.Record("merge", mstart, time.Since(mstart), "")
		return items, scores, true, nil
	}
	fp, cacheable := fingerprintFor(tbl.epoch, exclude, spec, stages)
	if !cacheable {
		items, scores, _, err = compute()
		return items, scores, false, degraded, err
	}
	cstart := time.Now()
	items, scores, cached, err = rt.cache.GetOrCompute(user, m, fp, compute)
	if cached {
		act.Record("cache", cstart, time.Since(cstart), "hit")
	}
	return items, scores, cached, degraded, err
}

// BatchResult is one user's slot in a router batch response.
type BatchResult struct {
	User     int                `json:"user"`
	Items    []serve.ScoredItem `json:"items,omitempty"`
	Cached   bool               `json:"cached,omitempty"`
	Degraded bool               `json:"degraded,omitempty"`
	Error    string             `json:"error,omitempty"`
}

// BatchResponse carries one result per requested user, in request order.
type BatchResponse struct {
	Results    []BatchResult `json:"results"`
	RouteEpoch uint64        `json:"route_epoch"`
}

func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) int {
	var req serve.BatchRequest
	if err := rt.decode(w, r, &req); err != nil {
		return writeError(w, http.StatusBadRequest, err.Error())
	}
	if len(req.Users) == 0 {
		return writeError(w, http.StatusBadRequest, "users must be non-empty")
	}
	if len(req.Users) > rt.cfg.MaxBatch {
		return writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d users exceeds the router cap of %d", len(req.Users), rt.cfg.MaxBatch))
	}
	m, err := rt.clampM(req.M)
	if err != nil {
		return writeError(w, http.StatusBadRequest, err.Error())
	}
	tbl, err := rt.loadTable()
	if err != nil {
		return rt.writeFailure(w, err)
	}
	for _, i := range req.ExcludeItems {
		if i < 0 || i >= tbl.items {
			return writeError(w, http.StatusBadRequest,
				fmt.Sprintf("exclude item %d out of range (%d items)", i, tbl.items))
		}
	}
	ctx, cancel := rt.requestContext(r)
	defer cancel()
	results := make([]BatchResult, len(req.Users))
	serveUser := func(n int) {
		u := req.Users[n]
		if u < 0 || u >= tbl.users {
			results[n] = BatchResult{User: u, Error: fmt.Sprintf("user %d out of range (%d users)", u, tbl.users)}
			return
		}
		items, scores, cached, degraded, err := rt.recommendOne(ctx, tbl, u, m, req.ExcludeItems, req.Filter)
		if err != nil {
			results[n] = BatchResult{User: u, Error: err.Error()}
			return
		}
		scored := make([]serve.ScoredItem, len(items))
		for i := range items {
			scored[i] = serve.ScoredItem{Item: items[i], Score: scores[i]}
		}
		results[n] = BatchResult{User: u, Items: scored, Cached: cached, Degraded: degraded}
	}
	if len(req.Users) == 1 {
		serveUser(0)
	} else {
		parallel.For(len(req.Users), rt.cfg.Workers, func(n int, _ *parallel.Scratch) {
			serveUser(n)
		})
	}
	return writeJSON(w, http.StatusOK, BatchResponse{Results: results, RouteEpoch: tbl.epoch})
}

// ShardStatus is one shard's row in flip and health responses.
type ShardStatus struct {
	URL     string `json:"url"`
	Version uint64 `json:"model_version"`
	Lo      int    `json:"shard_lo"`
	Hi      int    `json:"shard_hi"`
}

// FlipResponse reports the route table installed by /v1/admin/flip.
type FlipResponse struct {
	Epoch  uint64        `json:"epoch"`
	Users  int           `json:"users"`
	Items  int           `json:"items"`
	Shards []ShardStatus `json:"shards"`
}

func (rt *Router) handleFlip(w http.ResponseWriter, r *http.Request) int {
	// No parameters, but the body is still drained under the cap (see the
	// same guard on serve's /v1/reload).
	if _, err := io.Copy(io.Discard, http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes)); err != nil {
		return writeError(w, http.StatusBadRequest,
			fmt.Sprintf("request body exceeds %d bytes", rt.cfg.MaxBodyBytes))
	}
	if _, err := rt.Refresh(r.Context()); err != nil {
		// The old table — if any — keeps serving; a failed flip changes
		// nothing.
		return writeError(w, http.StatusBadGateway, err.Error())
	}
	tbl := rt.table.Load()
	return writeJSON(w, http.StatusOK, FlipResponse{
		Epoch:  tbl.epoch,
		Users:  tbl.users,
		Items:  tbl.items,
		Shards: tbl.statuses(),
	})
}

func (tbl *routeTable) statuses() []ShardStatus {
	out := make([]ShardStatus, len(tbl.shards))
	for n, s := range tbl.shards {
		out[n] = ShardStatus{URL: s.url, Version: s.version, Lo: s.lo, Hi: s.hi}
	}
	return out
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) int {
	tbl := rt.table.Load()
	if tbl == nil {
		return writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status":        "no_route_table",
			"shards":        rt.cfg.Shards,
			"shards_health": rt.healthRows(),
		})
	}
	return writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"epoch":          tbl.epoch,
		"users":          tbl.users,
		"items":          tbl.items,
		"shards":         tbl.statuses(),
		"shards_health":  rt.healthRows(),
		"allow_degraded": rt.cfg.AllowDegraded,
	})
}

// handleReadyz is the router's readiness probe: 503 until the first
// successful refresh installs a route table, and again during graceful
// drain — distinct from /healthz, which reports state without gating
// traffic.
func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) int {
	if rt.draining.Load() {
		return writeJSON(w, http.StatusServiceUnavailable,
			map[string]any{"ready": false, "reason": "draining"})
	}
	tbl := rt.table.Load()
	if tbl == nil {
		return writeJSON(w, http.StatusServiceUnavailable,
			map[string]any{"ready": false, "reason": "no route table yet"})
	}
	return writeJSON(w, http.StatusOK, map[string]any{"ready": true, "epoch": tbl.epoch})
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) int {
	eps := make(map[string]map[string]any, len(rt.m.endpoints))
	for name, h := range rt.m.endpoints {
		eps[name] = obs.EndpointSnapshot(h)
	}
	shardLat := make(map[string]map[string]any, len(rt.shardLat))
	for url, h := range rt.shardLat {
		shardLat[url] = obs.EndpointSnapshot(h)
	}
	out := map[string]any{
		"uptime_seconds":        time.Since(rt.m.start).Seconds(),
		"requests":              rt.m.requests.Value(),
		"errors":                rt.m.errors.Value(),
		"response_write_errors": rt.m.writeErrors.Value(),
		"degraded":              rt.m.degraded.Value(),
		"scatters":              rt.m.scatters.Value(),
		"shard_calls":           rt.m.shardCalls.Value(),
		"shard_errors":          rt.m.shardErrors.Value(),
		"hedges":                rt.m.hedges.Value(),
		"hedges_denied":         rt.m.hedgesDenied.Value(),
		"deadline_504s":         rt.m.deadline504s.Value(),
		"table_flips":           rt.m.flips.Value(),
		"endpoints":             obs.Labeled{Label: "endpoint", Rows: eps},
		// shard_latency observes whole callShard calls (hedges included)
		// per shard URL — the per-shard view that pinpoints a slow or
		// flapping partition.
		"shard_latency": obs.Labeled{Label: "shard", Rows: shardLat},
		"prober": map[string]any{
			"probes":     rt.m.probes.Value(),
			"failures":   rt.m.probeFailures.Value(),
			"marks_down": rt.m.marksDown.Value(),
			"repairs":    rt.m.repairs.Value(),
		},
		"shards_health": obs.LabeledList{Label: "shard", Key: "url", Rows: rt.healthRows()},
		"batch_binary": map[string]any{
			"requests":       rt.m.batchBinary.requests.Value(),
			"users":          rt.m.batchBinary.users.Value(),
			"bytes_out":      rt.m.batchBinary.bytesOut.Value(),
			"decode_rejects": rt.m.batchBinary.decodeRejects.Value(),
		},
		"cache": map[string]any{
			"hits":      rt.stats.Hits(),
			"misses":    rt.stats.Misses(),
			"coalesced": rt.stats.Coalesced(),
			"merged":    rt.stats.Ranked(),
			"entries":   rt.cache.Len(),
		},
	}
	if rb := rt.budget; rb != nil {
		out["retry_budget_denied"] = rb.deniedTotal()
	}
	if adm := rt.gate.Snapshot(); adm != nil {
		out["admission"] = adm
	}
	if tbl := rt.table.Load(); tbl != nil {
		out["epoch"] = tbl.epoch
	}
	// Same snapshot tree behind both views — they can never disagree.
	if r.URL.Query().Get("format") == "prometheus" {
		return obs.WriteExposition(w, out)
	}
	return writeJSON(w, http.StatusOK, out)
}
