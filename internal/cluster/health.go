package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"
)

// shardHealthState is one shard's slot in the mutable health overlay the
// prober maintains over the immutable route table: route tables flip
// wholesale on rollout, but a shard's up/down state changes on its own
// clock. A down shard is skipped by the scatter (degraded merge or
// fail-closed, per policy) without burning a timeout or a breaker trial.
type shardHealthState struct {
	down atomic.Bool
	// downSince/lastErr are best-effort operator context for /healthz,
	// written only by the prober goroutine.
	downSince atomic.Int64 // unix nanos; 0 when up
	lastErr   atomic.Pointer[string]
}

// readyState is the subset of a shard's /readyz the prober routes by.
type readyState struct {
	Ready        bool   `json:"ready"`
	Reason       string `json:"reason"`
	ModelVersion uint64 `json:"model_version"`
	PrevVersion  uint64 `json:"prev_version"`
}

// healthFor returns the overlay slot of a shard URL; the map is built at
// construction and never mutated, so lookups are lock-free.
func (rt *Router) healthFor(url string) *shardHealthState {
	return rt.health[url]
}

// StartProber launches the background health prober: every
// Config.ProbeInterval it hits each shard's /readyz and flips the health
// overlay — an unready (or unreachable, or version-skewed) shard is
// marked down, and a recovered shard whose version history still covers
// the route table's pin is returned to rotation automatically. The
// prober stops when ctx is cancelled. It never touches the circuit
// breakers: a breaker heals through its own half-open trial on the data
// path, so a shard whose /readyz answers but whose scoring path hangs
// stays tripped.
func (rt *Router) StartProber(ctx context.Context) {
	go func() {
		rt.probeAll(ctx)
		ticker := time.NewTicker(rt.cfg.ProbeInterval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				rt.probeAll(ctx)
			}
		}
	}()
}

func (rt *Router) probeAll(ctx context.Context) {
	tbl := rt.table.Load()
	for _, u := range rt.cfg.Shards {
		var pin uint64
		if tbl != nil {
			for _, s := range tbl.shards {
				if s.url == u {
					pin = s.version
					break
				}
			}
		}
		rt.probeOne(ctx, u, pin)
	}
}

// probeOne probes one shard and updates its overlay slot. pin is the
// model version the current route table expects from it (0 when no
// table yet — then plain readiness decides).
func (rt *Router) probeOne(ctx context.Context, url string, pin uint64) {
	hs := rt.healthFor(url)
	if hs == nil {
		return
	}
	rt.m.probes.Add(1)
	st, err := rt.probeReadyz(ctx, url)
	healthy := err == nil && st.Ready
	if healthy && pin != 0 && st.ModelVersion != pin && st.PrevVersion != pin {
		// Ready but unable to serve the pinned version: every data call
		// would 409. Out of rotation until the next table flip (or until
		// the shard's history covers the pin again).
		healthy = false
		err = fmt.Errorf("version skew: shard serves %d (prev %d), table pins %d",
			st.ModelVersion, st.PrevVersion, pin)
	}
	if healthy {
		if hs.down.CompareAndSwap(true, false) {
			hs.downSince.Store(0)
			rt.m.repairs.Add(1)
			rt.cfg.Logf("prober: shard %s recovered, back in rotation", url)
		}
		return
	}
	rt.m.probeFailures.Add(1)
	reason := "not ready"
	if err != nil {
		reason = err.Error()
	} else if st.Reason != "" {
		reason = st.Reason
	}
	hs.lastErr.Store(&reason)
	if hs.down.CompareAndSwap(false, true) {
		hs.downSince.Store(time.Now().UnixNano())
		rt.m.marksDown.Add(1)
		rt.cfg.Logf("prober: shard %s marked down: %s", url, reason)
	}
}

// probeReadyz reads one shard's /readyz under the per-attempt timeout.
// A 503 with a parseable body is a successful probe of an unready shard,
// not a probe error.
func (rt *Router) probeReadyz(ctx context.Context, base string) (readyState, error) {
	var st readyState
	pctx, cancel := context.WithTimeout(ctx, rt.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, base+"/readyz", nil)
	if err != nil {
		return st, err
	}
	resp, err := rt.cfg.HTTPClient.Do(req)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return st, err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return st, fmt.Errorf("/readyz: HTTP %d", resp.StatusCode)
	}
	if err := json.Unmarshal(data, &st); err != nil {
		return st, fmt.Errorf("/readyz: %w", err)
	}
	return st, nil
}

// healthRows renders the overlay (and breakers) per shard for /healthz
// and /metrics.
func (rt *Router) healthRows() []map[string]any {
	rows := make([]map[string]any, 0, len(rt.cfg.Shards))
	for _, u := range rt.cfg.Shards {
		row := map[string]any{"url": u}
		if hs := rt.healthFor(u); hs != nil {
			down := hs.down.Load()
			row["down"] = down
			if down {
				if ns := hs.downSince.Load(); ns != 0 {
					row["down_since"] = time.Unix(0, ns).UTC().Format(time.RFC3339)
				}
				if msg := hs.lastErr.Load(); msg != nil {
					row["last_error"] = *msg
				}
			}
		}
		if b := rt.breakers[u]; b != nil {
			row["breaker"] = b.snapshot()
		}
		rows = append(rows, row)
	}
	return rows
}
