package cluster

import (
	"sync"
	"time"
)

// Breaker states. A breaker guards one shard: closed passes traffic and
// counts consecutive failures; open fails fast without burning a timeout
// on a shard already known sick; half-open lets exactly one trial
// request through after the cooldown to decide between closing and
// re-opening.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

var breakerStateNames = [...]string{"closed", "open", "half-open"}

// breaker is one shard's circuit breaker. Only failures that indicate a
// sick shard should be reported to it — deterministic 4xx rejections and
// rollout-window version conflicts are the caller's to exclude (see
// countsAgainstBreaker). All methods are safe for concurrent use.
type breaker struct {
	threshold int // consecutive failures that trip closed → open
	cooldown  time.Duration

	mu            sync.Mutex
	state         int
	consecutive   int       // consecutive counted failures while closed
	openedAt      time.Time // when the breaker last tripped
	trialInFlight bool      // a half-open trial is out; hold other traffic

	// Transition and fast-fail counters, read by /metrics and /healthz.
	opens, closes, fastFails int64
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// tryAcquire asks whether a call to the shard may proceed. trial marks
// the call as the half-open probe: its outcome alone decides whether the
// breaker closes, and while it is in flight every other call fails fast.
func (b *breaker) tryAcquire() (proceed, trial bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, false
	case breakerOpen:
		if time.Since(b.openedAt) < b.cooldown {
			b.fastFails++
			return false, false
		}
		b.state = breakerHalfOpen
		b.trialInFlight = true
		return true, true
	default: // half-open
		if b.trialInFlight {
			b.fastFails++
			return false, false
		}
		b.trialInFlight = true
		return true, true
	}
}

// onResult reports the outcome of a call admitted by tryAcquire. Stale
// results cannot corrupt the state machine: a non-trial success never
// closes an open or half-open breaker (it may be a straggler launched
// before the trip), and a non-trial failure never re-trips one (the trip
// already happened; only the trial's outcome decides what comes next).
func (b *breaker) onResult(ok, trial bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if trial {
		b.trialInFlight = false
	}
	if ok {
		switch {
		case trial:
			b.state = breakerClosed
			b.consecutive = 0
			b.closes++
		case b.state == breakerClosed:
			b.consecutive = 0
		}
		return
	}
	switch b.state {
	case breakerHalfOpen:
		if trial {
			b.state = breakerOpen
			b.openedAt = time.Now()
			b.opens++
		}
	case breakerClosed:
		b.consecutive++
		if b.consecutive >= b.threshold {
			b.state = breakerOpen
			b.openedAt = time.Now()
			b.opens++
			b.consecutive = 0
		}
	}
}

// abandon reports that an admitted call ended without a verdict on the
// shard (the caller went away, or the failure was one that never counts)
// — a trial is released so the next call can run a fresh one, and no
// state changes.
func (b *breaker) abandon(trial bool) {
	if !trial {
		return
	}
	b.mu.Lock()
	b.trialInFlight = false
	b.mu.Unlock()
}

func (b *breaker) stateName() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return breakerStateNames[b.state]
}

// snapshot renders the breaker for /metrics and /healthz.
func (b *breaker) snapshot() map[string]any {
	b.mu.Lock()
	defer b.mu.Unlock()
	return map[string]any{
		"state":      breakerStateNames[b.state],
		"opens":      b.opens,
		"closes":     b.closes,
		"fast_fails": b.fastFails,
	}
}

// retryBudget bounds hedged retries to a fraction of primary attempts
// per window, with a small floor so low-traffic routers can still hedge.
// Without it, a cluster where every shard is slow would see the router
// double its own load exactly when capacity is scarcest — the retry
// storm that turns a brownout into an outage.
type retryBudget struct {
	ratio  float64 // retries allowed per primary attempt
	min    int     // retries always allowed per window
	window time.Duration

	mu          sync.Mutex
	windowStart time.Time
	attempts    int
	retries     int
	denied      int64 // cumulative, across windows
}

func newRetryBudget(ratio float64, min int, window time.Duration) *retryBudget {
	return &retryBudget{ratio: ratio, min: min, window: window}
}

// roll resets the window counters when the window has elapsed. Callers
// hold mu.
func (rb *retryBudget) roll() {
	if now := time.Now(); now.Sub(rb.windowStart) >= rb.window {
		rb.windowStart = now
		rb.attempts = 0
		rb.retries = 0
	}
}

// noteAttempt records one primary (non-hedge) shard attempt, growing the
// window's retry allowance.
func (rb *retryBudget) noteAttempt() {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	rb.roll()
	rb.attempts++
}

// allowRetry reports whether one more hedge fits the window's budget,
// consuming it when it does.
func (rb *retryBudget) allowRetry() bool {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	rb.roll()
	if allowed := rb.min + int(rb.ratio*float64(rb.attempts)); rb.retries >= allowed {
		rb.denied++
		return false
	}
	rb.retries++
	return true
}

// deniedTotal returns how many hedges the budget has refused.
func (rb *retryBudget) deniedTotal() int64 {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	return rb.denied
}
