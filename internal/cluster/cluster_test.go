package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/rank"
	"repro/internal/serve"
	"repro/internal/sparse"
)

var testTrainCfg = core.Config{K: 6, Lambda: 2, MaxIter: 40, Seed: 3}

// tier is a full sharded deployment on httptest listeners: a reference
// single-process server over the whole model, nParts shard servers
// partitioning its catalogue, and a Router in front of the shards. The
// reference and the shards serve the same model file, so the router's
// merges must be bit-identical to the reference's lists.
type tier struct {
	modelPath string
	train     *sparse.Matrix
	ref       *serve.Server
	refTS     *httptest.Server
	shards    []*serve.Server
	shardTS   []*httptest.Server
	router    *Router
	routerTS  *httptest.Server
}

// testItemTags tags the synthetic catalogue: "even" marks even items,
// "low" the first half, "rare" items 1 and numItems-1 — the same shape
// the serve-layer filter tests use.
func testItemTags(t testing.TB, numItems int) *rank.TagTable {
	t.Helper()
	var b strings.Builder
	for i := 0; i < numItems; i++ {
		fmt.Fprintf(&b, "%d,item-%d", i, i)
		if i%2 == 0 {
			b.WriteString(",even")
		}
		if i < numItems/2 {
			b.WriteString(",low")
		}
		if i == 1 || i == numItems-1 {
			b.WriteString(",rare")
		}
		b.WriteByte('\n')
	}
	tab, err := rank.LoadTagTable(strings.NewReader(b.String()), numItems)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func trainAndSave(t testing.TB, train *sparse.Matrix, seed uint64, path string) *core.Model {
	t.Helper()
	cfg := testTrainCfg
	cfg.Seed = seed
	res, err := core.Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Model.SaveModelFileOpts(path, core.SaveOptions{Float32: true}); err != nil {
		t.Fatal(err)
	}
	return res.Model
}

func newTier(t testing.TB, nParts int, cfg Config) *tier {
	return newStagedTier(t, nParts, cfg, nil)
}

// newStagedTier is newTier with a staged re-rank pipeline on both sides
// of the comparison: the reference server re-ranks through
// serve.Config.Stages, the router through Config.Stages built from the
// same specs, tag table and model artifact — exactly the wiring
// cmd/ocular-router's -stages/-model/-items-meta flags perform. The
// shards stay stage-less either way (they serve raw partials).
func newStagedTier(t testing.TB, nParts int, cfg Config, specs []serve.StageSpec) *tier {
	t.Helper()
	tr := &tier{train: dataset.SyntheticSmall(1).Dataset.R}
	tr.modelPath = filepath.Join(t.TempDir(), "model.bin")
	model := trainAndSave(t, tr.train, 3, tr.modelPath)
	tags := testItemTags(t, model.NumItems())
	if len(specs) > 0 {
		stages, err := serve.BuildStages(specs, tags, model)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Stages = stages
	}

	ref, err := serve.NewFromFile(serve.Config{
		ModelPath: tr.modelPath, Train: tr.train, ItemTags: tags, Stages: specs,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr.ref = ref
	tr.refTS = httptest.NewServer(ref.Handler())
	t.Cleanup(tr.refTS.Close)

	items := model.NumItems()
	for p := 0; p < nParts; p++ {
		lo, hi := p*items/nParts, (p+1)*items/nParts
		if p == nParts-1 {
			hi = -1
		}
		srv, err := serve.NewShardFromFile(serve.Config{
			ModelPath: tr.modelPath, Train: tr.train, ItemTags: tags, ShardLo: lo, ShardHi: hi,
		})
		if err != nil {
			t.Fatalf("shard %d [%d,%d): %v", p, lo, hi, err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		tr.shards = append(tr.shards, srv)
		tr.shardTS = append(tr.shardTS, ts)
		cfg.Shards = append(cfg.Shards, ts.URL)
	}

	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	tr.router = rt
	tr.routerTS = httptest.NewServer(rt.Handler())
	t.Cleanup(tr.routerTS.Close)
	return tr
}

func postJSON(t testing.TB, url string, body, out any) int {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: decoding: %v", url, err)
		}
	}
	return resp.StatusCode
}

// sameLists fails unless the router's list equals the reference's —
// same items, same float64 score bits, same length.
func sameLists(t testing.TB, label string, got []serve.ScoredItem, want []serve.ScoredItem) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: router merged %d items, reference served %d", label, len(got), len(want))
	}
	for n := range want {
		if got[n].Item != want[n].Item {
			t.Errorf("%s rank %d: router item %d, reference %d", label, n, got[n].Item, want[n].Item)
		}
		if got[n].Score != want[n].Score {
			t.Errorf("%s rank %d: router score %v, reference %v (must be bit-identical)",
				label, n, got[n].Score, want[n].Score)
		}
	}
}

// compare runs one request against both the router and the reference and
// requires bit-identical answers.
func (tr *tier) compare(t testing.TB, label string, req serve.RecommendRequest) {
	t.Helper()
	var want serve.RecommendResponse
	if st := postJSON(t, tr.refTS.URL+"/v1/recommend", req, &want); st != 200 {
		t.Fatalf("%s: reference status %d", label, st)
	}
	var got RecommendResponse
	if st := postJSON(t, tr.routerTS.URL+"/v1/recommend", req, &got); st != 200 {
		t.Fatalf("%s: router status %d", label, st)
	}
	if got.Degraded {
		t.Fatalf("%s: healthy tier answered degraded", label)
	}
	sameLists(t, label, got.Items, want.Items)
}

var compareCases = []struct {
	name string
	req  serve.RecommendRequest
}{
	{"plain", serve.RecommendRequest{User: 0, M: 10}},
	{"m1", serve.RecommendRequest{User: 7, M: 1}},
	{"deep", serve.RecommendRequest{User: 42, M: 25}},
	{"exclude", serve.RecommendRequest{User: 119, M: 10, ExcludeItems: []int{0, 3, 17, 40, 41, 59}}},
	{"overlong", serve.RecommendRequest{User: 3, M: 1000}},
	{"filtered", serve.RecommendRequest{User: 11, M: 8,
		Filter: &serve.FilterSpec{AllowTags: []string{"low", "even"}, DenyTags: []string{"rare"}}}},
	{"exclude+filter", serve.RecommendRequest{User: 64, M: 12, ExcludeItems: []int{2, 4},
		Filter: &serve.FilterSpec{DenyTags: []string{"even"}}}},
}

// TestRouterBitIdenticalAcrossRollout is the subsystem's acceptance
// test: the router's merged lists are bit-identical (items AND scores)
// to a single process serving the full model — across shard counts,
// exclusion lists and tag filters, and across a mid-test quorum rollout:
// after the shards reload a new model the router still serves the OLD
// version bit-identically (pinned requests, snapshot history) until the
// table flips, after which it serves the NEW version bit-identically.
func TestRouterBitIdenticalAcrossRollout(t *testing.T) {
	for _, nParts := range []int{2, 3} {
		t.Run(fmt.Sprintf("shards=%d", nParts), func(t *testing.T) {
			tr := newTier(t, nParts, Config{})
			for _, c := range compareCases {
				tr.compare(t, c.name, c.req)
			}

			// Quorum rollout, step 1: a new model lands and every shard
			// reloads. The route table still pins version 1, so the router
			// must keep serving the OLD model — bit-identical to the
			// not-yet-reloaded reference — from the shards' snapshot history.
			trainAndSave(t, tr.train, 99, tr.modelPath)
			for _, ts := range tr.shardTS {
				if st := postJSON(t, ts.URL+"/v1/reload", nil, nil); st != 200 {
					t.Fatalf("shard reload: status %d", st)
				}
			}
			for _, c := range compareCases {
				tr.compare(t, c.name+"/pre-flip", c.req)
			}

			// Step 2: the flip. Now the router serves the NEW model —
			// bit-identical to the reloaded reference.
			var flip FlipResponse
			if st := postJSON(t, tr.routerTS.URL+"/v1/admin/flip", nil, &flip); st != 200 {
				t.Fatalf("flip: status %d", st)
			}
			if flip.Epoch != 2 {
				t.Fatalf("flip epoch %d, want 2", flip.Epoch)
			}
			for _, sh := range flip.Shards {
				if sh.Version != 2 {
					t.Fatalf("flipped table pins %s to version %d, want 2", sh.URL, sh.Version)
				}
			}
			if err := tr.ref.ReloadFromFile(); err != nil {
				t.Fatal(err)
			}
			for _, c := range compareCases {
				tr.compare(t, c.name+"/post-flip", c.req)
			}
		})
	}
}

// TestRouterStagedBitIdenticalAcrossRollout extends the rollout
// acceptance test to the staged pipeline: with the same floor+boost
// stage specs on the router and on the single-process reference, the
// router's post-merge re-ranking (over-fetched shard partials, stages
// applied exactly once after the merge) stays bit-identical to staged
// single-process serving — before a quorum rollout, while the route
// table still pins the old version, and after the flip. The stages here
// are deliberately model-independent (floor, tag boost): the router
// builds its pipeline once from the initial artifact, so a model-bound
// stage (diversify) would legitimately diverge from a reference that
// rebuilds stages per reload. Diversify's merge equivalence is covered
// single-process in rank's TestMergeTopMStagedMatchesSingleProcess.
func TestRouterStagedBitIdenticalAcrossRollout(t *testing.T) {
	specs := []serve.StageSpec{
		{Type: "floor", Min: 0.02},
		{Type: "boost", Delta: 0.25, Tags: []string{"rare"}, OverFetch: 2},
	}
	// compareCases minus "overlong": the boost stage over-fetches 2m from
	// each shard, and 2*1000 would trip the shards' own m cap — the same
	// reason ocular-router's -max-m must leave over-fetch headroom below
	// the shards' -max-m when stages are configured.
	var cases []struct {
		name string
		req  serve.RecommendRequest
	}
	for _, c := range compareCases {
		if c.req.M*2 <= 1000 {
			cases = append(cases, c)
		}
	}
	for _, nParts := range []int{2, 3} {
		t.Run(fmt.Sprintf("shards=%d", nParts), func(t *testing.T) {
			tr := newStagedTier(t, nParts, Config{}, specs)
			for _, c := range cases {
				tr.compare(t, c.name, c.req)
			}

			// Quorum rollout step 1: shards reload, table still pins the
			// old version — staged merges keep serving the OLD model.
			trainAndSave(t, tr.train, 99, tr.modelPath)
			for _, ts := range tr.shardTS {
				if st := postJSON(t, ts.URL+"/v1/reload", nil, nil); st != 200 {
					t.Fatalf("shard reload: status %d", st)
				}
			}
			for _, c := range cases {
				tr.compare(t, c.name+"/pre-flip", c.req)
			}

			// Step 2: flip, reload the reference, and the staged tier is
			// bit-identical on the NEW model.
			var flip FlipResponse
			if st := postJSON(t, tr.routerTS.URL+"/v1/admin/flip", nil, &flip); st != 200 {
				t.Fatalf("flip: status %d", st)
			}
			if flip.Epoch != 2 {
				t.Fatalf("flip epoch %d, want 2", flip.Epoch)
			}
			if err := tr.ref.ReloadFromFile(); err != nil {
				t.Fatal(err)
			}
			for _, c := range cases {
				tr.compare(t, c.name+"/post-flip", c.req)
			}
		})
	}
}

// TestRouterStagedCacheAndValidation: staged and unstaged routers must
// not share cache entries for the same request (the stage config is part
// of the fingerprint — checked here end to end through two routers over
// one shard tier), and New rejects stages whose empty CacheKey would
// poison the shared cache.
func TestRouterStagedCacheAndValidation(t *testing.T) {
	tr := newStagedTier(t, 2, Config{}, []serve.StageSpec{{Type: "floor", Min: 0.5}})
	// A second, unstaged router over the same shards.
	plain, err := New(Config{Shards: append([]string(nil), tr.router.cfg.Shards...)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	plainTS := httptest.NewServer(plain.Handler())
	defer plainTS.Close()

	req := serve.RecommendRequest{User: 5, M: 10}
	var staged, unstaged RecommendResponse
	if st := postJSON(t, tr.routerTS.URL+"/v1/recommend", req, &staged); st != 200 {
		t.Fatalf("staged router status %d", st)
	}
	if st := postJSON(t, plainTS.URL+"/v1/recommend", req, &unstaged); st != 200 {
		t.Fatalf("plain router status %d", st)
	}
	// floor=0.5 on synthetic probabilities truncates the list; the plain
	// router must serve the full one.
	if len(staged.Items) >= len(unstaged.Items) {
		t.Fatalf("floor stage kept %d of %d items — staged list should be shorter",
			len(staged.Items), len(unstaged.Items))
	}
	for _, it := range staged.Items {
		if it.Score < 0.5 {
			t.Errorf("staged router served item %d with score %v below the floor", it.Item, it.Score)
		}
	}

	if _, err := New(Config{Shards: []string{"http://x"}, Stages: []rank.Stage{badStage{}}}); err == nil {
		t.Fatal("New accepted a stage with an empty CacheKey")
	}
}

// badStage declares no cache key — uncacheable per-request stages are a
// serve-layer concept; the router's static pipeline must stay cacheable.
type badStage struct{}

func (badStage) CacheKey() string { return "" }
func (badStage) OverFetch(m int) int {
	return m
}
func (badStage) Apply(m int, items []int, scores []float64) ([]int, []float64) {
	return items, scores
}

// TestRouterBatchMatchesRecommend: /v1/batch merges through the same
// path and cache as /v1/recommend, per-user results bit-identical to the
// reference, out-of-range users rejected per slot.
func TestRouterBatchMatchesRecommend(t *testing.T) {
	tr := newTier(t, 2, Config{})
	users := []int{0, 5, 9000, 42, 7}
	var batch BatchResponse
	if st := postJSON(t, tr.routerTS.URL+"/v1/batch",
		map[string]any{"users": users, "m": 6}, &batch); st != 200 {
		t.Fatalf("batch status %d", st)
	}
	if len(batch.Results) != len(users) {
		t.Fatalf("%d results for %d users", len(batch.Results), len(users))
	}
	for n, res := range batch.Results {
		if users[n] == 9000 {
			if res.Error == "" {
				t.Error("out-of-range user served")
			}
			continue
		}
		if res.Error != "" {
			t.Fatalf("user %d: %s", users[n], res.Error)
		}
		var want serve.RecommendResponse
		postJSON(t, tr.refTS.URL+"/v1/recommend", serve.RecommendRequest{User: users[n], M: 6}, &want)
		sameLists(t, fmt.Sprintf("batch user %d", users[n]), res.Items, want.Items)
	}
}

// TestMixedVersionMergeRejected pins the version-pin protocol end to
// end: when a shard no longer holds the route table's pinned version in
// its snapshot history (two reloads behind the pin), its 409 fails the
// whole request — a partial of another model version is never merged.
func TestMixedVersionMergeRejected(t *testing.T) {
	tr := newTier(t, 2, Config{})
	// Shard 0 reloads twice; its history is now {3, 2} while the route
	// table pins version 1.
	trainAndSave(t, tr.train, 99, tr.modelPath)
	for i := 0; i < 2; i++ {
		if st := postJSON(t, tr.shardTS[0].URL+"/v1/reload", nil, nil); st != 200 {
			t.Fatalf("reload %d: status %d", i, st)
		}
	}
	var errResp struct {
		Error string `json:"error"`
	}
	if st := postJSON(t, tr.routerTS.URL+"/v1/recommend",
		serve.RecommendRequest{User: 1, M: 5}, &errResp); st != http.StatusBadGateway {
		t.Fatalf("status %d, want 502 (fail closed on a version conflict)", st)
	}
	if !strings.Contains(errResp.Error, "version") {
		t.Errorf("error %q does not name the version conflict", errResp.Error)
	}
	// A flip re-pins to the shards' current versions and service resumes.
	if st := postJSON(t, tr.routerTS.URL+"/v1/admin/flip", nil, nil); st != 200 {
		t.Fatal("flip after re-reload failed")
	}
	// Shard 1 is two reloads behind shard 0 now; bring it level first.
	if st := postJSON(t, tr.routerTS.URL+"/v1/recommend",
		serve.RecommendRequest{User: 1, M: 5}, nil); st != 200 {
		// Shard 1 still serves version 1 == its pin, shard 0 version 3 ==
		// its pin: per-shard pins make the mixed-history tier servable.
		t.Fatalf("post-flip recommend: status %d, want 200", st)
	}
}

// TestDegradedMode: with a shard down, the default router fails closed
// (502 — a truncated catalogue is a wrong answer); with AllowDegraded it
// merges the survivors, marks the response degraded, confines the list
// to the surviving ranges, and never caches it.
func TestDegradedMode(t *testing.T) {
	tr := newTier(t, 2, Config{})
	// A second router over the same shards, refreshed while both live.
	deg, err := New(Config{Shards: []string{tr.shardTS[0].URL, tr.shardTS[1].URL}, AllowDegraded: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := deg.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	degTS := httptest.NewServer(deg.Handler())
	defer degTS.Close()
	hi := tr.train.Cols() / 2 // shard 1 owns [items/2, items)

	tr.shardTS[1].Close() // the outage

	if st := postJSON(t, tr.routerTS.URL+"/v1/recommend",
		serve.RecommendRequest{User: 4, M: 10}, nil); st != http.StatusBadGateway {
		t.Fatalf("fail-closed router: status %d, want 502", st)
	}

	for round := 0; round < 2; round++ {
		var got RecommendResponse
		if st := postJSON(t, degTS.URL+"/v1/recommend",
			serve.RecommendRequest{User: 4, M: 10}, &got); st != 200 {
			t.Fatalf("degraded router round %d: status %d, want 200", round, st)
		}
		if !got.Degraded {
			t.Fatalf("round %d: response not marked degraded", round)
		}
		if got.Cached {
			t.Fatalf("round %d: degraded merge served from cache", round)
		}
		if len(got.Items) == 0 {
			t.Fatal("degraded merge is empty despite a surviving shard")
		}
		for _, it := range got.Items {
			if it.Item >= hi {
				t.Fatalf("degraded merge contains item %d from the dead shard's range [%d,...)", it.Item, hi)
			}
		}
	}
	if n := deg.cache.Len(); n != 0 {
		t.Errorf("cache holds %d entries after degraded merges, want 0", n)
	}
}

// TestRouterCacheAndEpochFingerprint: a repeated request hits the cache;
// a flip advances the epoch, which is folded into every fingerprint, so
// the first request after a flip is a miss by construction.
func TestRouterCacheAndEpochFingerprint(t *testing.T) {
	tr := newTier(t, 2, Config{})
	req := serve.RecommendRequest{User: 33, M: 9, ExcludeItems: []int{5, 2, 5}}
	var first, second RecommendResponse
	postJSON(t, tr.routerTS.URL+"/v1/recommend", req, &first)
	postJSON(t, tr.routerTS.URL+"/v1/recommend", req, &second)
	if first.Cached || !second.Cached {
		t.Fatalf("cached flags %v/%v, want false/true", first.Cached, second.Cached)
	}
	sameLists(t, "cache hit", second.Items, first.Items)

	// Same model, new epoch: the flip alone must invalidate.
	if st := postJSON(t, tr.routerTS.URL+"/v1/admin/flip", nil, nil); st != 200 {
		t.Fatal("flip failed")
	}
	var third RecommendResponse
	postJSON(t, tr.routerTS.URL+"/v1/recommend", req, &third)
	if third.Cached {
		t.Fatal("request served from a stale-epoch cache entry after the flip")
	}
	if third.RouteEpoch != 2 {
		t.Fatalf("RouteEpoch %d after flip, want 2", third.RouteEpoch)
	}
}

// TestHedgedRetry: a shard whose first attempt fails is retried
// immediately (fast-failure hedge), and the request still succeeds.
func TestHedgedRetry(t *testing.T) {
	tr := newTier(t, 2, Config{})
	// A flaky proxy in front of shard 0: the first /v1/shard/topm attempt
	// answers 500, everything else passes through.
	target, _ := url.Parse(tr.shardTS[0].URL)
	proxy := httputil.NewSingleHostReverseProxy(target)
	var failed atomic.Bool
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/shard/topm" && failed.CompareAndSwap(false, true) {
			http.Error(w, `{"error": "transient"}`, http.StatusInternalServerError)
			return
		}
		proxy.ServeHTTP(w, r)
	}))
	defer flaky.Close()

	rt, err := New(Config{Shards: []string{flaky.URL, tr.shardTS[1].URL}, HedgeDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	var got RecommendResponse
	if st := postJSON(t, ts.URL+"/v1/recommend", serve.RecommendRequest{User: 2, M: 5}, &got); st != 200 {
		t.Fatalf("status %d, want 200 (hedge should have recovered the flaky shard)", st)
	}
	if rt.m.hedges.Value() < 1 {
		t.Error("no hedge launched for the failed first attempt")
	}
	var want serve.RecommendResponse
	postJSON(t, tr.refTS.URL+"/v1/recommend", serve.RecommendRequest{User: 2, M: 5}, &want)
	sameLists(t, "hedged", got.Items, want.Items)
}

// TestRouterRequestValidation mirrors the single-process server's
// rejections at the router's front door.
func TestRouterRequestValidation(t *testing.T) {
	tr := newTier(t, 2, Config{MaxM: 50, MaxBatch: 3, MaxBodyBytes: 512})
	for name, c := range map[string]struct {
		path string
		body any
		want int
	}{
		"user out of range": {"/v1/recommend", map[string]any{"user": 100000, "m": 5}, 400},
		"negative m":        {"/v1/recommend", map[string]any{"user": 1, "m": -2}, 400},
		"m over cap":        {"/v1/recommend", map[string]any{"user": 1, "m": 51}, 400},
		"bad exclude":       {"/v1/recommend", map[string]any{"user": 1, "exclude_items": []int{-3}}, 400},
		"unknown field":     {"/v1/recommend", map[string]any{"user": 1, "wat": true}, 400},
		"empty batch":       {"/v1/batch", map[string]any{"users": []int{}}, 400},
		"batch over cap":    {"/v1/batch", map[string]any{"users": []int{1, 2, 3, 4}}, 400},
		"oversized body":    {"/v1/recommend", map[string]any{"user": 1, "exclude_items": make([]int, 400)}, 400},
	} {
		if st := postJSON(t, tr.routerTS.URL+c.path, c.body, nil); st != c.want {
			t.Errorf("%s: status %d, want %d", name, st, c.want)
		}
	}
}

// TestRefreshValidation: a route table only installs over a healthy,
// exactly-partitioned shard tier; anything else keeps the old table.
func TestRefreshValidation(t *testing.T) {
	train := dataset.SyntheticSmall(1).Dataset.R
	modelPath := filepath.Join(t.TempDir(), "model.bin")
	model := trainAndSave(t, train, 3, modelPath)
	items := model.NumItems()

	shardTS := func(lo, hi int) *httptest.Server {
		srv, err := serve.NewShardFromFile(serve.Config{ModelPath: modelPath, Train: train, ShardLo: lo, ShardHi: hi})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		return ts
	}
	refresh := func(urls ...string) error {
		rt, err := New(Config{Shards: urls})
		if err != nil {
			t.Fatal(err)
		}
		_, err = rt.Refresh(context.Background())
		return err
	}

	full := httptest.NewServer(func() http.Handler {
		srv, err := serve.NewFromFile(serve.Config{ModelPath: modelPath, Train: train})
		if err != nil {
			t.Fatal(err)
		}
		return srv.Handler()
	}())
	t.Cleanup(full.Close)

	half := shardTS(0, items/2)
	if err := refresh(half.URL, full.URL); err == nil || !strings.Contains(err.Error(), "not a shard server") {
		t.Errorf("full server accepted into a route table: %v", err)
	}
	if err := refresh(half.URL); err == nil || !strings.Contains(err.Error(), "cover") {
		t.Errorf("gap at the catalogue tail accepted: %v", err)
	}
	overlap := shardTS(items/2-1, -1)
	if err := refresh(half.URL, overlap.URL); err == nil || !strings.Contains(err.Error(), "partition") {
		t.Errorf("overlapping ranges accepted: %v", err)
	}
	tail := shardTS(items/2, -1)
	if err := refresh(half.URL, tail.URL); err != nil {
		t.Errorf("exact partition rejected: %v", err)
	}

	// Before the first successful refresh the router answers 503.
	rt, err := New(Config{Shards: []string{half.URL, tail.URL}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()
	if st := postJSON(t, ts.URL+"/v1/recommend", map[string]any{"user": 1}, nil); st != http.StatusServiceUnavailable {
		t.Errorf("no-table request: status %d, want 503", st)
	}
}

func TestRouterConfigValidation(t *testing.T) {
	for name, cfg := range map[string]Config{
		"no shards":      {},
		"empty url":      {Shards: []string{""}},
		"duplicate url":  {Shards: []string{"http://a", "http://a"}},
		"negative maxm":  {Shards: []string{"http://a"}, MaxM: -1},
		"negative body":  {Shards: []string{"http://a"}, MaxBodyBytes: -1},
		"negative fan":   {Shards: []string{"http://a"}, MaxFanout: -1},
		"negative hedge": {Shards: []string{"http://a"}, HedgeDelay: -time.Second},
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := New(Config{Shards: []string{"http://a", "http://b"}}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// TestFingerprintFor pins the cache-key canonicalization: epoch always
// folded in, exclusion and tag lists order- and duplicate-insensitive,
// allow and deny kept distinct, oversized filter surfaces uncacheable,
// stage keys length-prefixed so adjacent keys can never alias.
func TestFingerprintFor(t *testing.T) {
	fp := func(epoch uint64, ex []int, spec *serve.FilterSpec, stages ...rank.Stage) string {
		s, ok := fingerprintFor(epoch, ex, spec, stages)
		if !ok {
			t.Fatalf("fingerprintFor(%d, %v, %v) uncacheable", epoch, ex, spec)
		}
		return s
	}
	if fp(1, nil, nil) == fp(2, nil, nil) {
		t.Error("epoch not folded into the fingerprint")
	}
	if fp(1, []int{3, 1, 3, 2}, nil) != fp(1, []int{1, 2, 3}, nil) {
		t.Error("exclusion canonicalization (sort+dedup) broken")
	}
	if fp(1, nil, nil) == fp(1, []int{0}, nil) {
		t.Error("exclusions ignored")
	}
	if fp(1, nil, &serve.FilterSpec{AllowTags: []string{"b", "a", "a"}}) !=
		fp(1, nil, &serve.FilterSpec{AllowTags: []string{"a", "b"}}) {
		t.Error("tag canonicalization broken")
	}
	if fp(1, nil, &serve.FilterSpec{AllowTags: []string{"x"}}) ==
		fp(1, nil, &serve.FilterSpec{DenyTags: []string{"x"}}) {
		t.Error("allow and deny collide")
	}
	if fp(1, nil, &serve.FilterSpec{}) != fp(1, nil, nil) {
		t.Error("empty spec differs from no spec")
	}
	floor := rank.ScoreFloor(0.25)
	if fp(1, nil, nil, floor) == fp(1, nil, nil) {
		t.Error("stages not folded into the fingerprint")
	}
	if fp(1, nil, nil, floor, rank.ScoreFloor(0.5)) == fp(1, nil, nil, rank.ScoreFloor(0.5), floor) {
		t.Error("stage order not folded into the fingerprint (stages are not commutative)")
	}
	huge := make([]int, 3000)
	for i := range huge {
		huge[i] = i * 7
	}
	if _, ok := fingerprintFor(1, huge, nil, nil); ok {
		t.Error("oversized fingerprint not marked uncacheable")
	}
}

// TestRouterScatterGatherDuringQuorumReloadRace hammers the router with
// concurrent scatters while a rollout loop keeps reloading every shard
// and flipping the table — the -race CI pass over the snapshot/route
// swap machinery. Requests must answer 200 (or 502 for the narrow
// window where a pinned version fell off a shard's two-deep history);
// anything else, or a torn merge, fails.
func TestRouterScatterGatherDuringQuorumReloadRace(t *testing.T) {
	tr := newTier(t, 2, Config{CacheSize: 64})
	stop := make(chan struct{})
	var clients, rollouts sync.WaitGroup
	rollouts.Add(1)
	go func() { // the rollout loop
		defer rollouts.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			trainAndSave(t, tr.train, uint64(100+i%2), tr.modelPath)
			for _, ts := range tr.shardTS {
				if st := postJSON(t, ts.URL+"/v1/reload", nil, nil); st != 200 {
					t.Errorf("reload: status %d", st)
					return
				}
			}
			if st := postJSON(t, tr.routerTS.URL+"/v1/admin/flip", nil, nil); st != 200 {
				t.Errorf("flip: status %d", st)
				return
			}
		}
	}()
	for g := 0; g < 4; g++ {
		clients.Add(1)
		go func(g int) {
			defer clients.Done()
			rng := rand.New(rand.NewPCG(uint64(g), 7))
			for i := 0; i < 60; i++ {
				var got RecommendResponse
				st := postJSON(t, tr.routerTS.URL+"/v1/recommend",
					serve.RecommendRequest{User: rng.IntN(120), M: 1 + rng.IntN(12)}, &got)
				switch st {
				case http.StatusOK:
					for n := 1; n < len(got.Items); n++ {
						prev, cur := got.Items[n-1], got.Items[n]
						if cur.Score > prev.Score || (cur.Score == prev.Score && cur.Item <= prev.Item) {
							t.Errorf("torn merge: rank %d (%d: %v) after (%d: %v)",
								n, cur.Item, cur.Score, prev.Item, prev.Score)
						}
					}
				case http.StatusBadGateway:
					// pinned version aged out between table load and scatter
				default:
					t.Errorf("status %d", st)
				}
			}
		}(g)
	}
	// Let the clients finish, then stop the rollout loop.
	clients.Wait()
	close(stop)
	rollouts.Wait()
}

// BenchmarkRouterScatterGather measures one uncached scatter-gather
// through the router handler (shard HTTP round-trips included) at 2 and
// 4 in-process shards.
func BenchmarkRouterScatterGather(b *testing.B) {
	for _, nParts := range []int{2, 4} {
		b.Run(fmt.Sprintf("shards=%d", nParts), func(b *testing.B) {
			tr := newTier(b, nParts, Config{CacheSize: -1}) // uncached: every iteration scatters
			body, _ := json.Marshal(serve.RecommendRequest{User: 42, M: 10})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				req := httptest.NewRequest(http.MethodPost, "/v1/recommend", bytes.NewReader(body))
				w := httptest.NewRecorder()
				tr.router.Handler().ServeHTTP(w, req)
				if w.Code != http.StatusOK {
					b.Fatalf("status %d: %s", w.Code, w.Body.Bytes())
				}
			}
		})
	}
}
