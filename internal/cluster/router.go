// Package cluster is the sharded serving tier's scatter-gather router: a
// front-end that answers the single-process /v1/recommend and /v1/batch
// API by fanning each request out to item-partitioned shard processes
// (serve.NewShardFromFile), merging the per-shard top-M partials with
// rank.MergeTopM, and caching the merged lists. Because per-item scores
// are independent of the rest of the catalogue, the merged lists are
// bit-identical — same items, same float64 score bits — to what one
// process serving the whole model would return. A configured re-rank
// pipeline (Config.Stages) runs exactly once, after the merge, over a
// scatter over-fetched to the stages' candidate pool — so staged
// routing stays bit-identical to single-process staged serving too.
//
// The router owns the fingerprint cache and the singleflight; shards stay
// cacheless and stateless. Consistency across rollouts rests on two
// mechanisms:
//
//   - Every scatter pins the model version it expects from each shard
//     (the versions recorded in the route table); a shard serving neither
//     that version nor its immediate predecessor answers 409, so partials
//     of mixed model versions can never meet in one merge.
//   - The route table carries an epoch, advanced by every Refresh (the
//     trainer flips it via POST /v1/admin/flip after its quorum reload),
//     and the epoch is folded into every cache fingerprint — a cache
//     entry merged under an old table is unreachable the moment the
//     table flips, with no flush or coordination.
//
// Shard failures fail the request closed by default (a silently
// truncated catalogue is a wrong answer, not a degraded one). With
// Config.AllowDegraded the router instead merges the surviving partials
// and marks the response degraded; degraded merges are never cached and
// never shared with coalesced waiters.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/rank"
	"repro/internal/serve"
)

// Config tunes a Router. Shards is required; everything else defaults.
type Config struct {
	// Shards are the base URLs of the shard processes (e.g.
	// "http://10.0.0.1:8081"). Their item ranges are discovered from
	// /healthz by Refresh and must exactly partition the catalogue.
	Shards []string
	// MaxM caps the requested list length m. 0 means 1000. The shards'
	// own MaxM must cover rank.StagesOverFetch(MaxM, Stages) — the
	// router forwards m verbatim without stages, over-fetched with them.
	MaxM int
	// MaxBatch caps the number of users in one /v1/batch request. 0 means
	// 1024.
	MaxBatch int
	// MaxBodyBytes caps request body size. 0 means 1 MiB.
	MaxBodyBytes int64
	// CacheSize is the approximate total number of cached merged lists; 0
	// means 4096, negative disables caching.
	CacheSize int
	// CacheShards is the cache's shard count (rounded up to a power of
	// two). 0 means 16.
	CacheShards int
	// Workers bounds the per-request user fan-out of /v1/batch. 0 means
	// all cores.
	Workers int
	// MaxFanout bounds how many shard calls one scatter runs
	// concurrently. 0 means all shards at once.
	MaxFanout int
	// Timeout is the per-attempt deadline of one shard call. 0 means 2s.
	Timeout time.Duration
	// HedgeDelay, when positive, launches a second identical attempt
	// against a shard that has neither answered nor failed after this
	// long (and immediately after a fast failure); the first success
	// wins. 0 disables hedging — one attempt per shard. Hedges draw from
	// the retry budget (see RetryBudget).
	HedgeDelay time.Duration
	// RequestTimeout, when positive, bounds one router request end to
	// end: scatter, hedges and merge all inherit its deadline, and its
	// exhaustion surfaces as 504. 0 means no overall deadline —
	// per-attempt deadlines (Timeout) still apply.
	RequestTimeout time.Duration
	// BreakerThreshold is the number of consecutive counted failures
	// (timeouts, transport errors, shard 5xx — never deterministic 4xx or
	// rollout version conflicts) that trips a shard's circuit breaker
	// open. An open breaker fails the shard's calls fast (degraded merge
	// or fail-closed, per AllowDegraded) instead of burning a timeout per
	// request, then heals through a single half-open trial after
	// BreakerCooldown. 0 means 5; negative disables breakers.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before letting a
	// half-open trial through. 0 means 1s.
	BreakerCooldown time.Duration
	// ProbeInterval is the cadence of the background health prober
	// (StartProber): each shard's /readyz is probed and the shard is
	// taken out of — or returned to — rotation in the health overlay.
	// 0 means 2s. The prober only runs when StartProber is called.
	ProbeInterval time.Duration
	// RetryBudget bounds hedged retries to this fraction of primary
	// attempts per 10s window (plus a floor of 3), so a slow cluster
	// cannot be retry-stormed by its own router. 0 means 0.2; negative
	// disables the budget (unlimited hedging).
	RetryBudget float64
	// MaxInFlight, when positive, bounds concurrently admitted
	// /v1/recommend and /v1/batch requests; excess requests wait in a
	// short bounded queue (MaxQueue, QueueWait — serve.Gate semantics)
	// and are shed with 429 + Retry-After. 0 disables admission control.
	MaxInFlight int
	// MaxQueue bounds the admission wait queue. 0 means 2×MaxInFlight;
	// negative means no queue.
	MaxQueue int
	// QueueWait bounds how long a queued request waits for an admission
	// slot. 0 means 100ms.
	QueueWait time.Duration
	// AllowDegraded serves merges assembled from the surviving shards
	// when others fail, marking the response degraded, instead of
	// failing the request. Degraded merges are never cached.
	AllowDegraded bool
	// Stages is the staged re-rank pipeline applied exactly once per
	// request, after the scatter-gather merge — never on shards, which
	// always serve raw partials. The scatter over-fetches each shard to
	// rank.StagesOverFetch(m, Stages) so the post-merge pipeline sees the
	// same candidate pool a single staged process would; the shards' own
	// MaxM must cover that over-fetched length. Stage cache keys fold
	// into the router's fingerprints, so staged and unstaged deployments
	// never share cache entries. Stages must be deterministic and every
	// stage must declare a non-empty CacheKey. Nil entries are dropped.
	Stages []rank.Stage
	// ShardWire selects the wire format of the scatter's shard calls:
	// "json" (the default) posts /v1/shard/topm, "binary" posts the
	// columnar frames of internal/wire to /v2/shard/topm — same partials,
	// same validation, no JSON marshalling on the hot path. The shards
	// must serve the binary endpoints (they do unless started with
	// -binary-batch=false).
	ShardWire string
	// HTTPClient overrides the client used for shard calls (tests;
	// custom transports). Nil means a client with no overall timeout —
	// per-attempt deadlines come from Timeout.
	HTTPClient *http.Client
	// Logf, when non-nil, receives progress lines (cmd/ocular-router
	// wires log.Printf).
	Logf func(format string, args ...any)
	// TraceRing sizes the recent-traces ring served at GET /debug/traces.
	// 0 means 256; negative disables tracing entirely.
	TraceRing int
	// TraceSlow, when > 0, logs a "slow request" line for every traced
	// request at or above this duration.
	TraceSlow time.Duration
	// TraceLog receives the slow-request lines. Nil means slog.Default().
	TraceLog *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.MaxM == 0 {
		c.MaxM = 1000
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 1024
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.CacheSize == 0 {
		c.CacheSize = 4096
	}
	if c.MaxFanout == 0 {
		c.MaxFanout = len(c.Shards)
	}
	if c.Timeout == 0 {
		c.Timeout = 2 * time.Second
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown == 0 {
		c.BreakerCooldown = time.Second
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.RetryBudget == 0 {
		c.RetryBudget = 0.2
	}
	if c.ShardWire == "" {
		c.ShardWire = "json"
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{}
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// shardRoute is one shard's slot in a route table: where it lives, the
// item range it owns, and the model version every scatter under this
// table pins it to.
type shardRoute struct {
	url     string
	version uint64
	lo, hi  int
}

// routeTable is one immutable routing state. Requests load the pointer
// once and scatter under that table; a concurrent flip never mixes
// epochs within one request.
type routeTable struct {
	epoch        uint64
	shards       []shardRoute
	users, items int
}

// Router scatters recommendation requests over the shard tier. All
// methods are safe for concurrent use.
type Router struct {
	cfg   Config
	table atomic.Pointer[routeTable]
	cache *rank.ListCache
	stats *rank.Stats
	m     *metrics
	mux   *http.ServeMux
	// breakers holds one circuit breaker per shard URL (nil map when
	// Config.BreakerThreshold < 0). Built at construction, never mutated.
	breakers map[string]*breaker
	// health is the mutable per-shard up/down overlay the prober writes
	// and the scatter reads; the map itself is immutable.
	health map[string]*shardHealthState
	// budget is the hedged-retry budget; nil means unlimited.
	budget *retryBudget
	// gate is the admission controller over /v1/recommend and /v1/batch;
	// nil admits everything.
	gate *serve.Gate
	// draining flips at the start of graceful shutdown: /readyz answers
	// 503 while the data path keeps serving.
	draining atomic.Bool
	// tracer records per-request span timelines (nil when disabled).
	tracer *obs.Tracer
	// shardLat holds one latency histogram per shard URL, observing whole
	// callShard calls (hedges and retries included). Built at
	// construction, never mutated.
	shardLat map[string]*obs.Histogram
}

// New builds a Router over cfg.Shards. The router starts with no route
// table — call Refresh (or let the first /v1/admin/flip do it) before
// serving; requests meanwhile answer 503.
func New(cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("cluster: at least one shard URL is required")
	}
	seen := make(map[string]bool, len(cfg.Shards))
	for _, u := range cfg.Shards {
		if u == "" {
			return nil, fmt.Errorf("cluster: empty shard URL")
		}
		if seen[u] {
			return nil, fmt.Errorf("cluster: duplicate shard URL %s", u)
		}
		seen[u] = true
	}
	switch {
	case cfg.MaxM < 0:
		return nil, fmt.Errorf("cluster: MaxM must be >= 0, got %d", cfg.MaxM)
	case cfg.MaxBatch < 0:
		return nil, fmt.Errorf("cluster: MaxBatch must be >= 0, got %d", cfg.MaxBatch)
	case cfg.MaxBodyBytes < 0:
		return nil, fmt.Errorf("cluster: MaxBodyBytes must be >= 0, got %d", cfg.MaxBodyBytes)
	case cfg.Workers < 0:
		return nil, fmt.Errorf("cluster: Workers must be >= 0, got %d", cfg.Workers)
	case cfg.MaxFanout < 0:
		return nil, fmt.Errorf("cluster: MaxFanout must be >= 0, got %d", cfg.MaxFanout)
	case cfg.Timeout < 0 || cfg.HedgeDelay < 0:
		return nil, fmt.Errorf("cluster: Timeout and HedgeDelay must be >= 0")
	case cfg.RequestTimeout < 0:
		return nil, fmt.Errorf("cluster: RequestTimeout must be >= 0, got %v", cfg.RequestTimeout)
	case cfg.BreakerCooldown < 0 || cfg.ProbeInterval < 0:
		return nil, fmt.Errorf("cluster: BreakerCooldown and ProbeInterval must be >= 0")
	case cfg.MaxInFlight < 0:
		return nil, fmt.Errorf("cluster: MaxInFlight must be >= 0, got %d", cfg.MaxInFlight)
	case cfg.QueueWait < 0:
		return nil, fmt.Errorf("cluster: QueueWait must be >= 0, got %v", cfg.QueueWait)
	}
	if w := cfg.ShardWire; w != "" && w != "json" && w != "binary" {
		return nil, fmt.Errorf("cluster: ShardWire must be \"json\" or \"binary\", got %q", w)
	}
	stages := cfg.Stages[:0:0]
	for _, st := range cfg.Stages {
		if st == nil {
			continue
		}
		if st.CacheKey() == "" {
			return nil, fmt.Errorf("cluster: every stage must declare a non-empty CacheKey (static router stages must stay cacheable)")
		}
		stages = append(stages, st)
	}
	if len(stages) == 0 {
		stages = nil
	}
	cfg.Stages = stages
	cfg = cfg.withDefaults()
	stats := &rank.Stats{}
	rt := &Router{
		cfg:    cfg,
		cache:  rank.NewListCache(cfg.CacheSize, cfg.CacheShards, stats),
		stats:  stats,
		m:      newMetrics(),
		health: make(map[string]*shardHealthState, len(cfg.Shards)),
		gate:   serve.NewGate(cfg.MaxInFlight, cfg.MaxQueue, cfg.QueueWait),
	}
	for _, u := range cfg.Shards {
		rt.health[u] = &shardHealthState{}
	}
	rt.shardLat = make(map[string]*obs.Histogram, len(cfg.Shards))
	for _, u := range cfg.Shards {
		rt.shardLat[u] = &obs.Histogram{}
	}
	if ring := cfg.TraceRing; ring >= 0 {
		if ring == 0 {
			ring = 256
		}
		rt.tracer = obs.NewTracer(ring, cfg.TraceSlow, cfg.TraceLog)
	}
	if cfg.BreakerThreshold > 0 {
		rt.breakers = make(map[string]*breaker, len(cfg.Shards))
		for _, u := range cfg.Shards {
			rt.breakers[u] = newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown)
		}
	}
	if cfg.RetryBudget > 0 {
		rt.budget = newRetryBudget(cfg.RetryBudget, 3, 10*time.Second)
	}
	rt.mux = rt.buildMux()
	return rt, nil
}

// shardHealth is the subset of a shard's /healthz the router routes by.
type shardHealth struct {
	ModelVersion uint64 `json:"model_version"`
	Users        int    `json:"users"`
	Items        int    `json:"items"`
	ShardLo      int    `json:"shard_lo"`
	ShardHi      *int   `json:"shard_hi"`
}

// Refresh polls every shard's /healthz and installs a new route table:
// per-shard model versions (the versions scatters will pin), the
// catalogue shape, and a bumped epoch. It fails — leaving the current
// table serving — unless every shard answers, all agree on the catalogue
// shape, and their item ranges exactly partition [0, items). The trainer
// drives it through POST /v1/admin/flip after its quorum reload.
func (rt *Router) Refresh(ctx context.Context) (epoch uint64, err error) {
	var users, items int
	sorted := make([]shardRoute, len(rt.cfg.Shards))
	for i, u := range rt.cfg.Shards {
		h, err := rt.shardHealthz(ctx, u)
		if err != nil {
			return 0, fmt.Errorf("cluster: refresh: shard %s: %w", u, err)
		}
		if h.ShardHi == nil {
			return 0, fmt.Errorf("cluster: refresh: %s is not a shard server (no shard_hi in /healthz)", u)
		}
		if i == 0 {
			users, items = h.Users, h.Items
		} else if h.Users != users || h.Items != items {
			return 0, fmt.Errorf("cluster: refresh: shard %s serves a %dx%d catalogue, shard %s a %dx%d one",
				u, h.Users, h.Items, rt.cfg.Shards[0], users, items)
		}
		sorted[i] = shardRoute{url: u, version: h.ModelVersion, lo: h.ShardLo, hi: *h.ShardHi}
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].lo < sorted[j].lo })
	at := 0
	for _, s := range sorted {
		if s.lo != at {
			return 0, fmt.Errorf("cluster: refresh: shard ranges do not partition the catalogue: gap or overlap at item %d (shard %s owns [%d,%d))",
				at, s.url, s.lo, s.hi)
		}
		at = s.hi
	}
	if at != items {
		return 0, fmt.Errorf("cluster: refresh: shard ranges cover [0,%d) but the catalogue has %d items", at, items)
	}
	old := rt.table.Load()
	epoch = 1
	if old != nil {
		epoch = old.epoch + 1
	}
	rt.table.Store(&routeTable{epoch: epoch, shards: sorted, users: users, items: items})
	rt.m.flips.Add(1)
	rt.cfg.Logf("route table epoch %d: %d shards over %dx%d", epoch, len(sorted), users, items)
	return epoch, nil
}

// shardHealthz reads one shard's /healthz.
func (rt *Router) shardHealthz(ctx context.Context, base string) (shardHealth, error) {
	var h shardHealth
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
	if err != nil {
		return h, err
	}
	resp, err := rt.cfg.HTTPClient.Do(req)
	if err != nil {
		return h, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return h, fmt.Errorf("/healthz: HTTP %d", resp.StatusCode)
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&h); err != nil {
		return h, err
	}
	return h, nil
}

// requestError carries a client-visible HTTP status through the scatter
// path — a shard's 400 (invalid request) must surface as the router's
// 400, not as a shard outage.
type requestError struct {
	status int
	msg    string
}

func (e *requestError) Error() string { return e.msg }

var (
	// errShardDown fails a shard call fast because the health prober has
	// the shard marked down — no network attempt is made.
	errShardDown = errors.New("shard marked down by health prober")
	// errBreakerOpen fails a shard call fast because its circuit breaker
	// is open (or a half-open trial is already in flight).
	errBreakerOpen = errors.New("shard circuit breaker open")
	// errVersionConflict wraps a shard's 409: the rollout-window version
	// skew of a healthy shard, never evidence of sickness.
	errVersionConflict = errors.New("shard version conflict")
)

// countsAgainstBreaker decides whether a failed shard call is evidence
// the shard is sick. Deterministic request rejections (4xx), rollout
// version conflicts (409 — tripping breakers on those would open the
// whole tier during every rollout), caller cancellations, and fast-fails
// from the breaker or overlay themselves never count; timeouts,
// transport errors and shard 5xx do.
func countsAgainstBreaker(err error) bool {
	var reqErr *requestError
	switch {
	case err == nil:
		return false
	case errors.As(err, &reqErr):
		return false
	case errors.Is(err, errVersionConflict),
		errors.Is(err, errShardDown),
		errors.Is(err, errBreakerOpen),
		errors.Is(err, context.Canceled):
		return false
	}
	return true
}

// scatter fans req out to every shard of tbl (bounded by MaxFanout,
// hedged per HedgeDelay) and returns the partials in shard order, nil
// for shards that failed, plus the first failure. The caller decides
// whether failures are fatal (fail-closed) or degrade the merge.
func (rt *Router) scatter(ctx context.Context, tbl *routeTable, req serve.ShardTopMRequest) ([]*rank.Partial, error) {
	rt.m.scatters.Add(1)
	act := obs.ActiveFrom(ctx)
	parts := make([]*rank.Partial, len(tbl.shards))
	errs := make([]error, len(tbl.shards))
	sem := make(chan struct{}, rt.cfg.MaxFanout)
	done := make(chan int, len(tbl.shards))
	for i := range tbl.shards {
		go func(i int) {
			sem <- struct{}{}
			defer func() { <-sem; done <- i }()
			start := time.Now()
			p, err := rt.callShard(ctx, tbl.shards[i], req)
			d := time.Since(start)
			if h := rt.shardLat[tbl.shards[i].url]; h != nil {
				h.Observe(d, err != nil)
			}
			if act != nil {
				note := tbl.shards[i].url
				if err != nil {
					note += " error: " + err.Error()
				}
				act.Record("shard_call", start, d, note)
			}
			if err != nil {
				errs[i] = err
				return
			}
			parts[i] = &p
		}(i)
	}
	for range tbl.shards {
		<-done
	}
	var firstErr error
	for i, err := range errs {
		if err == nil {
			continue
		}
		rt.m.shardErrors.Add(1)
		rt.cfg.Logf("shard %s: %v", tbl.shards[i].url, err)
		var reqErr *requestError
		if errors.As(err, &reqErr) {
			// Invalid-request rejections outrank outages: they are
			// deterministic, so "degrading around" them would serve a
			// silently mis-filtered list.
			return parts, err
		}
		if firstErr == nil {
			firstErr = fmt.Errorf("shard %s: %w", tbl.shards[i].url, err)
		}
	}
	return parts, firstErr
}

// callShard runs one shard call behind the shard's health overlay and
// circuit breaker, with per-attempt timeout and budgeted hedged retry: a
// second identical attempt launches after HedgeDelay (or immediately
// after a fast failure) when the retry budget allows, and the first
// success wins. At most two attempts — a shard that fails both is
// reported failed, and the aggregate outcome feeds the breaker.
func (rt *Router) callShard(ctx context.Context, sh shardRoute, req serve.ShardTopMRequest) (rank.Partial, error) {
	if hs := rt.healthFor(sh.url); hs != nil && hs.down.Load() {
		return rank.Partial{}, errShardDown
	}
	br := rt.breakers[sh.url]
	trial := false
	if br != nil {
		proceed, tr := br.tryAcquire()
		if !proceed {
			return rank.Partial{}, errBreakerOpen
		}
		trial = tr
	}
	// finish settles the breaker exactly once per admitted call: the
	// call's aggregate outcome is the shard-sickness verdict. Failures
	// that carry no verdict (cancellation, version skew) release a trial
	// without re-tripping.
	finish := func(p rank.Partial, err error) (rank.Partial, error) {
		if br != nil {
			switch {
			case err == nil:
				br.onResult(true, trial)
			case countsAgainstBreaker(err):
				br.onResult(false, trial)
			default:
				br.abandon(trial)
			}
		}
		return p, err
	}
	req.ExpectVersion = sh.version
	type result struct {
		p   rank.Partial
		err error
	}
	ch := make(chan result, 2)
	attempt := func() {
		actx, cancel := context.WithTimeout(ctx, rt.cfg.Timeout)
		defer cancel()
		p, err := rt.postShard(actx, sh, req)
		ch <- result{p, err}
	}
	pending := 1
	if rt.budget != nil {
		rt.budget.noteAttempt()
	}
	go attempt()
	var hedgeC <-chan time.Time
	if rt.cfg.HedgeDelay > 0 && !trial {
		// A half-open trial is never hedged: one attempt decides, and a
		// second concurrent call to a possibly-sick shard is exactly what
		// the half-open state exists to prevent.
		timer := time.NewTimer(rt.cfg.HedgeDelay)
		defer timer.Stop()
		hedgeC = timer.C
	}
	launchHedge := func() {
		hedgeC = nil
		if rt.budget != nil && !rt.budget.allowRetry() {
			// Budget spent: this window has already hedged its share.
			rt.m.hedgesDenied.Add(1)
			return
		}
		pending++
		rt.m.hedges.Add(1)
		go attempt()
	}
	var firstErr error
	for {
		select {
		case r := <-ch:
			pending--
			if r.err == nil {
				return finish(r.p, nil)
			}
			if firstErr == nil {
				firstErr = r.err
			}
			var reqErr *requestError
			if errors.As(r.err, &reqErr) {
				// Deterministic rejection: a hedge would hit the same wall.
				return finish(rank.Partial{}, r.err)
			}
			if hedgeC != nil {
				// The primary failed before the hedge timer fired; hedge
				// now rather than waiting out the delay. The budget may
				// deny it — then nothing is pending and we fail below.
				launchHedge()
			}
			if pending == 0 {
				return finish(rank.Partial{}, firstErr)
			}
		case <-hedgeC:
			// The primary is still pending here (its return either exits
			// or disarms hedgeC), so a denied hedge leaves it awaited.
			launchHedge()
		case <-ctx.Done():
			return finish(rank.Partial{}, ctx.Err())
		}
	}
}

// postShard performs one shard attempt over the configured wire format.
func (rt *Router) postShard(ctx context.Context, sh shardRoute, req serve.ShardTopMRequest) (rank.Partial, error) {
	if rt.cfg.ShardWire == "binary" {
		return rt.postShardTopMBinary(ctx, sh, req)
	}
	return rt.postShardTopM(ctx, sh, req)
}

// shardHTTPError maps a shard's non-200 answer (always a JSON error
// body, on either wire format) to the scatter's typed errors:
// deterministic 400s become requestErrors (they outrank outages), 409 is
// the rollout-window version skew the breaker must never count, 504 is
// deadline exhaustion, and everything else a shard-side failure.
func shardHTTPError(endpoint string, status int, data []byte) error {
	var e struct {
		Error string `json:"error"`
	}
	msg := fmt.Sprintf("%s: HTTP %d", endpoint, status)
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		msg = e.Error
	}
	switch status {
	case http.StatusBadRequest:
		return &requestError{status: http.StatusBadRequest, msg: msg}
	case http.StatusConflict:
		// Rollout-window version skew of a healthy shard; typed so the
		// breaker never counts it.
		return fmt.Errorf("%w: %s", errVersionConflict, msg)
	case http.StatusGatewayTimeout:
		// The shard shed the work because the propagated deadline budget
		// had expired; surface it as deadline exhaustion so the router
		// answers 504, not 502.
		return fmt.Errorf("%w: %s", context.DeadlineExceeded, msg)
	}
	// 5xx (and anything unexpected) is a shard-side failure; the
	// fail-closed/degraded policy decides what it means.
	return errors.New(msg)
}

// validatePartial enforces the merge preconditions shared by both wire
// formats: the version pin held, the shard answered for its route-table
// range, every item is inside that range, and the list follows the tie
// rule (descending score, ties by ascending item). A partial failing
// validation is treated as a shard failure — merging it could silently
// corrupt the global list.
func validatePartial(sh shardRoute, p rank.Partial, version uint64, lo, hi int, pin uint64) error {
	if version != pin {
		return fmt.Errorf("shard answered for model version %d, pinned %d", version, pin)
	}
	if lo != sh.lo || hi != sh.hi {
		return fmt.Errorf("shard owns [%d,%d) but the route table says [%d,%d) — stale table, re-flip",
			lo, hi, sh.lo, sh.hi)
	}
	for n, it := range p.Items {
		if it < sh.lo || it >= sh.hi {
			return fmt.Errorf("shard returned item %d outside its range [%d,%d)", it, sh.lo, sh.hi)
		}
		if n > 0 {
			prevS, prevI := p.Scores[n-1], p.Items[n-1]
			if p.Scores[n] > prevS || (p.Scores[n] == prevS && it <= prevI) {
				return fmt.Errorf("shard partial violates the tie rule at rank %d", n)
			}
		}
	}
	return nil
}

// postShardTopM performs one /v1/shard/topm attempt and validates the
// partial (see validatePartial).
func (rt *Router) postShardTopM(ctx context.Context, sh shardRoute, req serve.ShardTopMRequest) (rank.Partial, error) {
	rt.m.shardCalls.Add(1)
	body, err := json.Marshal(req)
	if err != nil {
		return rank.Partial{}, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, sh.url+"/v1/shard/topm", bytes.NewReader(body))
	if err != nil {
		return rank.Partial{}, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	// Propagate the attempt's remaining deadline budget; ctx carries
	// min(per-attempt timeout, overall request deadline), so the shard
	// can shed scoring work whose caller will have given up.
	if dl, ok := ctx.Deadline(); ok {
		if ms := time.Until(dl).Milliseconds(); ms > 0 {
			hreq.Header.Set(serve.DeadlineHeader, strconv.FormatInt(ms, 10))
		}
	}
	// Propagate the trace ID alongside the deadline, so the shard's span
	// records join this request's timeline under one ID.
	if id := obs.ActiveFrom(ctx).ID(); id != "" {
		hreq.Header.Set(obs.TraceHeader, id)
	}
	resp, err := rt.cfg.HTTPClient.Do(hreq)
	if err != nil {
		return rank.Partial{}, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return rank.Partial{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return rank.Partial{}, shardHTTPError("/v1/shard/topm", resp.StatusCode, data)
	}
	var out serve.ShardTopMResponse
	if err := json.Unmarshal(data, &out); err != nil {
		return rank.Partial{}, err
	}
	p := rank.Partial{Items: make([]int, len(out.Items)), Scores: make([]float64, len(out.Items))}
	for n, it := range out.Items {
		p.Items[n] = it.Item
		p.Scores[n] = it.Score
	}
	if err := validatePartial(sh, p, out.ModelVersion, out.ShardLo, out.ShardHi, req.ExpectVersion); err != nil {
		return rank.Partial{}, err
	}
	return p, nil
}

// fingerprintFor canonicalizes a request's filter surface into the cache
// fingerprint, folding in the route-table epoch (which is what makes
// stale-epoch cache hits impossible). Exclusion lists are sorted and
// deduplicated, tag lists sorted and quoted — both order-independent in
// meaning, so canonicalization only widens cache sharing. Stage cache
// keys are appended after a "|s|" marker, each length-prefixed so
// adjacent keys can never alias across stage boundaries (mirroring the
// rank engine's own staged fingerprints); an empty stage key makes the
// request uncacheable. Oversized fingerprints make the request
// uncacheable instead of unbounded.
func fingerprintFor(epoch uint64, exclude []int, spec *serve.FilterSpec, stages []rank.Stage) (string, bool) {
	const maxLen = 4096
	var b strings.Builder
	b.WriteString("e")
	b.WriteString(strconv.FormatUint(epoch, 10))
	if len(exclude) > 0 {
		ex := make([]int, len(exclude))
		copy(ex, exclude)
		sort.Ints(ex)
		b.WriteString("|ex:")
		for n, i := range ex {
			if n > 0 && i == ex[n-1] {
				continue
			}
			b.WriteString(strconv.Itoa(i))
			b.WriteByte(',')
			if b.Len() > maxLen {
				return "", false
			}
		}
	}
	writeTags := func(label string, tags []string) bool {
		if len(tags) == 0 {
			return true
		}
		ts := make([]string, len(tags))
		copy(ts, tags)
		sort.Strings(ts)
		b.WriteString(label)
		for n, t := range ts {
			if n > 0 && t == ts[n-1] {
				continue
			}
			b.WriteString(strconv.Quote(t))
			if b.Len() > maxLen {
				return false
			}
		}
		return true
	}
	if spec != nil {
		if !writeTags("|allow:", spec.AllowTags) || !writeTags("|deny:", spec.DenyTags) {
			return "", false
		}
	}
	if len(stages) > 0 {
		b.WriteString("|s|")
		for _, st := range stages {
			key := st.CacheKey()
			if key == "" {
				return "", false
			}
			b.WriteString(strconv.Itoa(len(key)))
			b.WriteByte(':')
			b.WriteString(key)
			if b.Len() > maxLen {
				return "", false
			}
		}
	}
	return b.String(), true
}
