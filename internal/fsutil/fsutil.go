// Package fsutil holds the small filesystem-durability helpers shared by
// the model writer (internal/core) and the interaction feed
// (internal/feed).
package fsutil

import (
	"fmt"
	"os"
)

// SyncDir fsyncs a directory, making previously renamed or created
// entries durable: without it a crash can roll back a rename (or make a
// freshly created file vanish) when the directory's dirty metadata is
// lost.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("syncing directory: %w", err)
	}
	return nil
}
