// Package rng provides fast, deterministic pseudo-random number generation
// for reproducible experiments.
//
// The experiments in the paper average over repeated problem instances; to
// make every table and figure regenerable bit-for-bit, all stochastic
// components of this repository (dataset synthesis, train/test splits,
// factor initialization, SGD sampling) draw from generators in this package,
// seeded explicitly. The core generator is xoshiro256**, seeded through
// splitmix64, following the reference construction by Blackman and Vigna.
package rng

import "math"

// splitmix64 advances a 64-bit state and returns the next output. It is used
// to expand a single user seed into the four words of xoshiro256** state so
// that similar seeds yield uncorrelated streams.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// RNG is a xoshiro256** pseudo-random generator. It is not safe for
// concurrent use; use Split to derive independent generators per goroutine.
type RNG struct {
	s [4]uint64
	// cached second normal variate from the Box-Muller transform
	hasGauss bool
	gauss    float64
}

// New returns a generator seeded from seed. Distinct seeds produce
// independent-looking streams; the same seed always produces the same stream.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// xoshiro state must not be all zero; splitmix64 guarantees this except
	// for astronomically unlikely outputs, which we guard against anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Split derives a new generator from the current one. The derived generator
// is statistically independent of the parent's subsequent output, which makes
// Split suitable for handing one generator to each worker goroutine.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0xa3ec647659359acd)
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniformly random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation.
	un := uint64(n)
	x := r.Uint64()
	hi, lo := mul64(x, un)
	if lo < un {
		thresh := (-un) % un
		for lo < thresh {
			x = r.Uint64()
			hi, lo = mul64(x, un)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t&mask32 + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

// Float64 returns a uniformly random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Uniform returns a uniformly random float64 in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// NormFloat64 returns a standard normal variate using the Box-Muller
// transform. Two variates are produced per transform; one is cached.
func (r *RNG) NormFloat64() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.gauss = v * f
	r.hasGauss = true
	return u * f
}

// Exp returns an exponentially distributed variate with rate lambda.
// It panics if lambda <= 0.
func (r *RNG) Exp(lambda float64) float64 {
	if lambda <= 0 {
		panic("rng: Exp with non-positive rate")
	}
	return -math.Log(1-r.Float64()) / lambda
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle applies a Fisher-Yates shuffle over n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Sample returns k distinct integers drawn uniformly from [0, n) in random
// order. It panics if k > n or k < 0. For k close to n it shuffles a full
// permutation; for small k it uses Floyd's algorithm to avoid O(n) work.
func (r *RNG) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: Sample k out of range")
	}
	if k == 0 {
		return nil
	}
	if k*4 >= n {
		p := r.Perm(n)
		return p[:k]
	}
	// Floyd's algorithm: O(k) expected time, O(k) space.
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := r.Intn(j + 1)
		if _, ok := chosen[t]; ok {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// Zipf returns integers in [0, n) with probability proportional to
// 1/(i+1)^s, using precomputed cumulative weights. Construct once with
// NewZipf and draw repeatedly.
type Zipf struct {
	cum []float64
	r   *RNG
}

// NewZipf builds a Zipf sampler over [0, n) with exponent s >= 0, drawing
// randomness from r. It panics if n <= 0.
func NewZipf(r *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf with non-positive n")
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += math.Pow(float64(i+1), -s)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &Zipf{cum: cum, r: r}
}

// Draw returns the next Zipf-distributed index.
func (z *Zipf) Draw() int {
	u := z.r.Float64()
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
