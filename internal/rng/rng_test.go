package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct seeds produced %d identical draws out of 100", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(9)
	for _, n := range []int{1, 2, 3, 10, 1000} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d too far from expected %.0f", i, c, want)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestExpMean(t *testing.T) {
	r := New(17)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp(2.0)
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Exp(2) mean = %v, want ~0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(19)
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid element %d", n, v)
			}
			seen[v] = true
		}
	}
}

func TestSampleProperties(t *testing.T) {
	r := New(23)
	f := func(nRaw, kRaw uint16) bool {
		n := int(nRaw%500) + 1
		k := int(kRaw) % (n + 1)
		s := r.Sample(n, k)
		if len(s) != k {
			return false
		}
		seen := make(map[int]bool, k)
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSamplePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Sample(3, 4)")
		}
	}()
	New(1).Sample(3, 4)
}

func TestSplitIndependence(t *testing.T) {
	parent := New(29)
	child := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("parent and child produced %d identical draws", same)
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(31)
	z := NewZipf(r, 100, 1.0)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[z.Draw()]++
	}
	if counts[0] <= counts[50] {
		t.Errorf("Zipf not skewed: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
	// Ratio of first to tenth frequency should be roughly 10 for s=1.
	ratio := float64(counts[0]) / float64(counts[9]+1)
	if ratio < 5 || ratio > 20 {
		t.Errorf("Zipf frequency ratio = %v, want roughly 10", ratio)
	}
}

func TestZipfZeroExponentUniform(t *testing.T) {
	r := New(37)
	z := NewZipf(r, 10, 0)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[z.Draw()]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)-10000) > 500 {
			t.Errorf("Zipf(s=0) bucket %d count %d, want ~10000", i, c)
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(41)
	hits := 0
	for i := 0; i < 100000; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	if math.Abs(float64(hits)/100000-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) rate = %v", float64(hits)/100000)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = r.Intn(1000)
	}
	_ = sink
}
