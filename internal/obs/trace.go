package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"
)

// TraceHeader carries the request's trace ID across processes: minted
// at the edge (router or single-process serve) when absent, echoed in
// the response, and propagated to shards alongside the deadline header
// so one ID ties the router's record to the shard spans behind it.
const TraceHeader = "X-Ocular-Trace-Id"

// maxSpans caps the spans kept per trace so a large batch fan-out
// cannot balloon a record; overflow is counted, not silently dropped.
const maxSpans = 128

// maxNoteLen truncates span notes (which may carry error strings).
const maxNoteLen = 128

// Span is one timed stage inside a request: a rank pipeline phase
// (score, filter_select, rerank), a cache verdict, a shard call, a
// merge. Times are µs offsets so records stay cheap to encode.
type Span struct {
	Name        string `json:"name"`
	StartMicros int64  `json:"start_micros"` // offset from the trace's start
	DurMicros   int64  `json:"dur_micros"`
	Note        string `json:"note,omitempty"`
}

// Trace is one finished request record as served by /debug/traces.
type Trace struct {
	ID           string    `json:"trace_id"`
	Endpoint     string    `json:"endpoint"`
	Start        time.Time `json:"start"`
	DurMicros    int64     `json:"dur_micros"`
	Status       int       `json:"status"`
	Spans        []Span    `json:"spans,omitempty"`
	DroppedSpans int       `json:"dropped_spans,omitempty"`
}

// Active is the in-flight recorder for one request. A nil *Active is
// the disabled recorder: every method is a no-op, so call sites thread
// it unconditionally and pay nothing when tracing is off.
type Active struct {
	tr       *Tracer
	id       string
	endpoint string
	start    time.Time

	mu      sync.Mutex // batch fan-outs record spans concurrently
	spans   []Span
	dropped int
	// spanBuf backs spans for the common few-span request (a cache hit
	// records one, a scatter a handful), so Record allocates only past
	// its capacity.
	spanBuf [8]Span
}

// ID returns the trace ID, "" on the nil recorder.
func (a *Active) ID() string {
	if a == nil {
		return ""
	}
	return a.id
}

// Start returns the wall time the trace began (zero on nil).
func (a *Active) Start() time.Time {
	if a == nil {
		return time.Time{}
	}
	return a.start
}

// Record appends one span. start is the span's wall start; note is
// optional context (cache verdict, shard URL, error) and is truncated
// to keep records bounded.
func (a *Active) Record(name string, start time.Time, d time.Duration, note string) {
	if a == nil {
		return
	}
	if len(note) > maxNoteLen {
		note = note[:maxNoteLen]
	}
	sp := Span{
		Name:        name,
		StartMicros: start.Sub(a.start).Microseconds(),
		DurMicros:   d.Microseconds(),
		Note:        note,
	}
	a.mu.Lock()
	if len(a.spans) < maxSpans {
		a.spans = append(a.spans, sp)
	} else {
		a.dropped++
	}
	a.mu.Unlock()
}

// Tracer mints trace IDs, hands out per-request recorders, and keeps
// the last ringSize finished traces in a lock-free ring for
// /debug/traces. A nil *Tracer is the disabled tracer: Start returns
// nil, Finish and Traces are no-ops, so wiring is unconditional.
type Tracer struct {
	slow     time.Duration
	log      *slog.Logger
	idPrefix string
	idNext   atomic.Uint64
	next     atomic.Uint64
	ring     []atomic.Pointer[Trace]
}

// NewTracer builds a tracer keeping the last ringSize traces. ringSize
// <= 0 returns nil (tracing disabled). slow > 0 logs a structured line
// for any request slower than the threshold, to logger (nil means
// slog.Default()).
func NewTracer(ringSize int, slow time.Duration, logger *slog.Logger) *Tracer {
	if ringSize <= 0 {
		return nil
	}
	if logger == nil {
		logger = slog.Default()
	}
	var seed [6]byte
	_, _ = rand.Read(seed[:])
	return &Tracer{
		slow:     slow,
		log:      logger,
		idPrefix: hex.EncodeToString(seed[:]) + "-",
		ring:     make([]atomic.Pointer[Trace], ringSize),
	}
}

// Start begins a trace for one request. incoming is the value of the
// trace header; a well-formed one is adopted (so router and shard
// records share the ID), anything else gets a freshly minted ID.
func (t *Tracer) Start(endpoint, incoming string) *Active {
	if t == nil {
		return nil
	}
	id := incoming
	if !validTraceID(id) {
		id = t.mintID()
	}
	a := &Active{tr: t, id: id, endpoint: endpoint, start: time.Now()}
	a.spans = a.spanBuf[:0]
	return a
}

// mintID builds idPrefix + hex(counter) in one allocation.
func (t *Tracer) mintID() string {
	n := t.idNext.Add(1)
	var digits [16]byte
	i := len(digits)
	for {
		i--
		digits[i] = "0123456789abcdef"[n&0xf]
		n >>= 4
		if n == 0 {
			break
		}
	}
	var buf [32]byte // 13-byte prefix + up to 16 hex digits
	b := append(buf[:0], t.idPrefix...)
	b = append(b, digits[i:]...)
	return string(b)
}

// Finish closes the trace, stores it in the ring, and emits the
// slow-request log line if the threshold is crossed. Nil-safe on both
// the tracer and the recorder.
func (t *Tracer) Finish(a *Active, status int) {
	if t == nil || a == nil {
		return
	}
	d := time.Since(a.start)
	a.mu.Lock()
	spans := a.spans
	dropped := a.dropped
	a.spans = nil
	a.mu.Unlock()
	tr := &Trace{
		ID:           a.id,
		Endpoint:     a.endpoint,
		Start:        a.start,
		DurMicros:    d.Microseconds(),
		Status:       status,
		Spans:        spans,
		DroppedSpans: dropped,
	}
	slot := (t.next.Add(1) - 1) % uint64(len(t.ring))
	t.ring[slot].Store(tr)
	if t.slow > 0 && d >= t.slow {
		t.log.Warn("slow request",
			slog.String("trace_id", tr.ID),
			slog.String("endpoint", tr.Endpoint),
			slog.Int64("dur_micros", tr.DurMicros),
			slog.Int("status", tr.Status),
			slog.Int("spans", len(spans)))
	}
}

// Traces returns the ring's records oldest-first. Nil-safe: the
// disabled tracer has no traces.
func (t *Tracer) Traces() []*Trace {
	if t == nil {
		return []*Trace{}
	}
	out := make([]*Trace, 0, len(t.ring))
	next := t.next.Load()
	for i := range t.ring {
		slot := (next + uint64(i)) % uint64(len(t.ring))
		if tr := t.ring[slot].Load(); tr != nil {
			out = append(out, tr)
		}
	}
	return out
}

// validTraceID accepts 1–64 chars of [0-9a-zA-Z_-], the shape this
// package mints and the safe subset to echo back into headers/logs.
func validTraceID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

type activeKey struct{}

// WithActive attaches the request's recorder to the context so the
// rank/scatter hooks deep in the pipeline can reach it.
func WithActive(ctx context.Context, a *Active) context.Context {
	if a == nil {
		return ctx
	}
	return context.WithValue(ctx, activeKey{}, a)
}

// ActiveFrom returns the recorder attached to ctx, nil when absent —
// and nil is the disabled recorder, so callers never branch.
func ActiveFrom(ctx context.Context) *Active {
	a, _ := ctx.Value(activeKey{}).(*Active)
	return a
}
