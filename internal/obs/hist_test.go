package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestHistogramBasic(t *testing.T) {
	var h Histogram
	h.Observe(50*time.Microsecond, false)
	h.Observe(50*time.Microsecond, true)
	h.Observe(2*time.Millisecond, false)
	h.Observe(20*time.Second, false) // overflow bucket

	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("Count = %d, want 4", s.Count)
	}
	if s.Errors != 1 {
		t.Fatalf("Errors = %d, want 1", s.Errors)
	}
	wantSum := int64(50 + 50 + 2_000 + 20_000_000)
	if s.SumMicros != wantSum {
		t.Fatalf("SumMicros = %d, want %d", s.SumMicros, wantSum)
	}
	var total uint64
	for _, n := range s.Buckets {
		total += n
	}
	if total != s.Count {
		t.Fatalf("bucket sum %d != count %d", total, s.Count)
	}
	if s.Buckets[NumBuckets-1] != 1 {
		t.Fatalf("overflow bucket = %d, want 1", s.Buckets[NumBuckets-1])
	}

	// A second snapshot must still see the full history (the merge-back
	// invariant), and new observations must accumulate on top.
	h.Observe(time.Microsecond, false)
	s2 := h.Snapshot()
	if s2.Count != 5 || s2.SumMicros != wantSum+1 {
		t.Fatalf("after merge-back: count=%d sum=%d, want 5/%d", s2.Count, s2.SumMicros, wantSum+1)
	}
}

func TestHistogramNil(t *testing.T) {
	var h *Histogram
	h.Observe(time.Millisecond, false) // must not panic
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatalf("nil snapshot count = %d", s.Count)
	}
}

// TestHistogramCoherentUnderConcurrency is the regression test for the
// mean-latency skew the six-bucket endpointMetrics had: with every
// observation a fixed 5µs, any snapshot whose SumMicros is not exactly
// 5×Count (or whose buckets don't sum to Count) mixed a fresh counter
// with a stale one.
func TestHistogramCoherentUnderConcurrency(t *testing.T) {
	var h Histogram
	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(5*time.Microsecond, i%10 == 0)
			}
		}(w)
	}
	var snaps int
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			snaps++
			if s.SumMicros != int64(5*s.Count) {
				t.Errorf("incoherent snapshot: count=%d sum=%d", s.Count, s.SumMicros)
				return
			}
			var total uint64
			for _, n := range s.Buckets {
				total += n
			}
			if total != s.Count {
				t.Errorf("incoherent snapshot: count=%d bucket sum=%d", s.Count, total)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	s := h.Snapshot()
	if want := uint64(workers * perWorker); s.Count != want {
		t.Fatalf("final count = %d, want %d", s.Count, want)
	}
	if want := uint64(workers * perWorker / 10); s.Errors != want {
		t.Fatalf("final errors = %d, want %d", s.Errors, want)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(50*time.Microsecond, false) // bucket (32, 100]
	}
	s := h.Snapshot()
	// rank 50 of 100 falls halfway through the (32, 100] bucket:
	// 32 + 68*50/100 = 66.
	if got := s.Quantile(0.5); got != 66 {
		t.Fatalf("p50 = %v, want 66", got)
	}
	if got := s.Quantile(1); got != 100 {
		t.Fatalf("p100 = %v, want 100 (bucket upper bound)", got)
	}
	if got := (HistSnapshot{}).Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}

	// Overflow-bucket ranks clamp to the highest finite bound.
	var over Histogram
	over.Observe(time.Minute, false)
	if got := over.Snapshot().Quantile(0.99); got != 10_000_000 {
		t.Fatalf("overflow p99 = %v, want 1e7", got)
	}
}

func TestHistSnapshotJSONShape(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond, false)
	raw, err := json.Marshal(h.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]uint64
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("histogram JSON is not a flat label map: %v", err)
	}
	if len(m) != NumBuckets {
		t.Fatalf("histogram JSON has %d buckets, want %d", len(m), NumBuckets)
	}
	if m["<=1ms"] != 1 {
		t.Fatalf("1ms observation not in <=1ms bucket: %v", m)
	}
}

func TestEndpointSnapshotPercentiles(t *testing.T) {
	var h Histogram
	out := EndpointSnapshot(&h)
	if _, ok := out["p50_micros"]; ok {
		t.Fatal("empty endpoint snapshot must omit percentiles")
	}
	h.Observe(time.Millisecond, false)
	out = EndpointSnapshot(&h)
	for _, k := range []string{"requests", "errors", "latency_micros_total", "latency_histogram", "latency_micros_mean", "p50_micros", "p95_micros", "p99_micros"} {
		if _, ok := out[k]; !ok {
			t.Fatalf("endpoint snapshot missing %q", k)
		}
	}
	if m := out["latency_micros_mean"].(float64); m != 1000 {
		t.Fatalf("mean = %v, want 1000", m)
	}
}
