// Package obs is the dependency-free observability layer shared by the
// serve, shard, router and trainer processes: log-scale latency
// histograms with coherent snapshots and interpolated percentiles
// (hist.go), per-request trace records with a lock-free recent-traces
// ring (trace.go), Prometheus text exposition rendered from the same
// snapshot trees the JSON /metrics serves (prom.go) plus an in-repo
// format checker (promcheck.go), and a net/http/pprof side listener
// (pprof.go). Everything here is stdlib-only.
package obs

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// bucketBoundsMicros are the histogram buckets' inclusive upper bounds
// in microseconds: half-decade steps (~2 buckets per decade) from 10µs
// to 10s. Durations above the last bound land in the overflow bucket.
var bucketBoundsMicros = [...]int64{
	10, 32, 100, 316,
	1_000, 3_162, 10_000, 31_623,
	100_000, 316_228, 1_000_000, 3_162_278,
	10_000_000,
}

// NumBuckets counts the buckets including the overflow (>10s) bucket.
const NumBuckets = len(bucketBoundsMicros) + 1

// bucketLabels name the buckets in JSON snapshots.
var bucketLabels = [NumBuckets]string{
	"<=10us", "<=32us", "<=100us", "<=316us",
	"<=1ms", "<=3.2ms", "<=10ms", "<=32ms",
	"<=100ms", "<=316ms", "<=1s", "<=3.2s",
	"<=10s", ">10s",
}

func bucketIdx(d time.Duration) int {
	us := int64(d / time.Microsecond)
	for i, b := range bucketBoundsMicros {
		if us <= b {
			return i
		}
	}
	return NumBuckets - 1
}

// histCell is one of the histogram's two accumulation cells. done
// trails the shared started counter so a snapshot can wait out the
// observations still in flight against the cell it is draining.
type histCell struct {
	done      atomic.Uint64
	sumMicros atomic.Int64
	errors    atomic.Uint64
	buckets   [NumBuckets]atomic.Uint64
}

// Histogram is a concurrency-safe log-scale latency histogram whose
// snapshots are coherent: count, error count, sum and buckets all come
// from the same set of completed observations, so a derived mean can
// never mix a fresh count with a stale sum (the skew the old
// endpointMetrics had). The design is the hot/cold cell pair: bit 63
// of countAndHot selects the hot cell, the low 63 bits count started
// observations. Observe costs four uncontended atomic adds and never
// blocks; Snapshot flips the hot bit, waits for the (short) tail of
// in-flight observations against the now-cold cell, reads it at rest,
// and merges it back into the hot cell so history is never lost.
type Histogram struct {
	countAndHot atomic.Uint64
	cells       [2]histCell
	mu          sync.Mutex // serializes Snapshot's flip/drain/merge
}

const hotBit = uint64(1) << 63

// Observe records one observation. isErr marks it as a failed request
// (counted separately; still part of count/sum/buckets). Nil-safe.
func (h *Histogram) Observe(d time.Duration, isErr bool) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	n := h.countAndHot.Add(1)
	c := &h.cells[n>>63]
	c.sumMicros.Add(int64(d / time.Microsecond))
	if isErr {
		c.errors.Add(1)
	}
	c.buckets[bucketIdx(d)].Add(1)
	c.done.Add(1)
}

// Snapshot returns a coherent copy of everything observed so far.
// Nil-safe: a nil histogram snapshots as empty.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	// Flip the hot bit; observers that loaded the old value are still
	// finishing against the cold cell, so spin until its done count
	// reaches the started count. The invariant that makes this total:
	// every previous snapshot merged its cold cell into the then-hot
	// cell, so the cold cell always holds the complete history.
	n := h.countAndHot.Add(hotBit)
	started := n &^ hotBit
	cold := &h.cells[(n>>63)^1]
	for cold.done.Load() != started {
		runtime.Gosched()
	}
	s.Count = started
	s.Errors = cold.errors.Load()
	s.SumMicros = cold.sumMicros.Load()
	for i := range s.Buckets {
		s.Buckets[i] = cold.buckets[i].Load()
	}
	// Merge the cold cell into the hot one and zero it, restoring the
	// invariant for the next flip.
	hot := &h.cells[n>>63]
	hot.sumMicros.Add(s.SumMicros)
	hot.errors.Add(s.Errors)
	for i := range s.Buckets {
		hot.buckets[i].Add(s.Buckets[i])
	}
	hot.done.Add(started)
	cold.sumMicros.Add(-s.SumMicros)
	cold.errors.Add(-s.Errors)
	for i := range s.Buckets {
		cold.buckets[i].Add(-s.Buckets[i])
	}
	cold.done.Add(-started)
	return s
}

// HistSnapshot is one coherent read of a Histogram.
type HistSnapshot struct {
	Count     uint64
	Errors    uint64
	SumMicros int64
	Buckets   [NumBuckets]uint64
}

// Mean returns the mean latency in microseconds, 0 when empty. Because
// Count and SumMicros come from the same drained cell, the mean cannot
// be skewed by a mid-burst read.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.SumMicros) / float64(s.Count)
}

// Quantile returns the q-quantile (0 < q <= 1) in microseconds,
// linearly interpolated within the bucket the rank falls in — the same
// estimate Prometheus' histogram_quantile computes. Ranks landing in
// the overflow bucket clamp to the highest bound.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := uint64(0)
	for i, n := range s.Buckets {
		if n == 0 {
			cum += n
			continue
		}
		prev := cum
		cum += n
		if float64(cum) < rank {
			continue
		}
		if i == NumBuckets-1 {
			return float64(bucketBoundsMicros[len(bucketBoundsMicros)-1])
		}
		lo := float64(0)
		if i > 0 {
			lo = float64(bucketBoundsMicros[i-1])
		}
		hi := float64(bucketBoundsMicros[i])
		return lo + (hi-lo)*(rank-float64(prev))/float64(n)
	}
	return float64(bucketBoundsMicros[len(bucketBoundsMicros)-1])
}

// MarshalJSON renders the buckets as a label→count object, every
// bucket present, so the JSON /metrics histogram keeps the flat shape
// it has always had (just with the finer log-scale labels).
func (s HistSnapshot) MarshalJSON() ([]byte, error) {
	b := make([]byte, 0, 16*NumBuckets)
	b = append(b, '{')
	for i, n := range s.Buckets {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, '"')
		b = append(b, bucketLabels[i]...)
		b = append(b, '"', ':')
		b = appendUint(b, n)
	}
	return append(b, '}'), nil
}

func appendUint(b []byte, n uint64) []byte {
	if n == 0 {
		return append(b, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for n > 0 {
		i--
		tmp[i] = byte('0' + n%10)
		n /= 10
	}
	return append(b, tmp[i:]...)
}

// EndpointSnapshot renders one endpoint histogram in the shape the
// /metrics JSON trees share across serve, shard and router: raw
// counters, the bucket map, and the interpolated percentiles.
func EndpointSnapshot(h *Histogram) map[string]any {
	s := h.Snapshot()
	out := map[string]any{
		"requests":             s.Count,
		"errors":               s.Errors,
		"latency_micros_total": s.SumMicros,
		"latency_histogram":    s,
	}
	if s.Count > 0 {
		out["latency_micros_mean"] = s.Mean()
		out["p50_micros"] = s.Quantile(0.50)
		out["p95_micros"] = s.Quantile(0.95)
		out["p99_micros"] = s.Quantile(0.99)
	}
	return out
}
