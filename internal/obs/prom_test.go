package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// buildTree exercises every node kind the /metrics trees use: scalars,
// bools, strings, nested maps, Labeled rows with histograms, and a
// LabeledList with a nested map (the shards_health shape).
func buildTree() map[string]any {
	var h Histogram
	h.Observe(50*time.Microsecond, false)
	h.Observe(3*time.Millisecond, true)
	return map[string]any{
		"requests":       int64(2),
		"uptime_seconds": 12.5,
		"draining":       false,
		"version":        "v2-mmap",
		"cache": map[string]any{
			"hits":   uint64(1),
			"misses": uint64(1),
		},
		"endpoints": Labeled{Label: "endpoint", Rows: map[string]map[string]any{
			"recommend": EndpointSnapshot(&h),
			"batch":     EndpointSnapshot(&Histogram{}),
		}},
		"shards_health": LabeledList{Label: "shard", Key: "url", Rows: []map[string]any{
			{"url": "http://s1", "down": true, "last_error": `conn "refused"`, "breaker": map[string]any{"state": "open"}},
			{"url": "http://s2", "down": false, "breaker": map[string]any{"state": "closed"}},
		}},
		"skipped": nil,
	}
}

func TestExpositionPassesChecker(t *testing.T) {
	out := AppendExposition(nil, "ocular", buildTree())
	if err := CheckExposition(bytes.NewReader(out)); err != nil {
		t.Fatalf("own exposition fails own checker: %v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{
		"# TYPE ocular_endpoints_latency_histogram histogram",
		`ocular_endpoints_latency_histogram_bucket{endpoint="recommend",le="+Inf"} 2`,
		`ocular_endpoints_requests{endpoint="recommend"} 2`,
		`ocular_shards_health_down{shard="http://s1"} 1`,
		`ocular_shards_health_breaker_state{shard="http://s1",value="open"} 1`,
		`ocular_shards_health_last_error{shard="http://s1",value="conn \"refused\""} 1`,
		`ocular_version{value="v2-mmap"} 1`,
		"ocular_requests 2",
		"ocular_uptime_seconds 12.5",
		"ocular_draining 0",
		"ocular_cache_hits 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if strings.Contains(text, "skipped") {
		t.Error("nil leaf must be skipped")
	}
	// One TYPE line per family, samples contiguous under it.
	if n := strings.Count(text, "# TYPE ocular_endpoints_latency_histogram "); n != 1 {
		t.Errorf("histogram family has %d TYPE lines, want 1", n)
	}
}

func TestExpositionHistogramCumulative(t *testing.T) {
	var h Histogram
	h.Observe(50*time.Microsecond, false)
	h.Observe(50*time.Microsecond, false)
	h.Observe(2*time.Second, false)
	out := string(AppendExposition(nil, "t", map[string]any{"lat": h.Snapshot()}))
	for _, want := range []string{
		`t_lat_bucket{le="100"} 2`,
		`t_lat_bucket{le="3162278"} 3`,
		`t_lat_bucket{le="+Inf"} 3`,
		"t_lat_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestCheckerCatchesViolations(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"no TYPE":          "a_metric 1\n",
		"bad name":         "# TYPE 9bad untyped\n9bad 1\n",
		"bad type":         "# TYPE m wibble\nm 1\n",
		"duplicate TYPE":   "# TYPE m untyped\nm 1\n# TYPE m untyped\nm 2\n",
		"non-numeric":      "# TYPE m untyped\nm pizza\n",
		"bad label syntax": "# TYPE m untyped\nm{x=unquoted} 1\n",
		"split family":     "# TYPE a untyped\na 1\n# TYPE b untyped\nb 1\na{l=\"2\"} 2\n",
		"hist no +Inf":     "# TYPE h histogram\nh_bucket{le=\"10\"} 1\nh_sum 5\nh_count 1\n",
		"hist no sum":      "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
		"hist count skew":  "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 5\nh_count 2\n",
		"hist decreasing":  "# TYPE h histogram\nh_bucket{le=\"10\"} 5\nh_bucket{le=\"20\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"hist bad bounds":  "# TYPE h histogram\nh_bucket{le=\"20\"} 1\nh_bucket{le=\"10\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n",
	}
	for name, in := range cases {
		if err := CheckExposition(strings.NewReader(in)); err == nil {
			t.Errorf("%s: checker accepted a broken exposition", name)
		}
	}
}

func TestCheckerAcceptsValidForms(t *testing.T) {
	in := strings.Join([]string{
		"# HELP m a help line",
		"# TYPE m counter",
		`m{a="x,y", b="z"} 4 1700000000`,
		"",
		"# TYPE g gauge",
		"g +Inf",
		"# TYPE h histogram",
		`h_bucket{le="10"} 1`,
		`h_bucket{le="+Inf"} 2`,
		"h_sum 11.5",
		"h_count 2",
	}, "\n") + "\n"
	if err := CheckExposition(strings.NewReader(in)); err != nil {
		t.Fatalf("checker rejected a valid exposition: %v", err)
	}
}

func TestSanitizeName(t *testing.T) {
	for in, want := range map[string]string{
		"deadline_504s": "deadline_504s",
		"p50-micros":    "p50_micros",
		"9lead":         "_lead",
		"":              "_",
		"ok_name":       "ok_name",
	} {
		if got := sanitizeName(in); got != want {
			t.Errorf("sanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}
