package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// CheckExposition validates a Prometheus text exposition: metric-name
// and label-name syntax, known TYPE lines, one contiguous block per
// family, histograms with increasing le bounds, non-decreasing
// cumulative counts, a closing +Inf bucket that matches _count, and a
// _sum sample. It is the in-repo stand-in for a real scraper in CI —
// strict enough to catch a malformed exposition, zero dependencies.
func CheckExposition(r io.Reader) error {
	c := &expoChecker{
		types:  map[string]string{},
		closed: map[string]bool{},
		hists:  map[string]map[string]*histSeries{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if err := c.checkLine(sc.Text()); err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if line == 0 {
		return fmt.Errorf("empty exposition")
	}
	return c.finish()
}

type histSeries struct {
	les      []float64
	counts   []uint64
	sum      bool
	count    uint64
	hasCount bool
}

type expoChecker struct {
	types   map[string]string
	closed  map[string]bool
	current string
	hists   map[string]map[string]*histSeries
}

var promTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true,
	"summary": true, "untyped": true,
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}

func (c *expoChecker) checkLine(s string) error {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	if strings.HasPrefix(s, "#") {
		fields := strings.Fields(s)
		if len(fields) >= 2 && (fields[1] == "TYPE" || fields[1] == "HELP") {
			if len(fields) < 3 {
				return fmt.Errorf("malformed %s line", fields[1])
			}
			name := fields[2]
			if !validMetricName(name) {
				return fmt.Errorf("invalid metric name %q", name)
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("malformed TYPE line")
				}
				if !promTypes[fields[3]] {
					return fmt.Errorf("unknown metric type %q", fields[3])
				}
				if _, dup := c.types[name]; dup {
					return fmt.Errorf("duplicate TYPE for %q", name)
				}
				if c.closed[name] {
					return fmt.Errorf("TYPE for %q after its samples ended", name)
				}
				c.types[name] = fields[3]
				c.enter(name)
			}
		}
		return nil
	}
	name, labels, value, err := parseSample(s)
	if err != nil {
		return err
	}
	if !validMetricName(name) {
		return fmt.Errorf("invalid metric name %q", name)
	}
	fam := c.familyOf(name)
	if _, ok := c.types[fam]; !ok {
		return fmt.Errorf("sample %q has no TYPE line", name)
	}
	if err := c.enterErr(fam); err != nil {
		return err
	}
	if c.types[fam] == "histogram" {
		return c.histSample(fam, name, labels, value)
	}
	return nil
}

// enter switches the contiguity tracker to family name, closing the
// previous one.
func (c *expoChecker) enter(name string) {
	if c.current != "" && c.current != name {
		c.closed[c.current] = true
	}
	c.current = name
}

func (c *expoChecker) enterErr(name string) error {
	if c.closed[name] && c.current != name {
		return fmt.Errorf("family %q is not contiguous", name)
	}
	c.enter(name)
	return nil
}

// familyOf resolves a sample name to its family: histogram samples
// carry _bucket/_sum/_count suffixes.
func (c *expoChecker) familyOf(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(name, suf)
		if ok && c.types[base] == "histogram" {
			return base
		}
	}
	return name
}

func (c *expoChecker) histSample(fam, name string, labels map[string]string, value string) error {
	series := c.hists[fam]
	if series == nil {
		series = map[string]*histSeries{}
		c.hists[fam] = series
	}
	le, hasLE := labels["le"]
	delete(labels, "le")
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sk strings.Builder
	for _, k := range keys {
		sk.WriteString(k)
		sk.WriteByte('=')
		sk.WriteString(labels[k])
		sk.WriteByte(';')
	}
	h := series[sk.String()]
	if h == nil {
		h = &histSeries{}
		series[sk.String()] = h
	}
	switch {
	case strings.HasSuffix(name, "_bucket"):
		if !hasLE {
			return fmt.Errorf("histogram bucket %q lacks an le label", name)
		}
		lef, err := parseLE(le)
		if err != nil {
			return fmt.Errorf("bucket %q: %w", name, err)
		}
		n, err := strconv.ParseUint(value, 10, 64)
		if err != nil {
			return fmt.Errorf("bucket %q has non-integer count %q", name, value)
		}
		h.les = append(h.les, lef)
		h.counts = append(h.counts, n)
	case strings.HasSuffix(name, "_sum"):
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			return fmt.Errorf("%q has non-numeric value %q", name, value)
		}
		h.sum = true
	case strings.HasSuffix(name, "_count"):
		n, err := strconv.ParseUint(value, 10, 64)
		if err != nil {
			return fmt.Errorf("%q has non-integer value %q", name, value)
		}
		h.count = n
		h.hasCount = true
	default:
		return fmt.Errorf("sample %q inside histogram family %q", name, fam)
	}
	return nil
}

func parseLE(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad le bound %q", s)
	}
	return f, nil
}

func (c *expoChecker) finish() error {
	for fam, series := range c.hists {
		for key, h := range series {
			where := fam
			if key != "" {
				where = fam + "{" + key + "}"
			}
			if len(h.les) == 0 {
				return fmt.Errorf("histogram %s has no buckets", where)
			}
			for i := 1; i < len(h.les); i++ {
				if h.les[i] <= h.les[i-1] {
					return fmt.Errorf("histogram %s: le bounds not increasing", where)
				}
				if h.counts[i] < h.counts[i-1] {
					return fmt.Errorf("histogram %s: bucket counts decrease at le=%g", where, h.les[i])
				}
			}
			last := h.les[len(h.les)-1]
			if !math.IsInf(last, 1) {
				return fmt.Errorf("histogram %s lacks the +Inf bucket", where)
			}
			if !h.hasCount {
				return fmt.Errorf("histogram %s lacks a _count sample", where)
			}
			if h.counts[len(h.counts)-1] != h.count {
				return fmt.Errorf("histogram %s: +Inf bucket %d != _count %d",
					where, h.counts[len(h.counts)-1], h.count)
			}
			if !h.sum {
				return fmt.Errorf("histogram %s lacks a _sum sample", where)
			}
		}
	}
	return nil
}

// parseSample splits a sample line into name, labels and value,
// validating label syntax and escapes. Timestamps (a trailing integer
// field) are accepted and ignored.
func parseSample(s string) (name string, labels map[string]string, value string, err error) {
	labels = map[string]string{}
	i := 0
	for i < len(s) && s[i] != '{' && s[i] != ' ' {
		i++
	}
	name = s[:i]
	if i < len(s) && s[i] == '{' {
		i++
		for {
			for i < len(s) && s[i] == ' ' {
				i++
			}
			if i < len(s) && s[i] == '}' {
				i++
				break
			}
			j := i
			for j < len(s) && s[j] != '=' {
				j++
			}
			if j == len(s) {
				return "", nil, "", fmt.Errorf("unterminated label set")
			}
			lname := strings.TrimSpace(s[i:j])
			if !validLabelName(lname) {
				return "", nil, "", fmt.Errorf("invalid label name %q", lname)
			}
			i = j + 1
			if i >= len(s) || s[i] != '"' {
				return "", nil, "", fmt.Errorf("label %q value is not quoted", lname)
			}
			i++
			var val strings.Builder
			for {
				if i >= len(s) {
					return "", nil, "", fmt.Errorf("unterminated label value for %q", lname)
				}
				c := s[i]
				if c == '"' {
					i++
					break
				}
				if c == '\\' {
					i++
					if i >= len(s) {
						return "", nil, "", fmt.Errorf("dangling escape in label %q", lname)
					}
					switch s[i] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						return "", nil, "", fmt.Errorf("bad escape \\%c in label %q", s[i], lname)
					}
					i++
					continue
				}
				val.WriteByte(c)
				i++
			}
			labels[lname] = val.String()
			if i < len(s) && s[i] == ',' {
				i++
			}
		}
	}
	rest := strings.Fields(s[i:])
	if len(rest) < 1 || len(rest) > 2 {
		return "", nil, "", fmt.Errorf("expected value (and optional timestamp) after %q", name)
	}
	value = rest[0]
	if _, ferr := strconv.ParseFloat(strings.TrimPrefix(value, "+"), 64); ferr != nil && value != "+Inf" && value != "-Inf" && value != "NaN" {
		return "", nil, "", fmt.Errorf("non-numeric sample value %q", value)
	}
	if len(rest) == 2 {
		if _, terr := strconv.ParseInt(rest[1], 10, 64); terr != nil {
			return "", nil, "", fmt.Errorf("bad timestamp %q", rest[1])
		}
	}
	return name, labels, value, nil
}
