package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// StartPprof serves net/http/pprof on its own side listener at addr,
// keeping the profiler off the serving mux (and its admission gate).
// The returned listener reports the bound address (useful with ":0")
// and closing it stops the profiler.
func StartPprof(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		srv := &http.Server{Handler: mux}
		_ = srv.Serve(ln)
	}()
	return ln, nil
}
