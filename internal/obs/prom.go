package obs

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
)

// Prometheus text exposition (format version 0.0.4), rendered from the
// very same map[string]any snapshot tree the JSON /metrics serves —
// one snapshot source, two encodings, so the views can never disagree.
//
// Mapping rules: nested map keys join with '_' into the metric name
// (sanitized to the prom charset); numbers and bools become untyped
// samples; strings become info-style samples (name{value="..."} 1);
// HistSnapshot values become real histogram families with cumulative
// le buckets in microseconds; Labeled / LabeledList subtrees render
// their child keys as a label instead of a name segment, which is how
// per-endpoint and per-shard rows keep one family per field.

// Labeled marks a subtree whose Rows should render as one label per
// row key (e.g. endpoint="recommend") rather than as name segments.
// JSON marshalling passes the rows through untouched.
type Labeled struct {
	Label string
	Rows  map[string]map[string]any
}

// MarshalJSON emits the raw rows, keeping the JSON view identical to
// the unwrapped map.
func (l Labeled) MarshalJSON() ([]byte, error) {
	return json.Marshal(l.Rows)
}

// LabeledList is Labeled for row slices: each row's Key field supplies
// the label value and the remaining fields become families. JSON
// marshalling again passes the rows through untouched.
type LabeledList struct {
	Label string
	Key   string
	Rows  []map[string]any
}

// MarshalJSON emits the raw rows.
func (l LabeledList) MarshalJSON() ([]byte, error) {
	return json.Marshal(l.Rows)
}

// ContentType is the exposition's Content-Type header value.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

type promFamily struct {
	typ   string
	lines []string
}

// AppendExposition renders tree as Prometheus text exposition onto b.
// prefix (typically "ocular") heads every metric name. Samples of one
// family are emitted contiguously with a single # TYPE line, as the
// format requires, in first-seen walk order; map keys are walked
// sorted so the output is deterministic.
func AppendExposition(b []byte, prefix string, tree map[string]any) []byte {
	fams := map[string]*promFamily{}
	var order []string
	family := func(name, typ string) *promFamily {
		f := fams[name]
		if f == nil {
			f = &promFamily{typ: typ}
			fams[name] = f
			order = append(order, name)
		}
		return f
	}
	var walk func(name, labels string, v any)
	sample := func(name, labels, value string) {
		f := family(name, "untyped")
		var line []byte
		line = append(line, name...)
		if labels != "" {
			line = append(line, '{')
			line = append(line, labels...)
			line = append(line, '}')
		}
		line = append(line, ' ')
		line = append(line, value...)
		f.lines = append(f.lines, string(line))
	}
	addLabel := func(labels, k, v string) string {
		pair := sanitizeName(k) + `="` + escapeLabel(v) + `"`
		if labels == "" {
			return pair
		}
		return labels + "," + pair
	}
	walk = func(name, labels string, v any) {
		switch x := v.(type) {
		case map[string]any:
			keys := make([]string, 0, len(x))
			for k := range x {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				walk(name+"_"+sanitizeName(k), labels, x[k])
			}
		case Labeled:
			keys := make([]string, 0, len(x.Rows))
			for k := range x.Rows {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				rl := addLabel(labels, x.Label, k)
				walk(name, rl, map[string]any(x.Rows[k]))
			}
		case LabeledList:
			for _, row := range x.Rows {
				key, _ := row[x.Key].(string)
				rl := addLabel(labels, x.Label, key)
				rest := make(map[string]any, len(row))
				for k, v := range row {
					if k != x.Key {
						rest[k] = v
					}
				}
				walk(name, rl, rest)
			}
		case HistSnapshot:
			appendHistFamily(family(name, "histogram"), name, labels, x)
		case *HistSnapshot:
			if x != nil {
				appendHistFamily(family(name, "histogram"), name, labels, *x)
			}
		case bool:
			if x {
				sample(name, labels, "1")
			} else {
				sample(name, labels, "0")
			}
		case string:
			sample(name, addLabel(labels, "value", x), "1")
		case float64:
			sample(name, labels, strconv.FormatFloat(x, 'g', -1, 64))
		case float32:
			sample(name, labels, strconv.FormatFloat(float64(x), 'g', -1, 64))
		case int:
			sample(name, labels, strconv.FormatInt(int64(x), 10))
		case int64:
			sample(name, labels, strconv.FormatInt(x, 10))
		case uint64:
			sample(name, labels, strconv.FormatUint(x, 10))
		case uint32:
			sample(name, labels, strconv.FormatUint(uint64(x), 10))
		case nil:
			// skip
		default:
			// Unknown leaf types are skipped rather than guessed at;
			// the JSON view still carries them.
		}
	}
	walk(sanitizeName(prefix), "", tree)
	for _, name := range order {
		f := fams[name]
		b = append(b, "# TYPE "...)
		b = append(b, name...)
		b = append(b, ' ')
		b = append(b, f.typ...)
		b = append(b, '\n')
		for _, line := range f.lines {
			b = append(b, line...)
			b = append(b, '\n')
		}
	}
	return b
}

// appendHistFamily renders one HistSnapshot as _bucket/_sum/_count
// samples; bucket bounds are the µs upper bounds, cumulative, with the
// mandatory le="+Inf" bucket equal to _count.
func appendHistFamily(f *promFamily, name, labels string, s HistSnapshot) {
	withLE := func(le string) string {
		pair := `le="` + le + `"`
		if labels == "" {
			return pair
		}
		return labels + "," + pair
	}
	cum := uint64(0)
	for i, n := range s.Buckets {
		cum += n
		le := "+Inf"
		if i < len(bucketBoundsMicros) {
			le = strconv.FormatInt(bucketBoundsMicros[i], 10)
		}
		f.lines = append(f.lines,
			name+"_bucket{"+withLE(le)+"} "+strconv.FormatUint(cum, 10))
	}
	suffix := " "
	if labels != "" {
		suffix = "{" + labels + "} "
	}
	f.lines = append(f.lines, name+"_sum"+suffix+strconv.FormatInt(s.SumMicros, 10))
	f.lines = append(f.lines, name+"_count"+suffix+strconv.FormatUint(s.Count, 10))
}

// sanitizeName maps an arbitrary key into the prom name charset
// [a-zA-Z0-9_]; anything else becomes '_', and a leading digit gets a
// '_' prefix.
func sanitizeName(s string) string {
	if s == "" {
		return "_"
	}
	out := []byte(s)
	changed := false
	for i := 0; i < len(out); i++ {
		c := out[i]
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9' && i > 0)
		if !ok {
			out[i] = '_'
			changed = true
		}
	}
	if !changed {
		return s
	}
	return string(out)
}

func escapeLabel(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			out = append(out, '\\', '\\')
		case '"':
			out = append(out, '\\', '"')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, c)
		}
	}
	return string(out)
}

// WriteExposition renders tree onto w with the exposition content
// type, returning the HTTP status for instrumented handlers.
func WriteExposition(w http.ResponseWriter, tree map[string]any) int {
	b := AppendExposition(nil, "ocular", tree)
	w.Header().Set("Content-Type", ContentType)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(b)
	return http.StatusOK
}
