package obs

import (
	"bytes"
	"context"
	"log/slog"
	"strings"
	"testing"
	"time"
)

func TestTracerMintAndAdopt(t *testing.T) {
	tr := NewTracer(8, 0, nil)
	a := tr.Start("recommend", "")
	if a.ID() == "" {
		t.Fatal("minted ID is empty")
	}
	b := tr.Start("recommend", "upstream-id-42")
	if b.ID() != "upstream-id-42" {
		t.Fatalf("valid incoming ID not adopted: %q", b.ID())
	}
	c := tr.Start("recommend", "bad id\nwith junk")
	if c.ID() == "bad id\nwith junk" || c.ID() == "" {
		t.Fatalf("malformed incoming ID must be replaced, got %q", c.ID())
	}
	d := tr.Start("recommend", strings.Repeat("x", 65))
	if len(d.ID()) > 64 {
		t.Fatalf("over-long incoming ID adopted: %q", d.ID())
	}
	if a.ID() == c.ID() {
		t.Fatal("minted IDs must be unique")
	}
}

func TestTracerRingOldestFirst(t *testing.T) {
	tr := NewTracer(4, 0, nil)
	for i := 0; i < 6; i++ {
		a := tr.Start("ep", "")
		tr.Finish(a, 200)
	}
	got := tr.Traces()
	if len(got) != 4 {
		t.Fatalf("ring holds %d traces, want 4", len(got))
	}
	// The ring keeps the last 4 of 6; oldest-first iteration means each
	// record is newer than the previous one.
	for i := 1; i < len(got); i++ {
		if got[i].Start.Before(got[i-1].Start) {
			t.Fatalf("traces not oldest-first at %d", i)
		}
	}
}

func TestActiveSpans(t *testing.T) {
	tr := NewTracer(4, 0, nil)
	a := tr.Start("ep", "")
	start := a.Start()
	a.Record("score", start, 3*time.Millisecond, "")
	a.Record("shard_call", start.Add(time.Millisecond), 2*time.Millisecond, strings.Repeat("n", 500))
	tr.Finish(a, 207)

	traces := tr.Traces()
	if len(traces) != 1 {
		t.Fatalf("got %d traces", len(traces))
	}
	rec := traces[0]
	if rec.Status != 207 || rec.Endpoint != "ep" || rec.ID != a.ID() {
		t.Fatalf("trace header wrong: %+v", rec)
	}
	if len(rec.Spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(rec.Spans))
	}
	if rec.Spans[0].Name != "score" || rec.Spans[0].DurMicros != 3000 {
		t.Fatalf("span 0 = %+v", rec.Spans[0])
	}
	if rec.Spans[1].StartMicros < 900 || rec.Spans[1].StartMicros > 1100 {
		t.Fatalf("span 1 offset = %d, want ~1000", rec.Spans[1].StartMicros)
	}
	if len(rec.Spans[1].Note) != maxNoteLen {
		t.Fatalf("note not truncated: %d bytes", len(rec.Spans[1].Note))
	}
}

func TestActiveSpanCap(t *testing.T) {
	tr := NewTracer(2, 0, nil)
	a := tr.Start("ep", "")
	for i := 0; i < maxSpans+10; i++ {
		a.Record("s", a.Start(), time.Microsecond, "")
	}
	tr.Finish(a, 200)
	rec := tr.Traces()[0]
	if len(rec.Spans) != maxSpans {
		t.Fatalf("kept %d spans, want %d", len(rec.Spans), maxSpans)
	}
	if rec.DroppedSpans != 10 {
		t.Fatalf("dropped = %d, want 10", rec.DroppedSpans)
	}
}

func TestNilTracerAndActive(t *testing.T) {
	if tr := NewTracer(0, 0, nil); tr != nil {
		t.Fatal("ringSize 0 must return the nil (disabled) tracer")
	}
	var tr *Tracer
	a := tr.Start("ep", "")
	if a != nil {
		t.Fatal("nil tracer must hand out nil recorders")
	}
	a.Record("s", time.Now(), time.Second, "") // must not panic
	if a.ID() != "" {
		t.Fatal("nil recorder ID must be empty")
	}
	tr.Finish(a, 200)
	if got := tr.Traces(); len(got) != 0 {
		t.Fatalf("nil tracer has %d traces", len(got))
	}
	ctx := WithActive(context.Background(), nil)
	if ActiveFrom(ctx) != nil {
		t.Fatal("nil recorder attached to context")
	}
}

func TestContextRoundTrip(t *testing.T) {
	tr := NewTracer(2, 0, nil)
	a := tr.Start("ep", "")
	ctx := WithActive(context.Background(), a)
	if got := ActiveFrom(ctx); got != a {
		t.Fatal("recorder lost in context round trip")
	}
	if ActiveFrom(context.Background()) != nil {
		t.Fatal("empty context must yield nil recorder")
	}
}

func TestSlowRequestLog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	tr := NewTracer(2, time.Nanosecond, logger)
	a := tr.Start("recommend", "")
	time.Sleep(time.Millisecond)
	tr.Finish(a, 200)
	out := buf.String()
	if !strings.Contains(out, "slow request") || !strings.Contains(out, a.ID()) {
		t.Fatalf("slow-request log missing: %q", out)
	}

	buf.Reset()
	fast := NewTracer(2, time.Hour, logger)
	fa := fast.Start("recommend", "")
	fast.Finish(fa, 200)
	if buf.Len() != 0 {
		t.Fatalf("fast request logged: %q", buf.String())
	}
}
