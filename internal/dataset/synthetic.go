package dataset

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/sparse"
)

// PlantedConfig parameterizes the planted overlapping co-cluster generator,
// the synthetic substitute for the paper's proprietary and oversized
// datasets (DESIGN.md §4). The generative story mirrors the paper's model:
// there exist K ground-truth co-clusters (communities of users that buy a
// bundle of items); a pair inside a co-cluster is positive with probability
// WithinProb; a popularity-skewed background of noise positives is added on
// top. Users and items may belong to several clusters, so clusters overlap.
type PlantedConfig struct {
	// Name labels the generated dataset.
	Name string
	// Users and Items set the matrix shape.
	Users, Items int
	// Clusters is the number of planted co-clusters.
	Clusters int
	// MinClusterUsers..MaxClusterUsers bound the user-side cluster size
	// (inclusive); likewise for items.
	MinClusterUsers, MaxClusterUsers int
	MinClusterItems, MaxClusterItems int
	// WithinProb is the probability that an in-cluster pair is positive.
	WithinProb float64
	// NoisePositives is the number of background positive examples drawn
	// with popularity-skewed items (Zipf with exponent PopularitySkew) and
	// uniform users. Duplicates with structural positives merge.
	NoisePositives int
	// PopularitySkew is the Zipf exponent of noise item popularity.
	PopularitySkew float64
}

func (c PlantedConfig) validate() error {
	switch {
	case c.Users <= 0 || c.Items <= 0:
		return fmt.Errorf("dataset: non-positive shape %dx%d", c.Users, c.Items)
	case c.Clusters < 0:
		return fmt.Errorf("dataset: negative cluster count")
	case c.MinClusterUsers <= 0 || c.MaxClusterUsers < c.MinClusterUsers || c.MaxClusterUsers > c.Users:
		return fmt.Errorf("dataset: bad user cluster-size range [%d,%d] for %d users", c.MinClusterUsers, c.MaxClusterUsers, c.Users)
	case c.MinClusterItems <= 0 || c.MaxClusterItems < c.MinClusterItems || c.MaxClusterItems > c.Items:
		return fmt.Errorf("dataset: bad item cluster-size range [%d,%d] for %d items", c.MinClusterItems, c.MaxClusterItems, c.Items)
	case c.WithinProb <= 0 || c.WithinProb > 1:
		return fmt.Errorf("dataset: WithinProb %v outside (0,1]", c.WithinProb)
	case c.NoisePositives < 0:
		return fmt.Errorf("dataset: negative NoisePositives")
	}
	return nil
}

// Planted is a generated dataset together with its ground-truth co-clusters,
// which recovery tests and the Fig 6 co-cluster metrics use.
type Planted struct {
	*Dataset
	Clusters []ToyCoCluster
}

// GeneratePlanted draws a dataset from the planted overlapping co-cluster
// model. The same (config, seed) pair always yields the same dataset.
func GeneratePlanted(cfg PlantedConfig, r *rng.RNG) (*Planted, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	b := sparse.NewBuilder(cfg.Users, cfg.Items)
	clusters := make([]ToyCoCluster, 0, cfg.Clusters)
	for c := 0; c < cfg.Clusters; c++ {
		nu := cfg.MinClusterUsers + r.Intn(cfg.MaxClusterUsers-cfg.MinClusterUsers+1)
		ni := cfg.MinClusterItems + r.Intn(cfg.MaxClusterItems-cfg.MinClusterItems+1)
		cu := r.Sample(cfg.Users, nu)
		ci := r.Sample(cfg.Items, ni)
		for _, u := range cu {
			for _, i := range ci {
				if r.Bernoulli(cfg.WithinProb) {
					b.Add(u, i)
				}
			}
		}
		clusters = append(clusters, ToyCoCluster{Users: cu, Items: ci})
	}
	if cfg.NoisePositives > 0 {
		z := rng.NewZipf(r, cfg.Items, cfg.PopularitySkew)
		for n := 0; n < cfg.NoisePositives; n++ {
			b.Add(r.Intn(cfg.Users), z.Draw())
		}
	}
	return &Planted{
		Dataset:  &Dataset{Name: cfg.Name, R: b.Build()},
		Clusters: clusters,
	}, nil
}

// mustPlanted wraps GeneratePlanted for the built-in presets, whose configs
// are valid by construction.
func mustPlanted(cfg PlantedConfig, r *rng.RNG) *Planted {
	p, err := GeneratePlanted(cfg, r)
	if err != nil {
		panic(err)
	}
	return p
}

// SyntheticMovieLens substitutes for the MovieLens 1M dataset (6,000 users x
// 4,000 movies, ~3% dense after the >=3 binarization). The preset preserves
// the aspect ratio and density at a size that trains in seconds on a laptop
// core: overlapping genre-like co-clusters plus a popularity background.
func SyntheticMovieLens(seed uint64) *Planted {
	return mustPlanted(PlantedConfig{
		Name:            "movielens-syn",
		Users:           1200,
		Items:           800,
		Clusters:        30,
		MinClusterUsers: 40, MaxClusterUsers: 120,
		MinClusterItems: 20, MaxClusterItems: 60,
		WithinProb:     0.35,
		NoisePositives: 8000,
		PopularitySkew: 0.8,
	}, rng.New(seed))
}

// SyntheticCiteULike substitutes for the CiteULike dataset (5,551 users x
// 16,980 articles, ~0.2% dense). The preset keeps the item-heavy shape and
// extreme sparsity: many small reading-circle co-clusters over a large
// article catalogue.
func SyntheticCiteULike(seed uint64) *Planted {
	return mustPlanted(PlantedConfig{
		Name:            "citeulike-syn",
		Users:           1100,
		Items:           3400,
		Clusters:        60,
		MinClusterUsers: 10, MaxClusterUsers: 40,
		MinClusterItems: 20, MaxClusterItems: 80,
		WithinProb:     0.25,
		NoisePositives: 5000,
		PopularitySkew: 1.0,
	}, rng.New(seed))
}

// SyntheticB2B substitutes for the proprietary B2B-DB dataset (80,000
// clients x 3,000 products). Clients vastly outnumber products, purchases
// cluster into industry solution bundles, and co-clusters are denser than in
// the consumer datasets — the regime the paper's deployment section
// describes. Client and product display names are attached for the
// explanation experiments (Fig 10).
func SyntheticB2B(seed uint64) *Planted {
	p := mustPlanted(PlantedConfig{
		Name:            "b2b-syn",
		Users:           1600,
		Items:           300,
		Clusters:        25,
		MinClusterUsers: 40, MaxClusterUsers: 200,
		MinClusterItems: 8, MaxClusterItems: 30,
		WithinProb:     0.4,
		NoisePositives: 6000,
		PopularitySkew: 0.7,
	}, rng.New(seed))
	p.UserNames = clientNames(p.Users(), seed)
	p.ItemNames = productNames(p.Items())
	return p
}

// NetflixShape describes the synthetic Netflix substitute returned by
// SyntheticNetflix for a given scale.
//
// The real Netflix dataset has 480,189 users, 17,770 movies and ~56M
// positives after binarization. Fig 7 measures that training time per
// iteration is linear in nnz and in K — a property of the algorithm, not of
// the data — so the substitute preserves the user:item ratio and per-user
// degree while scaling the shape by `scale`.
func SyntheticNetflix(seed uint64, scale float64) *Planted {
	if scale <= 0 || scale > 1 {
		panic("dataset: SyntheticNetflix scale must be in (0,1]")
	}
	users := max(200, int(16000*scale))
	items := max(60, int(600*scale*10)) // keep catalogue growth sublinear, as in Netflix
	clusters := max(5, int(50*scale))
	return mustPlanted(PlantedConfig{
		Name:            fmt.Sprintf("netflix-syn-%.2g", scale),
		Users:           users,
		Items:           items,
		Clusters:        clusters,
		MinClusterUsers: max(10, users/80), MaxClusterUsers: max(20, users/16),
		MinClusterItems: max(5, items/40), MaxClusterItems: max(10, items/8),
		WithinProb:     0.3,
		NoisePositives: users * 4,
		PopularitySkew: 1.0,
	}, rng.New(seed))
}

// industries flavor the generated client names, echoing the paper's
// deployment example where co-cluster 1 grouped airlines and co-cluster 3
// telcos (Fig 10).
var industries = []string{
	"Airline", "Telco", "Bank", "Insurer", "Retailer", "Utility",
	"Hospital", "Logistics", "Automotive", "Pharma", "Media", "Energy",
}

func clientNames(n int, seed uint64) []string {
	r := rng.New(seed ^ 0x5ca1ab1e)
	names := make([]string, n)
	for u := range names {
		names[u] = fmt.Sprintf("Client %d (%s)", u+1, industries[r.Intn(len(industries))])
	}
	return names
}

// productFamilies and productTiers combine into B2B product names such as
// "Custom Cloud Enterprise", echoing the deployment example's
// "Custom Cloud" recommendation.
var productFamilies = []string{
	"Custom Cloud", "Managed Backup", "Private Cloud", "Analytics Suite",
	"Security Monitoring", "Mainframe Support", "Storage Array",
	"Disaster Recovery", "Database Service", "Middleware Stack",
	"Network Fabric", "Virtual Desktop", "API Gateway", "Data Lake",
	"Identity Platform", "Batch Compute", "Edge CDN", "Container Platform",
	"Payment Gateway", "Fraud Detection",
}

var productTiers = []string{
	"Basic", "Standard", "Plus", "Advanced", "Premium", "Enterprise",
	"Global", "Lite", "Pro", "Select", "Prime", "Core", "Max", "Ultra", "Flex",
}

func productNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		fam := productFamilies[i%len(productFamilies)]
		tier := productTiers[(i/len(productFamilies))%len(productTiers)]
		names[i] = fam + " " + tier
	}
	return names
}

// SyntheticGeneExpression substitutes for the gene-expression biclustering
// application the paper's conclusion points at (Prelic et al. 2006): rows
// are genes, columns are experimental conditions, and a positive marks a
// gene upregulated under a condition. Planted transcription modules overlap
// (genes participate in several pathways), which is exactly the structure
// non-overlapping biclustering misses.
func SyntheticGeneExpression(seed uint64) *Planted {
	p := mustPlanted(PlantedConfig{
		Name:            "gene-expr-syn",
		Users:           900, // genes
		Items:           80,  // conditions
		Clusters:        8,   // transcription modules
		MinClusterUsers: 40, MaxClusterUsers: 120,
		MinClusterItems: 8, MaxClusterItems: 20,
		WithinProb:     0.75, // expression signatures are denser than purchases
		NoisePositives: 2500,
		PopularitySkew: 0.3,
	}, rng.New(seed))
	genes := make([]string, p.Users())
	for g := range genes {
		genes[g] = fmt.Sprintf("GENE%04d", g+1)
	}
	conds := make([]string, p.Items())
	for c := range conds {
		conds[c] = fmt.Sprintf("cond-%02d", c+1)
	}
	p.UserNames = genes
	p.ItemNames = conds
	return p
}

// SyntheticSmall is a small planted dataset (120 users x 80 items, 6
// co-clusters) that trains in milliseconds. Tests and examples across the
// repository use it where the full presets would be wastefully large.
func SyntheticSmall(seed uint64) *Planted {
	return mustPlanted(PlantedConfig{
		Name: "planted-small", Users: 120, Items: 80, Clusters: 6,
		MinClusterUsers: 10, MaxClusterUsers: 30,
		MinClusterItems: 8, MaxClusterItems: 20,
		WithinProb: 0.4, NoisePositives: 300, PopularitySkew: 0.8,
	}, rng.New(seed))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
