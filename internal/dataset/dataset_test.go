package dataset

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/sparse"
)

func TestPaperToyShape(t *testing.T) {
	toy := PaperToy()
	if toy.Users() != 12 || toy.Items() != 12 {
		t.Fatalf("toy shape %dx%d, want 12x12", toy.Users(), toy.Items())
	}
	if len(toy.Clusters) != 3 {
		t.Fatalf("toy has %d clusters, want 3", len(toy.Clusters))
	}
	if len(toy.Held) != 3 {
		t.Fatalf("toy has %d held pairs, want 3", len(toy.Held))
	}
	// Held pairs must be unknowns (they are the candidate recommendations).
	for _, h := range toy.Held {
		if toy.R.Has(h[0], h[1]) {
			t.Errorf("held pair %v present in matrix", h)
		}
	}
	// Every held pair lies inside at least one planted co-cluster.
	for _, h := range toy.Held {
		if !insideAnyCluster(toy.Clusters, h[0], h[1]) {
			t.Errorf("held pair %v not inside any cluster", h)
		}
	}
	// Users 3, 10, 11 and items 0, 10, 11 are empty margins.
	for _, u := range []int{3, 10, 11} {
		if toy.R.RowNNZ(u) != 0 {
			t.Errorf("user %d should be empty", u)
		}
	}
	for _, i := range []int{0, 10, 11} {
		if toy.R.ColNNZ(i) != 0 {
			t.Errorf("item %d should be empty", i)
		}
	}
}

func TestPaperToyOverlap(t *testing.T) {
	toy := PaperToy()
	// User 6 is in clusters 2 and 3 (indices 1 and 2); item 4 in all three.
	inCluster := func(cl ToyCoCluster, u int) bool {
		for _, v := range cl.Users {
			if v == u {
				return true
			}
		}
		return false
	}
	itemIn := func(cl ToyCoCluster, i int) bool {
		for _, v := range cl.Items {
			if v == i {
				return true
			}
		}
		return false
	}
	if inCluster(toy.Clusters[0], 6) || !inCluster(toy.Clusters[1], 6) || !inCluster(toy.Clusters[2], 6) {
		t.Error("user 6 cluster membership wrong")
	}
	for c := range toy.Clusters {
		if !itemIn(toy.Clusters[c], 4) {
			t.Errorf("item 4 missing from cluster %d", c)
		}
	}
}

func insideAnyCluster(clusters []ToyCoCluster, u, i int) bool {
	for _, cl := range clusters {
		uIn, iIn := false, false
		for _, v := range cl.Users {
			if v == u {
				uIn = true
			}
		}
		for _, v := range cl.Items {
			if v == i {
				iIn = true
			}
		}
		if uIn && iIn {
			return true
		}
	}
	return false
}

func TestSplitEntries(t *testing.T) {
	toy := PaperToy()
	r := rng.New(1)
	sp := SplitEntries(toy.R, 0.75, r)
	if sp.Train.Rows() != toy.R.Rows() || sp.Test.Rows() != toy.R.Rows() {
		t.Fatal("split changed shape")
	}
	if sp.Train.NNZ()+sp.Test.NNZ() != toy.R.NNZ() {
		t.Fatalf("split lost entries: %d + %d != %d", sp.Train.NNZ(), sp.Test.NNZ(), toy.R.NNZ())
	}
	wantTrain := int(float64(toy.R.NNZ())*0.75 + 0.5)
	if sp.Train.NNZ() != wantTrain {
		t.Fatalf("train nnz = %d, want %d", sp.Train.NNZ(), wantTrain)
	}
	// Disjointness: no entry in both parts.
	sp.Train.Each(func(u, i int) {
		if sp.Test.Has(u, i) {
			t.Errorf("entry (%d,%d) in both train and test", u, i)
		}
	})
	// Union recovers the original.
	b := sparse.NewBuilder(toy.R.Rows(), toy.R.Cols())
	sp.Train.Each(func(u, i int) { b.Add(u, i) })
	sp.Test.Each(func(u, i int) { b.Add(u, i) })
	if !b.Build().Equal(toy.R) {
		t.Fatal("train ∪ test != original")
	}
}

func TestSplitDeterministicPerSeed(t *testing.T) {
	d := SyntheticSmall(3)
	a := SplitEntries(d.R, 0.75, rng.New(9))
	b := SplitEntries(d.R, 0.75, rng.New(9))
	c := SplitEntries(d.R, 0.75, rng.New(10))
	if !a.Train.Equal(b.Train) || !a.Test.Equal(b.Test) {
		t.Fatal("same seed gave different splits")
	}
	if a.Train.Equal(c.Train) {
		t.Fatal("different seeds gave identical splits")
	}
}

func TestSplitPanicsOnBadFrac(t *testing.T) {
	toy := PaperToy()
	for _, f := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SplitEntries(%v) did not panic", f)
				}
			}()
			SplitEntries(toy.R, f, rng.New(1))
		}()
	}
}

func TestSubsampleEntries(t *testing.T) {
	d := SyntheticSmall(5)
	r := rng.New(2)
	half := SubsampleEntries(d.R, 0.5, r)
	want := int(float64(d.R.NNZ())*0.5 + 0.5)
	if half.NNZ() != want {
		t.Fatalf("subsample nnz = %d, want %d", half.NNZ(), want)
	}
	half.Each(func(u, i int) {
		if !d.R.Has(u, i) {
			t.Errorf("subsample invented entry (%d,%d)", u, i)
		}
	})
	full := SubsampleEntries(d.R, 1, rng.New(3))
	if !full.Equal(d.R) {
		t.Fatal("frac=1 subsample differs from original")
	}
}

func TestGeneratePlantedValidation(t *testing.T) {
	bad := []PlantedConfig{
		{Users: 0, Items: 10},
		{Users: 10, Items: 10, Clusters: 1, MinClusterUsers: 0, MaxClusterUsers: 5, MinClusterItems: 1, MaxClusterItems: 5, WithinProb: 0.5},
		{Users: 10, Items: 10, Clusters: 1, MinClusterUsers: 5, MaxClusterUsers: 20, MinClusterItems: 1, MaxClusterItems: 5, WithinProb: 0.5},
		{Users: 10, Items: 10, Clusters: 1, MinClusterUsers: 1, MaxClusterUsers: 5, MinClusterItems: 1, MaxClusterItems: 5, WithinProb: 0},
		{Users: 10, Items: 10, Clusters: 1, MinClusterUsers: 1, MaxClusterUsers: 5, MinClusterItems: 1, MaxClusterItems: 5, WithinProb: 0.5, NoisePositives: -1},
	}
	for i, cfg := range bad {
		if _, err := GeneratePlanted(cfg, rng.New(1)); err == nil {
			t.Errorf("config %d accepted, want error", i)
		}
	}
}

func TestGeneratePlantedDeterminism(t *testing.T) {
	cfg := PlantedConfig{
		Name: "t", Users: 50, Items: 40, Clusters: 4,
		MinClusterUsers: 5, MaxClusterUsers: 15,
		MinClusterItems: 5, MaxClusterItems: 10,
		WithinProb: 0.5, NoisePositives: 30, PopularitySkew: 1,
	}
	a, err := GeneratePlanted(cfg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := GeneratePlanted(cfg, rng.New(7))
	if !a.R.Equal(b.R) {
		t.Fatal("same seed gave different datasets")
	}
}

func TestGeneratePlantedStructure(t *testing.T) {
	f := func(seed uint16) bool {
		cfg := PlantedConfig{
			Name: "q", Users: 60, Items: 50, Clusters: 3,
			MinClusterUsers: 5, MaxClusterUsers: 20,
			MinClusterItems: 5, MaxClusterItems: 15,
			WithinProb: 0.6, NoisePositives: 20, PopularitySkew: 0.5,
		}
		p, err := GeneratePlanted(cfg, rng.New(uint64(seed)))
		if err != nil {
			return false
		}
		if p.R.Rows() != 60 || p.R.Cols() != 50 || len(p.Clusters) != 3 {
			return false
		}
		for _, cl := range p.Clusters {
			if len(cl.Users) < 5 || len(cl.Users) > 20 || len(cl.Items) < 5 || len(cl.Items) > 15 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPresetsShape(t *testing.T) {
	ml := SyntheticMovieLens(1)
	if ml.Users() != 1200 || ml.Items() != 800 {
		t.Fatalf("movielens preset shape %dx%d", ml.Users(), ml.Items())
	}
	if d := ml.R.Density(); d < 0.01 || d > 0.08 {
		t.Errorf("movielens density %v outside plausible range", d)
	}

	cu := SyntheticCiteULike(1)
	if cu.Items() <= cu.Users() {
		t.Error("citeulike preset should be item-heavy")
	}
	if d := cu.R.Density(); d > 0.02 {
		t.Errorf("citeulike density %v too high", d)
	}

	b2b := SyntheticB2B(1)
	if b2b.Users() <= b2b.Items() {
		t.Error("b2b preset should be client-heavy")
	}
	if b2b.UserNames == nil || b2b.ItemNames == nil {
		t.Fatal("b2b preset must carry names")
	}
	if !strings.HasPrefix(b2b.UserName(0), "Client 1 (") {
		t.Errorf("client name = %q", b2b.UserName(0))
	}
	if !strings.Contains(b2b.ItemName(0), "Custom Cloud") {
		t.Errorf("first product name = %q", b2b.ItemName(0))
	}

	nf := SyntheticNetflix(1, 0.05)
	if nf.Users() <= 0 || nf.R.NNZ() == 0 {
		t.Fatal("netflix preset empty")
	}
}

func TestNetflixScaleMonotonic(t *testing.T) {
	small := SyntheticNetflix(1, 0.02)
	big := SyntheticNetflix(1, 0.1)
	if big.R.NNZ() <= small.R.NNZ() {
		t.Errorf("nnz not increasing with scale: %d vs %d", small.R.NNZ(), big.R.NNZ())
	}
	if big.Users() <= small.Users() {
		t.Error("users not increasing with scale")
	}
}

func TestNetflixScalePanics(t *testing.T) {
	for _, s := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("scale %v did not panic", s)
				}
			}()
			SyntheticNetflix(1, s)
		}()
	}
}

func TestLoadRatingsMovieLensFormat(t *testing.T) {
	src := strings.NewReader(strings.Join([]string{
		"1::10::5::978300760",
		"1::11::2::978300761", // below threshold, dropped
		"2::10::3::978300762",
		"2::12::4::978300763",
		"",
	}, "\n"))
	d, err := LoadRatings(src, "ml-test", MovieLensOptions())
	if err != nil {
		t.Fatal(err)
	}
	if d.Users() != 2 || d.Items() != 2 {
		t.Fatalf("shape %dx%d, want 2x2 (item 11 dropped entirely)", d.Users(), d.Items())
	}
	if d.R.NNZ() != 3 {
		t.Fatalf("nnz = %d, want 3", d.R.NNZ())
	}
	if d.UserName(0) != "1" || d.ItemName(0) != "10" {
		t.Errorf("names: user0=%q item0=%q", d.UserName(0), d.ItemName(0))
	}
}

func TestLoadRatingsOneClass(t *testing.T) {
	src := strings.NewReader("u1,article9\nu2,article9\nu1,article7\n")
	d, err := LoadRatings(src, "cu-test", LoadOptions{Sep: ","})
	if err != nil {
		t.Fatal(err)
	}
	if d.Users() != 2 || d.Items() != 2 || d.R.NNZ() != 3 {
		t.Fatalf("got %s", d)
	}
}

func TestLoadRatingsHeaderAndComments(t *testing.T) {
	src := strings.NewReader("# comment\nuser,item,rating\na,b,4\n# another\nc,d,5\n")
	d, err := LoadRatings(src, "csv", LoadOptions{Sep: ",", Threshold: 3, Comment: "#", SkipHeader: true})
	if err != nil {
		t.Fatal(err)
	}
	if d.R.NNZ() != 2 {
		t.Fatalf("nnz = %d, want 2", d.R.NNZ())
	}
}

func TestLoadRatingsErrors(t *testing.T) {
	if _, err := LoadRatings(strings.NewReader("a,b"), "x", LoadOptions{Sep: ""}); err == nil {
		t.Error("empty separator accepted")
	}
	if _, err := LoadRatings(strings.NewReader("onlyonefield"), "x", LoadOptions{Sep: ","}); err == nil {
		t.Error("short line accepted")
	}
	if _, err := LoadRatings(strings.NewReader("a,b"), "x", LoadOptions{Sep: ",", Threshold: 3}); err == nil {
		t.Error("missing rating accepted")
	}
	if _, err := LoadRatings(strings.NewReader("a,b,notanumber"), "x", LoadOptions{Sep: ",", Threshold: 3}); err == nil {
		t.Error("bad rating accepted")
	}
}

func TestDatasetNames(t *testing.T) {
	d := &Dataset{Name: "n", R: sparse.NewBuilder(2, 2).Build()}
	if d.UserName(1) != "User 1" || d.ItemName(0) != "Item 0" {
		t.Error("default names wrong")
	}
	d.UserNames = []string{"Alice", ""}
	if d.UserName(0) != "Alice" {
		t.Error("explicit name ignored")
	}
	if d.UserName(1) != "User 1" {
		t.Error("empty name should fall back")
	}
}

func TestDatasetString(t *testing.T) {
	toy := PaperToy()
	s := toy.String()
	if !strings.Contains(s, "paper-toy") || !strings.Contains(s, "12 users x 12 items") {
		t.Errorf("String() = %q", s)
	}
}
