package dataset

import "repro/internal/sparse"

// ToyCoCluster describes one planted co-cluster of the paper's introductory
// example: a set of users and a set of items.
type ToyCoCluster struct {
	Users []int
	Items []int
}

// Toy is the 12x12 running example of Figures 1-3 of the paper: three
// overlapping user-item co-clusters with three positives withheld inside
// them. A correct overlapping co-clustering recommender should surface
// exactly the withheld pairs; the paper shows that non-overlapping
// community detection (Fig 2) recovers at most one of them.
type Toy struct {
	*Dataset
	// Clusters are the planted ground-truth co-clusters.
	Clusters []ToyCoCluster
	// Held are the withheld in-cluster positives, i.e. the expected
	// recommendations, as (user, item) pairs.
	Held [][2]int
}

// PaperToy reconstructs the paper's example. The geometry follows Figure 3:
//
//   - co-cluster 1: users {0,1,2}   x items {3,4,5,6}
//   - co-cluster 2: users {4,5,6}   x items {1,2,3,4}
//   - co-cluster 3: users {6,7,8,9} x items {4,...,9}
//
// User 6 overlaps clusters 2 and 3; item 4 lies in all three clusters,
// matching the worked interpretation in Section IV-C ("Item 4 is in all
// three co-clusters, while User 6 is in co-clusters 2 and 3 only"). Three
// in-cluster positives are withheld: (1,6), (5,1) and (6,4); these are the
// three candidate recommendations of Figure 1. The (6,4) pair is the
// worked example: item 4's support spans both of user 6's co-clusters, so
// its fitted probability lands near the paper's reported 0.83. Users 3, 10,
// 11 and items 0, 10, 11 are deliberately untouched so the matrix has empty
// margins as in the figure.
func PaperToy() *Toy {
	clusters := []ToyCoCluster{
		{Users: []int{0, 1, 2}, Items: []int{3, 4, 5, 6}},
		{Users: []int{4, 5, 6}, Items: []int{1, 2, 3, 4}},
		{Users: []int{6, 7, 8, 9}, Items: []int{4, 5, 6, 7, 8, 9}},
	}
	held := [][2]int{{1, 6}, {5, 1}, {6, 4}}
	heldSet := make(map[[2]int]bool, len(held))
	for _, h := range held {
		heldSet[h] = true
	}
	b := sparse.NewBuilder(12, 12)
	for _, cl := range clusters {
		for _, u := range cl.Users {
			for _, i := range cl.Items {
				if !heldSet[[2]int{u, i}] {
					b.Add(u, i)
				}
			}
		}
	}
	return &Toy{
		Dataset:  &Dataset{Name: "paper-toy", R: b.Build()},
		Clusters: clusters,
		Held:     held,
	}
}
