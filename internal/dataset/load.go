package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/sparse"
)

// LoadOptions controls parsing of rating files.
type LoadOptions struct {
	// Sep is the field separator. MovieLens 1M uses "::"; CSV uses ",".
	Sep string
	// Threshold is the minimum rating treated as a positive example. The
	// paper binarizes MovieLens and Netflix with ratings >= 3 as positives
	// and discards the rest (Section VII-A). For datasets that are already
	// one-class (CiteULike), use Threshold 0 with two-column lines.
	Threshold float64
	// Comment, when non-empty, causes lines starting with it to be skipped.
	Comment string
	// SkipHeader skips the first non-comment line (CSV headers).
	SkipHeader bool
}

// MovieLensOptions are the options for the MovieLens 1M ratings.dat format
// ("userID::movieID::rating::timestamp") with the paper's >=3 binarization.
func MovieLensOptions() LoadOptions { return LoadOptions{Sep: "::", Threshold: 3} }

// NetflixOptions are the options for a flattened Netflix triple file
// ("userID,movieID,rating") with the paper's >=3 binarization.
func NetflixOptions() LoadOptions { return LoadOptions{Sep: ",", Threshold: 3} }

// LoadRatings parses a ratings stream into a Dataset named name. Each line
// holds at least user and item fields and, unless the file is one-class, a
// rating field. User and item identifiers are arbitrary strings and are
// mapped to dense indices in first-seen order; the mapping is recorded in
// UserNames/ItemNames.
//
// Lines with a rating below opts.Threshold are ignored entirely, matching
// the paper's protocol of treating sub-threshold ratings as unknowns rather
// than negatives.
func LoadRatings(src io.Reader, name string, opts LoadOptions) (*Dataset, error) {
	if opts.Sep == "" {
		return nil, fmt.Errorf("dataset: empty separator")
	}
	type pair struct{ u, i int }
	userIdx := make(map[string]int)
	itemIdx := make(map[string]int)
	var userNames, itemNames []string
	var pairs []pair

	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	headerSkipped := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if opts.Comment != "" && strings.HasPrefix(line, opts.Comment) {
			continue
		}
		if opts.SkipHeader && !headerSkipped {
			headerSkipped = true
			continue
		}
		fields := strings.Split(line, opts.Sep)
		if len(fields) < 2 {
			return nil, fmt.Errorf("dataset: line %d: want at least 2 fields, got %d", lineNo, len(fields))
		}
		if opts.Threshold > 0 {
			if len(fields) < 3 {
				return nil, fmt.Errorf("dataset: line %d: rating field required with threshold %v", lineNo, opts.Threshold)
			}
			rating, err := strconv.ParseFloat(strings.TrimSpace(fields[2]), 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: bad rating %q: %v", lineNo, fields[2], err)
			}
			if rating < opts.Threshold {
				continue
			}
		}
		uKey := strings.TrimSpace(fields[0])
		iKey := strings.TrimSpace(fields[1])
		u, ok := userIdx[uKey]
		if !ok {
			u = len(userNames)
			userIdx[uKey] = u
			userNames = append(userNames, uKey)
		}
		i, ok := itemIdx[iKey]
		if !ok {
			i = len(itemNames)
			itemIdx[iKey] = i
			itemNames = append(itemNames, iKey)
		}
		pairs = append(pairs, pair{u, i})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: reading ratings: %w", err)
	}
	b := sparse.NewBuilder(len(userNames), len(itemNames))
	for _, p := range pairs {
		b.Add(p.u, p.i)
	}
	return &Dataset{Name: name, R: b.Build(), UserNames: userNames, ItemNames: itemNames}, nil
}
