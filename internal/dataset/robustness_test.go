package dataset

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// TestLoadRatingsNeverPanics feeds structured garbage to the loader; every
// input must produce either a dataset or an error, never a panic.
func TestLoadRatingsNeverPanics(t *testing.T) {
	tokens := []string{"a", "b", ",", "::", "\t", "1", "-3", "4.5", "NaN", "#", "\n", " ", "%", "x,y,z,w", "::::"}
	f := func(seed uint16, optSel uint8) bool {
		r := rng.New(uint64(seed) + 777)
		var b strings.Builder
		for n := 0; n < r.Intn(40); n++ {
			b.WriteString(tokens[r.Intn(len(tokens))])
		}
		opts := []LoadOptions{
			{Sep: ","},
			{Sep: ",", Threshold: 3},
			{Sep: "::", Threshold: 3},
			{Sep: "\t"},
			{Sep: ",", Comment: "#", SkipHeader: true},
		}[int(optSel)%5]
		defer func() {
			if p := recover(); p != nil {
				t.Errorf("panic on input %q: %v", b.String(), p)
			}
		}()
		_, _ = LoadRatings(strings.NewReader(b.String()), "fuzz", opts)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestLoadRatingsLargeIDs verifies arbitrary string identifiers map to
// dense indices regardless of magnitude or content.
func TestLoadRatingsLargeIDs(t *testing.T) {
	src := "999999999999,zzz\n-17,zzz\nuser with spaces,item/with/slashes\n"
	d, err := LoadRatings(strings.NewReader(src), "ids", LoadOptions{Sep: ","})
	if err != nil {
		t.Fatal(err)
	}
	if d.Users() != 3 || d.Items() != 2 {
		t.Fatalf("shape %dx%d", d.Users(), d.Items())
	}
	if d.UserName(2) != "user with spaces" {
		t.Fatalf("name %q", d.UserName(2))
	}
}

// TestSplitExtremeFractions exercises splits near the boundaries.
func TestSplitExtremeFractions(t *testing.T) {
	d := SyntheticSmall(80)
	tiny := SplitEntries(d.R, 0.01, rng.New(1))
	if tiny.Train.NNZ()+tiny.Test.NNZ() != d.R.NNZ() {
		t.Fatal("entries lost at frac=0.01")
	}
	if tiny.Train.NNZ() >= tiny.Test.NNZ() {
		t.Fatal("frac=0.01 should leave almost everything in test")
	}
	big := SplitEntries(d.R, 0.99, rng.New(1))
	if big.Test.NNZ() == 0 {
		t.Fatal("frac=0.99 should still hold out something at this size")
	}
}

// TestGeneExpressionPreset pins the future-work substrate's shape.
func TestGeneExpressionPreset(t *testing.T) {
	g := SyntheticGeneExpression(3)
	if g.Users() != 900 || g.Items() != 80 || len(g.Clusters) != 8 {
		t.Fatalf("gene preset shape %dx%d with %d modules", g.Users(), g.Items(), len(g.Clusters))
	}
	if d := g.R.Density(); d < 0.03 || d > 0.3 {
		t.Errorf("gene preset density %v outside expression-like range", d)
	}
	// Determinism across calls.
	if !g.R.Equal(SyntheticGeneExpression(3).R) {
		t.Error("gene preset not deterministic")
	}
}

func BenchmarkGenerateMovieLens(b *testing.B) {
	for i := 0; i < b.N; i++ {
		SyntheticMovieLens(uint64(i))
	}
}
