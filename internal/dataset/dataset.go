// Package dataset provides the data substrate for the reproduction: the
// Dataset type (a one-class rating matrix plus optional user/item names),
// file loaders for the public datasets the paper uses, train/test splitting
// with the paper's 75/25 protocol, and synthetic generators that substitute
// for the proprietary or oversized datasets (see DESIGN.md §4).
package dataset

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/sparse"
)

// Dataset bundles a one-class interaction matrix with display names. Rows
// are users (clients), columns are items (products). Names may be nil, in
// which case DefaultUserName/DefaultItemName style labels are synthesized on
// demand.
type Dataset struct {
	// Name identifies the dataset in reports, e.g. "movielens-syn".
	Name string
	// R is the positive-example matrix: R.Has(u,i) means r_ui = 1.
	R *sparse.Matrix
	// UserNames and ItemNames are optional display labels, indexed by
	// row/column. Either may be nil.
	UserNames []string
	ItemNames []string
}

// Users returns the number of users (rows).
func (d *Dataset) Users() int { return d.R.Rows() }

// Items returns the number of items (columns).
func (d *Dataset) Items() int { return d.R.Cols() }

// UserName returns the display name for user u, synthesizing "User u" when
// no names were provided.
func (d *Dataset) UserName(u int) string {
	if d.UserNames != nil && u < len(d.UserNames) && d.UserNames[u] != "" {
		return d.UserNames[u]
	}
	return fmt.Sprintf("User %d", u)
}

// ItemName returns the display name for item i, synthesizing "Item i" when
// no names were provided.
func (d *Dataset) ItemName(i int) string {
	if d.ItemNames != nil && i < len(d.ItemNames) && d.ItemNames[i] != "" {
		return d.ItemNames[i]
	}
	return fmt.Sprintf("Item %d", i)
}

// String describes the dataset shape, e.g. "movielens-syn: 1200 users x 800
// items, 28950 positives (3.02% dense)".
func (d *Dataset) String() string {
	return fmt.Sprintf("%s: %d users x %d items, %d positives (%.2f%% dense)",
		d.Name, d.Users(), d.Items(), d.R.NNZ(), 100*d.R.Density())
}

// Split is a train/test division of the positives of a dataset. Both parts
// keep the full matrix shape so user/item indices stay aligned.
type Split struct {
	Train *sparse.Matrix
	Test  *sparse.Matrix
}

// SplitEntries splits the positives of m uniformly at random into a training
// matrix holding a trainFrac fraction (rounded) and a test matrix holding
// the rest. This is the protocol of Section VII-B2 of the paper
// (75/25 split, repeated over independent problem instances by reseeding).
// It panics unless 0 < trainFrac < 1.
func SplitEntries(m *sparse.Matrix, trainFrac float64, r *rng.RNG) Split {
	if trainFrac <= 0 || trainFrac >= 1 {
		panic("dataset: trainFrac must be in (0,1)")
	}
	n := m.NNZ()
	perm := r.Perm(n)
	nTrain := int(float64(n)*trainFrac + 0.5)
	return Split{
		Train: m.SelectEntries(perm[:nTrain]),
		Test:  m.SelectEntries(perm[nTrain:]),
	}
}

// SubsampleEntries returns a matrix with a uniformly random frac of the
// positives of m, preserving the shape. frac outside (0,1] panics; frac == 1
// returns a matrix equal to m. This is the mechanism behind the Fig 7
// scalability sweep ("increasing fractions of the Netflix dataset ... chosen
// uniformly").
func SubsampleEntries(m *sparse.Matrix, frac float64, r *rng.RNG) *sparse.Matrix {
	if frac <= 0 || frac > 1 {
		panic("dataset: frac must be in (0,1]")
	}
	n := m.NNZ()
	k := int(float64(n)*frac + 0.5)
	if k > n {
		k = n
	}
	return m.SelectEntries(r.Sample(n, k))
}
