package eval

import (
	"sort"

	"repro/internal/sparse"
)

// AUC computes the mean per-user area under the ROC curve: the probability
// that a random held-out positive outranks a random unknown. This is the
// criterion BPR optimizes in expectation (Rendle et al. 2009), included so
// the relative-preference baselines can be scored on their own objective.
//
// For each user with at least one test positive and one unranked unknown,
// AUC(u) = (Σ ranks of positives adjustment) computed in O(n_i log n_i)
// via a single sort; ties contribute 1/2. Users without test positives are
// skipped, as in Evaluate.
func AUC(rec Recommender, train, test *sparse.Matrix) float64 {
	if train.Rows() != rec.NumUsers() || train.Cols() != rec.NumItems() {
		panic("eval: AUC train shape mismatch")
	}
	if test.Rows() != train.Rows() || test.Cols() != train.Cols() {
		panic("eval: AUC test shape mismatch")
	}
	scores := make([]float64, rec.NumItems())
	type cand struct {
		score float64
		pos   bool
	}
	total, users := 0.0, 0
	for u := 0; u < train.Rows(); u++ {
		testRow := test.Row(u)
		if len(testRow) == 0 {
			continue
		}
		rec.ScoreUser(u, scores)
		testSet := make(map[int]bool, len(testRow))
		for _, i := range testRow {
			testSet[int(i)] = true
		}
		cands := make([]cand, 0, rec.NumItems()-train.RowNNZ(u))
		nPos, nNeg := 0, 0
		ownedRow := train.Row(u)
		oi := 0
		for i := range scores {
			for oi < len(ownedRow) && int(ownedRow[oi]) < i {
				oi++
			}
			if oi < len(ownedRow) && int(ownedRow[oi]) == i {
				continue // training positive: excluded from ranking
			}
			isPos := testSet[i]
			cands = append(cands, cand{scores[i], isPos})
			if isPos {
				nPos++
			} else {
				nNeg++
			}
		}
		if nPos == 0 || nNeg == 0 {
			continue
		}
		// Rank-sum (Mann-Whitney) with midranks for ties.
		sort.Slice(cands, func(a, b int) bool { return cands[a].score < cands[b].score })
		rankSum := 0.0
		for lo := 0; lo < len(cands); {
			hi := lo
			for hi < len(cands) && cands[hi].score == cands[lo].score {
				hi++
			}
			midrank := float64(lo+hi+1) / 2 // average of 1-based ranks lo+1..hi
			for k := lo; k < hi; k++ {
				if cands[k].pos {
					rankSum += midrank
				}
			}
			lo = hi
		}
		auc := (rankSum - float64(nPos)*float64(nPos+1)/2) / (float64(nPos) * float64(nNeg))
		total += auc
		users++
	}
	if users == 0 {
		return 0
	}
	return total / float64(users)
}
