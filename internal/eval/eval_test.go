package eval

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/sparse"
)

// fixedRec returns precomputed scores: score[u][i].
type fixedRec struct{ scores [][]float64 }

func (f *fixedRec) ScoreUser(u int, dst []float64) { copy(dst, f.scores[u]) }
func (f *fixedRec) NumUsers() int                  { return len(f.scores) }
func (f *fixedRec) NumItems() int                  { return len(f.scores[0]) }

func TestTopMExcludesTraining(t *testing.T) {
	train := sparse.FromDense([][]bool{{true, false, true, false}})
	rec := &fixedRec{scores: [][]float64{{9, 5, 8, 1}}}
	top := TopM(rec, train, 0, 4, nil)
	if len(top) != 2 {
		t.Fatalf("top = %v, want 2 candidates", top)
	}
	if top[0] != 1 || top[1] != 3 {
		t.Fatalf("top = %v, want [1 3]", top)
	}
}

func TestTopMOrderAndTies(t *testing.T) {
	train := sparse.NewBuilder(1, 5).Build()
	rec := &fixedRec{scores: [][]float64{{2, 5, 5, 1, 5}}}
	top := TopM(rec, train, 0, 5, nil)
	// Ties broken by ascending index: 1, 2, 4 (score 5), then 0, then 3.
	want := []int{1, 2, 4, 0, 3}
	for i := range want {
		if top[i] != want[i] {
			t.Fatalf("top = %v, want %v", top, want)
		}
	}
}

func TestTopMTruncation(t *testing.T) {
	train := sparse.NewBuilder(1, 10).Build()
	scores := make([]float64, 10)
	for i := range scores {
		scores[i] = float64(i)
	}
	rec := &fixedRec{scores: [][]float64{scores}}
	top := TopM(rec, train, 0, 3, nil)
	if len(top) != 3 || top[0] != 9 || top[1] != 8 || top[2] != 7 {
		t.Fatalf("top = %v", top)
	}
}

func TestEvaluatePerfectRecommender(t *testing.T) {
	// 2 users, 4 items. Train: u0 owns i0; u1 owns i1.
	train := sparse.FromDense([][]bool{
		{true, false, false, false},
		{false, true, false, false},
	})
	test := sparse.FromDense([][]bool{
		{false, true, false, false},
		{false, false, true, false},
	})
	// Scores rank each user's test item first.
	rec := &fixedRec{scores: [][]float64{
		{0, 10, 1, 2},
		{0, 0, 10, 1},
	}}
	m := Evaluate(rec, train, test, 1)
	if m.RecallAtM != 1 || m.MAPAtM != 1 || m.PrecisionAtM != 1 {
		t.Fatalf("perfect recommender metrics = %+v", m)
	}
	if m.Users != 2 {
		t.Fatalf("users = %d", m.Users)
	}
}

func TestEvaluateWorstRecommender(t *testing.T) {
	train := sparse.FromDense([][]bool{{true, false, false, false}})
	test := sparse.FromDense([][]bool{{false, true, false, false}})
	rec := &fixedRec{scores: [][]float64{{0, -5, 10, 9}}}
	m := Evaluate(rec, train, test, 2)
	if m.RecallAtM != 0 || m.MAPAtM != 0 || m.PrecisionAtM != 0 {
		t.Fatalf("worst recommender metrics = %+v", m)
	}
}

func TestEvaluateHandComputedAP(t *testing.T) {
	// One user, 6 items, none owned. Test positives: items 0, 2, 4.
	// Scores rank: 0 (hit), 1, 2 (hit), 3, 4 (hit), 5.
	train := sparse.NewBuilder(1, 6).Build()
	test := sparse.FromDense([][]bool{{true, false, true, false, true, false}})
	rec := &fixedRec{scores: [][]float64{{10, 9, 8, 7, 6, 5}}}
	m := Evaluate(rec, train, test, 5)
	// Prec at hits: 1/1, 2/3, 3/5. AP@5 = (1 + 2/3 + 3/5)/min(3,5) = 2.2666/3.
	wantAP := (1.0 + 2.0/3.0 + 3.0/5.0) / 3.0
	if math.Abs(m.MAPAtM-wantAP) > 1e-12 {
		t.Fatalf("MAP@5 = %v, want %v", m.MAPAtM, wantAP)
	}
	if math.Abs(m.RecallAtM-1.0) > 1e-12 { // all 3 found within top 5
		t.Fatalf("recall@5 = %v, want 1", m.RecallAtM)
	}
	if math.Abs(m.PrecisionAtM-3.0/5.0) > 1e-12 {
		t.Fatalf("prec@5 = %v, want 0.6", m.PrecisionAtM)
	}
}

func TestEvaluateSkipsUsersWithoutTestPositives(t *testing.T) {
	train := sparse.FromDense([][]bool{
		{true, false},
		{false, true},
	})
	test := sparse.FromDense([][]bool{
		{false, true},
		{false, false}, // user 1 has no test positives
	})
	rec := &fixedRec{scores: [][]float64{{0, 1}, {1, 0}}}
	m := Evaluate(rec, train, test, 1)
	if m.Users != 1 {
		t.Fatalf("users = %d, want 1", m.Users)
	}
	if m.RecallAtM != 1 {
		t.Fatalf("recall = %v", m.RecallAtM)
	}
}

func TestEvaluateCurveMonotoneRecall(t *testing.T) {
	r := rng.New(3)
	nu, ni := 30, 50
	b := sparse.NewBuilder(nu, ni)
	bt := sparse.NewBuilder(nu, ni)
	scores := make([][]float64, nu)
	for u := 0; u < nu; u++ {
		scores[u] = make([]float64, ni)
		for i := 0; i < ni; i++ {
			scores[u][i] = r.Float64()
			switch r.Intn(10) {
			case 0:
				b.Add(u, i)
			case 1:
				bt.Add(u, i)
			}
		}
	}
	train, test := b.Build(), bt.Build()
	// Remove overlaps from test (train takes precedence in this synthetic setup).
	bt2 := sparse.NewBuilder(nu, ni)
	test.Each(func(u, i int) {
		if !train.Has(u, i) {
			bt2.Add(u, i)
		}
	})
	test = bt2.Build()
	rec := &fixedRec{scores: scores}
	ms := []int{1, 5, 10, 20, 50}
	curve := EvaluateCurve(rec, train, test, ms)
	for i := 1; i < len(curve); i++ {
		if curve[i].RecallAtM < curve[i-1].RecallAtM-1e-12 {
			t.Fatalf("recall not monotone: %v then %v", curve[i-1].RecallAtM, curve[i].RecallAtM)
		}
	}
	// Curve must agree with independent single evaluations.
	for i, m := range ms {
		single := Evaluate(rec, train, test, m)
		if math.Abs(single.RecallAtM-curve[i].RecallAtM) > 1e-12 ||
			math.Abs(single.MAPAtM-curve[i].MAPAtM) > 1e-12 {
			t.Fatalf("curve[%d] = %+v, single = %+v", i, curve[i], single)
		}
	}
}

func TestMetricBounds(t *testing.T) {
	f := func(seed uint16) bool {
		r := rng.New(uint64(seed) + 11)
		nu, ni := 1+r.Intn(10), 2+r.Intn(20)
		b := sparse.NewBuilder(nu, ni)
		bt := sparse.NewBuilder(nu, ni)
		scores := make([][]float64, nu)
		for u := 0; u < nu; u++ {
			scores[u] = make([]float64, ni)
			for i := 0; i < ni; i++ {
				scores[u][i] = r.NormFloat64()
				if r.Bernoulli(0.2) {
					b.Add(u, i)
				} else if r.Bernoulli(0.2) {
					bt.Add(u, i)
				}
			}
		}
		m := Evaluate(&fixedRec{scores: scores}, b.Build(), bt.Build(), 1+r.Intn(ni))
		return m.RecallAtM >= 0 && m.RecallAtM <= 1 &&
			m.MAPAtM >= 0 && m.MAPAtM <= 1 &&
			m.PrecisionAtM >= 0 && m.PrecisionAtM <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluatePanics(t *testing.T) {
	train := sparse.NewBuilder(1, 3).Build()
	test := sparse.NewBuilder(1, 3).Build()
	rec := &fixedRec{scores: [][]float64{{1, 2, 3}}}
	cases := []struct {
		name string
		fn   func()
	}{
		{"empty cutoffs", func() { EvaluateCurve(rec, train, test, nil) }},
		{"unsorted cutoffs", func() { EvaluateCurve(rec, train, test, []int{5, 3}) }},
		{"zero cutoff", func() { EvaluateCurve(rec, train, test, []int{0}) }},
		{"shape mismatch", func() { Evaluate(rec, sparse.NewBuilder(2, 3).Build(), test, 1) }},
		{"test shape mismatch", func() { Evaluate(rec, train, sparse.NewBuilder(1, 4).Build(), 1) }},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", tc.name)
				}
			}()
			tc.fn()
		}()
	}
}

func TestMetricsString(t *testing.T) {
	s := Metrics{RecallAtM: 0.5, MAPAtM: 0.25, PrecisionAtM: 0.1, Users: 7}.String()
	if s != "recall@M=0.5000 MAP@M=0.2500 prec@M=0.1000 (users=7)" {
		t.Fatalf("String() = %q", s)
	}
}

func BenchmarkEvaluate(b *testing.B) {
	r := rng.New(1)
	nu, ni := 500, 400
	bb := sparse.NewBuilder(nu, ni)
	bt := sparse.NewBuilder(nu, ni)
	scores := make([][]float64, nu)
	for u := 0; u < nu; u++ {
		scores[u] = make([]float64, ni)
		for i := 0; i < ni; i++ {
			scores[u][i] = r.Float64()
			if r.Bernoulli(0.05) {
				bb.Add(u, i)
			} else if r.Bernoulli(0.02) {
				bt.Add(u, i)
			}
		}
	}
	train, test := bb.Build(), bt.Build()
	rec := &fixedRec{scores: scores}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Evaluate(rec, train, test, 50)
	}
}
