package eval

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/sparse"
)

// TestHeapMatchesSortReference: the heap selection must return exactly the
// prefix of the full-sort ranking for every m, including under heavy ties.
func TestHeapMatchesSortReference(t *testing.T) {
	f := func(seed uint16, mRaw uint8) bool {
		r := rng.New(uint64(seed) + 101)
		ni := 5 + r.Intn(200)
		scores := make([]float64, ni)
		for i := range scores {
			// Coarse quantization forces many exact ties.
			scores[i] = float64(r.Intn(8))
		}
		b := sparse.NewBuilder(1, ni)
		for i := 0; i < ni; i++ {
			if r.Bernoulli(0.2) {
				b.Add(0, i)
			}
		}
		owned := b.Build().Row(0)
		m := 1 + int(mRaw)%ni
		want := topMSort(scores, owned, m)
		got := topMHeap(scores, owned, m)
		if len(want) != len(got) {
			return false
		}
		for i := range want {
			if want[i] != got[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTopMZeroAndNegative(t *testing.T) {
	train := sparse.NewBuilder(1, 4).Build()
	rec := &fixedRec{scores: [][]float64{{1, 2, 3, 4}}}
	if got := TopM(rec, train, 0, 0, nil); got != nil {
		t.Fatalf("m=0 returned %v", got)
	}
	if got := TopM(rec, train, 0, -3, nil); got != nil {
		t.Fatalf("m<0 returned %v", got)
	}
}

func TestTopMAllOwned(t *testing.T) {
	train := sparse.FromDense([][]bool{{true, true, true}})
	rec := &fixedRec{scores: [][]float64{{1, 2, 3}}}
	if got := TopM(rec, train, 0, 2, nil); len(got) != 0 {
		t.Fatalf("fully-owned user got recommendations %v", got)
	}
}

func TestTopMHeapPathExercised(t *testing.T) {
	// Large catalogue, small m: the heap path must produce a correct
	// descending ranking.
	r := rng.New(7)
	ni := 5000
	scores := make([]float64, ni)
	for i := range scores {
		scores[i] = r.Float64()
	}
	rec := &fixedRec{scores: [][]float64{scores}}
	train := sparse.NewBuilder(1, ni).Build()
	top := TopM(rec, train, 0, 10, nil)
	if len(top) != 10 {
		t.Fatalf("got %d items", len(top))
	}
	for n := 1; n < len(top); n++ {
		if scores[top[n]] > scores[top[n-1]] {
			t.Fatalf("ranking not descending at %d", n)
		}
	}
	// Cross-check against the reference.
	want := topMSort(scores, nil, 10)
	for n := range want {
		if top[n] != want[n] {
			t.Fatalf("heap ranking diverges from sort at %d", n)
		}
	}
}

func BenchmarkTopMHeap50of5000(b *testing.B) {
	r := rng.New(1)
	ni := 5000
	scores := make([]float64, ni)
	for i := range scores {
		scores[i] = r.Float64()
	}
	rec := &fixedRec{scores: [][]float64{scores}}
	train := sparse.NewBuilder(1, ni).Build()
	scratch := make([]float64, ni)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TopM(rec, train, 0, 50, scratch)
	}
}

func BenchmarkTopMSort5000(b *testing.B) {
	r := rng.New(1)
	ni := 5000
	scores := make([]float64, ni)
	for i := range scores {
		scores[i] = r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		topMSort(scores, nil, 50)
	}
}
