package eval

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/sparse"
)

// refTopM is an independent full-sort reference for the pre-refactor TopM
// contract: rank the non-owned items by (score desc, index asc), truncate
// to m, return nil when no candidates exist. It shares no code with the
// rank engine, so agreement pins the engine-backed TopM bit-identically to
// the original selection semantics.
func refTopM(scores []float64, owned []int32, m int) []int {
	ownedSet := make(map[int]bool, len(owned))
	for _, i := range owned {
		ownedSet[int(i)] = true
	}
	var cand []int
	for i := range scores {
		if !ownedSet[i] {
			cand = append(cand, i)
		}
	}
	sort.Slice(cand, func(a, b int) bool {
		if scores[cand[a]] != scores[cand[b]] {
			return scores[cand[a]] > scores[cand[b]]
		}
		return cand[a] < cand[b]
	})
	if len(cand) > m {
		cand = cand[:m]
	}
	return cand
}

// TestTopMMatchesReference: the engine-backed TopM must return exactly the
// reference ranking for every m, including under heavy ties and both
// selection regimes (heap for small m, full sort for large m).
func TestTopMMatchesReference(t *testing.T) {
	f := func(seed uint16, mRaw uint8) bool {
		r := rng.New(uint64(seed) + 101)
		ni := 5 + r.Intn(200)
		scores := make([]float64, ni)
		for i := range scores {
			// Coarse quantization forces many exact ties.
			scores[i] = float64(r.Intn(8))
		}
		b := sparse.NewBuilder(1, ni)
		for i := 0; i < ni; i++ {
			if r.Bernoulli(0.2) {
				b.Add(0, i)
			}
		}
		train := b.Build()
		m := 1 + int(mRaw)%ni
		rec := &fixedRec{scores: [][]float64{scores}}
		want := refTopM(scores, train.Row(0), m)
		got := TopM(rec, train, 0, m, nil)
		if len(want) != len(got) {
			return false
		}
		for i := range want {
			if want[i] != got[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTopMZeroAndNegative(t *testing.T) {
	train := sparse.NewBuilder(1, 4).Build()
	rec := &fixedRec{scores: [][]float64{{1, 2, 3, 4}}}
	if got := TopM(rec, train, 0, 0, nil); got != nil {
		t.Fatalf("m=0 returned %v", got)
	}
	if got := TopM(rec, train, 0, -3, nil); got != nil {
		t.Fatalf("m<0 returned %v", got)
	}
}

func TestTopMAllOwned(t *testing.T) {
	train := sparse.FromDense([][]bool{{true, true, true}})
	rec := &fixedRec{scores: [][]float64{{1, 2, 3}}}
	if got := TopM(rec, train, 0, 2, nil); len(got) != 0 {
		t.Fatalf("fully-owned user got recommendations %v", got)
	}
}

func TestTopMHeapPathExercised(t *testing.T) {
	// Large catalogue, small m: the heap path must produce a correct
	// descending ranking.
	r := rng.New(7)
	ni := 5000
	scores := make([]float64, ni)
	for i := range scores {
		scores[i] = r.Float64()
	}
	rec := &fixedRec{scores: [][]float64{scores}}
	train := sparse.NewBuilder(1, ni).Build()
	top := TopM(rec, train, 0, 10, nil)
	if len(top) != 10 {
		t.Fatalf("got %d items", len(top))
	}
	for n := 1; n < len(top); n++ {
		if scores[top[n]] > scores[top[n-1]] {
			t.Fatalf("ranking not descending at %d", n)
		}
	}
	// Cross-check against the reference.
	want := refTopM(scores, nil, 10)
	for n := range want {
		if top[n] != want[n] {
			t.Fatalf("heap ranking diverges from reference at %d", n)
		}
	}
}

// TestTopMScratchPostcondition: TopM must leave exactly what ScoreUser
// wrote in the scratch buffer (the serving layer reads scores back by
// item index).
func TestTopMScratchPostcondition(t *testing.T) {
	scores := []float64{0.5, 0.1, 0.9, 0.3}
	rec := &fixedRec{scores: [][]float64{scores}}
	train := sparse.FromDense([][]bool{{false, true, false, false}})
	scratch := make([]float64, 4)
	top := TopM(rec, train, 0, 2, scratch)
	for i, want := range scores {
		if scratch[i] != want {
			t.Fatalf("scratch[%d] = %v, want %v (TopM mutated the score buffer)", i, scratch[i], want)
		}
	}
	if len(top) != 2 || top[0] != 2 || top[1] != 0 {
		t.Fatalf("top = %v, want [2 0]", top)
	}
}

func BenchmarkTopMHeap50of5000(b *testing.B) {
	r := rng.New(1)
	ni := 5000
	scores := make([]float64, ni)
	for i := range scores {
		scores[i] = r.Float64()
	}
	rec := &fixedRec{scores: [][]float64{scores}}
	train := sparse.NewBuilder(1, ni).Build()
	scratch := make([]float64, ni)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TopM(rec, train, 0, 50, scratch)
	}
}

func BenchmarkTopMSort5000(b *testing.B) {
	// m covers most of the candidate set, forcing the full-sort path.
	r := rng.New(1)
	ni := 5000
	scores := make([]float64, ni)
	for i := range scores {
		scores[i] = r.Float64()
	}
	rec := &fixedRec{scores: [][]float64{scores}}
	train := sparse.NewBuilder(1, ni).Build()
	scratch := make([]float64, ni)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TopM(rec, train, 0, 2000, scratch)
	}
}
