package eval

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/sparse"
)

func TestAUCPerfect(t *testing.T) {
	train := sparse.NewBuilder(1, 4).Build()
	test := sparse.FromDense([][]bool{{true, false, false, false}})
	rec := &fixedRec{scores: [][]float64{{10, 1, 2, 3}}}
	if auc := AUC(rec, train, test); auc != 1 {
		t.Fatalf("perfect AUC = %v", auc)
	}
}

func TestAUCWorst(t *testing.T) {
	train := sparse.NewBuilder(1, 4).Build()
	test := sparse.FromDense([][]bool{{true, false, false, false}})
	rec := &fixedRec{scores: [][]float64{{-10, 1, 2, 3}}}
	if auc := AUC(rec, train, test); auc != 0 {
		t.Fatalf("worst AUC = %v", auc)
	}
}

func TestAUCRandomIsHalf(t *testing.T) {
	r := rng.New(5)
	nu, ni := 200, 50
	bt := sparse.NewBuilder(nu, ni)
	scores := make([][]float64, nu)
	for u := 0; u < nu; u++ {
		scores[u] = make([]float64, ni)
		for i := 0; i < ni; i++ {
			scores[u][i] = r.Float64()
			if r.Bernoulli(0.1) {
				bt.Add(u, i)
			}
		}
	}
	auc := AUC(&fixedRec{scores: scores}, sparse.NewBuilder(nu, ni).Build(), bt.Build())
	if math.Abs(auc-0.5) > 0.03 {
		t.Fatalf("random scorer AUC = %v, want ~0.5", auc)
	}
}

func TestAUCHandComputedWithTies(t *testing.T) {
	// Candidates (no training positives): scores [3, 1, 1, 0]; positive is
	// item 1 (score 1, tied with item 2). Midrank of the tie (ranks 2,3) is
	// 2.5; AUC = (2.5 − 1)/ (1·3) = 0.5.
	train := sparse.NewBuilder(1, 4).Build()
	test := sparse.FromDense([][]bool{{false, true, false, false}})
	rec := &fixedRec{scores: [][]float64{{3, 1, 1, 0}}}
	if auc := AUC(rec, train, test); math.Abs(auc-0.5) > 1e-12 {
		t.Fatalf("tied AUC = %v, want 0.5", auc)
	}
}

func TestAUCExcludesTrainingPositives(t *testing.T) {
	// Item 0 is a training positive with a huge score; it must not count as
	// a negative competitor.
	train := sparse.FromDense([][]bool{{true, false, false}})
	test := sparse.FromDense([][]bool{{false, true, false}})
	rec := &fixedRec{scores: [][]float64{{100, 5, 1}}}
	if auc := AUC(rec, train, test); auc != 1 {
		t.Fatalf("AUC = %v, want 1 (training positive excluded)", auc)
	}
}

func TestAUCSkipsDegenerateUsers(t *testing.T) {
	// User 0: no test positives. User 1: everything is a test positive (no
	// negatives). Both skipped -> 0.
	train := sparse.NewBuilder(2, 2).Build()
	test := sparse.FromDense([][]bool{{false, false}, {true, true}})
	rec := &fixedRec{scores: [][]float64{{1, 2}, {1, 2}}}
	if auc := AUC(rec, train, test); auc != 0 {
		t.Fatalf("degenerate AUC = %v, want 0", auc)
	}
}
