package eval

import (
	"container/heap"
	"sort"

	"repro/internal/sparse"
)

// TopM returns the indices of the m highest-scoring items for user u among
// the items the user has no training positive for, in descending score
// order with ties broken by ascending index (deterministic rankings; see
// McSherry & Najork on tied scores). Fewer than m items are returned when
// fewer unknowns exist. scores is scratch space of length NumItems; passing
// nil allocates. On return scores holds exactly what rec.ScoreUser wrote —
// TopM never mutates it — so callers may read scores[i] back for the
// returned items (the serving layer relies on this postcondition).
//
// Selection is a size-m min-heap over the candidates, O(n_i log m), which
// matters when ranking a 17k-item catalogue for a top-50 list; a full sort
// is used when m covers most of the candidate set.
func TopM(rec Recommender, train *sparse.Matrix, u, m int, scores []float64) []int {
	if m <= 0 {
		return nil
	}
	if scores == nil {
		scores = make([]float64, rec.NumItems())
	}
	rec.ScoreUser(u, scores)
	owned := train.Row(u)
	nCand := len(scores) - len(owned)
	if nCand <= 0 {
		return nil
	}
	if m*4 >= nCand {
		return topMSort(scores, owned, m)
	}
	return topMHeap(scores, owned, m)
}

// topMSort ranks all candidates by full sort; exact reference used for
// large m and by the equivalence tests.
func topMSort(scores []float64, owned []int32, m int) []int {
	cand := make([]int, 0, len(scores)-len(owned))
	oi := 0
	for i := range scores {
		// owned is sorted; advance the cursor instead of a set lookup.
		for oi < len(owned) && int(owned[oi]) < i {
			oi++
		}
		if oi < len(owned) && int(owned[oi]) == i {
			continue
		}
		cand = append(cand, i)
	}
	sort.Slice(cand, func(a, b int) bool {
		if scores[cand[a]] != scores[cand[b]] {
			return scores[cand[a]] > scores[cand[b]]
		}
		return cand[a] < cand[b]
	})
	if len(cand) > m {
		cand = cand[:m]
	}
	return cand
}

// candHeap is a min-heap of candidate items keyed by (score asc, index
// desc), so the weakest kept candidate sits at the root. The inverted index
// order makes the heap's notion of "worst" agree with the ranking's tie
// rule (among equal scores, the larger index is worse).
type candHeap struct {
	idx    []int
	scores []float64
}

func (h *candHeap) Len() int { return len(h.idx) }
func (h *candHeap) Less(a, b int) bool {
	sa, sb := h.scores[h.idx[a]], h.scores[h.idx[b]]
	if sa != sb {
		return sa < sb
	}
	return h.idx[a] > h.idx[b]
}
func (h *candHeap) Swap(a, b int) { h.idx[a], h.idx[b] = h.idx[b], h.idx[a] }
func (h *candHeap) Push(x any)    { h.idx = append(h.idx, x.(int)) }
func (h *candHeap) Pop() any      { v := h.idx[len(h.idx)-1]; h.idx = h.idx[:len(h.idx)-1]; return v }
func (h *candHeap) worse(i int) bool {
	// Reports whether candidate i ranks below the current root.
	root := h.idx[0]
	if scores := h.scores; scores[i] != scores[root] {
		return scores[i] < scores[root]
	}
	return i > h.idx[0]
}

func topMHeap(scores []float64, owned []int32, m int) []int {
	h := &candHeap{idx: make([]int, 0, m+1), scores: scores}
	oi := 0
	for i := range scores {
		// owned is sorted; advance the cursor instead of a set lookup.
		for oi < len(owned) && int(owned[oi]) < i {
			oi++
		}
		if oi < len(owned) && int(owned[oi]) == i {
			continue
		}
		if h.Len() < m {
			heap.Push(h, i)
			continue
		}
		if h.worse(i) {
			continue
		}
		h.idx[0] = i
		heap.Fix(h, 0)
	}
	// Drain ascending-worst, fill the output back to front.
	out := make([]int, h.Len())
	for n := len(out) - 1; n >= 0; n-- {
		out[n] = heap.Pop(h).(int)
	}
	return out
}
