package eval

import (
	"repro/internal/rank"
	"repro/internal/sparse"
)

// TopM returns the indices of the m highest-scoring items for user u among
// the items the user has no training positive for, in descending score
// order with ties broken by ascending index (deterministic rankings; see
// McSherry & Najork on tied scores). Fewer than m items are returned when
// fewer unknowns exist. scores is scratch space of length NumItems; passing
// nil allocates. On return scores holds exactly what rec.ScoreUser wrote —
// TopM never mutates it — so callers may read scores[i] back for the
// returned items (the serving layer relies on this postcondition).
//
// TopM is a thin adapter over the ranking engine: it scores, then hands
// selection to rank.Select with a training-row exclusion filter. The
// engine owns the heap/sort selection paths and the sorted-cursor
// exclusion walk; topk_test.go pins TopM's output to an independent
// full-sort reference.
func TopM(rec Recommender, train *sparse.Matrix, u, m int, scores []float64) []int {
	if m <= 0 {
		return nil
	}
	if scores == nil {
		scores = make([]float64, rec.NumItems())
	}
	rec.ScoreUser(u, scores)
	return rank.Select(scores, m, rank.TrainRow(train, u))
}
