// Package eval implements the evaluation protocol of Section VII-B of the
// paper: ranked top-M recommendation over the unknowns of the training
// matrix, scored against held-out test positives with recall@M and MAP@M
// (plus precision@M, which MAP builds on).
package eval

import (
	"fmt"

	"repro/internal/sparse"
)

// Recommender is the scoring interface every algorithm in this repository
// implements (OCuLaR, R-OCuLaR, wALS, BPR, user- and item-based CF). Higher
// scores mean stronger recommendations; scores only need to be comparable
// within one user.
type Recommender interface {
	// ScoreUser writes a relevance score for every item for user u into
	// dst, which has length NumItems().
	ScoreUser(u int, dst []float64)
	// NumUsers and NumItems report the shape the model was trained on.
	NumUsers() int
	NumItems() int
}

// Metrics aggregates ranking quality over the evaluated users.
type Metrics struct {
	// RecallAtM is the mean over users of
	// |test positives ∩ top-M| / |test positives|.
	RecallAtM float64
	// MAPAtM is the mean over users of average precision at M with the
	// paper's min(|test positives|, M) normalization.
	MAPAtM float64
	// PrecisionAtM is the mean over users of |test ∩ top-M| / M.
	PrecisionAtM float64
	// Users is the number of users included in the means: those with at
	// least one test positive. Users without test positives have undefined
	// recall and are skipped, the standard OCCF convention.
	Users int
}

func (m Metrics) String() string {
	return fmt.Sprintf("recall@M=%.4f MAP@M=%.4f prec@M=%.4f (users=%d)",
		m.RecallAtM, m.MAPAtM, m.PrecisionAtM, m.Users)
}

// Evaluate ranks the unknowns of train for every user and scores the top-M
// list against the test positives. It panics if the matrices' shapes differ
// from the recommender's.
func Evaluate(rec Recommender, train, test *sparse.Matrix, m int) Metrics {
	res := EvaluateCurve(rec, train, test, []int{m})
	return res[0]
}

// EvaluateCurve computes Metrics for several cutoffs in one ranking pass per
// user; ms must be non-empty and sorted ascending (it panics otherwise).
// This powers the Fig 5 recall/MAP-versus-M curves.
func EvaluateCurve(rec Recommender, train, test *sparse.Matrix, ms []int) []Metrics {
	if len(ms) == 0 {
		panic("eval: empty cutoff list")
	}
	for i := 1; i < len(ms); i++ {
		if ms[i] <= ms[i-1] {
			panic("eval: cutoffs must be strictly ascending")
		}
	}
	if ms[0] <= 0 {
		panic("eval: cutoffs must be positive")
	}
	if train.Rows() != rec.NumUsers() || train.Cols() != rec.NumItems() {
		panic(fmt.Sprintf("eval: train shape %dx%d does not match model %dx%d",
			train.Rows(), train.Cols(), rec.NumUsers(), rec.NumItems()))
	}
	if test.Rows() != train.Rows() || test.Cols() != train.Cols() {
		panic("eval: test shape does not match train shape")
	}
	maxM := ms[len(ms)-1]
	out := make([]Metrics, len(ms))
	scores := make([]float64, rec.NumItems())
	users := 0
	for u := 0; u < train.Rows(); u++ {
		testRow := test.Row(u)
		if len(testRow) == 0 {
			continue
		}
		users++
		top := TopM(rec, train, u, maxM, scores)
		testSet := make(map[int]bool, len(testRow))
		for _, i := range testRow {
			testSet[int(i)] = true
		}
		nTest := len(testRow)

		hits := 0
		apSum := 0.0 // running Σ Prec(m)·1{hit at m}
		mi := 0
		for rank := 0; rank < len(top) && mi < len(ms); rank++ {
			if testSet[top[rank]] {
				hits++
				apSum += float64(hits) / float64(rank+1)
			}
			for mi < len(ms) && rank+1 == ms[mi] {
				addUserMetrics(&out[mi], hits, apSum, nTest, ms[mi])
				mi++
			}
		}
		// Cutoffs beyond the candidate list length see the full list.
		for ; mi < len(ms); mi++ {
			addUserMetrics(&out[mi], hits, apSum, nTest, ms[mi])
		}
	}
	for i := range out {
		out[i].Users = users
		if users > 0 {
			out[i].RecallAtM /= float64(users)
			out[i].MAPAtM /= float64(users)
			out[i].PrecisionAtM /= float64(users)
		}
	}
	return out
}

func addUserMetrics(m *Metrics, hits int, apSum float64, nTest, cutoff int) {
	m.RecallAtM += float64(hits) / float64(nTest)
	m.PrecisionAtM += float64(hits) / float64(cutoff)
	denom := nTest
	if cutoff < denom {
		denom = cutoff
	}
	m.MAPAtM += apSum / float64(denom)
}
