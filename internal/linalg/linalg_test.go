package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("Dot(nil,nil) = %v", got)
	}
}

// TestUnrolledKernelsMatchNaive covers every tail length of the 4-wide
// unrolled Dot/Axpy/Norm2Sq against the textbook single-accumulator loops.
func TestUnrolledKernelsMatchNaive(t *testing.T) {
	r := rng.New(31)
	for n := 0; n <= 19; n++ {
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = r.Float64()*4 - 2
			b[i] = r.Float64()*4 - 2
		}
		var dot, nsq float64
		for i := range a {
			dot += a[i] * b[i]
			nsq += a[i] * a[i]
		}
		if got := Dot(a, b); !almostEq(got, dot, 1e-12*(1+math.Abs(dot))) {
			t.Fatalf("n=%d: Dot = %v, naive %v", n, got, dot)
		}
		if got := Norm2Sq(a); !almostEq(got, nsq, 1e-12*(1+nsq)) {
			t.Fatalf("n=%d: Norm2Sq = %v, naive %v", n, got, nsq)
		}
		y := append([]float64(nil), b...)
		Axpy(1.5, a, y)
		for i := range y {
			if want := b[i] + 1.5*a[i]; y[i] != want {
				t.Fatalf("n=%d: Axpy[%d] = %v, want %v", n, i, y[i], want)
			}
		}
	}
}

// TestDotDeterministic: the unrolled reduction combines its accumulators in
// a fixed order, so repeated calls are bit-identical.
func TestDotDeterministic(t *testing.T) {
	r := rng.New(77)
	a := make([]float64, 101)
	b := make([]float64, 101)
	for i := range a {
		a[i] = r.Float64()
		b[i] = r.Float64()
	}
	first := Dot(a, b)
	for i := 0; i < 10; i++ {
		if got := Dot(a, b); got != first {
			t.Fatal("Dot not deterministic across calls")
		}
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestAxpy(t *testing.T) {
	y := []float64{1, 1, 1}
	Axpy(2, []float64{1, 2, 3}, y)
	want := []float64{3, 5, 7}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Axpy = %v, want %v", y, want)
		}
	}
}

func TestScaleAndNorms(t *testing.T) {
	x := []float64{3, 4}
	if Norm2(x) != 5 {
		t.Fatalf("Norm2 = %v", Norm2(x))
	}
	if Norm2Sq(x) != 25 {
		t.Fatalf("Norm2Sq = %v", Norm2Sq(x))
	}
	Scale(2, x)
	if x[0] != 6 || x[1] != 8 {
		t.Fatalf("Scale = %v", x)
	}
}

func TestCosineSim(t *testing.T) {
	if got := CosineSim([]float64{1, 0}, []float64{0, 1}); got != 0 {
		t.Fatalf("orthogonal cosine = %v", got)
	}
	if got := CosineSim([]float64{2, 0}, []float64{5, 0}); !almostEq(got, 1, 1e-12) {
		t.Fatalf("parallel cosine = %v", got)
	}
	if got := CosineSim([]float64{0, 0}, []float64{1, 1}); got != 0 {
		t.Fatalf("zero-vector cosine = %v", got)
	}
}

func TestProjectNonNegIdempotent(t *testing.T) {
	f := func(raw []float64) bool {
		x := append([]float64(nil), raw...)
		ProjectNonNeg(x)
		for _, v := range x {
			if v < 0 {
				return false
			}
		}
		y := append([]float64(nil), x...)
		ProjectNonNeg(y)
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSubAndMaxAbsDiff(t *testing.T) {
	dst := make([]float64, 3)
	Sub(dst, []float64{5, 5, 5}, []float64{1, 2, 3})
	if dst[0] != 4 || dst[1] != 3 || dst[2] != 2 {
		t.Fatalf("Sub = %v", dst)
	}
	if got := MaxAbsDiff([]float64{1, 2}, []float64{1.5, 0}); got != 2 {
		t.Fatalf("MaxAbsDiff = %v", got)
	}
}

func TestMatBasics(t *testing.T) {
	m := NewMat(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatal("Set/At broken")
	}
	m.AddTo(1, 2, 3)
	if m.At(1, 2) != 10 {
		t.Fatal("AddTo broken")
	}
	row := m.Row(1)
	if len(row) != 3 || row[2] != 10 {
		t.Fatal("Row broken")
	}
	c := m.CloneMat()
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Fatal("CloneMat aliases original")
	}
	m.Zero()
	if m.At(1, 2) != 0 {
		t.Fatal("Zero broken")
	}
}

func TestSymRankKUpdate(t *testing.T) {
	a := NewMat(2, 2)
	SymRankKUpdate(a, []float64{1, 2})
	SymRankKUpdate(a, []float64{3, 0})
	// Expected: [1,2]ᵀ[1,2] + [3,0]ᵀ[3,0] = [[1+9, 2],[2, 4]]
	want := [][]float64{{10, 2}, {2, 4}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if a.At(i, j) != want[i][j] {
				t.Fatalf("A = %v, want %v", a.Data, want)
			}
		}
	}
}

func TestAddDiag(t *testing.T) {
	a := NewMat(3, 3)
	AddDiag(a, 2.5)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 2.5
			}
			if a.At(i, j) != want {
				t.Fatalf("AddDiag wrong at (%d,%d)", i, j)
			}
		}
	}
}

func TestCholeskyKnown(t *testing.T) {
	// A = [[4,2],[2,3]] has L = [[2,0],[1,sqrt(2)]].
	a := NewMat(2, 2)
	a.Set(0, 0, 4)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 3)
	if err := Cholesky(a); err != nil {
		t.Fatal(err)
	}
	if !almostEq(a.At(0, 0), 2, 1e-12) || !almostEq(a.At(1, 0), 1, 1e-12) ||
		!almostEq(a.At(1, 1), math.Sqrt(2), 1e-12) {
		t.Fatalf("Cholesky factor wrong: %v", a.Data)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewMat(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 1) // eigenvalues 3, -1
	if err := Cholesky(a); err == nil {
		t.Fatal("expected error for indefinite matrix")
	}
}

func TestSolveSPDRandom(t *testing.T) {
	r := rng.New(5)
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(12)
		// Build SPD A = B Bᵀ + I.
		b := NewMat(n, n)
		for i := range b.Data {
			b.Data[i] = r.NormFloat64()
		}
		a := NewMat(n, n)
		for i := 0; i < n; i++ {
			SymRankKUpdate(a, b.Row(i))
		}
		AddDiag(a, 1)
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = r.NormFloat64()
		}
		rhs := make([]float64, n)
		MatVec(rhs, a, xTrue)
		if err := SolveSPD(a.CloneMat(), rhs); err != nil {
			t.Fatal(err)
		}
		if MaxAbsDiff(rhs, xTrue) > 1e-8 {
			t.Fatalf("trial %d: solve error %v", trial, MaxAbsDiff(rhs, xTrue))
		}
	}
}

func TestMatVec(t *testing.T) {
	a := NewMat(2, 3)
	copy(a.Data, []float64{1, 2, 3, 4, 5, 6})
	dst := make([]float64, 2)
	MatVec(dst, a, []float64{1, 1, 1})
	if dst[0] != 6 || dst[1] != 15 {
		t.Fatalf("MatVec = %v", dst)
	}
}

func TestFillCopy(t *testing.T) {
	x := make([]float64, 4)
	Fill(x, 3)
	for _, v := range x {
		if v != 3 {
			t.Fatal("Fill broken")
		}
	}
	y := make([]float64, 4)
	Copy(y, x)
	if y[0] != 3 {
		t.Fatal("Copy broken")
	}
}

func BenchmarkDotK100(b *testing.B) {
	x := make([]float64, 100)
	y := make([]float64, 100)
	for i := range x {
		x[i] = float64(i)
		y[i] = float64(i) * 0.5
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = Dot(x, y)
	}
	_ = sink
}

func BenchmarkCholeskyK50(b *testing.B) {
	r := rng.New(7)
	n := 50
	base := NewMat(n, n)
	for i := 0; i < n; i++ {
		v := make([]float64, n)
		for j := range v {
			v[j] = r.NormFloat64()
		}
		SymRankKUpdate(base, v)
	}
	AddDiag(base, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := base.CloneMat()
		if err := Cholesky(a); err != nil {
			b.Fatal(err)
		}
	}
}
