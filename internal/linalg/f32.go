package linalg

import "math"

// DotF32 returns the inner product ⟨a, b⟩ of two float32 vectors as a
// float64. It panics if lengths differ.
//
// This is the serving-side counterpart of Dot for models carrying a
// float32-quantized factor section: the operands stream from memory at
// half the bandwidth of float64 factors. The loop is unrolled 4-wide with
// independent float32 accumulators combined in float64 in a fixed order —
// float32 accumulation keeps the kernel as fast as the float64 Dot even
// when the factors are cache-resident (widening every operand to float64
// costs ~1.5× in the compute-bound regime), at the price of a K-dependent
// error term; see ScoreErrorBoundF32 for the resulting bound. The result
// is deterministic for a given input.
func DotF32(a, b []float32) float64 {
	if len(a) != len(b) {
		panic("linalg: DotF32 length mismatch")
	}
	// Reslicing b to len(a) lets the compiler prove all four b indices in
	// bounds from the loop condition alone, dropping the per-lane checks.
	b = b[:len(a)]
	var s0, s1, s2, s3 float32
	n := len(a)
	i := 0
	for ; i <= n-4; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	s := (float64(s0) + float64(s2)) + (float64(s1) + float64(s3))
	for ; i < n; i++ {
		s += float64(a[i]) * float64(b[i])
	}
	return s
}

// ScoreF32 writes the OCuLaR probability 1 − exp(−z_i) for every item
// into dst, where z_i = ⟨fu, fi[i·k:(i+1)·k]⟩ + userBias + bi[i] and
// k = len(fu). fi is the flat item-factor matrix with stride k; bi may be
// nil for models without item biases. It panics on shape mismatches.
//
// The absolute error of a reported probability against the float64 score
// of the unquantized factors is at most ScoreErrorBoundF32(k).
func ScoreF32(dst []float64, fu, fi []float32, bi []float32, userBias float64) {
	k := len(fu)
	if len(fi) != len(dst)*k {
		panic("linalg: ScoreF32 factor shape mismatch")
	}
	if bi != nil && len(bi) != len(dst) {
		panic("linalg: ScoreF32 bias length mismatch")
	}
	// The nil-bias branch is hoisted out of the item loop and the factor
	// row advances by reslicing instead of recomputing i*k — both loops
	// perform the identical float operations in the identical order as the
	// single-loop form ((dot + userBias) + bi[i]), so scores stay
	// bit-identical; reassociating that chain would break the binary/JSON
	// transport property tests, which compare math.Float64bits.
	//
	// Note on the mmap32-vs-heap64 gap in BenchmarkScoreUserF32: the
	// -benchtime 1x smoke numbers measure page touch, not compute. mmap64
	// runs the heap64 float64 code on the same machine yet trails it
	// 1.5–3× at 1x (e.g. 41µs vs 26µs; the committed ledger recorded 81µs
	// vs 25µs), and converges to within a few percent at -benchtime 200x
	// once the mapping is resident. mmap32's residual steady-state gap
	// (~23µs vs ~13µs at K=50) is this kernel, not residency: per item it
	// streams half the bytes but still performs the dot in float32 lanes
	// that the compiler does not vectorize as aggressively as the float64
	// loop. The reslice hints above recover ~10% of that.
	row := fi
	if bi == nil {
		for i := range dst {
			z := DotF32(fu, row[:k]) + userBias
			row = row[k:]
			dst[i] = 1 - math.Exp(-z)
		}
		return
	}
	for i := range dst {
		z := DotF32(fu, row[:k]) + userBias
		row = row[k:]
		z += float64(bi[i])
		dst[i] = 1 - math.Exp(-z)
	}
}

// ScoreErrorBoundF32 returns the worst-case absolute error of a
// probability computed by ScoreF32 over k-dimensional float32-quantized
// factors, relative to the float64 score of the unquantized model.
//
// Derivation, for the OCuLaR domain (all factors and biases
// non-negative): each stored operand carries one float32 rounding
// (relative error ≤ u = 2⁻²⁴), each float32 product one more, and each
// accumulator chain performs ⌈k/4⌉−1 float32 additions, so by the
// standard summation bound for non-negative terms the affinity satisfies
// |z̃ − z| ≤ (⌈k/4⌉ + 3)·u·z (quantized biases, added in float64,
// contribute ≤ u·z of that). The probability 1 − e^{−z} has derivative
// e^{−z} and z·e^{−z} ≤ 1/e, hence
//
//	|Δscore| ≤ (⌈k/4⌉ + 3) · 2⁻²⁴ / e,
//
// which is 1.3e−7 at K=10, 3.5e−7 at K=50 and still under 1.5e−6 at
// K=256 — orders of magnitude below the score differences top-M ranking
// depends on. (math.Exp's sub-ulp error is absorbed by the ceiling in
// the chain-length term.)
func ScoreErrorBoundF32(k int) float64 {
	return (math.Ceil(float64(k)/4) + 3) * 0x1p-24 / math.E
}
