package linalg

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func randomF32Pair(n int, seed uint64) (a32, b32 []float32, a64, b64 []float64) {
	rnd := rng.New(seed)
	a64 = make([]float64, n)
	b64 = make([]float64, n)
	a32 = make([]float32, n)
	b32 = make([]float32, n)
	for i := 0; i < n; i++ {
		a64[i] = rnd.Float64() * 3
		b64[i] = rnd.Float64() * 3
		a32[i] = float32(a64[i])
		b32[i] = float32(b64[i])
	}
	return
}

// TestDotF32MatchesFloat64 checks DotF32 against the unquantized float64
// dot under the documented relative bound, across lengths covering every
// unroll tail.
func TestDotF32MatchesFloat64(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 17, 100, 1001} {
		a32, b32, a64, b64 := randomF32Pair(n, uint64(n)+1)
		got := DotF32(a32, b32)
		exact := Dot(a64, b64)
		// |z̃ − z| ≤ (⌈n/4⌉ + 3)·u·z for non-negative operands.
		bound := (math.Ceil(float64(n)/4) + 3) * 0x1p-24 * exact
		if d := math.Abs(got - exact); d > bound {
			t.Errorf("n=%d: |DotF32-exact| = %g exceeds bound %g", n, d, bound)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("DotF32 length mismatch did not panic")
		}
	}()
	DotF32(make([]float32, 3), make([]float32, 4))
}

// TestScoreF32 checks the fused score loop against a scalar float64
// reference, with and without item biases, under ScoreErrorBoundF32.
func TestScoreF32(t *testing.T) {
	const k, items = 7, 23
	fu32, _, fu64, _ := randomF32Pair(k, 11)
	fi32, _, fi64, _ := randomF32Pair(k*items, 12)
	bi32, _, bi64, _ := randomF32Pair(items, 13)
	userBias := 0.125 // exactly representable: isolates the factor error

	bound := ScoreErrorBoundF32(k)
	for _, withBias := range []bool{false, true} {
		dst := make([]float64, items)
		var bi []float32
		if withBias {
			bi = bi32
		}
		ScoreF32(dst, fu32, fi32, bi, userBias)
		for i := 0; i < items; i++ {
			z := Dot(fu64, fi64[i*k:(i+1)*k]) + userBias
			if withBias {
				z += bi64[i]
			}
			want := 1 - math.Exp(-z)
			if d := math.Abs(dst[i] - want); d > bound {
				t.Errorf("bias=%v item %d: score %v vs %v (off %g, bound %g)", withBias, i, dst[i], want, d, bound)
			}
		}
	}

	defer func() {
		if recover() == nil {
			t.Error("ScoreF32 shape mismatch did not panic")
		}
	}()
	ScoreF32(make([]float64, 2), fu32, fi32, nil, 0)
}
