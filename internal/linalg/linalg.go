// Package linalg provides the small dense linear-algebra kernels the
// reproduction needs: BLAS-1 style vector operations used in the factor
// updates, and a Cholesky solver for the K×K normal equations of the wALS
// baseline (Pan et al., 2008).
//
// All operations work on []float64 and are allocation-free unless
// documented otherwise, because the OCuLaR inner loop touches every factor
// vector once per iteration and allocation there would dominate runtime.
package linalg

import (
	"fmt"
	"math"
)

// Dot returns the inner product ⟨a, b⟩. It panics if lengths differ.
//
// The loop is unrolled 4-wide with independent accumulators (the OCuLaR
// inner loops are K-stride walks through Dot, and the unrolling breaks the
// add-latency dependency chain). The accumulators are combined in a fixed
// order, so the result is deterministic for a given input.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	var s0, s1, s2, s3 float64
	n := len(a)
	i := 0
	for ; i <= n-4; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	s := (s0 + s2) + (s1 + s3)
	for ; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}

// Axpy computes y += alpha*x in place. It panics if lengths differ. The body
// is unrolled 4-wide; per-element results are unchanged (no reduction).
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: Axpy length mismatch")
	}
	n := len(x)
	i := 0
	for ; i <= n-4; i += 4 {
		y[i] += alpha * x[i]
		y[i+1] += alpha * x[i+1]
		y[i+2] += alpha * x[i+2]
		y[i+3] += alpha * x[i+3]
	}
	for ; i < n; i++ {
		y[i] += alpha * x[i]
	}
}

// Scale multiplies x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Norm2Sq returns the squared Euclidean norm ‖x‖². Unrolled 4-wide like Dot,
// with the same fixed accumulator-combine order.
func Norm2Sq(x []float64) float64 {
	var s0, s1, s2, s3 float64
	n := len(x)
	i := 0
	for ; i <= n-4; i += 4 {
		s0 += x[i] * x[i]
		s1 += x[i+1] * x[i+1]
		s2 += x[i+2] * x[i+2]
		s3 += x[i+3] * x[i+3]
	}
	s := (s0 + s2) + (s1 + s3)
	for ; i < n; i++ {
		s += x[i] * x[i]
	}
	return s
}

// Norm2 returns the Euclidean norm ‖x‖.
func Norm2(x []float64) float64 { return math.Sqrt(Norm2Sq(x)) }

// CosineSim returns the cosine similarity ⟨a,b⟩ / (‖a‖‖b‖), or 0 when
// either vector is zero. It panics if lengths differ.
func CosineSim(a, b []float64) float64 {
	na, nb := Norm2(a), Norm2(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// ProjectNonNeg replaces x with its projection onto the non-negative
// orthant: x_c ← max(0, x_c). This is the (·)+ operation of the paper's
// projected gradient step.
func ProjectNonNeg(x []float64) {
	for i, v := range x {
		if v < 0 {
			x[i] = 0
		}
	}
}

// Copy copies src into dst. It panics if lengths differ.
func Copy(dst, src []float64) {
	if len(dst) != len(src) {
		panic("linalg: Copy length mismatch")
	}
	copy(dst, src)
}

// Fill sets every element of x to v.
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// Sub computes dst = a - b elementwise. It panics if lengths differ.
func Sub(dst, a, b []float64) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic("linalg: Sub length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

// MaxAbsDiff returns max_i |a_i - b_i|, a convergence measure for
// alternating solvers. It panics if lengths differ.
func MaxAbsDiff(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: MaxAbsDiff length mismatch")
	}
	var m float64
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > m {
			m = d
		}
	}
	return m
}

// Mat is a dense row-major matrix. It is the working type for the K×K
// systems in wALS; K is small (tens to hundreds), so a flat slice suffices.
type Mat struct {
	RowsN, ColsN int
	Data         []float64 // len RowsN*ColsN, row-major
}

// NewMat allocates a zeroed RowsN×ColsN matrix.
func NewMat(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic("linalg: negative matrix dimension")
	}
	return &Mat{RowsN: rows, ColsN: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.ColsN+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.ColsN+j] = v }

// AddTo adds v to element (i, j).
func (m *Mat) AddTo(i, j int, v float64) { m.Data[i*m.ColsN+j] += v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Mat) Row(i int) []float64 { return m.Data[i*m.ColsN : (i+1)*m.ColsN] }

// Zero resets all elements to 0.
func (m *Mat) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// CloneMat returns a deep copy of m.
func (m *Mat) CloneMat() *Mat {
	c := NewMat(m.RowsN, m.ColsN)
	copy(c.Data, m.Data)
	return c
}

// SymRankKUpdate accumulates A += x xᵀ for a symmetric A (only requires A
// square with dim == len(x)). Both triangles are written so the matrix stays
// fully materialized for the Cholesky routine.
func SymRankKUpdate(a *Mat, x []float64) {
	n := len(x)
	if a.RowsN != n || a.ColsN != n {
		panic("linalg: SymRankKUpdate dimension mismatch")
	}
	for i := 0; i < n; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := a.Row(i)
		for j := 0; j < n; j++ {
			row[j] += xi * x[j]
		}
	}
}

// AddDiag adds v to every diagonal element of the square matrix a.
func AddDiag(a *Mat, v float64) {
	if a.RowsN != a.ColsN {
		panic("linalg: AddDiag on non-square matrix")
	}
	for i := 0; i < a.RowsN; i++ {
		a.Data[i*a.ColsN+i] += v
	}
}

// Cholesky factors the symmetric positive-definite matrix a in place into
// its lower-triangular factor L with a = L Lᵀ. Only the lower triangle of
// the result is meaningful. It returns an error if a is not positive
// definite (within floating-point tolerance).
func Cholesky(a *Mat) error {
	if a.RowsN != a.ColsN {
		return fmt.Errorf("linalg: Cholesky on non-square %dx%d matrix", a.RowsN, a.ColsN)
	}
	n := a.RowsN
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			ljk := a.At(j, k)
			d -= ljk * ljk
		}
		if d <= 0 || math.IsNaN(d) {
			return fmt.Errorf("linalg: matrix not positive definite at pivot %d (d=%g)", j, d)
		}
		ljj := math.Sqrt(d)
		a.Set(j, j, ljj)
		inv := 1 / ljj
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= a.At(i, k) * a.At(j, k)
			}
			a.Set(i, j, s*inv)
		}
	}
	return nil
}

// CholeskySolve solves L Lᵀ x = b in place in b, given the Cholesky factor L
// produced by Cholesky (lower triangle of l).
func CholeskySolve(l *Mat, b []float64) {
	n := l.RowsN
	if len(b) != n {
		panic("linalg: CholeskySolve dimension mismatch")
	}
	// Forward substitution: L y = b.
	for i := 0; i < n; i++ {
		s := b[i]
		row := l.Row(i)
		for k := 0; k < i; k++ {
			s -= row[k] * b[k]
		}
		b[i] = s / row[i]
	}
	// Back substitution: Lᵀ x = y.
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * b[k]
		}
		b[i] = s / l.At(i, i)
	}
}

// SolveSPD solves the symmetric positive-definite system a x = b, returning
// the solution in b and destroying a. It wraps Cholesky and CholeskySolve.
func SolveSPD(a *Mat, b []float64) error {
	if err := Cholesky(a); err != nil {
		return err
	}
	CholeskySolve(a, b)
	return nil
}

// MatVec computes dst = a · x. It panics on dimension mismatch.
func MatVec(dst []float64, a *Mat, x []float64) {
	if len(x) != a.ColsN || len(dst) != a.RowsN {
		panic("linalg: MatVec dimension mismatch")
	}
	for i := 0; i < a.RowsN; i++ {
		dst[i] = Dot(a.Row(i), x)
	}
}
