package serve

import (
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/rank"
	"repro/internal/wire"
)

// The binary columnar batch transport: POST /v2/batch speaks the
// length-prefixed frame format of internal/wire instead of JSON, with
// semantics mirroring /v1/batch exactly — same clamping, same tenant
// routing, same filter validation, same cache/fingerprint/coalescing
// behaviour (both transports call the same rank pipeline). Only the
// encoding differs: ranked lists flow from the engine's cache-shared
// slices into a pooled output buffer and out in a single Write, with
// zero allocation in steady state.
//
// Negotiation: request frames failing wire validation (bad magic,
// version, flags, or layout) are a 400 with the stable error code
// "bad_frame"; all error responses stay JSON (writeError shapes), only
// 200s carry a binary frame, identified by Content-Type
// application/x-ocular-frame.

// FrameContentType identifies a binary batch frame in an HTTP body.
const FrameContentType = "application/x-ocular-frame"

// binScratch is the pooled per-request workspace of the binary path:
// request body, decoded frame, id conversions, result columns and the
// encoded response all live here, so a warm binary request allocates
// only what the ranking itself does.
type binScratch struct {
	body    []byte
	req     wire.BatchRequest
	spec    FilterSpec
	users   []int
	exclude []int
	status  []uint8
	cols    rank.BatchCols
	out     []byte
}

var binScratchPool = sync.Pool{New: func() any { return new(binScratch) }}

// readFrame reads and decodes one request frame under the body cap,
// reporting rejects to the decode counter. A non-nil error has already
// been written to w (with its status returned).
func (s *Server) readFrame(w http.ResponseWriter, r *http.Request, sc *binScratch) (int, bool) {
	body, err := wire.AppendAll(sc.body[:0], http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	sc.body = body
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return writeError(w, http.StatusBadRequest,
				fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit)), false
		}
		return writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err)), false
	}
	if err := wire.DecodeBatchRequest(body, &sc.req); err != nil {
		s.metrics.batchBinary.decodeRejects.Add(1)
		return writeErrorCode(w, http.StatusBadRequest, "bad_frame", err.Error()), false
	}
	return 0, true
}

// specAndExclude translates the decoded frame's filter sections into the
// shapes requestFilters takes, reusing the scratch.
func (sc *binScratch) specAndExclude() (*FilterSpec, []int) {
	sc.exclude = sc.exclude[:0]
	for _, e := range sc.req.Exclude {
		sc.exclude = append(sc.exclude, int(e))
	}
	var spec *FilterSpec
	if len(sc.req.AllowTags) > 0 || len(sc.req.DenyTags) > 0 {
		sc.spec = FilterSpec{AllowTags: sc.req.AllowTags, DenyTags: sc.req.DenyTags}
		spec = &sc.spec
	}
	return spec, sc.exclude
}

func (sc *binScratch) statusSlice(n int) []uint8 {
	if cap(sc.status) < n {
		sc.status = make([]uint8, n)
	}
	sc.status = sc.status[:n]
	for i := range sc.status {
		sc.status[i] = 0
	}
	return sc.status
}

// writeFrame encodes resp into the pooled output buffer, feeds the
// transport counters and writes the frame in one Write call.
func (s *Server) writeFrame(w http.ResponseWriter, sc *binScratch, resp *wire.BatchResponse) int {
	sc.out = wire.AppendBatchResponse(sc.out[:0], resp)
	s.metrics.batchBinary.requests.Add(1)
	s.metrics.batchBinary.users.Add(int64(len(resp.Counts)))
	s.metrics.batchBinary.bytesOut.Add(int64(len(sc.out)))
	w.Header().Set("Content-Type", FrameContentType)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(sc.out)
	return http.StatusOK
}

func (s *Server) handleBatchBinary(w http.ResponseWriter, r *http.Request) int {
	sc := binScratchPool.Get().(*binScratch)
	defer binScratchPool.Put(sc)
	if status, ok := s.readFrame(w, r, sc); !ok {
		return status
	}
	req := &sc.req
	if req.ExpectVersion != 0 {
		s.metrics.batchBinary.decodeRejects.Add(1)
		return writeErrorCode(w, http.StatusBadRequest, "bad_frame",
			"expect_version is a shard-path field; it must be 0 on /v2/batch")
	}
	if len(req.Users) == 0 {
		return writeError(w, http.StatusBadRequest, "users must be non-empty")
	}
	if len(req.Users) > s.cfg.MaxBatch {
		return writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d users exceeds the server cap of %d", len(req.Users), s.cfg.MaxBatch))
	}
	m, err := s.clampM(int(req.M))
	if err != nil {
		return writeError(w, http.StatusBadRequest, err.Error())
	}
	defRt, err := s.resolve(req.Tenant, 0)
	if err != nil {
		return writeErrorCode(w, http.StatusNotFound, "unknown_tenant", err.Error())
	}
	spec, exclude := sc.specAndExclude()
	status := sc.statusSlice(len(req.Users))
	cols := &sc.cols
	cols.Reset()
	// One aggregate span for the whole batch (per-user spans would blow
	// the span cap and tax every user); rankOne gets a nil recorder.
	act := obs.ActiveFrom(r.Context())
	var bstart time.Time
	if act != nil {
		bstart = time.Now()
	}
	if req.Tenant == "" {
		// Default path: shared filters validated once, then the columnar
		// engine entry point ranks the whole batch — per-user work is the
		// training-row filter plus the shared extras, same as JSON.
		sn := defRt.sn
		extra, err := s.requestFilters(sn, exclude, spec)
		if err != nil {
			return writeError(w, http.StatusBadRequest, err.Error())
		}
		users := sc.users[:0]
		for _, u := range req.Users {
			users = append(users, int(u))
		}
		sc.users = users
		sn.engine.TopMBatch(users, m, s.cfg.Workers, sn.stages, func(i int) ([]rank.Filter, bool) {
			u := users[i]
			if u < 0 || u >= sn.numUsers() {
				status[i] = wire.StatusError
				return nil, false
			}
			fl := make([]rank.Filter, 0, len(extra)+1)
			fl = append(fl, rank.TrainRow(sn.train, u))
			fl = append(fl, extra...)
			return fl, true
		}, cols)
	} else {
		// Tenant path: each user resolves to its own arm, whose snapshot
		// the filters are re-validated against — exactly the JSON batch's
		// per-user routing, plus the arm's binary-transport counter.
		for i, u32 := range req.Users {
			u := int(u32)
			rt, _ := s.resolve(req.Tenant, u)
			filters, ferr := s.requestFilters(rt.sn, exclude, spec)
			if ferr != nil {
				status[i] = wire.StatusError
				cols.AppendEmpty()
				continue
			}
			items, scores, cached, rerr := s.rankOne(nil, rt, u, m, filters)
			if rerr != nil {
				status[i] = wire.StatusError
				cols.AppendEmpty()
				continue
			}
			if rt.arm != nil {
				rt.arm.binary.Add(1)
			}
			cols.Append(items, scores, cached)
		}
	}
	if act != nil {
		act.Record("batch_rank", bstart, time.Since(bstart), fmt.Sprintf("users=%d", len(req.Users)))
	}
	for i, c := range cols.Cached {
		if c {
			status[i] |= wire.StatusCached
		}
	}
	return s.writeFrame(w, sc, &wire.BatchResponse{
		M:            uint32(m),
		ModelVersion: s.snap.Load().version,
		Status:       status,
		Counts:       cols.Counts,
		Items:        cols.Items,
		Scores:       cols.Scores,
	})
}

// handleShardTopMBinary is handleShardTopM over the binary frames: one
// user per frame, expect_version carried in the header, the partial
// marked with FlagShardPartial and global item ids. Deadline checks,
// version pinning and filter rebasing mirror the JSON shard path.
func (s *Server) handleShardTopMBinary(w http.ResponseWriter, r *http.Request) int {
	deadline, hasDeadline := deadlineFromHeader(r)
	sc := binScratchPool.Get().(*binScratch)
	defer binScratchPool.Put(sc)
	if status, ok := s.readFrame(w, r, sc); !ok {
		return status
	}
	req := &sc.req
	if len(req.Users) != 1 || req.Tenant != "" {
		s.metrics.batchBinary.decodeRejects.Add(1)
		return writeErrorCode(w, http.StatusBadRequest, "bad_frame",
			"shard frames carry exactly one user and no tenant")
	}
	if hasDeadline && !time.Now().Before(deadline) {
		s.metrics.deadlineAborts.Add(1)
		return writeError(w, http.StatusGatewayTimeout, "deadline budget expired before scoring")
	}
	m, err := s.clampM(int(req.M))
	if err != nil {
		return writeError(w, http.StatusBadRequest, err.Error())
	}
	sn := s.snap.Load()
	if req.ExpectVersion != 0 && sn.version != req.ExpectVersion {
		if prev := s.prev.Load(); prev != nil && prev.version == req.ExpectVersion {
			sn = prev
		} else {
			return writeError(w, http.StatusConflict, fmt.Sprintf(
				"shard serves model version %d, not the requested %d", sn.version, req.ExpectVersion))
		}
	}
	user := int(req.Users[0])
	if user < 0 || user >= sn.numUsers() {
		return writeError(w, http.StatusBadRequest,
			fmt.Sprintf("user %d out of range (%d users)", user, sn.numUsers()))
	}
	spec, exclude := sc.specAndExclude()
	extra, err := s.requestFilters(sn, exclude, spec)
	if err != nil {
		return writeError(w, http.StatusBadRequest, err.Error())
	}
	lo, hi := sn.rng.ItemLo(), sn.rng.ItemHi()
	filters := make([]rank.Filter, 0, len(extra)+1)
	filters = append(filters, rank.OffsetRange(rank.TrainRow(sn.train, user), lo, hi))
	for _, f := range extra {
		filters = append(filters, rank.OffsetRange(f, lo, hi))
	}
	if hasDeadline && !time.Now().Before(deadline) {
		s.metrics.deadlineAborts.Add(1)
		return writeError(w, http.StatusGatewayTimeout, "deadline budget expired before scoring")
	}
	items, scores, _ := s.shardRank(obs.ActiveFrom(r.Context()), sn, user, m, filters)
	// Translate partition-local ids back to global while laying out the
	// items column; the scores column is the engine's slice as-is.
	cols := &sc.cols
	cols.Reset()
	cols.Counts = append(cols.Counts, uint32(len(items)))
	for _, it := range items {
		cols.Items = append(cols.Items, uint32(it+lo))
	}
	status := sc.statusSlice(1)
	return s.writeFrame(w, sc, &wire.BatchResponse{
		Flags:        wire.FlagShardPartial,
		M:            uint32(m),
		ShardLo:      uint32(lo),
		ShardHi:      uint32(hi),
		ModelVersion: sn.version,
		Status:       status,
		Counts:       cols.Counts,
		Items:        cols.Items,
		Scores:       scores,
	})
}
