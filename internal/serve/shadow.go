package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/rank"
)

// shadower mirrors a deterministic sample of one tenant's recommend
// traffic against a candidate model. The comparison runs on its own
// goroutine after the primary response is already computed — the
// response path pays one hash and one branch for a sampled user, and
// exactly one comparison against an integer threshold (no hash, no
// branch into the slow path) when sampling is off. Rank/score diffs are
// emitted as JSON lines to the configured shadow log.
type shadower struct {
	tenant string
	model  *namedModel
	sample float64
	// threshold gates sampling: a user is shadowed when the top 32 bits
	// of its sampling hash fall below it. sample 0 → threshold 0 → the
	// observe call returns after one integer compare; sample 1 → 1<<32 →
	// every user.
	threshold uint64
	// seed is the FNV state after hashing "shadow:"+tenant — a different
	// salt than armBucket, so the shadow sample is uncorrelated with arm
	// assignment.
	seed uint64
	// armStages maps arm name → the arm's stage specs rebuilt against
	// the candidate model (swapped on candidate reloads), so the shadow
	// re-ranks the way the candidate would actually serve.
	armStages atomic.Pointer[map[string][]rank.Stage]

	wg      sync.WaitGroup
	logMu   sync.Mutex
	log     io.Writer
	sampled atomic.Int64
	diffs   atomic.Int64
	errs    atomic.Int64
}

func newShadower(tenantName string, nm *namedModel, sample float64, logW io.Writer) *shadower {
	seed := uint64(fnvOffset64)
	for i := 0; i < len("shadow:"); i++ {
		seed ^= uint64("shadow:"[i])
		seed *= fnvPrime64
	}
	for i := 0; i < len(tenantName); i++ {
		seed ^= uint64(tenantName[i])
		seed *= fnvPrime64
	}
	return &shadower{
		tenant:    tenantName,
		model:     nm,
		sample:    sample,
		threshold: uint64(sample * float64(uint64(1)<<32)),
		seed:      seed,
		log:       logW,
	}
}

// sampledUser reports whether user falls in the shadow sample —
// deterministic, so a user is either always or never shadowed for a given
// sample rate, and allocation-free.
func (sh *shadower) sampledUser(user int) bool {
	if sh.threshold == 0 {
		return false
	}
	h := sh.seed
	u := uint64(user)
	for i := 0; i < 8; i++ {
		h ^= u & 0xff
		h *= fnvPrime64
		u >>= 8
	}
	return h>>32 < sh.threshold
}

// observe launches the shadow comparison for one served request when the
// user is sampled. The primary result slices may be shared with the
// arm's cache; the comparison only reads them.
func (sh *shadower) observe(armName, armModel string, armVersion uint64, user, m int,
	extra []rank.Filter, priItems []int, priScores []float64) {
	if !sh.sampledUser(user) {
		return
	}
	sh.wg.Add(1)
	go sh.compare(armName, armModel, armVersion, user, m, extra, priItems, priScores)
}

// shadowRecord is one JSON line of the shadow-diff log.
type shadowRecord struct {
	Tenant         string  `json:"tenant"`
	Arm            string  `json:"arm"`
	User           int     `json:"user"`
	M              int     `json:"m"`
	PrimaryModel   string  `json:"primary_model"`
	PrimaryVersion uint64  `json:"primary_version"`
	ShadowModel    string  `json:"shadow_model"`
	ShadowVersion  uint64  `json:"shadow_version"`
	RankDiffs      int     `json:"rank_diffs"`
	MaxScoreDiff   float64 `json:"max_score_diff"`
	PrimaryItems   []int   `json:"primary_items"`
	ShadowItems    []int   `json:"shadow_items"`
	Error          string  `json:"error,omitempty"`
}

func (sh *shadower) compare(armName, armModel string, armVersion uint64, user, m int,
	extra []rank.Filter, priItems []int, priScores []float64) {
	defer sh.wg.Done()
	// Shadow work must never take the serving process down: a panic out
	// of the candidate engine (a corrupt candidate file would not have
	// loaded, but belt and suspenders) is downgraded to an error counter.
	defer func() {
		if p := recover(); p != nil {
			sh.errs.Add(1)
		}
	}()
	sh.sampled.Add(1)
	sn := sh.model.base.Load()
	rec := shadowRecord{
		Tenant:         sh.tenant,
		Arm:            armName,
		User:           user,
		M:              m,
		PrimaryModel:   armModel,
		PrimaryVersion: armVersion,
		ShadowModel:    sh.model.name,
		ShadowVersion:  sn.version,
		PrimaryItems:   priItems,
	}
	if user < 0 || user >= sn.model.NumUsers() {
		rec.Error = fmt.Sprintf("user %d beyond the shadow model's %d users", user, sn.model.NumUsers())
		sh.errs.Add(1)
		sh.emit(rec)
		return
	}
	var stages []rank.Stage
	if m := sh.armStages.Load(); m != nil {
		stages = (*m)[armName]
	}
	filters := make([]rank.Filter, 0, len(extra)+1)
	filters = append(filters, rank.TrainRow(sn.train, user))
	filters = append(filters, extra...)
	items, scores, _ := sn.engine.TopMStaged(user, m, stages, filters...)
	rec.ShadowItems = items
	rec.RankDiffs, rec.MaxScoreDiff = diffLists(priItems, priScores, items, scores)
	if rec.RankDiffs > 0 {
		sh.diffs.Add(1)
	}
	sh.emit(rec)
}

// diffLists compares two ranked lists position-wise: how many positions
// disagree on the item (length mismatches count every unpaired position)
// and the largest absolute score difference over the shared prefix.
func diffLists(aItems []int, aScores []float64, bItems []int, bScores []float64) (rankDiffs int, maxScoreDiff float64) {
	n := len(aItems)
	if len(bItems) < n {
		n = len(bItems)
	}
	for i := 0; i < n; i++ {
		if aItems[i] != bItems[i] {
			rankDiffs++
		}
		d := aScores[i] - bScores[i]
		if d < 0 {
			d = -d
		}
		if d > maxScoreDiff {
			maxScoreDiff = d
		}
	}
	rankDiffs += len(aItems) - n
	rankDiffs += len(bItems) - n
	return rankDiffs, maxScoreDiff
}

func (sh *shadower) emit(rec shadowRecord) {
	if sh.log == nil {
		return
	}
	line, err := json.Marshal(rec)
	if err != nil {
		sh.errs.Add(1)
		return
	}
	line = append(line, '\n')
	sh.logMu.Lock()
	defer sh.logMu.Unlock()
	if _, err := sh.log.Write(line); err != nil {
		sh.errs.Add(1)
	}
}

func (sh *shadower) metricsTree() map[string]any {
	return map[string]any{
		"model":   sh.model.name,
		"sample":  sh.sample,
		"sampled": sh.sampled.Load(),
		"diffs":   sh.diffs.Load(),
		"errors":  sh.errs.Load(),
	}
}

// ShadowFlush blocks until every in-flight shadow comparison has
// finished — tests and drains call it so shadow log assertions never
// race the comparison goroutines. New requests arriving during the wait
// extend it.
func (s *Server) ShadowFlush() {
	if s.registry == nil {
		return
	}
	for _, name := range s.registry.tenantNames {
		if t := s.registry.tenants[name]; t.shadow != nil {
			t.shadow.wg.Wait()
		}
	}
}
