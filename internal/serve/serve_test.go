package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/explain"
	"repro/internal/feed"
	"repro/internal/linalg"
	"repro/internal/rank"
	"repro/internal/sparse"
)

// trainSmall fits a small model for the serving tests; seed varies the
// factors so reload tests can install a genuinely different model.
func trainSmall(t testing.TB, train *sparse.Matrix, seed uint64) *core.Model {
	t.Helper()
	res, err := core.Train(train, core.Config{K: 8, Lambda: 2, MaxIter: 60, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return res.Model
}

var foldInCfg = core.Config{Lambda: 2}

// newTestServer trains on SyntheticSmall, saves the model to a temp file,
// and serves it — the full train → save → serve lifecycle.
func newTestServer(t testing.TB, cfg Config) (*Server, *httptest.Server, *core.Model, *sparse.Matrix) {
	t.Helper()
	train := dataset.SyntheticSmall(1).Dataset.R
	model := trainSmall(t, train, 3)
	path := filepath.Join(t.TempDir(), "model.bin")
	if err := model.SaveModelFile(path); err != nil {
		t.Fatal(err)
	}
	cfg.ModelPath = path
	cfg.Train = train
	cfg.FoldIn = foldInCfg
	srv, err := NewFromFile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, model, train
}

func postJSON(t testing.TB, url string, body any, out any) (status int) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("unmarshaling %q: %v", data, err)
		}
	}
	return resp.StatusCode
}

func TestRecommendMatchesInProcess(t *testing.T) {
	_, ts, model, train := newTestServer(t, Config{})
	for _, u := range []int{0, 7, 42, 119} {
		var got RecommendResponse
		if st := postJSON(t, ts.URL+"/v1/recommend", RecommendRequest{User: u, M: 10}, &got); st != 200 {
			t.Fatalf("user %d: status %d", u, st)
		}
		want := eval.TopM(model, train, u, 10, nil)
		if len(got.Items) != len(want) {
			t.Fatalf("user %d: got %d items, want %d", u, len(got.Items), len(want))
		}
		for n, it := range got.Items {
			if it.Item != want[n] {
				t.Errorf("user %d rank %d: got item %d, want %d", u, n, it.Item, want[n])
			}
			if p := model.Predict(u, it.Item); it.Score != p {
				t.Errorf("user %d item %d: score %v, want %v", u, it.Item, it.Score, p)
			}
		}
		if got.ModelVersion != 1 {
			t.Errorf("user %d: model_version %d, want 1", u, got.ModelVersion)
		}
	}
}

func TestRecommendCacheHit(t *testing.T) {
	srv, ts, _, _ := newTestServer(t, Config{})
	var first, second RecommendResponse
	postJSON(t, ts.URL+"/v1/recommend", RecommendRequest{User: 5, M: 10}, &first)
	postJSON(t, ts.URL+"/v1/recommend", RecommendRequest{User: 5, M: 10}, &second)
	if first.Cached {
		t.Error("first request reported cached=true")
	}
	if !second.Cached {
		t.Error("repeat request reported cached=false")
	}
	if fmt.Sprint(first.Items) != fmt.Sprint(second.Items) {
		t.Errorf("cached list differs: %v vs %v", first.Items, second.Items)
	}
	if hr := srv.Metrics().CacheHitRate(); hr <= 0 {
		t.Errorf("cache hit rate %v, want > 0", hr)
	}
}

func TestCacheDisabled(t *testing.T) {
	_, ts, _, _ := newTestServer(t, Config{CacheSize: -1})
	var second RecommendResponse
	postJSON(t, ts.URL+"/v1/recommend", RecommendRequest{User: 5, M: 10}, nil)
	postJSON(t, ts.URL+"/v1/recommend", RecommendRequest{User: 5, M: 10}, &second)
	if second.Cached {
		t.Error("cache disabled but repeat request reported cached=true")
	}
}

func TestFoldInMatchesFoldInUser(t *testing.T) {
	_, ts, model, train := newTestServer(t, Config{})
	// Use a real user's history as the cold-start input.
	history := []int{}
	for _, i := range train.Row(17) {
		history = append(history, int(i))
	}
	if len(history) == 0 {
		t.Fatal("user 17 has no training positives")
	}
	var got FoldInResponse
	if st := postJSON(t, ts.URL+"/v1/foldin", FoldInRequest{Items: history, M: 10}, &got); st != 200 {
		t.Fatalf("status %d", st)
	}
	factor, bias, err := model.FoldInUser(history, foldInCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Factor) != len(factor) {
		t.Fatalf("factor length %d, want %d", len(got.Factor), len(factor))
	}
	for c := range factor {
		if got.Factor[c] != factor[c] {
			t.Errorf("factor[%d] = %v, want %v", c, got.Factor[c], factor[c])
		}
	}
	if got.Bias != bias {
		t.Errorf("bias = %v, want %v", got.Bias, bias)
	}
	// Expected ranking: score with the fold-in factor, exclude the history.
	scores := make([]float64, model.NumItems())
	model.ScoreWithFactor(factor, bias, scores)
	hist := make(map[int]bool)
	for _, i := range history {
		hist[i] = true
	}
	for n, it := range got.Items {
		if hist[it.Item] {
			t.Errorf("rank %d: history item %d recommended back", n, it.Item)
		}
		if it.Score != scores[it.Item] {
			t.Errorf("item %d: score %v, want %v", it.Item, it.Score, scores[it.Item])
		}
		if n > 0 && got.Items[n-1].Score < it.Score {
			t.Errorf("ranking not descending at rank %d", n)
		}
	}
	if len(got.Items) != 10 {
		t.Errorf("got %d items, want 10", len(got.Items))
	}
}

func TestExplainMatchesInProcess(t *testing.T) {
	_, ts, model, train := newTestServer(t, Config{})
	var rec RecommendResponse
	postJSON(t, ts.URL+"/v1/recommend", RecommendRequest{User: 9, M: 1}, &rec)
	item := rec.Items[0].Item
	var got ExplainResponse
	if st := postJSON(t, ts.URL+"/v1/explain", ExplainRequest{User: 9, Item: item}, &got); st != 200 {
		t.Fatalf("status %d", st)
	}
	want := explain.Explain(model, train, 9, item, explain.Options{})
	if got.Probability != want.Probability {
		t.Errorf("probability %v, want %v", got.Probability, want.Probability)
	}
	if len(got.Reasons) != len(want.Reasons) {
		t.Fatalf("%d reasons, want %d", len(got.Reasons), len(want.Reasons))
	}
	for n, reason := range want.Reasons {
		if got.Reasons[n].Cluster != reason.ClusterID {
			t.Errorf("reason %d: cluster %d, want %d", n, got.Reasons[n].Cluster, reason.ClusterID)
		}
		if got.Reasons[n].Contribution != reason.Contribution {
			t.Errorf("reason %d: contribution %v, want %v", n, got.Reasons[n].Contribution, reason.Contribution)
		}
	}
}

func TestBatchMatchesSingle(t *testing.T) {
	_, ts, _, _ := newTestServer(t, Config{})
	users := []int{3, 1, 4, 1, 5, 92, 65}
	var batch BatchResponse
	if st := postJSON(t, ts.URL+"/v1/batch", BatchRequest{Users: users, M: 5}, &batch); st != 200 {
		t.Fatalf("status %d", st)
	}
	if len(batch.Results) != len(users) {
		t.Fatalf("%d results, want %d", len(batch.Results), len(users))
	}
	for n, u := range users {
		var single RecommendResponse
		postJSON(t, ts.URL+"/v1/recommend", RecommendRequest{User: u, M: 5}, &single)
		if batch.Results[n].User != u {
			t.Errorf("result %d: user %d, want %d (order must be preserved)", n, batch.Results[n].User, u)
		}
		if fmt.Sprint(batch.Results[n].Items) != fmt.Sprint(single.Items) {
			t.Errorf("result %d: batch items %v != single items %v", n, batch.Results[n].Items, single.Items)
		}
	}
}

func TestBatchPartialFailure(t *testing.T) {
	_, ts, _, _ := newTestServer(t, Config{})
	var batch BatchResponse
	if st := postJSON(t, ts.URL+"/v1/batch", BatchRequest{Users: []int{2, 100000, 3}, M: 5}, &batch); st != 200 {
		t.Fatalf("status %d", st)
	}
	if batch.Results[1].Error == "" {
		t.Error("out-of-range user in batch did not report an error")
	}
	if batch.Results[0].Error != "" || len(batch.Results[0].Items) == 0 {
		t.Error("valid user 2 was not served alongside the failing one")
	}
	if batch.Results[2].Error != "" || len(batch.Results[2].Items) == 0 {
		t.Error("valid user 3 was not served alongside the failing one")
	}
}

func TestErrorPaths(t *testing.T) {
	srv, ts, _, _ := newTestServer(t, Config{MaxM: 50, MaxBatch: 4})
	post := func(path, body string) int {
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	cases := []struct {
		name, path, body string
		want             int
	}{
		{"malformed json", "/v1/recommend", `{"user":`, 400},
		{"unknown field", "/v1/recommend", `{"usr": 3}`, 400},
		{"user out of range", "/v1/recommend", `{"user": 100000}`, 400},
		{"negative user", "/v1/recommend", `{"user": -1}`, 400},
		{"negative m", "/v1/recommend", `{"user": 1, "m": -2}`, 400},
		{"m over cap", "/v1/recommend", `{"user": 1, "m": 51}`, 400},
		{"foldin empty history", "/v1/foldin", `{"items": []}`, 400},
		{"foldin item out of range", "/v1/foldin", `{"items": [99999]}`, 400},
		{"explain item out of range", "/v1/explain", `{"user": 1, "item": 99999}`, 400},
		{"batch empty", "/v1/batch", `{"users": []}`, 400},
		{"batch over cap", "/v1/batch", `{"users": [1,2,3,4,5]}`, 400},
		// The body must be exactly one JSON value: a concatenated second
		// request is a client framing bug and must not be silently dropped.
		{"trailing second value", "/v1/recommend", `{"user": 1}{"user": 2}`, 400},
		{"trailing garbage", "/v1/recommend", `{"user": 1} trailing`, 400},
		{"trailing array", "/v1/batch", `{"users": [1]}[2]`, 400},
		// Trailing whitespace is part of the single value's framing and fine.
		{"trailing whitespace ok", "/v1/recommend", "{\"user\": 1}  \n\t ", 200},
	}
	for _, c := range cases {
		if got := post(c.path, c.body); got != c.want {
			t.Errorf("%s: status %d, want %d", c.name, got, c.want)
		}
	}
	// Wrong method routes to 405.
	resp, err := http.Get(ts.URL + "/v1/recommend")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/recommend: status %d, want 405", resp.StatusCode)
	}
	// Error responses must be counted by the instrumentation.
	var metrics struct {
		Endpoints map[string]struct {
			Requests int64 `json:"requests"`
			Errors   int64 `json:"errors"`
		} `json:"endpoints"`
	}
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if metrics.Endpoints["recommend"].Errors == 0 {
		t.Error("recommend endpoint metrics report zero errors after error requests")
	}
	_ = srv
}

func TestDefaultMRespectsLowCap(t *testing.T) {
	_, ts, _, _ := newTestServer(t, Config{MaxM: 3})
	var got RecommendResponse
	if st := postJSON(t, ts.URL+"/v1/recommend", RecommendRequest{User: 1}, &got); st != 200 {
		t.Fatalf("status %d", st)
	}
	if len(got.Items) != 3 {
		t.Errorf("omitted m returned %d items, want the MaxM cap of 3", len(got.Items))
	}
}

func TestReloadSwapsModelAndCache(t *testing.T) {
	srv, ts, _, train := newTestServer(t, Config{})
	// Warm the cache on the initial model.
	var before RecommendResponse
	postJSON(t, ts.URL+"/v1/recommend", RecommendRequest{User: 11, M: 10}, &before)
	postJSON(t, ts.URL+"/v1/recommend", RecommendRequest{User: 11, M: 10}, &before)
	if !before.Cached {
		t.Fatal("expected warm cache before reload")
	}
	// Overwrite the model file with a differently-seeded model and reload.
	next := trainSmall(t, train, 99)
	if err := next.SaveModelFile(srv.cfg.ModelPath); err != nil {
		t.Fatal(err)
	}
	var rl ReloadResponse
	if st := postJSON(t, ts.URL+"/v1/reload", struct{}{}, &rl); st != 200 {
		t.Fatalf("reload status %d", st)
	}
	if rl.ModelVersion != 2 {
		t.Errorf("reload version %d, want 2", rl.ModelVersion)
	}
	var after RecommendResponse
	postJSON(t, ts.URL+"/v1/recommend", RecommendRequest{User: 11, M: 10}, &after)
	if after.Cached {
		t.Error("cache survived the reload (stale recommendations)")
	}
	if after.ModelVersion != 2 {
		t.Errorf("post-reload model_version %d, want 2", after.ModelVersion)
	}
	want := eval.TopM(next, train, 11, 10, nil)
	for n, it := range after.Items {
		if it.Item != want[n] {
			t.Fatalf("post-reload rank %d: item %d, want %d (old model still served?)", n, it.Item, want[n])
		}
	}
	// A corrupt model file must fail the reload but keep serving.
	if err := writeFile(srv.cfg.ModelPath, []byte("garbage")); err != nil {
		t.Fatal(err)
	}
	if st := postJSON(t, ts.URL+"/v1/reload", struct{}{}, nil); st != 500 {
		t.Errorf("corrupt reload status %d, want 500", st)
	}
	var still RecommendResponse
	if st := postJSON(t, ts.URL+"/v1/recommend", RecommendRequest{User: 11, M: 10}, &still); st != 200 {
		t.Fatalf("serving broken after failed reload: status %d", st)
	}
	if still.ModelVersion != 2 {
		t.Errorf("failed reload changed the served version to %d", still.ModelVersion)
	}
}

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

// TestConcurrentLoadWithReloads hammers the read endpoints from many
// goroutines while the model is hot-swapped repeatedly. Every request must
// succeed — a reload may never drop an in-flight request. Run with -race.
func TestConcurrentLoadWithReloads(t *testing.T) {
	srv, ts, _, train := newTestServer(t, Config{CacheSize: 256})
	alt := trainSmall(t, train, 99)

	const (
		readers         = 8
		requestsPerGoro = 40
		reloads         = 20
	)
	var wg sync.WaitGroup
	errc := make(chan error, readers*requestsPerGoro+reloads)
	client := ts.Client()
	do := func(path, body string) {
		resp, err := client.Post(ts.URL+path, "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			errc <- err
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			errc <- fmt.Errorf("%s: status %d", path, resp.StatusCode)
		}
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for n := 0; n < requestsPerGoro; n++ {
				u := (g*31 + n) % 120
				switch n % 3 {
				case 0:
					do("/v1/recommend", fmt.Sprintf(`{"user": %d, "m": 10}`, u))
				case 1:
					do("/v1/batch", fmt.Sprintf(`{"users": [%d, %d], "m": 5}`, u, (u+1)%120))
				case 2:
					do("/v1/explain", fmt.Sprintf(`{"user": %d, "item": %d}`, u, u%80))
				}
			}
		}(g)
	}
	// Trained before the goroutine starts: t.Fatal (via trainSmall) must
	// not run on a non-test goroutine.
	alt2 := trainSmall(t, train, 3)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := 0; n < reloads; n++ {
			m := alt
			if n%2 == 1 {
				m = alt2
			}
			if err := srv.Reload(m); err != nil {
				errc <- err
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if v := srv.Version(); v != 1+reloads {
		t.Errorf("version %d after %d reloads, want %d", v, reloads, 1+reloads)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts, _, _ := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status       string `json:"status"`
		ModelVersion uint64 `json:"model_version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.ModelVersion != 1 {
		t.Errorf("healthz = %+v", health)
	}

	postJSON(t, ts.URL+"/v1/recommend", RecommendRequest{User: 1, M: 5}, nil)
	postJSON(t, ts.URL+"/v1/recommend", RecommendRequest{User: 1, M: 5}, nil)
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics struct {
		Cache struct {
			Hits    int64   `json:"hits"`
			HitRate float64 `json:"hit_rate"`
			Entries int     `json:"entries"`
		} `json:"cache"`
		Endpoints map[string]struct {
			Requests         int64            `json:"requests"`
			LatencyHistogram map[string]int64 `json:"latency_histogram"`
		} `json:"endpoints"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if metrics.Cache.Hits == 0 || metrics.Cache.HitRate <= 0 {
		t.Errorf("cache metrics %+v, want non-zero hits after repeat request", metrics.Cache)
	}
	if metrics.Cache.Entries == 0 {
		t.Error("cache reports zero entries after a miss")
	}
	rec := metrics.Endpoints["recommend"]
	if rec.Requests < 2 {
		t.Errorf("recommend requests %d, want >= 2", rec.Requests)
	}
	total := int64(0)
	for _, n := range rec.LatencyHistogram {
		total += n
	}
	if total != rec.Requests {
		t.Errorf("latency histogram sums to %d, want %d", total, rec.Requests)
	}
}

// testItemTags tags the 80-item synthetic catalogue: "even" marks the
// even items, "low" the first half, "rare" items 1 and 79.
func testItemTags(t testing.TB, numItems int) *rank.TagTable {
	t.Helper()
	var b strings.Builder
	for i := 0; i < numItems; i++ {
		fmt.Fprintf(&b, "%d,item-%d", i, i)
		if i%2 == 0 {
			b.WriteString(",even")
		}
		if i < numItems/2 {
			b.WriteString(",low")
		}
		if i == 1 || i == numItems-1 {
			b.WriteString(",rare")
		}
		b.WriteByte('\n')
	}
	tab, err := rank.LoadTagTable(strings.NewReader(b.String()), numItems)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// TestFilteredRecommend: a /v1/recommend with exclude_items and a tag
// filter must round-trip with correct results — excluded and deny-tagged
// items absent, training positives still excluded, scores untouched — and
// the filtered list must be cacheable under its own fingerprint.
func TestFilteredRecommend(t *testing.T) {
	_, ts, model, train := newTestServer(t, Config{ItemTags: testItemTags(t, 80)})
	const user = 7
	req := RecommendRequest{
		User:         user,
		M:            10,
		ExcludeItems: []int{2, 4, 6},
		Filter:       &FilterSpec{DenyTags: []string{"rare"}, AllowTags: []string{"low", "even"}},
	}
	var got RecommendResponse
	if st := postJSON(t, ts.URL+"/v1/recommend", req, &got); st != 200 {
		t.Fatalf("status %d", st)
	}
	if len(got.Items) != 10 {
		t.Fatalf("got %d items, want 10", len(got.Items))
	}
	// Reference: score in-process, apply the same exclusions by hand.
	scores := make([]float64, model.NumItems())
	model.ScoreUser(user, scores)
	owned := make(map[int]bool)
	for _, i := range train.Row(user) {
		owned[int(i)] = true
	}
	excluded := func(i int) bool {
		if owned[i] || i == 2 || i == 4 || i == 6 {
			return true
		}
		if i == 1 || i == 79 { // deny rare
			return true
		}
		return !(i < 40 || i%2 == 0) // allow low+even
	}
	for pos, it := range got.Items {
		if excluded(it.Item) {
			t.Errorf("excluded item %d served at rank %d", it.Item, pos)
		}
		if it.Score != scores[it.Item] {
			t.Errorf("item %d: score %v, want %v", it.Item, it.Score, scores[it.Item])
		}
	}
	for n := 1; n < len(got.Items); n++ {
		if got.Items[n-1].Score < got.Items[n].Score {
			t.Errorf("ranking not descending at %d", n)
		}
	}
	if got.Cached {
		t.Error("first filtered request reported cached")
	}
	// The filtered request is cacheable under its own key...
	var again RecommendResponse
	postJSON(t, ts.URL+"/v1/recommend", req, &again)
	if !again.Cached {
		t.Error("repeat filtered request missed the cache")
	}
	if fmt.Sprint(again.Items) != fmt.Sprint(got.Items) {
		t.Errorf("cached filtered list differs: %v vs %v", again.Items, got.Items)
	}
	// ...and never collides with the unfiltered (user, m) entry.
	var plain RecommendResponse
	postJSON(t, ts.URL+"/v1/recommend", RecommendRequest{User: user, M: 10}, &plain)
	if plain.Cached {
		t.Error("unfiltered request hit the filtered entry")
	}
	if fmt.Sprint(plain.Items) == fmt.Sprint(got.Items) {
		t.Error("unfiltered and filtered lists are identical (filters ignored?)")
	}
}

func TestFilteredFoldInAndBatch(t *testing.T) {
	_, ts, _, train := newTestServer(t, Config{ItemTags: testItemTags(t, 80)})
	history := []int{}
	for _, i := range train.Row(17) {
		history = append(history, int(i))
	}
	var fr FoldInResponse
	req := FoldInRequest{Items: history, M: 8, Filter: &FilterSpec{DenyTags: []string{"even"}}}
	if st := postJSON(t, ts.URL+"/v1/foldin", req, &fr); st != 200 {
		t.Fatalf("foldin status %d", st)
	}
	hist := make(map[int]bool)
	for _, i := range history {
		hist[i] = true
	}
	for _, it := range fr.Items {
		if hist[it.Item] {
			t.Errorf("history item %d recommended back", it.Item)
		}
		if it.Item%2 == 0 {
			t.Errorf("deny-tagged even item %d served", it.Item)
		}
	}
	// Batch applies the filters to every user.
	var br BatchResponse
	breq := BatchRequest{Users: []int{3, 9}, M: 6, ExcludeItems: []int{10, 11}, Filter: &FilterSpec{AllowTags: []string{"low"}}}
	if st := postJSON(t, ts.URL+"/v1/batch", breq, &br); st != 200 {
		t.Fatalf("batch status %d", st)
	}
	for n, res := range br.Results {
		if res.Error != "" {
			t.Fatalf("result %d: %s", n, res.Error)
		}
		for _, it := range res.Items {
			if it.Item == 10 || it.Item == 11 || it.Item >= 40 {
				t.Errorf("user %d: item %d violates the batch filters", res.User, it.Item)
			}
		}
	}
	// A single-user batch takes the inline path and must behave the same.
	var one BatchResponse
	if st := postJSON(t, ts.URL+"/v1/batch", BatchRequest{Users: []int{3}, M: 6}, &one); st != 200 {
		t.Fatalf("single-user batch status %d", st)
	}
	var single RecommendResponse
	postJSON(t, ts.URL+"/v1/recommend", RecommendRequest{User: 3, M: 6}, &single)
	if fmt.Sprint(one.Results[0].Items) != fmt.Sprint(single.Items) {
		t.Errorf("single-user batch items %v != recommend items %v", one.Results[0].Items, single.Items)
	}
}

func TestFilterErrors(t *testing.T) {
	_, tsNoTags, _, _ := newTestServer(t, Config{})
	// Tag filters without a configured table are a client error, not a
	// silent no-op.
	if st := postJSON(t, tsNoTags.URL+"/v1/recommend",
		RecommendRequest{User: 1, M: 5, Filter: &FilterSpec{AllowTags: []string{"low"}}}, nil); st != 400 {
		t.Errorf("tag filter without table: status %d, want 400", st)
	}
	_, ts, _, _ := newTestServer(t, Config{ItemTags: testItemTags(t, 80)})
	cases := []struct {
		name string
		req  any
		path string
	}{
		{"unknown tag", RecommendRequest{User: 1, M: 5, Filter: &FilterSpec{AllowTags: []string{"typo"}}}, "/v1/recommend"},
		{"exclude out of range", RecommendRequest{User: 1, M: 5, ExcludeItems: []int{99999}}, "/v1/recommend"},
		{"negative exclude", RecommendRequest{User: 1, M: 5, ExcludeItems: []int{-2}}, "/v1/recommend"},
		{"foldin unknown tag", FoldInRequest{Items: []int{3}, M: 5, Filter: &FilterSpec{DenyTags: []string{"nope"}}}, "/v1/foldin"},
		{"batch exclude out of range", BatchRequest{Users: []int{1}, M: 5, ExcludeItems: []int{4000}}, "/v1/batch"},
	}
	for _, c := range cases {
		if st := postJSON(t, ts.URL+c.path, c.req, nil); st != 400 {
			t.Errorf("%s: status %d, want 400", c.name, st)
		}
	}
}

// TestCoalescingObservable: duplicate concurrent (user, m) misses must
// compute the list once, observable through the /metrics cache.ranked
// counter (the coalesced counter reports how many waiters piggybacked).
func TestCoalescingObservable(t *testing.T) {
	_, ts, _, _ := newTestServer(t, Config{})
	const concurrent = 16
	var wg sync.WaitGroup
	for n := 0; n < concurrent; n++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := ts.Client().Post(ts.URL+"/v1/recommend", "application/json",
				bytes.NewReader([]byte(`{"user": 42, "m": 10}`)))
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics struct {
		Cache struct {
			Hits      int64 `json:"hits"`
			Misses    int64 `json:"misses"`
			Coalesced int64 `json:"coalesced"`
			Ranked    int64 `json:"ranked"`
		} `json:"cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// Exactly 1 in practice; a request descheduled between its cache miss
	// and its flight join can legitimately become a second leader, so
	// allow that rare window rather than flake — the thundering herd
	// (ranked == concurrent) is what must never happen. The deterministic
	// ranked==1 assertion lives in rank.TestEngineCoalescesDuplicateMisses.
	if r := metrics.Cache.Ranked; r < 1 || r >= concurrent/2 {
		t.Errorf("ranked %d times for %d duplicate requests, want ~1 (coalesced=%d hits=%d)",
			r, concurrent, metrics.Cache.Coalesced, metrics.Cache.Hits)
	}
	if got := metrics.Cache.Hits + metrics.Cache.Coalesced + metrics.Cache.Misses; got != concurrent {
		t.Errorf("hits+coalesced+misses = %d, want %d", got, concurrent)
	}
}

// TestConcurrentFilteredReloads fires filtered requests (exclude_items +
// tag filters) from many goroutines while the model is hot-swapped
// repeatedly. Every request must succeed against a consistent snapshot.
// Run with -race.
func TestConcurrentFilteredReloads(t *testing.T) {
	srv, ts, _, train := newTestServer(t, Config{CacheSize: 256, ItemTags: testItemTags(t, 80)})
	alt := trainSmall(t, train, 99)

	const (
		readers         = 8
		requestsPerGoro = 30
		reloads         = 15
	)
	var wg sync.WaitGroup
	errc := make(chan error, readers*requestsPerGoro+reloads)
	client := ts.Client()
	do := func(path, body string) {
		resp, err := client.Post(ts.URL+path, "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			errc <- err
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			errc <- fmt.Errorf("%s: status %d", path, resp.StatusCode)
		}
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for n := 0; n < requestsPerGoro; n++ {
				u := (g*31 + n) % 120
				switch n % 3 {
				case 0:
					do("/v1/recommend", fmt.Sprintf(
						`{"user": %d, "m": 10, "exclude_items": [%d, %d], "filter": {"deny_tags": ["rare"]}}`,
						u, u%80, (u+3)%80))
				case 1:
					do("/v1/recommend", fmt.Sprintf(
						`{"user": %d, "m": 10, "filter": {"allow_tags": ["low", "even"]}}`, u))
				case 2:
					do("/v1/batch", fmt.Sprintf(
						`{"users": [%d, %d], "m": 5, "exclude_items": [%d]}`, u, (u+1)%120, u%80))
				}
			}
		}(g)
	}
	alt2 := trainSmall(t, train, 3)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := 0; n < reloads; n++ {
			m := alt
			if n%2 == 1 {
				m = alt2
			}
			if err := m.SaveModelFileOpts(srv.cfg.ModelPath, core.SaveOptions{Float32: n%2 == 0}); err != nil {
				errc <- err
				return
			}
			if err := srv.ReloadFromFile(); err != nil {
				errc <- err
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

func TestServerRejectsShapeMismatch(t *testing.T) {
	train := dataset.SyntheticSmall(1).Dataset.R
	model := trainSmall(t, train, 3)
	// A model over a different item count than the exclusion matrix.
	bigger := sparse.NewBuilder(train.Rows(), train.Cols()+1).Build()
	if _, err := New(model, Config{Train: bigger}); err == nil {
		t.Error("New accepted a model/train shape mismatch")
	}
	if _, err := New(nil, Config{}); err == nil {
		t.Error("New accepted a nil model")
	}
	srv, err := New(model, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.ReloadFromFile(); err == nil {
		t.Error("ReloadFromFile without ModelPath did not error")
	}
}

// TestNewRejectsBadConfig: every limit is validated at construction, so a
// misconfigured server fails fast instead of silently serving empty lists
// (MaxM), rejecting all batches (MaxBatch), or panicking under load.
func TestNewRejectsBadConfig(t *testing.T) {
	train := dataset.SyntheticSmall(1).Dataset.R
	model := trainSmall(t, train, 3)
	cases := map[string]Config{
		"negative MaxM":         {MaxM: -1},
		"negative MaxBatch":     {MaxBatch: -5},
		"negative MaxBodyBytes": {MaxBodyBytes: -1},
		"negative Workers":      {Workers: -2},
		"negative CacheShards":  {CacheShards: -1},
	}
	for name, cfg := range cases {
		if _, err := New(model, cfg); err == nil {
			t.Errorf("%s: New accepted the config", name)
		}
	}
}

// TestFoldInCanonicalizesHistory: the fold-in response must depend only on
// the *set* of history items, not on their order or multiplicity. The
// solver sums float contributions in history order, so without
// canonicalization a reversed or duplicated history returns a factor
// differing in its low bits.
func TestFoldInCanonicalizesHistory(t *testing.T) {
	_, ts, _, train := newTestServer(t, Config{})
	history := []int{}
	for _, i := range train.Row(17) {
		history = append(history, int(i))
	}
	if len(history) < 2 {
		t.Fatal("user 17 has too few training positives for an order test")
	}
	// Reversed, with every item duplicated and one triplicated.
	messy := []int{history[0]}
	for n := len(history) - 1; n >= 0; n-- {
		messy = append(messy, history[n], history[n])
	}
	var canonical, fromMessy FoldInResponse
	if st := postJSON(t, ts.URL+"/v1/foldin", FoldInRequest{Items: history, M: 10}, &canonical); st != 200 {
		t.Fatalf("canonical request: status %d", st)
	}
	if st := postJSON(t, ts.URL+"/v1/foldin", FoldInRequest{Items: messy, M: 10}, &fromMessy); st != 200 {
		t.Fatalf("messy request: status %d", st)
	}
	for c := range canonical.Factor {
		if canonical.Factor[c] != fromMessy.Factor[c] {
			t.Errorf("factor[%d]: %v (sorted unique) vs %v (reversed+duplicated)",
				c, canonical.Factor[c], fromMessy.Factor[c])
		}
	}
	if canonical.Bias != fromMessy.Bias {
		t.Errorf("bias: %v vs %v", canonical.Bias, fromMessy.Bias)
	}
	if fmt.Sprint(canonical.Items) != fmt.Sprint(fromMessy.Items) {
		t.Errorf("rankings differ:\n%v\n%v", canonical.Items, fromMessy.Items)
	}
	// History items are never recommended back, duplicates or not.
	hist := make(map[int]bool)
	for _, i := range history {
		hist[i] = true
	}
	for _, it := range fromMessy.Items {
		if hist[it.Item] {
			t.Errorf("history item %d recommended back", it.Item)
		}
	}
	// Out-of-range items are rejected before any solver work.
	for _, bad := range [][]int{{-1}, {1 << 30}, {0, -7, 3}} {
		if st := postJSON(t, ts.URL+"/v1/foldin", FoldInRequest{Items: bad, M: 5}, nil); st != 400 {
			t.Errorf("history %v: status %d, want 400", bad, st)
		}
	}
}

// TestServeMapped asserts the serving stack actually runs on the mmap
// path for a v2 file (the default save format), and that the float32
// variant serves scores within the documented quantization bound.
func TestServeMapped(t *testing.T) {
	srv, _, _, _ := newTestServer(t, Config{})
	if mapped, f32 := srv.ServingMode(); !mapped || f32 {
		t.Errorf("default v2 file: mapped=%v float32=%v, want mapped=true float32=false", mapped, f32)
	}

	// Save with the float32 section and serve from it.
	train := dataset.SyntheticSmall(1).Dataset.R
	model := trainSmall(t, train, 3)
	path := filepath.Join(t.TempDir(), "model.bin")
	if err := model.SaveModelFileOpts(path, core.SaveOptions{Float32: true}); err != nil {
		t.Fatal(err)
	}
	srv32, err := NewFromFile(Config{ModelPath: path, Train: train, FoldIn: foldInCfg})
	if err != nil {
		t.Fatal(err)
	}
	if mapped, f32 := srv32.ServingMode(); !mapped || !f32 {
		t.Fatalf("f32 v2 file: mapped=%v float32=%v, want both true", mapped, f32)
	}
	ts := httptest.NewServer(srv32.Handler())
	defer ts.Close()
	var got RecommendResponse
	if st := postJSON(t, ts.URL+"/v1/recommend", RecommendRequest{User: 7, M: 10}, &got); st != 200 {
		t.Fatalf("status %d", st)
	}
	if len(got.Items) != 10 {
		t.Fatalf("got %d items, want 10", len(got.Items))
	}
	bound := linalg.ScoreErrorBoundF32(model.K())
	for _, it := range got.Items {
		want := model.Predict(7, it.Item)
		if d := math.Abs(it.Score - want); d > bound {
			t.Errorf("item %d: f32 score %v vs f64 %v (off by %g, bound %g)", it.Item, it.Score, want, d, bound)
		}
	}
	// healthz reports the serving mode.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Mapped  bool `json:"mapped"`
		Float32 bool `json:"float32"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !health.Mapped || !health.Float32 {
		t.Errorf("healthz mapped=%v float32=%v, want both true", health.Mapped, health.Float32)
	}
	// Fold-in stays bit-exact on the float64 sections even with f32 scoring.
	history := []int{}
	for _, i := range train.Row(17) {
		history = append(history, int(i))
	}
	var fr FoldInResponse
	if st := postJSON(t, ts.URL+"/v1/foldin", FoldInRequest{Items: history, M: 5}, &fr); st != 200 {
		t.Fatalf("foldin status %d", st)
	}
	factor, bias, err := model.FoldInUser(history, foldInCfg)
	if err != nil {
		t.Fatal(err)
	}
	for c := range factor {
		if fr.Factor[c] != factor[c] {
			t.Errorf("foldin factor[%d] = %v, want %v (must be exact)", c, fr.Factor[c], factor[c])
		}
	}
	if fr.Bias != bias {
		t.Errorf("foldin bias = %v, want %v", fr.Bias, bias)
	}
}

// TestConcurrentFileReloadsV2 hammers /v1/recommend and /v1/batch while
// v2 model files (alternating float32 section on/off) are re-saved and
// re-mmapped underneath. Every request must succeed against a consistent
// snapshot; old mappings must stay valid for requests pinned to them.
// Run with -race.
func TestConcurrentFileReloadsV2(t *testing.T) {
	srv, ts, _, train := newTestServer(t, Config{CacheSize: 256})
	alt := trainSmall(t, train, 99)

	const (
		readers         = 8
		requestsPerGoro = 30
		reloads         = 15
	)
	var wg sync.WaitGroup
	errc := make(chan error, readers*requestsPerGoro+reloads)
	client := ts.Client()
	do := func(path, body string) {
		resp, err := client.Post(ts.URL+path, "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			errc <- err
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			errc <- fmt.Errorf("%s: status %d", path, resp.StatusCode)
		}
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for n := 0; n < requestsPerGoro; n++ {
				u := (g*31 + n) % 120
				if n%2 == 0 {
					do("/v1/recommend", fmt.Sprintf(`{"user": %d, "m": 10}`, u))
				} else {
					do("/v1/batch", fmt.Sprintf(`{"users": [%d, %d], "m": 5}`, u, (u+1)%120))
				}
			}
		}(g)
	}
	// Both models are trained before the goroutines start: t.Fatal (via
	// trainSmall) must not run on a non-test goroutine.
	alt2 := trainSmall(t, train, 3)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := 0; n < reloads; n++ {
			m := alt
			if n%2 == 1 {
				m = alt2
			}
			if err := m.SaveModelFileOpts(srv.cfg.ModelPath, core.SaveOptions{Float32: n%2 == 0}); err != nil {
				errc <- err
				return
			}
			if err := srv.ReloadFromFile(); err != nil {
				errc <- err
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if mapped, _ := srv.ServingMode(); !mapped {
		t.Error("server not on the mmap path after file reloads")
	}
}

// BenchmarkReload measures ReloadFromFile across model scales. The v2
// mmap path re-maps and validates only the 128-byte header, so ns/op must
// stay flat as the model grows ~50x — compare the sub-benchmarks.
func BenchmarkReload(b *testing.B) {
	for _, bench := range []struct {
		name  string
		train *sparse.Matrix
		k     int
	}{
		{"small", dataset.SyntheticSmall(1).Dataset.R, 8},
		{"large", dataset.SyntheticNetflix(1, 0.25).R, 32},
	} {
		b.Run(bench.name, func(b *testing.B) {
			res, err := core.Train(bench.train, core.Config{K: bench.k, Lambda: 2, MaxIter: 1, Seed: 3})
			if err != nil {
				b.Fatal(err)
			}
			path := filepath.Join(b.TempDir(), "model.bin")
			if err := res.Model.SaveModelFileOpts(path, core.SaveOptions{Float32: true}); err != nil {
				b.Fatal(err)
			}
			srv, err := NewFromFile(Config{ModelPath: path, Train: bench.train})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Model.NumUsers()*res.Model.K()+res.Model.NumItems()*res.Model.K()), "factors")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := srv.ReloadFromFile(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Continuous-training pipeline: ingest, reload handshake, grown models ---

// TestIngestAppendsToFeed: /v1/ingest writes through to the configured
// interaction log in both request shapes, and the response reports the
// cumulative feed state.
func TestIngestAppendsToFeed(t *testing.T) {
	feedDir := t.TempDir()
	log, err := feed.Open(feedDir, feed.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	_, ts, model, _ := newTestServer(t, Config{Feed: log})

	var resp IngestResponse
	if st := postJSON(t, ts.URL+"/v1/ingest", map[string]any{"user": 3, "items": []int{1, 2}}, &resp); st != 200 {
		t.Fatalf("ingest status %d", st)
	}
	if resp.Appended != 2 || resp.FeedPositives != 2 {
		t.Fatalf("ingest response %+v, want 2 appended / 2 total", resp)
	}
	// Ids beyond the served catalogue are accepted: they name users/items
	// a future retrained model will cover.
	newUser, newItem := model.NumUsers()+10, model.NumItems()+5
	req := map[string]any{"events": []map[string]int{
		{"user": newUser, "item": newItem},
		{"user": 0, "item": 0},
	}}
	if st := postJSON(t, ts.URL+"/v1/ingest", req, &resp); st != 200 {
		t.Fatalf("ingest events status %d", st)
	}
	if resp.Appended != 2 || resp.FeedPositives != 4 {
		t.Fatalf("ingest response %+v, want 2 appended / 4 total", resp)
	}

	events, err := feed.Events(feedDir)
	if err != nil {
		t.Fatal(err)
	}
	want := []feed.Event{
		{User: 3, Item: 1},
		{User: 3, Item: 2},
		{User: uint32(newUser), Item: uint32(newItem)},
		{User: 0, Item: 0},
	}
	if fmt.Sprint(events) != fmt.Sprint(want) {
		t.Fatalf("feed replay = %v, want %v", events, want)
	}

	// healthz surfaces the feed backlog.
	var health map[string]any
	getJSON(t, ts.URL+"/healthz", &health)
	if got := health["feed_positives"]; got != float64(4) {
		t.Fatalf("healthz feed_positives = %v, want 4", got)
	}

	for name, bad := range map[string]map[string]any{
		"no positives at all":  {},
		"user without items":   {"user": 3},
		"items without a user": {"items": []int{1, 2}}, // must not default to user 0
		"negative user":        {"user": -1, "items": []int{0}},
		"negative item":        {"user": 0, "items": []int{-2}},
		"id beyond feed.MaxID": {"events": []map[string]int{{"user": 1 << 29, "item": 0}}},
		"event missing user":   {"events": []map[string]int{{"item": 61}}}, // must not default to user 0
		"event missing item":   {"events": []map[string]int{{"user": 61}}},
	} {
		if st := postJSON(t, ts.URL+"/v1/ingest", bad, nil); st != 400 {
			t.Errorf("ingest %s: status %d, want 400", name, st)
		}
	}
	// Nothing from the rejected requests reached the feed.
	if got := log.Count(); got != 4 {
		t.Errorf("feed count %d after rejected ingests, want 4", got)
	}
}

func TestIngestWithoutFeedRejected(t *testing.T) {
	_, ts, _, _ := newTestServer(t, Config{})
	var resp map[string]string
	if st := postJSON(t, ts.URL+"/v1/ingest", map[string]any{"user": 1, "items": []int{2}}, &resp); st != http.StatusServiceUnavailable {
		t.Fatalf("ingest without feed: status %d, want 503", st)
	}
	if !strings.Contains(resp["error"], "feed") {
		t.Errorf("error %q does not mention the feed", resp["error"])
	}
}

func getJSON(t testing.TB, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// TestReloadHandshake: the reload response alone confirms the rollout —
// new version, serving mode — without a second /healthz round trip.
func TestReloadHandshake(t *testing.T) {
	srv, ts, _, train := newTestServer(t, Config{})
	model2 := trainSmall(t, train, 99)
	if err := model2.SaveModelFileOpts(srv.cfg.ModelPath, core.SaveOptions{Float32: true}); err != nil {
		t.Fatal(err)
	}
	var resp ReloadResponse
	if st := postJSON(t, ts.URL+"/v1/reload", struct{}{}, &resp); st != 200 {
		t.Fatalf("reload status %d", st)
	}
	if resp.ModelVersion != 2 {
		t.Errorf("model_version = %d, want 2", resp.ModelVersion)
	}
	if !resp.Mapped || !resp.Float32 {
		t.Errorf("serving mode mapped=%v float32=%v, want both true for a -save-f32 v2 file", resp.Mapped, resp.Float32)
	}
	if resp.Model != model2.String() {
		t.Errorf("model = %q, want %q", resp.Model, model2.String())
	}
}

// TestFoldInUnknownItemsDropped is the regression test for the silent
// zero-vector fold-in: items beyond the served catalogue are dropped from
// the history (they may be real items ingested but not yet rolled out),
// and a history left empty by that canonicalization is a clear 400, not a
// pure-shrinkage factor scoring every item alike. Negative items remain
// hard errors.
func TestFoldInUnknownItemsDropped(t *testing.T) {
	_, ts, model, train := newTestServer(t, Config{})
	row := train.Row(2)
	valid := make([]int, len(row))
	for n, i := range row {
		valid[n] = int(i)
	}

	// Mixed history: beyond-catalogue items are dropped, the rest folds in
	// exactly as if they were never sent.
	mixed := append([]int{model.NumItems(), model.NumItems() + 7}, valid...)
	var want, got FoldInResponse
	if st := postJSON(t, ts.URL+"/v1/foldin", FoldInRequest{Items: valid, M: 5}, &want); st != 200 {
		t.Fatalf("valid history: status %d", st)
	}
	if st := postJSON(t, ts.URL+"/v1/foldin", FoldInRequest{Items: mixed, M: 5}, &got); st != 200 {
		t.Fatalf("mixed history: status %d", st)
	}
	if fmt.Sprint(got.Factor) != fmt.Sprint(want.Factor) || fmt.Sprint(got.Items) != fmt.Sprint(want.Items) {
		t.Error("dropping unknown items changed the fold-in result")
	}

	// A history with nothing inside the catalogue: 400 with a clear
	// message, not a silently scored zero vector.
	var errResp map[string]string
	st := postJSON(t, ts.URL+"/v1/foldin",
		FoldInRequest{Items: []int{model.NumItems(), model.NumItems() + 3}, M: 5}, &errResp)
	if st != 400 {
		t.Fatalf("all-unknown history: status %d, want 400", st)
	}
	if !strings.Contains(errResp["error"], "catalogue") {
		t.Errorf("error %q does not explain the empty canonicalized history", errResp["error"])
	}
}

// TestReloadGrownModel: installing a model larger than the configured
// exclusion matrix (the trainer grew the catalogue) pads the matrix
// instead of failing the reload; old users keep their exclusions and the
// new user/item range serves.
func TestReloadGrownModel(t *testing.T) {
	srv, ts, _, train := newTestServer(t, Config{})
	// Retrain over a grown matrix: two new users, one new item.
	grown := train.PadTo(train.Rows()+2, train.Cols()+1)
	b := sparse.NewBuilder(grown.Rows(), grown.Cols())
	grown.Each(func(r, c int) { b.Add(r, c) })
	newUser, newItem := train.Rows(), train.Cols()
	b.Add(newUser, 0)
	b.Add(newUser, newItem)
	grown = b.Build()
	res, err := core.Train(grown, core.Config{K: 8, Lambda: 2, MaxIter: 30, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Model.SaveModelFile(srv.cfg.ModelPath); err != nil {
		t.Fatal(err)
	}
	var resp ReloadResponse
	if st := postJSON(t, ts.URL+"/v1/reload", struct{}{}, &resp); st != 200 {
		t.Fatalf("reload of grown model: status %d", st)
	}
	if resp.ModelVersion != 2 {
		t.Fatalf("model_version = %d, want 2", resp.ModelVersion)
	}
	// A user beyond the configured matrix serves with no exclusions.
	var rec RecommendResponse
	if st := postJSON(t, ts.URL+"/v1/recommend", RecommendRequest{User: newUser, M: 5}, &rec); st != 200 {
		t.Fatalf("recommend for grown user: status %d", st)
	}
	if len(rec.Items) != 5 || rec.ModelVersion != 2 {
		t.Fatalf("grown user response %+v", rec)
	}
	// An old user's training positives stay excluded.
	u := 2
	excluded := make(map[int]bool)
	for _, i := range train.Row(u) {
		excluded[int(i)] = true
	}
	if st := postJSON(t, ts.URL+"/v1/recommend", RecommendRequest{User: u, M: 10}, &rec); st != 200 {
		t.Fatalf("recommend for old user: status %d", st)
	}
	for _, it := range rec.Items {
		if excluded[it.Item] {
			t.Errorf("training positive %d recommended back after grown reload", it.Item)
		}
	}
	// Reloading again at the same grown shape reuses the padded matrix
	// (and its transpose) instead of rebuilding O(nnz) state per reload.
	padded := srv.snap.Load().train
	if st := postJSON(t, ts.URL+"/v1/reload", struct{}{}, &resp); st != 200 {
		t.Fatalf("second grown reload: status %d", st)
	}
	if srv.snap.Load().train != padded {
		t.Error("second reload at the same shape rebuilt the padded exclusion matrix")
	}
}

// TestExplainDuringGrownReloadRace fires /v1/explain (which walks the
// train matrix's columns, i.e. its lazily built transpose) while grown
// models reload underneath — the padded exclusion matrix is a fresh
// sparse.Matrix per reload, so install must materialize its transpose
// before publishing the snapshot. Run with -race.
func TestExplainDuringGrownReloadRace(t *testing.T) {
	srv, ts, _, train := newTestServer(t, Config{})
	grown := trainGrown(t, train, 1)
	if err := grown.SaveModelFile(srv.cfg.ModelPath); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				st := postJSON(t, ts.URL+"/v1/explain",
					ExplainRequest{User: (g*13 + n) % train.Rows(), Item: n % train.Cols()}, nil)
				if st != 200 {
					t.Errorf("explain status %d", st)
					return
				}
			}
		}(g)
	}
	for r := 0; r < 15; r++ {
		if err := srv.ReloadFromFile(); err != nil {
			t.Error(err)
			break
		}
	}
	close(stop)
	wg.Wait()
}

// trainGrown trains a model over train padded by extra users/items.
func trainGrown(t testing.TB, train *sparse.Matrix, extra int) *core.Model {
	t.Helper()
	res, err := core.Train(train.PadTo(train.Rows()+extra, train.Cols()+extra),
		core.Config{K: 8, Lambda: 2, MaxIter: 20, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	return res.Model
}

// TestIngestGrowthHeadroom: ids beyond the served catalogue are accepted
// only within MaxIngestGrowth — an absurd id would make the trainer size
// its matrix (and factor rows) up to it.
func TestIngestGrowthHeadroom(t *testing.T) {
	log, err := feed.Open(t.TempDir(), feed.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	_, ts, model, _ := newTestServer(t, Config{Feed: log, MaxIngestGrowth: 8})
	nu, ni := model.NumUsers(), model.NumItems()
	if st := postJSON(t, ts.URL+"/v1/ingest", map[string]any{"user": nu + 7, "items": []int{ni + 7}}, nil); st != 200 {
		t.Errorf("within headroom: status %d, want 200", st)
	}
	var errResp map[string]string
	if st := postJSON(t, ts.URL+"/v1/ingest", map[string]any{"user": nu + 8, "items": []int{0}}, &errResp); st != 400 {
		t.Errorf("user beyond headroom: status %d, want 400", st)
	} else if !strings.Contains(errResp["error"], "headroom") {
		t.Errorf("error %q does not mention the growth headroom", errResp["error"])
	}
	if st := postJSON(t, ts.URL+"/v1/ingest", map[string]any{"user": 0, "items": []int{ni + 8}}, nil); st != 400 {
		t.Errorf("item beyond headroom: status %d, want 400", st)
	}
	if got := log.Count(); got != 1 {
		t.Errorf("feed count %d, want 1 (only the in-headroom pair)", got)
	}
}

// TestMaxBodyEnforcedEverywhere: every POST endpoint — including
// /v1/reload, which never decodes its body — rejects a payload over
// MaxBodyBytes with 400 instead of draining it.
func TestMaxBodyEnforcedEverywhere(t *testing.T) {
	log, err := feed.Open(t.TempDir(), feed.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	_, ts, _, _ := newTestServer(t, Config{Feed: log, MaxBodyBytes: 256})

	huge := []byte(`{"user": 0, "items": [` + strings.Repeat("1,", 400) + `1]}`)
	for _, path := range []string{"/v1/ingest", "/v1/recommend", "/v1/reload"} {
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(huge))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Errorf("POST %s with %d-byte body: status %d, want 400", path, len(huge), resp.StatusCode)
		}
		if !strings.Contains(string(body), "exceeds") {
			t.Errorf("POST %s: error %q does not mention the size cap", path, body)
		}
	}
	// A small body still reloads fine.
	if st := postJSON(t, ts.URL+"/v1/reload", struct{}{}, nil); st != 200 {
		t.Errorf("small-body reload: status %d, want 200", st)
	}
	if st := postJSON(t, ts.URL+"/v1/ingest", map[string]any{"user": 1, "items": []int{2}}, nil); st != 200 {
		t.Errorf("small-body ingest: status %d, want 200", st)
	}
}
