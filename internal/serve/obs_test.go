package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/rank"
)

// TestInstrumentPanicPath: a handler panic must still record a 500 in
// the endpoint histogram and return the in-flight gauge to zero —
// net/http recovers per connection, so a leaking gauge would drift up
// forever on a flaky handler.
func TestInstrumentPanicPath(t *testing.T) {
	m := newMetrics([]string{"recommend"}, &rank.Stats{})
	h := m.instrument("recommend", func(w http.ResponseWriter, r *http.Request) int {
		panic("boom")
	})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate through instrument")
			}
		}()
		h(httptest.NewRecorder(), httptest.NewRequest("POST", "/v1/recommend", nil))
	}()
	s := m.endpoints["recommend"].Snapshot()
	if s.Count != 1 || s.Errors != 1 {
		t.Fatalf("after panic: count=%d errors=%d, want 1/1 (500 recorded)", s.Count, s.Errors)
	}
	if got := m.inFlight.Value(); got != 0 {
		t.Fatalf("in-flight gauge = %d after panic, want 0", got)
	}
}

// failingWriter simulates a client that vanished mid-response.
type failingWriter struct{ h http.Header }

func (f *failingWriter) Header() http.Header       { return f.h }
func (f *failingWriter) WriteHeader(int)           {}
func (f *failingWriter) Write([]byte) (int, error) { return 0, errors.New("broken pipe") }

func TestResponseWriteErrorsCounted(t *testing.T) {
	m := newMetrics([]string{"recommend"}, &rank.Stats{})
	h := m.instrument("recommend", func(w http.ResponseWriter, r *http.Request) int {
		// Two writes (the JSON encoder may flush repeatedly): the failed
		// request must count once, not once per write.
		return writeJSON(w, http.StatusOK, map[string]any{"a": strings.Repeat("x", 100)})
	})
	h(&failingWriter{h: http.Header{}}, httptest.NewRequest("POST", "/v1/recommend", nil))
	h(&failingWriter{h: http.Header{}}, httptest.NewRequest("POST", "/v1/recommend", nil))
	if got := m.writeErrors.Value(); got != 2 {
		t.Fatalf("response_write_errors = %d, want 2 (one per failed request)", got)
	}
}

func TestMetricsJSONPercentiles(t *testing.T) {
	_, ts, _, _ := newTestServer(t, Config{})
	postJSON(t, ts.URL+"/v1/recommend", RecommendRequest{User: 3, M: 5}, nil)
	postJSON(t, ts.URL+"/v1/recommend", RecommendRequest{User: 3, M: 5}, nil)

	var out struct {
		ResponseWriteErrors *int64 `json:"response_write_errors"`
		Endpoints           map[string]struct {
			Requests  uint64           `json:"requests"`
			P50       float64          `json:"p50_micros"`
			P95       float64          `json:"p95_micros"`
			P99       float64          `json:"p99_micros"`
			Mean      float64          `json:"latency_micros_mean"`
			Histogram map[string]int64 `json:"latency_histogram"`
		} `json:"endpoints"`
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.ResponseWriteErrors == nil {
		t.Error("metrics missing response_write_errors")
	}
	rec := out.Endpoints["recommend"]
	if rec.Requests != 2 {
		t.Fatalf("recommend requests = %d, want 2", rec.Requests)
	}
	if rec.P50 <= 0 || rec.P95 < rec.P50 || rec.P99 < rec.P95 {
		t.Fatalf("percentiles not ordered: p50=%v p95=%v p99=%v", rec.P50, rec.P95, rec.P99)
	}
	if rec.Mean <= 0 {
		t.Fatalf("mean = %v, want > 0", rec.Mean)
	}
	var total int64
	for _, n := range rec.Histogram {
		total += n
	}
	if total != int64(rec.Requests) {
		t.Fatalf("histogram sums to %d, requests %d", total, rec.Requests)
	}
}

func TestMetricsPrometheusExposition(t *testing.T) {
	_, ts, _, _ := newTestServer(t, Config{})
	postJSON(t, ts.URL+"/v1/recommend", RecommendRequest{User: 3, M: 5}, nil)

	resp, err := http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, obs.ContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.CheckExposition(strings.NewReader(string(body))); err != nil {
		t.Fatalf("serve exposition fails the checker: %v", err)
	}
	for _, want := range []string{
		`ocular_endpoints_requests{endpoint="recommend"} 1`,
		"# TYPE ocular_endpoints_latency_histogram histogram",
		"ocular_cache_hits",
		"ocular_response_write_errors 0",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestShardPrometheusExposition(t *testing.T) {
	_, shards, _, _, _ := newShardTier(t, 2)
	postJSON(t, shards[0].URL+"/v1/shard/topm", ShardTopMRequest{User: 1, M: 5}, nil)
	resp, err := http.Get(shards[0].URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.CheckExposition(strings.NewReader(string(body))); err != nil {
		t.Fatalf("shard exposition fails the checker: %v", err)
	}
	if !strings.Contains(string(body), `ocular_endpoints_requests{endpoint="shard_topm"} 1`) {
		t.Error("shard exposition missing the shard_topm endpoint family")
	}
}

type debugTraces struct {
	Traces []struct {
		ID       string `json:"trace_id"`
		Endpoint string `json:"endpoint"`
		Status   int    `json:"status"`
		Spans    []struct {
			Name string `json:"name"`
			Note string `json:"note"`
		} `json:"spans"`
	} `json:"traces"`
}

func getTraces(t testing.TB, base string) debugTraces {
	t.Helper()
	resp, err := http.Get(base + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out debugTraces
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func spanNames(spans []struct {
	Name string `json:"name"`
	Note string `json:"note"`
}) []string {
	names := make([]string, len(spans))
	for i, s := range spans {
		names[i] = s.Name
	}
	return names
}

func TestTracedRecommend(t *testing.T) {
	_, ts, _, _ := newTestServer(t, Config{})
	req, _ := http.NewRequest("POST", ts.URL+"/v1/recommend",
		strings.NewReader(`{"user": 3, "m": 5}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceHeader, "caller-supplied-id")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(obs.TraceHeader); got != "caller-supplied-id" {
		t.Fatalf("trace header not echoed: %q", got)
	}
	// The repeat is a cache hit — its trace must say so.
	postJSON(t, ts.URL+"/v1/recommend", RecommendRequest{User: 3, M: 5}, nil)

	out := getTraces(t, ts.URL)
	if len(out.Traces) != 2 {
		t.Fatalf("got %d traces, want 2 (scrapes and probes are untraced)", len(out.Traces))
	}
	miss, hit := out.Traces[0], out.Traces[1]
	if miss.ID != "caller-supplied-id" || miss.Endpoint != "recommend" || miss.Status != 200 {
		t.Fatalf("miss trace = %+v", miss)
	}
	names := spanNames(miss.Spans)
	if len(names) < 2 || names[0] != "score" || names[1] != "filter_select" {
		t.Fatalf("miss spans = %v, want [score filter_select]", names)
	}
	if len(hit.Spans) != 1 || hit.Spans[0].Name != "rank" || hit.Spans[0].Note != "cache_hit" {
		t.Fatalf("hit spans = %+v, want one rank/cache_hit span", hit.Spans)
	}
}

func TestTracingDisabled(t *testing.T) {
	_, ts, _, _ := newTestServer(t, Config{TraceRing: -1})
	resp, err := http.Post(ts.URL+"/v1/recommend", "application/json",
		strings.NewReader(`{"user": 3, "m": 5}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if resp.Header.Get(obs.TraceHeader) != "" {
		t.Error("disabled tracer still echoes a trace header")
	}
	if out := getTraces(t, ts.URL); len(out.Traces) != 0 {
		t.Fatalf("disabled tracer has %d traces", len(out.Traces))
	}
}

// benchTraceRecommend drives the cache-hit recommend path through the
// full handler so the measured difference between on and off is the
// whole tracing tax: mint/adopt, context attach, span records, ring
// publish.
func benchTraceRecommend(b *testing.B, ring int) {
	srv, _, _, _ := newTestServer(b, Config{TraceRing: ring})
	h := srv.Handler()
	body := []byte(`{"user": 3, "m": 10}`)
	run := func() *httptest.ResponseRecorder {
		r := httptest.NewRequest(http.MethodPost, "/v1/recommend", bytes.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		return w
	}
	if w := run(); w.Code != 200 {
		b.Fatalf("warmup: status %d: %s", w.Code, w.Body.Bytes())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if w := run(); w.Code != 200 {
			b.Fatalf("status %d", w.Code)
		}
	}
}

func BenchmarkTraceOverhead(b *testing.B) {
	b.Run("off", func(b *testing.B) { benchTraceRecommend(b, -1) })
	b.Run("on", func(b *testing.B) { benchTraceRecommend(b, 0) })
}
