package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/feed"
	"repro/internal/rank"
)

// This file is the multi-model half of the serving layer: a registry of
// named mmapped models (cheap by construction — pages fault in on first
// touch), tenants that resolve requests tenant → experiment → arm via a
// deterministic user hash, per-arm rank engines and stage configs, and
// per-tenant feed partitions for ingest. The default (tenant-less)
// request path never touches any of it.

// StageSpec is the declarative form of one re-rank stage, as it appears
// in registry arm configs and the -stages CLI flag. Type selects the
// stage; the other fields are per-type parameters:
//
//	{"type": "floor", "min": 0.05}
//	{"type": "boost", "delta": 0.1, "tags": ["kids"], "over_fetch": 2}
//	{"type": "diversify", "lambda": 0.7, "factor": 4}
type StageSpec struct {
	Type string `json:"type"`
	// Min is the floor stage's score threshold.
	Min float64 `json:"min,omitempty"`
	// Delta and Tags parameterize the boost stage; OverFetch (default 1)
	// widens the head the boost sees so boosted items just below the cut
	// can surface.
	Delta     float64  `json:"delta,omitempty"`
	Tags      []string `json:"tags,omitempty"`
	OverFetch int      `json:"over_fetch,omitempty"`
	// Lambda and Factor parameterize the diversify stage (MMR trade-off
	// and over-fetch multiple; Factor defaults to 4).
	Lambda float64 `json:"lambda,omitempty"`
	Factor int     `json:"factor,omitempty"`
}

// ParseStageSpecs parses the compact comma-separated stage spec of the
// serving CLIs into the declarative form:
//
//	floor=MIN                   drop items scoring below MIN
//	boost=DELTA:tag1+tag2       add DELTA to items carrying any tag
//	diversify=LAMBDA:FACTOR     MMR re-order over FACTOR×m candidates
//
// Stages apply in spec order. An empty spec is no stages.
func ParseStageSpecs(spec string) ([]StageSpec, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var specs []StageSpec
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		name, args, _ := strings.Cut(part, "=")
		switch name {
		case "floor":
			min, err := strconv.ParseFloat(args, 64)
			if err != nil {
				return nil, fmt.Errorf("stage %q: floor needs floor=MIN: %v", part, err)
			}
			specs = append(specs, StageSpec{Type: "floor", Min: min})
		case "boost":
			deltaStr, tagList, ok := strings.Cut(args, ":")
			if !ok || tagList == "" {
				return nil, fmt.Errorf("stage %q: boost needs boost=DELTA:tag1+tag2", part)
			}
			delta, err := strconv.ParseFloat(deltaStr, 64)
			if err != nil {
				return nil, fmt.Errorf("stage %q: bad boost delta: %v", part, err)
			}
			specs = append(specs, StageSpec{Type: "boost", Delta: delta, Tags: strings.Split(tagList, "+")})
		case "diversify":
			lambdaStr, factorStr, ok := strings.Cut(args, ":")
			if !ok {
				return nil, fmt.Errorf("stage %q: diversify needs diversify=LAMBDA:FACTOR", part)
			}
			lambda, err := strconv.ParseFloat(lambdaStr, 64)
			if err != nil {
				return nil, fmt.Errorf("stage %q: bad diversify lambda: %v", part, err)
			}
			factor, err := strconv.Atoi(factorStr)
			if err != nil {
				return nil, fmt.Errorf("stage %q: bad diversify factor: %v", part, err)
			}
			specs = append(specs, StageSpec{Type: "diversify", Lambda: lambda, Factor: factor})
		default:
			return nil, fmt.Errorf("stage %q: unknown stage (want floor=, boost= or diversify=)", part)
		}
	}
	return specs, nil
}

// BuildStages materializes stage specs against a concrete model: boost
// stages bind to the item tag table, diversify stages to the model's item
// affiliation vectors (the paper's co-cluster overlap — Section IV-C —
// as a similarity kernel). Specs are rebuilt per model (re)load so a
// rolled-out model always diversifies over its own factors.
func BuildStages(specs []StageSpec, tags *rank.TagTable, model *core.Model) ([]rank.Stage, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	stages := make([]rank.Stage, 0, len(specs))
	for _, sp := range specs {
		switch sp.Type {
		case "floor":
			stages = append(stages, rank.ScoreFloor(sp.Min))
		case "boost":
			if tags == nil {
				return nil, fmt.Errorf("boost stage needs an item tag table (start the server with -items-meta)")
			}
			st, err := tags.Boost(sp.Delta, sp.OverFetch, sp.Tags...)
			if err != nil {
				return nil, err
			}
			stages = append(stages, st)
		case "diversify":
			if model == nil {
				return nil, fmt.Errorf("diversify stage needs a model for item vectors")
			}
			factor := sp.Factor
			if factor == 0 {
				factor = 4
			}
			st, err := rank.Diversify(sp.Lambda, factor, modelVectors{m: model})
			if err != nil {
				return nil, err
			}
			stages = append(stages, st)
		default:
			return nil, fmt.Errorf("unknown stage type %q (want floor, boost or diversify)", sp.Type)
		}
	}
	return stages, nil
}

// modelVectors adapts a model's item factors to the Diversify stage's
// vector interface. For OCuLaR the coordinates are non-negative co-cluster
// affiliations, so cosine overlap is exactly the co-cluster overlap
// PairContributions itemizes.
type modelVectors struct{ m *core.Model }

func (v modelVectors) ItemVector(i int) []float64 { return v.m.ItemFactor(i) }

// RegistryConfig is the multi-model platform configuration: named model
// files plus the tenants served over them. On disk it is one JSON object
// (ocular-serve -registry):
//
//	{
//	  "models": {
//	    "champion":  {"path": "models/champion.bin"},
//	    "candidate": {"path": "models/candidate.bin"}
//	  },
//	  "tenants": {
//	    "acme": {
//	      "experiment": {
//	        "name": "ranker-v2",
//	        "arms": [
//	          {"name": "control",   "model": "champion",  "weight": 9},
//	          {"name": "treatment", "model": "candidate", "weight": 1,
//	           "stages": [{"type": "diversify", "lambda": 0.7, "factor": 4}]}
//	        ]
//	      },
//	      "shadow": {"model": "candidate", "sample": 0.05},
//	      "feed_dir": "feeds/acme"
//	    }
//	  }
//	}
type RegistryConfig struct {
	Models  map[string]ModelSpec  `json:"models"`
	Tenants map[string]TenantSpec `json:"tenants"`
}

// ModelSpec names one serialized model file hosted by the registry.
type ModelSpec struct {
	Path string `json:"path"`
}

// TenantSpec configures one tenant: the experiment its query traffic
// resolves through, an optional shadow comparison, and an optional
// private feed partition for its ingest events.
type TenantSpec struct {
	Experiment *ExperimentSpec `json:"experiment,omitempty"`
	Shadow     *ShadowSpec     `json:"shadow,omitempty"`
	// FeedDir, when set, partitions this tenant's /v1/ingest events into
	// their own interaction log so the trainer replays exactly the
	// tenant's feed. The server opens (and closes) the log itself.
	FeedDir string `json:"feed_dir,omitempty"`
}

// ExperimentSpec is a named A/B experiment over weighted arms. The name
// seeds the user→arm hash: renaming the experiment reshuffles users,
// changing anything else (weights aside) does not.
type ExperimentSpec struct {
	Name string    `json:"name"`
	Arms []ArmSpec `json:"arms"`
}

// ArmSpec is one experiment arm: a named model plus the arm's own re-rank
// stage config. Weight 0 means 1.
type ArmSpec struct {
	Name   string      `json:"name"`
	Model  string      `json:"model"`
	Weight int         `json:"weight,omitempty"`
	Stages []StageSpec `json:"stages,omitempty"`
}

// ShadowSpec mirrors a sample of the tenant's live traffic against a
// candidate model: each sampled request is re-ranked against the shadow
// model off the response path and the rank/score diff logged. Sample is
// the fraction of users shadowed, in [0, 1].
type ShadowSpec struct {
	Model  string  `json:"model"`
	Sample float64 `json:"sample"`
}

// LoadRegistryFile reads and validates a RegistryConfig from a JSON file.
// Model paths are resolved relative to the process working directory,
// like every other path flag.
func LoadRegistryFile(path string) (*RegistryConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var rc RegistryConfig
	if err := dec.Decode(&rc); err != nil {
		return nil, fmt.Errorf("registry %s: %v", path, err)
	}
	return &rc, nil
}

// registry is the runtime form of a RegistryConfig: loaded models and
// resolved tenants. The maps are immutable after construction; the
// mutable serving state lives behind the per-model and per-arm snapshot
// pointers, swapped atomically by named reloads.
type registry struct {
	models      map[string]*namedModel
	modelNames  []string // sorted, for deterministic iteration
	tenants     map[string]*tenant
	tenantNames []string
}

// namedModel is one registry entry: a model file, its reload-cumulative
// rank stats, and the arms and shadows serving from it (rebuilt when the
// model reloads).
type namedModel struct {
	name    string
	path    string
	stats   *rank.Stats
	version atomic.Uint64
	// base is the stage-less snapshot of the model — shadow scoring and
	// health reporting go through it.
	base    atomic.Pointer[snapshot]
	arms    []*arm
	shadows []*shadower
}

// tenant is one resolved TenantSpec.
type tenant struct {
	name   string
	exp    *experiment
	shadow *shadower
	feed   *feed.Log
}

// experiment routes a tenant's users across weighted arms.
type experiment struct {
	name  string
	arms  []*arm
	total uint64 // sum of arm weights
}

// arm is one experiment arm at runtime: its own engine (own cache, own
// stats — the per-arm metrics labels), its stage config, and the [_, hi)
// cumulative-weight bucket the user hash lands in.
type arm struct {
	name     string
	expName  string
	tenant   string
	model    *namedModel
	weight   uint64
	hi       uint64 // cumulative weight bound (exclusive)
	specs    []StageSpec
	stats    *rank.Stats
	requests atomic.Int64
	errors   atomic.Int64
	// binary counts the subset of requests that arrived over the binary
	// columnar transport (/v2/batch), so the JSON/binary split is
	// observable per arm, not just per server.
	binary atomic.Int64
	snap   atomic.Pointer[snapshot]
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// armBucket maps (experiment, user) onto [0, total) — FNV-1a over the
// experiment name then the user id's eight little-endian bytes. The
// function is part of the platform's compatibility surface: pinned test
// vectors guard it, so redeploys and arm re-weights never reshuffle which
// hash bucket a user occupies (re-weighting moves bucket boundaries, the
// minimal possible churn).
func armBucket(experiment string, user int, total uint64) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(experiment); i++ {
		h ^= uint64(experiment[i])
		h *= fnvPrime64
	}
	u := uint64(user)
	for i := 0; i < 8; i++ {
		h ^= u & 0xff
		h *= fnvPrime64
		u >>= 8
	}
	return h % total
}

func (e *experiment) pick(user int) *arm {
	b := armBucket(e.name, user, e.total)
	for _, a := range e.arms {
		if b < a.hi {
			return a
		}
	}
	return e.arms[len(e.arms)-1]
}

// unknownTenantError maps to the JSON 404 {code:"unknown_tenant"}: a
// request naming an unregistered tenant (or a tenant with no experiment
// to serve it) must fail loudly, never fall through to the default model.
type unknownTenantError struct{ tenant string }

func (e unknownTenantError) Error() string {
	return fmt.Sprintf("unknown tenant %q", e.tenant)
}

// route is one request's serving state after tenant resolution: the
// snapshot to rank against (which carries the stage config it was built
// with) plus the arm and tenant for labeling, metrics and shadowing —
// both nil on the default path.
type route struct {
	sn     *snapshot
	arm    *arm
	tenant *tenant
}

// resolve routes a request: the empty tenant is the default path
// (today's single-model behavior, bit for bit), anything else resolves
// tenant → experiment → arm through the registry. The hot path is
// allocation-free — BenchmarkRegistryResolve pins that.
func (s *Server) resolve(tenantName string, user int) (route, error) {
	if tenantName == "" {
		return route{sn: s.snap.Load()}, nil
	}
	if s.registry == nil {
		return route{}, unknownTenantError{tenant: tenantName}
	}
	t := s.registry.tenants[tenantName]
	if t == nil || t.exp == nil {
		return route{}, unknownTenantError{tenant: tenantName}
	}
	a := t.exp.pick(user)
	return route{sn: a.snap.Load(), arm: a, tenant: t}, nil
}

// buildRegistry resolves Config.Registry into runtime state and loads
// every named model. Called once from newServer (single-threaded); any
// error aborts construction, closing whatever feed partitions were
// already opened.
func (s *Server) buildRegistry() (err error) {
	rc := s.cfg.Registry
	if len(rc.Models) == 0 {
		return fmt.Errorf("serve: registry has no models")
	}
	reg := &registry{
		models:  make(map[string]*namedModel, len(rc.Models)),
		tenants: make(map[string]*tenant, len(rc.Tenants)),
	}
	defer func() {
		if err != nil {
			for _, t := range reg.tenants {
				if t.feed != nil {
					t.feed.Close()
				}
			}
		}
	}()
	for name, spec := range rc.Models {
		if name == "" || spec.Path == "" {
			return fmt.Errorf("serve: registry model %q needs a non-empty name and path", name)
		}
		reg.models[name] = &namedModel{name: name, path: spec.Path, stats: &rank.Stats{}}
		reg.modelNames = append(reg.modelNames, name)
	}
	sort.Strings(reg.modelNames)
	for tname, tspec := range rc.Tenants {
		if tname == "" {
			return fmt.Errorf("serve: registry tenant with empty name")
		}
		t := &tenant{name: tname}
		if tspec.Experiment != nil {
			exp := tspec.Experiment
			if exp.Name == "" {
				return fmt.Errorf("serve: tenant %q: experiment needs a name (it seeds the user→arm hash)", tname)
			}
			if len(exp.Arms) == 0 {
				return fmt.Errorf("serve: tenant %q: experiment %q has no arms", tname, exp.Name)
			}
			e := &experiment{name: exp.Name}
			for _, aspec := range exp.Arms {
				if aspec.Name == "" {
					return fmt.Errorf("serve: tenant %q: arm with empty name", tname)
				}
				if aspec.Weight < 0 {
					return fmt.Errorf("serve: tenant %q arm %q: negative weight %d", tname, aspec.Name, aspec.Weight)
				}
				w := uint64(aspec.Weight)
				if w == 0 {
					w = 1
				}
				nm := reg.models[aspec.Model]
				if nm == nil {
					return fmt.Errorf("serve: tenant %q arm %q references unknown model %q", tname, aspec.Name, aspec.Model)
				}
				e.total += w
				a := &arm{
					name:    aspec.Name,
					expName: exp.Name,
					tenant:  tname,
					model:   nm,
					weight:  w,
					hi:      e.total,
					specs:   aspec.Stages,
					stats:   &rank.Stats{},
				}
				nm.arms = append(nm.arms, a)
				e.arms = append(e.arms, a)
			}
			t.exp = e
		}
		if tspec.Shadow != nil {
			sh := tspec.Shadow
			if t.exp == nil {
				return fmt.Errorf("serve: tenant %q: shadow needs an experiment (shadow mirrors arm traffic)", tname)
			}
			if sh.Sample < 0 || sh.Sample > 1 {
				return fmt.Errorf("serve: tenant %q: shadow sample must be in [0,1], got %v", tname, sh.Sample)
			}
			nm := reg.models[sh.Model]
			if nm == nil {
				return fmt.Errorf("serve: tenant %q: shadow references unknown model %q", tname, sh.Model)
			}
			shadow := newShadower(tname, nm, sh.Sample, s.cfg.ShadowLog)
			nm.shadows = append(nm.shadows, shadow)
			t.shadow = shadow
		}
		if tspec.FeedDir != "" {
			fl, ferr := feed.Open(tspec.FeedDir, feed.Options{})
			if ferr != nil {
				return fmt.Errorf("serve: tenant %q feed: %w", tname, ferr)
			}
			t.feed = fl
		}
		reg.tenants[tname] = t
		reg.tenantNames = append(reg.tenantNames, tname)
	}
	sort.Strings(reg.tenantNames)
	s.registry = reg
	for _, name := range reg.modelNames {
		if err := s.loadNamedLocked(reg.models[name]); err != nil {
			return err
		}
	}
	for _, tname := range reg.tenantNames {
		if t := reg.tenants[tname]; t.shadow != nil {
			if err := s.rebuildShadowStages(t); err != nil {
				return err
			}
		}
	}
	return nil
}

// loadNamedLocked (re)opens a named model file and rebuilds the serving
// state of every arm bound to it. All validation and stage building
// happens before any pointer is stored, so a failed reload leaves every
// arm on the previous version — never a mix. Caller holds reloadMu (or is
// the single-threaded constructor).
func (s *Server) loadNamedLocked(nm *namedModel) error {
	model, mapped, err := openModelFile(nm.path)
	if err != nil {
		return fmt.Errorf("serve: registry model %q: %w", nm.name, err)
	}
	if tags := s.cfg.ItemTags; tags != nil && tags.NumItems() > model.NumItems() {
		return fmt.Errorf("serve: registry model %q: item tag table covers %d items but the model has %d",
			nm.name, tags.NumItems(), model.NumItems())
	}
	train, err := s.trainFor(model.NumUsers(), model.NumItems())
	if err != nil {
		return fmt.Errorf("serve: registry model %q: %w", nm.name, err)
	}
	armStages := make([][]rank.Stage, len(nm.arms))
	for i, a := range nm.arms {
		st, err := BuildStages(a.specs, s.cfg.ItemTags, model)
		if err != nil {
			return fmt.Errorf("serve: tenant %q arm %q: %w", a.tenant, a.name, err)
		}
		armStages[i] = st
	}
	scorer := core.Scorer(model)
	if mapped != nil {
		scorer = mapped
	}
	version := nm.version.Add(1)
	now := time.Now()
	engineCfg := func(stats *rank.Stats) rank.Config {
		return rank.Config{CacheSize: s.cfg.CacheSize, CacheShards: s.cfg.CacheShards, Stats: stats}
	}
	nm.base.Store(&snapshot{
		model: model, scorer: scorer, mapped: mapped, train: train,
		version: version, loadedAt: now,
		engine: rank.NewEngine(scorer, engineCfg(nm.stats)),
	})
	for i, a := range nm.arms {
		a.snap.Store(&snapshot{
			model: model, scorer: scorer, mapped: mapped, train: train,
			version: version, loadedAt: now, stages: armStages[i],
			engine: rank.NewEngine(scorer, engineCfg(a.stats)),
		})
	}
	return nil
}

// rebuildShadowStages rebuilds the tenant's shadow-side stage lists
// against the current candidate model, so a shadow comparison re-ranks
// with the same stage specs as the arm that served the request — but
// bound to the candidate's own item vectors. Caller holds reloadMu (or is
// the constructor).
func (s *Server) rebuildShadowStages(t *tenant) error {
	base := t.shadow.model.base.Load()
	m := make(map[string][]rank.Stage, len(t.exp.arms))
	for _, a := range t.exp.arms {
		st, err := BuildStages(a.specs, s.cfg.ItemTags, base.model)
		if err != nil {
			return fmt.Errorf("serve: tenant %q shadow, arm %q stages: %w", t.name, a.name, err)
		}
		m[a.name] = st
	}
	t.shadow.armStages.Store(&m)
	return nil
}

// unknownModelError maps to the JSON 404 {code:"unknown_model"} of a
// named reload.
type unknownModelError struct{ model string }

func (e unknownModelError) Error() string {
	return fmt.Sprintf("unknown registry model %q", e.model)
}

// ReloadNamed re-reads one named registry model from its file and swaps
// it into every arm and shadow serving from it — the registry-aware form
// of ReloadFromFile, behind POST /v1/reload {"model": name}. It returns
// the model's new version (each named model has its own version counter,
// independent of the default model's).
func (s *Server) ReloadNamed(name string) (uint64, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	if s.registry == nil {
		return 0, unknownModelError{model: name}
	}
	nm := s.registry.models[name]
	if nm == nil {
		return 0, unknownModelError{model: name}
	}
	if err := s.loadNamedLocked(nm); err != nil {
		return 0, err
	}
	for _, tname := range s.registry.tenantNames {
		t := s.registry.tenants[tname]
		if t.shadow != nil && t.shadow.model == nm {
			if err := s.rebuildShadowStages(t); err != nil {
				return 0, err
			}
		}
	}
	s.metrics.reloads.Add(1)
	return nm.version.Load(), nil
}

// Close releases resources the server opened itself: the registry's
// per-tenant feed partitions (synced, then closed). The Config.Feed log
// belongs to the caller, as before. Safe to call on servers without a
// registry.
func (s *Server) Close() error {
	if s.registry == nil {
		return nil
	}
	var first error
	for _, name := range s.registry.tenantNames {
		t := s.registry.tenants[name]
		if t.feed == nil {
			continue
		}
		if err := t.feed.Sync(); err != nil && first == nil {
			first = err
		}
		if err := t.feed.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// healthTree reports the registry's per-model and per-tenant state for
// /healthz: model versions (what a registry-aware trainer reads before
// and after a named rollout) and each tenant's experiment topology.
func (r *registry) healthTree() (models, tenants map[string]any) {
	models = make(map[string]any, len(r.models))
	for _, name := range r.modelNames {
		nm := r.models[name]
		sn := nm.base.Load()
		models[name] = map[string]any{
			"model":         sn.model.String(),
			"model_version": sn.version,
			"mapped":        sn.mapped != nil,
			"loaded_at":     sn.loadedAt.UTC().Format(time.RFC3339),
		}
	}
	tenants = make(map[string]any, len(r.tenants))
	for _, name := range r.tenantNames {
		t := r.tenants[name]
		tt := map[string]any{}
		if t.exp != nil {
			arms := make([]map[string]any, len(t.exp.arms))
			for i, a := range t.exp.arms {
				arms[i] = map[string]any{
					"arm":           a.name,
					"model":         a.model.name,
					"model_version": a.snap.Load().version,
					"weight":        a.weight,
				}
			}
			tt["experiment"] = t.exp.name
			tt["arms"] = arms
		}
		if t.shadow != nil {
			tt["shadow_model"] = t.shadow.model.name
			tt["shadow_sample"] = t.shadow.sample
		}
		if t.feed != nil {
			tt["feed_positives"] = t.feed.Count()
		}
		tenants[name] = tt
	}
	return models, tenants
}

// metricsTree reports per-arm serving counters for /metrics: requests,
// errors and the arm's own cache stats — the per-arm labels an A/B
// readout is cut by.
func (r *registry) metricsTree() map[string]any {
	tenants := make(map[string]any, len(r.tenants))
	for _, name := range r.tenantNames {
		t := r.tenants[name]
		tt := map[string]any{}
		if t.exp != nil {
			arms := make(map[string]any, len(t.exp.arms))
			for _, a := range t.exp.arms {
				sn := a.snap.Load()
				arms[a.name] = map[string]any{
					"model":         a.model.name,
					"model_version": sn.version,
					"requests":      a.requests.Load(),
					"errors":        a.errors.Load(),
					// Subset of requests served over the binary transport.
					"binary_requests": a.binary.Load(),
					"cache": map[string]any{
						"hits":      a.stats.Hits(),
						"misses":    a.stats.Misses(),
						"coalesced": a.stats.Coalesced(),
						"ranked":    a.stats.Ranked(),
						"entries":   sn.engine.CacheLen(),
					},
				}
			}
			tt["experiment"] = t.exp.name
			tt["arms"] = arms
		}
		if t.shadow != nil {
			tt["shadow"] = t.shadow.metricsTree()
		}
		tenants[name] = tt
	}
	return tenants
}
