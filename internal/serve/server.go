// Package serve is the online recommendation serving subsystem: a
// concurrent HTTP JSON API over a trained, serialized OCuLaR model. It
// completes the train-once / serve-many lifecycle the paper's production
// deployment is built around (Section IV-D): cmd/ocular trains and saves a
// model, cmd/ocular-serve loads it and answers top-M recommendation,
// cold-start fold-in, and co-cluster explanation queries.
//
// The handlers are thin transport over the ranking engine of
// internal/rank: every request shape — known-user top-M, cold-start
// fold-in, per-request exclusion lists, item-tag filters — is one engine
// call with a different scorer or filter set. The engine owns the pooled
// score buffers, the sharded top-M cache (keyed by a fingerprint covering
// user, m and filters), and singleflight coalescing of duplicate misses.
// The model is hot-swappable: Reload atomically installs a new snapshot
// (model + fresh engine) without dropping in-flight requests, which keep
// serving from the snapshot they started with.
package serve

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/feed"
	"repro/internal/obs"
	"repro/internal/rank"
	"repro/internal/sparse"
)

// Config tunes a Server. The zero value serves with defaults (cache of
// 4096 lists, all-core batch fan-out, no exclusion matrix).
type Config struct {
	// ModelPath is the serialized model file re-read by Reload and the
	// /v1/reload endpoint. Empty disables file reloads (the initial model
	// must then be supplied to New directly).
	ModelPath string
	// Train, when non-nil, is the training matrix; items a user has a
	// training positive for are excluded from that user's recommendations,
	// matching the offline evaluation protocol. Its shape must not exceed
	// the model's; a smaller matrix (the served model was retrained over a
	// grown catalogue by the continuous-training pipeline) is padded with
	// exclusion-free rows and columns.
	Train *sparse.Matrix
	// Feed, when non-nil, is the interaction log behind POST /v1/ingest:
	// new positives are appended there for the trainer daemon to fold into
	// the next retraining cycle. Without it, ingest requests are rejected.
	// The server does not close the log.
	Feed *feed.Log
	// MaxIngestGrowth bounds how far beyond the served model's catalogue
	// an ingested user or item id may reach (new ids are legitimate — the
	// next retrained model covers them — but an absurd id would make the
	// trainer allocate factor rows up to it). 0 means 1<<20.
	MaxIngestGrowth int
	// FoldIn supplies the solver settings for /v1/foldin (Lambda,
	// Relative, MaxIter, ...). K is taken from the model.
	FoldIn core.Config
	// CacheSize is the approximate total number of cached top-M lists.
	// 0 means the default (4096); negative disables caching.
	CacheSize int
	// CacheShards is the shard count of the LRU cache (rounded up to a
	// power of two). 0 means 16.
	CacheShards int
	// Workers bounds the per-request fan-out of /v1/batch. 0 means all
	// cores.
	Workers int
	// MaxM caps the requested list length m. 0 means 1000.
	MaxM int
	// MaxBatch caps the number of users in one /v1/batch request. 0 means
	// 1024.
	MaxBatch int
	// MaxBodyBytes caps request body size. 0 means 1 MiB.
	MaxBodyBytes int64
	// MaxInFlight, when positive, bounds concurrently admitted requests
	// on the query endpoints (recommend, foldin, explain, batch, and
	// shard/topm in shard mode). Excess requests wait in a short bounded
	// queue and are shed with 429 + Retry-After when it overflows or the
	// wait elapses. 0 disables admission control.
	MaxInFlight int
	// MaxQueue bounds how many requests may wait for an admission slot.
	// 0 means 2×MaxInFlight; negative means no queue (instant shed when
	// saturated). Ignored when MaxInFlight is 0.
	MaxQueue int
	// QueueWait bounds how long a queued request waits for a slot before
	// being shed. 0 means 100ms. Ignored when MaxInFlight is 0.
	QueueWait time.Duration
	// ItemTags, when non-nil, is the item name/tag table backing the
	// "filter" request field (allow/deny by tag). Requests naming tags are
	// rejected when no table is configured. The table may cover fewer
	// items than the model (unlisted items carry no tags) but never more.
	ItemTags *rank.TagTable
	// Stages configures the default serving path's post-selection re-rank
	// pipeline (score floors, MMR diversity, tag boosts), applied by
	// recommend and batch after top-M selection. Specs are materialized
	// against the served model at every (re)load, so a diversify stage
	// always measures similarity over the model actually serving. Empty
	// means no stages — bit-identical to the pre-stage pipeline.
	// Incompatible with shard mode: shards serve raw partials and the
	// router applies stages exactly once after the merge.
	Stages []StageSpec
	// Registry, when non-nil, turns the server into a multi-model
	// platform: named mmapped models, tenants resolving tenant →
	// experiment → arm via deterministic user hashing, per-arm stage
	// configs and metrics, shadow comparisons and per-tenant ingest feed
	// partitions. Requests without a tenant keep the default single-model
	// path (and wire format) exactly. Incompatible with shard mode.
	Registry *RegistryConfig
	// ShadowLog receives the shadow mode's JSON-line rank/score diffs.
	// nil silently drops them (the per-tenant diff counters still count).
	ShadowLog io.Writer
	// ShardLo, ShardHi select shard mode (ShardHi != 0): the server mmaps
	// only the item range [ShardLo, ShardHi) of the v2 model at ModelPath
	// and serves per-shard top-M partials on /v1/shard/topm for a
	// scatter-gather router to merge — see internal/cluster. ShardHi == -1
	// means "through the end of the catalogue", re-resolved at every
	// reload, so the tail shard of a partition follows catalogue growth.
	// Shard servers are built with NewShardFromFile; they are cacheless
	// (the router owns the fingerprint cache) and take no Feed.
	ShardLo int
	ShardHi int
	// DisableBinaryBatch removes the binary columnar batch endpoints
	// (POST /v2/batch, and POST /v2/shard/topm in shard mode) from the
	// mux. The zero value serves them: the binary transport changes no
	// JSON semantics and costs nothing when unused.
	DisableBinaryBatch bool
	// TraceRing is the capacity of the recent-traces ring behind
	// GET /debug/traces. 0 means 256; negative disables request tracing
	// entirely (the endpoint then serves an empty list).
	TraceRing int
	// TraceSlow, when positive, emits a structured slow-request log line
	// (log/slog) for any traced request at or above the threshold,
	// carrying the trace ID that ties it to the shard spans behind it.
	TraceSlow time.Duration
	// TraceLog receives the slow-request lines; nil means slog.Default().
	TraceLog *slog.Logger
}

// shardMode reports whether the configuration selects shard mode.
func (c Config) shardMode() bool { return c.ShardHi != 0 }

func (c Config) withDefaults() Config {
	if c.CacheSize == 0 {
		c.CacheSize = 4096
	}
	if c.MaxM == 0 {
		c.MaxM = 1000
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 1024
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxIngestGrowth == 0 {
		c.MaxIngestGrowth = 1 << 20
	}
	return c
}

// snapshot is one immutable serving state: a model, its exclusion matrix,
// its top-M cache and its score-buffer pool. Handlers load the snapshot
// pointer once per request, so a concurrent reload never mixes state.
//
// For models served from an mmapped v2 file, the snapshot pins the
// mapping: mapped (and the model view sharing its storage) stays
// reachable exactly as long as the snapshot does, so the mapping of a
// replaced model is released by GC only after the last in-flight request
// against that snapshot finishes. The server never munmaps eagerly.
type snapshot struct {
	model *core.Model // full precision; fold-in, explanations, health
	// scorer is the hot-path scorer: the mapped model when serving from
	// an mmap (float32 section when present), otherwise model itself.
	scorer core.Scorer
	mapped *core.MappedModel // non-nil when serving straight from an mmap
	// rng is the item-range mapping of shard mode; model, scorer and
	// mapped are nil then — a shard answers only partial top-M queries,
	// never fold-in or explanations.
	rng      *core.MappedModelRange
	train    *sparse.Matrix // never nil; empty matrix when no exclusions
	version  uint64
	loadedAt time.Time
	// engine ranks this snapshot's scorer: it owns the pooled score
	// buffers, the top-M cache and miss coalescing. One engine per
	// snapshot makes cache invalidation on reload wholesale and race-free.
	engine *rank.Engine
	// stages is the snapshot's re-rank pipeline, materialized from the
	// configured stage specs against this snapshot's model (so a
	// diversify stage's similarity kernel always matches the model
	// serving). nil means the plain select pipeline.
	stages []rank.Stage
}

// Server answers recommendation queries over the current model snapshot.
// All methods are safe for concurrent use.
type Server struct {
	cfg  Config
	snap atomic.Pointer[snapshot]
	// prev keeps the previously served snapshot in shard mode only — a
	// two-deep history. During a quorum rollout the router keeps pinning
	// requests to the old version until every shard confirmed the new one;
	// a shard that already reloaded serves those pinned requests from prev
	// instead of failing them, which is what makes the rollout
	// zero-downtime. Requests naming any other version are refused (409),
	// so a merge of mixed versions is impossible by construction.
	prev    atomic.Pointer[snapshot]
	version atomic.Uint64
	metrics *Metrics
	// rankStats is shared across the snapshots' engines so cache and
	// coalescing counters stay cumulative over reloads.
	rankStats *rank.Stats
	mux       *http.ServeMux
	// reloadMu serializes reloads: without it, two concurrent reloads (the
	// /v1/reload handler and the SIGHUP path) could each read the model
	// file and then install their snapshots in the opposite order, leaving
	// a stale model served under a newer version number.
	reloadMu sync.Mutex
	// gate is the admission controller over the query endpoints; nil when
	// Config.MaxInFlight is 0 (nil gates admit everything).
	gate *Gate
	// draining flips once at the start of graceful shutdown: /readyz
	// turns 503 so probers and routers stop sending new traffic, while
	// the data path keeps answering until the HTTP server is shut down.
	draining atomic.Bool
	// paddedTrain caches the exclusion matrix (padded to the served
	// model's shape, transpose materialized) across reloads: once the
	// trainer grows the catalogue, every reload would otherwise rebuild
	// the padded matrix and its O(nnz) transpose even though the shape
	// rarely changes between rollouts. Guarded by reloadMu (install runs
	// under it, or single-threaded at construction).
	paddedTrain *sparse.Matrix
	// registry is the multi-model platform state (nil without
	// Config.Registry): named models, tenants, experiments, arms and
	// shadows. The maps are immutable after construction; per-model and
	// per-arm snapshots swap atomically under reloadMu.
	registry *registry
	// tracer records per-request traces for /debug/traces; nil when
	// Config.TraceRing is negative (tracing disabled).
	tracer *obs.Tracer
}

// newTracer builds the server's tracer from the config: default ring
// of 256, negative TraceRing disables.
func newTracer(cfg Config) *obs.Tracer {
	ring := cfg.TraceRing
	if ring == 0 {
		ring = 256
	}
	return obs.NewTracer(ring, cfg.TraceSlow, cfg.TraceLog)
}

// New builds a Server serving model. The model must match cfg.Train's
// shape when an exclusion matrix is configured.
func New(model *core.Model, cfg Config) (*Server, error) {
	return newServer(model, nil, cfg)
}

// checkLimits validates and defaults the numeric limits shared by full and
// shard servers. Negative CacheSize means "disable", but a negative limit
// would silently brick an endpoint (every request rejected, empty, or
// serial), so those are configuration errors — caught here, once, rather
// than surfacing as empty 200s or panics under load.
func checkLimits(cfg Config) (Config, error) {
	switch {
	case cfg.MaxM < 0:
		return cfg, fmt.Errorf("serve: MaxM must be >= 0, got %d", cfg.MaxM)
	case cfg.MaxBatch < 0:
		return cfg, fmt.Errorf("serve: MaxBatch must be >= 0, got %d", cfg.MaxBatch)
	case cfg.MaxBodyBytes < 0:
		return cfg, fmt.Errorf("serve: MaxBodyBytes must be >= 0, got %d", cfg.MaxBodyBytes)
	case cfg.Workers < 0:
		return cfg, fmt.Errorf("serve: Workers must be >= 0, got %d", cfg.Workers)
	case cfg.CacheShards < 0:
		return cfg, fmt.Errorf("serve: CacheShards must be >= 0, got %d", cfg.CacheShards)
	case cfg.MaxIngestGrowth < 0:
		return cfg, fmt.Errorf("serve: MaxIngestGrowth must be >= 0, got %d", cfg.MaxIngestGrowth)
	case cfg.MaxInFlight < 0:
		return cfg, fmt.Errorf("serve: MaxInFlight must be >= 0, got %d", cfg.MaxInFlight)
	case cfg.QueueWait < 0:
		return cfg, fmt.Errorf("serve: QueueWait must be >= 0, got %v", cfg.QueueWait)
	}
	cfg = cfg.withDefaults()
	// withDefaults must leave every limit usable; a zero that slipped
	// through would serve empty lists with HTTP 200 (see clampM).
	if cfg.MaxM <= 0 || cfg.MaxBatch <= 0 || cfg.MaxBodyBytes <= 0 {
		return cfg, fmt.Errorf("serve: internal error: limits not defaulted (MaxM=%d MaxBatch=%d MaxBodyBytes=%d)",
			cfg.MaxM, cfg.MaxBatch, cfg.MaxBodyBytes)
	}
	return cfg, nil
}

func newServer(model *core.Model, mapped *core.MappedModel, cfg Config) (*Server, error) {
	if cfg.shardMode() {
		return nil, fmt.Errorf("serve: shard servers are built with NewShardFromFile")
	}
	cfg, err := checkLimits(cfg)
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, rankStats: &rank.Stats{}}
	s.gate = NewGate(cfg.MaxInFlight, cfg.MaxQueue, cfg.QueueWait)
	s.metrics = newMetrics(endpointNames, s.rankStats)
	s.tracer = newTracer(cfg)
	s.metrics.tracer = s.tracer
	if err := s.install(model, mapped); err != nil {
		return nil, err
	}
	if cfg.Registry != nil {
		if err := s.buildRegistry(); err != nil {
			return nil, err
		}
	}
	s.mux = s.buildMux()
	return s, nil
}

// NewFromFile builds a Server from the serialized model at cfg.ModelPath.
// A v2 model file is mmapped and served in place (float32 scoring when
// the file carries that section); a v1 file falls back to the copying
// loader.
func NewFromFile(cfg Config) (*Server, error) {
	if cfg.ModelPath == "" {
		return nil, fmt.Errorf("serve: NewFromFile needs Config.ModelPath")
	}
	model, mapped, err := openModelFile(cfg.ModelPath)
	if err != nil {
		return nil, err
	}
	return newServer(model, mapped, cfg)
}

// openModelFile maps a v2 model file in O(1), falling back to the
// copying, fully-validating reader for legacy v1 files. For mapped
// models it returns both the zero-copy float64 view and the mapping.
func openModelFile(path string) (*core.Model, *core.MappedModel, error) {
	mapped, err := core.OpenMappedModel(path)
	if err == nil {
		return mapped.Model(), mapped, nil
	}
	if errors.Is(err, core.ErrLegacyFormat) {
		model, err := core.LoadModelFile(path)
		return model, nil, err
	}
	return nil, nil, err
}

// install validates model against the configuration and atomically swaps
// in a fresh snapshot (new cache, new buffer pool, bumped version).
func (s *Server) install(model *core.Model, mapped *core.MappedModel) error {
	if model == nil {
		return fmt.Errorf("serve: nil model")
	}
	train, err := s.trainFor(model.NumUsers(), model.NumItems())
	if err != nil {
		return err
	}
	if tags := s.cfg.ItemTags; tags != nil && tags.NumItems() > model.NumItems() {
		return fmt.Errorf("serve: item tag table covers %d items but the model has %d",
			tags.NumItems(), model.NumItems())
	}
	stages, err := BuildStages(s.cfg.Stages, s.cfg.ItemTags, model)
	if err != nil {
		return fmt.Errorf("serve: default stages: %w", err)
	}
	scorer := core.Scorer(model)
	if mapped != nil {
		scorer = mapped
	}
	sn := &snapshot{
		model:    model,
		scorer:   scorer,
		mapped:   mapped,
		train:    train,
		version:  s.version.Add(1),
		loadedAt: time.Now(),
		stages:   stages,
		engine: rank.NewEngine(scorer, rank.Config{
			CacheSize:   s.cfg.CacheSize,
			CacheShards: s.cfg.CacheShards,
			Stats:       s.rankStats,
		}),
	}
	s.snap.Store(sn)
	return nil
}

// trainFor returns the configured exclusion matrix padded to the served
// catalogue shape (users × items), transpose materialized, behind the
// shape-keyed per-server cache. Guarded by reloadMu (install runs under
// it, or single-threaded at construction).
func (s *Server) trainFor(users, items int) (*sparse.Matrix, error) {
	train := s.cfg.Train
	if train != nil && (train.Rows() > users || train.Cols() > items) {
		return nil, fmt.Errorf("serve: model shape %dx%d does not cover train matrix %dx%d",
			users, items, train.Rows(), train.Cols())
	}
	if cached := s.paddedTrain; cached != nil &&
		cached.Rows() == users && cached.Cols() == items {
		return cached, nil
	}
	if train != nil {
		// A larger model is the continuous-training pipeline at work:
		// the trainer grew the catalogue past the matrix this server
		// was started with. Users and items beyond the configured
		// matrix have no known positives, so padding with
		// exclusion-free rows is the exact semantics.
		train = train.PadTo(users, items)
	} else {
		train = sparse.NewBuilder(users, items).Build()
	}
	// Materialize the transpose before the snapshot is published:
	// sparse.Matrix builds it lazily and unsynchronized, and
	// /v1/explain walks columns — two concurrent explains over a
	// freshly padded matrix would race on the cache. The shape-keyed
	// cache above makes this (and the padding) a one-off per
	// catalogue growth, not an O(nnz) tax on every reload.
	train.Transpose()
	s.paddedTrain = train
	return train, nil
}

// Reload atomically replaces the served model. In-flight requests finish
// against the snapshot they started with; new requests see the new model
// and an empty cache.
func (s *Server) Reload(model *core.Model) error {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	return s.reloadLocked(model, nil)
}

func (s *Server) reloadLocked(model *core.Model, mapped *core.MappedModel) error {
	if err := s.install(model, mapped); err != nil {
		return err
	}
	s.metrics.reloads.Add(1)
	return nil
}

// ReloadFromFile re-reads Config.ModelPath and installs the result — the
// handler behind POST /v1/reload and the SIGHUP path of cmd/ocular-serve.
// For a v2 file this is O(1) regardless of model size: re-mmap, validate
// the 128-byte header, swap the snapshot pointer. No factor byte is
// copied or scanned; the old mapping is released by GC once the last
// request pinned to the old snapshot finishes. The file open happens
// under the reload lock so concurrent reloads cannot install their models
// out of read order.
func (s *Server) ReloadFromFile() error {
	if s.cfg.ModelPath == "" {
		return fmt.Errorf("serve: no ModelPath configured for reload")
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	if s.cfg.shardMode() {
		rng, err := core.OpenMappedModelRange(s.cfg.ModelPath, s.cfg.ShardLo, s.cfg.ShardHi)
		if err != nil {
			return err
		}
		if err := s.installShard(rng); err != nil {
			_ = rng.Close()
			return err
		}
		s.metrics.reloads.Add(1)
		return nil
	}
	model, mapped, err := openModelFile(s.cfg.ModelPath)
	if err != nil {
		return err
	}
	return s.reloadLocked(model, mapped)
}

// Model returns the currently served model (for mapped models, the
// zero-copy full-precision view). The view stays valid while the server
// lives; callers must not retain it across process teardown of the
// server.
func (s *Server) Model() *core.Model { return s.snap.Load().model }

// ServingMode reports whether the current snapshot serves out of an
// mmapped v2 file, and whether it scores through the float32 section.
func (s *Server) ServingMode() (mapped, float32Scoring bool) {
	sn := s.snap.Load()
	return sn.mapped != nil, sn.mapped != nil && sn.mapped.HasFloat32()
}

// Version returns the current snapshot version (1 for the initial model,
// incremented by every reload).
func (s *Server) Version() uint64 { return s.snap.Load().version }

// Metrics exposes the server's counters, mainly for tests and benchmarks.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Gate exposes the admission controller (nil when disabled), mainly for
// tests asserting the in-flight bound.
func (s *Server) Gate() *Gate { return s.gate }

// BeginDrain marks the server draining: /readyz starts answering 503 so
// load balancers and the router's prober take it out of rotation, while
// every data endpoint keeps serving. Call it, wait for traffic to ebb,
// then shut the HTTP server down — the ordering the drain regression
// test pins.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Handler returns the HTTP handler serving the v1 API.
func (s *Server) Handler() http.Handler { return s.mux }
