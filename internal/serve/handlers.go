package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/explain"
	"repro/internal/feed"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/rank"
)

// endpointNames registers every instrumented endpoint with Metrics.
var endpointNames = []string{
	"recommend", "foldin", "explain", "batch", "batch_binary", "ingest", "reload", "healthz", "readyz", "metrics",
	"shard_topm", "shard_topm_binary", "debug_traces",
}

func (s *Server) buildMux() *http.ServeMux {
	// Query endpoints sit behind the admission gate (nil gate = no-op);
	// control-plane endpoints (ingest, reload, health, metrics) are never
	// shed — an overloaded server must stay observable and reloadable.
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/recommend", s.metrics.instrument("recommend", s.gate.Wrap(s.handleRecommend)))
	mux.HandleFunc("POST /v1/foldin", s.metrics.instrument("foldin", s.gate.Wrap(s.handleFoldIn)))
	mux.HandleFunc("POST /v1/explain", s.metrics.instrument("explain", s.gate.Wrap(s.handleExplain)))
	mux.HandleFunc("POST /v1/batch", s.metrics.instrument("batch", s.gate.Wrap(s.handleBatch)))
	if !s.cfg.DisableBinaryBatch {
		mux.HandleFunc("POST /v2/batch", s.metrics.instrument("batch_binary", s.gate.Wrap(s.handleBatchBinary)))
	}
	mux.HandleFunc("POST /v1/ingest", s.metrics.instrument("ingest", s.handleIngest))
	mux.HandleFunc("POST /v1/reload", s.metrics.instrument("reload", s.handleReload))
	mux.HandleFunc("GET /healthz", s.metrics.instrument("healthz", s.handleHealthz))
	mux.HandleFunc("GET /readyz", s.metrics.instrument("readyz", s.handleReadyz))
	mux.HandleFunc("GET /metrics", s.metrics.instrument("metrics", s.handleMetrics))
	mux.HandleFunc("GET /debug/traces", s.metrics.instrument("debug_traces", s.handleDebugTraces))
	return mux
}

// decode reads the request body as JSON into v, enforcing the body size cap,
// rejecting unknown fields (catching misspelled parameters early), and
// requiring the body to be exactly one JSON value: a concatenated second
// request would otherwise be silently ignored, masking client framing bugs.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit)
		}
		return fmt.Errorf("bad request body: %v", err)
	}
	// Only io.EOF here proves the first value consumed the whole body
	// (trailing whitespace aside); anything else is trailing data — except
	// a tripped size cap, which keeps its own message.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit)
		}
		return errors.New("request body must be a single JSON value (trailing data rejected)")
	}
	return nil
}

// clampM applies the default and ceiling to a requested list length.
// Construction (newServer) guarantees MaxM >= 1; the guard below keeps a
// future misconfiguration from silently serving empty lists with HTTP 200.
func (s *Server) clampM(m int) (int, error) {
	if s.cfg.MaxM <= 0 {
		return 0, fmt.Errorf("server misconfigured: MaxM=%d", s.cfg.MaxM)
	}
	switch {
	case m == 0:
		if s.cfg.MaxM < 10 {
			return s.cfg.MaxM, nil
		}
		return 10, nil
	case m < 0:
		return 0, fmt.Errorf("m must be positive, got %d", m)
	case m > s.cfg.MaxM:
		return 0, fmt.Errorf("m=%d exceeds the server cap of %d", m, s.cfg.MaxM)
	}
	return m, nil
}

// ScoredItem is one ranked recommendation.
type ScoredItem struct {
	Item  int     `json:"item"`
	Score float64 `json:"score"`
}

func zipScored(items []int, scores []float64) []ScoredItem {
	out := make([]ScoredItem, len(items))
	for n := range items {
		out[n] = ScoredItem{Item: items[n], Score: scores[n]}
	}
	return out
}

// FilterSpec selects item-metadata filters by tag, against the server's
// item tag table (Config.ItemTags / ocular-serve -items-meta). Allow and
// deny compose: an item must carry at least one allow tag (when any are
// given) and none of the deny tags.
type FilterSpec struct {
	AllowTags []string `json:"allow_tags,omitempty"`
	DenyTags  []string `json:"deny_tags,omitempty"`
}

// requestFilters translates the per-request exclusion list and tag filter
// spec into engine filters. Validation happens here, once per request —
// a batch shares the result across its users (filters are immutable and
// safe for concurrent use).
func (s *Server) requestFilters(sn *snapshot, exclude []int, spec *FilterSpec) ([]rank.Filter, error) {
	var filters []rank.Filter
	if len(exclude) > 0 {
		for _, i := range exclude {
			if i < 0 || i >= sn.numItems() {
				return nil, fmt.Errorf("exclude item %d out of range (%d items)", i, sn.numItems())
			}
		}
		filters = append(filters, rank.ExcludeItems(exclude))
	}
	if spec != nil && (len(spec.AllowTags) > 0 || len(spec.DenyTags) > 0) {
		tags := s.cfg.ItemTags
		if tags == nil {
			return nil, errors.New("no item tag table configured (start the server with -items-meta)")
		}
		if len(spec.AllowTags) > 0 {
			f, err := tags.Allow(spec.AllowTags...)
			if err != nil {
				return nil, err
			}
			filters = append(filters, f)
		}
		if len(spec.DenyTags) > 0 {
			f, err := tags.Deny(spec.DenyTags...)
			if err != nil {
				return nil, err
			}
			filters = append(filters, f)
		}
	}
	return filters, nil
}

// RecommendRequest asks for the top-M list of a known user. ExcludeItems
// removes explicit items from the candidates on top of the user's training
// positives; Filter applies item-tag allow/deny lists. Filtered requests
// are cached like unfiltered ones — the cache key fingerprints the filter
// set.
type RecommendRequest struct {
	User         int         `json:"user"`
	M            int         `json:"m,omitempty"`
	ExcludeItems []int       `json:"exclude_items,omitempty"`
	Filter       *FilterSpec `json:"filter,omitempty"`
	// Tenant routes the request through the model registry (tenant →
	// experiment → arm). Empty is the default single-model path, wire
	// format unchanged; an unregistered tenant is a 404
	// {code:"unknown_tenant"}, never a silent fall-through.
	Tenant string `json:"tenant,omitempty"`
}

// RecommendResponse carries one user's ranked recommendations. The
// tenant/experiment/arm/model fields appear only on tenant-routed
// requests — the default path's wire format is exactly the pre-registry
// one.
type RecommendResponse struct {
	User         int          `json:"user"`
	Items        []ScoredItem `json:"items"`
	Cached       bool         `json:"cached"`
	ModelVersion uint64       `json:"model_version"`
	Tenant       string       `json:"tenant,omitempty"`
	Experiment   string       `json:"experiment,omitempty"`
	Arm          string       `json:"arm,omitempty"`
	Model        string       `json:"model,omitempty"`
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) int {
	var req RecommendRequest
	if err := s.decode(w, r, &req); err != nil {
		return writeError(w, http.StatusBadRequest, err.Error())
	}
	m, err := s.clampM(req.M)
	if err != nil {
		return writeError(w, http.StatusBadRequest, err.Error())
	}
	rt, err := s.resolve(req.Tenant, req.User)
	if err != nil {
		return writeErrorCode(w, http.StatusNotFound, "unknown_tenant", err.Error())
	}
	extra, err := s.requestFilters(rt.sn, req.ExcludeItems, req.Filter)
	if err != nil {
		return writeError(w, http.StatusBadRequest, err.Error())
	}
	resp, err := s.recommendOne(obs.ActiveFrom(r.Context()), rt, req.User, m, extra)
	if err != nil {
		return writeError(w, http.StatusBadRequest, err.Error())
	}
	return writeJSON(w, http.StatusOK, resp)
}

// recommendOne serves one user's top-m list through the routed snapshot's
// ranking engine, composing the user's training-row exclusion with the
// request's extra filters and the snapshot's stage config; m must already
// be clamped. On tenant-routed requests it also feeds the arm's counters
// and, when the user is in the tenant's shadow sample, launches the
// off-path shadow comparison.
func (s *Server) recommendOne(act *obs.Active, rt route, user, m int, extra []rank.Filter) (RecommendResponse, error) {
	items, scores, cached, err := s.rankOne(act, rt, user, m, extra)
	if err != nil {
		return RecommendResponse{}, err
	}
	resp := RecommendResponse{
		User:         user,
		Items:        zipScored(items, scores),
		Cached:       cached,
		ModelVersion: rt.sn.version,
	}
	if a := rt.arm; a != nil {
		resp.Tenant = rt.tenant.name
		resp.Experiment = a.expName
		resp.Arm = a.name
		resp.Model = a.model.name
	}
	return resp, nil
}

// rankOne is the transport-agnostic core of recommendOne: rank one routed
// user and return the engine's cache-shared slices (read-only for the
// caller), leaving response shaping — JSON structs or binary columns —
// to the transport. Arm counters and the shadow sample fire here so both
// transports feed the same observability. A non-nil act (the request is
// traced) records the rank pipeline's per-stage spans.
func (s *Server) rankOne(act *obs.Active, rt route, user, m int, extra []rank.Filter) (items []int, scores []float64, cached bool, err error) {
	sn := rt.sn
	if user < 0 || user >= sn.model.NumUsers() {
		if rt.arm != nil {
			rt.arm.errors.Add(1)
		}
		return nil, nil, false, fmt.Errorf("user %d out of range (%d users)", user, sn.model.NumUsers())
	}
	filters := make([]rank.Filter, 0, len(extra)+1)
	filters = append(filters, rank.TrainRow(sn.train, user))
	filters = append(filters, extra...)
	if act != nil {
		var tm rank.Timings
		start := time.Now()
		items, scores, cached = sn.engine.TopMStagedTimed(user, m, sn.stages, &tm, filters...)
		recordRankSpans(act, start, &tm)
	} else {
		items, scores, cached = sn.engine.TopMStaged(user, m, sn.stages, filters...)
	}
	if a := rt.arm; a != nil {
		a.requests.Add(1)
		if sh := rt.tenant.shadow; sh != nil {
			sh.observe(a.name, a.model.name, sn.version, user, m, extra, items, scores)
		}
	}
	return items, scores, cached, nil
}

// FoldInRequest asks for cold-start recommendations: the item history of a
// user unseen at training time goes in, a fold-in factor and ranked list
// come out (Section IV-D's new-client onboarding path). ExcludeItems and
// Filter behave as in RecommendRequest; the history items are always
// excluded from the list.
type FoldInRequest struct {
	Items        []int       `json:"items"`
	M            int         `json:"m,omitempty"`
	ExcludeItems []int       `json:"exclude_items,omitempty"`
	Filter       *FilterSpec `json:"filter,omitempty"`
}

// FoldInResponse carries the fold-in factor, bias and recommendations (the
// history items themselves are excluded from the list).
type FoldInResponse struct {
	Factor       []float64    `json:"factor"`
	Bias         float64      `json:"bias,omitempty"`
	Items        []ScoredItem `json:"items"`
	ModelVersion uint64       `json:"model_version"`
}

// canonicalHistory validates and canonicalizes a fold-in item history:
// negative items are rejected up front (malformed in any catalogue,
// before any solver work), items at or beyond the served model's
// catalogue are dropped (with the continuous-training pipeline a client
// may replay a history containing items ingested but not yet rolled out
// in a retrained model — those carry no signal for the model being
// served), and the result is sorted and duplicate-free. Canonicalizing
// makes the response independent of the client's item order and
// multiplicity — the fold-in solver sums float contributions in history
// order, so two orderings of the same set would otherwise return factors
// differing in their low bits — and hands the engine's history-exclusion
// filter its sorted, deduplicated list directly. Callers must check for
// an empty result: folding in an empty history would silently solve a
// pure-shrinkage zero factor and score every item identically.
func canonicalHistory(items []int, numItems int) ([]int, error) {
	hist := make([]int, len(items))
	copy(hist, items)
	sort.Ints(hist)
	uniq := hist[:0]
	for _, i := range hist {
		if i < 0 {
			return nil, fmt.Errorf("item %d is negative", i)
		}
		if i >= numItems {
			break // sorted: everything from here is beyond the catalogue
		}
		if len(uniq) > 0 && uniq[len(uniq)-1] == i {
			continue
		}
		uniq = append(uniq, i)
	}
	return uniq, nil
}

func (s *Server) handleFoldIn(w http.ResponseWriter, r *http.Request) int {
	var req FoldInRequest
	if err := s.decode(w, r, &req); err != nil {
		return writeError(w, http.StatusBadRequest, err.Error())
	}
	m, err := s.clampM(req.M)
	if err != nil {
		return writeError(w, http.StatusBadRequest, err.Error())
	}
	if len(req.Items) == 0 {
		return writeError(w, http.StatusBadRequest, "items must be a non-empty item history")
	}
	sn := s.snap.Load()
	history, err := canonicalHistory(req.Items, sn.model.NumItems())
	if err != nil {
		return writeError(w, http.StatusBadRequest, err.Error())
	}
	if len(history) == 0 {
		return writeError(w, http.StatusBadRequest, fmt.Sprintf(
			"no history item is within the served catalogue of %d items (a zero-signal fold-in would score every item identically)",
			sn.model.NumItems()))
	}
	filters, err := s.requestFilters(sn, req.ExcludeItems, req.Filter)
	if err != nil {
		return writeError(w, http.StatusBadRequest, err.Error())
	}
	factor, bias, err := sn.model.FoldInUser(history, s.cfg.FoldIn)
	if err != nil {
		return writeError(w, http.StatusBadRequest, err.Error())
	}
	// The history is excluded through an engine filter (its sorted walk),
	// not a one-row sparse matrix built per request.
	filters = append(filters, rank.ExcludeItems(history))
	items, scores := sn.engine.Rank(func(dst []float64) {
		sn.scorer.ScoreWithFactor(factor, bias, dst)
	}, m, filters...)
	return writeJSON(w, http.StatusOK, FoldInResponse{
		Factor:       factor,
		Bias:         bias,
		Items:        zipScored(items, scores),
		ModelVersion: sn.version,
	})
}

// ExplainRequest asks for the co-cluster rationale of one (user, item)
// pair.
type ExplainRequest struct {
	User int `json:"user"`
	Item int `json:"item"`
	// MaxPeers caps the similar-user / shared-item lists (default 5).
	MaxPeers int `json:"max_peers,omitempty"`
}

// ExplainReason is one co-cluster's contribution to the recommendation.
type ExplainReason struct {
	Cluster      int     `json:"cluster"`
	Contribution float64 `json:"contribution"`
	SimilarUsers []int   `json:"similar_users,omitempty"`
	SharedItems  []int   `json:"shared_items,omitempty"`
}

// ExplainResponse is the JSON form of an explain.Explanation.
type ExplainResponse struct {
	User         int             `json:"user"`
	Item         int             `json:"item"`
	Probability  float64         `json:"probability"`
	Reasons      []ExplainReason `json:"reasons"`
	ModelVersion uint64          `json:"model_version"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) int {
	var req ExplainRequest
	if err := s.decode(w, r, &req); err != nil {
		return writeError(w, http.StatusBadRequest, err.Error())
	}
	sn := s.snap.Load()
	if req.User < 0 || req.User >= sn.model.NumUsers() {
		return writeError(w, http.StatusBadRequest,
			fmt.Sprintf("user %d out of range (%d users)", req.User, sn.model.NumUsers()))
	}
	if req.Item < 0 || req.Item >= sn.model.NumItems() {
		return writeError(w, http.StatusBadRequest,
			fmt.Sprintf("item %d out of range (%d items)", req.Item, sn.model.NumItems()))
	}
	if req.MaxPeers < 0 {
		return writeError(w, http.StatusBadRequest, "max_peers must be non-negative")
	}
	ex := explain.Explain(sn.model, sn.train, req.User, req.Item,
		explain.Options{MaxPeers: req.MaxPeers})
	resp := ExplainResponse{
		User:         ex.User,
		Item:         ex.Item,
		Probability:  ex.Probability,
		Reasons:      make([]ExplainReason, len(ex.Reasons)),
		ModelVersion: sn.version,
	}
	for n, reason := range ex.Reasons {
		resp.Reasons[n] = ExplainReason{
			Cluster:      reason.ClusterID,
			Contribution: reason.Contribution,
			SimilarUsers: reason.SimilarUsers,
			SharedItems:  reason.SharedItems,
		}
	}
	return writeJSON(w, http.StatusOK, resp)
}

// BatchRequest asks for top-M lists of many users in one round trip.
// ExcludeItems and Filter apply to every user in the batch. Tenant routes
// the whole batch through the registry; each user still resolves to its
// own arm (deterministic per-user hashing splits a batch across arms
// exactly like single requests).
type BatchRequest struct {
	Users        []int       `json:"users"`
	M            int         `json:"m,omitempty"`
	ExcludeItems []int       `json:"exclude_items,omitempty"`
	Filter       *FilterSpec `json:"filter,omitempty"`
	Tenant       string      `json:"tenant,omitempty"`
}

// BatchResponse carries one result per requested user, in request order.
// A user that fails validation gets an Error and an empty list; the other
// users are still served.
type BatchResponse struct {
	Results      []BatchResult `json:"results"`
	ModelVersion uint64        `json:"model_version"`
}

// BatchResult is one user's slot in a batch response. Arm and
// ArmModelVersion appear only on tenant-routed batches, where different
// users of one batch may land on different arms (so the top-level
// ModelVersion — the default model's — does not describe them).
type BatchResult struct {
	User            int          `json:"user"`
	Items           []ScoredItem `json:"items,omitempty"`
	Cached          bool         `json:"cached,omitempty"`
	Error           string       `json:"error,omitempty"`
	Arm             string       `json:"arm,omitempty"`
	ArmModelVersion uint64       `json:"arm_model_version,omitempty"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) int {
	var req BatchRequest
	if err := s.decode(w, r, &req); err != nil {
		return writeError(w, http.StatusBadRequest, err.Error())
	}
	if len(req.Users) == 0 {
		return writeError(w, http.StatusBadRequest, "users must be non-empty")
	}
	if len(req.Users) > s.cfg.MaxBatch {
		return writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d users exceeds the server cap of %d", len(req.Users), s.cfg.MaxBatch))
	}
	m, err := s.clampM(req.M)
	if err != nil {
		return writeError(w, http.StatusBadRequest, err.Error())
	}
	// Tenant validity is user-independent; reject an unknown tenant once,
	// before fanning out (per-user resolve below then cannot fail).
	defRt, err := s.resolve(req.Tenant, 0)
	if err != nil {
		return writeErrorCode(w, http.StatusNotFound, "unknown_tenant", err.Error())
	}
	sn := defRt.sn
	var extra []rank.Filter
	if req.Tenant == "" {
		// Validate the shared filters once; the batch shares the result
		// across users (filters are immutable and safe for concurrent use).
		extra, err = s.requestFilters(sn, req.ExcludeItems, req.Filter)
		if err != nil {
			return writeError(w, http.StatusBadRequest, err.Error())
		}
	}
	// Response structs and per-user item slices come from a pooled
	// scratch: one flat ScoredItem buffer carved into per-user windows
	// (disjoint, so the parallel fan-out below stays race-free), reused
	// across requests so the steady-state batch path allocates neither
	// results nor item slices.
	sc := batchScratchPool.Get().(*batchScratch)
	defer batchScratchPool.Put(sc)
	results := sc.results(len(req.Users))
	flat := sc.items(len(req.Users) * m)
	// Per-user spans would drown a trace (and the ring's span cap) at
	// batch sizes; the whole fan-out becomes one aggregate span instead,
	// recorded below. rankOne therefore gets a nil recorder here.
	serveUser := func(n int) {
		u := req.Users[n]
		rt, filters := defRt, extra
		if req.Tenant != "" {
			// Arms may serve different catalogues, so the filter set is
			// validated against each user's own arm snapshot.
			rt, _ = s.resolve(req.Tenant, u)
			var ferr error
			filters, ferr = s.requestFilters(rt.sn, req.ExcludeItems, req.Filter)
			if ferr != nil {
				results[n] = BatchResult{User: u, Error: ferr.Error(), Arm: rt.arm.name}
				return
			}
		}
		items, scores, cached, err := s.rankOne(nil, rt, u, m, filters)
		if err != nil {
			results[n] = BatchResult{User: u, Error: err.Error()}
			if rt.arm != nil {
				results[n].Arm = rt.arm.name
			}
			return
		}
		dst := flat[n*m : n*m : (n+1)*m]
		for i := range items {
			dst = append(dst, ScoredItem{Item: items[i], Score: scores[i]})
		}
		results[n] = BatchResult{User: u, Items: dst, Cached: cached}
		if rt.arm != nil {
			results[n].Arm = rt.arm.name
			results[n].ArmModelVersion = rt.sn.version
		}
	}
	act := obs.ActiveFrom(r.Context())
	var bstart time.Time
	if act != nil {
		bstart = time.Now()
	}
	if len(req.Users) == 1 {
		// Worker spin-up dominates a single-user batch; serve it inline.
		serveUser(0)
	} else {
		parallel.For(len(req.Users), s.cfg.Workers, func(n int, _ *parallel.Scratch) {
			serveUser(n)
		})
	}
	if act != nil {
		act.Record("batch_rank", bstart, time.Since(bstart), fmt.Sprintf("users=%d", len(req.Users)))
	}
	return writeJSON(w, http.StatusOK, BatchResponse{Results: results, ModelVersion: s.snap.Load().version})
}

// batchScratch is the pooled per-request backing store of a JSON batch
// response: the result slots plus one flat ScoredItem buffer the slots'
// item slices are carved from. Returned to the pool only after writeJSON
// has serialized the response.
type batchScratch struct {
	res  []BatchResult
	flat []ScoredItem
}

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

func (sc *batchScratch) results(n int) []BatchResult {
	if cap(sc.res) < n {
		sc.res = make([]BatchResult, n)
	}
	sc.res = sc.res[:n]
	return sc.res
}

func (sc *batchScratch) items(n int) []ScoredItem {
	if cap(sc.flat) < n {
		sc.flat = make([]ScoredItem, n)
	}
	sc.flat = sc.flat[:n]
	return sc.flat
}

// IngestEvent is one new positive example to append to the interaction
// feed. Both fields are pointers for the same reason IngestRequest.User
// is: an event with a forgotten field must be rejected, not silently
// logged against user (or item) 0.
type IngestEvent struct {
	User *int `json:"user"`
	Item *int `json:"item"`
}

// IngestRequest appends new positives to the server's interaction feed —
// the entry point of the continuous-training pipeline. Either shape (or
// both) may be used: User+Items logs one user's new interactions, Events
// logs arbitrary (user, item) pairs. Ids beyond the served model's
// current catalogue are accepted (they name users and items a future
// retrained model will cover); negatives and ids at or above feed.MaxID
// are rejected. User is a pointer so that items sent with the user field
// forgotten are rejected instead of silently logged against user 0 —
// misattributed positives would poison every future retrain.
type IngestRequest struct {
	User   *int          `json:"user,omitempty"`
	Items  []int         `json:"items,omitempty"`
	Events []IngestEvent `json:"events,omitempty"`
	// Tenant routes the events into the tenant's own feed partition
	// (registry feed_dir), so the trainer replays exactly that tenant's
	// interactions. Empty appends to the default Config.Feed log. An
	// unregistered tenant is a 404 {code:"unknown_tenant"} — events are
	// never silently attributed to the default feed.
	Tenant string `json:"tenant,omitempty"`
}

// IngestResponse reports the append and the feed's cumulative state, so
// operators can watch the backlog the trainer's triggers act on.
type IngestResponse struct {
	Appended      int   `json:"appended"`
	FeedPositives int64 `json:"feed_positives"`
	FeedSegments  int   `json:"feed_segments"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) int {
	var req IngestRequest
	if err := s.decode(w, r, &req); err != nil {
		return writeError(w, http.StatusBadRequest, err.Error())
	}
	// Resolve the target feed first: the default log, or the tenant's own
	// partition. Tagging events with the tenant happens by construction —
	// each tenant's positives land in its own segmented log, which is the
	// partition the trainer replays.
	fl := s.cfg.Feed
	if req.Tenant != "" {
		if s.registry == nil || s.registry.tenants[req.Tenant] == nil {
			return writeErrorCode(w, http.StatusNotFound, "unknown_tenant",
				unknownTenantError{tenant: req.Tenant}.Error())
		}
		fl = s.registry.tenants[req.Tenant].feed
		if fl == nil {
			return writeError(w, http.StatusServiceUnavailable,
				fmt.Sprintf("tenant %q has no feed partition (set feed_dir in the registry)", req.Tenant))
		}
	}
	if fl == nil {
		return writeError(w, http.StatusServiceUnavailable,
			"no interaction feed configured (start the server with -feed)")
	}
	if len(req.Items) > 0 && req.User == nil {
		return writeError(w, http.StatusBadRequest, "items given without a user to attribute them to")
	}
	// New ids may exceed the served catalogue — they name users and items
	// the next retrained model will cover — but only within the growth
	// headroom: an absurd id would make the trainer size its matrix (and
	// factor arrays) up to it.
	sn := s.snap.Load()
	maxUser := sn.model.NumUsers() + s.cfg.MaxIngestGrowth
	maxItem := sn.model.NumItems() + s.cfg.MaxIngestGrowth
	events := make([]feed.Event, 0, len(req.Items)+len(req.Events))
	add := func(user, item int) error {
		switch {
		case user < 0 || item < 0:
			return fmt.Errorf("pair (%d,%d) has a negative id", user, item)
		case user >= maxUser || item >= maxItem:
			return fmt.Errorf("pair (%d,%d) exceeds the served catalogue (%dx%d) plus the growth headroom of %d",
				user, item, sn.model.NumUsers(), sn.model.NumItems(), s.cfg.MaxIngestGrowth)
		case user >= feed.MaxID || item >= feed.MaxID:
			return fmt.Errorf("pair (%d,%d) outside [0,%d)", user, item, feed.MaxID)
		}
		events = append(events, feed.Event{User: uint32(user), Item: uint32(item)})
		return nil
	}
	for _, i := range req.Items {
		if err := add(*req.User, i); err != nil {
			return writeError(w, http.StatusBadRequest, err.Error())
		}
	}
	for _, e := range req.Events {
		if e.User == nil || e.Item == nil {
			return writeError(w, http.StatusBadRequest, "event missing user or item")
		}
		if err := add(*e.User, *e.Item); err != nil {
			return writeError(w, http.StatusBadRequest, err.Error())
		}
	}
	if len(events) == 0 {
		return writeError(w, http.StatusBadRequest, "no positives: pass items (with user) and/or events")
	}
	if err := fl.Append(events...); err != nil {
		return writeError(w, http.StatusInternalServerError, err.Error())
	}
	return writeJSON(w, http.StatusOK, IngestResponse{
		Appended:      len(events),
		FeedPositives: fl.Count(),
		FeedSegments:  fl.Segments(),
	})
}

// ReloadRequest optionally names a registry model to reload. An empty
// body (or empty model) reloads the default Config.ModelPath exactly as
// before — the wire format trainers rely on is unchanged.
type ReloadRequest struct {
	Model string `json:"model,omitempty"`
}

// ReloadResponse reports the snapshot installed by a reload: the new
// model version plus the serving mode (mmapped? float32 scoring?), so a
// trainer pushing a rollout confirms the swap landed — and how it is
// being served — from the reload response alone, without a second
// /healthz round trip. Name echoes the registry model on a named reload.
type ReloadResponse struct {
	ModelVersion uint64 `json:"model_version"`
	Model        string `json:"model"`
	Mapped       bool   `json:"mapped"`
	Float32      bool   `json:"float32"`
	Name         string `json:"name,omitempty"`
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) int {
	// The body is optional ({"model": name} targets a registry model;
	// empty reloads the default path) but always capped — an unread body
	// is still received by the kernel, and without the cap a client could
	// stream an unbounded payload.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		return writeError(w, http.StatusBadRequest,
			fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBodyBytes))
	}
	var req ReloadRequest
	if len(bytes.TrimSpace(body)) > 0 {
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		}
	}
	if req.Model != "" {
		version, err := s.ReloadNamed(req.Model)
		if err != nil {
			var unknown unknownModelError
			if errors.As(err, &unknown) {
				return writeErrorCode(w, http.StatusNotFound, "unknown_model", err.Error())
			}
			return writeError(w, http.StatusInternalServerError, err.Error())
		}
		sn := s.registry.models[req.Model].base.Load()
		return writeJSON(w, http.StatusOK, ReloadResponse{
			ModelVersion: version,
			Model:        sn.model.String(),
			Mapped:       sn.mapped != nil,
			Float32:      sn.mapped != nil && sn.mapped.HasFloat32(),
			Name:         req.Model,
		})
	}
	if err := s.ReloadFromFile(); err != nil {
		return writeError(w, http.StatusInternalServerError, err.Error())
	}
	sn := s.snap.Load()
	resp := ReloadResponse{ModelVersion: sn.version}
	if sn.rng != nil {
		resp.Model = sn.rng.String()
		resp.Mapped = true
		resp.Float32 = sn.rng.HasFloat32()
	} else {
		resp.Model = sn.model.String()
		resp.Mapped = sn.mapped != nil
		resp.Float32 = sn.mapped != nil && sn.mapped.HasFloat32()
	}
	return writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) int {
	sn := s.snap.Load()
	health := map[string]any{
		"status":        "ok",
		"model_version": sn.version,
		"loaded_at":     sn.loadedAt.UTC().Format(time.RFC3339),
	}
	if sn.rng != nil {
		// Shard health carries everything the router's Refresh needs to
		// build its route table: catalogue shape, the item partition this
		// shard owns, and the version history it can still serve.
		health["model"] = sn.rng.String()
		health["mapped"] = true
		health["float32"] = sn.rng.HasFloat32()
		health["users"] = sn.rng.NumUsers()
		health["items"] = sn.rng.NumItems()
		health["shard_lo"] = sn.rng.ItemLo()
		health["shard_hi"] = sn.rng.ItemHi()
		if prev := s.prev.Load(); prev != nil {
			health["prev_version"] = prev.version
		}
	} else {
		health["model"] = sn.model.String()
		health["mapped"] = sn.mapped != nil
		health["float32"] = sn.mapped != nil && sn.mapped.HasFloat32()
	}
	if s.cfg.Feed != nil {
		health["feed_positives"] = s.cfg.Feed.Count()
	}
	if s.registry != nil {
		models, tenants := s.registry.healthTree()
		health["models"] = models
		health["tenants"] = tenants
	}
	return writeJSON(w, http.StatusOK, health)
}

// handleReadyz is the readiness probe, distinct from /healthz liveness:
// it answers 503 before a model is installed and during graceful drain,
// so load balancers and the router's prober stop routing traffic here
// while the process itself is still alive (and, when draining, still
// finishing in-flight work). Shard mode reports its version history so
// the router's prober can check the route table's pin against it.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) int {
	if s.draining.Load() {
		return writeJSON(w, http.StatusServiceUnavailable,
			map[string]any{"ready": false, "reason": "draining"})
	}
	sn := s.snap.Load()
	if sn == nil {
		return writeJSON(w, http.StatusServiceUnavailable,
			map[string]any{"ready": false, "reason": "no model installed yet"})
	}
	out := map[string]any{"ready": true, "model_version": sn.version}
	if sn.rng != nil {
		out["shard_lo"] = sn.rng.ItemLo()
		out["shard_hi"] = sn.rng.ItemHi()
		if prev := s.prev.Load(); prev != nil {
			out["prev_version"] = prev.version
		}
	}
	return writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) int {
	sn := s.snap.Load()
	out := s.metrics.snapshot(sn.version, sn.engine.CacheLen(), s.gate)
	if s.registry != nil {
		out["tenants"] = s.registry.metricsTree()
	}
	// Both views render the same snapshot tree, so they can never
	// disagree; JSON stays the default.
	if r.URL.Query().Get("format") == "prometheus" {
		return obs.WriteExposition(w, out)
	}
	return writeJSON(w, http.StatusOK, out)
}

// handleDebugTraces serves the recent-traces ring, oldest first. With
// tracing disabled the list is empty rather than the route missing, so
// operators can tell "off" from "no traffic".
func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) int {
	return writeJSON(w, http.StatusOK, map[string]any{"traces": s.tracer.Traces()})
}
