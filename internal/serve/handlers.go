package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"

	"repro/internal/explain"
	"repro/internal/parallel"
	"repro/internal/sparse"
)

// endpointNames registers every instrumented endpoint with Metrics.
var endpointNames = []string{
	"recommend", "foldin", "explain", "batch", "reload", "healthz", "metrics",
}

func (s *Server) buildMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/recommend", s.metrics.instrument("recommend", s.handleRecommend))
	mux.HandleFunc("POST /v1/foldin", s.metrics.instrument("foldin", s.handleFoldIn))
	mux.HandleFunc("POST /v1/explain", s.metrics.instrument("explain", s.handleExplain))
	mux.HandleFunc("POST /v1/batch", s.metrics.instrument("batch", s.handleBatch))
	mux.HandleFunc("POST /v1/reload", s.metrics.instrument("reload", s.handleReload))
	mux.HandleFunc("GET /healthz", s.metrics.instrument("healthz", s.handleHealthz))
	mux.HandleFunc("GET /metrics", s.metrics.instrument("metrics", s.handleMetrics))
	return mux
}

// decode reads the request body as JSON into v, enforcing the body size cap,
// rejecting unknown fields (catching misspelled parameters early), and
// requiring the body to be exactly one JSON value: a concatenated second
// request would otherwise be silently ignored, masking client framing bugs.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit)
		}
		return fmt.Errorf("bad request body: %v", err)
	}
	// Only io.EOF here proves the first value consumed the whole body
	// (trailing whitespace aside); anything else is trailing data — except
	// a tripped size cap, which keeps its own message.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit)
		}
		return errors.New("request body must be a single JSON value (trailing data rejected)")
	}
	return nil
}

// clampM applies the default and ceiling to a requested list length.
// Construction (newServer) guarantees MaxM >= 1; the guard below keeps a
// future misconfiguration from silently serving empty lists with HTTP 200.
func (s *Server) clampM(m int) (int, error) {
	if s.cfg.MaxM <= 0 {
		return 0, fmt.Errorf("server misconfigured: MaxM=%d", s.cfg.MaxM)
	}
	switch {
	case m == 0:
		if s.cfg.MaxM < 10 {
			return s.cfg.MaxM, nil
		}
		return 10, nil
	case m < 0:
		return 0, fmt.Errorf("m must be positive, got %d", m)
	case m > s.cfg.MaxM:
		return 0, fmt.Errorf("m=%d exceeds the server cap of %d", m, s.cfg.MaxM)
	}
	return m, nil
}

// ScoredItem is one ranked recommendation.
type ScoredItem struct {
	Item  int     `json:"item"`
	Score float64 `json:"score"`
}

func zipScored(items []int, scores []float64) []ScoredItem {
	out := make([]ScoredItem, len(items))
	for n := range items {
		out[n] = ScoredItem{Item: items[n], Score: scores[n]}
	}
	return out
}

// RecommendRequest asks for the top-M list of a known user.
type RecommendRequest struct {
	User int `json:"user"`
	M    int `json:"m,omitempty"`
}

// RecommendResponse carries one user's ranked recommendations.
type RecommendResponse struct {
	User         int          `json:"user"`
	Items        []ScoredItem `json:"items"`
	Cached       bool         `json:"cached"`
	ModelVersion uint64       `json:"model_version"`
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) int {
	var req RecommendRequest
	if err := s.decode(w, r, &req); err != nil {
		return writeError(w, http.StatusBadRequest, err.Error())
	}
	m, err := s.clampM(req.M)
	if err != nil {
		return writeError(w, http.StatusBadRequest, err.Error())
	}
	sn := s.snap.Load()
	resp, err := s.recommendOne(sn, req.User, m)
	if err != nil {
		return writeError(w, http.StatusBadRequest, err.Error())
	}
	return writeJSON(w, http.StatusOK, resp)
}

// recommendOne serves one user's top-m list; m must already be clamped.
func (s *Server) recommendOne(sn *snapshot, user, m int) (RecommendResponse, error) {
	if user < 0 || user >= sn.model.NumUsers() {
		return RecommendResponse{}, fmt.Errorf("user %d out of range (%d users)", user, sn.model.NumUsers())
	}
	items, scores, cached := s.topM(sn, user, m)
	return RecommendResponse{
		User:         user,
		Items:        zipScored(items, scores),
		Cached:       cached,
		ModelVersion: sn.version,
	}, nil
}

// FoldInRequest asks for cold-start recommendations: the item history of a
// user unseen at training time goes in, a fold-in factor and ranked list
// come out (Section IV-D's new-client onboarding path).
type FoldInRequest struct {
	Items []int `json:"items"`
	M     int   `json:"m,omitempty"`
}

// FoldInResponse carries the fold-in factor, bias and recommendations (the
// history items themselves are excluded from the list).
type FoldInResponse struct {
	Factor       []float64    `json:"factor"`
	Bias         float64      `json:"bias,omitempty"`
	Items        []ScoredItem `json:"items"`
	ModelVersion uint64       `json:"model_version"`
}

// foldRec adapts a fold-in factor to eval.Recommender so eval.TopM's
// selection machinery (and its scratch-buffer discipline) applies to
// cold-start users too. It scores one synthetic user, index 0.
type foldRec struct {
	sn     *snapshot
	factor []float64
	bias   float64
}

func (f foldRec) ScoreUser(_ int, dst []float64) {
	f.sn.scorer.ScoreWithFactor(f.factor, f.bias, dst)
}
func (f foldRec) NumUsers() int { return 1 }
func (f foldRec) NumItems() int { return f.sn.model.NumItems() }

// canonicalHistory validates and canonicalizes a fold-in item history:
// out-of-range items are rejected up front (before any solver work), and
// the result is sorted and duplicate-free. Canonicalizing makes the
// response independent of the client's item order and multiplicity — the
// fold-in solver sums float contributions in history order, so two
// orderings of the same set would otherwise return factors differing in
// their low bits — and gives the exclusion walk of rankTopM its sorted,
// deduplicated row directly.
func canonicalHistory(items []int, numItems int) ([]int, error) {
	hist := make([]int, len(items))
	copy(hist, items)
	sort.Ints(hist)
	uniq := hist[:0]
	for _, i := range hist {
		if i < 0 || i >= numItems {
			return nil, fmt.Errorf("item %d out of range (%d items)", i, numItems)
		}
		if len(uniq) > 0 && uniq[len(uniq)-1] == i {
			continue
		}
		uniq = append(uniq, i)
	}
	return uniq, nil
}

func (s *Server) handleFoldIn(w http.ResponseWriter, r *http.Request) int {
	var req FoldInRequest
	if err := s.decode(w, r, &req); err != nil {
		return writeError(w, http.StatusBadRequest, err.Error())
	}
	m, err := s.clampM(req.M)
	if err != nil {
		return writeError(w, http.StatusBadRequest, err.Error())
	}
	if len(req.Items) == 0 {
		return writeError(w, http.StatusBadRequest, "items must be a non-empty item history")
	}
	sn := s.snap.Load()
	history, err := canonicalHistory(req.Items, sn.model.NumItems())
	if err != nil {
		return writeError(w, http.StatusBadRequest, err.Error())
	}
	factor, bias, err := sn.model.FoldInUser(history, s.cfg.FoldIn)
	if err != nil {
		return writeError(w, http.StatusBadRequest, err.Error())
	}
	// Exclude the history via a one-row matrix, reusing TopM's sorted-row
	// exclusion walk.
	hb := sparse.NewBuilder(1, sn.model.NumItems())
	for _, i := range history {
		hb.Add(0, i)
	}
	items, scores := sn.rankTopM(foldRec{sn: sn, factor: factor, bias: bias}, hb.Build(), 0, m)
	return writeJSON(w, http.StatusOK, FoldInResponse{
		Factor:       factor,
		Bias:         bias,
		Items:        zipScored(items, scores),
		ModelVersion: sn.version,
	})
}

// ExplainRequest asks for the co-cluster rationale of one (user, item)
// pair.
type ExplainRequest struct {
	User int `json:"user"`
	Item int `json:"item"`
	// MaxPeers caps the similar-user / shared-item lists (default 5).
	MaxPeers int `json:"max_peers,omitempty"`
}

// ExplainReason is one co-cluster's contribution to the recommendation.
type ExplainReason struct {
	Cluster      int     `json:"cluster"`
	Contribution float64 `json:"contribution"`
	SimilarUsers []int   `json:"similar_users,omitempty"`
	SharedItems  []int   `json:"shared_items,omitempty"`
}

// ExplainResponse is the JSON form of an explain.Explanation.
type ExplainResponse struct {
	User         int             `json:"user"`
	Item         int             `json:"item"`
	Probability  float64         `json:"probability"`
	Reasons      []ExplainReason `json:"reasons"`
	ModelVersion uint64          `json:"model_version"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) int {
	var req ExplainRequest
	if err := s.decode(w, r, &req); err != nil {
		return writeError(w, http.StatusBadRequest, err.Error())
	}
	sn := s.snap.Load()
	if req.User < 0 || req.User >= sn.model.NumUsers() {
		return writeError(w, http.StatusBadRequest,
			fmt.Sprintf("user %d out of range (%d users)", req.User, sn.model.NumUsers()))
	}
	if req.Item < 0 || req.Item >= sn.model.NumItems() {
		return writeError(w, http.StatusBadRequest,
			fmt.Sprintf("item %d out of range (%d items)", req.Item, sn.model.NumItems()))
	}
	if req.MaxPeers < 0 {
		return writeError(w, http.StatusBadRequest, "max_peers must be non-negative")
	}
	ex := explain.Explain(sn.model, sn.train, req.User, req.Item,
		explain.Options{MaxPeers: req.MaxPeers})
	resp := ExplainResponse{
		User:         ex.User,
		Item:         ex.Item,
		Probability:  ex.Probability,
		Reasons:      make([]ExplainReason, len(ex.Reasons)),
		ModelVersion: sn.version,
	}
	for n, reason := range ex.Reasons {
		resp.Reasons[n] = ExplainReason{
			Cluster:      reason.ClusterID,
			Contribution: reason.Contribution,
			SimilarUsers: reason.SimilarUsers,
			SharedItems:  reason.SharedItems,
		}
	}
	return writeJSON(w, http.StatusOK, resp)
}

// BatchRequest asks for top-M lists of many users in one round trip.
type BatchRequest struct {
	Users []int `json:"users"`
	M     int   `json:"m,omitempty"`
}

// BatchResponse carries one result per requested user, in request order.
// A user that fails validation gets an Error and an empty list; the other
// users are still served.
type BatchResponse struct {
	Results      []BatchResult `json:"results"`
	ModelVersion uint64        `json:"model_version"`
}

// BatchResult is one user's slot in a batch response.
type BatchResult struct {
	User   int          `json:"user"`
	Items  []ScoredItem `json:"items,omitempty"`
	Cached bool         `json:"cached,omitempty"`
	Error  string       `json:"error,omitempty"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) int {
	var req BatchRequest
	if err := s.decode(w, r, &req); err != nil {
		return writeError(w, http.StatusBadRequest, err.Error())
	}
	if len(req.Users) == 0 {
		return writeError(w, http.StatusBadRequest, "users must be non-empty")
	}
	if len(req.Users) > s.cfg.MaxBatch {
		return writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d users exceeds the server cap of %d", len(req.Users), s.cfg.MaxBatch))
	}
	m, err := s.clampM(req.M)
	if err != nil {
		return writeError(w, http.StatusBadRequest, err.Error())
	}
	sn := s.snap.Load()
	results := make([]BatchResult, len(req.Users))
	parallel.For(len(req.Users), s.cfg.Workers, func(n int, _ *parallel.Scratch) {
		u := req.Users[n]
		resp, err := s.recommendOne(sn, u, m)
		if err != nil {
			results[n] = BatchResult{User: u, Error: err.Error()}
			return
		}
		results[n] = BatchResult{User: u, Items: resp.Items, Cached: resp.Cached}
	})
	return writeJSON(w, http.StatusOK, BatchResponse{Results: results, ModelVersion: sn.version})
}

// ReloadResponse reports the snapshot installed by a reload.
type ReloadResponse struct {
	ModelVersion uint64 `json:"model_version"`
	Model        string `json:"model"`
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) int {
	if err := s.ReloadFromFile(); err != nil {
		return writeError(w, http.StatusInternalServerError, err.Error())
	}
	sn := s.snap.Load()
	return writeJSON(w, http.StatusOK, ReloadResponse{
		ModelVersion: sn.version,
		Model:        sn.model.String(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) int {
	sn := s.snap.Load()
	return writeJSON(w, http.StatusOK, map[string]any{
		"status":        "ok",
		"model":         sn.model.String(),
		"model_version": sn.version,
		"loaded_at":     sn.loadedAt.UTC().Format("2006-01-02T15:04:05Z07:00"),
		"mapped":        sn.mapped != nil,
		"float32":       sn.mapped != nil && sn.mapped.HasFloat32(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) int {
	sn := s.snap.Load()
	return writeJSON(w, http.StatusOK, s.metrics.snapshot(sn.version, sn.cache.len()))
}
