package serve

import (
	"encoding/json"
	"expvar"
	"net/http"
	"time"

	"repro/internal/obs"
	"repro/internal/rank"
)

// Per-endpoint latency lives in obs.Histogram: log-scale buckets
// (half-decade steps from 10µs to 10s) with coherent snapshots —
// count, error count, sum and buckets all read from the same drained
// cell, so the derived mean and the interpolated p50/p95/p99 can never
// mix a fresh count with a stale sum the way the old six-bucket
// expvar histogram could mid-burst.

// Metrics aggregates serving statistics across all endpoints of a Server.
// Cache and coalescing counters live in the shared rank.Stats, fed by the
// snapshots' ranking engines; sharing one Stats across reloads keeps them
// cumulative.
type Metrics struct {
	start     time.Time
	endpoints map[string]*obs.Histogram
	rank      *rank.Stats
	tracer    *obs.Tracer // nil when tracing is disabled
	reloads   expvar.Int
	inFlight  expvar.Int
	// writeErrors counts response writes that failed (client gone,
	// broken pipe) — the encoder errors writeJSON and the binary frame
	// writer otherwise discard.
	writeErrors expvar.Int
	// deadlineAborts counts shard requests aborted because their
	// propagated deadline budget (see DeadlineHeader) had already expired
	// before scoring started — wasted work the deadline check saved.
	deadlineAborts expvar.Int
	// batchBinary tracks the binary columnar transport (/v2/batch and the
	// shard /v2/shard/topm) separately from the per-endpoint histograms,
	// so the JSON/binary transport split is observable: users is the
	// summed batch fan-out, bytesOut the frame bytes written, and
	// decodeRejects the frames refused by the wire decoder (bad magic,
	// version, flags, or layout) — the counter to watch when a client
	// upgrade goes wrong.
	batchBinary struct {
		requests      expvar.Int
		users         expvar.Int
		bytesOut      expvar.Int
		decodeRejects expvar.Int
	}
}

func newMetrics(endpointNames []string, stats *rank.Stats) *Metrics {
	m := &Metrics{
		start:     time.Now(),
		endpoints: make(map[string]*obs.Histogram, len(endpointNames)),
		rank:      stats,
	}
	for _, name := range endpointNames {
		m.endpoints[name] = &obs.Histogram{}
	}
	return m
}

// CacheHitRate returns hits / (hits + misses), or 0 before any lookup.
// Coalesced waiters count as neither: they are misses that borrowed
// another request's computation.
func (m *Metrics) CacheHitRate() float64 {
	h, miss := m.rank.Hits(), m.rank.Misses()
	if h+miss == 0 {
		return 0
	}
	return float64(h) / float64(h+miss)
}

// snapshot renders the full metrics tree for the /metrics endpoint.
// gate may be nil (admission control disabled). The same tree feeds
// both the JSON and the Prometheus views (obs.Labeled keeps the JSON
// identical while naming the endpoint label for the exposition).
func (m *Metrics) snapshot(version uint64, cacheEntries int, gate *Gate) map[string]any {
	eps := make(map[string]map[string]any, len(m.endpoints))
	for name, h := range m.endpoints {
		eps[name] = obs.EndpointSnapshot(h)
	}
	out := map[string]any{
		"uptime_seconds":        time.Since(m.start).Seconds(),
		"model_version":         version,
		"model_reloads":         m.reloads.Value(),
		"in_flight":             m.inFlight.Value(),
		"deadline_aborts":       m.deadlineAborts.Value(),
		"response_write_errors": m.writeErrors.Value(),
		"cache": map[string]any{
			"hits": m.rank.Hits(),
			// misses counts requests not answered from the cache;
			// coalesced is the subset of concurrent duplicates that shared
			// another miss's computation, and ranked the full
			// score→filter→select computations actually performed.
			"misses":    m.rank.Misses(),
			"coalesced": m.rank.Coalesced(),
			"ranked":    m.rank.Ranked(),
			"hit_rate":  m.CacheHitRate(),
			"entries":   cacheEntries,
		},
		"endpoints": obs.Labeled{Label: "endpoint", Rows: eps},
		"batch_binary": map[string]any{
			"requests":       m.batchBinary.requests.Value(),
			"users":          m.batchBinary.users.Value(),
			"bytes_out":      m.batchBinary.bytesOut.Value(),
			"decode_rejects": m.batchBinary.decodeRejects.Value(),
		},
	}
	if adm := gate.Snapshot(); adm != nil {
		out["admission"] = adm
	}
	return out
}

// untraced endpoints never produce trace records: health probes and
// metrics scrapes would otherwise flush every interesting trace out of
// the ring within one scrape interval.
var untraced = map[string]bool{
	"healthz": true, "readyz": true, "metrics": true, "debug_traces": true,
}

// countingWriter wraps the response writer to count failed writes —
// once per request, however many Write calls the encoder makes.
type countingWriter struct {
	http.ResponseWriter
	errs   *expvar.Int
	failed bool
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.ResponseWriter.Write(p)
	if err != nil && !cw.failed {
		cw.failed = true
		cw.errs.Add(1)
	}
	return n, err
}

// instrument wraps an endpoint handler with request counting, latency
// observation, in-flight tracking, failed-write counting and — for the
// data endpoints — request tracing: the trace header is adopted or
// minted, echoed in the response, and the recorder rides the request
// context so pipeline hooks can attach spans. The endpoint name must
// have been registered at Metrics construction.
func (m *Metrics) instrument(name string, h func(w http.ResponseWriter, r *http.Request) int) http.HandlerFunc {
	em := m.endpoints[name]
	traced := !untraced[name]
	return func(w http.ResponseWriter, r *http.Request) {
		m.inFlight.Add(1)
		var act *obs.Active
		if traced {
			if act = m.tracer.Start(name, r.Header.Get(obs.TraceHeader)); act != nil {
				r = r.WithContext(obs.WithActive(r.Context(), act))
				w.Header().Set(obs.TraceHeader, act.ID())
			}
		}
		cw := &countingWriter{ResponseWriter: w, errs: &m.writeErrors}
		start := time.Now()
		// net/http recovers handler panics per-connection; the deferred
		// observation keeps the in-flight gauge, histogram and trace ring
		// honest even then (a panic is recorded as a 500).
		status := http.StatusInternalServerError
		defer func() {
			em.Observe(time.Since(start), status >= 400)
			m.tracer.Finish(act, status)
			m.inFlight.Add(-1)
		}()
		status = h(cw, r)
	}
}

// recordRankSpans translates one rank call's Timings into trace spans:
// a hit is a single "rank" span noted cache_hit or coalesced; a miss
// becomes sequential "score", "filter_select" and (if staged) "rerank"
// spans laid out from start by the stage durations. Nil-safe via the
// recorder: callers only pay for the clock reads when tracing.
func recordRankSpans(act *obs.Active, start time.Time, tm *rank.Timings) {
	if act == nil {
		return
	}
	if tm.Cached {
		note := "cache_hit"
		if tm.Coalesced {
			note = "coalesced"
		}
		act.Record("rank", start, time.Since(start), note)
		return
	}
	act.Record("score", start, tm.Score, "")
	t := start.Add(tm.Score)
	act.Record("filter_select", t, tm.Select, "")
	if tm.Stages > 0 {
		act.Record("rerank", t.Add(tm.Select), tm.Stages, "")
	}
}

// writeJSON encodes v with status code, reporting the status back to the
// instrumentation wrapper. Write failures are counted by the
// instrumentation's response writer rather than inspected here.
func writeJSON(w http.ResponseWriter, status int, v any) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
	return status
}

// writeError encodes {"error": msg} with the given status.
func writeError(w http.ResponseWriter, status int, msg string) int {
	return writeJSON(w, status, map[string]string{"error": msg})
}

// writeErrorCode encodes {"code": code, "error": msg} — the
// machine-readable error shape of the multi-model platform (e.g.
// "unknown_tenant"), so clients branch on a stable code, not a message.
func writeErrorCode(w http.ResponseWriter, status int, code, msg string) int {
	return writeJSON(w, status, map[string]string{"code": code, "error": msg})
}
