package serve

import (
	"encoding/json"
	"expvar"
	"net/http"
	"time"

	"repro/internal/rank"
)

// latencyBucketBounds are the upper bounds (exclusive) of the request
// latency histogram, chosen to straddle the expected serving regimes: a
// cache hit is sub-100µs, a cache-miss ranking of a large catalogue is
// single-digit milliseconds, a fold-in solve tens of milliseconds, and
// anything in the top bucket deserves a look.
var latencyBucketBounds = [...]time.Duration{
	100 * time.Microsecond,
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
}

var latencyBucketLabels = [...]string{
	"<100us", "<1ms", "<10ms", "<100ms", "<1s", ">=1s",
}

// endpointMetrics counts requests, errors and a latency histogram for one
// endpoint. The counters are expvar vars (atomic, individually snapshotable)
// kept unpublished so several Servers can coexist in one process.
type endpointMetrics struct {
	requests    expvar.Int
	errors      expvar.Int // responses with status >= 400
	totalMicros expvar.Int
	buckets     [len(latencyBucketBounds) + 1]expvar.Int
}

func (em *endpointMetrics) observe(d time.Duration, status int) {
	em.requests.Add(1)
	if status >= 400 {
		em.errors.Add(1)
	}
	em.totalMicros.Add(d.Microseconds())
	b := len(latencyBucketBounds)
	for i, bound := range latencyBucketBounds {
		if d < bound {
			b = i
			break
		}
	}
	em.buckets[b].Add(1)
}

func (em *endpointMetrics) snapshot() map[string]any {
	hist := make(map[string]int64, len(em.buckets))
	for i := range em.buckets {
		hist[latencyBucketLabels[i]] = em.buckets[i].Value()
	}
	out := map[string]any{
		"requests":             em.requests.Value(),
		"errors":               em.errors.Value(),
		"latency_micros_total": em.totalMicros.Value(),
		"latency_histogram":    hist,
	}
	if n := em.requests.Value(); n > 0 {
		out["latency_micros_mean"] = float64(em.totalMicros.Value()) / float64(n)
	}
	return out
}

// Metrics aggregates serving statistics across all endpoints of a Server.
// Cache and coalescing counters live in the shared rank.Stats, fed by the
// snapshots' ranking engines; sharing one Stats across reloads keeps them
// cumulative.
type Metrics struct {
	start     time.Time
	endpoints map[string]*endpointMetrics
	rank      *rank.Stats
	reloads   expvar.Int
	inFlight  expvar.Int
	// deadlineAborts counts shard requests aborted because their
	// propagated deadline budget (see DeadlineHeader) had already expired
	// before scoring started — wasted work the deadline check saved.
	deadlineAborts expvar.Int
	// batchBinary tracks the binary columnar transport (/v2/batch and the
	// shard /v2/shard/topm) separately from the per-endpoint histograms,
	// so the JSON/binary transport split is observable: users is the
	// summed batch fan-out, bytesOut the frame bytes written, and
	// decodeRejects the frames refused by the wire decoder (bad magic,
	// version, flags, or layout) — the counter to watch when a client
	// upgrade goes wrong.
	batchBinary struct {
		requests      expvar.Int
		users         expvar.Int
		bytesOut      expvar.Int
		decodeRejects expvar.Int
	}
}

func newMetrics(endpointNames []string, stats *rank.Stats) *Metrics {
	m := &Metrics{
		start:     time.Now(),
		endpoints: make(map[string]*endpointMetrics, len(endpointNames)),
		rank:      stats,
	}
	for _, name := range endpointNames {
		m.endpoints[name] = &endpointMetrics{}
	}
	return m
}

// CacheHitRate returns hits / (hits + misses), or 0 before any lookup.
// Coalesced waiters count as neither: they are misses that borrowed
// another request's computation.
func (m *Metrics) CacheHitRate() float64 {
	h, miss := m.rank.Hits(), m.rank.Misses()
	if h+miss == 0 {
		return 0
	}
	return float64(h) / float64(h+miss)
}

// snapshot renders the full metrics tree for the /metrics endpoint.
// gate may be nil (admission control disabled).
func (m *Metrics) snapshot(version uint64, cacheEntries int, gate *Gate) map[string]any {
	eps := make(map[string]any, len(m.endpoints))
	for name, em := range m.endpoints {
		eps[name] = em.snapshot()
	}
	out := map[string]any{
		"uptime_seconds":  time.Since(m.start).Seconds(),
		"model_version":   version,
		"model_reloads":   m.reloads.Value(),
		"in_flight":       m.inFlight.Value(),
		"deadline_aborts": m.deadlineAborts.Value(),
		"cache": map[string]any{
			"hits": m.rank.Hits(),
			// misses counts requests not answered from the cache;
			// coalesced is the subset of concurrent duplicates that shared
			// another miss's computation, and ranked the full
			// score→filter→select computations actually performed.
			"misses":    m.rank.Misses(),
			"coalesced": m.rank.Coalesced(),
			"ranked":    m.rank.Ranked(),
			"hit_rate":  m.CacheHitRate(),
			"entries":   cacheEntries,
		},
		"endpoints": eps,
		"batch_binary": map[string]any{
			"requests":       m.batchBinary.requests.Value(),
			"users":          m.batchBinary.users.Value(),
			"bytes_out":      m.batchBinary.bytesOut.Value(),
			"decode_rejects": m.batchBinary.decodeRejects.Value(),
		},
	}
	if adm := gate.Snapshot(); adm != nil {
		out["admission"] = adm
	}
	return out
}

// instrument wraps an endpoint handler with request counting, latency
// observation and in-flight tracking. The endpoint name must have been
// registered at Metrics construction.
func (m *Metrics) instrument(name string, h func(w http.ResponseWriter, r *http.Request) int) http.HandlerFunc {
	em := m.endpoints[name]
	return func(w http.ResponseWriter, r *http.Request) {
		m.inFlight.Add(1)
		start := time.Now()
		// net/http recovers handler panics per-connection; the deferred
		// observation keeps the in-flight gauge and histogram honest even
		// then (a panic is recorded as a 500).
		status := http.StatusInternalServerError
		defer func() {
			em.observe(time.Since(start), status)
			m.inFlight.Add(-1)
		}()
		status = h(w, r)
	}
}

// writeJSON encodes v with status code, reporting the status back to the
// instrumentation wrapper.
func writeJSON(w http.ResponseWriter, status int, v any) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
	return status
}

// writeError encodes {"error": msg} with the given status.
func writeError(w http.ResponseWriter, status int, msg string) int {
	return writeJSON(w, status, map[string]string{"error": msg})
}

// writeErrorCode encodes {"code": code, "error": msg} — the
// machine-readable error shape of the multi-model platform (e.g.
// "unknown_tenant"), so clients branch on a stable code, not a message.
func writeErrorCode(w http.ResponseWriter, status int, code, msg string) int {
	return writeJSON(w, status, map[string]string{"code": code, "error": msg})
}
