package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/rank"
	"repro/internal/sparse"
)

// newShardTier trains one model, saves it, and serves it both ways: a
// full single-process server (the reference) and nParts shard servers
// partitioning the item catalogue. All servers share the training matrix,
// so shard partials must merge to exactly the reference's lists.
func newShardTier(t testing.TB, nParts int) (full *httptest.Server, shards []*httptest.Server, model *core.Model, train *sparse.Matrix, path string) {
	t.Helper()
	train = dataset.SyntheticSmall(1).Dataset.R
	model = trainSmall(t, train, 3)
	path = filepath.Join(t.TempDir(), "model.bin")
	if err := model.SaveModelFile(path); err != nil {
		t.Fatal(err)
	}
	fullSrv, err := NewFromFile(Config{ModelPath: path, Train: train, FoldIn: foldInCfg})
	if err != nil {
		t.Fatal(err)
	}
	full = httptest.NewServer(fullSrv.Handler())
	t.Cleanup(full.Close)

	items := model.NumItems()
	for p := 0; p < nParts; p++ {
		lo := p * items / nParts
		hi := (p + 1) * items / nParts
		if p == nParts-1 {
			hi = -1 // tail shard follows the catalogue
		}
		srv, err := NewShardFromFile(Config{ModelPath: path, Train: train, ShardLo: lo, ShardHi: hi})
		if err != nil {
			t.Fatalf("shard %d [%d,%d): %v", p, lo, hi, err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		shards = append(shards, ts)
	}
	return full, shards, model, train, path
}

// gatherMerge scatters one request to every shard and merges the partials
// — the router's core loop, inlined for the serve-layer test.
func gatherMerge(t testing.TB, shards []*httptest.Server, req ShardTopMRequest) ([]int, []float64) {
	t.Helper()
	parts := make([]rank.Partial, 0, len(shards))
	for _, ts := range shards {
		var resp ShardTopMResponse
		if st := postJSON(t, ts.URL+"/v1/shard/topm", req, &resp); st != 200 {
			t.Fatalf("shard %s: status %d", ts.URL, st)
		}
		p := rank.Partial{}
		for _, it := range resp.Items {
			p.Items = append(p.Items, it.Item)
			p.Scores = append(p.Scores, it.Score)
		}
		parts = append(parts, p)
	}
	return rank.MergeTopM(req.M, parts...)
}

// TestShardScatterGatherBitIdentical: merging shard partials reproduces
// the full server's lists exactly — same items, same score bits — across
// users, list lengths, exclusion lists and shard counts.
func TestShardScatterGatherBitIdentical(t *testing.T) {
	for _, nParts := range []int{2, 3} {
		full, shards, model, _, _ := newShardTier(t, nParts)
		cases := []ShardTopMRequest{
			{User: 0, M: 10},
			{User: 7, M: 1},
			{User: 42, M: 25},
			{User: 119, M: 10, ExcludeItems: []int{0, 3, 17, 40, 41, 59}},
			{User: 3, M: model.NumItems() + 50},
		}
		// MaxM default is 1000; clamp the oversized case like clampM does.
		if cases[4].M > 1000 {
			cases[4].M = 1000
		}
		for _, c := range cases {
			var want RecommendResponse
			if st := postJSON(t, full.URL+"/v1/recommend", RecommendRequest{
				User: c.User, M: c.M, ExcludeItems: c.ExcludeItems,
			}, &want); st != 200 {
				t.Fatalf("full server user %d: status %d", c.User, st)
			}
			items, scores := gatherMerge(t, shards, c)
			if len(items) != len(want.Items) {
				t.Fatalf("%d shards, user %d m %d: merged %d items, full served %d",
					nParts, c.User, c.M, len(items), len(want.Items))
			}
			for n, it := range want.Items {
				if items[n] != it.Item {
					t.Errorf("%d shards, user %d rank %d: merged item %d, full %d",
						nParts, c.User, n, items[n], it.Item)
				}
				if scores[n] != it.Score {
					t.Errorf("%d shards, user %d rank %d: merged score %v, full %v (must be bit-identical)",
						nParts, c.User, n, scores[n], it.Score)
				}
			}
		}
	}
}

// TestShardVersionPinning pins the mixed-version protocol: the current
// version and its immediate predecessor are served, anything else is 409.
func TestShardVersionPinning(t *testing.T) {
	train := dataset.SyntheticSmall(1).Dataset.R
	model := trainSmall(t, train, 3)
	path := filepath.Join(t.TempDir(), "model.bin")
	if err := model.SaveModelFile(path); err != nil {
		t.Fatal(err)
	}
	srv, err := NewShardFromFile(Config{ModelPath: path, Train: train, ShardLo: 0, ShardHi: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var v1 ShardTopMResponse
	if st := postJSON(t, ts.URL+"/v1/shard/topm", ShardTopMRequest{User: 1, M: 5, ExpectVersion: 1}, &v1); st != 200 {
		t.Fatalf("pin to current version: status %d", st)
	}
	if st := postJSON(t, ts.URL+"/v1/shard/topm", ShardTopMRequest{User: 1, M: 5, ExpectVersion: 99}, nil); st != http.StatusConflict {
		t.Fatalf("pin to unknown version: status %d, want 409", st)
	}

	// Retrain and reload: version 2 becomes current, version 1 moves to
	// the two-deep history and must still serve pinned requests.
	if err := trainSmall(t, train, 99).SaveModelFile(path); err != nil {
		t.Fatal(err)
	}
	var rr ReloadResponse
	if st := postJSON(t, ts.URL+"/v1/reload", struct{}{}, &rr); st != 200 {
		t.Fatalf("reload: status %d", st)
	}
	if rr.ModelVersion != 2 {
		t.Fatalf("reload installed version %d, want 2", rr.ModelVersion)
	}
	var pinned ShardTopMResponse
	if st := postJSON(t, ts.URL+"/v1/shard/topm", ShardTopMRequest{User: 1, M: 5, ExpectVersion: 1}, &pinned); st != 200 {
		t.Fatalf("pin to previous version after reload: status %d", st)
	}
	if pinned.ModelVersion != 1 {
		t.Fatalf("pinned request served version %d, want 1", pinned.ModelVersion)
	}
	for n, it := range v1.Items {
		if pinned.Items[n] != it {
			t.Fatalf("rank %d: pinned request returned %+v, version 1 originally served %+v", n, pinned.Items[n], it)
		}
	}
	var current ShardTopMResponse
	if st := postJSON(t, ts.URL+"/v1/shard/topm", ShardTopMRequest{User: 1, M: 5, ExpectVersion: 2}, &current); st != 200 {
		t.Fatalf("pin to new version: status %d", st)
	}
	if current.ModelVersion != 2 {
		t.Fatalf("served version %d, want 2", current.ModelVersion)
	}

	// A second reload pushes version 1 off the history: now 409.
	if st := postJSON(t, ts.URL+"/v1/reload", struct{}{}, nil); st != 200 {
		t.Fatal("second reload failed")
	}
	if st := postJSON(t, ts.URL+"/v1/shard/topm", ShardTopMRequest{User: 1, M: 5, ExpectVersion: 1}, nil); st != http.StatusConflict {
		t.Fatalf("pin two versions back: status %d, want 409", st)
	}
}

// TestShardServesOnlyShardAPI: a shard exposes the shard surface and
// nothing of the full API.
func TestShardServesOnlyShardAPI(t *testing.T) {
	_, shards, _, _, _ := newShardTier(t, 2)
	for _, path := range []string{"/v1/recommend", "/v1/foldin", "/v1/explain", "/v1/batch", "/v1/ingest"} {
		resp, err := http.Post(shards[0].URL+path, "application/json", bytes.NewReader([]byte("{}")))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("POST %s on a shard: status %d, want 404", path, resp.StatusCode)
		}
	}
	var health map[string]any
	resp, err := http.Get(shards[0].URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := jsonDecode(resp, &health); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"users", "items", "shard_lo", "shard_hi"} {
		if _, ok := health[key]; !ok {
			t.Errorf("shard healthz missing %q: %v", key, health)
		}
	}
}

func jsonDecode(resp *http.Response, v any) error {
	return json.NewDecoder(resp.Body).Decode(v)
}

// TestShardConfigValidation pins the construction errors.
func TestShardConfigValidation(t *testing.T) {
	train := dataset.SyntheticSmall(1).Dataset.R
	model := trainSmall(t, train, 3)
	path := filepath.Join(t.TempDir(), "model.bin")
	if err := model.SaveModelFile(path); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no range", Config{ModelPath: path}},
		{"no model path", Config{ShardLo: 0, ShardHi: 10}},
		{"inverted range", Config{ModelPath: path, ShardLo: 10, ShardHi: 5}},
		{"negative lo", Config{ModelPath: path, ShardLo: -3, ShardHi: 5}},
		{"range past catalogue", Config{ModelPath: path, ShardLo: 0, ShardHi: model.NumItems() + 1}},
	}
	for _, c := range cases {
		if _, err := NewShardFromFile(c.cfg); err == nil {
			t.Errorf("%s: NewShardFromFile accepted %+v", c.name, c.cfg)
		}
	}
	// The full-server constructors refuse shard configs.
	if _, err := NewFromFile(Config{ModelPath: path, ShardLo: 0, ShardHi: 10}); err == nil {
		t.Error("NewFromFile accepted a shard config")
	}
}
