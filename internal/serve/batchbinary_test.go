package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/wire"
)

// postFrame posts one binary request frame and returns the HTTP status,
// the response Content-Type and the raw body.
func postFrame(t testing.TB, url string, req *wire.BatchRequest) (int, string, []byte) {
	t.Helper()
	return postRaw(t, url, mustFrame(t, req))
}

// mustFrame encodes a request the test knows to be representable.
func mustFrame(t testing.TB, req *wire.BatchRequest) []byte {
	t.Helper()
	frame, err := wire.AppendBatchRequest(nil, req)
	if err != nil {
		t.Fatalf("append request: %v", err)
	}
	return frame
}

func postRaw(t testing.TB, url string, body []byte) (int, string, []byte) {
	t.Helper()
	resp, err := http.Post(url, FrameContentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), data
}

// decodeFrame decodes a 200 body as a response frame.
func decodeFrame(t testing.TB, data []byte) *wire.BatchResponse {
	t.Helper()
	var out wire.BatchResponse
	if err := wire.DecodeBatchResponse(data, &out); err != nil {
		t.Fatalf("decoding response frame: %v", err)
	}
	return &out
}

// compareTransports requires the binary response to be bit-identical to
// the JSON one: same per-user list lengths, same items, same float64
// score bits, same error slots, same model version.
func compareTransports(t testing.TB, label string, bin *wire.BatchResponse, js *BatchResponse) {
	t.Helper()
	if len(bin.Counts) != len(js.Results) {
		t.Fatalf("%s: binary carries %d users, JSON %d", label, len(bin.Counts), len(js.Results))
	}
	if bin.ModelVersion != js.ModelVersion {
		t.Errorf("%s: binary model version %d, JSON %d", label, bin.ModelVersion, js.ModelVersion)
	}
	off := 0
	for i, res := range js.Results {
		n := int(bin.Counts[i])
		failed := bin.Status[i]&wire.StatusError != 0
		if failed != (res.Error != "") {
			t.Fatalf("%s user slot %d: binary error=%v, JSON error=%q", label, i, failed, res.Error)
		}
		if n != len(res.Items) {
			t.Fatalf("%s user slot %d: binary %d items, JSON %d", label, i, n, len(res.Items))
		}
		for r := 0; r < n; r++ {
			if int(bin.Items[off+r]) != res.Items[r].Item {
				t.Errorf("%s user slot %d rank %d: binary item %d, JSON %d",
					label, i, r, bin.Items[off+r], res.Items[r].Item)
			}
			if math.Float64bits(bin.Scores[off+r]) != math.Float64bits(res.Items[r].Score) {
				t.Errorf("%s user slot %d rank %d: binary score %v, JSON %v (must be bit-identical)",
					label, i, r, bin.Scores[off+r], res.Items[r].Score)
			}
		}
		off += n
	}
}

// TestBatchBinaryMatchesJSON is the transport's acceptance property:
// across random users (including out-of-range ones), list lengths,
// exclusion lists, tag filters and a staged pipeline, POST /v2/batch
// returns exactly what POST /v1/batch returns — same items, same float64
// score bits — including across a model reload mid-test.
func TestBatchBinaryMatchesJSON(t *testing.T) {
	srv, ts, _, train := newTestServer(t, Config{
		ItemTags: testItemTags(t, 80),
		Stages:   []StageSpec{{Type: "floor", Min: 0.02}},
	})
	rng := rand.New(rand.NewPCG(9, 7))
	tagSets := [][]string{nil, {"even"}, {"low"}, {"even", "rare"}}
	round := func(label string) {
		for iter := 0; iter < 24; iter++ {
			users := make([]int, 1+rng.IntN(7))
			for i := range users {
				users[i] = rng.IntN(130) // 120 real users; some out of range
			}
			m := 1 + rng.IntN(15)
			var exclude []int
			for _, it := range []int{2, 9, 17, 40, 63} {
				if rng.IntN(3) == 0 {
					exclude = append(exclude, it)
				}
			}
			allow := tagSets[rng.IntN(len(tagSets))]
			var deny []string
			if rng.IntN(3) == 0 {
				deny = []string{"rare"}
			}
			var spec *FilterSpec
			if len(allow) > 0 || len(deny) > 0 {
				spec = &FilterSpec{AllowTags: allow, DenyTags: deny}
			}

			var js BatchResponse
			if st := postJSON(t, ts.URL+"/v1/batch", BatchRequest{
				Users: users, M: m, ExcludeItems: exclude, Filter: spec,
			}, &js); st != 200 {
				t.Fatalf("%s iter %d: JSON status %d", label, iter, st)
			}
			wreq := wire.BatchRequest{M: uint32(m), AllowTags: allow, DenyTags: deny}
			for _, u := range users {
				wreq.Users = append(wreq.Users, uint32(u))
			}
			for _, e := range exclude {
				wreq.Exclude = append(wreq.Exclude, uint32(e))
			}
			st, ct, data := postFrame(t, ts.URL+"/v2/batch", &wreq)
			if st != 200 {
				t.Fatalf("%s iter %d: binary status %d: %s", label, iter, st, data)
			}
			if ct != FrameContentType {
				t.Fatalf("%s iter %d: binary Content-Type %q", label, iter, ct)
			}
			compareTransports(t, label, decodeFrame(t, data), &js)
		}
	}
	round("v1")
	// Reload a genuinely different model (new seed) through the same
	// path and re-run the property against the new version.
	if err := trainSmall(t, train, 17).SaveModelFile(srv.cfg.ModelPath); err != nil {
		t.Fatal(err)
	}
	if err := srv.ReloadFromFile(); err != nil {
		t.Fatal(err)
	}
	round("v2-after-reload")
}

// TestBatchBinaryCachedBit: a repeated frame is served from the rank
// cache and says so in the per-user status bits, exactly like the JSON
// transport's cached field.
func TestBatchBinaryCachedBit(t *testing.T) {
	_, ts, _, _ := newTestServer(t, Config{})
	req := &wire.BatchRequest{M: 10, Users: []uint32{5, 6}}
	st, _, data := postFrame(t, ts.URL+"/v2/batch", req)
	if st != 200 {
		t.Fatalf("first: status %d: %s", st, data)
	}
	for i, s := range decodeFrame(t, data).Status {
		if s&wire.StatusCached != 0 {
			t.Errorf("first request user slot %d already cached", i)
		}
	}
	st, _, data = postFrame(t, ts.URL+"/v2/batch", req)
	if st != 200 {
		t.Fatalf("repeat: status %d: %s", st, data)
	}
	for i, s := range decodeFrame(t, data).Status {
		if s&wire.StatusCached == 0 {
			t.Errorf("repeat request user slot %d not cached", i)
		}
	}
}

// TestBatchBinaryTenantMatchesJSON: tenant-routed frames resolve users
// to experiment arms exactly like JSON batches (same lists, same score
// bits), and the arms' binary-transport counters become visible under
// /metrics tenants.<t>.arms.<arm>.binary_requests.
func TestBatchBinaryTenantMatchesJSON(t *testing.T) {
	f := newRegistryServer(t, Config{}, nil)
	users := []int{0, 1, 2, 3, 7, 41, 119}
	var js BatchResponse
	if st := postJSON(t, f.ts.URL+"/v1/batch", BatchRequest{Users: users, M: 10, Tenant: "acme"}, &js); st != 200 {
		t.Fatalf("JSON status %d", st)
	}
	wreq := wire.BatchRequest{M: 10, Tenant: "acme"}
	for _, u := range users {
		wreq.Users = append(wreq.Users, uint32(u))
	}
	st, _, data := postFrame(t, f.ts.URL+"/v2/batch", &wreq)
	if st != 200 {
		t.Fatalf("binary status %d: %s", st, data)
	}
	bin := decodeFrame(t, data)
	// Tenant slots carry per-arm model versions in JSON; the frame's
	// single modelVersion is the default model's. Compare lists only.
	bin.ModelVersion = js.ModelVersion
	compareTransports(t, "tenant", bin, &js)

	var metrics map[string]any
	getJSON(t, f.ts.URL+"/metrics", &metrics)
	arms := metrics["tenants"].(map[string]any)["acme"].(map[string]any)["arms"].(map[string]any)
	total := 0.0
	for name, a := range arms {
		n := a.(map[string]any)["binary_requests"].(float64)
		reqs := a.(map[string]any)["requests"].(float64)
		if n > reqs {
			t.Errorf("arm %s: binary_requests %v exceeds requests %v", name, n, reqs)
		}
		total += n
	}
	if total != float64(len(users)) {
		t.Errorf("binary_requests across arms total %v, want %d", total, len(users))
	}
}

// TestBatchBinaryNegotiation pins the error contract: anything that is
// not a well-formed request frame is a 400 with the stable JSON error
// code "bad_frame" (errors are always JSON; only 200s carry frames), and
// every reject shows up in the batch_binary.decode_rejects counter.
func TestBatchBinaryNegotiation(t *testing.T) {
	_, ts, _, _ := newTestServer(t, Config{})
	valid := mustFrame(t, &wire.BatchRequest{M: 5, Users: []uint32{1}})
	wrongMagic := append([]byte(nil), valid...)
	copy(wrongMagic, "NOTAFRAM")
	badVersion := append([]byte(nil), valid...)
	badVersion[7] = '9'
	rejects := [][]byte{
		[]byte("{\"users\":[1]}"), // JSON where a frame belongs
		wrongMagic,
		badVersion,
		valid[:len(valid)-3], // torn tail
		valid[:16],           // shorter than a header
	}
	for i, body := range rejects {
		st, ct, data := postRaw(t, ts.URL+"/v2/batch", body)
		if st != http.StatusBadRequest {
			t.Fatalf("reject %d: status %d, want 400 (%s)", i, st, data)
		}
		if ct != "application/json" {
			t.Errorf("reject %d: error Content-Type %q, want JSON", i, ct)
		}
		var e struct {
			Code string `json:"code"`
		}
		if err := json.Unmarshal(data, &e); err != nil || e.Code != "bad_frame" {
			t.Errorf("reject %d: body %s, want code bad_frame", i, data)
		}
	}
	// A well-formed frame carrying the shard-only version pin is refused
	// on the batch endpoint.
	st, _, data := postFrame(t, ts.URL+"/v2/batch",
		&wire.BatchRequest{M: 5, Users: []uint32{1}, ExpectVersion: 1})
	if st != http.StatusBadRequest {
		t.Fatalf("expect_version: status %d (%s)", st, data)
	}
	// Unknown tenant keeps the JSON transport's stable code.
	st, _, data = postFrame(t, ts.URL+"/v2/batch",
		&wire.BatchRequest{M: 5, Users: []uint32{1}, Tenant: "ghost"})
	if st != http.StatusNotFound {
		t.Fatalf("unknown tenant: status %d (%s)", st, data)
	}
	var e struct {
		Code string `json:"code"`
	}
	if err := json.Unmarshal(data, &e); err != nil || e.Code != "unknown_tenant" {
		t.Errorf("unknown tenant: body %s, want code unknown_tenant", data)
	}

	var metrics map[string]any
	getJSON(t, ts.URL+"/metrics", &metrics)
	bb := metrics["batch_binary"].(map[string]any)
	if got := bb["decode_rejects"].(float64); got != float64(len(rejects)+1) {
		t.Errorf("decode_rejects = %v, want %d", got, len(rejects)+1)
	}
	if got := bb["requests"].(float64); got != 0 {
		t.Errorf("batch_binary.requests = %v after rejects only, want 0", got)
	}
}

// TestBatchBinaryMetricsCounters: successful frames feed the transport
// counters — requests, users scored, bytes written.
func TestBatchBinaryMetricsCounters(t *testing.T) {
	_, ts, _, _ := newTestServer(t, Config{})
	for i := 0; i < 3; i++ {
		st, _, data := postFrame(t, ts.URL+"/v2/batch",
			&wire.BatchRequest{M: 10, Users: []uint32{0, 1, 2, 3}})
		if st != 200 {
			t.Fatalf("status %d: %s", st, data)
		}
	}
	var metrics map[string]any
	getJSON(t, ts.URL+"/metrics", &metrics)
	bb := metrics["batch_binary"].(map[string]any)
	if got := bb["requests"].(float64); got != 3 {
		t.Errorf("requests = %v, want 3", got)
	}
	if got := bb["users"].(float64); got != 12 {
		t.Errorf("users = %v, want 12", got)
	}
	if got := bb["bytes_out"].(float64); got < 3*wire.HeaderSize {
		t.Errorf("bytes_out = %v, want at least 3 headers' worth", got)
	}
}

// TestBatchBinaryDisabled: -binary-batch=false removes the endpoint
// entirely; the JSON surface is untouched.
func TestBatchBinaryDisabled(t *testing.T) {
	_, ts, _, _ := newTestServer(t, Config{DisableBinaryBatch: true})
	st, _, _ := postFrame(t, ts.URL+"/v2/batch", &wire.BatchRequest{M: 5, Users: []uint32{1}})
	if st != http.StatusNotFound {
		t.Fatalf("disabled endpoint: status %d, want 404", st)
	}
	var js BatchResponse
	if st := postJSON(t, ts.URL+"/v1/batch", BatchRequest{Users: []int{1}, M: 5}, &js); st != 200 {
		t.Fatalf("JSON batch with binary disabled: status %d", st)
	}
}

// TestShardTopMBinaryMatchesJSON: the binary shard endpoint returns the
// JSON shard partial bit-identically — items rebased to global ids,
// shard range and model version in the header — and enforces the same
// version pin with the same 409.
func TestShardTopMBinaryMatchesJSON(t *testing.T) {
	_, shards, _, _, _ := newShardTier(t, 2)
	for si, sts := range shards {
		req := ShardTopMRequest{User: 7, M: 12, ExcludeItems: []int{3, 41}}
		var js ShardTopMResponse
		if st := postJSON(t, sts.URL+"/v1/shard/topm", req, &js); st != 200 {
			t.Fatalf("shard %d JSON: status %d", si, st)
		}
		wreq := wire.BatchRequest{M: 12, Users: []uint32{7}, Exclude: []uint32{3, 41}}
		st, _, data := postFrame(t, sts.URL+"/v2/shard/topm", &wreq)
		if st != 200 {
			t.Fatalf("shard %d binary: status %d: %s", si, st, data)
		}
		bin := decodeFrame(t, data)
		if bin.Flags&wire.FlagShardPartial == 0 {
			t.Errorf("shard %d: partial flag not set", si)
		}
		if int(bin.ShardLo) != js.ShardLo || int(bin.ShardHi) != js.ShardHi {
			t.Errorf("shard %d: range [%d,%d), JSON [%d,%d)", si, bin.ShardLo, bin.ShardHi, js.ShardLo, js.ShardHi)
		}
		if bin.ModelVersion != js.ModelVersion {
			t.Errorf("shard %d: model version %d, JSON %d", si, bin.ModelVersion, js.ModelVersion)
		}
		if len(bin.Items) != len(js.Items) || int(bin.Counts[0]) != len(js.Items) {
			t.Fatalf("shard %d: %d items (count %d), JSON %d", si, len(bin.Items), bin.Counts[0], len(js.Items))
		}
		for n := range js.Items {
			if int(bin.Items[n]) != js.Items[n].Item {
				t.Errorf("shard %d rank %d: item %d, JSON %d", si, n, bin.Items[n], js.Items[n].Item)
			}
			if math.Float64bits(bin.Scores[n]) != math.Float64bits(js.Items[n].Score) {
				t.Errorf("shard %d rank %d: score %v, JSON %v", si, n, bin.Scores[n], js.Items[n].Score)
			}
		}
		// The version pin answers the same 409 as the JSON path, as JSON.
		wreq.ExpectVersion = js.ModelVersion + 41
		st, ct, data := postFrame(t, sts.URL+"/v2/shard/topm", &wreq)
		if st != http.StatusConflict || ct != "application/json" {
			t.Errorf("shard %d pin: status %d Content-Type %q (%s), want 409 JSON", si, st, ct, data)
		}
		// Multi-user frames are a shard-path protocol error.
		st, _, data = postFrame(t, sts.URL+"/v2/shard/topm",
			&wire.BatchRequest{M: 5, Users: []uint32{1, 2}})
		if st != http.StatusBadRequest {
			t.Errorf("shard %d multi-user: status %d (%s), want 400", si, st, data)
		}
	}
}

// benchBatch drives one transport's batch endpoint through the full HTTP
// handler with a warm cache, so the measured difference between the two
// benchmarks is transport cost (decode, response assembly, encode), not
// ranking.
func benchBatch(b *testing.B, path string, body []byte, nUsers int) {
	srv, _, _, _ := newTestServer(b, Config{})
	h := srv.Handler()
	run := func() *httptest.ResponseRecorder {
		r := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		return w
	}
	if w := run(); w.Code != 200 {
		b.Fatalf("warmup: status %d: %s", w.Code, w.Body.Bytes())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if w := run(); w.Code != 200 {
			b.Fatalf("status %d", w.Code)
		}
	}
	b.ReportMetric(float64(nUsers)*float64(b.N)/b.Elapsed().Seconds(), "users/sec")
}

func benchUsers() []int {
	users := make([]int, 256)
	for i := range users {
		users[i] = i % 120
	}
	return users
}

func BenchmarkBatchJSON(b *testing.B) {
	users := benchUsers()
	body, err := json.Marshal(BatchRequest{Users: users, M: 10})
	if err != nil {
		b.Fatal(err)
	}
	benchBatch(b, "/v1/batch", body, len(users))
}

func BenchmarkBatchBinary(b *testing.B) {
	users := benchUsers()
	req := wire.BatchRequest{M: 10}
	for _, u := range users {
		req.Users = append(req.Users, uint32(u))
	}
	benchBatch(b, "/v2/batch", mustFrame(b, &req), len(users))
}
