package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestGateAdmissionBounds(t *testing.T) {
	g := NewGate(2, 1, 30*time.Millisecond)

	rel1, ok := g.Acquire(context.Background())
	if !ok {
		t.Fatal("first acquire denied")
	}
	rel2, ok := g.Acquire(context.Background())
	if !ok {
		t.Fatal("second acquire denied")
	}
	if got := g.InFlight(); got != 2 {
		t.Fatalf("in-flight = %d, want 2", got)
	}

	// Both slots held: a third caller queues, waits out QueueWait, and
	// is shed without ever being admitted.
	start := time.Now()
	if _, ok := g.Acquire(context.Background()); ok {
		t.Fatal("third acquire admitted past the limit")
	}
	if el := time.Since(start); el < 20*time.Millisecond {
		t.Fatalf("shed after %v — the queue wait was not honored", el)
	}
	if got := g.InFlight(); got != 2 {
		t.Fatalf("in-flight after a shed = %d, want 2", got)
	}

	// Releasing frees the slot for the next caller; double release of
	// the same grant must not mint an extra slot.
	rel1()
	rel1()
	rel3, ok := g.Acquire(context.Background())
	if !ok {
		t.Fatal("acquire after release denied")
	}
	if _, ok := g.Acquire(context.Background()); ok {
		t.Fatal("double release minted an extra slot")
	}
	rel2()
	rel3()
	if got := g.InFlight(); got != 0 {
		t.Fatalf("in-flight after all releases = %d, want 0", got)
	}
	if got := g.Peak(); got != 2 {
		t.Errorf("peak = %d, want 2", got)
	}
	snap := g.Snapshot()
	if snap["admitted"].(int64) != 3 || snap["shed"].(int64) != 2 {
		t.Errorf("snapshot counters: %v", snap)
	}
}

func TestGateAcquireHonorsContext(t *testing.T) {
	g := NewGate(1, 1, time.Hour) // only the caller's context can end the wait
	rel, _ := g.Acquire(context.Background())
	defer rel()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, ok := g.Acquire(ctx); ok {
		t.Fatal("acquire admitted past the limit")
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("cancelled acquire waited %v", el)
	}
}

// TestGateWrapShedsWith429 drives Wrap through a real HTTP server: with
// every slot and queue position held, the overflow gets 429 +
// Retry-After immediately, and admitted requests finish untouched.
func TestGateWrapShedsWith429(t *testing.T) {
	const maxInFlight, maxQueue = 2, 1
	g := NewGate(maxInFlight, maxQueue, 50*time.Millisecond)
	release := make(chan struct{})
	entered := make(chan struct{}, 16)
	h := g.Wrap(func(w http.ResponseWriter, r *http.Request) int {
		entered <- struct{}{}
		<-release
		w.WriteHeader(http.StatusOK)
		return http.StatusOK
	})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { h(w, r) }))
	defer ts.Close()

	var wg sync.WaitGroup
	statuses := make(chan int, 8)
	retryAfter := make(chan string, 8)
	for i := 0; i < maxInFlight; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL)
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			statuses <- resp.StatusCode
		}()
	}
	// Wait until both fillers hold their slots before offering overflow.
	for i := 0; i < maxInFlight; i++ {
		select {
		case <-entered:
		case <-time.After(5 * time.Second):
			t.Fatal("fillers never reached the handler")
		}
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL)
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			statuses <- resp.StatusCode
			retryAfter <- resp.Header.Get("Retry-After")
		}()
	}
	time.Sleep(150 * time.Millisecond) // past QueueWait: overflow shed
	close(release)
	wg.Wait()
	close(statuses)
	close(retryAfter)

	var ok200, shed int
	for st := range statuses {
		switch st {
		case http.StatusOK:
			ok200++
		case http.StatusTooManyRequests:
			shed++
		default:
			t.Errorf("unexpected status %d", st)
		}
	}
	if ok200 != maxInFlight || shed != 4 {
		t.Fatalf("got %d ok / %d shed, want %d / 4", ok200, shed, maxInFlight)
	}
	for ra := range retryAfter {
		if ra != "1" {
			t.Errorf("Retry-After = %q, want \"1\"", ra)
		}
	}
	if peak := g.Peak(); peak > maxInFlight {
		t.Errorf("peak in-flight %d exceeds limit %d", peak, maxInFlight)
	}
}

// TestReadyzDrainOrdering is the drain-ordering regression test: after
// BeginDrain the readiness probe must flip to 503 (so the balancer
// stops sending traffic) while the data path keeps serving in-flight
// and stragglers, and liveness stays green throughout.
func TestReadyzDrainOrdering(t *testing.T) {
	srv, ts, _, _ := newTestServer(t, Config{})

	get := func(path string) (int, map[string]any) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		decodeInto(t, resp, &body)
		return resp.StatusCode, body
	}

	if st, body := get("/readyz"); st != 200 || body["ready"] != true {
		t.Fatalf("before drain: readyz %d %v", st, body)
	}
	if st, _ := get("/healthz"); st != 200 {
		t.Fatalf("before drain: healthz %d", st)
	}

	srv.BeginDrain()
	st, body := get("/readyz")
	if st != 503 || body["reason"] != "draining" {
		t.Fatalf("during drain: readyz %d %v, want 503 draining", st, body)
	}
	// Liveness is about the process, not the rotation: still green.
	if st, _ := get("/healthz"); st != 200 {
		t.Fatalf("during drain: healthz %d, want 200", st)
	}
	// The data path must keep serving while drained — stragglers and
	// in-flight requests finish normally.
	var rec RecommendResponse
	if st := postJSON(t, ts.URL+"/v1/recommend", RecommendRequest{User: 3, M: 5}, &rec); st != 200 {
		t.Fatalf("during drain: recommend %d, want 200", st)
	}
	if len(rec.Items) != 5 {
		t.Fatalf("during drain: served %d items, want 5", len(rec.Items))
	}
}

func decodeInto(t *testing.T, resp *http.Response, out any) {
	t.Helper()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// TestServerGateWiredIntoDataPath: a server configured with admission
// limits sheds data-plane overflow with 429 but never gates the control
// plane (healthz/readyz/metrics/reload must always answer).
func TestServerGateWiredIntoDataPath(t *testing.T) {
	srv, ts, _, _ := newTestServer(t, Config{MaxInFlight: 1, MaxQueue: 0, QueueWait: 10 * time.Millisecond})
	rel, ok := srv.Gate().Acquire(context.Background())
	if !ok {
		t.Fatal("could not hold the only slot")
	}
	if st := postJSON(t, ts.URL+"/v1/recommend", RecommendRequest{User: 1, M: 5}, nil); st != 429 {
		t.Fatalf("data path with gate full: status %d, want 429", st)
	}
	for _, path := range []string{"/healthz", "/readyz", "/metrics"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("control plane %s gated: status %d", path, resp.StatusCode)
		}
	}
	rel()
	if st := postJSON(t, ts.URL+"/v1/recommend", RecommendRequest{User: 1, M: 5}, nil); st != 200 {
		t.Fatalf("data path after release: status %d", st)
	}
}
