package serve

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/rank"
)

// shardRank is the shard paths' shared rank call (JSON and binary):
// the engine's partition top-M, with per-stage spans recorded when the
// request is traced.
func (s *Server) shardRank(act *obs.Active, sn *snapshot, user, m int, filters []rank.Filter) (items []int, scores []float64, cached bool) {
	if act == nil {
		return sn.engine.TopM(user, m, filters...)
	}
	var tm rank.Timings
	start := time.Now()
	items, scores, cached = sn.engine.TopMTimed(user, m, &tm, filters...)
	recordRankSpans(act, start, &tm)
	return items, scores, cached
}

// Shard mode: one serve process owning an item partition of the catalogue.
//
// A shard mmaps only its item-range slice of the v2 model file (full user
// sections, item rows [lo, hi)) and answers POST /v1/shard/topm with its
// partition's top-min(m, partition size) items under the engine's tie
// rule, item ids translated back to global. Because every item's score
// depends only on that item's factor row and the user's factor, partition
// scores are bit-identical to the corresponding entries of a
// full-catalogue scoring pass — so a router merging shard partials with
// rank.MergeTopM reproduces single-process serving exactly (same items,
// same float64 bits). See internal/cluster for the router.
//
// Shards are deliberately cacheless and stateless: the router owns the
// fingerprint cache and the singleflight, so a shard ranks every request
// it sees. They serve /v1/reload and /healthz for the trainer's quorum
// rollout, and nothing else of the full API — a shard cannot fold in,
// explain, or ingest.

// NewShardFromFile builds a shard-mode server serving the item range
// [cfg.ShardLo, cfg.ShardHi) of the v2 model at cfg.ModelPath.
// cfg.ShardHi == -1 means "through the end of the catalogue", re-resolved
// at every reload. Shard mode requires a v2 model file (the range mmap has
// no copying fallback) and refuses a Feed: ingest belongs on a full
// server or the router, not on a partition.
func NewShardFromFile(cfg Config) (*Server, error) {
	if !cfg.shardMode() {
		return nil, fmt.Errorf("serve: NewShardFromFile needs a shard range (ShardHi != 0)")
	}
	if cfg.ModelPath == "" {
		return nil, fmt.Errorf("serve: shard mode needs Config.ModelPath (shards serve from an mmapped v2 file)")
	}
	if cfg.ShardLo < 0 || (cfg.ShardHi != -1 && cfg.ShardHi <= cfg.ShardLo) {
		return nil, fmt.Errorf("serve: invalid shard range [%d,%d)", cfg.ShardLo, cfg.ShardHi)
	}
	if cfg.Feed != nil {
		return nil, fmt.Errorf("serve: shard mode takes no Feed (run ingest on a full server)")
	}
	if len(cfg.Stages) > 0 {
		return nil, fmt.Errorf("serve: shard mode takes no Stages (shards serve raw partials; the router applies stages once after the merge)")
	}
	if cfg.Registry != nil {
		return nil, fmt.Errorf("serve: shard mode takes no Registry (run the multi-model platform on full servers)")
	}
	cfg, err := checkLimits(cfg)
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, rankStats: &rank.Stats{}}
	s.gate = NewGate(cfg.MaxInFlight, cfg.MaxQueue, cfg.QueueWait)
	s.metrics = newMetrics(endpointNames, s.rankStats)
	s.tracer = newTracer(cfg)
	s.metrics.tracer = s.tracer
	rng, err := core.OpenMappedModelRange(cfg.ModelPath, cfg.ShardLo, cfg.ShardHi)
	if err != nil {
		return nil, err
	}
	if err := s.installShard(rng); err != nil {
		_ = rng.Close()
		return nil, err
	}
	s.mux = s.buildShardMux()
	return s, nil
}

// installShard swaps in a fresh shard snapshot, retiring the current one
// into the two-deep history (see Server.prev). Guarded by reloadMu, or
// single-threaded at construction.
func (s *Server) installShard(rng *core.MappedModelRange) error {
	train, err := s.trainFor(rng.NumUsers(), rng.NumItems())
	if err != nil {
		return err
	}
	if tags := s.cfg.ItemTags; tags != nil && tags.NumItems() > rng.NumItems() {
		return fmt.Errorf("serve: item tag table covers %d items but the model has %d",
			tags.NumItems(), rng.NumItems())
	}
	sn := &snapshot{
		rng:      rng,
		train:    train,
		version:  s.version.Add(1),
		loadedAt: time.Now(),
		// CacheSize -1 disables the engine cache: shards are cacheless by
		// design — the router caches merged lists under its own
		// epoch-qualified fingerprints.
		engine: rank.NewEngine(rangeScorer{rng}, rank.Config{CacheSize: -1, Stats: s.rankStats}),
	}
	if old := s.snap.Load(); old != nil {
		s.prev.Store(old)
	}
	s.snap.Store(sn)
	return nil
}

// rangeScorer adapts the item-range mapping to the engine's Scorer: the
// engine sees a catalogue of Len() partition-local items.
type rangeScorer struct{ rng *core.MappedModelRange }

func (r rangeScorer) ScoreUser(u int, dst []float64) { r.rng.ScoreItems(u, dst) }
func (r rangeScorer) NumItems() int                  { return r.rng.Len() }

// numUsers and numItems read the served catalogue shape in either mode —
// shard snapshots carry no *core.Model. numItems is always the FULL
// catalogue size, not the partition's: request validation (user ids,
// exclude lists, tag tables) speaks global ids on shards too.
func (sn *snapshot) numUsers() int {
	if sn.rng != nil {
		return sn.rng.NumUsers()
	}
	return sn.model.NumUsers()
}

func (sn *snapshot) numItems() int {
	if sn.rng != nil {
		return sn.rng.NumItems()
	}
	return sn.model.NumItems()
}

func (s *Server) buildShardMux() *http.ServeMux {
	// Only the data path is gated; reload, health, readiness and metrics
	// must keep working on an overloaded shard.
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/shard/topm", s.metrics.instrument("shard_topm", s.gate.Wrap(s.handleShardTopM)))
	if !s.cfg.DisableBinaryBatch {
		mux.HandleFunc("POST /v2/shard/topm", s.metrics.instrument("shard_topm_binary", s.gate.Wrap(s.handleShardTopMBinary)))
	}
	mux.HandleFunc("POST /v1/reload", s.metrics.instrument("reload", s.handleReload))
	mux.HandleFunc("GET /healthz", s.metrics.instrument("healthz", s.handleHealthz))
	mux.HandleFunc("GET /readyz", s.metrics.instrument("readyz", s.handleReadyz))
	mux.HandleFunc("GET /metrics", s.metrics.instrument("metrics", s.handleMetrics))
	mux.HandleFunc("GET /debug/traces", s.metrics.instrument("debug_traces", s.handleDebugTraces))
	return mux
}

// DeadlineHeader carries the caller's remaining deadline budget in
// integer milliseconds — the router stamps it on every shard call from
// the attempt context's deadline. A shard receiving it aborts work whose
// budget has already expired (504) instead of scoring for a caller that
// stopped listening. Absent or malformed, no deadline applies.
const DeadlineHeader = "X-Ocular-Deadline-Ms"

// deadlineFromHeader resolves the propagated budget to an absolute local
// deadline at arrival time. Network transit already spent part of the
// budget the router computed, so the resolved deadline errs late — the
// check is a work-shedding optimization, never a correctness gate.
func deadlineFromHeader(r *http.Request) (time.Time, bool) {
	v := r.Header.Get(DeadlineHeader)
	if v == "" {
		return time.Time{}, false
	}
	ms, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return time.Time{}, false
	}
	return time.Now().Add(time.Duration(ms) * time.Millisecond), true
}

// ShardTopMRequest asks a shard for its partition's contribution to one
// user's top-M. ExpectVersion pins the model version the partial must be
// computed against: a shard serving neither that version currently nor as
// its immediate predecessor answers 409, so a router can never merge
// partials from different model versions. 0 disables the pin (debugging).
type ShardTopMRequest struct {
	User          int         `json:"user"`
	M             int         `json:"m,omitempty"`
	ExcludeItems  []int       `json:"exclude_items,omitempty"`
	Filter        *FilterSpec `json:"filter,omitempty"`
	ExpectVersion uint64      `json:"expect_version,omitempty"`
}

// ShardTopMResponse is one partition's top-min(m, partition size) items,
// global ids, ordered by the engine's tie rule (descending score, ties by
// ascending item).
type ShardTopMResponse struct {
	User         int          `json:"user"`
	ShardLo      int          `json:"shard_lo"`
	ShardHi      int          `json:"shard_hi"`
	ModelVersion uint64       `json:"model_version"`
	Items        []ScoredItem `json:"items"`
}

func (s *Server) handleShardTopM(w http.ResponseWriter, r *http.Request) int {
	deadline, hasDeadline := deadlineFromHeader(r)
	var req ShardTopMRequest
	if err := s.decode(w, r, &req); err != nil {
		return writeError(w, http.StatusBadRequest, err.Error())
	}
	// First budget check after the body read: a slow client (or a router
	// whose attempt budget was nearly gone when it sent) should not get a
	// scoring pass it can no longer use.
	if hasDeadline && !time.Now().Before(deadline) {
		s.metrics.deadlineAborts.Add(1)
		return writeError(w, http.StatusGatewayTimeout, "deadline budget expired before scoring")
	}
	m, err := s.clampM(req.M)
	if err != nil {
		return writeError(w, http.StatusBadRequest, err.Error())
	}
	sn := s.snap.Load()
	if req.ExpectVersion != 0 && sn.version != req.ExpectVersion {
		// Mid-rollout window: this shard already reloaded but the router
		// still pins the old version until the whole quorum confirmed.
		// Serve the pinned version from the two-deep history; refuse
		// anything else — a 409 here is what makes merging partials of
		// mixed model versions impossible rather than merely unlikely.
		if prev := s.prev.Load(); prev != nil && prev.version == req.ExpectVersion {
			sn = prev
		} else {
			return writeError(w, http.StatusConflict, fmt.Sprintf(
				"shard serves model version %d, not the requested %d", sn.version, req.ExpectVersion))
		}
	}
	if req.User < 0 || req.User >= sn.numUsers() {
		return writeError(w, http.StatusBadRequest,
			fmt.Sprintf("user %d out of range (%d users)", req.User, sn.numUsers()))
	}
	extra, err := s.requestFilters(sn, req.ExcludeItems, req.Filter)
	if err != nil {
		return writeError(w, http.StatusBadRequest, err.Error())
	}
	// Same filter stack as recommendOne, rebased into partition-local
	// index space; the training-row exclusion keeps the offline protocol
	// on shards too.
	lo, hi := sn.rng.ItemLo(), sn.rng.ItemHi()
	filters := make([]rank.Filter, 0, len(extra)+1)
	filters = append(filters, rank.OffsetRange(rank.TrainRow(sn.train, req.User), lo, hi))
	for _, f := range extra {
		filters = append(filters, rank.OffsetRange(f, lo, hi))
	}
	// Second check on the brink of the expensive part — the full
	// partition scoring pass is the work worth shedding.
	if hasDeadline && !time.Now().Before(deadline) {
		s.metrics.deadlineAborts.Add(1)
		return writeError(w, http.StatusGatewayTimeout, "deadline budget expired before scoring")
	}
	items, scores, _ := s.shardRank(obs.ActiveFrom(r.Context()), sn, req.User, m, filters)
	scored := make([]ScoredItem, len(items))
	for n := range items {
		scored[n] = ScoredItem{Item: items[n] + lo, Score: scores[n]}
	}
	return writeJSON(w, http.StatusOK, ShardTopMResponse{
		User:         req.User,
		ShardLo:      lo,
		ShardHi:      hi,
		ModelVersion: sn.version,
		Items:        scored,
	})
}
