package serve

import (
	"context"
	"expvar"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Gate is the admission controller of the serving tier: a bounded
// concurrency semaphore with a short, bounded wait queue in front of it.
// A request either gets a slot (possibly after queueing up to the wait
// bound), or is shed immediately with 429 + Retry-After. Shedding at
// admission — before decode, before the score path — is what keeps the
// pooled score buffers and in-flight work bounded under overload: excess
// load costs one queue-counter increment, not a scoring pass.
//
// A nil *Gate admits everything (admission control disabled); all
// methods are nil-safe.
type Gate struct {
	slots    chan struct{} // buffered; one token per in-flight request
	maxQueue int64
	wait     time.Duration

	queued   atomic.Int64 // requests currently waiting for a slot
	inFlight atomic.Int64
	peak     atomic.Int64 // high-water mark of inFlight

	admitted    expvar.Int
	shed        expvar.Int
	queuedTotal expvar.Int // admitted requests that had to wait
}

// NewGate builds a gate admitting at most maxInFlight concurrent
// requests with up to maxQueue more waiting at most wait for a slot.
// maxInFlight <= 0 returns nil (disabled). maxQueue 0 defaults to
// 2×maxInFlight; negative means no queue (instant shed when saturated).
// wait <= 0 defaults to 100ms.
func NewGate(maxInFlight, maxQueue int, wait time.Duration) *Gate {
	if maxInFlight <= 0 {
		return nil
	}
	if maxQueue == 0 {
		maxQueue = 2 * maxInFlight
	} else if maxQueue < 0 {
		maxQueue = 0
	}
	if wait <= 0 {
		wait = 100 * time.Millisecond
	}
	return &Gate{
		slots:    make(chan struct{}, maxInFlight),
		maxQueue: int64(maxQueue),
		wait:     wait,
	}
}

// Acquire tries to admit one request. On success it returns ok=true and
// a release function the caller must invoke exactly when the request's
// work is done (release is idempotent). ok=false means the request was
// shed: the queue was full, the queue wait elapsed, or ctx was done
// first. An admitted request is never shed mid-flight — once Acquire
// returns true, the slot is the caller's until release.
func (g *Gate) Acquire(ctx context.Context) (release func(), ok bool) {
	if g == nil {
		return func() {}, true
	}
	select {
	case g.slots <- struct{}{}:
		return g.admit(), true
	default:
	}
	// Saturated: try the queue. Add-then-check keeps the bound exact
	// under concurrent arrivals — the loser of a race over the last
	// queue place backs out instead of overshooting.
	if g.queued.Add(1) > g.maxQueue {
		g.queued.Add(-1)
		g.shed.Add(1)
		return nil, false
	}
	g.queuedTotal.Add(1)
	timer := time.NewTimer(g.wait)
	defer timer.Stop()
	select {
	case g.slots <- struct{}{}:
		g.queued.Add(-1)
		return g.admit(), true
	case <-timer.C:
	case <-ctx.Done():
	}
	g.queued.Add(-1)
	g.shed.Add(1)
	return nil, false
}

// admit records the admission and returns the idempotent release.
func (g *Gate) admit() func() {
	g.admitted.Add(1)
	n := g.inFlight.Add(1)
	for {
		p := g.peak.Load()
		if n <= p || g.peak.CompareAndSwap(p, n) {
			break
		}
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			g.inFlight.Add(-1)
			<-g.slots
		})
	}
}

// Wrap gates an instrumentable handler: shed requests get 429 with a
// Retry-After hint and never reach h. A nil gate returns h unchanged.
func (g *Gate) Wrap(h func(http.ResponseWriter, *http.Request) int) func(http.ResponseWriter, *http.Request) int {
	if g == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) int {
		release, ok := g.Acquire(r.Context())
		if !ok {
			w.Header().Set("Retry-After", "1")
			return writeError(w, http.StatusTooManyRequests, "overloaded: admission queue full")
		}
		defer release()
		return h(w, r)
	}
}

// InFlight returns the number of currently admitted requests.
func (g *Gate) InFlight() int64 {
	if g == nil {
		return 0
	}
	return g.inFlight.Load()
}

// Peak returns the high-water mark of concurrently admitted requests —
// the overload test's proof that admission actually bounds work.
func (g *Gate) Peak() int64 {
	if g == nil {
		return 0
	}
	return g.peak.Load()
}

// Snapshot renders the gate's counters for /metrics; nil for a disabled
// gate.
func (g *Gate) Snapshot() map[string]any {
	if g == nil {
		return nil
	}
	return map[string]any{
		"max_in_flight":  int64(cap(g.slots)),
		"max_queue":      g.maxQueue,
		"in_flight":      g.inFlight.Load(),
		"peak_in_flight": g.peak.Load(),
		"queued":         g.queued.Load(),
		"admitted":       g.admitted.Value(),
		"queued_total":   g.queuedTotal.Value(),
		"shed":           g.shed.Value(),
	}
}
