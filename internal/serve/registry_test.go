package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/feed"
	"repro/internal/rank"
	"repro/internal/sparse"
)

// TestArmBucketPinned pins the user→arm hash. These vectors are part of
// the platform's compatibility surface: if this test fails, a redeploy
// would silently reshuffle which experiment arm every user sees,
// invalidating any A/B readout in flight. Never "fix" the expectations —
// fix the hash.
func TestArmBucketPinned(t *testing.T) {
	cases := []struct {
		exp    string
		user   int
		bucket uint64
	}{
		{"ranker-v2", 0, 7},
		{"ranker-v2", 1, 8},
		{"ranker-v2", 2, 9},
		{"ranker-v2", 3, 0},
		{"ranker-v2", 4, 1},
		{"ranker-v2", 5, 2},
		{"ranker-v2", 6, 3},
		{"ranker-v2", 7, 4},
		{"ranker-v2", 41, 0},
		{"ranker-v2", 119, 4},
		// The experiment name seeds the hash: a different experiment
		// shuffles users independently.
		{"other-exp", 0, 5},
		{"other-exp", 1, 6},
		{"other-exp", 2, 7},
		{"other-exp", 3, 8},
	}
	for _, c := range cases {
		if got := armBucket(c.exp, c.user, 10); got != c.bucket {
			t.Errorf("armBucket(%q, %d, 10) = %d, want %d", c.exp, c.user, got, c.bucket)
		}
	}
}

// regFixture is a registry-enabled test server: a default model (seed 3,
// exactly newTestServer's) plus named champion/candidate models trained
// with different seeds so their rankings genuinely differ.
type regFixture struct {
	srv                 *Server
	ts                  *httptest.Server
	champion, candidate *core.Model
	train               *sparse.Matrix
	champPath, candPath string
}

// baseRegistry is the two-model, one-tenant configuration most tests
// start from: tenant "acme" splits ranker-v2 across control (champion,
// weight 9) and treatment (candidate, weight 1).
func baseRegistry(champPath, candPath string) *RegistryConfig {
	return &RegistryConfig{
		Models: map[string]ModelSpec{
			"champion":  {Path: champPath},
			"candidate": {Path: candPath},
		},
		Tenants: map[string]TenantSpec{
			"acme": {Experiment: &ExperimentSpec{
				Name: "ranker-v2",
				Arms: []ArmSpec{
					{Name: "control", Model: "champion", Weight: 9},
					{Name: "treatment", Model: "candidate", Weight: 1},
				},
			}},
		},
	}
}

func newRegistryServer(t testing.TB, cfg Config, mutate func(*RegistryConfig)) *regFixture {
	t.Helper()
	train := dataset.SyntheticSmall(1).Dataset.R
	champion := trainSmall(t, train, 11)
	candidate := trainSmall(t, train, 22)
	model := trainSmall(t, train, 3)
	dir := t.TempDir()
	f := &regFixture{
		champion: champion, candidate: candidate, train: train,
		champPath: filepath.Join(dir, "champion.bin"),
		candPath:  filepath.Join(dir, "candidate.bin"),
	}
	for path, m := range map[string]*core.Model{
		f.champPath:                     champion,
		f.candPath:                      candidate,
		filepath.Join(dir, "model.bin"): model,
	} {
		if err := m.SaveModelFile(path); err != nil {
			t.Fatal(err)
		}
	}
	rc := baseRegistry(f.champPath, f.candPath)
	if mutate != nil {
		mutate(rc)
	}
	cfg.Registry = rc
	cfg.ModelPath = filepath.Join(dir, "model.bin")
	cfg.Train = train
	cfg.FoldIn = foldInCfg
	srv, err := NewFromFile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.ShadowFlush()
		if err := srv.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	f.srv = srv
	f.ts = httptest.NewServer(srv.Handler())
	t.Cleanup(f.ts.Close)
	return f
}

// wantArm mirrors the acme experiment's routing: bucket 9 of 10 is
// treatment, everything below is control. The armBucket values themselves
// are pinned by TestArmBucketPinned.
func wantArm(user int) (arm, model string) {
	if armBucket("ranker-v2", user, 10) < 9 {
		return "control", "champion"
	}
	return "treatment", "candidate"
}

// TestRegistryABSplit: tenant-routed requests resolve deterministically
// to an arm, serve that arm's model bit-identically to in-process
// evaluation, and label the response with tenant/experiment/arm/model.
func TestRegistryABSplit(t *testing.T) {
	f := newRegistryServer(t, Config{}, nil)
	users := []int{0, 1, 2, 3, 7, 41, 119}
	sawControl, sawTreatment := false, false
	for _, u := range users {
		var got RecommendResponse
		if st := postJSON(t, f.ts.URL+"/v1/recommend",
			RecommendRequest{User: u, M: 10, Tenant: "acme"}, &got); st != 200 {
			t.Fatalf("user %d: status %d", u, st)
		}
		arm, modelName := wantArm(u)
		model := f.champion
		if arm == "treatment" {
			model = f.candidate
			sawTreatment = true
		} else {
			sawControl = true
		}
		if got.Tenant != "acme" || got.Experiment != "ranker-v2" || got.Arm != arm || got.Model != modelName {
			t.Fatalf("user %d: labels tenant=%q exp=%q arm=%q model=%q, want acme/ranker-v2/%s/%s",
				u, got.Tenant, got.Experiment, got.Arm, got.Model, arm, modelName)
		}
		if got.ModelVersion != 1 {
			t.Errorf("user %d: model_version %d, want 1", u, got.ModelVersion)
		}
		want := eval.TopM(model, f.train, u, 10, nil)
		if len(got.Items) != len(want) {
			t.Fatalf("user %d: %d items, want %d", u, len(got.Items), len(want))
		}
		for n, it := range got.Items {
			if it.Item != want[n] || it.Score != model.Predict(u, it.Item) {
				t.Errorf("user %d rank %d: (%d, %v), want (%d, %v)",
					u, n, it.Item, it.Score, want[n], model.Predict(u, want[n]))
			}
		}
		// Same user, same request → same arm, now served from the arm's
		// own cache.
		var again RecommendResponse
		postJSON(t, f.ts.URL+"/v1/recommend", RecommendRequest{User: u, M: 10, Tenant: "acme"}, &again)
		if again.Arm != arm || !again.Cached {
			t.Errorf("user %d repeat: arm=%q cached=%v, want %q/true", u, again.Arm, again.Cached, arm)
		}
	}
	if !sawControl || !sawTreatment {
		t.Fatalf("test users covered control=%v treatment=%v, want both", sawControl, sawTreatment)
	}
}

// TestRegistryBatchSplitsAcrossArms: one tenant-routed batch resolves
// each user to its own arm, exactly like single requests would.
func TestRegistryBatchSplitsAcrossArms(t *testing.T) {
	f := newRegistryServer(t, Config{}, nil)
	users := []int{0, 1, 2, 3, 7}
	var batch BatchResponse
	if st := postJSON(t, f.ts.URL+"/v1/batch",
		BatchRequest{Users: users, M: 5, Tenant: "acme"}, &batch); st != 200 {
		t.Fatalf("batch status %d", st)
	}
	for n, u := range users {
		res := batch.Results[n]
		arm, _ := wantArm(u)
		if res.Arm != arm || res.ArmModelVersion != 1 {
			t.Errorf("user %d: arm=%q version=%d, want %q/1", u, res.Arm, res.ArmModelVersion, arm)
		}
		var single RecommendResponse
		postJSON(t, f.ts.URL+"/v1/recommend", RecommendRequest{User: u, M: 5, Tenant: "acme"}, &single)
		if fmt.Sprint(res.Items) != fmt.Sprint(single.Items) {
			t.Errorf("user %d: batch items %v != single items %v", u, res.Items, single.Items)
		}
	}
	// A failing user reports its arm so the error lands in the right
	// per-arm readout.
	postJSON(t, f.ts.URL+"/v1/batch", BatchRequest{Users: []int{1 << 20}, Tenant: "acme"}, &batch)
	if batch.Results[0].Error == "" || batch.Results[0].Arm == "" {
		t.Errorf("out-of-range user: error=%q arm=%q, want both set", batch.Results[0].Error, batch.Results[0].Arm)
	}
}

// TestUnknownTenantRejected: every tenant-accepting endpoint answers an
// unregistered tenant with the JSON 404 {code:"unknown_tenant"} — never a
// silent fall-through to the default model or feed. A registered tenant
// with no experiment is just as unknown to the query path.
func TestUnknownTenantRejected(t *testing.T) {
	f := newRegistryServer(t, Config{}, func(rc *RegistryConfig) {
		rc.Tenants["beta"] = TenantSpec{} // no experiment, no feed
	})
	check := func(name, url string, body any) {
		t.Helper()
		resp, err := http.Post(url, "application/json", bytes.NewReader(mustMarshal(t, body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out struct {
			Code  string `json:"code"`
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusNotFound || out.Code != "unknown_tenant" {
			t.Errorf("%s: status %d code %q, want 404 unknown_tenant", name, resp.StatusCode, out.Code)
		}
		if !strings.Contains(out.Error, "ghost") && !strings.Contains(out.Error, "beta") {
			t.Errorf("%s: error %q does not name the tenant", name, out.Error)
		}
	}
	check("recommend", f.ts.URL+"/v1/recommend", RecommendRequest{User: 1, Tenant: "ghost"})
	check("batch", f.ts.URL+"/v1/batch", BatchRequest{Users: []int{1}, Tenant: "ghost"})
	check("ingest", f.ts.URL+"/v1/ingest", map[string]any{"user": 1, "items": []int{2}, "tenant": "ghost"})
	check("recommend, tenant without experiment", f.ts.URL+"/v1/recommend", RecommendRequest{User: 1, Tenant: "beta"})

	// Without a registry at all, a tenant-routed request is still a loud
	// 404 — not the default model under a wrong label.
	_, ts, _, _ := newTestServer(t, Config{})
	var out map[string]any
	if st := postJSON(t, ts.URL+"/v1/recommend", RecommendRequest{User: 1, Tenant: "acme"}, &out); st != 404 {
		t.Errorf("registry-less tenant request: status %d, want 404", st)
	}
	if out["code"] != "unknown_tenant" {
		t.Errorf("registry-less tenant request: code %v, want unknown_tenant", out["code"])
	}
}

func mustMarshal(t testing.TB, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestDefaultPathWireFormatUnchanged: with a registry configured, a
// request without a tenant returns byte-identical JSON to a registry-less
// server over the same model — the multi-model platform is invisible to
// existing clients.
func TestDefaultPathWireFormatUnchanged(t *testing.T) {
	f := newRegistryServer(t, Config{}, nil)
	_, plain, _, _ := newTestServer(t, Config{})
	for _, body := range []string{
		`{"user":7,"m":10}`,
		`{"user":42,"m":5,"exclude_items":[1,2]}`,
		`{"users":[3,1,4],"m":5}`,
	} {
		path := "/v1/recommend"
		if strings.Contains(body, "users") {
			path = "/v1/batch"
		}
		raw := func(base string) []byte {
			resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			data, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != 200 {
				t.Fatalf("%s %s: status %d (%s)", path, body, resp.StatusCode, data)
			}
			return data
		}
		got, want := raw(f.ts.URL), raw(plain.URL)
		if !bytes.Equal(got, want) {
			t.Errorf("%s %s:\nregistry server: %s\nplain server:    %s", path, body, got, want)
		}
		for _, key := range []string{"tenant", "experiment", "arm", `"model"`} {
			if bytes.Contains(got, []byte(key)) {
				t.Errorf("%s %s: default-path response leaks %s: %s", path, body, key, got)
			}
		}
	}
}

// TestRegistryTenantFeedPartition: tenant-tagged ingest events land in
// the tenant's own feed partition — the log the trainer replays for that
// tenant — and never in the default feed (or vice versa).
func TestRegistryTenantFeedPartition(t *testing.T) {
	defDir, acmeDir := t.TempDir(), filepath.Join(t.TempDir(), "acme")
	defLog, err := feed.Open(defDir, feed.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer defLog.Close()
	f := newRegistryServer(t, Config{Feed: defLog}, func(rc *RegistryConfig) {
		acme := rc.Tenants["acme"]
		acme.FeedDir = acmeDir
		rc.Tenants["acme"] = acme
		rc.Tenants["nofeed"] = TenantSpec{Experiment: &ExperimentSpec{
			Name: "solo", Arms: []ArmSpec{{Name: "only", Model: "champion"}},
		}}
	})

	var resp IngestResponse
	if st := postJSON(t, f.ts.URL+"/v1/ingest",
		map[string]any{"user": 3, "items": []int{1, 2}, "tenant": "acme"}, &resp); st != 200 {
		t.Fatalf("tenant ingest status %d", st)
	}
	if resp.Appended != 2 || resp.FeedPositives != 2 {
		t.Fatalf("tenant ingest response %+v, want 2 appended / 2 positives", resp)
	}
	if st := postJSON(t, f.ts.URL+"/v1/ingest", map[string]any{"user": 9, "items": []int{4}}, &resp); st != 200 {
		t.Fatalf("default ingest status %d", st)
	}

	// The partitions never mix: the tenant's two events are in its log,
	// the untagged event in the default log.
	events, err := feed.Events(acmeDir)
	if err != nil {
		t.Fatal(err)
	}
	want := []feed.Event{{User: 3, Item: 1}, {User: 3, Item: 2}}
	if fmt.Sprint(events) != fmt.Sprint(want) {
		t.Fatalf("acme partition = %v, want %v", events, want)
	}
	if got := defLog.Count(); got != 1 {
		t.Fatalf("default feed count %d, want 1", got)
	}

	// healthz reports the partition backlog under the tenant.
	var health map[string]any
	getJSON(t, f.ts.URL+"/healthz", &health)
	acme := health["tenants"].(map[string]any)["acme"].(map[string]any)
	if got := acme["feed_positives"]; got != float64(2) {
		t.Errorf("healthz tenants.acme.feed_positives = %v, want 2", got)
	}

	// A registered tenant without a feed partition is a 503 (operator
	// mistake), not a silent write to the default feed.
	var out map[string]string
	if st := postJSON(t, f.ts.URL+"/v1/ingest",
		map[string]any{"user": 1, "items": []int{2}, "tenant": "nofeed"}, &out); st != http.StatusServiceUnavailable {
		t.Fatalf("feedless tenant ingest: status %d, want 503", st)
	}
	if !strings.Contains(out["error"], "feed_dir") {
		t.Errorf("feedless tenant error %q does not point at feed_dir", out["error"])
	}
	if got := defLog.Count(); got != 1 {
		t.Errorf("default feed count %d after rejected tenant ingest, want 1", got)
	}
}

// TestRegistryNamedReload: POST /v1/reload {"model": name} re-reads one
// named model, advancing only its version counter; the default model and
// the other named models are untouched. An unknown name is the JSON 404
// {code:"unknown_model"}.
func TestRegistryNamedReload(t *testing.T) {
	f := newRegistryServer(t, Config{}, nil)
	candidate2 := trainSmall(t, f.train, 33)
	if err := candidate2.SaveModelFile(f.candPath); err != nil {
		t.Fatal(err)
	}

	var resp ReloadResponse
	if st := postJSON(t, f.ts.URL+"/v1/reload", ReloadRequest{Model: "candidate"}, &resp); st != 200 {
		t.Fatalf("named reload status %d", st)
	}
	if resp.ModelVersion != 2 || resp.Name != "candidate" {
		t.Fatalf("named reload response %+v, want version 2 of candidate", resp)
	}
	if resp.Model != candidate2.String() {
		t.Errorf("reload model = %q, want %q", resp.Model, candidate2.String())
	}

	var health map[string]any
	getJSON(t, f.ts.URL+"/healthz", &health)
	models := health["models"].(map[string]any)
	if v := models["candidate"].(map[string]any)["model_version"]; v != float64(2) {
		t.Errorf("candidate version %v after named reload, want 2", v)
	}
	if v := models["champion"].(map[string]any)["model_version"]; v != float64(1) {
		t.Errorf("champion version %v after candidate reload, want 1", v)
	}
	if v := health["model_version"]; v != float64(1) {
		t.Errorf("default model version %v after named reload, want 1", v)
	}

	// Treatment users now rank through the new candidate.
	u := 2 // pinned: bucket 9 → treatment
	var got RecommendResponse
	postJSON(t, f.ts.URL+"/v1/recommend", RecommendRequest{User: u, M: 10, Tenant: "acme"}, &got)
	if got.ModelVersion != 2 {
		t.Fatalf("treatment model_version %d after reload, want 2", got.ModelVersion)
	}
	want := eval.TopM(candidate2, f.train, u, 10, nil)
	for n, it := range got.Items {
		if it.Item != want[n] {
			t.Errorf("rank %d: item %d, want %d (new candidate)", n, it.Item, want[n])
		}
	}

	// Unknown names fail loudly.
	var errOut map[string]any
	if st := postJSON(t, f.ts.URL+"/v1/reload", ReloadRequest{Model: "ghost"}, &errOut); st != 404 {
		t.Fatalf("unknown model reload: status %d, want 404", st)
	}
	if errOut["code"] != "unknown_model" {
		t.Errorf("unknown model reload: code %v, want unknown_model", errOut["code"])
	}

	// The default reload path (empty body) still works and leaves named
	// models alone.
	var defResp ReloadResponse
	if st := postJSON(t, f.ts.URL+"/v1/reload", struct{}{}, &defResp); st != 200 {
		t.Fatalf("default reload status %d", st)
	}
	if defResp.ModelVersion != 2 || defResp.Name != "" {
		t.Errorf("default reload response %+v, want unnamed version 2", defResp)
	}
	getJSON(t, f.ts.URL+"/healthz", &health)
	if v := health["models"].(map[string]any)["candidate"].(map[string]any)["model_version"]; v != float64(2) {
		t.Errorf("candidate version %v after default reload, want still 2", v)
	}
}

// TestRegistryStagedArm: an arm's stage config re-ranks its responses,
// bit-identical to the staged engine over the same model, while the other
// arm stays unstaged.
func TestRegistryStagedArm(t *testing.T) {
	specs := []StageSpec{
		{Type: "floor", Min: 0.05},
		{Type: "diversify", Lambda: 0.7, Factor: 4},
	}
	f := newRegistryServer(t, Config{}, func(rc *RegistryConfig) {
		acme := rc.Tenants["acme"]
		acme.Experiment.Arms[1].Stages = specs
		rc.Tenants["acme"] = acme
	})
	stages, err := BuildStages(specs, nil, f.candidate)
	if err != nil {
		t.Fatal(err)
	}
	ref := rank.NewEngine(core.Scorer(f.candidate), rank.Config{CacheSize: -1})
	u := 2 // pinned: treatment
	var got RecommendResponse
	if st := postJSON(t, f.ts.URL+"/v1/recommend",
		RecommendRequest{User: u, M: 10, Tenant: "acme"}, &got); st != 200 {
		t.Fatalf("status %d", st)
	}
	items, scores, _ := ref.TopMStaged(u, 10, stages, rank.TrainRow(f.train, u))
	if len(got.Items) != len(items) {
		t.Fatalf("%d items, want %d", len(got.Items), len(items))
	}
	for n := range items {
		if got.Items[n].Item != items[n] || got.Items[n].Score != scores[n] {
			t.Errorf("rank %d: (%d, %v), want (%d, %v)",
				n, got.Items[n].Item, got.Items[n].Score, items[n], scores[n])
		}
	}
	// The control arm is unstaged: plain top-M of the champion.
	u = 0 // pinned: control
	postJSON(t, f.ts.URL+"/v1/recommend", RecommendRequest{User: u, M: 10, Tenant: "acme"}, &got)
	want := eval.TopM(f.champion, f.train, u, 10, nil)
	for n, it := range got.Items {
		if it.Item != want[n] {
			t.Errorf("control rank %d: item %d, want %d", n, it.Item, want[n])
		}
	}
}

// syncWriter lets the test read the shadow log without racing the
// comparison goroutines' writes (each write already holds the shadower's
// logMu, but the test's read does not).
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) bytes() []byte {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]byte(nil), w.buf.Bytes()...)
}

// TestShadowComparisonLogsDiffs: with sampling at 1.0 every tenant
// request is mirrored against the candidate model off the response path;
// the diff log carries one JSON record per request and /metrics counts
// the comparisons under the tenant's shadow subtree.
func TestShadowComparisonLogsDiffs(t *testing.T) {
	logW := &syncWriter{}
	f := newRegistryServer(t, Config{ShadowLog: logW}, func(rc *RegistryConfig) {
		acme := rc.Tenants["acme"]
		acme.Shadow = &ShadowSpec{Model: "candidate", Sample: 1}
		rc.Tenants["acme"] = acme
	})
	users := []int{0, 1, 3} // pinned: all control, so primary=champion vs shadow=candidate
	for _, u := range users {
		var got RecommendResponse
		if st := postJSON(t, f.ts.URL+"/v1/recommend",
			RecommendRequest{User: u, M: 10, Tenant: "acme"}, &got); st != 200 {
			t.Fatalf("user %d: status %d", u, st)
		}
		// The shadow never touches the response: it is still the arm's
		// model, bit for bit.
		want := eval.TopM(f.champion, f.train, u, 10, nil)
		for n, it := range got.Items {
			if it.Item != want[n] {
				t.Errorf("user %d rank %d: item %d, want %d (champion)", u, n, it.Item, want[n])
			}
		}
	}
	f.srv.ShadowFlush()

	lines := bytes.Split(bytes.TrimSpace(logW.bytes()), []byte("\n"))
	if len(lines) != len(users) {
		t.Fatalf("%d shadow records, want %d: %s", len(lines), len(users), logW.bytes())
	}
	seen := map[int]bool{}
	for _, line := range lines {
		var rec shadowRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("bad shadow record %s: %v", line, err)
		}
		seen[rec.User] = true
		if rec.Tenant != "acme" || rec.Arm != "control" ||
			rec.PrimaryModel != "champion" || rec.ShadowModel != "candidate" {
			t.Errorf("record labels %+v, want acme/control champion→candidate", rec)
		}
		if rec.M != 10 || rec.Error != "" {
			t.Errorf("record %+v: m/error unexpected", rec)
		}
		// Champion seed 11 vs candidate seed 22: the shadow list is the
		// candidate's own ranking.
		wantShadow := eval.TopM(f.candidate, f.train, rec.User, 10, nil)
		if fmt.Sprint(rec.ShadowItems) != fmt.Sprint(wantShadow) {
			t.Errorf("user %d shadow items %v, want %v", rec.User, rec.ShadowItems, wantShadow)
		}
		if fmt.Sprint(rec.PrimaryItems) == fmt.Sprint(rec.ShadowItems) && rec.RankDiffs != 0 {
			t.Errorf("user %d: identical lists but rank_diffs=%d", rec.User, rec.RankDiffs)
		}
	}
	for _, u := range users {
		if !seen[u] {
			t.Errorf("no shadow record for user %d", u)
		}
	}

	var metrics map[string]any
	getJSON(t, f.ts.URL+"/metrics", &metrics)
	shadow := metrics["tenants"].(map[string]any)["acme"].(map[string]any)["shadow"].(map[string]any)
	if shadow["model"] != "candidate" || shadow["sampled"] != float64(len(users)) {
		t.Errorf("shadow metrics %v, want candidate with %d sampled", shadow, len(users))
	}
}

// TestShadowSampleZeroNeverLogs: sample 0 is a true off switch — no
// goroutines, no records, no sampled count.
func TestShadowSampleZeroNeverLogs(t *testing.T) {
	logW := &syncWriter{}
	f := newRegistryServer(t, Config{ShadowLog: logW}, func(rc *RegistryConfig) {
		acme := rc.Tenants["acme"]
		acme.Shadow = &ShadowSpec{Model: "candidate", Sample: 0}
		rc.Tenants["acme"] = acme
	})
	for u := 0; u < 32; u++ {
		postJSON(t, f.ts.URL+"/v1/recommend", RecommendRequest{User: u, M: 5, Tenant: "acme"}, nil)
	}
	f.srv.ShadowFlush()
	if got := logW.bytes(); len(got) != 0 {
		t.Errorf("shadow log written at sample 0: %s", got)
	}
	var metrics map[string]any
	getJSON(t, f.ts.URL+"/metrics", &metrics)
	shadow := metrics["tenants"].(map[string]any)["acme"].(map[string]any)["shadow"].(map[string]any)
	if shadow["sampled"] != float64(0) {
		t.Errorf("sampled = %v at sample 0, want 0", shadow["sampled"])
	}
}

// TestRegistryPerArmMetrics: /metrics cuts request, error and cache
// counters per arm — the labels an A/B readout is aggregated by.
func TestRegistryPerArmMetrics(t *testing.T) {
	f := newRegistryServer(t, Config{}, nil)
	// user 0 → control twice (miss + hit); user 2 → treatment once; one
	// out-of-range error lands on whatever arm its hash picks.
	postJSON(t, f.ts.URL+"/v1/recommend", RecommendRequest{User: 0, M: 5, Tenant: "acme"}, nil)
	postJSON(t, f.ts.URL+"/v1/recommend", RecommendRequest{User: 0, M: 5, Tenant: "acme"}, nil)
	postJSON(t, f.ts.URL+"/v1/recommend", RecommendRequest{User: 2, M: 5, Tenant: "acme"}, nil)
	badUser := 1 << 20
	badArm, _ := wantArm(badUser)
	if st := postJSON(t, f.ts.URL+"/v1/recommend",
		RecommendRequest{User: badUser, M: 5, Tenant: "acme"}, nil); st != 400 {
		t.Fatalf("out-of-range user: status %d, want 400", st)
	}

	var metrics map[string]any
	getJSON(t, f.ts.URL+"/metrics", &metrics)
	acme := metrics["tenants"].(map[string]any)["acme"].(map[string]any)
	if acme["experiment"] != "ranker-v2" {
		t.Fatalf("metrics experiment = %v", acme["experiment"])
	}
	arms := acme["arms"].(map[string]any)
	control := arms["control"].(map[string]any)
	treatment := arms["treatment"].(map[string]any)
	wantControlReqs, wantTreatmentReqs := float64(2), float64(1)
	wantErrs := map[string]float64{"control": 0, "treatment": 0}
	wantErrs[badArm] = 1
	if control["requests"] != wantControlReqs || control["errors"] != wantErrs["control"] {
		t.Errorf("control requests=%v errors=%v, want %v/%v",
			control["requests"], control["errors"], wantControlReqs, wantErrs["control"])
	}
	if treatment["requests"] != wantTreatmentReqs || treatment["errors"] != wantErrs["treatment"] {
		t.Errorf("treatment requests=%v errors=%v, want %v/%v",
			treatment["requests"], treatment["errors"], wantTreatmentReqs, wantErrs["treatment"])
	}
	if control["model"] != "champion" || treatment["model"] != "candidate" {
		t.Errorf("arm models %v/%v, want champion/candidate", control["model"], treatment["model"])
	}
	cache := control["cache"].(map[string]any)
	if cache["hits"] != float64(1) || cache["misses"] != float64(1) {
		t.Errorf("control cache hits=%v misses=%v, want 1/1", cache["hits"], cache["misses"])
	}
	// The default path's top-level cache counters are untouched by
	// tenant traffic: arms own their engines.
	if hits := metrics["cache_hits"]; hits != nil && hits != float64(0) {
		t.Errorf("default cache_hits = %v after tenant-only traffic, want 0", hits)
	}

	// healthz mirrors the experiment topology.
	var health map[string]any
	getJSON(t, f.ts.URL+"/healthz", &health)
	tAcme := health["tenants"].(map[string]any)["acme"].(map[string]any)
	if tAcme["experiment"] != "ranker-v2" {
		t.Errorf("healthz experiment = %v", tAcme["experiment"])
	}
	armList := tAcme["arms"].([]any)
	if len(armList) != 2 {
		t.Fatalf("healthz lists %d arms, want 2", len(armList))
	}
	first := armList[0].(map[string]any)
	if first["arm"] != "control" || first["model"] != "champion" || first["weight"] != float64(9) {
		t.Errorf("healthz arm[0] = %v, want control/champion/9", first)
	}
}

// TestRegistryConfigValidation: misconfigurations abort construction
// with errors naming the offending entity.
func TestRegistryConfigValidation(t *testing.T) {
	train := dataset.SyntheticSmall(1).Dataset.R
	model := trainSmall(t, train, 3)
	dir := t.TempDir()
	path := filepath.Join(dir, "model.bin")
	if err := model.SaveModelFile(path); err != nil {
		t.Fatal(err)
	}
	base := func() Config {
		return Config{ModelPath: path, Train: train}
	}
	cases := map[string]*RegistryConfig{
		"no models": {Tenants: map[string]TenantSpec{}},
		"arm references unknown model": {
			Models: map[string]ModelSpec{"a": {Path: path}},
			Tenants: map[string]TenantSpec{"t": {Experiment: &ExperimentSpec{
				Name: "e", Arms: []ArmSpec{{Name: "x", Model: "ghost"}},
			}}},
		},
		"experiment without name": {
			Models: map[string]ModelSpec{"a": {Path: path}},
			Tenants: map[string]TenantSpec{"t": {Experiment: &ExperimentSpec{
				Arms: []ArmSpec{{Name: "x", Model: "a"}},
			}}},
		},
		"experiment without arms": {
			Models:  map[string]ModelSpec{"a": {Path: path}},
			Tenants: map[string]TenantSpec{"t": {Experiment: &ExperimentSpec{Name: "e"}}},
		},
		"negative weight": {
			Models: map[string]ModelSpec{"a": {Path: path}},
			Tenants: map[string]TenantSpec{"t": {Experiment: &ExperimentSpec{
				Name: "e", Arms: []ArmSpec{{Name: "x", Model: "a", Weight: -1}},
			}}},
		},
		"shadow without experiment": {
			Models:  map[string]ModelSpec{"a": {Path: path}},
			Tenants: map[string]TenantSpec{"t": {Shadow: &ShadowSpec{Model: "a", Sample: 0.5}}},
		},
		"shadow references unknown model": {
			Models: map[string]ModelSpec{"a": {Path: path}},
			Tenants: map[string]TenantSpec{"t": {
				Experiment: &ExperimentSpec{Name: "e", Arms: []ArmSpec{{Name: "x", Model: "a"}}},
				Shadow:     &ShadowSpec{Model: "ghost", Sample: 0.5},
			}},
		},
		"shadow sample out of range": {
			Models: map[string]ModelSpec{"a": {Path: path}},
			Tenants: map[string]TenantSpec{"t": {
				Experiment: &ExperimentSpec{Name: "e", Arms: []ArmSpec{{Name: "x", Model: "a"}}},
				Shadow:     &ShadowSpec{Model: "a", Sample: 1.5},
			}},
		},
		"model without path": {
			Models: map[string]ModelSpec{"a": {}},
		},
	}
	for name, rc := range cases {
		cfg := base()
		cfg.Registry = rc
		if _, err := NewFromFile(cfg); err == nil {
			t.Errorf("%s: construction succeeded, want error", name)
		}
	}
}

// TestLoadRegistryFile: the on-disk JSON form round-trips, and unknown
// fields are rejected (catching misspelled keys before they silently
// disable an experiment).
func TestLoadRegistryFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "registry.json")
	body := `{
	  "models": {"champion": {"path": "models/champion.bin"}},
	  "tenants": {
	    "acme": {
	      "experiment": {"name": "exp", "arms": [{"name": "a", "model": "champion", "weight": 3}]},
	      "shadow": {"model": "champion", "sample": 0.25},
	      "feed_dir": "feeds/acme"
	    }
	  }
	}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	rc, err := LoadRegistryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Models["champion"].Path != "models/champion.bin" {
		t.Errorf("model path = %q", rc.Models["champion"].Path)
	}
	acme := rc.Tenants["acme"]
	if acme.Experiment.Name != "exp" || acme.Experiment.Arms[0].Weight != 3 ||
		acme.Shadow.Sample != 0.25 || acme.FeedDir != "feeds/acme" {
		t.Errorf("parsed tenant %+v", acme)
	}

	if err := os.WriteFile(path, []byte(`{"models": {}, "tennants": {}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRegistryFile(path); err == nil || !strings.Contains(err.Error(), "tennants") {
		t.Errorf("misspelled key: err = %v, want unknown-field error", err)
	}
	if _, err := LoadRegistryFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file: no error")
	}
}

// TestResolveAllocFree: tenant resolution is on the hot path of every
// tenant-routed request; it must not allocate.
func TestResolveAllocFree(t *testing.T) {
	f := newRegistryServer(t, Config{}, nil)
	u := 0
	allocs := testing.AllocsPerRun(1000, func() {
		rt, err := f.srv.resolve("acme", u)
		if err != nil || rt.arm == nil {
			t.Fatal("resolve failed")
		}
		u++
	})
	if allocs != 0 {
		t.Errorf("resolve allocates %v per call, want 0", allocs)
	}
}

// BenchmarkRegistryResolve measures tenant → experiment → arm routing —
// O(ns) and allocation-free, so the registry adds nothing measurable to
// the serving path.
func BenchmarkRegistryResolve(b *testing.B) {
	f := newRegistryServer(b, Config{}, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt, err := f.srv.resolve("acme", i)
		if err != nil || rt.sn == nil {
			b.Fatal("resolve failed")
		}
	}
}
