// Package wire is the binary columnar batch transport: a length-prefixed
// little-endian frame format carrying many users' top-M requests and
// responses in flat id/score columns, so the serving layer can write
// ranked lists straight from the rank engine's pooled buffers into an
// HTTP response with zero intermediate allocation in steady state.
//
// The format borrows the v2 model file's validation idiom (see
// core.parseV2Header): a fixed 64-byte header whose counts fully
// determine the layout. The decoder recomputes every section offset and
// the total frame length from those counts and rejects any frame whose
// declared length disagrees — wire offsets are never trusted, truncated
// or padded frames are rejected, and unknown magic, version or flag bits
// fail closed. Both decoders reuse the caller's column slices, so a
// serving loop decodes and encodes without allocating once warm.
//
// Request frame (POST /v2/batch, /v2/shard/topm):
//
//	off  size  field
//	0     8    magic "OCuLaRq1" (the trailing "1" is the format version)
//	8     8    length: total frame bytes, header included
//	16    4    flags: must be zero (unknown bits rejected)
//	20    4    m: requested list length (0 = server default)
//	24    4    nUsers
//	28    4    nExclude
//	32    2    nAllow   (allow-tag count)
//	34    2    nDeny    (deny-tag count)
//	36    4    tenantLen
//	40    8    expectVersion: shard model-version pin (0 = unpinned;
//	           must be 0 on /v2/batch)
//	48   16    reserved, must be zero
//	64         users   [nUsers]uint32
//	           exclude [nExclude]uint32
//	           allow tags: nAllow × (uint16 len + bytes)
//	           deny  tags: nDeny  × (uint16 len + bytes)
//	           tenant bytes [tenantLen]
//
// Response frame:
//
//	off  size  field
//	0     8    magic "OCuLaRr1"
//	8     8    length: total frame bytes
//	16    4    flags: bit0 = shard partial (shardLo/shardHi meaningful),
//	           bit1 = router merge (modelVersion carries the route epoch)
//	20    4    m (the clamped list length the lists were ranked under)
//	24    4    nUsers
//	28    4    shardLo
//	32    4    shardHi
//	36    4    reserved, must be zero
//	40    8    modelVersion (route epoch when bit1 is set)
//	48   16    reserved, must be zero
//	64         status [nUsers]uint8 (bit0 error, bit1 cached, bit2 degraded)
//	           pad to 4-byte boundary, zero bytes
//	           counts [nUsers]uint32
//	           items  [T]uint32   where T = Σ counts (4-aligned by layout)
//	           pad to 8-byte boundary, zero bytes
//	           scores [T]float64 (IEEE-754 bits, little-endian)
//
// Every count is bounded by the declared frame length before a byte is
// read or a slice grown, so a hostile frame can never make the decoder
// allocate more than O(len(frame)) bytes.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

const (
	// MagicRequest and MagicResponse open every frame; the trailing byte
	// is the format version. An unknown magic or version is rejected with
	// ErrBadMagic so transports can answer a stable "bad_frame" error.
	MagicRequest  = "OCuLaRq1"
	MagicResponse = "OCuLaRr1"

	// HeaderSize is the fixed header length of both frame kinds.
	HeaderSize = 64

	// MaxFrameLen caps the declared frame length the decoders accept —
	// a backstop against absurd length fields on transports that forgot
	// their own body cap. 64 MiB holds a full MaxBatch×MaxM response.
	MaxFrameLen = 64 << 20
)

// Response status-column bits, one byte per user.
const (
	// StatusError marks a user slot that failed (out of range, filter
	// rejection, shard outage); its count is zero.
	StatusError = 1 << 0
	// StatusCached marks a list answered from a cache or coalesced with
	// another request's computation.
	StatusCached = 1 << 1
	// StatusDegraded marks a router merge assembled from surviving
	// shards only (cluster.Config.AllowDegraded).
	StatusDegraded = 1 << 2
)

// Response header flag bits.
const (
	// FlagShardPartial marks a shard's partition partial: shardLo and
	// shardHi describe the item range the lists were ranked over.
	FlagShardPartial = 1 << 0
	// FlagRouterMerge marks a router scatter-gather response; the
	// modelVersion field carries the route-table epoch instead.
	FlagRouterMerge = 1 << 1
)

// ErrBadMagic reports a frame that is not this format (or not this
// version). Transports answer it with the stable "bad_frame" error code.
type ErrBadMagic struct {
	got [8]byte
}

func (e *ErrBadMagic) Error() string {
	return fmt.Sprintf("wire: bad frame magic %q (want %q or %q)", e.got[:], MagicRequest, MagicResponse)
}

// BatchRequest is the decoded form of a request frame. Decoding reuses
// the slices across calls (capacity kept, length reset), so a warm
// serving loop allocates only when a request grows past everything seen
// before — or carries tags or a tenant, whose strings must be copied out
// of the frame.
type BatchRequest struct {
	M             uint32
	ExpectVersion uint64
	Users         []uint32
	Exclude       []uint32
	AllowTags     []string
	DenyTags      []string
	Tenant        string
}

// BatchResponse is the decoded form of a response frame, and the
// column set the encoder writes from. Items holds the concatenated
// per-user lists; Counts says where each user's slice ends.
type BatchResponse struct {
	Flags        uint32
	M            uint32
	ShardLo      uint32
	ShardHi      uint32
	ModelVersion uint64
	Status       []uint8
	Counts       []uint32
	Items        []uint32
	Scores       []float64
}

func align4(n int) int { return (n + 3) &^ 3 }
func align8(n int) int { return (n + 7) &^ 7 }

// requestLen recomputes the exact frame length of a request with the
// given section sizes (tag wire size passed precomputed).
func requestLen(nUsers, nExclude, tagBytes, tenantLen int) int {
	return HeaderSize + 4*nUsers + 4*nExclude + tagBytes + tenantLen
}

// responseLen recomputes the exact frame length of a response carrying
// nUsers lists totalling t items, along with the items/scores offsets.
func responseLen(nUsers, t int) (itemsOff, scoresOff, total int) {
	countsOff := align4(HeaderSize + nUsers)
	itemsOff = countsOff + 4*nUsers
	scoresOff = align8(itemsOff + 4*t)
	return itemsOff, scoresOff, scoresOff + 8*t
}

// AppendBatchRequest appends req as one request frame to dst and returns
// the extended slice. With a reused dst (capacity kept across calls) the
// steady state allocates nothing. A request that cannot be represented —
// a tag count or tag length past the uint16 wire fields — is rejected
// here rather than silently truncated into a frame decoders would call
// malformed; dst is returned unextended alongside the error.
func AppendBatchRequest(dst []byte, req *BatchRequest) ([]byte, error) {
	if len(req.AllowTags) > math.MaxUint16 || len(req.DenyTags) > math.MaxUint16 {
		return dst, fmt.Errorf("wire: %d allow + %d deny tags exceed the uint16 count fields",
			len(req.AllowTags), len(req.DenyTags))
	}
	tagBytes := 0
	for _, tags := range [2][]string{req.AllowTags, req.DenyTags} {
		for _, t := range tags {
			if len(t) > math.MaxUint16 {
				return dst, fmt.Errorf("wire: tag of %d bytes exceeds the uint16 length field", len(t))
			}
			tagBytes += 2 + len(t)
		}
	}
	total := requestLen(len(req.Users), len(req.Exclude), tagBytes, len(req.Tenant))
	dst = grow(dst, total)
	hdr := dst[len(dst)-total:]
	for i := range hdr[:HeaderSize] {
		hdr[i] = 0
	}
	copy(hdr, MagicRequest)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(total))
	binary.LittleEndian.PutUint32(hdr[20:], req.M)
	binary.LittleEndian.PutUint32(hdr[24:], uint32(len(req.Users)))
	binary.LittleEndian.PutUint32(hdr[28:], uint32(len(req.Exclude)))
	binary.LittleEndian.PutUint16(hdr[32:], uint16(len(req.AllowTags)))
	binary.LittleEndian.PutUint16(hdr[34:], uint16(len(req.DenyTags)))
	binary.LittleEndian.PutUint32(hdr[36:], uint32(len(req.Tenant)))
	binary.LittleEndian.PutUint64(hdr[40:], req.ExpectVersion)
	at := HeaderSize
	for _, u := range req.Users {
		binary.LittleEndian.PutUint32(hdr[at:], u)
		at += 4
	}
	for _, e := range req.Exclude {
		binary.LittleEndian.PutUint32(hdr[at:], e)
		at += 4
	}
	for _, tags := range [2][]string{req.AllowTags, req.DenyTags} {
		for _, t := range tags {
			binary.LittleEndian.PutUint16(hdr[at:], uint16(len(t)))
			at += 2
			copy(hdr[at:], t)
			at += len(t)
		}
	}
	copy(hdr[at:], req.Tenant)
	return dst, nil
}

// DecodeBatchRequest parses one request frame into req, reusing its
// slices. The frame must be exactly data: a declared length disagreeing
// with len(data), or with the length recomputed from the section counts,
// is rejected.
func DecodeBatchRequest(data []byte, req *BatchRequest) error {
	if err := checkHeader(data, MagicRequest); err != nil {
		return err
	}
	if flags := binary.LittleEndian.Uint32(data[16:]); flags != 0 {
		return fmt.Errorf("wire: unknown request flags %#x", flags)
	}
	req.M = binary.LittleEndian.Uint32(data[20:])
	nUsers := int(binary.LittleEndian.Uint32(data[24:]))
	nExclude := int(binary.LittleEndian.Uint32(data[28:]))
	nAllow := int(binary.LittleEndian.Uint16(data[32:]))
	nDeny := int(binary.LittleEndian.Uint16(data[34:]))
	tenantLen := int(binary.LittleEndian.Uint32(data[36:]))
	req.ExpectVersion = binary.LittleEndian.Uint64(data[40:])
	if err := reservedZero(data[48:HeaderSize]); err != nil {
		return err
	}
	// Bound every count by what the frame can physically hold before
	// growing any slice: each user or exclusion costs 4 bytes, each tag
	// at least 2, so a hostile header cannot force an allocation larger
	// than the frame itself. The per-count bounds also keep each term
	// below MaxFrameLen, so the joint sum — which the fixed-width reads
	// below rely on — cannot overflow.
	body := len(data) - HeaderSize
	if nUsers > body/4 || nExclude > body/4 || tenantLen > body || (nAllow+nDeny) > body/2 ||
		4*nUsers+4*nExclude+2*(nAllow+nDeny)+tenantLen > body {
		return fmt.Errorf("wire: header counts exceed the %d-byte frame", len(data))
	}
	at := HeaderSize
	req.Users = growU32(req.Users[:0], nUsers)
	for i := 0; i < nUsers; i++ {
		req.Users[i] = binary.LittleEndian.Uint32(data[at:])
		at += 4
	}
	req.Exclude = growU32(req.Exclude[:0], nExclude)
	for i := 0; i < nExclude; i++ {
		req.Exclude[i] = binary.LittleEndian.Uint32(data[at:])
		at += 4
	}
	tagAt := at
	var err error
	if req.AllowTags, at, err = decodeTags(data, at, nAllow, req.AllowTags[:0]); err != nil {
		return err
	}
	if req.DenyTags, at, err = decodeTags(data, at, nDeny, req.DenyTags[:0]); err != nil {
		return err
	}
	if at+tenantLen > len(data) {
		return fmt.Errorf("wire: tenant overruns the frame")
	}
	req.Tenant = string(data[at : at+tenantLen])
	at += tenantLen
	// Recompute-and-reject: the walked cursor must land exactly on the
	// declared (and actual) end — a frame with slack bytes is as invalid
	// as a truncated one.
	if want := requestLen(nUsers, nExclude, at-tenantLen-tagAt, tenantLen); at != len(data) || want != len(data) {
		return fmt.Errorf("wire: frame length %d disagrees with recomputed layout %d", len(data), want)
	}
	return nil
}

// decodeTags reads n length-prefixed tag strings starting at 'at'.
func decodeTags(data []byte, at, n int, dst []string) ([]string, int, error) {
	for i := 0; i < n; i++ {
		if at+2 > len(data) {
			return dst, at, fmt.Errorf("wire: tag %d overruns the frame", i)
		}
		l := int(binary.LittleEndian.Uint16(data[at:]))
		at += 2
		if at+l > len(data) {
			return dst, at, fmt.Errorf("wire: tag %d overruns the frame", i)
		}
		dst = append(dst, string(data[at:at+l]))
		at += l
	}
	return dst, at, nil
}

// AppendBatchResponse appends resp as one response frame to dst and
// returns the extended slice — the zero-copy half of the transport: the
// Items/Scores columns are the rank engine's own (cache-shared) values,
// written straight into the output buffer. len(resp.Items) and
// len(resp.Scores) must equal the sum of resp.Counts, and len(resp.Status)
// must equal len(resp.Counts); the encoder panics otherwise (a malformed
// response is a server bug, never client input).
func AppendBatchResponse(dst []byte, resp *BatchResponse) []byte {
	nUsers := len(resp.Counts)
	t := 0
	for _, c := range resp.Counts {
		t += int(c)
	}
	if len(resp.Items) != t || len(resp.Scores) != t || len(resp.Status) != nUsers {
		panic("wire: AppendBatchResponse column lengths disagree with counts")
	}
	itemsOff, scoresOff, total := responseLen(nUsers, t)
	dst = grow(dst, total)
	hdr := dst[len(dst)-total:]
	for i := range hdr[:HeaderSize] {
		hdr[i] = 0
	}
	copy(hdr, MagicResponse)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(total))
	binary.LittleEndian.PutUint32(hdr[16:], resp.Flags)
	binary.LittleEndian.PutUint32(hdr[20:], resp.M)
	binary.LittleEndian.PutUint32(hdr[24:], uint32(nUsers))
	binary.LittleEndian.PutUint32(hdr[28:], resp.ShardLo)
	binary.LittleEndian.PutUint32(hdr[32:], resp.ShardHi)
	binary.LittleEndian.PutUint64(hdr[40:], resp.ModelVersion)
	copy(hdr[HeaderSize:], resp.Status)
	for i := HeaderSize + nUsers; i < align4(HeaderSize+nUsers); i++ {
		hdr[i] = 0
	}
	at := align4(HeaderSize + nUsers)
	for _, c := range resp.Counts {
		binary.LittleEndian.PutUint32(hdr[at:], c)
		at += 4
	}
	if at != itemsOff {
		panic("wire: items offset miscomputed")
	}
	for _, it := range resp.Items {
		binary.LittleEndian.PutUint32(hdr[at:], it)
		at += 4
	}
	for ; at < scoresOff; at++ {
		hdr[at] = 0
	}
	for _, s := range resp.Scores {
		binary.LittleEndian.PutUint64(hdr[at:], math.Float64bits(s))
		at += 8
	}
	return dst
}

// DecodeBatchResponse parses one response frame into resp, reusing its
// slices. Layout validation mirrors the request decoder: every offset is
// recomputed from the header counts and the counts column, and the
// declared length must equal both len(data) and the recomputed total.
// Unknown flag bits are rejected. Padding bytes must be zero.
func DecodeBatchResponse(data []byte, resp *BatchResponse) error {
	if err := checkHeader(data, MagicResponse); err != nil {
		return err
	}
	resp.Flags = binary.LittleEndian.Uint32(data[16:])
	if resp.Flags&^uint32(FlagShardPartial|FlagRouterMerge) != 0 {
		return fmt.Errorf("wire: unknown response flags %#x", resp.Flags)
	}
	resp.M = binary.LittleEndian.Uint32(data[20:])
	nUsers := int(binary.LittleEndian.Uint32(data[24:]))
	resp.ShardLo = binary.LittleEndian.Uint32(data[28:])
	resp.ShardHi = binary.LittleEndian.Uint32(data[32:])
	if binary.LittleEndian.Uint32(data[36:]) != 0 {
		return fmt.Errorf("wire: reserved header word is non-zero")
	}
	resp.ModelVersion = binary.LittleEndian.Uint64(data[40:])
	if err := reservedZero(data[48:HeaderSize]); err != nil {
		return err
	}
	// Status + counts alone cost 5 bytes per user; bound nUsers by that
	// before any slice grows.
	if nUsers > (len(data)-HeaderSize)/5 {
		return fmt.Errorf("wire: header counts exceed the %d-byte frame", len(data))
	}
	resp.Status = append(resp.Status[:0], data[HeaderSize:HeaderSize+nUsers]...)
	for i := HeaderSize + nUsers; i < align4(HeaderSize+nUsers); i++ {
		if data[i] != 0 {
			return fmt.Errorf("wire: non-zero padding byte at %d", i)
		}
	}
	at := align4(HeaderSize + nUsers)
	if at+4*nUsers > len(data) {
		return fmt.Errorf("wire: counts column overruns the frame")
	}
	resp.Counts = growU32(resp.Counts[:0], nUsers)
	t := 0
	for i := 0; i < nUsers; i++ {
		c := binary.LittleEndian.Uint32(data[at:])
		resp.Counts[i] = c
		t += int(c)
		at += 4
	}
	// T items cost 12 bytes each (4 id + 8 score); reject before growing.
	if t > (len(data)-at)/12 {
		return fmt.Errorf("wire: counts total %d exceeds the %d-byte frame", t, len(data))
	}
	itemsOff, scoresOff, total := responseLen(nUsers, t)
	if total != len(data) || at != itemsOff {
		return fmt.Errorf("wire: frame length %d disagrees with recomputed layout %d", len(data), total)
	}
	resp.Items = growU32(resp.Items[:0], t)
	for i := 0; i < t; i++ {
		resp.Items[i] = binary.LittleEndian.Uint32(data[at:])
		at += 4
	}
	for ; at < scoresOff; at++ {
		if data[at] != 0 {
			return fmt.Errorf("wire: non-zero padding byte at %d", at)
		}
	}
	resp.Scores = growF64(resp.Scores[:0], t)
	for i := 0; i < t; i++ {
		resp.Scores[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[at:]))
		at += 8
	}
	return nil
}

// checkHeader validates the shared frame prologue: minimum size, magic,
// and a declared length equal to the bytes actually presented.
func checkHeader(data []byte, magic string) error {
	if len(data) < HeaderSize {
		return fmt.Errorf("wire: frame of %d bytes is shorter than the %d-byte header", len(data), HeaderSize)
	}
	if string(data[:8]) != magic {
		var e ErrBadMagic
		copy(e.got[:], data[:8])
		return &e
	}
	length := binary.LittleEndian.Uint64(data[8:])
	if length > MaxFrameLen {
		return fmt.Errorf("wire: declared frame length %d exceeds the %d-byte cap", length, MaxFrameLen)
	}
	if length != uint64(len(data)) {
		return fmt.Errorf("wire: declared frame length %d but %d bytes presented", length, len(data))
	}
	return nil
}

func reservedZero(b []byte) error {
	for _, c := range b {
		if c != 0 {
			return fmt.Errorf("wire: reserved header bytes are non-zero")
		}
	}
	return nil
}

// grow extends dst by n bytes (contents unspecified), reusing capacity.
func grow(dst []byte, n int) []byte {
	if len(dst)+n <= cap(dst) {
		return dst[:len(dst)+n]
	}
	return append(dst, make([]byte, n)...)
}

func growU32(dst []uint32, n int) []uint32 {
	if n <= cap(dst) {
		return dst[:n]
	}
	return make([]uint32, n)
}

func growF64(dst []float64, n int) []float64 {
	if n <= cap(dst) {
		return dst[:n]
	}
	return make([]float64, n)
}
