package wire

import (
	"encoding/binary"
	"testing"
)

// FuzzDecodeBatchFrame throws arbitrary bytes at both frame decoders.
// The invariants under fuzz: no panic, and no allocation beyond a
// bounded cap — a decoder that survives checkHeader can only grow its
// scratch slices after proving the counts fit inside the frame, so every
// column's capacity is bounded by the frame length itself.
func FuzzDecodeBatchFrame(f *testing.F) {
	f.Add(mustAppend(f, nil, &BatchRequest{
		M:         10,
		Users:     []uint32{0, 1, 2},
		Exclude:   []uint32{7},
		AllowTags: []string{"drama"},
		DenyTags:  []string{"kids"},
		Tenant:    "acme",
	}))
	f.Add(AppendBatchResponse(nil, &BatchResponse{
		Flags:        FlagShardPartial,
		M:            2,
		ShardLo:      0,
		ShardHi:      100,
		ModelVersion: 3,
		Status:       []uint8{0, StatusCached},
		Counts:       []uint32{2, 1},
		Items:        []uint32{5, 6, 9},
		Scores:       []float64{0.9, 0.5, 0.4},
	}))
	// Torn tail: a valid response frame with the final score sheared off
	// mid-word, as a broken proxy or truncated read would produce it.
	torn := AppendBatchResponse(nil, &BatchResponse{
		M:      1,
		Status: []uint8{0},
		Counts: []uint32{1},
		Items:  []uint32{42},
		Scores: []float64{0.25},
	})
	f.Add(torn[:len(torn)-5])
	// Wrong endian: header words written big-endian, as a naive foreign
	// client might. The magic matches but every count is byte-swapped.
	wrongEndian := mustAppend(f, nil, &BatchRequest{M: 10, Users: []uint32{1, 2}})
	binary.BigEndian.PutUint64(wrongEndian[8:], uint64(len(wrongEndian)))
	binary.BigEndian.PutUint32(wrongEndian[24:], 2)
	f.Add(wrongEndian)
	// Overlapping sections: nUsers=2 and nExclude=2 each fit the 8-byte
	// body alone but not together; only a joint bound on the section
	// sizes keeps the exclude column from reading past the frame.
	overlap := mustAppend(f, nil, &BatchRequest{M: 1, Users: []uint32{1, 2}})
	binary.LittleEndian.PutUint32(overlap[28:], 2)
	f.Add(overlap)
	f.Add([]byte(MagicRequest))
	f.Add([]byte(MagicResponse))

	f.Fuzz(func(t *testing.T, data []byte) {
		var req BatchRequest
		if err := DecodeBatchRequest(data, &req); err == nil {
			assertBounded(t, len(data), 4*cap(req.Users), "users")
			assertBounded(t, len(data), 4*cap(req.Exclude), "exclude")
			assertBounded(t, len(data), 2*cap(req.AllowTags), "allow tags")
			assertBounded(t, len(data), 2*cap(req.DenyTags), "deny tags")
			assertBounded(t, len(data), len(req.Tenant), "tenant")
		}
		var resp BatchResponse
		if err := DecodeBatchResponse(data, &resp); err == nil {
			assertBounded(t, len(data), cap(resp.Status), "status")
			assertBounded(t, len(data), 4*cap(resp.Counts), "counts")
			assertBounded(t, len(data), 4*cap(resp.Items), "items")
			assertBounded(t, len(data), 8*cap(resp.Scores), "scores")
		}
	})
}

// assertBounded fails if a decoded column's backing memory exceeds the
// frame that produced it (append may round capacity up, so allow the
// usual growth slack of 2x plus a small constant).
func assertBounded(t *testing.T, frameLen, colBytes int, name string) {
	t.Helper()
	if colBytes > 2*frameLen+64 {
		t.Fatalf("%s column holds %d bytes from a %d-byte frame", name, colBytes, frameLen)
	}
}
