package wire

import "io"

// AppendAll reads r to EOF into dst, reusing its capacity — io.ReadAll
// without the fresh buffer per call. Both binary transports (serve and
// the router) pull request bodies into pooled scratch through it, so the
// read path shares the frame codec's zero-steady-state-allocation
// contract.
func AppendAll(dst []byte, r io.Reader) ([]byte, error) {
	for {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := r.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
	}
}
