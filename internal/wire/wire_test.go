package wire

import (
	"bytes"
	"encoding/binary"
	"math"
	"strings"
	"testing"
)

// mustAppend encodes a request the test knows to be representable.
func mustAppend(tb testing.TB, dst []byte, req *BatchRequest) []byte {
	tb.Helper()
	frame, err := AppendBatchRequest(dst, req)
	if err != nil {
		tb.Fatalf("append request: %v", err)
	}
	return frame
}

func sampleRequest() *BatchRequest {
	return &BatchRequest{
		M:             25,
		ExpectVersion: 7,
		Users:         []uint32{0, 3, 99, 1 << 20},
		Exclude:       []uint32{5, 6},
		AllowTags:     []string{"drama", "comedy"},
		DenyTags:      []string{"kids"},
		Tenant:        "acme",
	}
}

func sampleResponse() *BatchResponse {
	return &BatchResponse{
		Flags:        FlagShardPartial,
		M:            3,
		ShardLo:      10,
		ShardHi:      50,
		ModelVersion: 4,
		Status:       []uint8{0, StatusCached, StatusError},
		Counts:       []uint32{3, 2, 0},
		Items:        []uint32{11, 12, 13, 21, 22},
		Scores:       []float64{0.9, 0.8, 0.7, 0.99, 0.1},
	}
}

func TestRequestRoundTrip(t *testing.T) {
	want := sampleRequest()
	frame := mustAppend(t, nil, want)
	var got BatchRequest
	if err := DecodeBatchRequest(frame, &got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.M != want.M || got.ExpectVersion != want.ExpectVersion || got.Tenant != want.Tenant {
		t.Fatalf("scalar mismatch: got %+v want %+v", got, *want)
	}
	if !equalU32(got.Users, want.Users) || !equalU32(got.Exclude, want.Exclude) {
		t.Fatalf("column mismatch: got %+v want %+v", got, *want)
	}
	if strings.Join(got.AllowTags, ",") != "drama,comedy" || strings.Join(got.DenyTags, ",") != "kids" {
		t.Fatalf("tags mismatch: %+v", got)
	}
}

func TestRequestRoundTripEmptySections(t *testing.T) {
	want := &BatchRequest{M: 10, Users: []uint32{1}}
	frame := mustAppend(t, nil, want)
	var got BatchRequest
	if err := DecodeBatchRequest(frame, &got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got.Exclude) != 0 || len(got.AllowTags) != 0 || len(got.DenyTags) != 0 || got.Tenant != "" {
		t.Fatalf("expected empty sections, got %+v", got)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	want := sampleResponse()
	frame := AppendBatchResponse(nil, want)
	var got BatchResponse
	if err := DecodeBatchResponse(frame, &got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Flags != want.Flags || got.M != want.M || got.ShardLo != want.ShardLo ||
		got.ShardHi != want.ShardHi || got.ModelVersion != want.ModelVersion {
		t.Fatalf("scalar mismatch: got %+v want %+v", got, *want)
	}
	if !bytes.Equal(got.Status, want.Status) || !equalU32(got.Counts, want.Counts) || !equalU32(got.Items, want.Items) {
		t.Fatalf("column mismatch: got %+v want %+v", got, *want)
	}
	for i := range want.Scores {
		if math.Float64bits(got.Scores[i]) != math.Float64bits(want.Scores[i]) {
			t.Fatalf("score %d: bits %x != %x", i, math.Float64bits(got.Scores[i]), math.Float64bits(want.Scores[i]))
		}
	}
}

// The decoders must reuse caller slices: a second decode into the same
// struct may not allocate.
func TestDecodeReusesScratch(t *testing.T) {
	reqFrame := mustAppend(t, nil, &BatchRequest{M: 5, Users: []uint32{1, 2, 3}, Exclude: []uint32{9}})
	respFrame := AppendBatchResponse(nil, sampleResponse())
	var req BatchRequest
	var resp BatchResponse
	if err := DecodeBatchRequest(reqFrame, &req); err != nil {
		t.Fatal(err)
	}
	if err := DecodeBatchResponse(respFrame, &resp); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := DecodeBatchRequest(reqFrame, &req); err != nil {
			t.Fatal(err)
		}
		if err := DecodeBatchResponse(respFrame, &resp); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm decode allocates %v times per run, want 0", allocs)
	}
}

// Encoding into a reused buffer must not allocate either — this is the
// steady-state encode path the serving layer relies on.
func TestEncodeZeroAlloc(t *testing.T) {
	resp := sampleResponse()
	buf := AppendBatchResponse(nil, resp)
	allocs := testing.AllocsPerRun(100, func() {
		buf = AppendBatchResponse(buf[:0], resp)
	})
	if allocs != 0 {
		t.Fatalf("warm encode allocates %v times per run, want 0", allocs)
	}
}

func TestRejects(t *testing.T) {
	req := mustAppend(t, nil, sampleRequest())
	resp := AppendBatchResponse(nil, sampleResponse())
	smallReq := mustAppend(t, nil, &BatchRequest{M: 1, Users: []uint32{1, 2}})
	mut := func(frame []byte, f func(b []byte)) []byte {
		b := append([]byte(nil), frame...)
		f(b)
		return b
	}
	cases := []struct {
		name  string
		frame []byte
	}{
		{"request/short", req[:HeaderSize-1]},
		{"request/bad magic", mut(req, func(b []byte) { b[0] = 'X' })},
		{"request/bad version", mut(req, func(b []byte) { b[7] = '2' })},
		{"request/unknown flags", mut(req, func(b []byte) { b[16] = 1 })},
		{"request/reserved set", mut(req, func(b []byte) { b[55] = 1 })},
		{"request/length lies short", mut(req, func(b []byte) { binary.LittleEndian.PutUint64(b[8:], uint64(len(req)-1)) })},
		{"request/length lies long", mut(req, func(b []byte) { binary.LittleEndian.PutUint64(b[8:], uint64(len(req)+1)) })},
		{"request/length absurd", mut(req, func(b []byte) { binary.LittleEndian.PutUint64(b[8:], 1<<40) })},
		{"request/truncated body", req[:len(req)-3]},
		{"request/count exceeds frame", mut(req, func(b []byte) { binary.LittleEndian.PutUint32(b[24:], 1<<30) })},
		// The reviewer's overlap frame: nUsers=2 and nExclude=2 each fit
		// the 8-byte body alone but not together — the joint bound must
		// reject it before the exclude column reads past the frame.
		{"request/sections overlap", mut(smallReq, func(b []byte) { binary.LittleEndian.PutUint32(b[28:], 2) })},
		{"request/tag overrun", mut(req, func(b []byte) {
			// First allow tag sits right after users+exclude; inflate its length.
			at := HeaderSize + 4*4 + 4*2
			binary.LittleEndian.PutUint16(b[at:], 60000)
		})},
		{"response/short", resp[:HeaderSize-1]},
		{"response/bad magic", mut(resp, func(b []byte) { b[7] = 'q' })},
		{"response/unknown flags", mut(resp, func(b []byte) { b[16] = 0x80 })},
		{"response/reserved word", mut(resp, func(b []byte) { b[36] = 1 })},
		{"response/reserved tail", mut(resp, func(b []byte) { b[63] = 1 })},
		{"response/truncated", resp[:len(resp)-1]},
		{"response/count exceeds frame", mut(resp, func(b []byte) { binary.LittleEndian.PutUint32(b[24:], 1<<30) })},
		{"response/counts total lies", mut(resp, func(b []byte) {
			// Bump user 0's count: T no longer matches the section sizes.
			at := align4(HeaderSize + 3)
			binary.LittleEndian.PutUint32(b[at:], 4)
		})},
		{"response/status padding dirty", mut(resp, func(b []byte) { b[HeaderSize+3] = 1 })},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var r BatchRequest
			var p BatchResponse
			errReq := DecodeBatchRequest(tc.frame, &r)
			errResp := DecodeBatchResponse(tc.frame, &p)
			if errReq == nil && errResp == nil {
				t.Fatalf("mutated frame accepted by both decoders")
			}
			if strings.HasPrefix(tc.name, "request/") && errReq == nil {
				t.Fatalf("mutated request frame accepted")
			}
			if strings.HasPrefix(tc.name, "response/") && errResp == nil {
				t.Fatalf("mutated response frame accepted")
			}
		})
	}
}

// A frame with slack bytes after the last section must be rejected even
// when the declared length covers the slack.
func TestRejectSlackBytes(t *testing.T) {
	req := mustAppend(t, nil, &BatchRequest{M: 1, Users: []uint32{1}})
	padded := append(append([]byte(nil), req...), 0, 0, 0, 0)
	binary.LittleEndian.PutUint64(padded[8:], uint64(len(padded)))
	var r BatchRequest
	if err := DecodeBatchRequest(padded, &r); err == nil {
		t.Fatal("request frame with slack bytes accepted")
	}
}

// Requests the uint16 wire fields cannot represent must fail the encode,
// not truncate into a frame every decoder rejects as malformed.
func TestAppendRequestRejectsUnrepresentableTags(t *testing.T) {
	if _, err := AppendBatchRequest(nil, &BatchRequest{
		Users:     []uint32{1},
		AllowTags: []string{strings.Repeat("x", 1<<16)},
	}); err == nil {
		t.Fatal("tag longer than 64 KiB encoded without error")
	}
	many := make([]string, 1<<16)
	for i := range many {
		many[i] = "t"
	}
	if _, err := AppendBatchRequest(nil, &BatchRequest{Users: []uint32{1}, DenyTags: many}); err == nil {
		t.Fatal("more than 65535 tags encoded without error")
	}
}

func TestEncoderPanicsOnBadColumns(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched columns")
		}
	}()
	AppendBatchResponse(nil, &BatchResponse{
		Status: []uint8{0},
		Counts: []uint32{2},
		Items:  []uint32{1},
		Scores: []float64{0.5},
	})
}

func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// BenchmarkAppendBatchResponse pins the steady-state encode cost the
// serving handlers pay per frame: appending into a warm buffer must not
// allocate at all (the 0 allocs/op here is an acceptance number — see
// TestEncodeZeroAlloc for the hard assertion).
func BenchmarkAppendBatchResponse(b *testing.B) {
	resp := sampleResponse()
	buf := AppendBatchResponse(nil, resp)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendBatchResponse(buf[:0], resp)
	}
}

// BenchmarkDecodeBatchResponse is the router-side counterpart: decoding
// a shard frame into warm scratch columns.
func BenchmarkDecodeBatchResponse(b *testing.B) {
	data := AppendBatchResponse(nil, sampleResponse())
	var out BatchResponse
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := DecodeBatchResponse(data, &out); err != nil {
			b.Fatal(err)
		}
	}
}
