// Package graph provides the undirected-graph substrate for the community
// detection baselines of Figure 2. The positive examples of a one-class
// rating matrix are the edges of a bipartite user-item graph (Section II,
// "Community detection"); the baselines operate on that graph without
// exploiting bipartiteness, which is part of why they fail on overlapping
// co-cluster structure.
package graph

import (
	"fmt"

	"repro/internal/sparse"
)

// Graph is an immutable undirected graph with nodes 0..N-1 stored as
// adjacency lists. Parallel edges and self-loops are not represented.
type Graph struct {
	adj   [][]int32
	edges int
}

// NewFromEdges builds a graph with n nodes from an edge list. Duplicate and
// self-loop edges are dropped. It panics on out-of-range endpoints.
func NewFromEdges(n int, edges [][2]int) *Graph {
	b := sparse.NewBuilder(n, n)
	for _, e := range edges {
		if e[0] == e[1] {
			continue
		}
		b.Add(e[0], e[1])
		b.Add(e[1], e[0])
	}
	return fromAdjacency(b.Build())
}

// NewBipartite lifts a users x items rating matrix into an undirected graph
// with nodes 0..nu-1 for users and nu..nu+ni-1 for items, one edge per
// positive example.
func NewBipartite(r *sparse.Matrix) *Graph {
	nu := r.Rows()
	n := nu + r.Cols()
	b := sparse.NewBuilder(n, n)
	r.Each(func(u, i int) {
		b.Add(u, nu+i)
		b.Add(nu+i, u)
	})
	return fromAdjacency(b.Build())
}

func fromAdjacency(m *sparse.Matrix) *Graph {
	g := &Graph{adj: make([][]int32, m.Rows()), edges: m.NNZ() / 2}
	for v := 0; v < m.Rows(); v++ {
		g.adj[v] = m.Row(v)
	}
	return g
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.edges }

// Degree returns the degree of node v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors returns the sorted neighbor list of v. The slice aliases
// internal storage and must not be modified.
func (g *Graph) Neighbors(v int) []int32 { return g.adj[v] }

// HasEdge reports whether {u, v} is an edge, in O(log deg(u)).
func (g *Graph) HasEdge(u, v int) bool {
	lo, hi := 0, len(g.adj[u])
	for lo < hi {
		mid := (lo + hi) / 2
		if int(g.adj[u][mid]) < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(g.adj[u]) && int(g.adj[u][lo]) == v
}

// String describes the graph shape.
func (g *Graph) String() string {
	return fmt.Sprintf("graph.Graph(%d nodes, %d edges)", g.N(), g.M())
}
