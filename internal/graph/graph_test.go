package graph

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/sparse"
)

func TestNewFromEdges(t *testing.T) {
	g := NewFromEdges(4, [][2]int{{0, 1}, {1, 2}, {1, 0}, {3, 3}})
	if g.N() != 4 {
		t.Fatalf("N = %d", g.N())
	}
	if g.M() != 2 { // duplicate collapsed, self-loop dropped
		t.Fatalf("M = %d, want 2", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || !g.HasEdge(2, 1) {
		t.Fatal("missing edges")
	}
	if g.HasEdge(0, 2) || g.HasEdge(3, 3) {
		t.Fatal("unexpected edges")
	}
	if g.Degree(1) != 2 || g.Degree(3) != 0 {
		t.Fatal("degrees wrong")
	}
}

func TestNewBipartite(t *testing.T) {
	m := sparse.FromDense([][]bool{
		{true, false},
		{true, true},
	})
	g := NewBipartite(m)
	if g.N() != 4 {
		t.Fatalf("N = %d, want 4 (2 users + 2 items)", g.N())
	}
	if g.M() != 3 {
		t.Fatalf("M = %d, want 3", g.M())
	}
	// Users are 0,1; items are 2,3.
	if !g.HasEdge(0, 2) || !g.HasEdge(1, 2) || !g.HasEdge(1, 3) {
		t.Fatal("bipartite edges wrong")
	}
	if g.HasEdge(0, 1) || g.HasEdge(2, 3) {
		t.Fatal("within-side edges must not exist")
	}
}

func TestBipartiteDegreesMatchMatrix(t *testing.T) {
	d := dataset.PaperToy()
	g := NewBipartite(d.R)
	for u := 0; u < d.Users(); u++ {
		if g.Degree(u) != d.R.RowNNZ(u) {
			t.Fatalf("user %d degree %d != row nnz %d", u, g.Degree(u), d.R.RowNNZ(u))
		}
	}
	for i := 0; i < d.Items(); i++ {
		if g.Degree(d.Users()+i) != d.R.ColNNZ(i) {
			t.Fatalf("item %d degree mismatch", i)
		}
	}
	if g.M() != d.R.NNZ() {
		t.Fatalf("edges %d != nnz %d", g.M(), d.R.NNZ())
	}
}

func TestEmptyGraph(t *testing.T) {
	g := NewFromEdges(0, nil)
	if g.N() != 0 || g.M() != 0 {
		t.Fatal("empty graph not empty")
	}
	if g.String() != "graph.Graph(0 nodes, 0 edges)" {
		t.Fatalf("String() = %q", g.String())
	}
}
