package sparse

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestMatrixMarketRoundTrip(t *testing.T) {
	f := func(seed uint16) bool {
		r := rng.New(uint64(seed) + 55)
		m := randomMatrix(r, 1+r.Intn(20), 1+r.Intn(20), 60)
		var buf bytes.Buffer
		if err := WriteMatrixMarket(&buf, m); err != nil {
			return false
		}
		got, err := ReadMatrixMarket(&buf)
		if err != nil {
			return false
		}
		return got.Equal(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixMarketReadPattern(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate pattern general
% a comment
3 4 2
1 1
3 4
`
	m, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 3 || m.Cols() != 4 || m.NNZ() != 2 {
		t.Fatalf("shape %v", m)
	}
	if !m.Has(0, 0) || !m.Has(2, 3) {
		t.Fatal("entries wrong")
	}
}

func TestMatrixMarketReadRealBinarizes(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real general
2 2 3
1 1 0.5
1 2 0
2 2 -3.5
`
	m, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 2 { // the explicit zero is dropped
		t.Fatalf("nnz = %d, want 2", m.NNZ())
	}
	if !m.Has(0, 0) || !m.Has(1, 1) || m.Has(0, 1) {
		t.Fatal("binarization wrong")
	}
}

func TestMatrixMarketReadSymmetric(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate pattern symmetric
3 3 2
2 1
3 3
`
	m, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if !m.Has(1, 0) || !m.Has(0, 1) {
		t.Fatal("symmetric mirroring missing")
	}
	if m.NNZ() != 3 { // (1,0), (0,1), (2,2)
		t.Fatalf("nnz = %d, want 3", m.NNZ())
	}
}

func TestMatrixMarketReadErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"bad header":     "not a matrix\n1 1 0\n",
		"bad value type": "%%MatrixMarket matrix coordinate complex general\n1 1 0\n",
		"bad symmetry":   "%%MatrixMarket matrix coordinate pattern skew\n1 1 0\n",
		"no size":        "%%MatrixMarket matrix coordinate pattern general\n% only comments\n",
		"bad size":       "%%MatrixMarket matrix coordinate pattern general\nx y z\n",
		"nonsquare sym":  "%%MatrixMarket matrix coordinate pattern symmetric\n2 3 0\n",
		"out of range":   "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n3 1\n",
		"zero index":     "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n0 1\n",
		"short entry":    "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n",
		"bad row index":  "%%MatrixMarket matrix coordinate pattern general\n2 2 1\nx 1\n",
		"bad value":      "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 notanumber\n",
		"count mismatch": "%%MatrixMarket matrix coordinate pattern general\n2 2 5\n1 1\n",
		"negative size":  "%%MatrixMarket matrix coordinate pattern general\n-1 2 0\n",
	}
	for name, src := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestMatrixMarketWriteFormat(t *testing.T) {
	m := FromDense([][]bool{{true, false}, {false, true}})
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, m); err != nil {
		t.Fatal(err)
	}
	want := "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n2 2\n"
	if buf.String() != want {
		t.Fatalf("output:\n%q\nwant:\n%q", buf.String(), want)
	}
}

// TestMatrixMarketFuzzNeverPanics feeds structured garbage to the parser;
// it must error or succeed, never panic.
func TestMatrixMarketFuzzNeverPanics(t *testing.T) {
	tokens := []string{
		"%%MatrixMarket matrix coordinate pattern general\n",
		"%%MatrixMarket matrix coordinate real symmetric\n",
		"% comment\n", "3 3 1\n", "1 1\n", "1 1 0.5\n", "-1 2\n",
		"999 999\n", "x y\n", "\n", "0 0 0\n", "2 2\n",
	}
	f := func(seed uint16) bool {
		r := rng.New(uint64(seed) + 31337)
		var b bytes.Buffer
		for n := 0; n < r.Intn(12); n++ {
			b.WriteString(tokens[r.Intn(len(tokens))])
		}
		defer func() {
			if p := recover(); p != nil {
				t.Errorf("panic on input %q: %v", b.String(), p)
			}
		}()
		_, _ = ReadMatrixMarket(&b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
