package sparse

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestBuildBasic(t *testing.T) {
	b := NewBuilder(3, 4)
	b.Add(0, 1)
	b.Add(2, 3)
	b.Add(0, 0)
	m := b.Build()
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("shape = %dx%d", m.Rows(), m.Cols())
	}
	if m.NNZ() != 3 {
		t.Fatalf("nnz = %d, want 3", m.NNZ())
	}
	if !m.Has(0, 0) || !m.Has(0, 1) || !m.Has(2, 3) {
		t.Fatal("missing expected positives")
	}
	if m.Has(1, 1) || m.Has(0, 2) {
		t.Fatal("unexpected positives")
	}
}

func TestBuildDeduplicates(t *testing.T) {
	b := NewBuilder(2, 2)
	for i := 0; i < 5; i++ {
		b.Add(1, 1)
	}
	m := b.Build()
	if m.NNZ() != 1 {
		t.Fatalf("nnz = %d after duplicate adds, want 1", m.NNZ())
	}
}

func TestRowSorted(t *testing.T) {
	b := NewBuilder(1, 10)
	for _, c := range []int{7, 3, 9, 1, 5} {
		b.Add(0, c)
	}
	m := b.Build()
	row := m.Row(0)
	for i := 1; i < len(row); i++ {
		if row[i-1] >= row[i] {
			t.Fatalf("row not sorted/unique: %v", row)
		}
	}
}

func TestAddPanicsOutOfRange(t *testing.T) {
	for _, tc := range [][2]int{{-1, 0}, {0, -1}, {3, 0}, {0, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Add(%d,%d) did not panic", tc[0], tc[1])
				}
			}()
			NewBuilder(3, 4).Add(tc[0], tc[1])
		}()
	}
}

func TestEmptyMatrix(t *testing.T) {
	m := NewBuilder(0, 0).Build()
	if m.NNZ() != 0 || m.Density() != 0 {
		t.Fatal("empty matrix not empty")
	}
	m2 := NewBuilder(5, 5).Build()
	if m2.NNZ() != 0 {
		t.Fatal("blank matrix has entries")
	}
	for r := 0; r < 5; r++ {
		if len(m2.Row(r)) != 0 {
			t.Fatal("blank row not empty")
		}
	}
	tr := m2.Transpose()
	if tr.Rows() != 5 || tr.Cols() != 5 || tr.NNZ() != 0 {
		t.Fatal("blank transpose wrong")
	}
}

func TestTransposeInvolution(t *testing.T) {
	r := rng.New(1)
	m := randomMatrix(r, 20, 30, 100)
	tt := m.Transpose().Transpose()
	if !m.Equal(tt) {
		t.Fatal("transpose of transpose differs from original")
	}
	// Cached: transpose of transpose must be the same object.
	if m.Transpose().Transpose() != m {
		t.Fatal("transpose caching broken")
	}
}

func TestTransposeCorrect(t *testing.T) {
	r := rng.New(2)
	f := func(seed uint16) bool {
		rr := rng.New(uint64(seed) + 1)
		m := randomMatrix(rr, 1+rr.Intn(15), 1+rr.Intn(15), 30)
		tr := m.Transpose()
		if tr.Rows() != m.Cols() || tr.Cols() != m.Rows() || tr.NNZ() != m.NNZ() {
			return false
		}
		ok := true
		m.Each(func(row, col int) {
			if !tr.Has(col, row) {
				ok = false
			}
		})
		tr.Each(func(row, col int) {
			if !m.Has(col, row) {
				ok = false
			}
		})
		return ok
	}
	_ = r
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDenseRoundTrip(t *testing.T) {
	f := func(seed uint16) bool {
		rr := rng.New(uint64(seed) + 7)
		m := randomMatrix(rr, 1+rr.Intn(10), 1+rr.Intn(10), 20)
		return m.Equal(FromDense(m.Dense()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNNZConsistency(t *testing.T) {
	r := rng.New(3)
	m := randomMatrix(r, 25, 17, 120)
	sumRows, sumCols := 0, 0
	for i := 0; i < m.Rows(); i++ {
		sumRows += m.RowNNZ(i)
	}
	for j := 0; j < m.Cols(); j++ {
		sumCols += m.ColNNZ(j)
	}
	if sumRows != m.NNZ() || sumCols != m.NNZ() {
		t.Fatalf("row-sum=%d col-sum=%d nnz=%d", sumRows, sumCols, m.NNZ())
	}
}

func TestCoordsAndSelectEntries(t *testing.T) {
	r := rng.New(4)
	m := randomMatrix(r, 10, 10, 30)
	rows, cols := m.Coords()
	if len(rows) != m.NNZ() || len(cols) != m.NNZ() {
		t.Fatal("coords length mismatch")
	}
	all := make([]int, m.NNZ())
	for i := range all {
		all[i] = i
	}
	if !m.SelectEntries(all).Equal(m) {
		t.Fatal("SelectEntries(all) != original")
	}
	half := all[:len(all)/2]
	sub := m.SelectEntries(half)
	if sub.NNZ() != len(half) {
		t.Fatalf("subset nnz = %d, want %d", sub.NNZ(), len(half))
	}
	for _, k := range half {
		if !sub.Has(int(rows[k]), int(cols[k])) {
			t.Fatal("subset missing selected entry")
		}
	}
}

func TestDensity(t *testing.T) {
	b := NewBuilder(4, 5)
	b.Add(0, 0)
	b.Add(1, 1)
	m := b.Build()
	want := 2.0 / 20.0
	if m.Density() != want {
		t.Fatalf("density = %v, want %v", m.Density(), want)
	}
}

func TestEqual(t *testing.T) {
	a := FromDense([][]bool{{true, false}, {false, true}})
	b := FromDense([][]bool{{true, false}, {false, true}})
	c := FromDense([][]bool{{true, true}, {false, true}})
	if !a.Equal(b) {
		t.Fatal("identical matrices not equal")
	}
	if a.Equal(c) {
		t.Fatal("different matrices equal")
	}
	d := NewBuilder(2, 3).Build()
	if a.Equal(d) {
		t.Fatal("different shapes equal")
	}
}

func TestString(t *testing.T) {
	m := FromDense([][]bool{{true, false}})
	want := "sparse.Matrix(1x2, nnz=1)"
	if m.String() != want {
		t.Fatalf("String() = %q, want %q", m.String(), want)
	}
}

func TestFromDenseRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ragged input")
		}
	}()
	FromDense([][]bool{{true}, {true, false}})
}

// randomMatrix builds a rows x cols matrix with up to n random positives.
func randomMatrix(r *rng.RNG, rows, cols, n int) *Matrix {
	b := NewBuilder(rows, cols)
	for i := 0; i < n; i++ {
		b.Add(r.Intn(rows), r.Intn(cols))
	}
	return b.Build()
}

func BenchmarkBuild(b *testing.B) {
	r := rng.New(1)
	coordsR := make([]int, 100000)
	coordsC := make([]int, 100000)
	for i := range coordsR {
		coordsR[i] = r.Intn(5000)
		coordsC[i] = r.Intn(2000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bd := NewBuilder(5000, 2000)
		for j := range coordsR {
			bd.Add(coordsR[j], coordsC[j])
		}
		_ = bd.Build()
	}
}

func BenchmarkHas(b *testing.B) {
	r := rng.New(2)
	m := randomMatrix(r, 1000, 1000, 50000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Has(i%1000, (i*7)%1000)
	}
}

func BenchmarkTranspose(b *testing.B) {
	r := rng.New(3)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := randomMatrix(r, 2000, 1000, 50000)
		b.StartTimer()
		_ = m.Transpose()
	}
}

func TestPadTo(t *testing.T) {
	b := NewBuilder(3, 4)
	b.Add(0, 1)
	b.Add(2, 3)
	m := b.Build()

	p := m.PadTo(5, 6)
	if p.Rows() != 5 || p.Cols() != 6 {
		t.Fatalf("shape = %dx%d, want 5x6", p.Rows(), p.Cols())
	}
	if p.NNZ() != m.NNZ() {
		t.Fatalf("nnz = %d, want %d", p.NNZ(), m.NNZ())
	}
	if !p.Has(0, 1) || !p.Has(2, 3) {
		t.Fatal("positives lost by padding")
	}
	for r := 3; r < 5; r++ {
		if p.RowNNZ(r) != 0 {
			t.Fatalf("padded row %d has %d positives", r, p.RowNNZ(r))
		}
	}
	// Transpose of the padded view covers the padded columns.
	if got := p.Transpose().Rows(); got != 6 {
		t.Fatalf("transpose rows = %d, want 6", got)
	}
	if p.ColNNZ(5) != 0 {
		t.Fatal("padded column has positives")
	}
	// Same shape returns the receiver; shrinking panics.
	if m.PadTo(3, 4) != m {
		t.Fatal("PadTo(same shape) did not return the receiver")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("PadTo shrink did not panic")
		}
	}()
	m.PadTo(2, 4)
}
