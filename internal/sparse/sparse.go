// Package sparse implements sparse binary matrices for one-class
// collaborative filtering.
//
// The rating matrix R of the paper has r_ui ∈ {0, 1}, where 1 marks a
// positive example (a purchase) and 0 marks an unknown. Only the positives
// are stored. The central type is Matrix, a compressed sparse row (CSR)
// structure with an optional column-compressed view (the transpose), which
// the OCuLaR trainer needs because the block coordinate descent sweeps once
// over items (columns) and once over users (rows) per iteration.
//
// Matrices are immutable after construction; build them through a Builder.
// Immutability lets trainers, evaluators, and grid-search workers share one
// matrix across goroutines without locks.
package sparse

import (
	"fmt"
	"sort"
)

// Builder accumulates (row, col) coordinates and produces an immutable
// Matrix. Duplicate coordinates are merged. The zero value is not usable;
// construct with NewBuilder.
type Builder struct {
	rows, cols int
	entries    []coord
}

type coord struct{ r, c int32 }

// NewBuilder returns a builder for a matrix with the given dimensions.
// It panics if either dimension is negative.
func NewBuilder(rows, cols int) *Builder {
	if rows < 0 || cols < 0 {
		panic("sparse: negative dimension")
	}
	return &Builder{rows: rows, cols: cols}
}

// Add records a positive example at (row, col). It panics if the coordinate
// is out of range.
func (b *Builder) Add(row, col int) {
	if row < 0 || row >= b.rows || col < 0 || col >= b.cols {
		panic(fmt.Sprintf("sparse: coordinate (%d,%d) out of range %dx%d", row, col, b.rows, b.cols))
	}
	b.entries = append(b.entries, coord{int32(row), int32(col)})
}

// Build sorts and deduplicates the accumulated coordinates and returns the
// finished matrix. The builder may be reused afterwards; its entries are
// retained.
func (b *Builder) Build() *Matrix {
	es := make([]coord, len(b.entries))
	copy(es, b.entries)
	sort.Slice(es, func(i, j int) bool {
		if es[i].r != es[j].r {
			return es[i].r < es[j].r
		}
		return es[i].c < es[j].c
	})
	// Deduplicate in place.
	dst := 0
	for i := range es {
		if i > 0 && es[i] == es[i-1] {
			continue
		}
		es[dst] = es[i]
		dst++
	}
	es = es[:dst]

	m := &Matrix{
		rows:   b.rows,
		cols:   b.cols,
		rowPtr: make([]int32, b.rows+1),
		colIdx: make([]int32, len(es)),
	}
	for i, e := range es {
		m.rowPtr[e.r+1]++
		m.colIdx[i] = e.c
	}
	for r := 0; r < b.rows; r++ {
		m.rowPtr[r+1] += m.rowPtr[r]
	}
	return m
}

// Matrix is an immutable sparse binary matrix in CSR form. All methods are
// safe for concurrent use.
type Matrix struct {
	rows, cols int
	rowPtr     []int32 // len rows+1; row r occupies colIdx[rowPtr[r]:rowPtr[r+1]]
	colIdx     []int32 // sorted within each row

	transposed *Matrix // lazily built by Transpose; nil until then
}

// Rows returns the number of rows (users).
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns (items).
func (m *Matrix) Cols() int { return m.cols }

// NNZ returns the number of positive examples stored.
func (m *Matrix) NNZ() int { return len(m.colIdx) }

// Density returns NNZ / (rows*cols), or 0 for an empty shape.
func (m *Matrix) Density() float64 {
	if m.rows == 0 || m.cols == 0 {
		return 0
	}
	return float64(m.NNZ()) / (float64(m.rows) * float64(m.cols))
}

// Row returns the sorted column indices of the positives in row r. The
// returned slice aliases internal storage and must not be modified.
func (m *Matrix) Row(r int) []int32 {
	return m.colIdx[m.rowPtr[r]:m.rowPtr[r+1]]
}

// RowNNZ returns the number of positives in row r.
func (m *Matrix) RowNNZ(r int) int {
	return int(m.rowPtr[r+1] - m.rowPtr[r])
}

// Has reports whether (r, c) is a positive example, in O(log RowNNZ(r)).
func (m *Matrix) Has(r, c int) bool {
	row := m.Row(r)
	i := sort.Search(len(row), func(i int) bool { return row[i] >= int32(c) })
	return i < len(row) && row[i] == int32(c)
}

// Transpose returns the column-major view of m: a Matrix whose row j lists
// the rows of m that have a positive in column j. The result is cached, so
// repeated calls are cheap. The cached transpose shares no mutable state.
//
// Transpose must be called once before concurrent use if goroutines will
// call it concurrently; typical trainers call it during setup.
func (m *Matrix) Transpose() *Matrix {
	if m.transposed != nil {
		return m.transposed
	}
	t := &Matrix{
		rows:   m.cols,
		cols:   m.rows,
		rowPtr: make([]int32, m.cols+1),
		colIdx: make([]int32, len(m.colIdx)),
	}
	for _, c := range m.colIdx {
		t.rowPtr[c+1]++
	}
	for c := 0; c < m.cols; c++ {
		t.rowPtr[c+1] += t.rowPtr[c]
	}
	next := make([]int32, m.cols)
	copy(next, t.rowPtr[:m.cols])
	for r := 0; r < m.rows; r++ {
		for _, c := range m.Row(r) {
			t.colIdx[next[c]] = int32(r)
			next[c]++
		}
	}
	t.transposed = m
	m.transposed = t
	return t
}

// Each calls fn for every positive example in row-major order.
func (m *Matrix) Each(fn func(r, c int)) {
	for r := 0; r < m.rows; r++ {
		for _, c := range m.Row(r) {
			fn(r, int(c))
		}
	}
}

// Coords returns all positive coordinates in row-major order as parallel
// slices. The slices are freshly allocated.
func (m *Matrix) Coords() (rows, cols []int32) {
	rows = make([]int32, m.NNZ())
	cols = make([]int32, m.NNZ())
	i := 0
	m.Each(func(r, c int) {
		rows[i] = int32(r)
		cols[i] = int32(c)
		i++
	})
	return rows, cols
}

// SelectEntries returns a new matrix of the same shape containing only the
// positives whose row-major index appears in keep. Indices in keep refer to
// the ordering of Coords. Out-of-range indices cause a panic.
func (m *Matrix) SelectEntries(keep []int) *Matrix {
	rows, cols := m.Coords()
	b := NewBuilder(m.rows, m.cols)
	for _, k := range keep {
		b.Add(int(rows[k]), int(cols[k]))
	}
	return b.Build()
}

// ColNNZ returns the number of positives in column c. It materializes the
// transpose on first use.
func (m *Matrix) ColNNZ(c int) int {
	return m.Transpose().RowNNZ(c)
}

// Col returns the sorted row indices of positives in column c. The returned
// slice aliases the transpose's storage and must not be modified.
func (m *Matrix) Col(c int) []int32 {
	return m.Transpose().Row(c)
}

// PadTo returns a view of m extended to rows × cols: the same positives,
// with the added rows empty and the added columns never occupied. The
// result shares m's column-index storage (both are immutable), so padding
// costs O(rows), not O(nnz) — the serving layer pads its exclusion matrix
// up to a freshly retrained, grown model's shape on every reload. PadTo
// panics if either dimension shrinks; it returns m itself when the shape
// already matches.
func (m *Matrix) PadTo(rows, cols int) *Matrix {
	if rows < m.rows || cols < m.cols {
		panic(fmt.Sprintf("sparse: PadTo(%d,%d) shrinks %dx%d", rows, cols, m.rows, m.cols))
	}
	if rows == m.rows && cols == m.cols {
		return m
	}
	rowPtr := make([]int32, rows+1)
	copy(rowPtr, m.rowPtr)
	nnz := m.rowPtr[m.rows]
	for r := m.rows; r < rows; r++ {
		rowPtr[r+1] = nnz
	}
	return &Matrix{rows: rows, cols: cols, rowPtr: rowPtr, colIdx: m.colIdx}
}

// Equal reports whether two matrices have identical shape and positives.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.rows != o.rows || m.cols != o.cols || len(m.colIdx) != len(o.colIdx) {
		return false
	}
	for i := range m.rowPtr {
		if m.rowPtr[i] != o.rowPtr[i] {
			return false
		}
	}
	for i := range m.colIdx {
		if m.colIdx[i] != o.colIdx[i] {
			return false
		}
	}
	return true
}

// String returns a compact description like "sparse.Matrix(100x50, nnz=420)".
func (m *Matrix) String() string {
	return fmt.Sprintf("sparse.Matrix(%dx%d, nnz=%d)", m.rows, m.cols, m.NNZ())
}

// Dense renders the matrix as a dense [][]bool, for tests and small
// visualizations only.
func (m *Matrix) Dense() [][]bool {
	d := make([][]bool, m.rows)
	for r := range d {
		d[r] = make([]bool, m.cols)
		for _, c := range m.Row(r) {
			d[r][c] = true
		}
	}
	return d
}

// FromDense builds a matrix from a dense boolean grid. All rows must have
// equal length; it panics otherwise.
func FromDense(d [][]bool) *Matrix {
	rows := len(d)
	cols := 0
	if rows > 0 {
		cols = len(d[0])
	}
	b := NewBuilder(rows, cols)
	for r, rowVals := range d {
		if len(rowVals) != cols {
			panic("sparse: ragged dense input")
		}
		for c, v := range rowVals {
			if v {
				b.Add(r, c)
			}
		}
	}
	return b.Build()
}
