package sparse

// MatrixMarket coordinate I/O. The pattern variant is the natural
// interchange format for one-class matrices (only coordinates, no values),
// and most public sparse datasets ship in this format, so the repository
// can exchange data with standard tooling.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

const mmHeader = "%%MatrixMarket matrix coordinate"

// WriteMatrixMarket serializes m in MatrixMarket "coordinate pattern
// general" format with 1-based indices.
func WriteMatrixMarket(w io.Writer, m *Matrix) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%s pattern general\n%d %d %d\n", mmHeader, m.Rows(), m.Cols(), m.NNZ()); err != nil {
		return err
	}
	var err error
	m.Each(func(r, c int) {
		if err == nil {
			_, err = fmt.Fprintf(bw, "%d %d\n", r+1, c+1)
		}
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// ReadMatrixMarket parses a MatrixMarket coordinate stream. Pattern
// matrices yield their coordinates directly; integer and real matrices
// treat any non-zero value as a positive example (the binarization
// convention of one-class data). The "symmetric" qualifier mirrors entries
// across the diagonal.
func ReadMatrixMarket(r io.Reader) (*Matrix, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	if !sc.Scan() {
		return nil, fmt.Errorf("sparse: empty MatrixMarket stream")
	}
	header := strings.ToLower(strings.TrimSpace(sc.Text()))
	if !strings.HasPrefix(header, strings.ToLower(mmHeader)) {
		return nil, fmt.Errorf("sparse: bad MatrixMarket header %q", sc.Text())
	}
	fields := strings.Fields(header)
	if len(fields) < 5 {
		return nil, fmt.Errorf("sparse: short MatrixMarket header %q", sc.Text())
	}
	valueType := fields[3] // pattern | integer | real
	symmetry := fields[4]  // general | symmetric
	switch valueType {
	case "pattern", "integer", "real":
	default:
		return nil, fmt.Errorf("sparse: unsupported MatrixMarket value type %q", valueType)
	}
	switch symmetry {
	case "general", "symmetric":
	default:
		return nil, fmt.Errorf("sparse: unsupported MatrixMarket symmetry %q", symmetry)
	}
	hasValue := valueType != "pattern"

	// Skip comments, read the size line.
	var rows, cols, nnz int
	sized := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscanf(line, "%d %d %d", &rows, &cols, &nnz); err != nil {
			return nil, fmt.Errorf("sparse: bad MatrixMarket size line %q: %v", line, err)
		}
		sized = true
		break
	}
	if !sized {
		return nil, fmt.Errorf("sparse: missing MatrixMarket size line")
	}
	if rows < 0 || cols < 0 || nnz < 0 {
		return nil, fmt.Errorf("sparse: negative MatrixMarket dimensions %dx%d nnz=%d", rows, cols, nnz)
	}
	if symmetry == "symmetric" && rows != cols {
		return nil, fmt.Errorf("sparse: symmetric MatrixMarket matrix must be square, got %dx%d", rows, cols)
	}

	b := NewBuilder(rows, cols)
	read := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		parts := strings.Fields(line)
		want := 2
		if hasValue {
			want = 3
		}
		if len(parts) < want {
			return nil, fmt.Errorf("sparse: MatrixMarket entry %q has %d fields, want %d", line, len(parts), want)
		}
		ri, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("sparse: bad row index %q: %v", parts[0], err)
		}
		ci, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("sparse: bad column index %q: %v", parts[1], err)
		}
		if ri < 1 || ri > rows || ci < 1 || ci > cols {
			return nil, fmt.Errorf("sparse: MatrixMarket entry (%d,%d) outside %dx%d", ri, ci, rows, cols)
		}
		if hasValue {
			v, err := strconv.ParseFloat(parts[2], 64)
			if err != nil {
				return nil, fmt.Errorf("sparse: bad value %q: %v", parts[2], err)
			}
			if v == 0 {
				read++
				continue // explicit zero: not a positive example
			}
		}
		b.Add(ri-1, ci-1)
		if symmetry == "symmetric" && ri != ci {
			b.Add(ci-1, ri-1)
		}
		read++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sparse: reading MatrixMarket entries: %w", err)
	}
	if read != nnz {
		return nil, fmt.Errorf("sparse: MatrixMarket declared %d entries but stream held %d", nnz, read)
	}
	return b.Build(), nil
}
