package trainer

import (
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestMetricsNilSafe(t *testing.T) {
	var m *Metrics
	m.SetBacklog(5)
	m.ObserveCycle(&Cycle{}, nil)
	m.ObserveCycle(nil, errors.New("x"))
}

func TestMetricsObserveCycle(t *testing.T) {
	m := NewMetrics()
	m.SetBacklog(42)
	m.ObserveCycle(&Cycle{
		ReplayDur: 2 * time.Millisecond,
		TrainDur:  30 * time.Millisecond,
		SaveDur:   time.Millisecond,
		// Rollout skipped this cycle: must record nothing.
		Duration: 40 * time.Millisecond,
	}, nil)
	m.ObserveCycle(&Cycle{Duration: time.Millisecond}, errors.New("train blew up"))

	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	m.ServeHTTP(rec, req)
	var out struct {
		Backlog     int64 `json:"feed_backlog"`
		Cycles      int64 `json:"cycles"`
		CycleErrors int64 `json:"cycle_errors"`
		Phases      map[string]struct {
			Requests uint64  `json:"requests"`
			P50      float64 `json:"p50_micros"`
		} `json:"phases"`
		LastCycle struct {
			Outcome string `json:"outcome"`
			Error   string `json:"error"`
		} `json:"last_cycle"`
	}
	if err := json.NewDecoder(rec.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Backlog != 42 || out.Cycles != 2 || out.CycleErrors != 1 {
		t.Fatalf("backlog=%d cycles=%d errors=%d", out.Backlog, out.Cycles, out.CycleErrors)
	}
	if out.Phases["train"].Requests != 1 || out.Phases["train"].P50 <= 0 {
		t.Fatalf("train phase = %+v", out.Phases["train"])
	}
	if out.Phases["rollout"].Requests != 0 {
		t.Fatal("skipped rollout phase recorded an observation")
	}
	if out.Phases["cycle"].Requests != 2 {
		t.Fatalf("cycle phase requests = %d, want 2", out.Phases["cycle"].Requests)
	}
	if out.LastCycle.Outcome != "error" || out.LastCycle.Error != "train blew up" {
		t.Fatalf("last_cycle = %+v", out.LastCycle)
	}
}

func TestMetricsPrometheusFormat(t *testing.T) {
	m := NewMetrics()
	m.ObserveCycle(&Cycle{TrainDur: time.Millisecond, Duration: 2 * time.Millisecond}, nil)
	rec := httptest.NewRecorder()
	m.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=prometheus", nil))
	if ct := rec.Header().Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("Content-Type = %q", ct)
	}
	body := rec.Body.String()
	if err := obs.CheckExposition(strings.NewReader(body)); err != nil {
		t.Fatalf("trainer exposition fails the checker: %v", err)
	}
	for _, want := range []string{
		"ocular_feed_backlog 0",
		"ocular_cycles 1",
		`ocular_phases_requests{phase="train"} 1`,
		`ocular_last_cycle_outcome{value="ok"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("trainer exposition missing %q", want)
		}
	}
}
