package trainer

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/feed"
	"repro/internal/serve"
	"repro/internal/sparse"
)

var testTrainCfg = core.Config{K: 6, Lambda: 2, MaxIter: 40, Seed: 3}

// seedModel trains a cold model on base and saves it at path.
func seedModel(t testing.TB, base *sparse.Matrix, path string) *core.Model {
	t.Helper()
	res, err := core.Train(base, testTrainCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Model.SaveModelFileOpts(path, core.SaveOptions{Float32: true}); err != nil {
		t.Fatal(err)
	}
	return res.Model
}

func writeFeed(t testing.TB, dir string, events ...feed.Event) {
	t.Helper()
	l, err := feed.Open(dir, feed.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(events...); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWarmStartGrownMatrices pins the documented behavior of retraining
// after the feed introduced new users and items: the warm start grows
// deterministically — trained factor rows are kept, new rows start at
// zero and are revived by the seeded warm-start jitter — and never
// rejects growth. (The rejected direction is shrinking, pinned below in
// TestWarmStartShrinkRejected.)
func TestWarmStartGrownMatrices(t *testing.T) {
	base := dataset.SyntheticSmall(7).Dataset.R // 120x80
	nu, ni := base.Rows(), base.Cols()
	cases := []struct {
		name                 string
		events               []feed.Event
		wantUsers, wantItems int
		wantGrown            bool
	}{
		{"no growth", []feed.Event{{User: 3, Item: 5}}, nu, ni, false},
		{"new users", []feed.Event{{User: uint32(nu)}, {User: uint32(nu + 2), Item: 1}}, nu + 3, ni, true},
		{"new items", []feed.Event{{Item: uint32(ni + 4)}}, nu, ni + 5, true},
		{"both", []feed.Event{{User: uint32(nu + 1), Item: uint32(ni)}}, nu + 2, ni + 1, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			modelPath := filepath.Join(dir, "model.bin")
			old := seedModel(t, base, modelPath)
			feedDir := filepath.Join(dir, "feed")
			writeFeed(t, feedDir, tc.events...)

			tr, err := New(Config{
				FeedDir: feedDir, Base: base, Train: testTrainCfg, ModelPath: modelPath,
			})
			if err != nil {
				t.Fatal(err)
			}
			cy, err := tr.RunOnce(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if !cy.WarmStarted {
				t.Error("cycle did not warm-start from the saved model")
			}
			if cy.Grown != tc.wantGrown {
				t.Errorf("Grown = %v, want %v", cy.Grown, tc.wantGrown)
			}
			if cy.Users != tc.wantUsers || cy.Items != tc.wantItems {
				t.Errorf("trained shape %dx%d, want %dx%d", cy.Users, cy.Items, tc.wantUsers, tc.wantItems)
			}
			if cy.NNZ != base.NNZ()+len(tc.events) {
				t.Errorf("trained nnz %d, want %d", cy.NNZ, base.NNZ()+len(tc.events))
			}
			got, err := core.LoadModelFile(modelPath)
			if err != nil {
				t.Fatal(err)
			}
			if got.NumUsers() != tc.wantUsers || got.NumItems() != tc.wantItems || got.K() != old.K() {
				t.Errorf("saved model %v, want %dx%d K=%d", got, tc.wantUsers, tc.wantItems, old.K())
			}
			// Determinism: a second trainer over the same feed and seed
			// produces bit-identical factors.
			tr2, err := New(Config{
				FeedDir: feedDir, Base: base, Train: testTrainCfg,
				ModelPath: func() string {
					p := filepath.Join(dir, "model2.bin")
					if err := old.SaveModelFileOpts(p, core.SaveOptions{}); err != nil {
						t.Fatal(err)
					}
					return p
				}(),
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := tr2.RunOnce(context.Background()); err != nil {
				t.Fatal(err)
			}
			got2, err := core.LoadModelFile(filepath.Join(dir, "model2.bin"))
			if err != nil {
				t.Fatal(err)
			}
			for u := 0; u < got.NumUsers(); u++ {
				a, b := got.UserFactor(u), got2.UserFactor(u)
				for c := range a {
					if a[c] != b[c] {
						t.Fatalf("grown retrain not deterministic: user %d factor differs", u)
					}
				}
			}
		})
	}
}

// TestWarmStartShrinkRejected: the catalogue cannot shrink. Inside a
// trainer the trained shape always covers the previous model, so the
// shrinking path is core.Model.Grow's documented error — pinned here
// because the trainer's warm start relies on it.
func TestWarmStartShrinkRejected(t *testing.T) {
	base := dataset.SyntheticSmall(9).Dataset.R
	model := seedModel(t, base, filepath.Join(t.TempDir(), "m.bin"))
	for _, shape := range [][2]int{
		{base.Rows() - 1, base.Cols()},
		{base.Rows(), base.Cols() - 1},
		{base.Rows() - 5, base.Cols() - 5},
	} {
		if _, err := model.Grow(shape[0], shape[1]); err == nil {
			t.Errorf("Grow(%d,%d) from %dx%d: shrink accepted", shape[0], shape[1], base.Rows(), base.Cols())
		}
	}
	// And a trainer whose base+feed+model shape never shrinks: even with
	// a tiny base, the previous model's dims keep the matrix covering it.
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "model.bin")
	seedModel(t, base, modelPath)
	tiny := sparse.NewBuilder(3, 3).Build()
	feedDir := filepath.Join(dir, "feed")
	writeFeed(t, feedDir, feed.Event{User: 1, Item: 1})
	tr, err := New(Config{FeedDir: feedDir, Base: tiny, Train: testTrainCfg, ModelPath: modelPath})
	if err != nil {
		t.Fatal(err)
	}
	cy, err := tr.RunOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if cy.Users != base.Rows() || cy.Items != base.Cols() {
		t.Errorf("matrix %dx%d shrank below the previous model %dx%d", cy.Users, cy.Items, base.Rows(), base.Cols())
	}
}

func TestNewValidation(t *testing.T) {
	dir := t.TempDir()
	good := Config{FeedDir: dir, ModelPath: filepath.Join(dir, "m.bin"), Train: core.Config{K: 2}}
	if _, err := New(good); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []func(Config) Config{
		func(c Config) Config { c.FeedDir = ""; return c },
		func(c Config) Config { c.ModelPath = ""; return c },
		func(c Config) Config { c.Train.K = 0; return c },
		func(c Config) Config { c.MinNewPositives = -1; return c },
		func(c Config) Config { c.MaxInterval = -time.Second; return c },
		func(c Config) Config { c.WarmCacheUsers = -1; return c },
	}
	for i, mutate := range bad {
		if _, err := New(mutate(good)); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	// A model with mismatched K at ModelPath is refused up front.
	base := dataset.SyntheticSmall(11).Dataset.R
	seedModel(t, base, good.ModelPath) // K=6
	if _, err := New(good); err == nil {
		t.Error("K mismatch between saved model and Train.K accepted")
	}
}

// TestPipelineEndToEnd is the acceptance test of the continuous-training
// pipeline: a server starts on a seed model, new positives arrive
// through /v1/ingest, the trainer runs one cycle, and the server ends up
// serving a strictly newer model whose recommendations reflect the
// ingested positives — through the warm-start path, not a cold retrain —
// with the rank cache pre-warmed for the hottest users.
func TestPipelineEndToEnd(t *testing.T) {
	base := dataset.SyntheticSmall(1).Dataset.R
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "model.bin")
	oldModel := seedModel(t, base, modelPath)

	feedDir := filepath.Join(dir, "feed")
	feedLog, err := feed.Open(feedDir, feed.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer feedLog.Close()

	srv, err := serve.NewFromFile(serve.Config{
		ModelPath: modelPath,
		Train:     base,
		FoldIn:    core.Config{Lambda: 2},
		Feed:      feedLog,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// The user's three worst-scored unseen items become new positives.
	u := 2
	newItems := worstItems(oldModel, base, u, 3)
	scoresBefore := servedScores(t, ts.URL, u, base.Cols(), newItems)

	// A brand-new user (beyond the model) arrives with user 0's history.
	newUser := base.Rows()
	var history []int
	for _, i := range base.Row(0) {
		history = append(history, int(i))
	}
	ingest(t, ts.URL, map[string]any{"user": u, "items": newItems})
	ingest(t, ts.URL, map[string]any{"user": newUser, "items": history})

	mets := NewMetrics()
	tr, err := New(Config{
		FeedDir:        feedDir,
		Base:           base,
		Train:          testTrainCfg,
		ModelPath:      modelPath,
		Save:           core.SaveOptions{Float32: true},
		ServerURL:      ts.URL,
		WarmCacheUsers: 16,
		WarmCacheM:     8,
		Logf:           t.Logf,
		Metrics:        mets,
	})
	if err != nil {
		t.Fatal(err)
	}
	cy, err := tr.RunOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// The wired Metrics saw the cycle: each phase that ran landed one
	// observation in its histogram.
	if mets.cycles.Value() != 1 || mets.cycleErrors.Value() != 0 {
		t.Fatalf("metrics cycles=%d errors=%d, want 1/0", mets.cycles.Value(), mets.cycleErrors.Value())
	}
	for name, h := range map[string]uint64{
		"replay":  mets.replay.Snapshot().Count,
		"train":   mets.train.Snapshot().Count,
		"save":    mets.save.Snapshot().Count,
		"rollout": mets.rollout.Snapshot().Count,
		"warm":    mets.warm.Snapshot().Count,
		"cycle":   mets.cycle.Snapshot().Count,
	} {
		if h != 1 {
			t.Errorf("phase %s recorded %d observations, want 1", name, h)
		}
	}

	// Warm-start path, not a cold retrain; grown for the new user.
	if !cy.WarmStarted || !cy.Grown {
		t.Fatalf("cycle warm=%v grown=%v, want both", cy.WarmStarted, cy.Grown)
	}
	// The versioned handshake confirmed a strictly newer model, served
	// from the mmapped float32 section.
	if cy.ServerVersion != 2 || srv.Version() != 2 {
		t.Fatalf("server version %d (handshake %d), want 2", srv.Version(), cy.ServerVersion)
	}
	if !cy.Mapped || !cy.ServedFloat32 {
		t.Errorf("serving mode mapped=%v float32=%v, want both after rollout", cy.Mapped, cy.ServedFloat32)
	}
	if got := srv.Model().NumUsers(); got != base.Rows()+1 {
		t.Fatalf("served model has %d users, want %d (grown)", got, base.Rows()+1)
	}

	// The warm start must have steered training: a cold retrain of the
	// same grown matrix with the same seed lands on different factors.
	grownCold := coldModel(t, tr, feedDir)
	same := true
	for c, v := range grownCold.UserFactor(u) {
		if srv.Model().UserFactor(u)[c] != v {
			same = false
			break
		}
	}
	if same {
		t.Error("served factors equal a cold retrain's: warm-start path not exercised")
	}

	// Recommendations reflect the ingested positives: the served score of
	// every new positive rises materially — the warm-started retrain
	// fitted them as training positives. (Rank alone is not a sound probe:
	// lifting u's affinity toward a new positive's co-clusters also lifts
	// that positive's cluster-mates, which can leapfrog a formerly
	// worst-scored item even as its own probability climbs.)
	scoresAfter := servedScores(t, ts.URL, u, base.Cols(), newItems)
	for _, i := range newItems {
		before, after := scoresBefore[i], scoresAfter[i]
		t.Logf("ingested positive %d: served score %.6f -> %.6f", i, before, after)
		// 1e-3 dwarfs the float32 serving quantization (< 1.5e-6) while
		// staying far below any fitted positive's probability.
		if after <= before+1e-3 {
			t.Errorf("ingested positive %d: served score %v -> %v, want a material increase", i, before, after)
		}
	}

	// The new user serves from the rolled-out model.
	var rec struct {
		Items        []struct{ Item int } `json:"items"`
		ModelVersion uint64               `json:"model_version"`
	}
	postJSON(t, ts.URL+"/v1/recommend", map[string]any{"user": newUser, "m": 5}, &rec, 200)
	if rec.ModelVersion != 2 || len(rec.Items) != 5 {
		t.Fatalf("new user response version=%d items=%d", rec.ModelVersion, len(rec.Items))
	}

	// The cache was warmed through the server's rank engine.
	if cy.CacheWarmed != 16 {
		t.Errorf("CacheWarmed = %d, want 16", cy.CacheWarmed)
	}
	var metrics struct {
		Cache struct {
			Entries int64 `json:"entries"`
			Ranked  int64 `json:"ranked"`
		} `json:"cache"`
	}
	getJSON(t, ts.URL+"/metrics", &metrics)
	if metrics.Cache.Entries < 16 {
		t.Errorf("cache holds %d lists after warming, want >= 16", metrics.Cache.Entries)
	}
}

// coldModel trains the trainer's current matrix without a warm start.
func coldModel(t testing.TB, tr *Trainer, feedDir string) *core.Model {
	t.Helper()
	events, err := feed.Events(feedDir)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := tr.buildMatrix(events)
	res, err := core.Train(m, testTrainCfg)
	if err != nil {
		t.Fatal(err)
	}
	return res.Model
}

// worstItems returns the n lowest-scored items for u that are not
// training positives.
func worstItems(m *core.Model, train *sparse.Matrix, u, n int) []int {
	scores := make([]float64, train.Cols())
	m.ScoreUser(u, scores)
	items := make([]int, 0, train.Cols())
	for i := range scores {
		if !train.Has(u, i) {
			items = append(items, i)
		}
	}
	for k := 0; k < n; k++ {
		for j := k + 1; j < len(items); j++ {
			if scores[items[j]] < scores[items[k]] {
				items[k], items[j] = items[j], items[k]
			}
		}
	}
	return items[:n]
}

// servedScores asks the server for the full ranking of user u and
// returns the served score of each requested item.
func servedScores(t testing.TB, url string, u, m int, items []int) map[int]float64 {
	t.Helper()
	var resp struct {
		Items []struct {
			Item  int     `json:"item"`
			Score float64 `json:"score"`
		} `json:"items"`
	}
	postJSON(t, url+"/v1/recommend", map[string]any{"user": u, "m": m}, &resp, 200)
	scores := make(map[int]float64, len(items))
	for _, it := range resp.Items {
		for _, i := range items {
			if it.Item == i {
				scores[i] = it.Score
			}
		}
	}
	for _, i := range items {
		if _, ok := scores[i]; !ok {
			t.Fatalf("item %d missing from user %d's full ranking", i, u)
		}
	}
	return scores
}

func ingest(t testing.TB, url string, body map[string]any) {
	t.Helper()
	postJSON(t, url+"/v1/ingest", body, nil, 200)
}

func postJSON(t testing.TB, url string, body, out any, wantStatus int) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

func getJSON(t testing.TB, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// TestCrashRecoveryReplaysIdempotently: a torn tail on the feed's active
// segment — a crashed ingest writer — is truncated on the writer's
// reopen and ignored by the trainer's replay, and retraining over the
// recovered feed folds into exactly the same matrix.
func TestCrashRecoveryReplaysIdempotently(t *testing.T) {
	base := dataset.SyntheticSmall(13).Dataset.R
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "model.bin")
	seedModel(t, base, modelPath)
	feedDir := filepath.Join(dir, "feed")
	writeFeed(t, feedDir,
		feed.Event{User: 1, Item: 2},
		feed.Event{User: uint32(base.Rows()), Item: 3},
		feed.Event{User: 1, Item: 2}, // duplicate: must not double-count
	)

	tr, err := New(Config{FeedDir: feedDir, Base: base, Train: testTrainCfg, ModelPath: modelPath})
	if err != nil {
		t.Fatal(err)
	}
	cy1, err := tr.RunOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if cy1.NNZ != base.NNZ()+2 {
		t.Fatalf("nnz %d, want %d (duplicate event deduplicated)", cy1.NNZ, base.NNZ()+2)
	}

	// Crash: a torn half-record lands on the active segment.
	segs, err := filepath.Glob(filepath.Join(feedDir, "*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{7, 7, 7, 7, 7}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// The writer reopens (truncating the tear) and the trainer replays:
	// same matrix, same count — the tear and the duplicate change nothing.
	l, err := feed.Open(feedDir, feed.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Count(); got != 3 {
		t.Fatalf("recovered feed count %d, want 3", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	cy2, err := tr.RunOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if cy2.FeedPositives != cy1.FeedPositives || cy2.NNZ != cy1.NNZ ||
		cy2.Users != cy1.Users || cy2.Items != cy1.Items {
		t.Fatalf("replay after recovery differs: %+v vs %+v", cy2, cy1)
	}
	if cy2.NewPositives != 0 {
		t.Errorf("NewPositives = %d after recovery, want 0", cy2.NewPositives)
	}
}

// TestRunTriggers drives the polling loop: a backlog below
// MinNewPositives does not retrain until MaxInterval elapses; reaching
// the threshold retrains promptly.
func TestRunTriggers(t *testing.T) {
	base := dataset.SyntheticSmall(17).Dataset.R
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "model.bin")
	seedModel(t, base, modelPath)
	feedDir := filepath.Join(dir, "feed")
	l, err := feed.Open(feedDir, feed.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	quick := testTrainCfg
	quick.MaxIter = 2
	tr, err := New(Config{
		FeedDir: feedDir, Base: base, Train: quick, ModelPath: modelPath,
		MinNewPositives: 3,
		MaxInterval:     250 * time.Millisecond,
		PollInterval:    20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- tr.Run(ctx) }()

	mtimeAt := func() time.Time {
		st, err := os.Stat(modelPath)
		if err != nil {
			t.Fatal(err)
		}
		return st.ModTime()
	}
	orig := mtimeAt()

	// One positive: below the count threshold, within MaxInterval — the
	// immediate polls must not retrain.
	if err := l.Append(feed.Event{User: 1, Item: 1}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	if got := mtimeAt(); !got.Equal(orig) {
		t.Fatal("retrained below both triggers")
	}
	// ...but the elapsed-time trigger eventually picks the trickle up.
	deadline := time.Now().Add(5 * time.Second)
	for mtimeAt().Equal(orig) {
		if time.Now().After(deadline) {
			t.Fatal("MaxInterval trigger never fired")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// A burst beyond MinNewPositives retrains without waiting out the
	// interval.
	after := mtimeAt()
	if err := l.Append(feed.Event{User: 2, Item: 1}, feed.Event{User: 2, Item: 2}, feed.Event{User: 2, Item: 3}); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for mtimeAt().Equal(after) {
		if time.Now().After(deadline) {
			t.Fatal("count trigger never fired")
		}
		time.Sleep(20 * time.Millisecond)
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Run returned %v after cancel", err)
	}
}

// BenchmarkWarmStartRetrain measures one full warm-started trainer cycle
// (replay, fold, grow, train, save) without a server — the steady-state
// cost of the pipeline per rollout.
func BenchmarkWarmStartRetrain(b *testing.B) {
	base := dataset.SyntheticSmall(1).Dataset.R
	dir := b.TempDir()
	modelPath := filepath.Join(dir, "model.bin")
	seedModel(b, base, modelPath)
	feedDir := filepath.Join(dir, "feed")
	events := make([]feed.Event, 200)
	for i := range events {
		events[i] = feed.Event{User: uint32(i % (base.Rows() + 8)), Item: uint32(i % base.Cols())}
	}
	writeFeed(b, feedDir, events...)
	quick := testTrainCfg
	quick.MaxIter = 5
	tr, err := New(Config{FeedDir: feedDir, Base: base, Train: quick, ModelPath: modelPath})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := tr.RunOnce(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// TestFailedRolloutRetries: when the reload push fails (server down or
// restarting), the backlog markers must not advance — the next trigger
// evaluation still sees the backlog and retries the cycle, so the saved
// model is not stranded unserved until unrelated positives arrive.
func TestFailedRolloutRetries(t *testing.T) {
	base := dataset.SyntheticSmall(21).Dataset.R
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "model.bin")
	seedModel(t, base, modelPath)
	feedDir := filepath.Join(dir, "feed")
	writeFeed(t, feedDir, feed.Event{User: 1, Item: 1}, feed.Event{User: 2, Item: 2})

	var (
		failing = true
		served  = uint64(1) // the mock server's current model version
		swap    = true      // whether a reload actually advances it
	)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz":
			json.NewEncoder(w).Encode(map[string]any{"model_version": served})
		case "/v1/reload":
			if failing {
				w.WriteHeader(http.StatusInternalServerError)
				json.NewEncoder(w).Encode(map[string]string{"error": "server restarting"})
				return
			}
			if swap {
				served++
			}
			json.NewEncoder(w).Encode(map[string]any{"model_version": served, "mapped": true, "float32": true})
		default:
			t.Errorf("unexpected path %s", r.URL.Path)
		}
	}))
	defer ts.Close()

	quick := testTrainCfg
	quick.MaxIter = 3
	tr, err := New(Config{FeedDir: feedDir, Base: base, Train: quick, ModelPath: modelPath, ServerURL: ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.RunOnce(context.Background()); err == nil {
		t.Fatal("failed rollout reported as success")
	}
	// The backlog is still pending: the trigger must fire again.
	if n := int64(2); !tr.due(n - tr.lastCount) {
		t.Fatal("backlog markers advanced past a failed rollout; retry would never fire")
	}
	failing = false
	cy, err := tr.RunOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if cy.ServerVersion != 2 {
		t.Fatalf("retry cycle confirmed version %d, want 2", cy.ServerVersion)
	}
	// The retry reused the artifact saved by the failed cycle — an hour
	// of serve downtime must not mean an hour of back-to-back retrains.
	if !cy.RetrainSkipped || cy.Iterations != 0 {
		t.Errorf("retry cycle retrained (skipped=%v, %d iterations); want rollout-only retry",
			cy.RetrainSkipped, cy.Iterations)
	}
	if tr.due(2 - tr.lastCount) {
		t.Error("backlog still pending after a confirmed rollout")
	}

	// A reload that answers 200 without actually advancing the version (a
	// stale swap) must not be confirmed.
	swap = false
	writeFeed(t, feedDir, feed.Event{User: 3, Item: 3})
	if _, err := tr.RunOnce(context.Background()); err == nil {
		t.Fatal("stale swap (version did not advance) confirmed as a rollout")
	}
}

// TestMaxGrowthSkipsAbsurdIDs: a feed event naming an id far beyond the
// known catalogue (written by something other than the guarded ingest
// path) is skipped and counted, not trained — otherwise one absurd id in
// the append-only feed would make every retry allocate factor rows up to
// it, a permanent crash loop.
func TestMaxGrowthSkipsAbsurdIDs(t *testing.T) {
	base := dataset.SyntheticSmall(23).Dataset.R
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "model.bin")
	seedModel(t, base, modelPath)
	feedDir := filepath.Join(dir, "feed")
	writeFeed(t, feedDir,
		feed.Event{User: 1, Item: 1},
		feed.Event{User: 1 << 27, Item: 0},        // absurd user
		feed.Event{User: 0, Item: 1 << 27},        // absurd item
		feed.Event{User: uint32(base.Rows() + 2)}, // within headroom: grows
	)
	quick := testTrainCfg
	quick.MaxIter = 2
	tr, err := New(Config{FeedDir: feedDir, Base: base, Train: quick, ModelPath: modelPath, MaxGrowth: 100})
	if err != nil {
		t.Fatal(err)
	}
	cy, err := tr.RunOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if cy.SkippedEvents != 2 {
		t.Errorf("SkippedEvents = %d, want 2", cy.SkippedEvents)
	}
	if cy.Users != base.Rows()+3 || cy.Items != base.Cols() {
		t.Errorf("trained shape %dx%d, want %dx%d (absurd ids must not size the matrix)",
			cy.Users, cy.Items, base.Rows()+3, base.Cols())
	}
}

// TestWarmStartInheritsBias: retraining a bias-enabled served model must
// not silently drop its bias terms (core.Train's warm start only
// validates the opposite mismatch); the trainer inherits Config.Bias
// from the warm-start model.
func TestWarmStartInheritsBias(t *testing.T) {
	base := dataset.SyntheticSmall(25).Dataset.R
	biasCfg := testTrainCfg
	biasCfg.Bias = true
	biasCfg.MaxIter = 10
	res, err := core.Train(base, biasCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Model.HasBias() {
		t.Fatal("bias training produced a biasless model")
	}
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "model.bin")
	if err := res.Model.SaveModelFile(modelPath); err != nil {
		t.Fatal(err)
	}
	feedDir := filepath.Join(dir, "feed")
	writeFeed(t, feedDir, feed.Event{User: 1, Item: 1})

	plain := testTrainCfg // Bias deliberately unset
	plain.MaxIter = 5
	tr, err := New(Config{FeedDir: feedDir, Base: base, Train: plain, ModelPath: modelPath})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.RunOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	got, err := core.LoadModelFile(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	if !got.HasBias() {
		t.Fatal("retraining dropped the warm-start model's bias terms")
	}
}

// TestTornRecordNoPhantomBacklog: a full-size checksum-failing record in
// the active segment is counted by feed.Count's size estimate but
// skipped by the precise replay. The trigger baseline must use the
// estimator, or the one-record divergence would read as a permanent
// backlog and retrain an identical model on every poll forever.
func TestTornRecordNoPhantomBacklog(t *testing.T) {
	base := dataset.SyntheticSmall(27).Dataset.R
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "model.bin")
	seedModel(t, base, modelPath)
	feedDir := filepath.Join(dir, "feed")
	writeFeed(t, feedDir, feed.Event{User: 1, Item: 1}, feed.Event{User: 2, Item: 2})
	// The crash artifact: a complete 12-byte record whose checksum fails.
	segs, err := filepath.Glob(filepath.Join(feedDir, "*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 12)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	quick := testTrainCfg
	quick.MaxIter = 2
	tr, err := New(Config{FeedDir: feedDir, Base: base, Train: quick, ModelPath: modelPath})
	if err != nil {
		t.Fatal(err)
	}
	cy, err := tr.RunOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if cy.FeedPositives != 2 {
		t.Fatalf("replayed %d events, want 2 (torn record skipped)", cy.FeedPositives)
	}
	n, err := feed.Count(feedDir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("Count estimate %d, want 3 (torn record counted)", n)
	}
	if tr.due(n - tr.lastCount) {
		t.Error("torn record left a phantom backlog: the trigger would retrain forever")
	}
}

// TestWarmCacheToleratesShedding: the serve tier's admission control
// answering the warm-up batches with 429 is backpressure, not a rollout
// failure — the trainer logs, keeps what it warmed, and reports success.
func TestWarmCacheToleratesShedding(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":"overloaded: admission queue full"}`)
	}))
	defer ts.Close()

	var logged []string
	tr := &Trainer{
		cfg: Config{
			ServerURL: ts.URL,
			Logf:      func(f string, a ...any) { logged = append(logged, fmt.Sprintf(f, a...)) },
		}.withDefaults(),
		hotUsers: []int{0, 1, 2},
	}
	warmed, err := tr.warmCache(context.Background())
	if err != nil {
		t.Fatalf("429 during cache warm must not fail the rollout: %v", err)
	}
	if warmed != 0 {
		t.Fatalf("warmed = %d, want 0", warmed)
	}
	if calls.Load() != 1 {
		t.Fatalf("trainer kept hammering a shedding server: %d calls", calls.Load())
	}
	found := false
	for _, l := range logged {
		if strings.Contains(l, "shed by admission control") {
			found = true
		}
	}
	if !found {
		t.Errorf("backpressure not logged; got %q", logged)
	}
}

// Any other non-200 still fails the warm as before.
func TestWarmCacheRealErrorStillFails(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
	}))
	defer ts.Close()
	tr := &Trainer{
		cfg:      Config{ServerURL: ts.URL}.withDefaults(),
		hotUsers: []int{0, 1, 2},
	}
	if _, err := tr.warmCache(context.Background()); err == nil {
		t.Fatal("a 500 during cache warm must surface as an error")
	}
}
