package trainer

import (
	"encoding/json"
	"expvar"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Metrics is the trainer's optional observability surface: the feed
// backlog gauge Run's poll loop maintains, per-phase duration
// histograms fed by every cycle, and the last cycle's outcome. Wire it
// through Config.Metrics and serve it with ServeHTTP (cmd/ocular-trainer
// mounts it under -metrics-addr). All methods are nil-safe, so the
// trainer threads it unconditionally.
type Metrics struct {
	start       time.Time
	backlog     atomic.Int64
	cycles      expvar.Int
	cycleErrors expvar.Int

	// One histogram per cycle phase plus the whole cycle; a phase a
	// cycle skipped (e.g. train on the rollout-retry path) records
	// nothing.
	replay, train, save, rollout, warm, cycle obs.Histogram

	mu           sync.Mutex
	lastOutcome  string // "ok" or "error"; "" before the first cycle
	lastError    string
	lastFinished time.Time
}

// NewMetrics builds an empty Metrics.
func NewMetrics() *Metrics { return &Metrics{start: time.Now()} }

// SetBacklog records the current feed backlog (feed.Count units since
// the last completed cycle).
func (m *Metrics) SetBacklog(n int64) {
	if m == nil {
		return
	}
	m.backlog.Store(n)
}

// ObserveCycle records one RunOnce outcome: the per-phase durations of
// cy (when non-nil) and whether the cycle succeeded.
func (m *Metrics) ObserveCycle(cy *Cycle, err error) {
	if m == nil {
		return
	}
	m.cycles.Add(1)
	if err != nil {
		m.cycleErrors.Add(1)
	}
	if cy != nil {
		for _, ph := range []struct {
			h *obs.Histogram
			d time.Duration
		}{
			{&m.replay, cy.ReplayDur},
			{&m.train, cy.TrainDur},
			{&m.save, cy.SaveDur},
			{&m.rollout, cy.RolloutDur},
			{&m.warm, cy.WarmDur},
			{&m.cycle, cy.Duration},
		} {
			if ph.d > 0 {
				ph.h.Observe(ph.d, err != nil)
			}
		}
	}
	m.mu.Lock()
	if err != nil {
		m.lastOutcome, m.lastError = "error", err.Error()
	} else {
		m.lastOutcome, m.lastError = "ok", ""
	}
	m.lastFinished = time.Now()
	m.mu.Unlock()
}

// snapshot builds the metrics tree served in both formats.
func (m *Metrics) snapshot() map[string]any {
	phases := map[string]map[string]any{
		"replay":  obs.EndpointSnapshot(&m.replay),
		"train":   obs.EndpointSnapshot(&m.train),
		"save":    obs.EndpointSnapshot(&m.save),
		"rollout": obs.EndpointSnapshot(&m.rollout),
		"warm":    obs.EndpointSnapshot(&m.warm),
		"cycle":   obs.EndpointSnapshot(&m.cycle),
	}
	out := map[string]any{
		"uptime_seconds": time.Since(m.start).Seconds(),
		"feed_backlog":   m.backlog.Load(),
		"cycles":         m.cycles.Value(),
		"cycle_errors":   m.cycleErrors.Value(),
		"phases":         obs.Labeled{Label: "phase", Rows: phases},
	}
	m.mu.Lock()
	if m.lastOutcome != "" {
		last := map[string]any{
			"outcome":      m.lastOutcome,
			"finished_ago": time.Since(m.lastFinished).Seconds(),
		}
		if m.lastError != "" {
			last["error"] = m.lastError
		}
		out["last_cycle"] = last
	}
	m.mu.Unlock()
	return out
}

// ServeHTTP answers GET /metrics: JSON by default,
// ?format=prometheus for text exposition — both from one snapshot.
func (m *Metrics) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	out := m.snapshot()
	if r.URL.Query().Get("format") == "prometheus" {
		obs.WriteExposition(w, out)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(out)
}
