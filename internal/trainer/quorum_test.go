package trainer

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/feed"
	"repro/internal/serve"
	"repro/internal/sparse"
)

// shardedTier stands up a real sharded serving tier over the model at
// modelPath: item-partitioned serve shards (tail shard open-ended) and a
// cluster router in front of them, all on httptest listeners.
type shardedTier struct {
	shards    []*serve.Server
	shardURLs []string
	router    *cluster.Router
	routerURL string
}

func newShardedTier(t testing.TB, base *sparse.Matrix, modelPath string, nShards int) *shardedTier {
	t.Helper()
	items := base.Cols()
	per := items / nShards
	tier := &shardedTier{}
	for s := 0; s < nShards; s++ {
		lo, hi := s*per, (s+1)*per
		if s == nShards-1 {
			hi = -1 // tail: through the end of the catalogue, following growth
		}
		srv, err := serve.NewShardFromFile(serve.Config{
			ModelPath: modelPath, Train: base, ShardLo: lo, ShardHi: hi,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		tier.shards = append(tier.shards, srv)
		tier.shardURLs = append(tier.shardURLs, ts.URL)
	}
	rt, err := cluster.New(cluster.Config{Shards: tier.shardURLs})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	tier.router = rt
	tier.routerURL = ts.URL
	return tier
}

// TestQuorumRollout is the sharded-tier acceptance path: new positives
// arrive, the trainer retrains, every shard confirms the versioned
// reload handshake, the router's route table flips with a strictly
// advancing epoch, and the router's cache is warmed through the
// scatter-gather path — while requests keep succeeding throughout.
func TestQuorumRollout(t *testing.T) {
	base := dataset.SyntheticSmall(21).Dataset.R
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "model.bin")
	seedModel(t, base, modelPath)
	tier := newShardedTier(t, base, modelPath, 3)

	feedDir := filepath.Join(dir, "feed")
	writeFeed(t, feedDir,
		feed.Event{User: 2, Item: 7}, feed.Event{User: 5, Item: 1}, feed.Event{User: 9, Item: 3})

	tr, err := New(Config{
		FeedDir:        feedDir,
		Base:           base,
		Train:          testTrainCfg,
		ModelPath:      modelPath,
		ShardURLs:      tier.shardURLs,
		RouterURL:      tier.routerURL,
		WarmCacheUsers: 8,
		WarmCacheM:     5,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	cy, err := tr.RunOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	if len(cy.ShardVersions) != 3 {
		t.Fatalf("ShardVersions = %v, want 3 confirmations", cy.ShardVersions)
	}
	for i, v := range cy.ShardVersions {
		if v != 2 {
			t.Errorf("shard %d confirmed version %d, want 2", i, v)
		}
	}
	// Initial Refresh was epoch 1; the trainer's flip must advance it.
	if cy.RouterEpoch != 2 {
		t.Errorf("RouterEpoch = %d, want 2", cy.RouterEpoch)
	}
	if cy.CacheWarmed != 8 {
		t.Errorf("CacheWarmed = %d, want 8 (warmed through the router)", cy.CacheWarmed)
	}

	// The router serves from the flipped table, and the warm left real
	// entries in its cache.
	var rec struct {
		Items      []struct{ Item int } `json:"items"`
		RouteEpoch uint64               `json:"route_epoch"`
	}
	postJSON(t, tier.routerURL+"/v1/recommend", map[string]any{"user": 2, "m": 5}, &rec, 200)
	if rec.RouteEpoch != 2 || len(rec.Items) != 5 {
		t.Fatalf("post-rollout recommend: epoch=%d items=%d, want epoch 2 and 5 items", rec.RouteEpoch, len(rec.Items))
	}
	var metrics struct {
		Cache struct {
			Entries int64 `json:"entries"`
		} `json:"cache"`
	}
	getJSON(t, tier.routerURL+"/metrics", &metrics)
	if metrics.Cache.Entries < 8 {
		t.Errorf("router cache holds %d lists after warming, want >= 8", metrics.Cache.Entries)
	}
}

// TestQuorumAbortsBeforeFlip: a shard failing the reload handshake
// aborts the cycle before the router is flipped — the route table keeps
// its old epoch and old version pins, and requests keep being served
// (shards answer pinned requests from their snapshot history even after
// they themselves reloaded).
func TestQuorumAbortsBeforeFlip(t *testing.T) {
	base := dataset.SyntheticSmall(22).Dataset.R
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "model.bin")
	seedModel(t, base, modelPath)
	tier := newShardedTier(t, base, modelPath, 2)

	// A shard that is down: its listener is closed before the rollout.
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()

	feedDir := filepath.Join(dir, "feed")
	writeFeed(t, feedDir, feed.Event{User: 1, Item: 2})

	tr, err := New(Config{
		FeedDir:   feedDir,
		Base:      base,
		Train:     testTrainCfg,
		ModelPath: modelPath,
		// The live shards confirm first; the dead one aborts the quorum.
		ShardURLs: append(append([]string{}, tier.shardURLs...), dead.URL),
		RouterURL: tier.routerURL,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = tr.RunOnce(context.Background())
	if err == nil {
		t.Fatal("quorum rollout with a dead shard succeeded")
	}
	if !strings.Contains(err.Error(), "router not flipped") {
		t.Errorf("error %q does not state that the router was not flipped", err)
	}

	// Not flipped: the router still serves epoch 1 with version-1 pins,
	// and requests still succeed although both live shards already hold
	// version 2 (their snapshot history answers the pinned requests).
	var health struct {
		Epoch  uint64 `json:"epoch"`
		Shards []struct {
			Version uint64 `json:"model_version"`
		} `json:"shards"`
	}
	getJSON(t, tier.routerURL+"/healthz", &health)
	if health.Epoch != 1 {
		t.Fatalf("router epoch %d after aborted rollout, want 1 (unflipped)", health.Epoch)
	}
	for i, sh := range health.Shards {
		if sh.Version != 1 {
			t.Errorf("route table pins shard %d to version %d, want 1", i, sh.Version)
		}
	}
	for i, srv := range tier.shards {
		if v := srv.Version(); v != 2 {
			t.Errorf("live shard %d at version %d, want 2 (reloaded before the abort)", i, v)
		}
	}
	var rec struct {
		Items      []struct{ Item int } `json:"items"`
		RouteEpoch uint64               `json:"route_epoch"`
	}
	postJSON(t, tier.routerURL+"/v1/recommend", map[string]any{"user": 3, "m": 4}, &rec, 200)
	if rec.RouteEpoch != 1 || len(rec.Items) != 4 {
		t.Fatalf("mid-rollout recommend: epoch=%d items=%d, want epoch 1 and 4 items", rec.RouteEpoch, len(rec.Items))
	}
}

// TestQuorumFlipEpochCheck: a router whose flip does not advance the
// epoch fails the rollout — the trainer refuses to count a no-op flip
// as a confirmed rollout.
func TestQuorumFlipEpochCheck(t *testing.T) {
	base := dataset.SyntheticSmall(23).Dataset.R
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "model.bin")
	seedModel(t, base, modelPath)

	// A fake shard that plays the reload handshake correctly...
	var version atomic.Uint64
	version.Store(1)
	shard := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz":
			fmt.Fprintf(w, `{"model_version": %d}`, version.Load())
		case "/v1/reload":
			fmt.Fprintf(w, `{"model_version": %d, "model": "fake", "mapped": true, "float32": true}`, version.Add(1))
		default:
			http.NotFound(w, r)
		}
	}))
	defer shard.Close()
	// ...and a broken router whose epoch never moves.
	router := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"epoch": 5}`)
	}))
	defer router.Close()

	feedDir := filepath.Join(dir, "feed")
	writeFeed(t, feedDir, feed.Event{User: 1, Item: 1})
	tr, err := New(Config{
		FeedDir:   feedDir,
		Base:      base,
		Train:     testTrainCfg,
		ModelPath: modelPath,
		ShardURLs: []string{shard.URL},
		RouterURL: router.URL,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	cy, err := tr.RunOnce(context.Background())
	if err == nil || !strings.Contains(err.Error(), "did not advance") {
		t.Fatalf("stuck-epoch flip: err = %v, want an epoch-advance failure", err)
	}
	if len(cy.ShardVersions) != 1 || cy.ShardVersions[0] != 2 {
		t.Errorf("ShardVersions = %v, want the shard's confirmed version 2", cy.ShardVersions)
	}
	if cy.RouterEpoch != 0 {
		t.Errorf("RouterEpoch = %d, want 0 (flip unconfirmed)", cy.RouterEpoch)
	}
}

// TestQuorumConfigValidation pins the mutual exclusion between the
// single-server and sharded rollout targets.
func TestQuorumConfigValidation(t *testing.T) {
	dir := t.TempDir()
	good := Config{FeedDir: dir, ModelPath: filepath.Join(dir, "m.bin"), Train: testTrainCfg}
	for name, mutate := range map[string]func(Config) Config{
		"server and shards": func(c Config) Config {
			c.ServerURL, c.ShardURLs, c.RouterURL = "http://s", []string{"http://a"}, "http://r"
			return c
		},
		"server and router": func(c Config) Config {
			c.ServerURL, c.RouterURL = "http://s", "http://r"
			return c
		},
		"shards without router": func(c Config) Config {
			c.ShardURLs = []string{"http://a"}
			return c
		},
		"router without shards": func(c Config) Config {
			c.RouterURL = "http://r"
			return c
		},
	} {
		if _, err := New(mutate(good)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := New(func(c Config) Config {
		c.ShardURLs, c.RouterURL = []string{"http://a", "http://b"}, "http://r"
		return c
	}(good)); err != nil {
		t.Errorf("valid sharded config rejected: %v", err)
	}
}
