// Package trainer is the offline half of the continuous-training
// pipeline: a retrain loop that watches the interaction feed
// (internal/feed), decides when a new model is worth building, trains it
// warm from the last one, and rolls it out to a running serve process.
//
// One cycle is: replay the feed → fold the events into the base training
// matrix (growing it when new users or items appeared) → warm-start from
// the previous model via core.Model.Grow + Config.WarmStart → train →
// save a format-v2 artifact with core.SaveModelFileOpts → POST
// /v1/reload on the server and confirm through the versioned handshake
// that the swap landed → warm the server's rank cache for the hottest
// users by driving /v1/batch.
//
// Cycles are idempotent downstream of the feed: the full feed is
// replayed every time and the sparse builder deduplicates, so a replay
// of the same records — after a crash, a torn-tail truncation, or a
// redundant ingest — folds into the same training matrix. The catalogue
// never shrinks across warm-started cycles: the trained matrix covers
// the base matrix, every feed event and the previous model, and
// core.Model.Grow refuses shrinking outright.
//
// Retraining triggers are configurable: a backlog threshold
// (MinNewPositives) for busy feeds, and an elapsed-time trigger
// (MaxInterval) that retrains a trickle of positives that would never
// reach the threshold. The poll between triggers costs only a directory
// stat (feed.Count); the precise replay happens inside a triggered
// cycle.
package trainer

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/feed"
	"repro/internal/sparse"
)

// Config tunes a Trainer. FeedDir, ModelPath and Train.K are required.
type Config struct {
	// FeedDir is the interaction feed directory the trainer replays and
	// polls. The trainer only reads it; the serving process (or any other
	// single writer) appends.
	FeedDir string
	// Base, when non-nil, is the original training matrix the feed grows
	// on top of. Without it, the matrix is built from feed events alone.
	Base *sparse.Matrix
	// Train supplies the OCuLaR hyper-parameters and solver settings of
	// every cycle. WarmStart is overwritten each cycle with the previous
	// model; K must match a pre-existing model at ModelPath.
	Train core.Config
	// ModelPath is where trained models are saved (the file the server
	// reloads from). A loadable model already at this path seeds the
	// first cycle's warm start.
	ModelPath string
	// Save picks the artifact options (Float32 adds the half-bandwidth
	// scoring section).
	Save core.SaveOptions
	// ServerURL, when non-empty, is the serve process to roll new models
	// out to (e.g. "http://localhost:8080"): after every save the trainer
	// POSTs /v1/reload there and verifies the returned model version
	// strictly advanced. Mutually exclusive with ShardURLs/RouterURL.
	ServerURL string
	// ModelName, when non-empty, targets one named model of a serve
	// process running the multi-model registry: /v1/reload is POSTed
	// with {"model": ModelName}, and the handshake reads that model's
	// version from the models tree of /healthz instead of the top-level
	// model_version (each named model has its own version counter).
	// Requires ServerURL; shards host no registry, so combining
	// ModelName with ShardURLs is an error. ModelPath must match the
	// path the registry maps the name to.
	ModelName string
	// ShardURLs, with RouterURL, selects the sharded-tier rollout: after
	// every save the trainer runs the versioned reload handshake against
	// EVERY shard (the quorum — all of them must confirm), then flips the
	// router's route table via /v1/admin/flip and verifies its epoch
	// advanced. Until the flip, the router keeps pinning requests to the
	// old model version, which shards still serve from their snapshot
	// history — so the rollout is zero-downtime and no request ever
	// merges mixed versions. A shard failing the handshake aborts the
	// cycle before the flip: the router keeps serving the old version
	// everywhere.
	ShardURLs []string
	// RouterURL is the scatter-gather router owning the route table (and
	// the cache warmed after a sharded rollout). Required with ShardURLs.
	RouterURL string
	// MaxGrowth bounds how far beyond the known catalogue (base matrix,
	// previous model) one cycle may grow the training matrix; feed events
	// naming larger ids are skipped (and logged), not trained. Without the
	// bound a single absurd-id event in the append-only feed would make
	// every retry allocate factor rows up to it — a permanent crash loop.
	// The serving layer enforces the same headroom at ingest; this guard
	// covers feeds written by anything else. 0 means 1<<20.
	MaxGrowth int
	// MinNewPositives triggers a retrain once the feed backlog since the
	// last cycle reaches this count. 0 means 1 (retrain on any news).
	MinNewPositives int
	// MaxInterval, when positive, triggers a retrain whenever any backlog
	// exists and this much time has passed since the last cycle — the
	// trickle path for feeds too quiet to reach MinNewPositives.
	MaxInterval time.Duration
	// PollInterval is the trigger evaluation period of Run. 0 means 5s.
	PollInterval time.Duration
	// WarmCacheUsers, when positive, warms the server's rank cache after
	// a confirmed rollout by requesting top-M lists for that many of the
	// hottest users (most training positives) through /v1/batch.
	WarmCacheUsers int
	// WarmCacheM is the list length of cache-warming requests. 0 means 10.
	WarmCacheM int
	// HTTPClient overrides the http.Client used for rollout and cache
	// warming (tests; custom timeouts). Nil means a 30s-timeout client.
	HTTPClient *http.Client
	// Metrics, when non-nil, receives the backlog gauge and per-cycle
	// phase durations (cmd/ocular-trainer serves it under -metrics-addr).
	Metrics *Metrics
	// Logf, when non-nil, receives progress lines (cmd/ocular-trainer
	// wires log.Printf).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.MaxGrowth == 0 {
		c.MaxGrowth = 1 << 20
	}
	if c.MinNewPositives == 0 {
		c.MinNewPositives = 1
	}
	if c.PollInterval == 0 {
		c.PollInterval = 5 * time.Second
	}
	if c.WarmCacheM == 0 {
		c.WarmCacheM = 10
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{Timeout: 30 * time.Second}
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Cycle reports what one retraining cycle did.
type Cycle struct {
	// FeedPositives is the number of feed records replayed (the whole
	// feed, not just the backlog); NewPositives is how many of them
	// arrived since the previous cycle of this trainer.
	FeedPositives int64
	NewPositives  int64
	// Users, Items and NNZ describe the trained matrix.
	Users, Items, NNZ int
	// WarmStarted reports that training was initialized from the previous
	// model (first cycle: the model found at ModelPath); Grown that the
	// warm-start factors were extended for new users or items.
	WarmStarted bool
	Grown       bool
	// Iterations and Converged come from the training result.
	Iterations int
	Converged  bool
	// SkippedEvents counts feed events dropped by the MaxGrowth guard.
	SkippedEvents int64
	// RetrainSkipped reports that the cycle reused the already-saved
	// artifact (the feed had not changed since it was trained) and only
	// retried the rollout — the cheap path after a failed push.
	RetrainSkipped bool
	// ServerVersion is the model version the server confirmed in the
	// reload handshake (0 when no ServerURL is configured); Mapped and
	// ServedFloat32 echo the confirmed serving mode.
	ServerVersion uint64
	Mapped        bool
	ServedFloat32 bool
	// ShardVersions are the model versions each shard confirmed in a
	// sharded (quorum) rollout, in Config.ShardURLs order; RouterEpoch is
	// the route-table epoch the router confirmed after the flip.
	ShardVersions []uint64
	RouterEpoch   uint64
	// CacheWarmed is the number of hot users whose top-M lists were
	// ranked into the server's cache after the rollout.
	CacheWarmed int
	Duration    time.Duration
	// Phase durations: replay covers the feed read and the matrix fold,
	// train the solver, save the artifact write, rollout the serving-tier
	// push (reload handshake / quorum + flip), warm the cache warming.
	// A skipped phase stays zero.
	ReplayDur  time.Duration
	TrainDur   time.Duration
	SaveDur    time.Duration
	RolloutDur time.Duration
	WarmDur    time.Duration
}

// Trainer runs retraining cycles. Methods must not be called
// concurrently; run one trainer per model path.
type Trainer struct {
	cfg  Config
	last *core.Model // warm-start source; nil until a model exists
	// lastCount is the feed size at the last completed cycle, in
	// feed.Count's size-based estimate — deliberately the same estimator
	// the Run trigger polls with, so a permanently torn record (counted
	// by the estimate, skipped by the precise replay) cannot create a
	// phantom backlog that retrains forever.
	lastCount int64
	lastCycle time.Time
	// savedEvents (precise replay count) and savedEstimate (feed.Count
	// units) record the feed state the artifact at ModelPath was trained
	// over; rolloutPending marks a saved model whose push to the server
	// has not been confirmed yet. A retry cycle over an unchanged feed
	// (estimates match) then skips the replay, the fold and the retrain
	// entirely and only repeats the rollout, using hotUsers — the
	// cache-warming list computed when the model was trained — in place
	// of a rebuilt matrix.
	savedEvents    int64
	savedEstimate  int64
	rolloutPending bool
	hotUsers       []int
}

// New builds a Trainer. A loadable model at cfg.ModelPath becomes the
// first cycle's warm start; a missing file means the first cycle trains
// cold (and every later one warm).
func New(cfg Config) (*Trainer, error) {
	switch {
	case cfg.FeedDir == "":
		return nil, fmt.Errorf("trainer: FeedDir is required")
	case cfg.ModelPath == "":
		return nil, fmt.Errorf("trainer: ModelPath is required")
	case cfg.Train.K < 1:
		return nil, fmt.Errorf("trainer: Train.K must be >= 1, got %d", cfg.Train.K)
	case cfg.MinNewPositives < 0:
		return nil, fmt.Errorf("trainer: MinNewPositives must be >= 0, got %d", cfg.MinNewPositives)
	case cfg.MaxInterval < 0:
		return nil, fmt.Errorf("trainer: MaxInterval must be >= 0, got %v", cfg.MaxInterval)
	case cfg.WarmCacheUsers < 0:
		return nil, fmt.Errorf("trainer: WarmCacheUsers must be >= 0, got %d", cfg.WarmCacheUsers)
	case cfg.MaxGrowth < 0:
		return nil, fmt.Errorf("trainer: MaxGrowth must be >= 0, got %d", cfg.MaxGrowth)
	case cfg.ServerURL != "" && (len(cfg.ShardURLs) > 0 || cfg.RouterURL != ""):
		return nil, fmt.Errorf("trainer: ServerURL and the sharded rollout (ShardURLs/RouterURL) are mutually exclusive")
	case len(cfg.ShardURLs) > 0 && cfg.RouterURL == "":
		return nil, fmt.Errorf("trainer: ShardURLs needs RouterURL (the router owning the route table to flip)")
	case cfg.RouterURL != "" && len(cfg.ShardURLs) == 0:
		return nil, fmt.Errorf("trainer: RouterURL needs ShardURLs (the shards to quorum-reload before the flip)")
	case cfg.ModelName != "" && len(cfg.ShardURLs) > 0:
		return nil, fmt.Errorf("trainer: ModelName targets a registry-serving full server; shards host no registry")
	case cfg.ModelName != "" && cfg.ServerURL == "":
		return nil, fmt.Errorf("trainer: ModelName needs ServerURL (the registry server to reload the named model on)")
	}
	cfg = cfg.withDefaults()
	// The trainer only reads the feed, but the ingest writer may not have
	// started yet (or may never, in -once mode); an existing empty
	// directory makes replays of a not-yet-written feed well-defined.
	if err := os.MkdirAll(cfg.FeedDir, 0o755); err != nil {
		return nil, fmt.Errorf("trainer: %w", err)
	}
	t := &Trainer{cfg: cfg, lastCycle: time.Now()}
	switch m, err := core.LoadModelFile(cfg.ModelPath); {
	case err == nil:
		if m.K() != cfg.Train.K {
			return nil, fmt.Errorf("trainer: model at %s has K=%d but Train.K=%d", cfg.ModelPath, m.K(), cfg.Train.K)
		}
		if m.HasBias() && !t.cfg.Train.Bias {
			// core.Train's warm start would silently drop the bias terms
			// (it only validates the opposite mismatch); retraining must
			// not quietly degrade a bias-enabled served model.
			t.cfg.Train.Bias = true
			cfg.Logf("warm-start model carries bias terms; enabling Config.Bias for retraining")
		}
		t.last = m
		cfg.Logf("warm-start source: %v from %s", m, cfg.ModelPath)
	case errors.Is(err, os.ErrNotExist):
		cfg.Logf("no model at %s yet; first cycle trains cold", cfg.ModelPath)
	default:
		return nil, fmt.Errorf("trainer: loading warm-start model: %w", err)
	}
	return t, nil
}

// RunOnce executes one unconditional retraining cycle: replay, fold,
// warm-start, train, save, and — when a server is configured — roll out
// and warm its cache. Triggers are not consulted; Run is the loop that
// consults them.
func (t *Trainer) RunOnce(ctx context.Context) (cy *Cycle, err error) {
	start := time.Now()
	defer func() { t.cfg.Metrics.ObserveCycle(cy, err) }()
	// Snapshot the trigger estimator before the replay: lastCount must be
	// in feed.Count's units (so a torn-but-counted record cannot leave a
	// phantom backlog) and from before training starts (so events
	// arriving mid-cycle still show as backlog at the next poll instead
	// of being silently absorbed untrained).
	estimate, estErr := feed.Count(t.cfg.FeedDir)
	cy = &Cycle{}

	if t.rolloutPending && t.last != nil && estErr == nil && estimate == t.savedEstimate {
		// The artifact at ModelPath already covers this feed (nothing was
		// appended since it was trained); the only thing that failed last
		// time was the push. Skip the replay, the fold and the retrain
		// and retry the rollout alone — otherwise an hour of serve
		// downtime would mean an hour of back-to-back full replays and
		// trainings of identical models, one per poll tick.
		cy.FeedPositives = t.savedEvents
		cy.RetrainSkipped = true
		cy.WarmStarted = true
		cy.Users, cy.Items = t.last.NumUsers(), t.last.NumItems()
		t.cfg.Logf("feed unchanged since the last save; retrying rollout without retraining")
	} else {
		rstart := time.Now()
		events, err := feed.Events(t.cfg.FeedDir)
		if err != nil {
			return nil, err
		}
		cy.FeedPositives = int64(len(events))
		cy.NewPositives = int64(len(events)) - t.lastCount

		m, skipped := t.buildMatrix(events)
		cy.ReplayDur = time.Since(rstart)
		if m.Rows() == 0 || m.Cols() == 0 {
			return nil, fmt.Errorf("trainer: nothing to train on (no base matrix, empty feed)")
		}
		cy.Users, cy.Items, cy.NNZ, cy.SkippedEvents = m.Rows(), m.Cols(), m.NNZ(), skipped
		if skipped > 0 {
			t.cfg.Logf("skipped %d feed events beyond the MaxGrowth headroom of %d", skipped, t.cfg.MaxGrowth)
		}

		trainCfg := t.cfg.Train
		if t.last != nil {
			warm, err := t.last.Grow(m.Rows(), m.Cols())
			if err != nil {
				return nil, fmt.Errorf("trainer: warm start: %w", err)
			}
			cy.WarmStarted = true
			cy.Grown = warm != t.last
			trainCfg.WarmStart = warm
		}
		t.cfg.Logf("training on %v (warm=%v grown=%v, %d feed positives)", m, cy.WarmStarted, cy.Grown, len(events))
		tstart := time.Now()
		res, err := core.Train(m, trainCfg)
		cy.TrainDur = time.Since(tstart)
		if err != nil {
			return nil, fmt.Errorf("trainer: %w", err)
		}
		cy.Iterations, cy.Converged = res.Iterations(), res.Converged

		sstart := time.Now()
		if err := res.Model.SaveModelFileOpts(t.cfg.ModelPath, t.cfg.Save); err != nil {
			return nil, err
		}
		cy.SaveDur = time.Since(sstart)
		t.last = res.Model
		t.savedEvents = int64(len(events))
		t.savedEstimate = estimate
		if estErr != nil {
			t.savedEstimate = -1 // unknown: never matches, retries retrain
		}
		t.rolloutPending = t.hasRolloutTarget()
		if t.cfg.WarmCacheUsers > 0 {
			t.hotUsers = hottestUsers(m, t.cfg.WarmCacheUsers)
		}
	}

	if t.hasRolloutTarget() {
		if err := t.rollout(ctx, cy); err != nil {
			// The backlog markers deliberately stay put: Run's next poll
			// still sees the backlog and retries (the cheap
			// rollout-only path above) until the push lands. Advancing
			// them here would strand the saved model unserved until
			// unrelated positives arrived.
			return cy, err
		}
		t.rolloutPending = false
	}
	if estErr == nil {
		t.lastCount = estimate
	} else {
		t.lastCount = cy.FeedPositives
	}
	t.lastCycle = time.Now()
	cy.Duration = time.Since(start)
	t.cfg.Logf("cycle done in %v: %v, %d iterations (converged=%v), server version %d, %d cache lists warmed",
		cy.Duration.Round(time.Millisecond), t.last, cy.Iterations, cy.Converged, cy.ServerVersion, cy.CacheWarmed)
	return cy, nil
}

// buildMatrix folds the feed events into the base matrix. The shape
// covers the base, every admitted event and the previous model — the
// catalogue never shrinks across cycles — and the builder's
// deduplication makes replays idempotent. Events growing the catalogue
// beyond MaxGrowth over its known extent are skipped and counted, never
// trained: the feed is append-only, so an absurd id admitted once would
// poison every future replay.
func (t *Trainer) buildMatrix(events []feed.Event) (*sparse.Matrix, int64) {
	rows, cols := 0, 0
	if t.cfg.Base != nil {
		rows, cols = t.cfg.Base.Rows(), t.cfg.Base.Cols()
	}
	if t.last != nil {
		rows = max(rows, t.last.NumUsers())
		cols = max(cols, t.last.NumItems())
	}
	maxUser, maxItem := rows+t.cfg.MaxGrowth, cols+t.cfg.MaxGrowth
	var skipped int64
	admitted := events[:0:0]
	for _, e := range events {
		if int(e.User) >= maxUser || int(e.Item) >= maxItem {
			skipped++
			continue
		}
		admitted = append(admitted, e)
		rows = max(rows, int(e.User)+1)
		cols = max(cols, int(e.Item)+1)
	}
	b := sparse.NewBuilder(rows, cols)
	if t.cfg.Base != nil {
		t.cfg.Base.Each(b.Add)
	}
	for _, e := range admitted {
		b.Add(int(e.User), int(e.Item))
	}
	return b.Build(), skipped
}

// hasRolloutTarget reports whether a serving tier is configured to
// receive new models — a single server or a sharded tier.
func (t *Trainer) hasRolloutTarget() bool {
	return t.cfg.ServerURL != "" || len(t.cfg.ShardURLs) > 0
}

// rollout pushes the saved model to the serving tier — a single server's
// versioned reload, or the sharded tier's quorum handshake + router flip
// — and warms the front-end's rank cache for the hottest users
// (t.hotUsers, computed when the model was trained).
func (t *Trainer) rollout(ctx context.Context, cy *Cycle) error {
	rstart := time.Now()
	if len(t.cfg.ShardURLs) > 0 {
		if err := t.rolloutQuorum(ctx, cy); err != nil {
			cy.RolloutDur = time.Since(rstart)
			return err
		}
	} else {
		resp, err := t.pushReload(ctx, t.cfg.ServerURL)
		if err != nil {
			cy.RolloutDur = time.Since(rstart)
			return fmt.Errorf("trainer: rollout: %w", err)
		}
		cy.ServerVersion, cy.Mapped, cy.ServedFloat32 = resp.ModelVersion, resp.Mapped, resp.Float32
		t.cfg.Logf("rollout confirmed: server at version %d (%s, mapped=%v float32=%v)",
			resp.ModelVersion, resp.Model, resp.Mapped, resp.Float32)
	}
	cy.RolloutDur = time.Since(rstart)
	if len(t.hotUsers) > 0 {
		wstart := time.Now()
		warmed, err := t.warmCache(ctx)
		cy.WarmDur = time.Since(wstart)
		cy.CacheWarmed = warmed
		if err != nil {
			// Warming is an optimization on top of a rollout that already
			// landed; failing the cycle here would make Run retrain and
			// re-push the same model every trigger (wiping the very cache
			// being warmed each time). Log and move on.
			t.cfg.Logf("cache warm failed (rollout already confirmed): %v", err)
		}
	}
	return nil
}

// rolloutQuorum rolls a saved model out to the sharded tier: the
// versioned reload handshake against every shard (all must confirm
// before anything is flipped — a partial quorum aborts with the router,
// and so every request, still on the old version), then the router's
// route-table flip, confirmed by a strictly advancing epoch. The order
// is what makes the rollout safe: shards keep serving the old version
// from their snapshot history to version-pinned requests, so nothing
// changes for clients until the flip lands atomically.
func (t *Trainer) rolloutQuorum(ctx context.Context, cy *Cycle) error {
	versions := make([]uint64, 0, len(t.cfg.ShardURLs))
	for _, u := range t.cfg.ShardURLs {
		resp, err := t.pushReload(ctx, u)
		if err != nil {
			return fmt.Errorf("trainer: quorum rollout: shard %s: %w (router not flipped; the old model keeps serving)", u, err)
		}
		versions = append(versions, resp.ModelVersion)
		t.cfg.Logf("shard %s confirmed version %d (%s)", u, resp.ModelVersion, resp.Model)
	}
	cy.ShardVersions = versions

	before, err := t.routerEpoch(ctx)
	if err != nil {
		return fmt.Errorf("trainer: quorum rollout: reading router epoch: %w", err)
	}
	var flip struct {
		Epoch uint64 `json:"epoch"`
	}
	if err := t.postJSON(ctx, t.cfg.RouterURL, "/v1/admin/flip", nil, &flip); err != nil {
		return fmt.Errorf("trainer: quorum rollout: router flip: %w", err)
	}
	if flip.Epoch <= before {
		return fmt.Errorf("trainer: quorum rollout not confirmed: router epoch %d did not advance past %d",
			flip.Epoch, before)
	}
	cy.RouterEpoch = flip.Epoch
	t.cfg.Logf("quorum rollout confirmed: %d shards reloaded, router at epoch %d", len(versions), flip.Epoch)
	return nil
}

// routerEpoch reads the router's current route-table epoch from
// /healthz; a router that has no table yet (HTTP 503) is epoch 0.
func (t *Trainer) routerEpoch(ctx context.Context) (uint64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.cfg.RouterURL+"/healthz", nil)
	if err != nil {
		return 0, err
	}
	resp, err := t.cfg.HTTPClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusServiceUnavailable {
		return 0, nil
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("/healthz: HTTP %d", resp.StatusCode)
	}
	var health struct {
		Epoch uint64 `json:"epoch"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&health); err != nil {
		return 0, err
	}
	return health.Epoch, nil
}

// reloadResponse mirrors serve.ReloadResponse.
type reloadResponse struct {
	ModelVersion uint64 `json:"model_version"`
	Model        string `json:"model"`
	Mapped       bool   `json:"mapped"`
	Float32      bool   `json:"float32"`
}

// pushReload runs the versioned reload handshake against one serve
// process (a full server or a shard — the protocol is identical):
// observe its current model version, POST /v1/reload, and require the
// response to show a strictly newer version — proving the swap landed
// rather than silently re-serving a stale snapshot. Comparing against
// the version observed immediately before the push (not a counter kept
// across cycles) keeps the handshake correct when the serve process
// restarts and its version counter resets. With Config.ModelName the
// same handshake runs against that named model's own version counter.
func (t *Trainer) pushReload(ctx context.Context, base string) (reloadResponse, error) {
	before, err := t.serverVersion(ctx, base)
	if err != nil {
		return reloadResponse{}, err
	}
	var body any
	if t.cfg.ModelName != "" {
		body = map[string]string{"model": t.cfg.ModelName}
	}
	var out reloadResponse
	if err := t.postJSON(ctx, base, "/v1/reload", body, &out); err != nil {
		return out, err
	}
	if out.ModelVersion <= before {
		return out, fmt.Errorf("reload not confirmed: model version %d did not advance past %d",
			out.ModelVersion, before)
	}
	return out, nil
}

// serverVersion reads the served model version from base's /healthz —
// the top-level version of the default snapshot, or, with
// Config.ModelName, the named model's own counter from the registry's
// models tree.
func (t *Trainer) serverVersion(ctx context.Context, base string) (uint64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
	if err != nil {
		return 0, err
	}
	resp, err := t.cfg.HTTPClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("/healthz: HTTP %d", resp.StatusCode)
	}
	var health struct {
		ModelVersion uint64 `json:"model_version"`
		Models       map[string]struct {
			ModelVersion uint64 `json:"model_version"`
		} `json:"models"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&health); err != nil {
		return 0, err
	}
	if name := t.cfg.ModelName; name != "" {
		nm, ok := health.Models[name]
		if !ok {
			return 0, fmt.Errorf("/healthz lists no model %q (is the server running the multi-model registry?)", name)
		}
		return nm.ModelVersion, nil
	}
	return health.ModelVersion, nil
}

// warmCache drives the front end's ranking engine for the hottest users
// so the first organic requests after a rollout hit a full cache instead
// of all missing at once (every reload installs a fresh, empty cache; a
// router flip invalidates cached lists by fingerprinting the epoch). Hot
// users are those with the most training positives — the users likeliest
// to be requested, and the rows whose exclusion filters make ranking
// most expensive. In a sharded tier the warm goes through the router —
// the cache lives there, and warming through it exercises the very
// scatter-gather path organic traffic takes. Returns how many users
// were warmed.
func (t *Trainer) warmCache(ctx context.Context) (int, error) {
	base := t.cfg.ServerURL
	if base == "" {
		base = t.cfg.RouterURL
	}
	users := t.hotUsers
	warmed := 0
	// Chunk well below serve's default 1024-user batch cap.
	const chunk = 256
	for lo := 0; lo < len(users); lo += chunk {
		batch := users[lo:min(lo+chunk, len(users))]
		req := map[string]any{"users": batch, "m": t.cfg.WarmCacheM}
		var resp struct {
			Results []struct {
				Error string `json:"error"`
			} `json:"results"`
		}
		if err := t.postJSON(ctx, base, "/v1/batch", req, &resp); err != nil {
			// 429 is the serve tier's admission control shedding our
			// warm-up in favor of organic traffic. That is backpressure
			// working, not a rollout failure: the cache fills organically.
			var se *httpStatusError
			if errors.As(err, &se) && se.status == http.StatusTooManyRequests {
				t.cfg.Logf("cache warm shed by admission control after %d/%d users; backing off", warmed, len(users))
				return warmed, nil
			}
			return warmed, fmt.Errorf("trainer: cache warm: %w", err)
		}
		for _, r := range resp.Results {
			if r.Error == "" {
				warmed++
			}
		}
	}
	t.cfg.Logf("cache warmed for %d/%d hot users", warmed, len(users))
	return warmed, nil
}

// hottestUsers returns up to n users by descending training-positive
// count (ties broken by index for determinism), skipping empty rows.
func hottestUsers(m *sparse.Matrix, n int) []int {
	users := make([]int, 0, m.Rows())
	for u := 0; u < m.Rows(); u++ {
		if m.RowNNZ(u) > 0 {
			users = append(users, u)
		}
	}
	sort.Slice(users, func(i, j int) bool {
		ni, nj := m.RowNNZ(users[i]), m.RowNNZ(users[j])
		if ni != nj {
			return ni > nj
		}
		return users[i] < users[j]
	})
	if len(users) > n {
		users = users[:n]
	}
	return users
}

// httpStatusError is a non-200 response from the serve tier, carrying
// the status so callers can distinguish backpressure (429) from real
// failures.
type httpStatusError struct {
	status int
	msg    string
}

func (e *httpStatusError) Error() string { return e.msg }

// postJSON POSTs body (nil for empty) to base+path and decodes the
// response into out, surfacing the server's {"error": ...} payload on
// non-200 statuses.
func (t *Trainer) postJSON(ctx context.Context, base, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, rd)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := t.cfg.HTTPClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return &httpStatusError{resp.StatusCode, fmt.Sprintf("%s: %s (HTTP %d)", path, e.Error, resp.StatusCode)}
		}
		return &httpStatusError{resp.StatusCode, fmt.Sprintf("%s: HTTP %d", path, resp.StatusCode)}
	}
	return json.Unmarshal(data, out)
}

// Run polls the feed every PollInterval and retrains when a trigger
// fires, until ctx is cancelled (which returns nil). Cycle errors are
// logged and retried at the next trigger, not fatal: a serve process
// restarting mid-rollout must not kill the trainer daemon.
func (t *Trainer) Run(ctx context.Context) error {
	ticker := time.NewTicker(t.cfg.PollInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-ticker.C:
			n, err := feed.Count(t.cfg.FeedDir)
			if err != nil {
				t.cfg.Logf("feed poll: %v", err)
				continue
			}
			t.cfg.Metrics.SetBacklog(n - t.lastCount)
			if !t.due(n - t.lastCount) {
				continue
			}
			if _, err := t.RunOnce(ctx); err != nil {
				if ctx.Err() != nil {
					return nil
				}
				t.cfg.Logf("cycle failed (will retry): %v", err)
			}
		}
	}
}

// due decides whether a backlog of newN positives triggers a retrain.
func (t *Trainer) due(newN int64) bool {
	if newN <= 0 {
		return false // nothing new: retraining would rebuild the same model
	}
	if newN >= int64(t.cfg.MinNewPositives) {
		return true
	}
	return t.cfg.MaxInterval > 0 && time.Since(t.lastCycle) >= t.cfg.MaxInterval
}
