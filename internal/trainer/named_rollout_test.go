package trainer

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/feed"
	"repro/internal/serve"
)

// TestNamedRolloutEndToEnd: against a multi-model registry server, a
// trainer with ModelName reloads exactly that named model — POST
// /v1/reload {"model": name}, handshake against the model's own version
// counter in /healthz's models tree — leaving the default model and the
// registry's other models untouched.
func TestNamedRolloutEndToEnd(t *testing.T) {
	base := dataset.SyntheticSmall(1).Dataset.R
	dir := t.TempDir()
	defaultPath := filepath.Join(dir, "default.bin")
	candPath := filepath.Join(dir, "candidate.bin")
	champPath := filepath.Join(dir, "champion.bin")
	seedModel(t, base, defaultPath)
	seedModel(t, base, candPath)
	seedModel(t, base, champPath)

	feedDir := filepath.Join(dir, "feed")
	writeFeed(t, feedDir,
		feed.Event{User: 2, Item: 5}, feed.Event{User: 2, Item: 9}, feed.Event{User: 7, Item: 1})

	srv, err := serve.NewFromFile(serve.Config{
		ModelPath: defaultPath,
		Train:     base,
		Registry: &serve.RegistryConfig{
			Models: map[string]serve.ModelSpec{
				"champion":  {Path: champPath},
				"candidate": {Path: candPath},
			},
			Tenants: map[string]serve.TenantSpec{
				"acme": {Experiment: &serve.ExperimentSpec{
					Name: "exp",
					Arms: []serve.ArmSpec{{Name: "only", Model: "candidate"}},
				}},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	tr, err := New(Config{
		FeedDir:   feedDir,
		Base:      base,
		Train:     testTrainCfg,
		ModelPath: candPath,
		Save:      core.SaveOptions{Float32: true},
		ServerURL: ts.URL,
		ModelName: "candidate",
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	cy, err := tr.RunOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if cy.ServerVersion != 2 {
		t.Fatalf("handshake confirmed version %d, want 2 (the candidate's own counter)", cy.ServerVersion)
	}

	var health struct {
		ModelVersion uint64 `json:"model_version"`
		Models       map[string]struct {
			ModelVersion uint64 `json:"model_version"`
		} `json:"models"`
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Models["candidate"].ModelVersion != 2 {
		t.Errorf("candidate at version %d after named rollout, want 2", health.Models["candidate"].ModelVersion)
	}
	if health.Models["champion"].ModelVersion != 1 {
		t.Errorf("champion at version %d, want untouched 1", health.Models["champion"].ModelVersion)
	}
	if health.ModelVersion != 1 {
		t.Errorf("default model at version %d, want untouched 1", health.ModelVersion)
	}
	// The retrained candidate is what the tenant's arm now serves: the
	// rollout grew nothing here, but the arm version proves the swap.
	var rec serve.RecommendResponse
	st := postTo(t, ts.URL+"/v1/recommend", map[string]any{"user": 2, "m": 5, "tenant": "acme"}, &rec)
	if st != 200 || rec.ModelVersion != 2 {
		t.Errorf("tenant request: status %d version %d, want 200 at version 2", st, rec.ModelVersion)
	}
}

func postTo(t testing.TB, url string, body, out any) int {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// TestNamedReloadHandshake pins the wire protocol of a named rollout
// against a fake server: the version read comes from the models tree
// (not the top-level default version), the reload body is
// {"model": name}, and a version that fails to advance — or a server
// without the named model — fails the handshake.
func TestNamedReloadHandshake(t *testing.T) {
	dir := t.TempDir()
	version := uint64(5)
	reloadVersion := uint64(6)
	var gotBody []byte
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz":
			// The top-level version is a decoy: a named handshake reading
			// it would "confirm" against the wrong counter.
			json.NewEncoder(w).Encode(map[string]any{
				"model_version": 77,
				"models": map[string]any{
					"candidate": map[string]any{"model_version": version},
				},
			})
		case "/v1/reload":
			gotBody, _ = io.ReadAll(r.Body)
			json.NewEncoder(w).Encode(map[string]any{
				"model_version": reloadVersion, "model": "m", "mapped": true, "float32": true, "name": "candidate",
			})
		default:
			http.NotFound(w, r)
		}
	}))
	defer ts.Close()

	newNamed := func(name string) *Trainer {
		tr, err := New(Config{
			FeedDir:   dir,
			ModelPath: filepath.Join(dir, "m.bin"),
			Train:     core.Config{K: 2},
			ServerURL: ts.URL,
			ModelName: name,
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}

	tr := newNamed("candidate")
	resp, err := tr.pushReload(context.Background(), ts.URL)
	if err != nil {
		t.Fatalf("named handshake failed: %v", err)
	}
	if resp.ModelVersion != 6 {
		t.Errorf("confirmed version %d, want 6", resp.ModelVersion)
	}
	var body map[string]string
	if err := json.Unmarshal(gotBody, &body); err != nil || body["model"] != "candidate" {
		t.Errorf("reload body %s, want {\"model\":\"candidate\"}", gotBody)
	}

	// The reload answers the version already observed before the push:
	// not an advance → the handshake must fail rather than trust a stale
	// swap.
	reloadVersion = version
	if _, err := tr.pushReload(context.Background(), ts.URL); err == nil {
		t.Error("handshake confirmed a version that did not advance")
	}

	// A model the registry does not list fails before any reload is sent.
	if _, err := newNamed("ghost").pushReload(context.Background(), ts.URL); err == nil {
		t.Error("handshake against an unlisted model succeeded")
	}
}

// TestNamedRolloutValidation: ModelName composes only with a single
// registry server — shards host no registry, and a name without a server
// has nothing to reload.
func TestNamedRolloutValidation(t *testing.T) {
	dir := t.TempDir()
	good := Config{FeedDir: dir, ModelPath: filepath.Join(dir, "m.bin"), Train: core.Config{K: 2}}
	cases := map[string]func(Config) Config{
		"ModelName with shards": func(c Config) Config {
			c.ModelName = "x"
			c.ShardURLs = []string{"http://a", "http://b"}
			c.RouterURL = "http://r"
			return c
		},
		"ModelName without server": func(c Config) Config {
			c.ModelName = "x"
			return c
		},
	}
	for name, mutate := range cases {
		if _, err := New(mutate(good)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	good.ModelName = "x"
	good.ServerURL = "http://s"
	if _, err := New(good); err != nil {
		t.Errorf("ModelName with ServerURL rejected: %v", err)
	}
}
