package rank

import (
	"sync/atomic"
	"testing"

	"repro/internal/rng"
	"repro/internal/sparse"
)

// benchScorer scores a synthetic 17k-item catalogue (the paper's largest
// per-user ranking) without model overhead, isolating the engine.
type benchScorer struct {
	scores []float64
}

func (s *benchScorer) ScoreUser(_ int, dst []float64) { copy(dst, s.scores) }
func (s *benchScorer) NumItems() int                  { return len(s.scores) }

func newBenchSetup(b *testing.B, ni int) (*benchScorer, *sparse.Matrix, []int, *TagTable) {
	b.Helper()
	r := rng.New(11)
	scores := make([]float64, ni)
	for i := range scores {
		scores[i] = r.Float64()
	}
	tb := sparse.NewBuilder(1, ni)
	for i := 0; i < ni; i++ {
		if r.Bernoulli(0.01) {
			tb.Add(0, i)
		}
	}
	exclude := make([]int, 100)
	for n := range exclude {
		exclude[n] = r.Intn(ni)
	}
	tags := testTagTable(b, ni)
	return &benchScorer{scores: scores}, tb.Build(), exclude, tags
}

// BenchmarkRankFiltered measures a full filtered ranking — training-row
// walk + 100-item exclusion list + tag deny-list + top-50 heap selection —
// with the cache disabled, i.e. the cost of every filtered cache miss.
func BenchmarkRankFiltered(b *testing.B) {
	const ni = 17000
	scorer, train, exclude, tags := newBenchSetup(b, ni)
	e := NewEngine(scorer, Config{CacheSize: -1})
	deny, err := tags.Deny("third")
	if err != nil {
		b.Fatal(err)
	}
	row := TrainRow(train, 0)
	ex := ExcludeItems(exclude)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		items, _, _ := e.TopM(0, 50, row, ex, deny)
		if len(items) != 50 {
			b.Fatalf("got %d items", len(items))
		}
	}
}

// BenchmarkRerankStages measures a full staged cache miss: rank the 17k
// catalogue, then run the three-stage pipeline (score floor, tag boost
// with 2x over-fetch, MMR diversification at 4x) over the over-fetched
// candidate pool — the cost ceiling of a staged arm's request.
func BenchmarkRerankStages(b *testing.B) {
	const ni = 17000
	scorer, train, _, tags := newBenchSetup(b, ni)
	e := NewEngine(scorer, Config{CacheSize: -1})
	boost, err := tags.Boost(0.25, 2, "rare")
	if err != nil {
		b.Fatal(err)
	}
	div, err := Diversify(0.7, 4, gridVectors{8})
	if err != nil {
		b.Fatal(err)
	}
	stages := []Stage{ScoreFloor(0.05), boost, div}
	row := TrainRow(train, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		items, _, _ := e.TopMStaged(0, 50, stages, row)
		if len(items) == 0 {
			b.Fatal("empty staged list")
		}
	}
}

// BenchmarkRankCoalesced measures the duplicate-miss hot path: parallel
// goroutines hammer one filtered fingerprint while the entry is evicted
// periodically, so requests alternate between cache hits and coalesced
// misses. The reported computes/req ratio is the engine's effectiveness —
// without coalescing and caching it would be 1.0.
func BenchmarkRankCoalesced(b *testing.B) {
	const ni = 17000
	scorer, train, exclude, _ := newBenchSetup(b, ni)
	stats := &Stats{}
	e := NewEngine(scorer, Config{CacheSize: 64, Stats: stats})
	row := TrainRow(train, 0)
	ex := ExcludeItems(exclude)
	var reqs atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		n := 0
		for pb.Next() {
			reqs.Add(1)
			// A shifting m evicts nothing but varies the key a little,
			// keeping the cache honest without making every miss unique.
			e.TopM(0, 50+n%2, row, ex)
			n++
		}
	})
	b.StopTimer()
	if r := reqs.Load(); r > 0 {
		b.ReportMetric(float64(stats.Ranked())/float64(r), "computes/req")
		b.ReportMetric(float64(stats.Coalesced())/float64(r), "coalesced/req")
	}
}
