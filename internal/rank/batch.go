package rank

import (
	"sync"

	"repro/internal/parallel"
)

// BatchCols is the columnar result shape of a batch request: ranked
// lists for n users appended end to end into flat columns, Counts saying
// where each user's slice ends. The columns are caller-owned — a serving
// layer keeps one per pooled request scratch and encodes them onto the
// wire without reshaping — while the appended item/score values are
// copied out of the engine's cache-shared slices, so the columns stay
// valid after the cache evicts or a snapshot is swapped.
type BatchCols struct {
	Counts []uint32
	Items  []uint32
	Scores []float64
	Cached []bool
}

// Reset empties the columns, keeping their capacity.
func (c *BatchCols) Reset() {
	c.Counts = c.Counts[:0]
	c.Items = c.Items[:0]
	c.Scores = c.Scores[:0]
	c.Cached = c.Cached[:0]
}

// Append adds one user's ranked list to the columns.
func (c *BatchCols) Append(items []int, scores []float64, cached bool) {
	c.Counts = append(c.Counts, uint32(len(items)))
	for _, it := range items {
		c.Items = append(c.Items, uint32(it))
	}
	c.Scores = append(c.Scores, scores...)
	c.Cached = append(c.Cached, cached)
}

// AppendEmpty adds one user's slot with no items — the shape a serving
// layer gives a user it rejected before ranking.
func (c *BatchCols) AppendEmpty() {
	c.Counts = append(c.Counts, 0)
	c.Cached = append(c.Cached, false)
}

// batchRes carries one user's result from a ranking goroutine to the
// ordered append; the slices are cache-shared engine results, only read.
type batchRes struct {
	items  []int
	scores []float64
	cached bool
	ok     bool
}

// batchResPool recycles the per-call result scratch so a warm batch loop
// does not allocate it per request.
var batchResPool = sync.Pool{New: func() any { s := make([]batchRes, 0, 64); return &s }}

// TopMBatch ranks many users through the same cached, coalesced pipeline
// as TopMStaged — score → filter → select → re-rank per user, identical
// cache keys, fingerprints and singleflight coalescing — and appends the
// results into cols in input order. filtersFor builds the filter set for
// the i-th user (it may be called concurrently, each i at most once);
// returning ok=false skips ranking and appends an empty slot, letting
// the caller flag that user however its transport does. workers > 1
// ranks users concurrently with input order preserved in cols.
func (e *Engine) TopMBatch(users []int, m, workers int, stages []Stage, filtersFor func(i int) ([]Filter, bool), cols *BatchCols) {
	stages = compactStages(stages)
	if workers <= 1 || len(users) == 1 {
		for i, u := range users {
			filters, ok := filtersFor(i)
			if !ok {
				cols.AppendEmpty()
				continue
			}
			items, scores, cached := e.topM(u, m, stages, filters, nil)
			cols.Append(items, scores, cached)
		}
		return
	}
	resP := batchResPool.Get().(*[]batchRes)
	res := *resP
	if cap(res) < len(users) {
		res = make([]batchRes, len(users))
	}
	res = res[:len(users)]
	parallel.For(len(users), workers, func(i int, _ *parallel.Scratch) {
		filters, ok := filtersFor(i)
		if !ok {
			res[i] = batchRes{}
			return
		}
		items, scores, cached := e.topM(users[i], m, stages, filters, nil)
		res[i] = batchRes{items: items, scores: scores, cached: cached, ok: true}
	})
	for i := range res {
		if !res[i].ok {
			cols.AppendEmpty()
			continue
		}
		cols.Append(res[i].items, res[i].scores, res[i].cached)
		res[i] = batchRes{}
	}
	*resP = res[:0]
	batchResPool.Put(resP)
}
