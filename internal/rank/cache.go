package rank

import (
	"container/list"
	"sync"
)

// requestKey identifies one cacheable ranking request: user, list length,
// and the fingerprint of its flattened filter set. Covering the filters in
// the key makes filtered requests cacheable rather than wrong — two
// requests for the same (user, m) with different exclusion sets never
// share an entry.
type requestKey struct {
	user, m int
	filters string
}

func (k requestKey) hash() uint64 {
	// FNV-1a over the filter fingerprint, then Fibonacci-mix the
	// typically-sequential user ids in.
	h := uint64(14695981039346656037)
	for i := 0; i < len(k.filters); i++ {
		h ^= uint64(k.filters[i])
		h *= 1099511628211
	}
	return (h ^ (uint64(k.user)*2 + uint64(k.m))) * 0x9E3779B97F4A7C15
}

// topCache is a sharded LRU cache of precomputed top-M lists keyed by
// requestKey. Sharding bounds lock contention on the hot path: concurrent
// requests for different users hash to different shards with high
// probability. A cache belongs to one Engine — the serving layer installs
// a fresh engine per model snapshot, so invalidation is wholesale and
// race-free (requests still running against the old snapshot keep hitting
// the old, still-consistent cache).
type topCache struct {
	shards []cacheShard
	mask   uint64
}

type cacheEntry struct {
	key    requestKey
	items  []int
	scores []float64
}

type cacheShard struct {
	mu    sync.Mutex
	cap   int
	order list.List // front = most recently used
	byKey map[requestKey]*list.Element
}

// newTopCache builds a cache holding about capacity entries total across
// shards shards (rounded up to a power of two, default 16). capacity <= 0
// returns nil — a nil *topCache is a valid always-miss cache.
func newTopCache(capacity, shards int) *topCache {
	if capacity <= 0 {
		return nil
	}
	if shards <= 0 {
		shards = 16
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	perShard := (capacity + n - 1) / n
	c := &topCache{shards: make([]cacheShard, n), mask: uint64(n - 1)}
	for i := range c.shards {
		c.shards[i].cap = perShard
		c.shards[i].byKey = make(map[requestKey]*list.Element, perShard)
	}
	return c
}

func (c *topCache) shard(k requestKey) *cacheShard {
	return &c.shards[(k.hash()>>32)&c.mask]
}

// get returns the cached list for k. The returned slices are shared and
// must not be modified.
func (c *topCache) get(k requestKey) (items []int, scores []float64, ok bool) {
	if c == nil {
		return nil, nil, false
	}
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.byKey[k]
	if !ok {
		return nil, nil, false
	}
	s.order.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	return e.items, e.scores, true
}

// put stores the list for k, evicting the least recently used entry of the
// shard when full. The slices are retained; callers must not modify them
// afterwards.
func (c *topCache) put(k requestKey, items []int, scores []float64) {
	if c == nil {
		return
	}
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.byKey[k]; ok {
		s.order.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		e.items, e.scores = items, scores
		return
	}
	if s.order.Len() >= s.cap {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.byKey, oldest.Value.(*cacheEntry).key)
	}
	s.byKey[k] = s.order.PushFront(&cacheEntry{key: k, items: items, scores: scores})
}

// ListCache is the engine's cache-and-coalesce machinery exported for
// ranked lists assembled outside an Engine — the scatter-gather router
// caches merged top-M lists it gathered from shard partials, under the
// same sharded LRU and singleflight discipline the engine applies to
// lists it ranked itself. Keys are (user, m, fingerprint); the caller
// owns the fingerprint's contents (the router folds its route epoch in,
// which is what makes mixed-epoch cache hits impossible). All methods are
// safe for concurrent use.
type ListCache struct {
	cache  *topCache
	flight flightGroup
	stats  *Stats
}

// NewListCache builds a list cache of about capacity entries across
// shards shards (see Config for the conventions; capacity <= 0 disables
// caching, leaving only the compute path). A nil stats allocates private
// counters.
func NewListCache(capacity, shards int, stats *Stats) *ListCache {
	if stats == nil {
		stats = &Stats{}
	}
	return &ListCache{cache: newTopCache(capacity, shards), stats: stats}
}

// Stats returns the cache's counters (hits, misses, coalesced waiters,
// and computations run).
func (c *ListCache) Stats() *Stats { return c.stats }

// Len returns the number of cached lists.
func (c *ListCache) Len() int { return c.cache.len() }

// GetOrCompute returns the list cached under (user, m, fp), running
// compute on a miss. Concurrent misses for the same key coalesce: one
// caller computes, the rest wait and share its published result (cached
// reports either a cache hit or a coalesced share). compute additionally
// reports whether its result may be cached and shared — a degraded merge
// assembled from surviving shards must be served to its own caller but
// never published or cached, so waiters recompute instead of inheriting
// a silently incomplete list. Errors are likewise never cached; the
// returned slices are shared with the cache and must not be modified.
func (c *ListCache) GetOrCompute(user, m int, fp string, compute func() (items []int, scores []float64, cacheable bool, err error)) (items []int, scores []float64, cached bool, err error) {
	run := func() ([]int, []float64, bool, error) {
		c.stats.ranked.Add(1)
		return compute()
	}
	if c.cache == nil {
		c.stats.misses.Add(1)
		items, scores, _, err = run()
		return items, scores, false, err
	}
	key := requestKey{user: user, m: m, filters: fp}
	if items, scores, ok := c.cache.get(key); ok {
		c.stats.hits.Add(1)
		return items, scores, true, nil
	}
	call, leader := c.flight.join(key)
	if !leader {
		<-call.done
		if call.ok {
			c.stats.coalesced.Add(1)
			return call.items, call.scores, true, nil
		}
		// The leader failed or produced an unshareable (degraded) result;
		// compute independently.
		c.stats.misses.Add(1)
		var cacheable bool
		items, scores, cacheable, err = run()
		if err == nil && cacheable {
			c.cache.put(key, items, scores)
		}
		return items, scores, false, err
	}
	c.stats.misses.Add(1)
	published := false
	defer func() {
		if !published {
			c.flight.abandon(key, call)
		}
	}()
	var cacheable bool
	items, scores, cacheable, err = run()
	if err != nil || !cacheable {
		return items, scores, false, err
	}
	c.cache.put(key, items, scores)
	c.flight.publish(key, call, items, scores)
	published = true
	return items, scores, false, nil
}

// len returns the total number of cached entries.
func (c *topCache) len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}
