package rank

// Partial is one item-partition's contribution to a scatter-gathered
// top-M: the partition's own top-min(m, partition size) items (global
// ids) with their scores, already ordered by the engine's tie rule
// (descending score, ascending item). Select over a partition's score
// slice — which is how the sharded serving tier produces partials —
// yields exactly this shape.
type Partial struct {
	Items  []int
	Scores []float64
}

// MergeTopM merges per-partition top-m lists into one global top-m under
// the selection tie rule: descending score, ties broken by ascending
// item index. Each partial must be sorted by that rule and the
// partitions' item sets must be pairwise disjoint; each partial must
// carry at least min(m, its candidate count) entries. Under those
// preconditions — all guaranteed when every partial is Select's output
// over a disjoint slice of one score vector — the merged list is
// bit-identical (same items, same float64 score bits) to Select over the
// union, which is what makes an N-shard scatter-gather provably equal to
// single-process serving.
//
// The merge is a repeated head scan, O(m · len(parts)): shard counts are
// small (a handful to a few dozen), where a scan of the heads beats a
// heap on constant factors and stays trivially deterministic.
func MergeTopM(m int, parts ...Partial) (items []int, scores []float64) {
	if m <= 0 {
		return nil, nil
	}
	total := 0
	for _, p := range parts {
		total += len(p.Items)
	}
	if total == 0 {
		return nil, nil
	}
	if m > total {
		m = total
	}
	heads := make([]int, len(parts))
	items = make([]int, 0, m)
	scores = make([]float64, 0, m)
	for len(items) < m {
		best := -1
		for pi := range parts {
			h := heads[pi]
			if h >= len(parts[pi].Items) {
				continue
			}
			if best == -1 {
				best = pi
				continue
			}
			bs, bi := parts[best].Scores[heads[best]], parts[best].Items[heads[best]]
			ps, piItem := parts[pi].Scores[h], parts[pi].Items[h]
			if ps > bs || (ps == bs && piItem < bi) {
				best = pi
			}
		}
		if best == -1 {
			break
		}
		items = append(items, parts[best].Items[heads[best]])
		scores = append(scores, parts[best].Scores[heads[best]])
		heads[best]++
	}
	return items, scores
}

// MergeTopMStaged is the router's post-merge stage hook: it merges the
// partials into the global top-StagesOverFetch(m, stages) head, applies
// the stages exactly once, and truncates to m. Each partial must carry at
// least min(StagesOverFetch(m, stages), its candidate count) entries —
// the gather side must request the over-fetched length from its shards.
// Because MergeTopM over disjoint sorted partials is bit-identical to
// Select over the union, and stages are deterministic functions of the
// selected head, the staged merge is bit-identical to single-process
// staged serving (Engine.TopMStaged) over the same model and filters.
// With an empty stage list it is exactly MergeTopM.
func MergeTopMStaged(m int, stages []Stage, parts ...Partial) (items []int, scores []float64) {
	stages = compactStages(stages)
	if len(stages) == 0 {
		return MergeTopM(m, parts...)
	}
	items, scores = MergeTopM(StagesOverFetch(m, stages), parts...)
	return applyStages(m, stages, items, scores)
}
