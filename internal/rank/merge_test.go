package rank

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"
)

// partitionSelect runs Select over one item partition [lo, hi) of scores
// the way a shard does: local score slice, local filters via OffsetRange,
// results translated back to global ids.
func partitionSelect(scores []float64, m, lo, hi int, filters []Filter) Partial {
	local := make([]Filter, len(filters))
	for n, f := range filters {
		local[n] = OffsetRange(f, lo, hi)
	}
	idx := Select(scores[lo:hi], m, local...)
	p := Partial{Items: make([]int, len(idx)), Scores: make([]float64, len(idx))}
	for n, i := range idx {
		p.Items[n] = i + lo
		p.Scores[n] = scores[lo+i]
	}
	return p
}

// TestMergeTopMBitIdenticalToSelect is the tie-rule merge property: for
// random score vectors (with deliberate duplicate scores), random
// partitions and random filters, merging per-partition Select outputs is
// bit-identical to Select over the whole vector.
func TestMergeTopMBitIdenticalToSelect(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	for trial := 0; trial < 200; trial++ {
		nItems := 20 + rng.IntN(300)
		scores := make([]float64, nItems)
		for i := range scores {
			// Quantize so duplicate scores (ties) are common.
			scores[i] = float64(rng.IntN(12)) / 11
		}
		m := 1 + rng.IntN(nItems+10)

		var filters []Filter
		if rng.IntN(2) == 0 {
			var excl []int
			for i := 0; i < nItems; i++ {
				if rng.IntN(4) == 0 {
					excl = append(excl, i)
				}
			}
			if len(excl) > 0 {
				filters = append(filters, ExcludeItems(excl))
			}
		}

		// Random partition bounds.
		nParts := 1 + rng.IntN(5)
		bounds := map[int]bool{0: true, nItems: true}
		for len(bounds) < nParts+1 {
			bounds[1+rng.IntN(nItems-1)] = true
		}
		cuts := make([]int, 0, len(bounds))
		for b := range bounds {
			cuts = append(cuts, b)
		}
		for i := range cuts {
			for j := i + 1; j < len(cuts); j++ {
				if cuts[j] < cuts[i] {
					cuts[i], cuts[j] = cuts[j], cuts[i]
				}
			}
		}

		parts := make([]Partial, 0, len(cuts)-1)
		for p := 0; p+1 < len(cuts); p++ {
			parts = append(parts, partitionSelect(scores, m, cuts[p], cuts[p+1], filters))
		}

		wantItems := Select(scores, m, filters...)
		gotItems, gotScores := MergeTopM(m, parts...)
		if len(gotItems) != len(wantItems) {
			t.Fatalf("trial %d (parts %v m %d): merged %d items, Select returned %d",
				trial, cuts, m, len(gotItems), len(wantItems))
		}
		for n := range wantItems {
			if gotItems[n] != wantItems[n] {
				t.Fatalf("trial %d rank %d: merged item %d, Select item %d", trial, n, gotItems[n], wantItems[n])
			}
			if gotScores[n] != scores[wantItems[n]] {
				t.Fatalf("trial %d rank %d: merged score %v, want %v", trial, n, gotScores[n], scores[wantItems[n]])
			}
		}
	}
}

func TestMergeTopMEdges(t *testing.T) {
	a := Partial{Items: []int{0, 2}, Scores: []float64{0.9, 0.5}}
	b := Partial{Items: []int{5, 7}, Scores: []float64{0.9, 0.1}}

	if items, scores := MergeTopM(0, a, b); items != nil || scores != nil {
		t.Fatalf("m=0: got %v/%v, want nil", items, scores)
	}
	if items, _ := MergeTopM(3); items != nil {
		t.Fatalf("no partials: got %v, want nil", items)
	}
	if items, _ := MergeTopM(3, Partial{}, Partial{}); items != nil {
		t.Fatalf("empty partials: got %v, want nil", items)
	}
	// Tie at 0.9 between item 0 (partition a) and item 5 (partition b):
	// ascending index wins.
	items, scores := MergeTopM(10, a, b)
	want := []int{0, 5, 2, 7}
	if len(items) != len(want) {
		t.Fatalf("got %v, want %v", items, want)
	}
	for n := range want {
		if items[n] != want[n] {
			t.Fatalf("rank %d: got item %d, want %d (scores %v)", n, items[n], want[n], scores)
		}
	}
}

// TestOffsetRange checks the local-index adapter on both the Sorted fast
// path and the predicate fallback.
func TestOffsetRange(t *testing.T) {
	excl := ExcludeItems([]int{1, 4, 9, 10, 17})
	f := OffsetRange(excl, 4, 12)                           // local 0..7 ↔ global 4..11
	wantExcluded := map[int]bool{0: true, 5: true, 6: true} // globals 4, 9, 10
	for local := 0; local < 8; local++ {
		if got := f.Excluded(local); got != wantExcluded[local] {
			t.Errorf("local %d (global %d): Excluded=%v, want %v", local, local+4, got, wantExcluded[local])
		}
	}
	sorted, ok := f.(Sorted)
	if !ok {
		t.Fatal("OffsetRange over a Sorted filter lost the fast path")
	}
	list := sorted.ExcludedList()
	want := []int32{0, 5, 6}
	if len(list) != len(want) {
		t.Fatalf("ExcludedList %v, want %v", list, want)
	}
	for n := range want {
		if list[n] != want[n] {
			t.Fatalf("ExcludedList %v, want %v", list, want)
		}
	}

	// Predicate-only inner filter keeps predicate semantics.
	pred := predicateFilter{7: true, 9: true}
	pf := OffsetRange(pred, 5, 15)
	if !pf.Excluded(2) || !pf.Excluded(4) || pf.Excluded(0) {
		t.Fatal("predicate offset filter shifted wrong")
	}
	if _, ok := pf.(Sorted); ok {
		t.Fatal("predicate filter must not pretend to be Sorted")
	}
}

// predicateFilter excludes the set keys — deliberately implements only
// the base Filter interface.
type predicateFilter map[int]bool

func (p predicateFilter) Excluded(item int) bool { return p[item] }

func TestListCacheHitMissCoalesce(t *testing.T) {
	stats := &Stats{}
	c := NewListCache(64, 4, stats)

	calls := 0
	compute := func() ([]int, []float64, bool, error) {
		calls++
		return []int{1, 2}, []float64{0.9, 0.8}, true, nil
	}
	items, _, cached, err := c.GetOrCompute(3, 10, "fp", compute)
	if err != nil || cached || len(items) != 2 {
		t.Fatalf("first call: items=%v cached=%v err=%v", items, cached, err)
	}
	items, _, cached, err = c.GetOrCompute(3, 10, "fp", compute)
	if err != nil || !cached || len(items) != 2 || calls != 1 {
		t.Fatalf("second call: cached=%v calls=%d err=%v", cached, calls, err)
	}
	// A different fingerprint (e.g. a new route epoch) misses.
	_, _, cached, _ = c.GetOrCompute(3, 10, "fp2", compute)
	if cached || calls != 2 {
		t.Fatalf("epoch-qualified fingerprint hit a stale entry (cached=%v calls=%d)", cached, calls)
	}
	if stats.Hits() != 1 || stats.Misses() != 2 {
		t.Fatalf("stats hits=%d misses=%d, want 1/2", stats.Hits(), stats.Misses())
	}

	// Coalescing: concurrent misses on one key → one computation.
	c2 := NewListCache(64, 4, nil)
	var mu sync.Mutex
	computations := 0
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, _, err := c2.GetOrCompute(1, 5, "x", func() ([]int, []float64, bool, error) {
				mu.Lock()
				computations++
				mu.Unlock()
				<-release
				return []int{4}, []float64{0.5}, true, nil
			})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	// Give the goroutines a chance to pile onto the flight; then release.
	for {
		mu.Lock()
		n := computations
		mu.Unlock()
		if n >= 1 {
			break
		}
	}
	close(release)
	wg.Wait()
	if computations != 1 {
		t.Fatalf("%d computations for 8 concurrent identical misses, want 1", computations)
	}
	if got := c2.Stats().Coalesced(); got != 7 {
		t.Fatalf("coalesced=%d, want 7", got)
	}
}

func TestListCacheUncacheableAndErrors(t *testing.T) {
	c := NewListCache(64, 4, nil)

	// Degraded (uncacheable) results are served but never cached.
	calls := 0
	degraded := func() ([]int, []float64, bool, error) {
		calls++
		return []int{9}, []float64{0.1}, false, nil
	}
	for i := 0; i < 3; i++ {
		items, _, cached, err := c.GetOrCompute(1, 5, "d", degraded)
		if err != nil || cached || len(items) != 1 {
			t.Fatalf("degraded call %d: items=%v cached=%v err=%v", i, items, cached, err)
		}
	}
	if calls != 3 {
		t.Fatalf("degraded result was cached (%d computations for 3 calls)", calls)
	}
	if c.Len() != 0 {
		t.Fatalf("degraded result stored: cache len %d", c.Len())
	}

	// Errors propagate and are not cached.
	boom := fmt.Errorf("scatter failed")
	_, _, _, err := c.GetOrCompute(1, 5, "e", func() ([]int, []float64, bool, error) {
		return nil, nil, true, boom
	})
	if err != boom {
		t.Fatalf("error not propagated: %v", err)
	}
	items, _, cached, err := c.GetOrCompute(1, 5, "e", func() ([]int, []float64, bool, error) {
		return []int{2}, []float64{0.7}, true, nil
	})
	if err != nil || cached || len(items) != 1 {
		t.Fatalf("after error: items=%v cached=%v err=%v (error must not be cached)", items, cached, err)
	}

	// Disabled cache still computes.
	off := NewListCache(0, 0, nil)
	items, _, cached, err = off.GetOrCompute(1, 5, "x", func() ([]int, []float64, bool, error) {
		return []int{3}, []float64{0.2}, true, nil
	})
	if err != nil || cached || len(items) != 1 || off.Len() != 0 {
		t.Fatalf("disabled cache: items=%v cached=%v err=%v len=%d", items, cached, err, off.Len())
	}
}
