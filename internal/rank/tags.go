package rank

import (
	"bufio"
	"fmt"
	"io"
	"math/bits"
	"os"
	"sort"
	"strconv"
	"strings"
)

// TagTable is an item name/tag table: per-item display names plus an
// inverted tag index, the metadata source behind allow- and deny-list
// filters ("only recommend items tagged kids", "never recommend
// discontinued"). Tables are immutable after loading and safe for
// concurrent use.
type TagTable struct {
	numItems int
	names    map[int]string
	tags     map[string]tagSet
}

// tagSet is a bitset over items plus its precomputed population count.
type tagSet struct {
	bits  []uint64
	count int
}

func (s tagSet) has(item int) bool {
	w := item >> 6
	return w < len(s.bits) && s.bits[w]>>(uint(item)&63)&1 == 1
}

// LoadTagTable parses an item metadata table. The format is line-oriented:
//
//	item,name[,tag[,tag...]]
//
// where item is the zero-based item index, name is a display name (may be
// empty), and the remaining fields are tags. Blank lines and lines starting
// with '#' are skipped. Items may repeat (tags accumulate); items absent
// from the table simply have no name and no tags. numItems bounds the valid
// item indices; pass the catalogue size.
func LoadTagTable(r io.Reader, numItems int) (*TagTable, error) {
	t := &TagTable{
		numItems: numItems,
		names:    make(map[int]string),
		tags:     make(map[string]tagSet),
	}
	words := (numItems + 63) / 64
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, ",")
		item, err := strconv.Atoi(strings.TrimSpace(fields[0]))
		if err != nil {
			return nil, fmt.Errorf("rank: tag table line %d: bad item %q", line, fields[0])
		}
		if item < 0 || item >= numItems {
			return nil, fmt.Errorf("rank: tag table line %d: item %d out of range (%d items)", line, item, numItems)
		}
		if len(fields) > 1 {
			if name := strings.TrimSpace(fields[1]); name != "" {
				t.names[item] = name
			}
		}
		for _, raw := range fields[2:] {
			tag := strings.TrimSpace(raw)
			if tag == "" {
				continue
			}
			s, ok := t.tags[tag]
			if !ok {
				s = tagSet{bits: make([]uint64, words)}
			}
			if !s.has(item) {
				s.bits[item>>6] |= 1 << (uint(item) & 63)
				s.count++
			}
			t.tags[tag] = s
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("rank: reading tag table: %w", err)
	}
	return t, nil
}

// LoadTagTableFile is LoadTagTable over a file path.
func LoadTagTableFile(path string, numItems int) (*TagTable, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := LoadTagTable(f, numItems)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// NumItems returns the catalogue size the table was loaded against.
func (t *TagTable) NumItems() int { return t.numItems }

// NumTags returns the number of distinct tags.
func (t *TagTable) NumTags() int { return len(t.tags) }

// Name returns the display name of item, or "" when the table has none.
func (t *TagTable) Name(item int) string { return t.names[item] }

// Allow returns a filter excluding every item NOT carrying at least one of
// the given tags — an allow-list. Unknown tags are an error (a typo would
// otherwise silently empty the allow set).
func (t *TagTable) Allow(tags ...string) (Filter, error) {
	set, key, err := t.union(tags)
	if err != nil {
		return nil, err
	}
	return tagFilter{set: set, invert: true, key: "allow:" + key}, nil
}

// Deny returns a filter excluding every item carrying at least one of the
// given tags — a deny-list. Unknown tags are an error.
func (t *TagTable) Deny(tags ...string) (Filter, error) {
	set, key, err := t.union(tags)
	if err != nil {
		return nil, err
	}
	return tagFilter{set: set, invert: false, key: "deny:" + key}, nil
}

// union ORs the bitsets of tags into a fresh set and builds the canonical
// (sorted, deduplicated) key spelling, so {a,b} and {b,a,b} share a cache
// entry.
func (t *TagTable) union(tags []string) (tagSet, string, error) {
	if len(tags) == 0 {
		return tagSet{}, "", fmt.Errorf("rank: empty tag list")
	}
	canon := make([]string, len(tags))
	copy(canon, tags)
	sort.Strings(canon)
	words := (t.numItems + 63) / 64
	u := tagSet{bits: make([]uint64, words)}
	prev := ""
	key := make([]string, 0, len(canon))
	for n, tag := range canon {
		if n > 0 && tag == prev {
			continue
		}
		prev = tag
		s, ok := t.tags[tag]
		if !ok {
			return tagSet{}, "", fmt.Errorf("rank: unknown tag %q", tag)
		}
		for w := range s.bits {
			u.bits[w] |= s.bits[w]
		}
		key = append(key, tag)
	}
	for _, w := range u.bits {
		u.count += bits.OnesCount64(w)
	}
	return u, strings.Join(key, ","), nil
}

// tagFilter excludes by bitset membership: invert=false denies the set's
// items, invert=true allows only them (excludes the complement). Items
// beyond the table's range carry no tags: a deny keeps them, an allow
// excludes them.
type tagFilter struct {
	set    tagSet
	invert bool
	key    string
}

func (f tagFilter) Excluded(item int) bool { return f.set.has(item) != f.invert }

func (f tagFilter) CacheKey() string { return f.key }

func (f tagFilter) maxExcluded(numItems int) int {
	if f.invert {
		return numItems - f.set.count
	}
	return f.set.count
}
