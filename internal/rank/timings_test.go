package rank

import (
	"testing"
	"time"
)

// slowScorer pads ScoreUser so the score phase is reliably measurable.
type slowScorer struct {
	scores []float64
}

func (s *slowScorer) ScoreUser(u int, dst []float64) {
	time.Sleep(200 * time.Microsecond)
	copy(dst, s.scores)
}
func (s *slowScorer) NumItems() int { return len(s.scores) }

func timingScorer(ni int) *slowScorer {
	scores := make([]float64, ni)
	for i := range scores {
		scores[i] = float64(i % 7)
	}
	return &slowScorer{scores: scores}
}

func TestTopMTimedPopulatesPhases(t *testing.T) {
	e := NewEngine(timingScorer(500), Config{CacheSize: 16})

	var tm Timings
	items, _, cached := e.TopMTimed(3, 10, &tm)
	if cached || len(items) != 10 {
		t.Fatalf("miss: cached=%v items=%d", cached, len(items))
	}
	if tm.Score <= 0 || tm.Select <= 0 {
		t.Fatalf("miss timings not populated: %+v", tm)
	}
	if tm.Stages != 0 {
		t.Fatalf("stageless request has Stages=%v", tm.Stages)
	}
	if tm.Cached || tm.Coalesced {
		t.Fatalf("miss flagged as cached: %+v", tm)
	}

	// Repeat hits the cache: flags set, no phase durations, no ranking.
	before := e.Stats().Ranked()
	var hit Timings
	_, _, cached = e.TopMTimed(3, 10, &hit)
	if !cached || !hit.Cached {
		t.Fatalf("repeat not reported as cache hit: cached=%v tm=%+v", cached, hit)
	}
	if hit.Score != 0 || hit.Select != 0 || hit.Stages != 0 {
		t.Fatalf("cache hit has phase durations: %+v", hit)
	}
	if e.Stats().Ranked() != before {
		t.Fatal("cache hit re-ranked")
	}
}

func TestTopMStagedTimedPopulatesStages(t *testing.T) {
	e := NewEngine(timingScorer(500), Config{})
	var tm Timings
	items, _, _ := e.TopMStagedTimed(1, 10, []Stage{ScoreFloor(1)}, &tm)
	if len(items) == 0 {
		t.Fatal("staged request returned nothing")
	}
	if tm.Score <= 0 || tm.Select <= 0 || tm.Stages <= 0 {
		t.Fatalf("staged timings not populated: %+v", tm)
	}
}

// TestTopMTimedNil pins the documented contract that a nil Timings is
// identical to the untimed entry point.
func TestTopMTimedNil(t *testing.T) {
	e := NewEngine(timingScorer(100), Config{})
	items, scores, _ := e.TopMTimed(0, 5, nil)
	ref, refScores, _ := e.TopM(0, 5)
	if len(items) != len(ref) {
		t.Fatalf("timed/untimed lengths differ: %d vs %d", len(items), len(ref))
	}
	for i := range items {
		if items[i] != ref[i] || scores[i] != refScores[i] {
			t.Fatalf("timed result diverges at %d", i)
		}
	}
}
