// Package rank is the transport-agnostic ranking engine behind both the
// offline evaluator and the online serving layer. A request is (scorer, m,
// filters..., stages...) and the pipeline is score → filter → select →
// rerank: the scorer writes a relevance score for every item, composable
// Filters remove candidates (training positives, per-request exclusion
// lists, item-tag allow/deny lists), selection returns the top survivors
// under a deterministic tie rule, and optional Stages re-rank the selected
// head (score floors, MMR diversity, tag boosts) over a declared
// over-fetch so the staged top-m is well-defined.
//
// The Engine adds the serving machinery on top of the pure pipeline:
// pooled score buffers, a sharded LRU cache keyed by a request fingerprint
// covering user, m and the filter set (so filtered requests are cacheable
// rather than wrong), and singleflight coalescing of duplicate cache
// misses — concurrent requests for the same fingerprint compute the list
// once. Transports (HTTP today; gRPC or a columnar batch path tomorrow)
// stay thin adapters over one of these entry points.
package rank

import (
	"sync"
	"sync/atomic"
	"time"
)

// Scorer produces the relevance scores a ranking starts from. Both
// eval.Recommender implementations (every algorithm in the repo) and
// core.Scorer (the mmap serving path) satisfy it.
type Scorer interface {
	// ScoreUser writes a relevance score for every item for user u into
	// dst, which has length NumItems().
	ScoreUser(u int, dst []float64)
	// NumItems reports the catalogue size ScoreUser writes.
	NumItems() int
}

// Config tunes an Engine. The zero value disables caching (and with it
// coalescing, which only applies to cacheable requests).
type Config struct {
	// CacheSize is the approximate total number of cached top-M lists
	// across shards; <= 0 disables the cache.
	CacheSize int
	// CacheShards is the cache's shard count (rounded up to a power of
	// two). 0 means 16.
	CacheShards int
	// Stats, when non-nil, receives the engine's counters. Sharing one
	// Stats across successive engines (the serving layer rebuilds the
	// engine on every model reload) keeps the counters cumulative.
	Stats *Stats
}

// Stats counts an engine's cache and coalescing activity. All methods are
// safe for concurrent use. The zero value is ready.
type Stats struct {
	hits      atomic.Int64
	misses    atomic.Int64
	coalesced atomic.Int64
	ranked    atomic.Int64
}

// Hits returns the number of requests answered from the cache.
func (s *Stats) Hits() int64 { return s.hits.Load() }

// Misses returns the number of requests not answered from the cache
// (including uncacheable requests and coalesced waiters' leaders).
func (s *Stats) Misses() int64 { return s.misses.Load() }

// Coalesced returns the number of duplicate concurrent misses that waited
// on another request's computation instead of ranking themselves.
func (s *Stats) Coalesced() int64 { return s.coalesced.Load() }

// Ranked returns the number of full score→filter→select computations —
// the work the cache and coalescing exist to avoid.
func (s *Stats) Ranked() int64 { return s.ranked.Load() }

// Engine executes ranking requests over one scorer. All methods are safe
// for concurrent use. An engine is bound to an immutable scorer: the
// serving layer builds a fresh engine per model snapshot, which also makes
// cache invalidation wholesale and race-free.
type Engine struct {
	scorer Scorer
	cache  *topCache
	flight flightGroup
	stats  *Stats
	bufs   sync.Pool // *[]float64 of length scorer.NumItems()
}

// NewEngine builds an engine ranking scorer's scores under cfg.
func NewEngine(scorer Scorer, cfg Config) *Engine {
	stats := cfg.Stats
	if stats == nil {
		stats = &Stats{}
	}
	return &Engine{
		scorer: scorer,
		cache:  newTopCache(cfg.CacheSize, cfg.CacheShards),
		stats:  stats,
	}
}

// Stats returns the engine's counters.
func (e *Engine) Stats() *Stats { return e.stats }

// CacheLen returns the number of cached top-M lists.
func (e *Engine) CacheLen() int { return e.cache.len() }

// TopM returns the top-m items for user u, with their scores, among the
// candidates surviving the filters — the cached, coalesced entry point of
// the known-user hot path. cached reports whether the list came from the
// cache (or from another request's in-flight computation). The returned
// slices are shared with the cache and must not be modified.
//
// A request is cacheable when every filter is Keyed; the cache key covers
// (u, m, filter fingerprints). Concurrent cacheable misses with equal keys
// are coalesced: one computes, the rest wait and share the result.
func (e *Engine) TopM(u, m int, filters ...Filter) (items []int, scores []float64, cached bool) {
	return e.topM(u, m, nil, filters, nil)
}

// TopMStaged is TopM followed by the request's re-rank stages: the
// pipeline selects StagesOverFetch(m, stages) candidates, runs the stages
// in order, and truncates to m. Stage keys fold into the cache
// fingerprint alongside the filter keys, so staged requests are cached
// (post-stage) and can never collide with requests differing only in
// stage configuration. An empty or all-nil stage list is byte-identical
// to TopM — same results, same cache entries.
func (e *Engine) TopMStaged(u, m int, stages []Stage, filters ...Filter) (items []int, scores []float64, cached bool) {
	return e.topM(u, m, compactStages(stages), filters, nil)
}

func (e *Engine) topM(u, m int, stages []Stage, filters []Filter, tm *Timings) (items []int, scores []float64, cached bool) {
	flat := flatten(filters)
	score := func(dst []float64) { e.scorer.ScoreUser(u, dst) }
	fp, cacheable := fingerprintStaged(flat, stages)
	if !cacheable || e.cache == nil {
		e.stats.misses.Add(1)
		items, scores = e.rankStaged(score, m, flat, stages, tm)
		return items, scores, false
	}
	key := requestKey{user: u, m: m, filters: fp}
	if items, scores, ok := e.cache.get(key); ok {
		e.stats.hits.Add(1)
		if tm != nil {
			tm.Cached = true
		}
		return items, scores, true
	}
	c, leader := e.flight.join(key)
	if !leader {
		<-c.done
		if c.ok {
			e.stats.coalesced.Add(1)
			if tm != nil {
				tm.Cached, tm.Coalesced = true, true
			}
			return c.items, c.scores, true
		}
		// The leader failed to publish (it panicked); fall back to an
		// uncoalesced computation rather than propagating its failure.
		e.stats.misses.Add(1)
		items, scores = e.rankStaged(score, m, flat, stages, tm)
		e.cache.put(key, items, scores)
		return items, scores, false
	}
	e.stats.misses.Add(1)
	published := false
	defer func() {
		if !published {
			e.flight.abandon(key, c)
		}
	}()
	items, scores = e.rankStaged(score, m, flat, stages, tm)
	e.cache.put(key, items, scores)
	e.flight.publish(key, c, items, scores)
	published = true
	return items, scores, false
}

// Rank runs the pipeline with a caller-supplied scoring function — the
// fold-in path, where the "user" is a factor solved per request and
// results are inherently uncacheable. score receives a pooled buffer of
// length NumItems and must fill it completely. Rank counts toward the
// ranked stat but not the cache hit/miss counters (it never consults the
// cache).
func (e *Engine) Rank(score func(dst []float64), m int, filters ...Filter) (items []int, scores []float64) {
	return e.rank(score, m, flatten(filters), nil)
}

// RankStaged is Rank followed by the request's re-rank stages — the
// fold-in path of a staged arm. Like Rank it never consults the cache.
func (e *Engine) RankStaged(score func(dst []float64), m int, stages []Stage, filters ...Filter) (items []int, scores []float64) {
	return e.rankStaged(score, m, flatten(filters), compactStages(stages), nil)
}

// rank is the shared score → filter → select execution over a pooled
// buffer, compacting the survivors' scores alongside the items. A
// non-nil tm receives the score and (fused) filter+select wall times;
// nil skips the clock reads entirely.
func (e *Engine) rank(score func(dst []float64), m int, flat []Filter, tm *Timings) ([]int, []float64) {
	e.stats.ranked.Add(1)
	buf := e.getBuf()
	var t0 time.Time
	if tm != nil {
		t0 = time.Now()
	}
	score(buf)
	var t1 time.Time
	if tm != nil {
		t1 = time.Now()
		tm.Score += t1.Sub(t0)
	}
	items := selectFlat(buf, m, flat)
	scores := make([]float64, len(items))
	for n, i := range items {
		scores[n] = buf[i]
	}
	if tm != nil {
		tm.Select += time.Since(t1)
	}
	e.putBuf(buf)
	return items, scores
}

// rankStaged extends rank with the post-selection stage pass: it selects
// the stages' over-fetch, applies them, and truncates to m. With no
// stages it is exactly rank.
func (e *Engine) rankStaged(score func(dst []float64), m int, flat []Filter, stages []Stage, tm *Timings) ([]int, []float64) {
	if len(stages) == 0 {
		return e.rank(score, m, flat, tm)
	}
	items, scores := e.rank(score, StagesOverFetch(m, stages), flat, tm)
	var t0 time.Time
	if tm != nil {
		t0 = time.Now()
	}
	items, scores = applyStages(m, stages, items, scores)
	if tm != nil {
		tm.Stages += time.Since(t0)
	}
	return items, scores
}

func (e *Engine) getBuf() []float64 {
	if p, ok := e.bufs.Get().(*[]float64); ok {
		return *p
	}
	return make([]float64, e.scorer.NumItems())
}

func (e *Engine) putBuf(b []float64) {
	e.bufs.Put(&b)
}

// flightGroup coalesces duplicate in-flight computations per request key —
// a minimal singleflight. The first join for a key becomes the leader and
// computes; later joins receive the same call and wait on done.
type flightGroup struct {
	mu    sync.Mutex
	calls map[requestKey]*flightCall
}

type flightCall struct {
	done   chan struct{}
	ok     bool // set before done closes; false when the leader abandoned
	items  []int
	scores []float64
}

// join returns the in-flight call for key, creating it when absent; leader
// reports whether the caller created it (and must publish or abandon).
func (g *flightGroup) join(key requestKey) (c *flightCall, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.calls == nil {
		g.calls = make(map[requestKey]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		return c, false
	}
	c = &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	return c, true
}

// publish hands the leader's result to the waiters and retires the call.
func (g *flightGroup) publish(key requestKey, c *flightCall, items []int, scores []float64) {
	c.items, c.scores, c.ok = items, scores, true
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
}

// abandon retires the call without a result (leader panicked); waiters
// recompute for themselves.
func (g *flightGroup) abandon(key requestKey, c *flightCall) {
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
}
