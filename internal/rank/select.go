package rank

import (
	"container/heap"
	"sort"
)

// Select returns the indices of the m highest-scoring items among those no
// filter excludes, in descending score order with ties broken by ascending
// index (deterministic rankings; see McSherry & Najork on tied scores).
// Fewer than m items are returned when fewer candidates survive the
// filters, and nil when none do. scores is never mutated, so callers may
// read scores[i] back for the returned items.
//
// Selection is a size-m min-heap over the candidates, O(n_i log m), which
// matters when ranking a 17k-item catalogue for a top-50 list; a full sort
// is used when m covers most of the candidate set. Both paths share one
// exclusion scan that walks Sorted filters with cursors and falls back to
// the Excluded predicate for the rest.
func Select(scores []float64, m int, filters ...Filter) []int {
	return selectFlat(scores, m, flatten(filters))
}

// selectFlat is Select over an already-flattened filter list (the engine
// flattens once per request, for the fingerprint and the scan).
func selectFlat(scores []float64, m int, flat []Filter) []int {
	if m <= 0 {
		return nil
	}
	scan := newExclusionScan(flat)
	// Upper-bound the exclusions to estimate the candidate count. Filters
	// may overlap, so this underestimates nCand — which only biases the
	// path choice toward the full sort; both paths return identical
	// rankings.
	bound := 0
	for _, f := range flat {
		if c, ok := f.(bounder); ok {
			bound += c.maxExcluded(len(scores))
		}
	}
	if nCand := len(scores) - bound; m*4 < nCand {
		return selectHeap(scores, m, scan)
	}
	return selectSort(scores, m, scan)
}

// exclusionScan merges a request's filters into one per-item test for the
// ascending selection scan: Sorted filters advance cursors (amortized O(1)
// per item), the rest answer through their Excluded predicate. excluded
// must be called with strictly increasing items.
type exclusionScan struct {
	lists   [][]int32
	cursors []int
	preds   []Filter
}

func newExclusionScan(flat []Filter) *exclusionScan {
	s := &exclusionScan{}
	for _, f := range flat {
		if sf, ok := f.(Sorted); ok {
			s.lists = append(s.lists, sf.ExcludedList())
			continue
		}
		s.preds = append(s.preds, f)
	}
	s.cursors = make([]int, len(s.lists))
	return s
}

func (s *exclusionScan) excluded(item int) bool {
	for n, l := range s.lists {
		c := s.cursors[n]
		for c < len(l) && int(l[c]) < item {
			c++
		}
		s.cursors[n] = c
		if c < len(l) && int(l[c]) == item {
			return true
		}
	}
	for _, p := range s.preds {
		if p.Excluded(item) {
			return true
		}
	}
	return false
}

// selectSort ranks all candidates by full sort; exact reference used for
// large m and by the equivalence tests.
func selectSort(scores []float64, m int, scan *exclusionScan) []int {
	cand := make([]int, 0, len(scores))
	for i := range scores {
		if scan.excluded(i) {
			continue
		}
		cand = append(cand, i)
	}
	if len(cand) == 0 {
		return nil
	}
	sort.Slice(cand, func(a, b int) bool {
		if scores[cand[a]] != scores[cand[b]] {
			return scores[cand[a]] > scores[cand[b]]
		}
		return cand[a] < cand[b]
	})
	if len(cand) > m {
		cand = cand[:m]
	}
	return cand
}

// candHeap is a min-heap of candidate items keyed by (score asc, index
// desc), so the weakest kept candidate sits at the root. The inverted index
// order makes the heap's notion of "worst" agree with the ranking's tie
// rule (among equal scores, the larger index is worse).
type candHeap struct {
	idx    []int
	scores []float64
}

func (h *candHeap) Len() int { return len(h.idx) }
func (h *candHeap) Less(a, b int) bool {
	sa, sb := h.scores[h.idx[a]], h.scores[h.idx[b]]
	if sa != sb {
		return sa < sb
	}
	return h.idx[a] > h.idx[b]
}
func (h *candHeap) Swap(a, b int) { h.idx[a], h.idx[b] = h.idx[b], h.idx[a] }
func (h *candHeap) Push(x any)    { h.idx = append(h.idx, x.(int)) }
func (h *candHeap) Pop() any      { v := h.idx[len(h.idx)-1]; h.idx = h.idx[:len(h.idx)-1]; return v }
func (h *candHeap) worse(i int) bool {
	// Reports whether candidate i ranks below the current root.
	root := h.idx[0]
	if scores := h.scores; scores[i] != scores[root] {
		return scores[i] < scores[root]
	}
	return i > h.idx[0]
}

func selectHeap(scores []float64, m int, scan *exclusionScan) []int {
	h := &candHeap{idx: make([]int, 0, m+1), scores: scores}
	for i := range scores {
		if scan.excluded(i) {
			continue
		}
		if h.Len() < m {
			heap.Push(h, i)
			continue
		}
		if h.worse(i) {
			continue
		}
		h.idx[0] = i
		heap.Fix(h, 0)
	}
	if h.Len() == 0 {
		return nil
	}
	// Drain ascending-worst, fill the output back to front.
	out := make([]int, h.Len())
	for n := len(out) - 1; n >= 0; n-- {
		out[n] = heap.Pop(h).(int)
	}
	return out
}
