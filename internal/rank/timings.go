package rank

import "time"

// Timings, when passed to one of the Timed entry points, receives the
// wall time the pipeline spent per stage for that single request — the
// hook the observability layer turns into trace spans. Score is the
// scorer sweep; Select is the fused filter+selection scan (filters are
// applied during selection, not as a separate pass, so they cannot be
// timed apart); Stages is the post-selection re-rank pass. On a cache
// hit or coalesced wait the durations stay zero and the flags say why:
// no ranking happened, and no clocks are read — the Timed entry points
// with a non-nil Timings cost nothing extra on the hit path.
type Timings struct {
	Score  time.Duration
	Select time.Duration
	Stages time.Duration
	// Cached reports the list came from the cache or another request's
	// in-flight computation; Coalesced narrows that to the latter.
	Cached    bool
	Coalesced bool
}

// TopMTimed is TopM with per-stage timing into tm (nil is allowed and
// identical to TopM).
func (e *Engine) TopMTimed(u, m int, tm *Timings, filters ...Filter) (items []int, scores []float64, cached bool) {
	return e.topM(u, m, nil, filters, tm)
}

// TopMStagedTimed is TopMStaged with per-stage timing into tm (nil is
// allowed and identical to TopMStaged).
func (e *Engine) TopMStagedTimed(u, m int, stages []Stage, tm *Timings, filters ...Filter) (items []int, scores []float64, cached bool) {
	return e.topM(u, m, compactStages(stages), filters, tm)
}
