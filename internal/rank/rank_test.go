package rank

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/sparse"
)

type fixedScorer struct {
	scores [][]float64
	calls  atomic.Int64
}

func (f *fixedScorer) ScoreUser(u int, dst []float64) {
	f.calls.Add(1)
	copy(dst, f.scores[u])
}
func (f *fixedScorer) NumItems() int { return len(f.scores[0]) }

// refSelect is the independent full-sort reference: rank the non-excluded
// items by (score desc, index asc), truncate to m, nil when empty. It
// shares no code with the engine's selection or exclusion scan.
func refSelect(scores []float64, excluded func(int) bool, m int) []int {
	var cand []int
	for i := range scores {
		if !excluded(i) {
			cand = append(cand, i)
		}
	}
	sort.Slice(cand, func(a, b int) bool {
		if scores[cand[a]] != scores[cand[b]] {
			return scores[cand[a]] > scores[cand[b]]
		}
		return cand[a] < cand[b]
	})
	if len(cand) > m {
		cand = cand[:m]
	}
	return cand
}

// testTagTable builds a deterministic 3-tag table over ni items: "even"
// (every even item), "third" (every third), "rare" (items 1 and ni-1).
func testTagTable(t testing.TB, ni int) *TagTable {
	t.Helper()
	var b strings.Builder
	b.WriteString("# item,name,tags\n")
	for i := 0; i < ni; i++ {
		fmt.Fprintf(&b, "%d,item-%d", i, i)
		if i%2 == 0 {
			b.WriteString(",even")
		}
		if i%3 == 0 {
			b.WriteString(",third")
		}
		if i == 1 || i == ni-1 {
			b.WriteString(",rare")
		}
		b.WriteByte('\n')
	}
	tab, err := LoadTagTable(strings.NewReader(b.String()), ni)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// TestSelectMatchesReference is the engine's core property test: across
// random (m, training-row, exclusion-list, tag-filter) combinations —
// heavy score ties included — Select must return bit-identically the
// full-sort reference ranking, in both the heap and sort regimes.
func TestSelectMatchesReference(t *testing.T) {
	f := func(seed uint16, mRaw uint8, combo uint8) bool {
		r := rng.New(uint64(seed)*7 + 13)
		ni := 5 + r.Intn(200)
		scores := make([]float64, ni)
		for i := range scores {
			// Coarse quantization forces many exact ties.
			scores[i] = float64(r.Intn(8))
		}
		m := 1 + int(mRaw)%ni

		var filters []Filter
		var preds []func(int) bool

		if combo&1 != 0 { // training row
			b := sparse.NewBuilder(1, ni)
			for i := 0; i < ni; i++ {
				if r.Bernoulli(0.2) {
					b.Add(0, i)
				}
			}
			train := b.Build()
			filters = append(filters, TrainRow(train, 0))
			owned := train.Row(0)
			set := make(map[int]bool, len(owned))
			for _, i := range owned {
				set[int(i)] = true
			}
			preds = append(preds, func(i int) bool { return set[i] })
		}
		if combo&2 != 0 { // per-request exclusion list, unsorted with dups
			var list []int
			for n := 0; n < r.Intn(30); n++ {
				list = append(list, r.Intn(ni))
			}
			filters = append(filters, ExcludeItems(list))
			set := make(map[int]bool, len(list))
			for _, i := range list {
				set[i] = true
			}
			preds = append(preds, func(i int) bool { return set[i] })
		}
		switch combo & 12 >> 2 { // tag filter
		case 1:
			tab := testTagTable(t, ni)
			f, err := tab.Allow("even", "rare")
			if err != nil {
				t.Fatal(err)
			}
			filters = append(filters, f)
			preds = append(preds, func(i int) bool {
				hasTag := i%2 == 0 || i == 1 || i == ni-1
				return !hasTag
			})
		case 2:
			tab := testTagTable(t, ni)
			f, err := tab.Deny("third")
			if err != nil {
				t.Fatal(err)
			}
			filters = append(filters, f)
			preds = append(preds, func(i int) bool { return i%3 == 0 })
		}

		want := refSelect(scores, func(i int) bool {
			for _, p := range preds {
				if p(i) {
					return true
				}
			}
			return false
		}, m)
		got := Select(scores, m, filters...)
		if len(want) != len(got) {
			return false
		}
		for i := range want {
			if want[i] != got[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectEdgeCases(t *testing.T) {
	scores := []float64{3, 1, 2}
	if got := Select(scores, 0); got != nil {
		t.Errorf("m=0: got %v, want nil", got)
	}
	if got := Select(scores, -1); got != nil {
		t.Errorf("m<0: got %v, want nil", got)
	}
	if got := Select(scores, 2, ExcludeItems([]int{0, 1, 2})); got != nil {
		t.Errorf("all excluded: got %v, want nil", got)
	}
	if got := Select(scores, 10); len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 1 {
		t.Errorf("m beyond candidates: got %v, want [0 2 1]", got)
	}
	// Nil filters and nested unions flatten away.
	got := Select(scores, 3, nil, Union(nil, Union(ExcludeItems([]int{0}))))
	if len(got) != 2 || got[0] != 2 || got[1] != 1 {
		t.Errorf("union/nil filters: got %v, want [2 1]", got)
	}
}

func TestUnionSemantics(t *testing.T) {
	u := Union(ExcludeItems([]int{1}), ExcludeItems([]int{3}))
	for i, want := range map[int]bool{0: false, 1: true, 2: false, 3: true} {
		if got := u.Excluded(i); got != want {
			t.Errorf("union.Excluded(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestFingerprint(t *testing.T) {
	tab := testTagTable(t, 12)
	allowAB, _ := tab.Allow("even", "third")
	allowBA, _ := tab.Allow("third", "even", "third")
	if k1, k2 := allowAB.(Keyed).CacheKey(), allowBA.(Keyed).CacheKey(); k1 != k2 {
		t.Errorf("tag order changed the cache key: %q vs %q", k1, k2)
	}
	deny, _ := tab.Deny("even")
	if k1, k2 := allowAB.(Keyed).CacheKey(), deny.(Keyed).CacheKey(); k1 == k2 {
		t.Error("allow and deny share a cache key")
	}

	train := sparse.NewBuilder(2, 4)
	train.Add(0, 1)
	tm := train.Build()
	fp1, ok1 := fingerprint(flatten([]Filter{TrainRow(tm, 0), ExcludeItems([]int{2})}))
	fp2, ok2 := fingerprint(flatten([]Filter{TrainRow(tm, 0), ExcludeItems([]int{3})}))
	if !ok1 || !ok2 {
		t.Fatal("keyed filters reported uncacheable")
	}
	if fp1 == fp2 {
		t.Error("different exclusion lists share a fingerprint")
	}
	if fp, ok := fingerprint(nil); !ok || fp != "" {
		t.Errorf("empty filter set: fingerprint %q cacheable=%v, want \"\" true", fp, ok)
	}
	// An anonymous filter has no key: the request must be uncacheable.
	if _, ok := fingerprint([]Filter{anonFilter{}}); ok {
		t.Error("unkeyed filter reported cacheable")
	}
	// Length-prefixing keeps the fingerprint injective even when a tag
	// name contains the separator of another encoding: one filter keyed
	// allow:a|deny:b must not collide with the allow:a + deny:b pair.
	weird, err := LoadTagTable(strings.NewReader("0,x,a|deny:b\n1,y,a\n2,z,b\n"), 4)
	if err != nil {
		t.Fatal(err)
	}
	fA, _ := weird.Allow("a|deny:b")
	fB, _ := weird.Allow("a")
	fC, _ := weird.Deny("b")
	fpOne, ok1 := fingerprint([]Filter{fA})
	fpPair, ok2 := fingerprint([]Filter{fB, fC})
	if !ok1 || !ok2 {
		t.Fatal("tag filters reported uncacheable")
	}
	if fpOne == fpPair {
		t.Errorf("fingerprint collision: %q encodes both one weird tag and an allow+deny pair", fpOne)
	}
	// Oversized keys fall back to uncacheable: the LRU caps entries, not
	// bytes, so a huge exclusion list must not pin its key in the cache.
	big := make([]int, maxFingerprintLen)
	for i := range big {
		big[i] = i
	}
	if _, ok := fingerprint(flatten([]Filter{ExcludeItems(big)})); ok {
		t.Error("oversized exclusion-list fingerprint reported cacheable")
	}
}

type anonFilter struct{}

func (anonFilter) Excluded(int) bool { return false }

func TestTagTableParsing(t *testing.T) {
	in := `
# comment
3, Widget ,kids, sale
3,,clearance
0,Gadget
`
	tab, err := LoadTagTable(strings.NewReader(in), 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.Name(3); got != "Widget" {
		t.Errorf("Name(3) = %q, want Widget", got)
	}
	if got := tab.Name(0); got != "Gadget" {
		t.Errorf("Name(0) = %q, want Gadget", got)
	}
	if got := tab.Name(1); got != "" {
		t.Errorf("Name(1) = %q, want empty", got)
	}
	if tab.NumTags() != 3 {
		t.Errorf("NumTags = %d, want 3 (kids, sale, clearance)", tab.NumTags())
	}
	deny, err := tab.Deny("kids")
	if err != nil {
		t.Fatal(err)
	}
	if !deny.Excluded(3) || deny.Excluded(0) || deny.Excluded(4) {
		t.Error("deny kids: wrong exclusion set")
	}
	allow, err := tab.Allow("kids", "clearance")
	if err != nil {
		t.Fatal(err)
	}
	if allow.Excluded(3) || !allow.Excluded(0) || !allow.Excluded(4) {
		t.Error("allow kids+clearance: wrong exclusion set")
	}
	if _, err := tab.Allow("typo"); err == nil {
		t.Error("unknown tag accepted")
	}
	if _, err := tab.Deny(); err == nil {
		t.Error("empty tag list accepted")
	}
	for _, bad := range []string{"x,name", "9,name", "-1,name"} {
		if _, err := LoadTagTable(strings.NewReader(bad), 5); err == nil {
			t.Errorf("malformed line %q accepted", bad)
		}
	}
}

func TestEngineCachesByFilterFingerprint(t *testing.T) {
	sc := &fixedScorer{scores: [][]float64{{5, 4, 3, 2, 1}}}
	e := NewEngine(sc, Config{CacheSize: 64})

	plain, _, cached := e.TopM(0, 3)
	if cached {
		t.Error("first plain request reported cached")
	}
	filtered, _, cached := e.TopM(0, 3, ExcludeItems([]int{0}))
	if cached {
		t.Error("first filtered request reported cached (would have returned the plain list)")
	}
	if fmt.Sprint(plain) == fmt.Sprint(filtered) {
		t.Fatalf("filtered request returned the unfiltered list %v", plain)
	}
	if filtered[0] != 1 {
		t.Errorf("filtered top = %v, want item 1 first", filtered)
	}
	// Both variants must now be cache hits, each with its own entry.
	if _, _, cached := e.TopM(0, 3); !cached {
		t.Error("repeat plain request missed the cache")
	}
	got, _, cached := e.TopM(0, 3, ExcludeItems([]int{0}))
	if !cached {
		t.Error("repeat filtered request missed the cache")
	}
	if fmt.Sprint(got) != fmt.Sprint(filtered) {
		t.Errorf("cached filtered list %v != original %v", got, filtered)
	}
	if e.CacheLen() != 2 {
		t.Errorf("cache holds %d entries, want 2", e.CacheLen())
	}
	// Unkeyed filters make the request uncacheable: scored every time.
	before := sc.calls.Load()
	e.TopM(0, 3, anonFilter{})
	e.TopM(0, 3, anonFilter{})
	if calls := sc.calls.Load() - before; calls != 2 {
		t.Errorf("uncacheable requests scored %d times, want 2", calls)
	}
}

func TestEngineScoresMatchItems(t *testing.T) {
	sc := &fixedScorer{scores: [][]float64{{0.1, 0.9, 0.5, 0.7}}}
	e := NewEngine(sc, Config{})
	items, scores, _ := e.TopM(0, 2)
	if len(items) != 2 || len(scores) != 2 {
		t.Fatalf("items %v scores %v", items, scores)
	}
	if items[0] != 1 || scores[0] != 0.9 || items[1] != 3 || scores[1] != 0.7 {
		t.Errorf("got items %v scores %v, want [1 3] [0.9 0.7]", items, scores)
	}
	// Rank with a caller-supplied scorer (the fold-in path).
	items, scores = e.Rank(func(dst []float64) {
		for i := range dst {
			dst[i] = float64(i)
		}
	}, 2, ExcludeItems([]int{3}))
	if items[0] != 2 || scores[0] != 2 || items[1] != 1 || scores[1] != 1 {
		t.Errorf("Rank got items %v scores %v, want [2 1] [2 1]", items, scores)
	}
}

// gateScorer blocks every ScoreUser call until release closes, letting the
// coalescing test pile duplicate misses onto one in-flight computation.
type gateScorer struct {
	ni      int
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func (g *gateScorer) ScoreUser(u int, dst []float64) {
	g.once.Do(func() { close(g.entered) })
	<-g.release
	for i := range dst {
		dst[i] = float64((i*7 + u) % 11)
	}
}
func (g *gateScorer) NumItems() int { return g.ni }

// TestEngineCoalescesDuplicateMisses: concurrent requests for one
// fingerprint must compute the list exactly once — the waiters share the
// leader's result (or hit the cache it fills).
func TestEngineCoalescesDuplicateMisses(t *testing.T) {
	g := &gateScorer{ni: 50, entered: make(chan struct{}), release: make(chan struct{})}
	stats := &Stats{}
	e := NewEngine(g, Config{CacheSize: 16, Stats: stats})

	type result struct {
		items  []int
		cached bool
	}
	results := make(chan result, 9)
	run := func() {
		items, _, cached := e.TopM(3, 5, ExcludeItems([]int{2}))
		results <- result{items, cached}
	}
	go run()    // leader
	<-g.entered // leader is inside ScoreUser, flight entry registered
	var wg sync.WaitGroup
	for n := 0; n < 8; n++ {
		wg.Add(1)
		go func() { defer wg.Done(); run() }()
	}
	// The waiters either join the in-flight computation or (if scheduled
	// after it finishes) hit the cache it filled; either way the ranking
	// runs once. Release the leader and collect.
	close(g.release)
	wg.Wait()
	first := <-results
	for n := 0; n < 8; n++ {
		r := <-results
		if fmt.Sprint(r.items) != fmt.Sprint(first.items) {
			t.Errorf("divergent coalesced results: %v vs %v", r.items, first.items)
		}
	}
	if ranked := stats.Ranked(); ranked != 1 {
		t.Errorf("ranked %d times for 9 duplicate requests, want exactly 1", ranked)
	}
	if total := stats.Hits() + stats.Coalesced(); total != 8 {
		t.Errorf("hits(%d) + coalesced(%d) = %d, want 8 non-computing requests",
			stats.Hits(), stats.Coalesced(), total)
	}
	if stats.Misses() != 1 {
		t.Errorf("misses = %d, want 1 (the leader)", stats.Misses())
	}
}

func TestEngineCacheDisabled(t *testing.T) {
	sc := &fixedScorer{scores: [][]float64{{1, 2, 3}}}
	e := NewEngine(sc, Config{CacheSize: -1})
	e.TopM(0, 2)
	if _, _, cached := e.TopM(0, 2); cached {
		t.Error("cache disabled but repeat request reported cached")
	}
	if sc.calls.Load() != 2 {
		t.Errorf("scored %d times, want 2", sc.calls.Load())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// One shard of capacity 2: the oldest of three distinct keys must go.
	c := newTopCache(2, 1)
	put := func(u int) { c.put(requestKey{user: u, m: 5}, []int{u}, []float64{1}) }
	get := func(u int) bool { _, _, ok := c.get(requestKey{user: u, m: 5}); return ok }
	put(1)
	put(2)
	if !get(1) { // touch 1 so 2 becomes LRU
		t.Fatal("entry 1 missing")
	}
	put(3)
	if get(2) {
		t.Error("LRU entry 2 survived eviction")
	}
	if !get(1) || !get(3) {
		t.Error("recently used entries evicted")
	}
	if c.len() != 2 {
		t.Errorf("cache len %d, want 2", c.len())
	}
	// Same (user, m), different filter fingerprints: distinct entries.
	c2 := newTopCache(8, 1)
	c2.put(requestKey{user: 1, m: 5, filters: "ex:1|"}, []int{9}, []float64{1})
	if _, _, ok := c2.get(requestKey{user: 1, m: 5}); ok {
		t.Error("unfiltered key hit a filtered entry")
	}
	if _, _, ok := c2.get(requestKey{user: 1, m: 5, filters: "ex:1|"}); !ok {
		t.Error("filtered key missed its own entry")
	}
	// nil cache is a valid always-miss cache.
	var nilCache *topCache
	if _, _, ok := nilCache.get(requestKey{}); ok {
		t.Error("nil cache returned a hit")
	}
	nilCache.put(requestKey{}, nil, nil)
	if nilCache.len() != 0 {
		t.Error("nil cache non-empty")
	}
}
