package rank

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/sparse"
)

// Filter removes candidate items from a ranking. The engine evaluates
// filters between scoring and selection: an item excluded by any filter of
// a request never appears in the result, however high it scores.
//
// Implementations may additionally provide either of two optional
// fast paths the engine exploits when present:
//
//   - Sorted: the exclusions as an ascending []int32; the selection scan
//     walks it with a cursor instead of calling Excluded per item (the
//     training-row walk of the offline evaluator).
//   - Keyed: a stable fingerprint making requests with this filter
//     cacheable. A request is cached (and duplicate misses coalesced) only
//     when every filter is Keyed.
type Filter interface {
	// Excluded reports whether item must be removed from the candidates.
	Excluded(item int) bool
}

// Sorted is the sorted-iteration fast path of a Filter: ExcludedList
// returns the excluded items ascending and duplicate-free, letting the
// selection scan advance a cursor in O(1) amortized per item instead of
// calling Excluded.
type Sorted interface {
	Filter
	// ExcludedList returns the excluded items in ascending order without
	// duplicates. The slice may alias internal storage; callers must not
	// modify it.
	ExcludedList() []int32
}

// Keyed is the cacheability fast path of a Filter: CacheKey returns a
// fingerprint that uniquely identifies the filter's exclusion set for the
// lifetime of one Engine. Two filters with equal keys must exclude exactly
// the same items against that engine's scorer. An empty key marks the
// filter uncacheable.
type Keyed interface {
	Filter
	CacheKey() string
}

// bounder is implemented by the provided filters so selection can size its
// sort-versus-heap decision without a counting pass. maxExcluded returns an
// upper bound on how many of numItems items the filter excludes.
type bounder interface {
	maxExcluded(numItems int) int
}

// TrainRow excludes the items user u has a training positive for in train —
// the offline evaluation protocol's candidate set (rank the unknowns), and
// the serving default of never recommending an item back to its owner.
func TrainRow(train *sparse.Matrix, u int) Filter {
	return rowFilter{row: train.Row(u), user: u}
}

type rowFilter struct {
	row  []int32 // sorted, duplicate-free (CSR row invariant)
	user int
}

func (f rowFilter) Excluded(item int) bool {
	n := sort.Search(len(f.row), func(i int) bool { return int(f.row[i]) >= item })
	return n < len(f.row) && int(f.row[n]) == item
}

func (f rowFilter) ExcludedList() []int32 { return f.row }

// CacheKey identifies the row by user index: within one engine the train
// matrix is fixed, so the user uniquely determines the exclusion set.
func (f rowFilter) CacheKey() string { return "train:" + strconv.Itoa(f.user) }

func (f rowFilter) maxExcluded(int) int { return len(f.row) }

// ExcludeItems excludes an explicit per-request item list (a client's "do
// not recommend these" set, or a fold-in user's history). The input is
// copied, sorted and deduplicated; out-of-range items are the caller's
// responsibility to reject.
func ExcludeItems(items []int) Filter {
	list := make([]int32, 0, len(items))
	for _, i := range items {
		list = append(list, int32(i))
	}
	sort.Slice(list, func(a, b int) bool { return list[a] < list[b] })
	dst := 0
	for n, v := range list {
		if n > 0 && v == list[n-1] {
			continue
		}
		list[dst] = v
		dst++
	}
	list = list[:dst]
	// The key spells the exact item set out, so distinct exclusion lists
	// can never collide in the cache (a hash could). Built once here, not
	// per CacheKey call — a batch fingerprints the same filter once per
	// user.
	var b strings.Builder
	b.WriteString("ex:")
	for n, i := range list {
		if n > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(int(i)))
	}
	return itemsFilter{list: list, key: b.String()}
}

type itemsFilter struct {
	list []int32 // sorted, duplicate-free
	key  string
}

func (f itemsFilter) Excluded(item int) bool {
	n := sort.Search(len(f.list), func(i int) bool { return int(f.list[i]) >= item })
	return n < len(f.list) && int(f.list[n]) == item
}

func (f itemsFilter) ExcludedList() []int32 { return f.list }

func (f itemsFilter) CacheKey() string { return f.key }

func (f itemsFilter) maxExcluded(numItems int) int {
	if len(f.list) > numItems {
		return numItems
	}
	return len(f.list)
}

// OffsetRange adapts a filter expressed over global item ids to the local
// index space of an item partition [lo, hi): local index n stands for
// global item n+lo. The sharded serving tier scores only its partition —
// the rank engine there sees local indices 0..hi-lo — while request
// filters (training rows, exclusion lists, tag tables) speak global ids;
// this adapter bridges the two without the filters knowing about shards.
//
// A Sorted inner filter keeps its fast path: the global exclusion list is
// windowed to [lo, hi) and shifted once at construction (O(log n +
// window)), so the selection scan still advances a cursor instead of
// probing a predicate per item. Other filters are wrapped as shifted
// predicates. The result is deliberately unkeyed — shards serve cacheless
// by design (the router owns the fingerprint cache), so spending work on
// a range-qualified cache key would buy nothing.
func OffsetRange(f Filter, lo, hi int) Filter {
	if sf, ok := f.(Sorted); ok {
		list := sf.ExcludedList()
		a := sort.Search(len(list), func(i int) bool { return int(list[i]) >= lo })
		b := sort.Search(len(list), func(i int) bool { return int(list[i]) >= hi })
		shifted := make([]int32, b-a)
		for n, v := range list[a:b] {
			shifted[n] = v - int32(lo)
		}
		return itemsFilter{list: shifted}
	}
	return offsetFilter{inner: f, lo: lo}
}

// offsetFilter shifts a predicate-only filter into partition-local index
// space.
type offsetFilter struct {
	inner Filter
	lo    int
}

func (f offsetFilter) Excluded(local int) bool { return f.inner.Excluded(local + f.lo) }

func (f offsetFilter) maxExcluded(numItems int) int {
	if b, ok := f.inner.(bounder); ok {
		return b.maxExcluded(numItems)
	}
	return numItems
}

// Union composes filters: the result excludes an item iff any member does.
// The engine flattens unions, so members keep their individual sorted and
// keyed fast paths; a Union is cacheable exactly when all members are.
func Union(filters ...Filter) Filter {
	return unionFilter(filters)
}

type unionFilter []Filter

func (u unionFilter) Excluded(item int) bool {
	for _, f := range u {
		if f != nil && f.Excluded(item) {
			return true
		}
	}
	return false
}

// flatten expands unions and drops nil filters, yielding the flat filter
// list the selection scan and the request fingerprint operate on.
func flatten(filters []Filter) []Filter {
	flat := make([]Filter, 0, len(filters))
	var walk func([]Filter)
	walk = func(fs []Filter) {
		for _, f := range fs {
			switch v := f.(type) {
			case nil:
				continue
			case unionFilter:
				walk(v)
			default:
				flat = append(flat, f)
			}
		}
	}
	walk(filters)
	return flat
}

// maxFingerprintLen caps the bytes a request fingerprint may pin in the
// cache. The LRU bounds entry count, not entry size; without a cap, a
// stream of distinct huge exclude_items lists could pin CacheSize ×
// body-size bytes of key strings. Oversized fingerprints make the request
// uncacheable instead — correct, just uncached.
const maxFingerprintLen = 4096

// fingerprint builds the cache-key contribution of a flat filter list,
// reporting cacheable=false when any filter lacks a stable key or the
// combined key exceeds maxFingerprintLen. Keys are length-prefixed before
// concatenation so the encoding stays injective whatever bytes a key
// contains (a tag literally named "a|deny:b" must not collide with the
// allow:a + deny:b filter pair). The empty filter list is cacheable with
// an empty fingerprint — the plain (user, m) request of the unfiltered
// hot path.
func fingerprint(flat []Filter) (fp string, cacheable bool) {
	if len(flat) == 0 {
		return "", true
	}
	var b strings.Builder
	for _, f := range flat {
		k, ok := f.(Keyed)
		if !ok {
			return "", false
		}
		key := k.CacheKey()
		if key == "" {
			return "", false
		}
		if b.Len()+len(key) > maxFingerprintLen {
			return "", false
		}
		b.WriteString(strconv.Itoa(len(key)))
		b.WriteByte(':')
		b.WriteString(key)
	}
	return b.String(), true
}
