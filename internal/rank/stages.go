package rank

import (
	"fmt"
	"math"
	"sort"
	"strconv"
)

// Stage is a post-selection re-rank step, extending the pipeline from
// score → filter → select to score → filter → select → rerank. A stage
// receives the selected (items, scores) head — over-fetched to the
// largest OverFetch any stage in the request declares — and rewrites it:
// re-ordering, adjusting scores, or dropping entries. After the last
// stage the pipeline truncates the head to the requested m.
//
// Stages must be deterministic: the output may depend only on the input
// head and the stage's own configuration, never on wall time, randomness
// or mutable shared state. That determinism is what lets the router
// apply stages once after scatter-gather and stay bit-identical to
// single-process staged serving, and what makes staged results safe to
// cache.
//
// Like filters, stages declare a CacheKey that folds into the request
// fingerprint, so two requests differing only in stage configuration can
// never collide in the cache. An empty key marks the stage uncacheable
// (the request still works — it just bypasses the cache).
type Stage interface {
	// CacheKey returns a stable fingerprint of the stage's behavior for
	// the lifetime of one Engine. Empty means uncacheable.
	CacheKey() string
	// OverFetch reports how many candidates must be selected before the
	// stage runs so that its top-m output is well-defined. It must
	// return at least m.
	OverFetch(m int) int
	// Apply rewrites the selected head for a request of length m and
	// returns the (possibly shorter) result. It may modify the input
	// slices in place and may return them; it must not retain them.
	// items arrive ordered by the selection tie rule (descending score,
	// ascending item) unless an earlier stage re-ordered them.
	Apply(m int, items []int, scores []float64) ([]int, []float64)
}

// compactStages drops nil entries, returning nil when no stages remain —
// the zero-stage request is then byte-identical to an unstaged one,
// fingerprint included.
func compactStages(stages []Stage) []Stage {
	n := 0
	for _, st := range stages {
		if st != nil {
			n++
		}
	}
	if n == 0 {
		return nil
	}
	if n == len(stages) {
		return stages
	}
	out := make([]Stage, 0, n)
	for _, st := range stages {
		if st != nil {
			out = append(out, st)
		}
	}
	return out
}

// StagesOverFetch returns how many candidates a request of length m must
// select (or a router must gather from its shards) before the stage list
// runs, so that truncating the staged head to m is well-defined. With no
// stages it is m.
func StagesOverFetch(m int, stages []Stage) int {
	fetch := m
	for _, st := range stages {
		if st == nil {
			continue
		}
		if f := st.OverFetch(m); f > fetch {
			fetch = f
		}
	}
	return fetch
}

// applyStages runs the stage list over an over-fetched head and truncates
// the result to m. The input slices must be private to the caller (stages
// rewrite them in place).
func applyStages(m int, stages []Stage, items []int, scores []float64) ([]int, []float64) {
	for _, st := range stages {
		if st == nil {
			continue
		}
		items, scores = st.Apply(m, items, scores)
	}
	if len(items) > m {
		items, scores = items[:m], scores[:m]
	}
	return items, scores
}

// fingerprintStaged extends the filter fingerprint with the request's
// stage keys. With no stages the fingerprint is exactly fingerprint(flat)
// — zero-stage requests share cache entries with unstaged ones, which is
// correct because they return identical lists. With stages, a "|s|"
// marker separates the two key sequences; both sides use the same
// length-prefixed token encoding, so a filter whose key happens to
// contain "|s|" still cannot alias a filters+stages combination (tokens
// are consumed by declared length, the marker is only ever read at a
// token boundary).
func fingerprintStaged(flat []Filter, stages []Stage) (fp string, cacheable bool) {
	fp, ok := fingerprint(flat)
	if !ok || len(stages) == 0 {
		return fp, ok
	}
	b := make([]byte, 0, len(fp)+16*len(stages))
	b = append(b, fp...)
	b = append(b, "|s|"...)
	for _, st := range stages {
		key := st.CacheKey()
		if key == "" {
			return "", false
		}
		if len(b)+len(key) > maxFingerprintLen {
			return "", false
		}
		b = strconv.AppendInt(b, int64(len(key)), 10)
		b = append(b, ':')
		b = append(b, key...)
	}
	return string(b), true
}

// ScoreFloor returns a stage that drops every item scoring below min,
// preserving the order of the survivors. It never over-fetches: the floor
// only shortens lists, so the top-m above the floor is a subset of the
// top-m overall.
func ScoreFloor(min float64) Stage { return floorStage{min: min} }

type floorStage struct{ min float64 }

// CacheKey encodes the exact float64 bits of the floor, so two floors
// that format identically but differ in the last ulp still key apart.
func (f floorStage) CacheKey() string {
	return "floor:" + strconv.FormatUint(math.Float64bits(f.min), 16)
}

func (f floorStage) OverFetch(m int) int { return m }

func (f floorStage) Apply(m int, items []int, scores []float64) ([]int, []float64) {
	dst := 0
	for n, s := range scores {
		if s < f.min {
			continue
		}
		items[dst], scores[dst] = items[n], s
		dst++
	}
	return items[:dst], scores[:dst]
}

// Boost returns a stage that adds delta to the score of every item
// carrying any of the named tags, then re-sorts the head by the selection
// tie rule (descending score, ascending item) — per-tenant business rules
// ("promote in-season stock") expressed over the same bitsets the
// allow/deny filters use. Unknown tags are an error, like Allow/Deny.
//
// Boosting re-orders within the selected head only; items outside the
// head cannot be promoted into it unless another stage in the request
// over-fetches. overFetch widens the head the boost sees: ≥ 2 selects
// overFetch×m candidates so boosted items just below the cut can surface;
// ≤ 1 keeps the head at m (reorder-only).
func (t *TagTable) Boost(delta float64, overFetch int, tags ...string) (Stage, error) {
	set, key, err := t.union(tags)
	if err != nil {
		return nil, err
	}
	if overFetch < 1 {
		overFetch = 1
	}
	return boostStage{
		set:   set,
		delta: delta,
		fetch: overFetch,
		key: "boost:" + strconv.FormatUint(math.Float64bits(delta), 16) +
			":" + strconv.Itoa(overFetch) + ":" + key,
	}, nil
}

type boostStage struct {
	set   tagSet
	delta float64
	fetch int
	key   string
}

func (b boostStage) CacheKey() string { return b.key }

func (b boostStage) OverFetch(m int) int { return m * b.fetch }

func (b boostStage) Apply(m int, items []int, scores []float64) ([]int, []float64) {
	touched := false
	for n, it := range items {
		if b.set.has(it) {
			scores[n] += b.delta
			touched = true
		}
	}
	if touched {
		resortHead(items, scores)
	}
	return items, scores
}

// resortHead re-establishes the selection tie rule (descending score,
// ascending item) over a head whose scores a stage adjusted. Items are
// unique, so the order is total and the sort deterministic.
func resortHead(items []int, scores []float64) {
	sort.Sort(headOrder{items: items, scores: scores})
}

type headOrder struct {
	items  []int
	scores []float64
}

func (h headOrder) Len() int { return len(h.items) }

func (h headOrder) Less(a, b int) bool {
	if h.scores[a] != h.scores[b] {
		return h.scores[a] > h.scores[b]
	}
	return h.items[a] < h.items[b]
}

func (h headOrder) Swap(a, b int) {
	h.items[a], h.items[b] = h.items[b], h.items[a]
	h.scores[a], h.scores[b] = h.scores[b], h.scores[a]
}

// ItemVectors supplies the per-item affiliation vectors the Diversify
// stage measures similarity over. core.Model's item factors satisfy it
// through a one-line adapter: for OCuLaR the coordinates are the item's
// non-negative co-cluster affiliations (PAPER.md Section IV-C), so two
// items are similar exactly when they load on the same co-clusters —
// the overlap PairContributions itemizes per (user, item) pair.
type ItemVectors interface {
	// ItemVector returns item i's affiliation vector. The slice may
	// alias internal storage; callers must not modify it.
	ItemVector(i int) []float64
}

// Diversify returns an MMR-style greedy re-ranking stage: it picks the
// head's top-scored item first, then repeatedly the candidate maximizing
//
//	lambda·score − (1−lambda)·maxSim(candidate, picked)
//
// where maxSim is the largest cosine similarity between the candidate's
// and any picked item's affiliation vectors. lambda 1 is pure relevance
// (the identity re-order), lambda 0 pure diversity. factor is the
// over-fetch multiple: the stage sees factor×m candidates so the
// diversified top-m can draw from below the undiversified cut — without
// it, "diversified top-m" would be ill-defined. Ties prefer the earlier
// original rank, keeping the stage deterministic.
func Diversify(lambda float64, factor int, vecs ItemVectors) (Stage, error) {
	if math.IsNaN(lambda) || lambda < 0 || lambda > 1 {
		return nil, fmt.Errorf("rank: Diversify lambda must be in [0,1], got %v", lambda)
	}
	if factor < 1 {
		return nil, fmt.Errorf("rank: Diversify over-fetch factor must be >= 1, got %d", factor)
	}
	if vecs == nil {
		return nil, fmt.Errorf("rank: Diversify requires item vectors")
	}
	return mmrStage{lambda: lambda, factor: factor, vecs: vecs}, nil
}

type mmrStage struct {
	lambda float64
	factor int
	vecs   ItemVectors
}

// CacheKey covers lambda and the over-fetch factor. The similarity
// kernel (the model's item factors) is fixed for the engine's lifetime —
// the serving layer rebuilds engines, and the router bumps its route
// epoch, on every model swap — so it needs no key component.
func (d mmrStage) CacheKey() string {
	return "mmr:" + strconv.FormatUint(math.Float64bits(d.lambda), 16) +
		":" + strconv.Itoa(d.factor)
}

func (d mmrStage) OverFetch(m int) int { return m * d.factor }

func (d mmrStage) Apply(m int, items []int, scores []float64) ([]int, []float64) {
	n := len(items)
	k := m
	if n < k {
		k = n
	}
	if k <= 1 {
		if len(items) > k {
			items, scores = items[:k], scores[:k]
		}
		return items, scores
	}
	// Normalize each candidate's affiliation vector once: cosine then
	// reduces to a dot product per (candidate, picked) pair.
	unit := make([][]float64, n)
	for i, it := range items {
		unit[i] = unitVector(d.vecs.ItemVector(it))
	}
	picked := make([]bool, n)
	maxSim := make([]float64, n)
	order := make([]int, 0, k)
	cur := 0 // greedy start: the top-relevance candidate
	for {
		order = append(order, cur)
		picked[cur] = true
		if len(order) == k {
			break
		}
		best, bestMMR := -1, 0.0
		for i := 0; i < n; i++ {
			if picked[i] {
				continue
			}
			if s := dot(unit[i], unit[cur]); s > maxSim[i] {
				maxSim[i] = s
			}
			mmr := d.lambda*scores[i] - (1-d.lambda)*maxSim[i]
			if best == -1 || mmr > bestMMR {
				best, bestMMR = i, mmr
			}
		}
		cur = best
	}
	outItems := make([]int, k)
	outScores := make([]float64, k)
	for j, pos := range order {
		outItems[j] = items[pos]
		outScores[j] = scores[pos]
	}
	return outItems, outScores
}

// unitVector returns v scaled to unit length (a copy; v may alias model
// storage). The zero vector stays zero — an item with no co-cluster
// affiliation is similar to nothing.
func unitVector(v []float64) []float64 {
	norm := 0.0
	for _, x := range v {
		norm += x * x
	}
	u := make([]float64, len(v))
	if norm > 0 {
		inv := 1 / math.Sqrt(norm)
		for j, x := range v {
			u[j] = x * inv
		}
	}
	return u
}

func dot(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	s := 0.0
	for i := 0; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}
